#!/bin/sh
# Pre-merge verification: vet + build everything, then run the race
# detector over the emulator and memory substrate. The per-Tx hash indexes
# in internal/htm are single-owner by design; the race detector over these
# two packages is the cheapest guard that an emulator change didn't
# introduce unsynchronized shared state.
set -eux

go vet ./...
go build ./...
go test -race ./internal/htm/ ./internal/simmem/
