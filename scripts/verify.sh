#!/bin/sh
# Pre-merge verification: vet + build everything, then run the race
# detector over the emulator and memory substrate (full suite — the per-Tx
# hash indexes in internal/htm are single-owner by design, and the race
# detector over them is the cheapest guard that an emulator change didn't
# introduce unsynchronized shared state), plus a -short race pass over the
# tree implementations and the harness. The short pass includes the
# wall-clock linearizability recordings, which are exactly the code paths
# where an unsynchronized tree would race.
#
# The internal/htm race pass covers the resilience layer (storm detector,
# queued fallback lock, watchdog) whose counters are the only cross-thread
# shared state the hardening added; the kvserver pass races the resilience-
# enabled server against real concurrent sockets.
#
# The host execution backend rides these same passes: its htm-level tests
# (TestHost*) run in the internal/htm line, the per-tree
# LinearizabilityHost/ConcurrentSharedHost subtests and the harness
# RunHost tests run in the -short tree/harness line, and the root host API
# tests run in the final line. CI additionally runs them in a dedicated
# host-backend-race job.
set -eux

go vet ./...
go build ./...
go test -race ./internal/htm/ ./internal/simmem/ ./internal/shard/
go test -race -short ./internal/core/ ./internal/tree/... ./internal/harness/
# The kvserver pass now serves a sharded Cluster: real concurrent sockets
# race the router, per-connection Sessions, the merged cross-shard SCAN,
# and the aggregated STATS path.
go test -race ./examples/kvserver/
# Durability engine under the race detector: the group-commit leader
# protocol, background flusher, and snapshot rotation are the newest
# cross-thread shared state; the -short crash-fuzzer pass races recovery
# against the checker as well.
go test -race -short ./internal/durable/...
# Observability layer: the heatmap/trace observers receive events from
# every wall-clock worker goroutine concurrently, and the root package's
# observer tests (TestObserverConcurrentWall and friends) drive exactly
# that delivery shape against a live DB.
go test -race ./internal/obs/
# Root package -short pass includes the Cluster: routing, cross-shard
# range merge (ordering/dedup under concurrent inserts, iterator-leak
# check), joined per-shard error surfacing, and durable cluster recovery.
go test -race -short .
