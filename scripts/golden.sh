#!/bin/sh
# Bit-identical-figures guard: the resilience layer is opt-in, so the
# paper-faithful default figures must not move by a single virtual cycle.
# Regenerates the quick-scale Figure 1 and Figure 8 CSVs and diffs them
# against the checked-in goldens (captured before the resilience layer
# landed). Any drift — an extra arena allocation, an extra tick, a stray
# RNG draw on the default path — shows up here as a CSV difference.
#
# To re-baseline after an *intentional* metrics change:
#   go run ./cmd/eunobench -quick -csv fig1 > cmd/eunobench/testdata/golden-fig1-quick.csv
#   go run ./cmd/eunobench -quick -csv fig8 > cmd/eunobench/testdata/golden-fig8-quick.csv
set -eux

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/eunobench -quick -csv fig1 > "$tmp/fig1.csv"
diff -u cmd/eunobench/testdata/golden-fig1-quick.csv "$tmp/fig1.csv"

go run ./cmd/eunobench -quick -csv fig8 > "$tmp/fig8.csv"
diff -u cmd/eunobench/testdata/golden-fig8-quick.csv "$tmp/fig8.csv"

# The CCM v2 layer (Options.Combine) is opt-in like resilience: the
# combine=off rows of the hotkey comparison run the paper-faithful default
# tree in the extreme-skew regime and must not move either. The combine=on
# rows are intentionally excluded — tuning the combiner may change them.
go run ./cmd/eunobench -quick -csv hotkey | grep -E '^#|^scenario|,off,' > "$tmp/hotkey-off.csv"
diff -u cmd/eunobench/testdata/golden-hotkey-off-quick.csv "$tmp/hotkey-off.csv"

echo "golden figures: bit-identical"
