package eunomia

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eunomia/internal/durable"
)

func TestCloseIdempotentAndErrClosed(t *testing.T) {
	db, err := Open(Options{ArenaWords: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	if err := th.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, _, err := th.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := th.Put(2, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := th.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close: %v", err)
	}
	if _, err := th.Scan(0, 10, func(k, v uint64) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("scan after close: %v", err)
	}
	if err := db.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := db.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: %v", err)
	}
}

func TestDurableRoundtripAllKinds(t *testing.T) {
	for _, k := range []Kind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		t.Run(k.String(), func(t *testing.T) {
			fs := durable.NewMemFS(durable.FaultPlan{})
			open := func() *DB {
				db, err := Open(Options{Kind: k, ArenaWords: 1 << 20,
					Durability: Durability{Dir: "db", FS: fs}})
				if err != nil {
					t.Fatal(err)
				}
				return db
			}
			db := open()
			th := db.NewThread()
			for i := uint64(1); i <= 300; i++ {
				if err := th.Put(i, i*7); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(2); i <= 300; i += 3 {
				if ok, err := th.Delete(i); err != nil || !ok {
					t.Fatalf("delete %d: %v %v", i, ok, err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := open()
			defer db2.Close()
			ds := db2.Metrics().Durability
			if !ds.Enabled || ds.ReplayedFrames == 0 {
				t.Fatalf("recovery replayed nothing: %+v", ds)
			}
			th2 := db2.NewThread()
			for i := uint64(1); i <= 300; i++ {
				v, ok, err := th2.Get(i)
				if err != nil {
					t.Fatal(err)
				}
				deleted := i >= 2 && (i-2)%3 == 0
				if deleted && ok {
					t.Fatalf("%v: deleted key %d resurrected", k, i)
				}
				if !deleted && (!ok || v != i*7) {
					t.Fatalf("%v: key %d lost (got %d,%v)", k, i, v, ok)
				}
			}
		})
	}
}

func TestDurableSnapshotAndRecovery(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	db, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	for i := uint64(1); i <= 500; i++ {
		if err := th.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(501); i <= 600; i++ {
		if err := th.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if db.Metrics().Durability.Snapshots != 1 {
		t.Fatalf("snapshots: %+v", db.Metrics().Durability)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ds := db2.Metrics().Durability
	if ds.SnapshotPairs != 500 {
		t.Fatalf("recovered %d snapshot pairs, want 500", ds.SnapshotPairs)
	}
	if ds.ReplayedFrames != 100 {
		t.Fatalf("replayed %d frames, want 100", ds.ReplayedFrames)
	}
	th2 := db2.NewThread()
	n, err := th2.Scan(1, 1000, func(k, v uint64) bool { return k == v })
	if err != nil || n != 600 {
		t.Fatalf("scan after recovery: n=%d err=%v", n, err)
	}
}

func TestAutoSnapshotViaOptions(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	db, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs, SnapshotBytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	for i := uint64(1); i <= 1000; i++ {
		if err := th.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	ds := db.Metrics().Durability
	if ds.Snapshots == 0 {
		t.Fatalf("auto-snapshot never fired: %+v", ds)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	th2 := db2.NewThread()
	for i := uint64(1); i <= 1000; i++ {
		if v, ok, _ := th2.Get(i); !ok || v != i {
			t.Fatalf("key %d lost after auto-snapshot recovery", i)
		}
	}
}

func TestDurableTimedGroupCommit(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	db, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs, FlushInterval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	for i := uint64(1); i <= 50; i++ {
		if err := th.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	ds := db.Metrics().Durability
	if ds.FlushedFrames != 50 {
		t.Fatalf("flushed %d frames, want 50", ds.FlushedFrames)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVirtualPanicsWithDurability(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	db, err := Open(Options{ArenaWords: 1 << 20,
		Durability: Durability{Dir: "db", FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunVirtual with durability did not panic")
		}
	}()
	db.RunVirtual(2, func(t *Thread) {})
}

func TestOsFilesystemDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{ArenaWords: 1 << 20, Durability: Durability{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	for i := uint64(1); i <= 50; i++ {
		if err := th.Put(i, i^0xff); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{ArenaWords: 1 << 20, Durability: Durability{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	th2 := db2.NewThread()
	for i := uint64(1); i <= 50; i++ {
		if v, ok, _ := th2.Get(i); !ok || v != i^0xff {
			t.Fatalf("key %d lost across real-disk restart", i)
		}
	}
}

// TestDurableCombineRoundtrip drives the full CCM v2 + durability stack:
// with combining on and the adaptive gate off, every put and delete routes
// through TryCombine* and a combined batch commits as one WAL group record
// with per-op acks. Concurrent workers hammer a tiny hot key set while
// also writing disjoint private keys; after close + reopen the private
// keys must be intact, the hot keys must match their final writes, and
// recovery must have replayed group frames.
func TestDurableCombineRoundtrip(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	open := func() *DB {
		db, err := Open(Options{ArenaWords: 1 << 20, YieldEvery: 64,
			Euno:       Tuning{DisableAdaptive: true},
			Combine:    Combine{Enabled: true},
			Durability: Durability{Dir: "db", FS: fs}})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	var wg sync.WaitGroup
	const workers, per, hot = 4, 120, 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := db.NewThread()
			base := uint64(1000 + w*per)
			for i := uint64(0); i < per; i++ {
				if err := th.Put(base+i, base+i); err != nil {
					t.Error(err)
					return
				}
				k := uint64(i % hot)
				if i%3 == 2 {
					if _, err := th.Delete(k); err != nil {
						t.Error(err)
						return
					}
				} else if err := th.Put(k, uint64(w)<<32|i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("worker errors above")
	}

	// Pin the hot keys to known final values through the combining path.
	th := db.NewThread()
	for k := uint64(0); k < hot; k++ {
		if err := th.Put(k, k+7000); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Tree.CombinedBatches == 0 || m.Tree.CombinedOps == 0 {
		t.Fatalf("no combined batches with combining on and adaptive off: %+v", m.Tree)
	}
	t.Logf("combined %d ops in %d batches, %d eliminated pairs, %d handoffs",
		m.Tree.CombinedOps, m.Tree.CombinedBatches, m.Tree.EliminatedPairs, m.Tree.CombinerHandoffs)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	ds := db2.Metrics().Durability
	if !ds.Enabled || ds.ReplayedFrames == 0 {
		t.Fatalf("recovery replayed nothing: %+v", ds)
	}
	th2 := db2.NewThread()
	for w := 0; w < workers; w++ {
		base := uint64(1000 + w*per)
		for i := uint64(0); i < per; i++ {
			if v, ok, err := th2.Get(base + i); err != nil || !ok || v != base+i {
				t.Fatalf("private key %d lost across restart (got %d,%v,%v)", base+i, v, ok, err)
			}
		}
	}
	for k := uint64(0); k < hot; k++ {
		if v, ok, err := th2.Get(k); err != nil || !ok || v != k+7000 {
			t.Fatalf("hot key %d: got %d,%v,%v want %d", k, v, ok, err, k+7000)
		}
	}
}
