package eunomia

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"eunomia/internal/durable"
)

// fastRepair is the repair tuning used by the health tests: tight enough
// that a full trip→reopen→probation→readmit cycle fits in milliseconds.
func fastRepair() RepairOptions {
	return RepairOptions{
		Backoff:       2 * time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		Probes:        2,
		ProbeInterval: time.Millisecond,
	}
}

// openHealthCluster opens a 3-shard durable cluster over per-shard
// MemFS disks with a sensitive breaker and fast repair.
func openHealthCluster(t *testing.T, fses []*durable.MemFS, manifestFS *durable.MemFS, repair RepairOptions) *Cluster {
	t.Helper()
	c, err := OpenCluster(ClusterOptions{
		Shards: len(fses),
		Shard: Options{
			ArenaWords: 1 << 19,
			Durability: Durability{Dir: "clusterdb", FS: manifestFS},
		},
		PerShard: func(i int, o *Options) { o.Durability.FS = fses[i] },
		Health:   HealthOptions{Window: 8, TripFailures: 2},
		Repair:   repair,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// shardKeys returns n keys owned by the given shard.
func shardKeys(c *Cluster, sh int, start uint64, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := start; len(keys) < n; k++ {
		if c.ShardFor(k) == sh {
			keys = append(keys, k)
		}
	}
	return keys
}

// tripShard drives writes at a shard whose disk is dead until its
// breaker opens.
func tripShard(t *testing.T, c *Cluster, sess *Session, sh int) {
	t.Helper()
	for _, k := range shardKeys(c, sh, 50_000, 50) {
		sess.Put(k, 1)
		if c.ShardState(sh) == ShardFailed {
			return
		}
	}
	t.Fatalf("shard %d never tripped (state %v)", sh, c.ShardState(sh))
}

// waitShardState polls until shard sh reaches want.
func waitShardState(t *testing.T, c *Cluster, sh int, want ShardState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := c.ShardState(sh); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("shard %d stuck in %v, want %v (health: %+v)", sh, got, want, c.ClusterMetrics().Health[sh])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterShardBreakerFailFast: a dead shard disk trips that shard's
// breaker; routed ops then fail fast with the typed shard error while
// the healthy shards keep serving, and the shed counter records the
// fail-fast rejections.
func TestClusterShardBreakerFailFast(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	// Repair disabled: this test pins the failed steady state.
	c := openHealthCluster(t, fses, durable.NewMemFS(durable.FaultPlan{}), RepairOptions{Disable: true})
	sess := c.NewSession()
	for k := uint64(0); k < 60; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	tripShard(t, c, sess, 1)

	// Fail fast: the op must not touch the dead shard's store.
	before := fses[1].IOCount()
	k1 := shardKeys(c, 1, 90_000, 1)[0]
	err := sess.Put(k1, 1)
	if err == nil {
		t.Fatal("Put on a failed shard succeeded")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 || se.State != ShardFailed {
		t.Fatalf("Put on failed shard = %v (want *ShardError for shard 1, failed)", err)
	}
	if got := fses[1].IOCount(); got != before {
		t.Fatalf("fail-fast op still touched the dead disk (%d -> %d IOs)", before, got)
	}
	// Reads fail fast too, and the healthy shards are untouched.
	if _, _, err := sess.Get(k1); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Get on failed shard = %v", err)
	}
	for _, k := range append(shardKeys(c, 0, 90_000, 3), shardKeys(c, 2, 90_000, 3)...) {
		if err := sess.Put(k, 7); err != nil {
			t.Fatalf("healthy shard write failed: %v", err)
		}
		if v, ok, err := sess.Get(k); err != nil || !ok || v != 7 {
			t.Fatalf("healthy shard read = %d,%v,%v", v, ok, err)
		}
	}
	m := c.ClusterMetrics()
	if m.Health[1].State != ShardFailed || m.Health[1].Trips != 1 || m.Health[1].Cause == "" {
		t.Fatalf("shard 1 health = %+v", m.Health[1])
	}
	if m.Health[0].State != ShardHealthy || m.Health[2].State != ShardHealthy {
		t.Fatalf("healthy shards scored: %+v %+v", m.Health[0], m.Health[2])
	}
	if m.Fault.ShedOps == 0 || m.Fault.Trips != 1 {
		t.Fatalf("fault counters = %+v", m.Fault)
	}
}

// TestClusterShardSentinels: "the cluster shut down" (ErrClosed) and
// "the owning shard died" (ErrShardUnavailable) are distinguishable with
// errors.Is, no string matching needed.
func TestClusterShardSentinels(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	c := openHealthCluster(t, fses, durable.NewMemFS(durable.FaultPlan{}), RepairOptions{Disable: true})
	sess := c.NewSession()
	fses[2].Kill()
	tripShard(t, c, sess, 2)

	k2 := shardKeys(c, 2, 1000, 1)[0]
	err := sess.Put(k2, 1)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("dead-shard error %v does not match ErrShardUnavailable", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("dead-shard error %v matches ErrClosed: ambiguous with cluster shutdown", err)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 2 || se.Cause == nil {
		t.Fatalf("dead-shard error %v does not carry *ShardError{Shard:2, Cause}", err)
	}

	if err := c.Close(); err != nil && !strings.Contains(err.Error(), "cluster shard 2") {
		t.Fatal(err)
	}
	err = sess.Put(k2, 1)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("closed-cluster error = %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("closed-cluster error %v matches ErrShardUnavailable: ambiguous with shard death", err)
	}
}

// TestClusterRepairReadmitsShard is the self-healing round trip: disk
// dies → breaker trips → disk comes back → the repair loop reopens the
// shard, replays its WAL, passes probation, and re-admits it — with
// every previously acknowledged key intact and new writes served.
func TestClusterRepairReadmitsShard(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	c := openHealthCluster(t, fses, durable.NewMemFS(durable.FaultPlan{}), fastRepair())
	sess := c.NewSession()
	for k := uint64(0); k < 120; k++ {
		if err := sess.Put(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	tripShard(t, c, sess, 1)
	fses[1].Reboot()
	waitShardState(t, c, 1, ShardHealthy)

	// Every key acknowledged before the kill — including shard 1's — is
	// served again; the Session re-threads onto the repaired DB
	// transparently.
	for k := uint64(0); k < 120; k++ {
		if v, ok, err := sess.Get(k); err != nil || !ok || v != k+7 {
			t.Fatalf("key %d (shard %d) after repair = %d,%v,%v", k, c.ShardFor(k), v, ok, err)
		}
	}
	k1 := shardKeys(c, 1, 90_000, 1)[0]
	if err := sess.Put(k1, 42); err != nil {
		t.Fatalf("write to re-admitted shard: %v", err)
	}
	if v, ok, err := sess.Get(k1); err != nil || !ok || v != 42 {
		t.Fatalf("read-back on re-admitted shard = %d,%v,%v", v, ok, err)
	}
	m := c.ClusterMetrics()
	if m.Health[1].Repairs != 1 || m.Fault.Repairs != 1 {
		t.Fatalf("repair not recorded: %+v / %+v", m.Health[1], m.Fault)
	}
	if m.Health[1].State != ShardHealthy || m.Health[1].Permanent {
		t.Fatalf("shard 1 health after repair = %+v", m.Health[1])
	}
}

// TestClusterRepairRefusesRolledBackShard: probation's durable-watermark
// gate. The shard's disk comes back *empty* (swapped disk, wiped
// directory): recovery succeeds but ends below the watermark captured at
// trip time, so repair must refuse re-admission permanently instead of
// serving the hole where acknowledged writes used to be.
func TestClusterRepairRefusesRolledBackShard(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	r := fastRepair()
	// Generous first backoff: the test wipes the disk in the gap between
	// the trip and the repair loop's first reopen attempt.
	r.Backoff = 200 * time.Millisecond
	r.MaxBackoff = 400 * time.Millisecond
	c := openHealthCluster(t, fses, durable.NewMemFS(durable.FaultPlan{}), r)
	sess := c.NewSession()
	for k := uint64(0); k < 80; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	tripShard(t, c, sess, 1)

	// The disk comes back blank: revive the FS, then delete everything
	// under the shard's directory.
	fses[1].Reboot()
	dir := "clusterdb/shard-1"
	names, err := fses[1].List(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := fses[1].Remove(dir + "/" + n); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for !c.ClusterMetrics().Health[1].Permanent {
		if time.Now().After(deadline) {
			t.Fatalf("repair never refused the rolled-back shard: %+v", c.ClusterMetrics().Health[1])
		}
		time.Sleep(2 * time.Millisecond)
	}
	h := c.ClusterMetrics().Health[1]
	if h.State != ShardFailed {
		t.Fatalf("rolled-back shard state = %v, want failed", h.State)
	}
	if !strings.Contains(h.Cause, "acknowledged writes are missing") {
		t.Fatalf("refusal cause = %q", h.Cause)
	}
	if h.Repairs != 0 {
		t.Fatalf("rolled-back shard was re-admitted: %+v", h)
	}
	if err := sess.Put(shardKeys(c, 1, 90_000, 1)[0], 1); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("op on permanently failed shard = %v", err)
	}
	// The healthy shard is unaffected.
	if err := sess.Put(shardKeys(c, 0, 90_000, 1)[0], 1); err != nil {
		t.Fatal(err)
	}
}

// TestClusterRepairNoGoroutineLeak: a repair loop spinning against a
// still-dead disk must exit promptly on Close — no leaked probe
// goroutines, no leaked timers.
func TestClusterRepairNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	c := openHealthCluster(t, fses, durable.NewMemFS(durable.FaultPlan{}), fastRepair())
	sess := c.NewSession()
	for k := uint64(0); k < 40; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	tripShard(t, c, sess, 1)
	if !c.shard(1).repairing.Load() {
		// The loop may legitimately be between states, but it must be
		// running by now: the disk is dead, so it cannot have finished.
		t.Fatal("repair loop not running after trip")
	}
	// Close must stop the loop even though the disk never came back.
	if err := c.Close(); err != nil && !strings.Contains(err.Error(), "cluster shard 1") {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > %d after Close: repair probes leaked", g, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRetryBudget: transient failures are retried at most once
// per op and only while the Session holds a banked token, so a failing
// shard sees at most budget extra attempts — retries cannot amplify a
// storm.
func TestClusterRetryBudget(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	c, err := OpenCluster(ClusterOptions{
		Shards: 2,
		Shard: Options{
			ArenaWords: 1 << 19,
			Durability: Durability{Dir: "clusterdb", FS: durable.NewMemFS(durable.FaultPlan{})},
		},
		PerShard: func(i int, o *Options) { o.Durability.FS = fses[i] },
		// A wide window keeps the shard Degraded (never Failed) so every
		// op reaches the store and the budget is the only limiter.
		Health: HealthOptions{Window: 64, TripFailures: 60, RetryBudget: 3},
		Repair: RepairOptions{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := c.NewSession()
	for k := uint64(0); k < 30; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	keys := shardKeys(c, 1, 50_000, 10)
	for _, k := range keys {
		if err := sess.Put(k, 1); err == nil {
			t.Fatal("Put on dead disk succeeded")
		}
	}
	m := c.ClusterMetrics()
	if m.Fault.Retries != 3 {
		t.Fatalf("retries spent = %d, want exactly the budget (3)", m.Fault.Retries)
	}
	if m.Fault.RetriesDenied != uint64(len(keys)-3) {
		t.Fatalf("retries denied = %d, want %d", m.Fault.RetriesDenied, len(keys)-3)
	}
	// 10 ops, 3 of them retried once: the dead shard absorbed 13 attempts,
	// not 20 — and the breaker saw every failure.
	if f := m.Health[1].Failures; f != 13 {
		t.Fatalf("shard 1 scored %d failures, want 13", f)
	}
}

// TestClusterSnapshotDegradesToHealthySubset: a cluster-wide snapshot
// with one shard failed still snapshots every healthy shard, records the
// exclusion in a v2 barrier manifest (carrying the failed shard at its
// last sound floor), names only the failed shard in the error — and the
// manifest still verifies on reopen once the disk comes back.
func TestClusterSnapshotDegradesToHealthySubset(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	manifestFS := durable.NewMemFS(durable.FaultPlan{})
	open := func() *Cluster {
		c, err := OpenCluster(ClusterOptions{
			Shards: 3,
			Shard: Options{
				ArenaWords: 1 << 19,
				Durability: Durability{Dir: "clusterdb", FS: manifestFS},
			},
			PerShard: func(i int, o *Options) { o.Durability.FS = fses[i] },
			Health:   HealthOptions{Window: 8, TripFailures: 2},
			Repair:   RepairOptions{Disable: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := open()
	sess := c.NewSession()
	for k := uint64(0); k < 150; k++ {
		if err := sess.Put(k, k+3); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil {
		t.Fatalf("all-healthy snapshot: %v", err)
	}
	base := []uint64{
		c.DB(0).Metrics().Durability.Snapshots,
		c.DB(1).Metrics().Durability.Snapshots,
		c.DB(2).Metrics().Durability.Snapshots,
	}
	// More acked writes, then shard 1's disk dies.
	for k := uint64(150); k < 200; k++ {
		if err := sess.Put(k, k+3); err != nil {
			t.Fatal(err)
		}
	}
	fses[1].Kill()
	tripShard(t, c, sess, 1)

	err := c.Snapshot()
	if err == nil {
		t.Fatal("degraded snapshot must report the excluded shard")
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("degraded snapshot error %v does not wrap ErrShardUnavailable", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "cluster shard 1 snapshot") {
		t.Fatalf("error does not name the excluded shard: %v", err)
	}
	if strings.Contains(msg, "cluster shard 0") || strings.Contains(msg, "cluster shard 2") {
		t.Fatalf("error blames a healthy shard: %v", err)
	}
	// The healthy shards actually snapshotted.
	for _, i := range []int{0, 2} {
		if got := c.DB(i).Metrics().Durability.Snapshots; got != base[i]+1 {
			t.Fatalf("shard %d snapshots = %d, want %d", i, got, base[i]+1)
		}
	}
	if err := c.Close(); err != nil && !strings.Contains(err.Error(), "cluster shard 1") {
		t.Fatal(err)
	}

	// Disk back, cluster reopened: the v2 manifest (exclusion set + floor
	// vector) must parse and verify, and every acknowledged key — shard
	// 1's included — must be there.
	fses[1].Reboot()
	c2 := open()
	defer c2.Close()
	sess2 := c2.NewSession()
	for k := uint64(0); k < 200; k++ {
		if v, ok, err := sess2.Get(k); err != nil || !ok || v != k+3 {
			t.Fatalf("key %d (shard %d) after reopen = %d,%v,%v", k, c2.ShardFor(k), v, ok, err)
		}
	}
}

// TestClusterRangeMidScanFailure is the satellite bugfix test: a shard
// dying mid-merge must surface, not truncate the stream silently.
// RangePartial keeps merging the healthy shard and reports the casualty;
// strict Range refuses to continue; Scan returns the error.
func TestClusterRangeMidScanFailure(t *testing.T) {
	c, err := OpenCluster(ClusterOptions{
		Shards: 2,
		Shard:  Options{ArenaWords: 1 << 19},
		Health: HealthOptions{Window: 8, TripFailures: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := c.NewSession()
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var stat RangeStat
	got := map[uint64]uint64{}
	i := 0
	for k, v := range sess.RangePartial(0, n-1, &stat) {
		got[k] = v
		i++
		if i == 10 {
			// The shard's store dies out from under the merge (the
			// in-process analogue of a disk vanishing mid-scan).
			c.DB(0).Close()
		}
	}
	if !stat.Partial {
		t.Fatal("mid-scan shard death not reported: stat.Partial = false")
	}
	if len(stat.Failed) != 1 || stat.Failed[0] != 0 {
		t.Fatalf("stat.Failed = %v, want [0]", stat.Failed)
	}
	if !errors.Is(stat.Err, ErrShardUnavailable) {
		t.Fatalf("stat.Err = %v, does not wrap ErrShardUnavailable", stat.Err)
	}
	// Shard 1's slice of the range is complete — the healthy shard's merge
	// continued past the failure point.
	miss0, miss1 := 0, 0
	for k := uint64(0); k < n; k++ {
		if _, ok := got[k]; ok {
			continue
		}
		if c.ShardFor(k) == 0 {
			miss0++
		} else {
			miss1++
		}
	}
	if miss1 != 0 {
		t.Fatalf("%d healthy-shard keys missing from partial merge", miss1)
	}
	if miss0 == 0 {
		t.Fatal("every dead-shard key was served: failure did not inject")
	}

	// Strict Range on the now-tripped shard yields nothing rather than a
	// stream with a hole.
	for k, v := range sess.Range(0, n-1) {
		t.Fatalf("strict Range yielded %d=%d past a failed shard", k, v)
	}
	// Scan surfaces the error alongside the healthy shard's keys.
	cnt, err := sess.Scan(0, n, func(_, _ uint64) bool { return true })
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Scan error = %v, want ErrShardUnavailable", err)
	}
	if cnt == 0 || cnt >= n {
		t.Fatalf("Scan visited %d keys, want only the healthy shard's", cnt)
	}
}
