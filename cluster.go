package eunomia

import (
	"bufio"
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eunomia/internal/durable"
	"eunomia/internal/shard"
)

// This file is the sharded serving layer: a Cluster partitions the key
// space across N independent DB shards — each with its own arena, HTM
// device, tree, WAL shard-group, resilience policy, and metrics domain —
// and routes operations through Sessions. Sharding multiplies every
// single-tree property: N contention domains instead of one (a hot key
// storms only its shard), N group-commit pipelines, N recovery streams.
// Cross-shard range queries merge the per-shard iterators back into one
// globally ordered stream.
//
// Shards are also independent *fault domains*: each carries a health
// breaker (cluster_health.go) so one dead disk degrades exactly one
// slice of the key space — routed ops to it fail fast with a typed
// error, Range skips-and-reports it in partial mode, Sync/Snapshot
// degrade to the healthy subset, and a background repair loop brings it
// back once the disk returns.

// Partition selects how a Cluster cuts the key space; see the shard
// package for the trade-off.
type Partition int

const (
	// HashPartition (the default) scatters keys — and any hot set — across
	// shards uniformly by a 64-bit mix.
	HashPartition Partition = iota
	// RangePartition gives shard i the contiguous interval
	// [i*width, (i+1)*width) of the uint64 key space.
	RangePartition
)

// String names the partition scheme.
func (p Partition) String() string { return p.internal().String() }

func (p Partition) internal() shard.Partition {
	if p == RangePartition {
		return shard.Range
	}
	return shard.Hash
}

// ClusterOptions configures OpenCluster.
type ClusterOptions struct {
	// Shards is the number of independent DB shards (default 4).
	Shards int
	// Partition selects the key-space cut (default HashPartition).
	Partition Partition
	// Shard is the per-shard Options template: every shard is an ordinary
	// DB opened with these options. With Durability.Dir set, it names the
	// cluster root: shard i logs under Dir/shard-<i>, and the cluster's
	// snapshot-barrier manifest lives in Dir itself.
	Shard Options
	// PerShard, when non-nil, adjusts shard i's options after templating —
	// the hook the crash harness uses to give every shard its own
	// fault-injecting filesystem.
	PerShard func(i int, o *Options)
	// Health configures the per-shard circuit breaker (on by default;
	// see HealthOptions).
	Health HealthOptions
	// Repair configures the self-healing repair loop that reopens Failed
	// durable shards in the background (on by default; see RepairOptions).
	Repair RepairOptions
	// Reshard configures the online migration engine (see ReshardOptions;
	// the zero value is correct).
	Reshard ReshardOptions
	// AutoSplit configures the hot-shard watcher that triggers a split
	// when one shard runs disproportionately hot (off by default; see
	// AutoSplitOptions).
	AutoSplit AutoSplitOptions
}

// clusterShard is one shard slot: the live DB behind an atomic pointer
// (the repair loop swaps in a recovered replacement), the options to
// reopen it with, its health breaker, and the durable watermark captured
// when it last tripped — the floor any re-admitted incarnation must have
// recovered past.
type clusterShard struct {
	idx    int
	opts   Options // final per-shard options (template + PerShard hook)
	db     atomic.Pointer[DB]
	gen    atomic.Uint64 // bumped on every repair swap; Sessions re-thread on mismatch
	health *shard.Health
	// watermark is the highest durable LSN known flushed when the shard
	// tripped: everything at or below it was acknowledged AND on disk, so
	// a reopened incarnation recovering short of it has lost data.
	watermark atomic.Uint64
	repairing atomic.Bool
	// ops counts successfully served operations — the heat signal the
	// auto-split watcher reads. lastOps is the watcher's private window
	// cursor.
	ops     atomic.Uint64
	lastOps uint64
}

// Cluster is a hash- or range-partitioned key-value store over N
// independent DB shards. All methods are safe for concurrent use;
// per-worker operations go through Session handles. The shard count is
// not fixed for life: Reshard (cluster_reshard.go) splits or merges the
// topology online, which is why routing goes through an epoched
// shard.Table and the shard slice sits behind an atomic pointer.
type Cluster struct {
	opts  ClusterOptions
	table *shard.Table
	// shards is the serving slot slice: slot i is shard i under the
	// current routing table. Reshard appends slots on a split and
	// truncates retired ones after a merge; readers load the slice once
	// per decision.
	shards atomic.Pointer[[]*clusterShard]

	// Durable clusters keep the barrier manifest on fs under dir.
	fs  durable.FS
	dir string

	healthOn  bool
	healthCfg shard.HealthConfig
	repair    RepairOptions
	retryCap  int // per-shard retry tokens a Session may bank

	stop     chan struct{} // closed by Close; repair loops watch it
	repairMu sync.Mutex    // serializes repair/migration spawn vs Close
	repairWG sync.WaitGroup

	// Online resharding state (cluster_reshard.go): the in-flight
	// migration, the goroutines it owns, the live-scan registry that
	// gates purges and slot retirement, and the session registry the
	// engine's quiesce barrier walks before the first copy.
	reshardMu  sync.Mutex
	mig        atomic.Pointer[migration]
	migWG      sync.WaitGroup
	scanMu     sync.Mutex
	scans      map[uint64]int // routing Gen a live merged scan froze -> count
	sessMu     sync.Mutex
	sessions   map[*Session]struct{}
	movesDone  atomic.Uint64
	redirects  atomic.Uint64
	autoSplits atomic.Uint64

	// Fault-domain counters (see FaultMetrics).
	shed          atomic.Uint64
	retries       atomic.Uint64
	retriesDenied atomic.Uint64

	snapMu sync.Mutex // serializes cluster snapshots (barrier + manifest)
	snapID atomic.Uint64
	closed atomic.Bool
}

// shardList returns the current serving slot slice (never nil after
// OpenCluster). The slice is immutable; Reshard swaps in a new one.
func (c *Cluster) shardList() []*clusterShard { return *c.shards.Load() }

// shard returns slot i's shard.
func (c *Cluster) shard(i int) *clusterShard { return (*c.shards.Load())[i] }

// shardDirName names shard i's durability directory under the cluster
// root.
func shardDirName(root string, i int) string {
	return root + "/shard-" + fmt.Sprint(i)
}

// OpenCluster opens every shard (recovering each from its own WAL and
// snapshots when durable) and verifies the cluster-wide snapshot barrier:
// if a previous Snapshot recorded a barrier LSN vector, every shard must
// have recovered at least up to its entry — a shard that comes back short
// has lost acknowledged writes (a swapped disk, a deleted directory), and
// OpenCluster fails loudly instead of serving the hole.
//
// The shard count is resolved against what the store itself recorded
// (see resolveTopology): a cluster that resharded in a previous life
// reopens at its committed topology, and one that crashed mid-migration
// resumes the migration in the background. Options.Shards == 0 adopts
// whatever the store says (default 4 for a fresh cluster); a non-zero
// Shards that contradicts the store fails with ErrTopologyMismatch.
func OpenCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Shards < 0 {
		return nil, fmt.Errorf("eunomia: cluster needs >= 1 shard, got %d", opts.Shards)
	}
	if opts.Shards > 64 {
		// The barrier manifest's exclusion set is a 64-bit mask.
		return nil, fmt.Errorf("eunomia: cluster supports <= 64 shards, got %d", opts.Shards)
	}
	c := &Cluster{
		opts:     opts,
		stop:     make(chan struct{}),
		scans:    map[uint64]int{},
		sessions: map[*Session]struct{}{},
	}
	c.healthOn = !opts.Health.Disable
	c.healthCfg = shard.HealthConfig{
		Window:           opts.Health.Window,
		TripFailures:     opts.Health.TripFailures,
		RecoverSuccesses: opts.Health.RecoverSuccesses,
	}
	c.repair = opts.Repair.withDefaults()
	c.retryCap = opts.Health.RetryBudget
	if c.retryCap == 0 {
		c.retryCap = defaultRetryBudget
	} else if c.retryCap < 0 {
		c.retryCap = 0
	}
	if opts.Shard.Durability.Dir != "" {
		c.dir = opts.Shard.Durability.Dir
		c.fs = opts.Shard.Durability.FS
		if c.fs == nil {
			c.fs = durable.OSFS{}
		}
		if err := c.fs.MkdirAll(c.dir); err != nil {
			return nil, err
		}
	}
	top, err := c.resolveTopology()
	if err != nil {
		return nil, err
	}
	var list []*clusterShard
	for i := 0; i < top.slots; i++ {
		o := opts.Shard
		if o.Durability.Dir != "" {
			o.Durability.Dir = shardDirName(c.dir, i)
		}
		if opts.PerShard != nil {
			opts.PerShard(i, &o)
		}
		db, err := Open(o)
		if err != nil {
			err = fmt.Errorf("eunomia: cluster shard %d: %w", i, err)
			return nil, errors.Join(append([]error{err}, closeAll(list)...)...)
		}
		sh := &clusterShard{idx: i, opts: o, health: shard.NewHealth(c.healthCfg)}
		sh.db.Store(db)
		list = append(list, sh)
	}
	c.shards.Store(&list)
	c.table = shard.NewTableAt(shard.New(top.stable, top.part), top.epoch)
	var resume *migration
	if top.man != nil {
		// A migration was in flight when the previous incarnation died:
		// re-install its routing state (already-cut intervals route to
		// their destinations immediately) and resume the engine below.
		man := top.man
		resume = newMigration(shard.New(man.from, top.part), shard.New(man.to, top.part), man.cut, man.purged)
		resume.cutGen = c.table.BeginReshard(resume.to, man.cut).Gen
		c.mig.Store(resume)
	}
	if c.dir != "" {
		if err := c.verifyBarrier(); err != nil {
			return nil, errors.Join(append([]error{err}, closeAll(list)...)...)
		}
		if !top.recorded {
			// First durable open (or a pre-resharding store): record the
			// resolved topology so a later reopen — or a crash before the
			// first snapshot — never has to guess the count from Options.
			if err := c.writeTopology(top.epoch, top.stable, top.part); err != nil {
				err = fmt.Errorf("eunomia: cluster topology record: %w", err)
				return nil, errors.Join(append([]error{err}, closeAll(list)...)...)
			}
		}
	}
	if resume != nil {
		c.migWG.Add(1)
		go c.runMigration(resume, true)
	}
	if opts.AutoSplit.Enable {
		c.migWG.Add(1)
		go c.autoSplitLoop()
	}
	return c, nil
}

// closeAll closes every shard's current DB, collecting non-nil errors.
func closeAll(shards []*clusterShard) []error {
	var errs []error
	for _, sh := range shards {
		db := sh.db.Load()
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d close: %w", sh.idx, err))
		}
	}
	return errs
}

// Shards returns the serving slot count. During a split it already
// includes the destination slots; during a merge it still includes the
// retiring sources until the migration finishes.
func (c *Cluster) Shards() int { return len(c.shardList()) }

// Epoch returns the completed-reshard count: 0 for a cluster that never
// changed topology, +1 per finished Reshard.
func (c *Cluster) Epoch() uint64 { return c.table.Epoch() }

// Migrating reports whether a topology change is in flight.
func (c *Cluster) Migrating() bool { return c.table.Migrating() }

// ShardFor returns the shard that owns key under the current routing
// view.
func (c *Cluster) ShardFor(key uint64) int { return c.table.Route(key) }

// DB returns shard i's current underlying DB — for per-shard drain,
// metrics, or direct inspection. The repair loop may swap a Failed
// shard's DB for a recovered one; the returned handle is the one live at
// the call. Mutating a shard outside the router's key map breaks the
// cluster's partitioning invariant.
func (c *Cluster) DB(i int) *DB { return c.shard(i).db.Load() }

// Session is a Cluster's per-worker handle: one tree Thread per shard
// slot, with operations routed by key. Like Thread, a Session must be
// used by one goroutine at a time; create one per worker.
type Session struct {
	c        *Cluster
	tableGen uint64 // routing generation the slot arrays were sized against
	threads  []*Thread
	gens     []uint64 // shard generation each thread was built against
	tokens   []int    // banked retry tokens (per-shard retry budget)
	earned   []int    // successes counted toward the next token

	// guard is held (read side) for every routed operation's whole
	// execution. The migration engine's quiesce barrier takes the write
	// side of every registered session's guard once, after installing the
	// migration routing view and before the first copy: an operation that
	// routed under a pre-migration view — and so took the fenceless fast
	// path — is guaranteed to have finished before any of its keys move,
	// closing the window where a delayed write could land on a
	// de-authorized source after its interval was copied and cut over.
	guard sync.RWMutex
}

// NewSession creates a worker handle spanning every shard. Threads are
// built lazily so a Failed shard costs nothing until it heals. Sessions
// are registered with the cluster (the resharding engine's quiesce
// barrier walks them); a workload that churns Sessions should Close each
// one when done with it.
func (c *Cluster) NewSession() *Session {
	s := &Session{c: c, tableGen: c.table.Gen()}
	s.ensure(len(c.shardList()))
	c.sessMu.Lock()
	c.sessions[s] = struct{}{}
	c.sessMu.Unlock()
	return s
}

// Close unregisters the Session from the cluster. The Session must not
// be used afterwards: an unregistered Session's operations are invisible
// to the resharding engine's quiesce barrier, so using one concurrently
// with a Reshard can lose writes. Close is optional for Sessions that
// live as long as the Cluster. The error is always nil (the signature
// satisfies eunomia.Handle).
func (s *Session) Close() error {
	s.c.sessMu.Lock()
	delete(s.c.sessions, s)
	s.c.sessMu.Unlock()
	return nil
}

// ensure sizes the per-slot arrays for n serving slots, preserving
// existing threads and banked tokens; new slots start with a full bank.
func (s *Session) ensure(n int) {
	for len(s.threads) < n {
		s.threads = append(s.threads, nil)
		s.gens = append(s.gens, 0)
		s.tokens = append(s.tokens, s.c.retryCap)
		s.earned = append(s.earned, 0)
	}
	if len(s.threads) > n {
		s.threads = s.threads[:n]
		s.gens, s.tokens, s.earned = s.gens[:n], s.tokens[:n], s.earned[:n]
	}
}

// shardThread returns the Session's thread for shard i, failing fast
// when the cluster is closed or the shard's breaker is open, and
// re-threading against the current DB after a repair swap. It also
// observes the routing-table generation: a reshard that grew or shrank
// the slot count resizes the Session's per-slot arrays here, the same
// lazy re-threading discipline the health layer uses for repair swaps.
func (s *Session) shardThread(i int) (*Thread, error) {
	c := s.c
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if g := c.table.Gen(); g != s.tableGen {
		s.tableGen = g
		s.ensure(len(c.shardList()))
	}
	if i >= len(s.threads) {
		s.ensure(i + 1)
	}
	sh := c.shard(i)
	if c.healthOn && !sh.health.Allow() {
		c.shed.Add(1)
		return nil, c.unavailable(i)
	}
	if g := sh.gen.Load(); s.threads[i] == nil || g != s.gens[i] {
		s.threads[i] = sh.db.Load().NewThread()
		s.gens[i] = g
	}
	return s.threads[i], nil
}

// do runs op against shard i with health accounting and the retry
// budget: a transient failure is retried at most once, and only while
// the Session holds a banked token (earned by successes), so retries can
// never amplify a failure storm.
func (s *Session) do(i int, op func(*Thread) error) error {
	c := s.c
	for attempt := 0; ; attempt++ {
		th, err := s.shardThread(i)
		if err != nil {
			return err
		}
		err = op(th)
		if err == nil {
			sh := c.shard(i)
			sh.ops.Add(1)
			if c.healthOn {
				sh.health.RecordSuccess()
				s.earnRetry(i)
			}
			return nil
		}
		if errors.Is(err, ErrReservedValue) {
			// The caller's error, not the shard's: no health signal.
			return err
		}
		retryable := true
		var nr errHalfApplied
		if errors.As(err, &nr) {
			// The op mutated state before the acknowledgement failed.
			// Retrying would observe its own half-applied effect and could
			// launder the lost ack into a clean result (a Delete re-run
			// against the key it just removed reports "was already absent"
			// — a lie the linearizability fuzzer catches). Surface the
			// failure instead; the caller holds an effect-unknown window.
			retryable = false
			err = nr.error
		}
		if c.closed.Load() {
			return ErrClosed
		}
		if !c.healthOn {
			return err
		}
		sh := c.shard(i)
		cause := c.causeOf(err)
		if sh.health.RecordFailure(cause, false) {
			c.tripped(sh)
		}
		if attempt == 0 && retryable && sh.health.Allow() {
			if s.spendRetry(i) {
				c.retries.Add(1)
				continue
			}
			c.retriesDenied.Add(1)
		}
		return &ShardError{Shard: i, State: ShardState(sh.health.State()), Cause: cause}
	}
}

// moveRedirectLimit bounds how many times one operation will chase a
// moving key across cutovers before surfacing ErrMoved. Two hops cover
// every single-migration interleaving; more means the topology is
// churning faster than the op can route.
const moveRedirectLimit = 3

// routed runs op on key's owning shard under the current routing view.
// Keys inside a not-yet-cut-over migration interval are the delicate
// case: the op takes the migration fence (shared side) and revalidates
// the route under it, so the engine's cutover — which takes the fence
// exclusively — can never flip authority while an operation is mid-
// flight on the old owner. A successful write to the interval currently
// being copied is noted in the migration's dirty set for catch-up. When
// the owner did change between routing and fencing, the op redirects:
// it re-routes on the fresh view and retries — the first hop free (the
// op never executed, so the retry is always safe), further hops from
// the Session's banked retry tokens — and only a topology churning
// faster than the redirect limit surfaces ErrMoved.
//
// The whole call runs under the Session guard (read side): a freshly
// begun migration quiesces every registered session before its first
// copy, so the fenceless stable-key fast path below is safe even for an
// operation that routed just before BeginReshard — the engine waits for
// it to finish before any of its keys can move.
func (s *Session) routed(key uint64, write bool, op func(*Thread) error) error {
	c := s.c
	s.guard.RLock()
	defer s.guard.RUnlock()
	for hops := 0; ; hops++ {
		v := c.table.View()
		i := v.Route(key)
		mi, moving := v.MoveOf(key)
		if !moving || mi < v.Cut() {
			// Stable key, or its interval already cut over: the owner can
			// never silently change under the op (cutovers only ever flip
			// un-cut intervals, and a new migration quiesces this session's
			// guard before touching anything), so no fence is needed.
			return s.do(i, op)
		}
		m := c.mig.Load()
		if m == nil {
			// The migration retired between the view load and here; the
			// fresh view on the next spin routes conclusively.
			if hops < moveRedirectLimit {
				continue
			}
			return fmt.Errorf("eunomia: key %d: %w", key, ErrMoved)
		}
		m.fence.RLock()
		if c.mig.Load() != m {
			m.fence.RUnlock()
			if hops < moveRedirectLimit {
				continue
			}
			return fmt.Errorf("eunomia: key %d: %w", key, ErrMoved)
		}
		v2 := c.table.View()
		if i2 := v2.Route(key); i2 != i {
			// Lost the race with a cutover: the interval flipped between
			// routing and fencing. Redirect to the new owner.
			m.fence.RUnlock()
			c.redirects.Add(1)
			if hops == 0 || s.spendRetry(i2) {
				if hops > 0 {
					c.retries.Add(1)
				}
				continue
			}
			c.retriesDenied.Add(1)
			return fmt.Errorf("eunomia: key %d: %w", key, ErrMoved)
		}
		err := s.do(i, op)
		if err == nil && write {
			if ami, active := v2.MoveOf(key); active && ami == v2.Cut() {
				// The engine is copying this interval right now; make sure
				// the write reaches the destination before cutover.
				m.note(key)
			}
		}
		m.fence.RUnlock()
		return err
	}
}

// Get returns the value stored under key, from the owning shard.
func (s *Session) Get(key uint64) (uint64, bool, error) {
	var v uint64
	var ok bool
	err := s.routed(key, false, func(th *Thread) error {
		var e error
		v, ok, e = th.Get(key)
		return e
	})
	return v, ok, err
}

// Put inserts or updates key on its owning shard. Durability semantics
// match Thread.Put: with a durable cluster, Put returns only after the
// owning shard's WAL has the operation on disk. A transient shard error
// is retried once under the Session's retry budget (Put is idempotent,
// so the retry is safe even if the first attempt half-applied).
func (s *Session) Put(key, val uint64) error {
	return s.routed(key, true, func(th *Thread) error {
		return th.Put(key, val)
	})
}

// Delete removes key from its owning shard, reporting whether it was
// present. Unlike Put, a failed Delete is retried only when the first
// attempt provably applied nothing (present=false with an error means
// the shard rejected the op before touching the tree). A half-applied
// Delete — removal applied, acknowledgement lost — must NOT be retried:
// the retry would find the key already gone and report a clean
// "was already absent", silently laundering an unacknowledged removal
// into a result no linearizable history can explain. Such failures
// surface as errors; the caller holds an effect-unknown window, exactly
// as with a non-retried failed Put.
func (s *Session) Delete(key uint64) (bool, error) {
	var present bool
	err := s.routed(key, true, func(th *Thread) error {
		var e error
		present, e = th.Delete(key)
		if e != nil && present {
			return errHalfApplied{e}
		}
		return e
	})
	return present, err
}

// errHalfApplied marks an operation that mutated shard state before its
// acknowledgement failed. Session.do never retries these: a retry runs
// against the op's own half-applied effect and can return an answer that
// contradicts the mutation it silently performed.
type errHalfApplied struct{ error }

func (e errHalfApplied) Unwrap() error { return e.error }

// RangeStat reports how a partial-mode range ended: which shards were
// excluded and why. Pass one to RangePartial; read it after iteration.
type RangeStat struct {
	// Partial is true when at least one shard's slice of the range is
	// missing from the merged stream.
	Partial bool
	// Skipped lists shards whose breaker was already open when the merge
	// started — none of their keys appear.
	Skipped []int
	// Failed lists shards that died mid-scan — their keys appear only up
	// to the failure point.
	Failed []int
	// Err joins the per-shard errors behind Skipped and Failed (each
	// errors.Is-matches ErrShardUnavailable, or ErrClosed if the cluster
	// shut down mid-range).
	Err error
}

// Range returns an iterator over the key/value pairs in [from, to],
// ascending across every shard: the per-shard streams (each globally
// sorted within its shard) are merged into one ordered stream. Keys are
// yielded strictly increasing — each key at most once, from its owning
// shard. Per-key snapshot granularity matches Thread.Range; keys written
// concurrently may or may not be observed. Breaking out of the loop
// releases every per-shard cursor immediately.
//
// Range is strict: if any shard fails — breaker already open, or a disk
// dying mid-scan — iteration stops at the failure rather than silently
// serving a stream with a hole where that shard's keys should be. Use
// RangePartial to keep merging the healthy shards instead, or Scan for
// the error itself.
func (s *Session) Range(from, to uint64) iter.Seq2[uint64, uint64] {
	return s.mergedRange(from, to, nil, true)
}

// RangePartial is Range's explicit partial-result mode: failed shards
// are skipped (Skipped) or abandoned at their failure point (Failed)
// while the healthy shards' merge continues, and stat reports exactly
// what is missing. The caller opts into partiality by calling this —
// plain Range never silently drops a shard.
func (s *Session) RangePartial(from, to uint64, stat *RangeStat) iter.Seq2[uint64, uint64] {
	return s.mergedRange(from, to, stat, false)
}

// kvPair is one buffered key/value pair in a shard cursor page.
type kvPair struct{ k, v uint64 }

// shardCursor pages one shard's slice of [from, to] through Thread.Scan,
// capturing the error when the shard dies mid-scan — the k-way merge's
// goroutine-free replacement for iter.Pull2 heads, which had no way to
// surface a failure. Every cursor filters its shard's keys through the
// scan's frozen routing view: mid-migration a key can physically exist
// on both the source and the destination (copied but not yet purged),
// and accepting it only from the shard the frozen view names keeps the
// merged stream exactly-once no matter how many cutovers land while the
// scan runs.
type shardCursor struct {
	s         *Session
	shard     int
	view      *shard.View
	from, to  uint64
	buf       []kvPair
	pos       int
	exhausted bool
	err       error
	k, v      uint64
	ok        bool
}

const clusterRangeBatch = 256

// next advances to the following pair, reporting availability. On
// false, cur.err distinguishes shard failure from normal exhaustion.
func (cur *shardCursor) next() bool {
	for {
		if cur.pos < len(cur.buf) {
			p := cur.buf[cur.pos]
			cur.pos++
			cur.k, cur.v, cur.ok = p.k, p.v, true
			return true
		}
		if cur.exhausted || cur.err != nil {
			cur.ok = false
			return false
		}
		cur.fill()
	}
}

// fill loads the next page. Health is re-checked per page, so a shard
// tripped by concurrent writers is caught at the next page boundary.
// Pagination advances by the raw keys the shard returned, not the keys
// the view filter kept — a page of foreign-owned keys (stale copies
// awaiting purge) must not read as exhaustion.
func (cur *shardCursor) fill() {
	cur.buf, cur.pos = cur.buf[:0], 0
	th, err := cur.s.shardThread(cur.shard)
	if err != nil {
		cur.err = err
		return
	}
	past := false
	raw := 0
	var lastRaw uint64
	if _, err := th.Scan(cur.from, clusterRangeBatch, func(k, v uint64) bool {
		if k > cur.to {
			past = true
			return false
		}
		raw++
		lastRaw = k
		if cur.view.Route(k) == cur.shard {
			cur.buf = append(cur.buf, kvPair{k, v})
		}
		return true
	}); err != nil {
		cur.err = cur.s.scanFailed(cur.shard, err)
		return
	}
	if raw == 0 || past || raw < clusterRangeBatch {
		cur.exhausted = true
	}
	if raw > 0 {
		if lastRaw == ^uint64(0) || lastRaw >= cur.to {
			cur.exhausted = true
		} else {
			cur.from = lastRaw + 1
		}
	}
}

// scanFailed scores a mid-scan shard failure and wraps it.
func (s *Session) scanFailed(i int, err error) error {
	c := s.c
	if c.closed.Load() {
		return ErrClosed
	}
	if !c.healthOn {
		return err
	}
	sh := c.shard(i)
	cause := c.causeOf(err)
	if sh.health.RecordFailure(cause, false) {
		c.tripped(sh)
	}
	return &ShardError{Shard: i, State: ShardState(sh.health.State()), Cause: cause}
}

// mergedRange is the k-way merge behind Range (strict) and RangePartial.
// The whole merge routes against one frozen routing view, registered
// with the cluster's live-scan registry (scanFreeze registers before the
// view is trusted, so a concurrent cutover+purge can never slip through
// the registration gap): the migration engine will not purge a cut-over
// interval's source copies — nor retire a merged-away slot — while a
// scan that still routes reads there is running.
func (s *Session) mergedRange(from, to uint64, stat *RangeStat, strict bool) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		v := s.c.scanFreeze()
		defer s.c.scanExit(v.Gen)
		var errs []error
		record := func(i int, err error, midScan bool) {
			if stat != nil {
				stat.Partial = true
				if midScan {
					stat.Failed = append(stat.Failed, i)
				} else {
					stat.Skipped = append(stat.Skipped, i)
				}
			}
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d range: %w", i, err))
		}
		defer func() {
			if stat != nil {
				stat.Err = errors.Join(errs...)
			}
		}()
		curs := make([]*shardCursor, 0, v.Shards())
		for i := 0; i < v.Shards(); i++ {
			cur := &shardCursor{s: s, shard: i, view: v, from: from, to: to}
			if cur.next() {
				curs = append(curs, cur)
				continue
			}
			if cur.err != nil {
				record(i, cur.err, false)
				if strict {
					return
				}
			}
		}
		last, have := uint64(0), false
		for {
			best := -1
			for i, cur := range curs {
				if cur.ok && (best < 0 || cur.k < curs[best].k) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			cur := curs[best]
			k, v := cur.k, cur.v
			failed := false
			if !cur.next() && cur.err != nil {
				record(cur.shard, cur.err, true)
				failed = true
			}
			if have && k == last {
				// Shards own disjoint keys, so a duplicate can only mean a
				// mis-routed write; the merge still guarantees strictly
				// increasing output and keeps the lowest-shard copy.
				if failed && strict {
					return
				}
				continue
			}
			last, have = k, true
			if !yield(k, v) {
				return
			}
			if failed && strict {
				// The pair in hand was valid; everything after the failure
				// point would have a hole, so stop here.
				return
			}
		}
	}
}

// Scan visits up to max keys >= from in ascending order across all
// shards, stopping early if fn returns false, and returns the number
// visited — the callback form of Range. Unlike Range's silent stop, a
// shard failing mid-scan surfaces as an error (wrapping
// ErrShardUnavailable) alongside however many keys were visited first.
func (s *Session) Scan(from uint64, max int, fn func(key, val uint64) bool) (int, error) {
	if s.c.closed.Load() {
		return 0, ErrClosed
	}
	var stat RangeStat
	n := 0
	for k, v := range s.RangePartial(from, ^uint64(0), &stat) {
		if n == max {
			break
		}
		n++
		if !fn(k, v) {
			break
		}
	}
	return n, stat.Err
}

// Sync forces every healthy shard's acknowledged-but-buffered WAL bytes
// to disk. Every healthy shard is synced even if some fail; the error
// joins every failing (or breaker-open) shard's error rather than hiding
// all but the first.
func (c *Cluster) Sync() error {
	if c.closed.Load() {
		return ErrClosed
	}
	var errs []error
	for i, sh := range c.shardList() {
		if c.healthOn && !sh.health.Allow() {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d sync: %w", i, c.unavailable(i)))
			continue
		}
		if err := sh.db.Load().Sync(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d sync: %w", i, c.scoreMaintErr(sh, err)))
		} else if c.healthOn {
			sh.health.RecordSuccess()
		}
	}
	return errors.Join(errs...)
}

// scoreMaintErr records a maintenance-path (Sync/Snapshot) failure
// against the shard's breaker and returns the error to surface.
func (c *Cluster) scoreMaintErr(sh *clusterShard, err error) error {
	if !c.healthOn {
		return err
	}
	cause := c.causeOf(err)
	if sh.health.RecordFailure(cause, false) {
		c.tripped(sh)
	}
	return &ShardError{Shard: sh.idx, State: ShardState(sh.health.State()), Cause: cause}
}

// Snapshot takes a consistent cluster-wide snapshot:
//
//  1. Barrier: every healthy shard flushes its WAL, then the per-shard
//     durable-LSN vector (flushed watermark, sound under concurrent
//     writers) is captured — a cut known on disk on every shard.
//  2. The vector is committed as the barrier manifest (tmp + sync +
//     rename + dir fsync) in the cluster root.
//  3. Each included shard snapshots and truncates independently.
//
// The manifest is the cross-shard consistency witness: recovery re-checks
// every shard against it, so a shard silently rolled back below the
// barrier (lost disk, restored-from-older-backup) fails OpenCluster
// instead of serving a state no single point in time ever had.
//
// Failed shards do not block the healthy subset: they are excluded from
// the barrier (the manifest records the exclusion set, and their vector
// entry carries the best known floor — the durable watermark captured at
// trip time, never less than the previous barrier's floor) and reported
// in the joined error. Every included shard is attempted even if some
// fail; failures are joined.
func (c *Cluster) Snapshot() error {
	if c.closed.Load() {
		return ErrClosed
	}
	if c.dir == "" {
		return nil
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	shards := c.shardList()
	var errs []error
	excluded := uint64(0)
	for i, sh := range shards {
		if c.healthOn && !sh.health.Allow() {
			excluded |= 1 << uint(i)
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d snapshot: %w", i, c.unavailable(i)))
			continue
		}
		if err := sh.db.Load().Sync(); err != nil {
			err = fmt.Errorf("eunomia: cluster shard %d sync: %w", i, c.scoreMaintErr(sh, err))
			if !c.healthOn {
				return errors.Join(append(errs, err)...)
			}
			excluded |= 1 << uint(i)
			errs = append(errs, err)
		} else if c.healthOn {
			sh.health.RecordSuccess()
		}
	}
	if excluded == uint64(1)<<uint(len(shards))-1 {
		// Nothing healthy to snapshot; no barrier to write.
		return errors.Join(errs...)
	}
	prev, err := c.readBarrier()
	if err != nil {
		return errors.Join(append(errs, err)...)
	}
	vec := make([]uint64, len(shards))
	for i, sh := range shards {
		if excluded&(1<<uint(i)) != 0 {
			// Best sound floor for an excluded shard: what was flushed when
			// it tripped (or is flushed now, if it is still live enough to
			// say), never regressing below the previous barrier.
			vec[i] = sh.watermark.Load()
			if db := sh.db.Load(); db != nil {
				if lsn := db.durableLSN(); lsn > vec[i] {
					vec[i] = lsn
				}
			}
			if prev != nil && i < len(prev.vec) && prev.vec[i] > vec[i] {
				vec[i] = prev.vec[i]
			}
			continue
		}
		vec[i] = sh.db.Load().durableLSN()
	}
	if err := c.writeBarrier(vec, excluded); err != nil {
		return errors.Join(append(errs, err)...)
	}
	for i, sh := range shards {
		if excluded&(1<<uint(i)) != 0 {
			continue
		}
		if err := sh.db.Load().Snapshot(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d snapshot: %w", i, c.scoreMaintErr(sh, err)))
		}
	}
	return errors.Join(errs...)
}

// Close stops the repair loops and any in-flight migration, closes every
// shard (flushing each WAL), and marks the cluster closed. Idempotent.
// Every shard is closed even if some fail; failures are joined. A
// migration interrupted by Close is resumed from its manifest on the next
// OpenCluster.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Barrier: any startRepair in flight has either registered with the
	// WaitGroup (Wait covers it) or will observe closed and stand down.
	c.repairMu.Lock()
	c.repairMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(c.stop)
	c.repairWG.Wait()
	c.migWG.Wait()
	return errors.Join(closeAll(c.shardList())...)
}

// barrierFile is the manifest's name in the cluster root.
const barrierFile = "cluster-barrier"

// writeBarrier commits the barrier LSN vector crash-atomically. The v3
// header carries the topology epoch so a barrier taken before (or during)
// a reshard is interpretable after it completes; the exclusion set
// (Failed shards carried at their last known floor) rides in the same
// header.
func (c *Cluster) writeBarrier(vec []uint64, excluded uint64) error {
	id := c.snapID.Add(1)
	var b strings.Builder
	fmt.Fprintf(&b, "euno-cluster-barrier v3 id=%d epoch=%d shards=%d excluded=%d\n", id, c.table.Epoch(), len(vec), excluded)
	for i, lsn := range vec {
		fmt.Fprintf(&b, "%d %d\n", i, lsn)
	}
	return c.commitFile(barrierFile, b.String())
}

// barrierInfo is a parsed barrier manifest: the durable-LSN floor vector
// plus the header's topology context.
type barrierInfo struct {
	vec      []uint64
	epoch    uint64 // topology epoch the barrier was taken under (0 for v1/v2)
	excluded uint64
}

// readBarrier loads the barrier manifest; a missing manifest returns
// (nil, nil) — no barrier has ever committed, so there is nothing to
// verify against. v1 and v2 headers (pre-resharding formats) load as
// epoch 0; verification decides what a shard-count difference means, not
// the parser.
func (c *Cluster) readBarrier() (*barrierInfo, error) {
	names, err := c.fs.List(c.dir)
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range names {
		if n == barrierFile {
			found = true
			break
		}
	}
	if !found {
		return nil, nil
	}
	f, err := c.fs.Open(c.dir + "/" + barrierFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("eunomia: cluster barrier manifest empty")
	}
	var id uint64
	info := &barrierInfo{}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-barrier v3 id=%d epoch=%d shards=%d excluded=%d", &id, &info.epoch, &n, &info.excluded); err != nil {
		if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-barrier v2 id=%d shards=%d excluded=%d", &id, &n, &info.excluded); err != nil {
			if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-barrier v1 id=%d shards=%d", &id, &n); err != nil {
				return nil, fmt.Errorf("eunomia: cluster barrier manifest header %q: %v", sc.Text(), err)
			}
		}
	}
	info.vec = make([]uint64, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("eunomia: cluster barrier manifest truncated at shard %d", i)
		}
		var idx int
		var lsn uint64
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &idx, &lsn); err != nil || idx != i {
			return nil, fmt.Errorf("eunomia: cluster barrier manifest line %q", sc.Text())
		}
		info.vec[i] = lsn
	}
	if id > c.snapID.Load() {
		c.snapID.Store(id)
	}
	return info, sc.Err()
}

// verifyBarrier cross-checks recovered shards against the last committed
// barrier vector. The barrier's topology epoch decides how to read a
// shard-count difference:
//
//   - barrier epoch > current epoch: the store is from the cluster's
//     future — a stale shard tree was restored next to a newer barrier.
//     Refuse with ErrTopologyMismatch.
//   - barrier epoch == current epoch and the counts still differ (with no
//     migration in flight to explain it): the manifest and the topology
//     disagree about the same era. Refuse with ErrTopologyMismatch.
//   - barrier epoch < current epoch: the barrier predates a completed
//     reshard. Its floors are still sound for the slots both eras share,
//     so verify the overlap — keys that moved since are covered by the
//     migration manifest's own durability, not the old barrier.
func (c *Cluster) verifyBarrier() error {
	info, err := c.readBarrier()
	if err != nil || info == nil {
		return err
	}
	cur := c.table.Epoch()
	shards := c.shardList()
	if info.epoch > cur {
		return &TopologyMismatchError{
			StoredEpoch: info.epoch, CurrentEpoch: cur,
			StoredShards: len(info.vec), CurrentShards: len(shards),
		}
	}
	if info.epoch == cur && len(info.vec) != len(shards) && !c.table.Migrating() {
		return &TopologyMismatchError{
			StoredEpoch: info.epoch, CurrentEpoch: cur,
			StoredShards: len(info.vec), CurrentShards: len(shards),
		}
	}
	n := len(info.vec)
	if len(shards) < n {
		n = len(shards)
	}
	var errs []error
	for i := 0; i < n; i++ {
		if got := shards[i].db.Load().recoveredSeq(); got < info.vec[i] {
			errs = append(errs, fmt.Errorf(
				"eunomia: cluster shard %d recovered to LSN %d but the snapshot barrier requires >= %d: acknowledged writes were lost",
				i, got, info.vec[i]))
		}
	}
	return errors.Join(errs...)
}

// ClusterMetrics is the cluster-wide unified snapshot: the per-shard
// Metrics plus their aggregate, and the fault-domain layer's view.
type ClusterMetrics struct {
	// Shards is the shard count.
	Shards int
	// Agg sums (or, where summing is meaningless, conservatively merges)
	// every shard's Metrics.
	Agg Metrics
	// PerShard holds each shard's own snapshot, index-aligned with
	// Cluster.DB.
	PerShard []Metrics
	// Health holds each shard's breaker state, index-aligned.
	Health []ShardHealthMetrics
	// Fault aggregates the fault-domain layer's counters.
	Fault FaultMetrics
	// Topology is the routing layer's view: epoch, generation, and the
	// reshard counters.
	Topology TopologyMetrics
}

// TopologyMetrics is the routing table's state plus the migration
// engine's lifetime counters.
type TopologyMetrics struct {
	// Epoch counts completed topology changes.
	Epoch uint64
	// RoutingGen is the routing generation (bumps on migration begin,
	// every interval cutover, and finish).
	RoutingGen uint64
	// Shards is the serving slot count under the current view.
	Shards int
	// Migrating reports an in-flight topology change.
	Migrating bool
	// MovesDone counts migration intervals fully completed (copied, cut
	// over, purged) over the cluster's lifetime.
	MovesDone uint64
	// Redirects counts operations re-routed mid-flight because their key's
	// interval cut over under them.
	Redirects uint64
	// AutoSplits counts resharding runs triggered by the hot-shard watcher.
	AutoSplits uint64
}

// Metrics returns the cluster-wide aggregate snapshot — the
// Store-interface view. Use ClusterMetrics for the per-shard breakdown,
// health states and topology counters.
func (c *Cluster) Metrics() Metrics { return c.ClusterMetrics().Agg }

// ClusterMetrics returns one coherent snapshot of every shard plus the
// aggregate. Like DB.Metrics, it is safe to call concurrently with
// operations. A repaired shard's counters restart with its recovered
// incarnation.
func (c *Cluster) ClusterMetrics() ClusterMetrics {
	shards := c.shardList()
	v := c.table.View()
	cm := ClusterMetrics{Shards: len(shards)}
	cm.Fault = FaultMetrics{
		ShedOps:       c.shed.Load(),
		Retries:       c.retries.Load(),
		RetriesDenied: c.retriesDenied.Load(),
	}
	cm.Topology = TopologyMetrics{
		Epoch:      v.Epoch,
		RoutingGen: v.Gen,
		Shards:     v.Shards(),
		Migrating:  v.Migrating(),
		MovesDone:  c.movesDone.Load(),
		Redirects:  c.redirects.Load(),
		AutoSplits: c.autoSplits.Load(),
	}
	for _, sh := range shards {
		m := sh.db.Load().Metrics()
		cm.PerShard = append(cm.PerShard, m)
		mergeMetrics(&cm.Agg, &m)
		hs := sh.health.Stats()
		cm.Health = append(cm.Health, ShardHealthMetrics{
			State:     ShardState(hs.State),
			Permanent: hs.Permanent,
			Failures:  hs.Failures,
			Trips:     hs.Trips,
			Repairs:   hs.Repairs,
			Cause:     hs.Cause,
		})
		cm.Fault.Trips += hs.Trips
		cm.Fault.Repairs += hs.Repairs
	}
	sort.Slice(cm.Agg.Contention.HotLeaves, func(i, j int) bool {
		return cm.Agg.Contention.HotLeaves[i].Total > cm.Agg.Contention.HotLeaves[j].Total
	})
	return cm
}

// mergeMetrics folds src into dst. Counters add; percentiles and booleans
// merge conservatively (max / or).
func mergeMetrics(dst *Metrics, src *Metrics) {
	dst.Tx.Attempts += src.Tx.Attempts
	dst.Tx.Commits += src.Tx.Commits
	dst.Tx.Aborts += src.Tx.Aborts
	dst.Tx.Fallbacks += src.Tx.Fallbacks
	dst.Tx.WastedCycles += src.Tx.WastedCycles
	dst.Tx.TxLoads += src.Tx.TxLoads
	dst.Tx.TxStores += src.Tx.TxStores
	dst.Tx.BackoffCycles += src.Tx.BackoffCycles
	dst.Tx.DegradationEvents += src.Tx.DegradationEvents
	dst.Tx.WatchdogTrips += src.Tx.WatchdogTrips
	if len(src.Tx.AbortsByReason) > 0 && dst.Tx.AbortsByReason == nil {
		dst.Tx.AbortsByReason = map[string]uint64{}
	}
	for r, n := range src.Tx.AbortsByReason {
		dst.Tx.AbortsByReason[r] += n
	}
	dst.Resilience.Degraded = dst.Resilience.Degraded || src.Resilience.Degraded
	dst.Resilience.StormEvents += src.Resilience.StormEvents
	dst.Memory.LiveBytes += src.Memory.LiveBytes
	dst.Memory.PeakBytes += src.Memory.PeakBytes
	dst.Memory.ReservedBytes += src.Memory.ReservedBytes
	dst.Memory.CCMBytes += src.Memory.CCMBytes
	dst.Tree.Splits += src.Tree.Splits
	dst.Tree.Compactions += src.Tree.Compactions
	dst.Tree.MarkRejects += src.Tree.MarkRejects
	dst.Tree.RootRetries += src.Tree.RootRetries
	dst.Tree.MaintRounds += src.Tree.MaintRounds
	dst.Tree.EliminatedPairs += src.Tree.EliminatedPairs
	dst.Tree.CombinedBatches += src.Tree.CombinedBatches
	dst.Tree.CombinedOps += src.Tree.CombinedOps
	dst.Tree.CombinerHandoffs += src.Tree.CombinerHandoffs
	d, s := &dst.Durability, &src.Durability
	d.Enabled = d.Enabled || s.Enabled
	d.Flushes += s.Flushes
	d.FlushedFrames += s.FlushedFrames
	d.FlushedBytes += s.FlushedBytes
	if s.MaxBatch > d.MaxBatch {
		d.MaxBatch = s.MaxBatch
	}
	if d.Flushes > 0 {
		d.AvgBatch = float64(d.FlushedFrames) / float64(d.Flushes)
	}
	if s.FlushP50Ns > d.FlushP50Ns {
		d.FlushP50Ns = s.FlushP50Ns
	}
	if s.FlushP99Ns > d.FlushP99Ns {
		d.FlushP99Ns = s.FlushP99Ns
	}
	if s.FlushMaxNs > d.FlushMaxNs {
		d.FlushMaxNs = s.FlushMaxNs
	}
	d.Snapshots += s.Snapshots
	d.SnapshotErrors += s.SnapshotErrors
	d.RecoveryNs += s.RecoveryNs
	d.SnapshotPairs += s.SnapshotPairs
	d.ReplayedFrames += s.ReplayedFrames
	d.TornTails += s.TornTails
	dst.Contention.Enabled = dst.Contention.Enabled || src.Contention.Enabled
	dst.Contention.AbortsSeen += src.Contention.AbortsSeen
	dst.Contention.AbortsSampled += src.Contention.AbortsSampled
	dst.Contention.HotLeaves = append(dst.Contention.HotLeaves, src.Contention.HotLeaves...)
}
