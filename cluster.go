package eunomia

import (
	"bufio"
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eunomia/internal/durable"
	"eunomia/internal/shard"
)

// This file is the sharded serving layer: a Cluster partitions the key
// space across N independent DB shards — each with its own arena, HTM
// device, tree, WAL shard-group, resilience policy, and metrics domain —
// and routes operations through Sessions. Sharding multiplies every
// single-tree property: N contention domains instead of one (a hot key
// storms only its shard), N group-commit pipelines, N recovery streams.
// Cross-shard range queries merge the per-shard iterators back into one
// globally ordered stream.

// Partition selects how a Cluster cuts the key space; see the shard
// package for the trade-off.
type Partition int

const (
	// HashPartition (the default) scatters keys — and any hot set — across
	// shards uniformly by a 64-bit mix.
	HashPartition Partition = iota
	// RangePartition gives shard i the contiguous interval
	// [i*width, (i+1)*width) of the uint64 key space.
	RangePartition
)

// String names the partition scheme.
func (p Partition) String() string { return p.internal().String() }

func (p Partition) internal() shard.Partition {
	if p == RangePartition {
		return shard.Range
	}
	return shard.Hash
}

// ClusterOptions configures OpenCluster.
type ClusterOptions struct {
	// Shards is the number of independent DB shards (default 4).
	Shards int
	// Partition selects the key-space cut (default HashPartition).
	Partition Partition
	// Shard is the per-shard Options template: every shard is an ordinary
	// DB opened with these options. With Durability.Dir set, it names the
	// cluster root: shard i logs under Dir/shard-<i>, and the cluster's
	// snapshot-barrier manifest lives in Dir itself.
	Shard Options
	// PerShard, when non-nil, adjusts shard i's options after templating —
	// the hook the crash harness uses to give every shard its own
	// fault-injecting filesystem.
	PerShard func(i int, o *Options)
}

// Cluster is a hash- or range-partitioned key-value store over N
// independent DB shards. All methods are safe for concurrent use;
// per-worker operations go through Session handles.
type Cluster struct {
	opts   ClusterOptions
	router shard.Router
	shards []*DB

	// Durable clusters keep the barrier manifest on fs under dir.
	fs  durable.FS
	dir string

	snapMu sync.Mutex // serializes cluster snapshots (barrier + manifest)
	snapID atomic.Uint64
	closed atomic.Bool
}

// shardDirName names shard i's durability directory under the cluster
// root.
func shardDirName(root string, i int) string {
	return root + "/shard-" + fmt.Sprint(i)
}

// OpenCluster opens every shard (recovering each from its own WAL and
// snapshots when durable) and verifies the cluster-wide snapshot barrier:
// if a previous Snapshot recorded a barrier LSN vector, every shard must
// have recovered at least up to its entry — a shard that comes back short
// has lost acknowledged writes (a swapped disk, a deleted directory), and
// OpenCluster fails loudly instead of serving the hole.
func OpenCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("eunomia: cluster needs >= 1 shard, got %d", opts.Shards)
	}
	c := &Cluster{
		opts:   opts,
		router: shard.New(opts.Shards, opts.Partition.internal()),
	}
	if opts.Shard.Durability.Dir != "" {
		c.dir = opts.Shard.Durability.Dir
		c.fs = opts.Shard.Durability.FS
		if c.fs == nil {
			c.fs = durable.OSFS{}
		}
		if err := c.fs.MkdirAll(c.dir); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.Shards; i++ {
		o := opts.Shard
		if o.Durability.Dir != "" {
			o.Durability.Dir = shardDirName(c.dir, i)
		}
		if opts.PerShard != nil {
			opts.PerShard(i, &o)
		}
		db, err := Open(o)
		if err != nil {
			err = fmt.Errorf("eunomia: cluster shard %d: %w", i, err)
			return nil, errors.Join(append([]error{err}, closeAll(c.shards)...)...)
		}
		c.shards = append(c.shards, db)
	}
	if c.dir != "" {
		if err := c.verifyBarrier(); err != nil {
			return nil, errors.Join(append([]error{err}, closeAll(c.shards)...)...)
		}
	}
	return c, nil
}

// closeAll closes every shard, collecting the non-nil errors.
func closeAll(shards []*DB) []error {
	var errs []error
	for i, db := range shards {
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d close: %w", i, err))
		}
	}
	return errs
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardFor returns the shard that owns key.
func (c *Cluster) ShardFor(key uint64) int { return c.router.Route(key) }

// DB returns shard i's underlying DB — for per-shard drain, metrics, or
// direct inspection. Mutating a shard outside the router's key map breaks
// the cluster's partitioning invariant.
func (c *Cluster) DB(i int) *DB { return c.shards[i] }

// Session is a Cluster's per-worker handle: one tree Thread per shard,
// with operations routed by key. Like Thread, a Session must be used by
// one goroutine at a time; create one per worker.
type Session struct {
	c       *Cluster
	threads []*Thread
}

// NewSession creates a worker handle spanning every shard.
func (c *Cluster) NewSession() *Session {
	s := &Session{c: c, threads: make([]*Thread, len(c.shards))}
	for i, db := range c.shards {
		s.threads[i] = db.NewThread()
	}
	return s
}

// Get returns the value stored under key, from the owning shard.
func (s *Session) Get(key uint64) (uint64, bool, error) {
	return s.threads[s.c.router.Route(key)].Get(key)
}

// Put inserts or updates key on its owning shard. Durability semantics
// match Thread.Put: with a durable cluster, Put returns only after the
// owning shard's WAL has the operation on disk.
func (s *Session) Put(key, val uint64) error {
	return s.threads[s.c.router.Route(key)].Put(key, val)
}

// Delete removes key from its owning shard, reporting whether it was
// present.
func (s *Session) Delete(key uint64) (bool, error) {
	return s.threads[s.c.router.Route(key)].Delete(key)
}

// Range returns an iterator over the key/value pairs in [from, to],
// ascending across every shard: the per-shard iterators (each globally
// sorted within its shard) are merged into one ordered stream. Keys are
// yielded strictly increasing — each key at most once, from its owning
// shard. Per-key snapshot granularity matches Thread.Range; keys written
// concurrently may or may not be observed. Breaking out of the loop
// releases every per-shard iterator immediately.
func (s *Session) Range(from, to uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		type head struct {
			next func() (uint64, uint64, bool)
			stop func()
			k, v uint64
			ok   bool
		}
		heads := make([]head, 0, len(s.threads))
		defer func() {
			for i := range heads {
				heads[i].stop()
			}
		}()
		for _, th := range s.threads {
			next, stop := iter.Pull2(th.Range(from, to))
			h := head{next: next, stop: stop}
			h.k, h.v, h.ok = next()
			heads = append(heads, h)
		}
		last, have := uint64(0), false
		for {
			best := -1
			for i := range heads {
				if heads[i].ok && (best < 0 || heads[i].k < heads[best].k) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			h := &heads[best]
			k, v := h.k, h.v
			h.k, h.v, h.ok = h.next()
			if have && k == last {
				// Shards own disjoint keys, so a duplicate can only mean a
				// mis-routed write; the merge still guarantees strictly
				// increasing output and keeps the lowest-shard copy.
				continue
			}
			last, have = k, true
			if !yield(k, v) {
				return
			}
		}
	}
}

// Scan visits up to max keys >= from in ascending order across all
// shards, stopping early if fn returns false, and returns the number
// visited — the callback form of Range.
func (s *Session) Scan(from uint64, max int, fn func(key, val uint64) bool) (int, error) {
	if s.c.closed.Load() || s.c.shards[0].closed.Load() {
		return 0, ErrClosed
	}
	n := 0
	for k, v := range s.Range(from, ^uint64(0)) {
		if n == max {
			break
		}
		n++
		if !fn(k, v) {
			break
		}
	}
	return n, nil
}

// Sync forces every shard's acknowledged-but-buffered WAL bytes to disk.
// Every shard is synced even if some fail; the error joins every failing
// shard's error rather than hiding all but the first.
func (c *Cluster) Sync() error {
	var errs []error
	for i, db := range c.shards {
		if err := db.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d sync: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Snapshot takes a consistent cluster-wide snapshot:
//
//  1. Barrier: every shard flushes its WAL, then the per-shard
//     durable-LSN vector (flushed watermark, sound under concurrent
//     writers) is captured — a cut known on disk on every shard.
//  2. The vector is committed as the barrier manifest (tmp + sync +
//     rename + dir fsync) in the cluster root.
//  3. Each shard snapshots and truncates independently.
//
// The manifest is the cross-shard consistency witness: recovery re-checks
// every shard against it, so a shard silently rolled back below the
// barrier (lost disk, restored-from-older-backup) fails OpenCluster
// instead of serving a state no single point in time ever had. Every
// shard is attempted even if some fail; failures are joined.
func (c *Cluster) Snapshot() error {
	if c.closed.Load() {
		return ErrClosed
	}
	if c.dir == "" {
		return nil
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if err := c.Sync(); err != nil {
		return err
	}
	vec := make([]uint64, len(c.shards))
	for i, db := range c.shards {
		vec[i] = db.durableLSN()
	}
	if err := c.writeBarrier(vec); err != nil {
		return err
	}
	var errs []error
	for i, db := range c.shards {
		if err := db.Snapshot(); err != nil {
			errs = append(errs, fmt.Errorf("eunomia: cluster shard %d snapshot: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close closes every shard (flushing each WAL) and marks the cluster
// closed. Idempotent. Every shard is closed even if some fail; failures
// are joined.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return errors.Join(closeAll(c.shards)...)
}

// barrierFile is the manifest's name in the cluster root.
const barrierFile = "cluster-barrier"

// writeBarrier commits the barrier LSN vector crash-atomically.
func (c *Cluster) writeBarrier(vec []uint64) error {
	id := c.snapID.Add(1)
	tmp := c.dir + "/" + barrierFile + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "euno-cluster-barrier v1 id=%d shards=%d\n", id, len(vec))
	for i, lsn := range vec {
		fmt.Fprintf(&b, "%d %d\n", i, lsn)
	}
	_, err = f.Write([]byte(b.String()))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = c.fs.Rename(tmp, c.dir+"/"+barrierFile)
	}
	if err != nil {
		c.fs.Remove(tmp)
		return err
	}
	return c.fs.SyncDir(c.dir)
}

// readBarrier loads the manifest's LSN vector; a missing manifest returns
// (nil, nil) — no barrier has ever committed, so there is nothing to
// verify against.
func (c *Cluster) readBarrier() ([]uint64, error) {
	names, err := c.fs.List(c.dir)
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range names {
		if n == barrierFile {
			found = true
			break
		}
	}
	if !found {
		return nil, nil
	}
	f, err := c.fs.Open(c.dir + "/" + barrierFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("eunomia: cluster barrier manifest empty")
	}
	var id uint64
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-barrier v1 id=%d shards=%d", &id, &n); err != nil {
		return nil, fmt.Errorf("eunomia: cluster barrier manifest header %q: %v", sc.Text(), err)
	}
	if n != len(c.shards) {
		return nil, fmt.Errorf("eunomia: cluster barrier covers %d shards, cluster has %d (resharding is not supported)", n, len(c.shards))
	}
	vec := make([]uint64, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("eunomia: cluster barrier manifest truncated at shard %d", i)
		}
		var idx int
		var lsn uint64
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &idx, &lsn); err != nil || idx != i {
			return nil, fmt.Errorf("eunomia: cluster barrier manifest line %q", sc.Text())
		}
		vec[i] = lsn
	}
	if id > c.snapID.Load() {
		c.snapID.Store(id)
	}
	return vec, sc.Err()
}

// verifyBarrier cross-checks every recovered shard against the last
// committed barrier vector.
func (c *Cluster) verifyBarrier() error {
	vec, err := c.readBarrier()
	if err != nil || vec == nil {
		return err
	}
	var errs []error
	for i, db := range c.shards {
		if got := db.recoveredSeq(); got < vec[i] {
			errs = append(errs, fmt.Errorf(
				"eunomia: cluster shard %d recovered to LSN %d but the snapshot barrier requires >= %d: acknowledged writes were lost",
				i, got, vec[i]))
		}
	}
	return errors.Join(errs...)
}

// ClusterMetrics is the cluster-wide unified snapshot: the per-shard
// Metrics plus their aggregate.
type ClusterMetrics struct {
	// Shards is the shard count.
	Shards int
	// Agg sums (or, where summing is meaningless, conservatively merges)
	// every shard's Metrics.
	Agg Metrics
	// PerShard holds each shard's own snapshot, index-aligned with
	// Cluster.DB.
	PerShard []Metrics
}

// Metrics returns one coherent snapshot of every shard plus the
// aggregate. Like DB.Metrics, it is safe to call concurrently with
// operations.
func (c *Cluster) Metrics() ClusterMetrics {
	cm := ClusterMetrics{Shards: len(c.shards)}
	for _, db := range c.shards {
		m := db.Metrics()
		cm.PerShard = append(cm.PerShard, m)
		mergeMetrics(&cm.Agg, &m)
	}
	sort.Slice(cm.Agg.Contention.HotLeaves, func(i, j int) bool {
		return cm.Agg.Contention.HotLeaves[i].Total > cm.Agg.Contention.HotLeaves[j].Total
	})
	return cm
}

// mergeMetrics folds src into dst. Counters add; percentiles and booleans
// merge conservatively (max / or).
func mergeMetrics(dst *Metrics, src *Metrics) {
	dst.Tx.Attempts += src.Tx.Attempts
	dst.Tx.Commits += src.Tx.Commits
	dst.Tx.Aborts += src.Tx.Aborts
	dst.Tx.Fallbacks += src.Tx.Fallbacks
	dst.Tx.WastedCycles += src.Tx.WastedCycles
	dst.Tx.TxLoads += src.Tx.TxLoads
	dst.Tx.TxStores += src.Tx.TxStores
	dst.Tx.BackoffCycles += src.Tx.BackoffCycles
	dst.Tx.DegradationEvents += src.Tx.DegradationEvents
	dst.Tx.WatchdogTrips += src.Tx.WatchdogTrips
	if len(src.Tx.AbortsByReason) > 0 && dst.Tx.AbortsByReason == nil {
		dst.Tx.AbortsByReason = map[string]uint64{}
	}
	for r, n := range src.Tx.AbortsByReason {
		dst.Tx.AbortsByReason[r] += n
	}
	dst.Resilience.Degraded = dst.Resilience.Degraded || src.Resilience.Degraded
	dst.Resilience.StormEvents += src.Resilience.StormEvents
	dst.Memory.LiveBytes += src.Memory.LiveBytes
	dst.Memory.PeakBytes += src.Memory.PeakBytes
	dst.Memory.ReservedBytes += src.Memory.ReservedBytes
	dst.Memory.CCMBytes += src.Memory.CCMBytes
	dst.Tree.Splits += src.Tree.Splits
	dst.Tree.Compactions += src.Tree.Compactions
	dst.Tree.MarkRejects += src.Tree.MarkRejects
	dst.Tree.RootRetries += src.Tree.RootRetries
	dst.Tree.MaintRounds += src.Tree.MaintRounds
	d, s := &dst.Durability, &src.Durability
	d.Enabled = d.Enabled || s.Enabled
	d.Flushes += s.Flushes
	d.FlushedFrames += s.FlushedFrames
	d.FlushedBytes += s.FlushedBytes
	if s.MaxBatch > d.MaxBatch {
		d.MaxBatch = s.MaxBatch
	}
	if d.Flushes > 0 {
		d.AvgBatch = float64(d.FlushedFrames) / float64(d.Flushes)
	}
	if s.FlushP50Ns > d.FlushP50Ns {
		d.FlushP50Ns = s.FlushP50Ns
	}
	if s.FlushP99Ns > d.FlushP99Ns {
		d.FlushP99Ns = s.FlushP99Ns
	}
	if s.FlushMaxNs > d.FlushMaxNs {
		d.FlushMaxNs = s.FlushMaxNs
	}
	d.Snapshots += s.Snapshots
	d.SnapshotErrors += s.SnapshotErrors
	d.RecoveryNs += s.RecoveryNs
	d.SnapshotPairs += s.SnapshotPairs
	d.ReplayedFrames += s.ReplayedFrames
	d.TornTails += s.TornTails
	dst.Contention.Enabled = dst.Contention.Enabled || src.Contention.Enabled
	dst.Contention.AbortsSeen += src.Contention.AbortsSeen
	dst.Contention.AbortsSampled += src.Contention.AbortsSampled
	dst.Contention.HotLeaves = append(dst.Contention.HotLeaves, src.Contention.HotLeaves...)
}
