package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more named series as an ASCII line chart, so
// `eunobench -chart` output resembles the paper's figures directly in a
// terminal. X values are the shared domain (e.g. theta or thread count);
// each series has one Y per X.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []ChartSeries

	// Width and Height are the plot-area size in characters; zero values
	// get defaults (60x16).
	Width, Height int
}

// ChartSeries is one line on the chart.
type ChartSeries struct {
	Name string
	Y    []float64
}

// seriesMarks distinguishes lines: first series '*', then 'o', '+', 'x', ...
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Fprint renders the chart.
func (c *Chart) Fprint(w io.Writer) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 60
	}
	if height == 0 {
		height = 16
	}
	if len(c.X) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("harness: empty chart %q", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("harness: series %q has %d points, X has %d", s.Name, len(s.Y), len(c.X))
		}
	}

	xmin, xmax := minMax(c.X)
	var ymax float64
	for _, s := range c.Series {
		_, m := minMax(s.Y)
		if m > ymax {
			ymax = m
		}
	}
	if ymax == 0 {
		ymax = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		if xmax == xmin {
			return 0
		}
		return int((x - xmin) / (xmax - xmin) * float64(width-1))
	}
	row := func(y float64) int {
		r := height - 1 - int(y/ymax*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Connect consecutive points with linear interpolation.
		for i := 0; i+1 < len(c.X); i++ {
			c0, c1 := col(c.X[i]), col(c.X[i+1])
			for cc := c0; cc <= c1; cc++ {
				var y float64
				if c1 == c0 {
					y = s.Y[i]
				} else {
					f := float64(cc-c0) / float64(c1-c0)
					y = s.Y[i]*(1-f) + s.Y[i+1]*f
				}
				grid[row(y)][cc] = mark
			}
		}
		// Ensure actual data points are marked even on flat segments.
		for i := range c.X {
			grid[row(s.Y[i])][col(c.X[i])] = mark
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	axisWidth := len(formatTick(ymax))
	for r, line := range grid {
		label := strings.Repeat(" ", axisWidth)
		switch r {
		case 0:
			label = pad(formatTick(ymax), axisWidth)
		case height - 1:
			label = pad("0", axisWidth)
		case (height - 1) / 2:
			label = pad(formatTick(ymax/2), axisWidth)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", axisWidth), strings.Repeat("-", width))
	lo, hi := formatTick(xmin), formatTick(xmax)
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s   (%s)\n", strings.Repeat(" ", axisWidth), lo, strings.Repeat(" ", gap), hi, c.XLabel)
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	fmt.Fprintf(w, "%s  %s", strings.Repeat(" ", axisWidth), strings.Join(legend, "   "))
	if c.YLabel != "" {
		fmt.Fprintf(w, "   [y: %s]", c.YLabel)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	return nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func formatTick(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
