package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/shard"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

// Cluster experiment driver: N independent arena/device/tree shards behind
// the keyspace router (internal/shard), measured on either backend. The
// quantity under study is contention decomposition — with hash routing a
// Zipfian hot set scatters across shards, so every shard is its own
// contention domain with its own fallback lock and storm detector; the
// throughput and aborts-per-op curves against shard count are the cluster
// analogue of the paper's scaling figures.

// ClusterConfig describes one sharded experiment.
type ClusterConfig struct {
	Shards    int             // independent shards (default 4)
	Partition shard.Partition // key-space cut (default Hash)

	Tree TreeKind
	// EunoCfg overrides the Euno-B+Tree configuration for every shard; the
	// zero value means core.DefaultConfig.
	EunoCfg *core.Config

	Threads      int    // workers; each holds one thread per shard
	Keys         uint64 // key-space size (spans the whole cluster)
	PreloadPct   int
	Dist         workload.Spec
	Mix          workload.Mix
	OpsPerThread int
	// Duration, when nonzero on the host backend, switches to
	// fixed-duration methodology and OpsPerThread is ignored.
	Duration time.Duration
	Seed     uint64

	Fanout     int
	ArenaWords uint64 // arena capacity PER SHARD
	Slack      uint64 // emulated-backend scheduler slack (0 = exact)

	// Host selects the wall-clock backend (real goroutines, cost model
	// off); the default is the deterministic emulated backend.
	Host       bool
	Resilience bool
}

// ClusterResult summarizes one sharded run.
type ClusterResult struct {
	Config ClusterConfig

	Ops        uint64
	Cycles     uint64        // emulated: virtual makespan
	Elapsed    time.Duration // host: wall time
	Throughput float64       // ops/s (virtual seconds emulated, wall seconds host)

	Stats       htm.Stats // merged across workers and shards
	AbortsPerOp float64

	Latency metrics.Histogram // host: ns per op; emulated: cycles per op

	PreloadedKeys uint64
	GoMaxProcs    int
	NumCPU        int
}

// clusterDefaults fills unset fields, mirroring Config.withDefaults /
// HostConfig.hostDefaults per backend.
func (c ClusterConfig) clusterDefaults() ClusterConfig {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Threads == 0 {
		if c.Host {
			c.Threads = runtime.GOMAXPROCS(0)
		} else {
			c.Threads = 16
		}
	}
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.PreloadPct == 0 {
		c.PreloadPct = 50
	}
	if c.Dist.N == 0 {
		c.Dist.N = c.Keys
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.DefaultMix
	}
	if c.OpsPerThread == 0 && !(c.Host && c.Duration > 0) {
		if c.Host {
			c.OpsPerThread = 20_000
		} else {
			c.OpsPerThread = 5_000
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.ArenaWords == 0 {
		// Per shard: size to the slice of the key space the shard carries.
		c.ArenaWords = c.Keys * 24 / uint64(c.Shards)
		if c.ArenaWords < 1<<22 {
			c.ArenaWords = 1 << 22
		}
	}
	return c
}

// treeConfig converts to the Config shape buildTree consumes.
func (c ClusterConfig) treeConfig() Config {
	return Config{
		Tree:       c.Tree,
		EunoCfg:    c.EunoCfg,
		Fanout:     c.Fanout,
		Resilience: c.Resilience,
	}
}

// RunCluster executes one sharded experiment. On the emulated backend the
// run is deterministic for a fixed config: each worker SimProc owns one
// thread per shard device, and virtual time accrues to the proc no matter
// which device charges it, so cross-shard routing costs nothing extra and
// the serial simulator keeps the schedule reproducible. On the host
// backend only correctness is deterministic, not the numbers.
func RunCluster(cfg ClusterConfig) ClusterResult {
	cfg = cfg.clusterDefaults()
	if err := cfg.Mix.Validate(); err != nil {
		panic(err)
	}
	// The harness routes through the same epoched Table the Cluster facade
	// serves from (stable here — no migration runs during a figure), so
	// the figures exercise the production routing path. A stable Table
	// routes identically to its wrapped Router: figures stay bit-identical.
	table := shard.NewTable(shard.New(cfg.Shards, cfg.Partition))

	hcfg := htm.DefaultConfig
	if cfg.Resilience {
		hcfg = htm.DefaultResilience().DeviceConfig(hcfg)
	}
	if cfg.Host {
		hcfg.Backend = htm.BackendHost
	}
	devices := make([]*htm.HTM, cfg.Shards)
	trees := make([]tree.KV, cfg.Shards)
	boots := make([]*htm.Thread, cfg.Shards)
	for i := range devices {
		arena := simmem.NewArena(cfg.ArenaWords)
		devices[i] = htm.New(arena, hcfg)
		if cfg.Host {
			boots[i] = devices[i].NewHostThread(0, cfg.Seed+uint64(i)+1)
		} else {
			boots[i] = devices[i].NewThread(vclock.NewWallProc(0, 0), cfg.Seed+uint64(i)+1)
		}
		trees[i] = buildTree(cfg.treeConfig(), devices[i], boots[i])
	}

	// Load phase (not measured), routed exactly like the measured phase.
	var preloaded uint64
	workload.ForEachPreload(cfg.Keys, cfg.PreloadPct, func(key uint64) {
		s := table.Route(key)
		trees[s].Put(boots[s], key, key*31+7)
		preloaded++
	})

	res := ClusterResult{
		Config:        cfg,
		PreloadedKeys: preloaded,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	stats := make([]htm.Stats, cfg.Threads)
	hists := make([]metrics.Histogram, cfg.Threads)
	opsDone := make([]uint64, cfg.Threads)

	// worker runs measured worker w over its per-shard thread set. now()
	// reports virtual cycles (emulated) or wall nanoseconds (host);
	// more(i) is the backend's stop condition.
	worker := func(w int, ths []*htm.Thread, now func() uint64, more func(i int) bool) {
		stream := workload.NewStream(cfg.Dist, cfg.Mix)
		for i := 0; more(i); i++ {
			opsDone[w]++
			op := stream.Next(ths[0].Rand)
			s := table.Route(op.Key)
			th := ths[s]
			start := now()
			switch op.Kind {
			case workload.OpGet:
				trees[s].Get(th, op.Key)
			case workload.OpPut:
				trees[s].Put(th, op.Key, op.Key<<8|uint64(i)&0xff)
			case workload.OpDelete:
				trees[s].Delete(th, op.Key)
			case workload.OpScan:
				// Cross-shard scan: every shard contributes up to ScanLen
				// candidates toward the merged window, which is what the
				// Cluster facade's Range merge reads — charged here the
				// same way the real merge would charge it.
				for sh := range trees {
					trees[sh].Scan(ths[sh], op.Key, op.ScanLen, func(k, v uint64) bool { return true })
				}
			}
			hists[w].Observe(now() - start)
		}
		for s, t := range ths {
			if cfg.Host {
				t.FlushStats() // fold the batched tail into device aggregates
			}
			if s == 0 {
				stats[w] = t.Stats
			} else {
				stats[w].Merge(&t.Stats)
			}
		}
	}

	// Seed schedule: distinct per (worker, shard), stable across backends.
	threadSeed := func(w, s int) uint64 {
		return cfg.Seed + uint64(w)*7919 + uint64(s)*104729 + 1
	}

	if cfg.Host {
		var stop atomic.Bool
		if cfg.Duration > 0 {
			defer time.AfterFunc(cfg.Duration, func() { stop.Store(true) }).Stop()
		}
		var wg sync.WaitGroup
		begin := time.Now()
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ths := make([]*htm.Thread, cfg.Shards)
				for s := range ths {
					ths[s] = devices[s].NewHostThread(w+1, threadSeed(w, s))
				}
				worker(w, ths,
					func() uint64 { return uint64(time.Now().UnixNano()) },
					func(i int) bool {
						if cfg.Duration > 0 {
							return !stop.Load()
						}
						return i < cfg.OpsPerThread
					})
			}(w)
		}
		wg.Wait()
		res.Elapsed = time.Since(begin)
		for i := range opsDone {
			res.Ops += opsDone[i]
		}
		if s := res.Elapsed.Seconds(); s > 0 {
			res.Throughput = float64(res.Ops) / s
		}
	} else {
		sim := vclock.NewSim(cfg.Threads, cfg.Slack)
		sim.Run(func(p *vclock.SimProc) {
			w := p.ID()
			ths := make([]*htm.Thread, cfg.Shards)
			for s := range ths {
				ths[s] = devices[s].NewThread(p, threadSeed(w, s))
			}
			worker(w, ths, p.Now, func(i int) bool { return i < cfg.OpsPerThread })
		})
		res.Cycles = sim.MaxClock()
		for i := range opsDone {
			res.Ops += opsDone[i]
		}
		if res.Cycles > 0 {
			res.Throughput = float64(res.Ops) / (float64(res.Cycles) / vclock.CyclesPerSecond)
		}
	}

	for i := range stats {
		res.Stats.Merge(&stats[i])
		res.Latency.Merge(&hists[i])
	}
	if res.Ops > 0 {
		res.AbortsPerOp = float64(res.Stats.TotalAborts()) / float64(res.Ops)
	}
	return res
}
