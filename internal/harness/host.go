package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/simmem"
	"eunomia/internal/workload"
)

// Host-backend experiment driver: the same trees and workload machinery as
// Run, but executed on real goroutines at wall-clock speed (htm.
// BackendHost). Where Run answers "what would the paper's hardware do",
// RunHost answers "how fast does this protocol actually go on this
// machine" — the eunobench hostperf scenario and the BenchmarkHost*
// benchmarks are built on it.

// HostConfig describes one wall-clock experiment.
type HostConfig struct {
	Tree TreeKind
	// EunoCfg overrides the Euno-B+Tree configuration; the zero value
	// means core.DefaultConfig.
	EunoCfg *core.Config

	Threads      int    // goroutines issuing operations
	Keys         uint64 // key-space size
	PreloadPct   int
	Dist         workload.Spec
	Mix          workload.Mix
	OpsPerThread int
	// Duration, when nonzero, switches to fixed-duration methodology:
	// every goroutine issues operations until the deadline, and
	// OpsPerThread is ignored.
	Duration time.Duration
	Seed     uint64

	Fanout     int
	ArenaWords uint64

	// Resilience enables the hardening layer (queued fallback lock,
	// backoff, lemming-wait, storm detector) exactly as Config.Resilience
	// does; on the host backend the waits are wall-clock.
	Resilience bool
}

// hostDefaults fills unset fields, mirroring Config.withDefaults with a
// wall-clock duration default.
func (c HostConfig) hostDefaults() HostConfig {
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.PreloadPct == 0 {
		c.PreloadPct = 50
	}
	if c.Dist.N == 0 {
		c.Dist.N = c.Keys
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.DefaultMix
	}
	if c.OpsPerThread == 0 && c.Duration == 0 {
		c.OpsPerThread = 20_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.ArenaWords == 0 {
		c.ArenaWords = c.Keys * 24
		if c.ArenaWords < 1<<22 {
			c.ArenaWords = 1 << 22
		}
	}
	return c
}

// emulated converts to the shared Config shape buildTree consumes (only
// the tree-construction fields matter there).
func (c HostConfig) emulated() Config {
	return Config{
		Tree:       c.Tree,
		EunoCfg:    c.EunoCfg,
		Fanout:     c.Fanout,
		Resilience: c.Resilience,
	}
}

// HostResult summarizes one wall-clock run.
type HostResult struct {
	Config HostConfig

	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops per wall second

	Stats       htm.Stats // merged across threads
	AbortsPerOp float64

	Latency metrics.Histogram // per-op latency in nanoseconds

	PreloadedKeys uint64
	GoMaxProcs    int
	NumCPU        int

	// CCM v2 counters, zero unless EunoCfg.Combine.Enabled.
	EliminatedPairs  uint64
	CombinedBatches  uint64
	CombinedOps      uint64
	CombinerHandoffs uint64
}

// RunHost executes one experiment on the host backend and returns its
// result. Unlike Run, results are machine- and schedule-dependent: only
// correctness is deterministic, not the numbers.
func RunHost(cfg HostConfig) HostResult {
	cfg = cfg.hostDefaults()
	if err := cfg.Mix.Validate(); err != nil {
		panic(err)
	}
	arena := simmem.NewArena(cfg.ArenaWords)
	hcfg := htm.DefaultConfig
	if cfg.Resilience {
		hcfg = htm.DefaultResilience().DeviceConfig(hcfg)
	}
	hcfg.Backend = htm.BackendHost
	device := htm.New(arena, hcfg)
	boot := device.NewHostThread(0, cfg.Seed)
	kv := buildTree(cfg.emulated(), device, boot)

	// Load phase (not measured).
	var preloaded uint64
	workload.ForEachPreload(cfg.Keys, cfg.PreloadPct, func(key uint64) {
		kv.Put(boot, key, key*31+7)
		preloaded++
	})

	// Measured phase: real goroutines, wall-clock stop condition.
	var stop atomic.Bool
	if cfg.Duration > 0 {
		defer time.AfterFunc(cfg.Duration, func() { stop.Store(true) }).Stop()
	}
	stats := make([]htm.Stats, cfg.Threads)
	hists := make([]metrics.Histogram, cfg.Threads)
	opsDone := make([]uint64, cfg.Threads)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := device.NewHostThread(w+1, cfg.Seed+uint64(w)*7919+1)
			stream := workload.NewStream(cfg.Dist, cfg.Mix)
			for i := 0; moreHost(cfg, i, &stop); i++ {
				opsDone[w]++
				op := stream.Next(th.Rand)
				start := time.Now()
				switch op.Kind {
				case workload.OpGet:
					kv.Get(th, op.Key)
				case workload.OpPut:
					kv.Put(th, op.Key, op.Key<<8|uint64(i)&0xff)
				case workload.OpDelete:
					kv.Delete(th, op.Key)
				case workload.OpScan:
					kv.Scan(th, op.Key, op.ScanLen, func(k, v uint64) bool { return true })
				}
				hists[w].Observe(uint64(time.Since(start)))
			}
			th.FlushStats() // fold the batched tail into device aggregates
			stats[w] = th.Stats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	res := HostResult{
		Config:        cfg,
		Elapsed:       elapsed,
		PreloadedKeys: preloaded,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	for i := range stats {
		res.Ops += opsDone[i]
		res.Stats.Merge(&stats[i])
		res.Latency.Merge(&hists[i])
	}
	if s := elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Ops) / s
	}
	if res.Ops > 0 {
		res.AbortsPerOp = float64(res.Stats.TotalAborts()) / float64(res.Ops)
	}
	if eu, ok := kv.(*core.Tree); ok {
		res.EliminatedPairs = eu.EliminatedPairs()
		res.CombinedBatches = eu.CombinedBatches()
		res.CombinedOps = eu.CombinedOps()
		res.CombinerHandoffs = eu.CombinerHandoffs()
	}
	return res
}

// moreHost is the measured-phase loop condition: fixed duration (checked
// via the shared stop flag so the hot loop costs one atomic load) or
// op-count mode.
func moreHost(cfg HostConfig, i int, stop *atomic.Bool) bool {
	if cfg.Duration > 0 {
		return !stop.Load()
	}
	return i < cfg.OpsPerThread
}
