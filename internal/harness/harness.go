// Package harness drives the paper's experiments: it builds an arena, an
// HTM device and one of the four trees, preloads the key space, runs a
// YCSB-style operation mix on N virtual cores in deterministic virtual
// time, and reports throughput, the abort breakdown, wasted cycles, and
// memory footprints — the quantities behind every figure in Section 5.
package harness

import (
	"fmt"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/obs"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/tree/htmtree"
	"eunomia/internal/tree/masstree"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

// TreeKind selects the tree under test.
type TreeKind int

// The four systems the paper compares.
const (
	EunoBTree TreeKind = iota
	HTMBTree
	Masstree
	HTMMasstree
)

// String names the tree as in the paper's figures.
func (k TreeKind) String() string {
	switch k {
	case EunoBTree:
		return "Euno-B+Tree"
	case HTMBTree:
		return "HTM-B+Tree"
	case Masstree:
		return "Masstree"
	case HTMMasstree:
		return "HTM-Masstree"
	default:
		return fmt.Sprintf("tree(%d)", int(k))
	}
}

// Config describes one experiment run.
type Config struct {
	Tree TreeKind
	// EunoCfg overrides the Euno-B+Tree configuration (ablations); the
	// zero value means core.DefaultConfig.
	EunoCfg *core.Config

	Threads      int
	Keys         uint64 // key-space size (the paper uses 100M; defaults are smaller)
	PreloadPct   int    // percentage of the key space inserted before measuring
	Dist         workload.Spec
	Mix          workload.Mix
	OpsPerThread int
	// DurationCycles, when nonzero, switches to the paper's fixed-duration
	// methodology: each thread issues operations until its virtual clock
	// passes this value, and OpsPerThread is ignored.
	DurationCycles uint64
	Seed           uint64

	Fanout     int    // node fanout for the non-Euno trees
	ArenaWords uint64 // arena capacity
	Slack      uint64 // virtual-time scheduler slack (0 = exact)

	// Resilience enables the abort-storm hardening layer (htm.
	// DefaultResilience) on both the device and the tree's retry
	// policies. Default false keeps the paper-faithful fragile behavior
	// every figure measures.
	Resilience bool

	// Observer, when non-nil, is installed on the HTM device and receives
	// every observability event (tx begin/commit/abort, stitch, fallback);
	// see internal/obs. Callbacks never advance the virtual clock, so an
	// attached observer cannot move a run's metrics by a cycle.
	Observer obs.Observer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.PreloadPct == 0 {
		c.PreloadPct = 50
	}
	if c.Dist.N == 0 {
		c.Dist.N = c.Keys
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.DefaultMix
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 5_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.ArenaWords == 0 {
		// Size to the data: ~16 words per record headroom, min 4M words.
		c.ArenaWords = c.Keys * 24
		if c.ArenaWords < 1<<22 {
			c.ArenaWords = 1 << 22
		}
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Config Config

	Ops        uint64
	Cycles     uint64  // virtual makespan of the measured phase
	Seconds    float64 // Cycles at the paper's 2.3 GHz clock
	Throughput float64 // ops per (virtual) second

	Stats       htm.Stats // merged across threads
	AbortsPerOp float64
	// AbortBreakdown is aborts-per-operation by reason, the Figure 2/9
	// decomposition.
	AbortBreakdown [htm.NumAbortReasons]float64
	WastedPct      float64 // % of consumed cycles spent in aborted attempts

	Latency metrics.Histogram // per-op latency in cycles

	LiveBytes     int64 // tree footprint after the run
	ReservedPeak  int64 // peak transient reserved-keys bytes (approximate)
	PreloadedKeys uint64

	// StormEvents is how many times the device's abort-storm detector
	// engaged degradation (0 without Config.Resilience).
	StormEvents uint64

	// CCM v2 hot-key layer activity (all zero unless the run's EunoCfg
	// enables Combine).
	EliminatedPairs  uint64
	CombinedBatches  uint64
	CombinedOps      uint64
	CombinerHandoffs uint64
}

// newDevice constructs the HTM device, applying the hardening bundle when
// the config asks for it.
func newDevice(cfg Config, arena *simmem.Arena) *htm.HTM {
	hcfg := htm.DefaultConfig
	if cfg.Resilience {
		hcfg = htm.DefaultResilience().DeviceConfig(hcfg)
	}
	hcfg.Observer = cfg.Observer
	return htm.New(arena, hcfg)
}

// buildTree constructs the tree under test.
func buildTree(cfg Config, h *htm.HTM, boot *htm.Thread) tree.KV {
	switch cfg.Tree {
	case EunoBTree:
		ec := core.DefaultConfig
		if cfg.EunoCfg != nil {
			ec = *cfg.EunoCfg
		}
		if cfg.Resilience {
			ec.Resilience = htm.DefaultResilience()
		}
		return core.New(h, boot, ec)
	case HTMBTree:
		t := htmtree.New(h, boot, cfg.Fanout)
		if cfg.Resilience {
			t.SetPolicy(htm.ResilientPolicy())
		}
		return t
	case Masstree, HTMMasstree:
		t := masstree.New(h, boot, cfg.Fanout, cfg.Tree == HTMMasstree)
		if cfg.Resilience {
			t.SetPolicy(htm.ResilientPolicy())
		}
		return t
	default:
		panic(fmt.Sprintf("harness: unknown tree kind %d", cfg.Tree))
	}
}

// Run executes one experiment and returns its result. Runs are
// deterministic for a fixed Config.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Mix.Validate(); err != nil {
		panic(err)
	}
	arena := simmem.NewArena(cfg.ArenaWords)
	device := newDevice(cfg, arena)
	boot := device.NewThread(vclock.NewWallProc(0, 0), cfg.Seed)
	kv := buildTree(cfg, device, boot)

	// Load phase (not measured): insert the preload subset.
	var preloaded uint64
	workload.ForEachPreload(cfg.Keys, cfg.PreloadPct, func(key uint64) {
		kv.Put(boot, key, key*31+7)
		preloaded++
	})
	loadBytes := arena.LiveBytes()

	// Measured phase: virtual-time lockstep across cfg.Threads cores.
	sim := vclock.NewSim(cfg.Threads, cfg.Slack)
	stats := make([]htm.Stats, cfg.Threads)
	hists := make([]metrics.Histogram, cfg.Threads)
	opsDone := make([]uint64, cfg.Threads)
	var totalThreadCycles uint64
	sim.Run(func(p *vclock.SimProc) {
		th := device.NewThread(p, cfg.Seed+uint64(p.ID())*7919+1)
		stream := workload.NewStream(cfg.Dist, cfg.Mix)
		for i := 0; more(cfg, i, p); i++ {
			opsDone[p.ID()]++
			op := stream.Next(th.Rand)
			start := p.Now()
			switch op.Kind {
			case workload.OpGet:
				kv.Get(th, op.Key)
			case workload.OpPut:
				kv.Put(th, op.Key, op.Key<<8|uint64(i)&0xff)
			case workload.OpDelete:
				kv.Delete(th, op.Key)
			case workload.OpScan:
				kv.Scan(th, op.Key, op.ScanLen, func(k, v uint64) bool { return true })
			}
			hists[p.ID()].Observe(p.Now() - start)
		}
		stats[p.ID()] = th.Stats
	})
	for _, p := range sim.Procs() {
		totalThreadCycles += p.Now()
	}

	var totalOps uint64
	for _, n := range opsDone {
		totalOps += n
	}
	res := Result{
		Config:        cfg,
		Ops:           totalOps,
		Cycles:        sim.MaxClock(),
		LiveBytes:     arena.LiveBytes(),
		ReservedPeak:  loadBytes, // replaced below; kept for context
		PreloadedKeys: preloaded,
	}
	res.Seconds = float64(res.Cycles) / vclock.CyclesPerSecond
	if res.Seconds > 0 {
		res.Throughput = float64(res.Ops) / res.Seconds
	}
	for i := range stats {
		res.Stats.Merge(&stats[i])
		res.Latency.Merge(&hists[i])
	}
	if res.Ops > 0 {
		res.AbortsPerOp = float64(res.Stats.TotalAborts()) / float64(res.Ops)
		for r := htm.AbortReason(1); r < htm.NumAbortReasons; r++ {
			res.AbortBreakdown[r] = float64(res.Stats.Aborts[r]) / float64(res.Ops)
		}
	}
	if totalThreadCycles > 0 {
		res.WastedPct = 100 * float64(res.Stats.WastedCycles) / float64(totalThreadCycles)
	}
	res.ReservedPeak = arena.BytesByTag(simmem.TagReserved)
	res.StormEvents = device.StormEvents()
	if eu, ok := kv.(*core.Tree); ok {
		res.EliminatedPairs = eu.EliminatedPairs()
		res.CombinedBatches = eu.CombinedBatches()
		res.CombinedOps = eu.CombinedOps()
		res.CombinerHandoffs = eu.CombinerHandoffs()
	}
	return res
}

// more is the measured-phase loop condition: op-count mode or the paper's
// fixed-duration mode.
func more(cfg Config, i int, p *vclock.SimProc) bool {
	if cfg.DurationCycles > 0 {
		return p.Now() < cfg.DurationCycles
	}
	return i < cfg.OpsPerThread
}

// MemoryComparison runs the same load on a tree kind and on the baseline
// HTM-B+Tree and reports the Section 5.7 overhead percentage
// (tree bytes vs. baseline bytes for identical contents).
func MemoryComparison(cfg Config) (treeBytes, baseBytes int64, overheadPct float64) {
	r1 := Run(cfg)
	base := cfg
	base.Tree = HTMBTree
	r2 := Run(base)
	treeBytes, baseBytes = r1.LiveBytes, r2.LiveBytes
	if baseBytes > 0 {
		overheadPct = 100 * (float64(treeBytes) - float64(baseBytes)) / float64(baseBytes)
	}
	return treeBytes, baseBytes, overheadPct
}

// ValidateTree runs the tree's quiescent structural validator, if it has
// one (all three B+Tree implementations do).
func ValidateTree(kv tree.KV, p vclock.Proc) error {
	type validator interface {
		Validate(p vclock.Proc) error
	}
	if v, ok := kv.(validator); ok {
		return v.Validate(p)
	}
	return fmt.Errorf("harness: %s has no validator", kv.Name())
}

// RunAndValidate performs a Run and then re-builds the identical workload
// to validate the final structure (Run's tree is internal to it, so the
// deterministic replay is the cheapest way to get at the end state).
func RunAndValidate(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Run(cfg)
	// Replay on a fresh device, keeping the tree this time.
	arena := simmem.NewArena(cfg.ArenaWords)
	device := newDevice(cfg, arena)
	boot := device.NewThread(vclock.NewWallProc(0, 0), cfg.Seed)
	kv := buildTree(cfg, device, boot)
	workload.ForEachPreload(cfg.Keys, cfg.PreloadPct, func(key uint64) {
		kv.Put(boot, key, key*31+7)
	})
	sim := vclock.NewSim(cfg.Threads, cfg.Slack)
	sim.Run(func(p *vclock.SimProc) {
		th := device.NewThread(p, cfg.Seed+uint64(p.ID())*7919+1)
		stream := workload.NewStream(cfg.Dist, cfg.Mix)
		for i := 0; more(cfg, i, p); i++ {
			op := stream.Next(th.Rand)
			switch op.Kind {
			case workload.OpGet:
				kv.Get(th, op.Key)
			case workload.OpPut:
				kv.Put(th, op.Key, op.Key<<8|uint64(i)&0xff)
			case workload.OpDelete:
				kv.Delete(th, op.Key)
			case workload.OpScan:
				kv.Scan(th, op.Key, op.ScanLen, func(k, v uint64) bool { return true })
			}
		}
	})
	return res, ValidateTree(kv, boot.P)
}
