package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table used to print the rows/series of
// each reproduced figure; it can also emit CSV for plotting.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (no escaping needed for
// our numeric content, but commas in cells are rejected defensively).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if strings.ContainsAny(c, ",\n") {
				return fmt.Errorf("harness: CSV cell %q contains a separator", c)
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F2 formats a float with two decimals; F1 with one.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
