package harness

import (
	"testing"
	"time"

	"eunomia/internal/shard"
	"eunomia/internal/workload"
)

func TestRunClusterEmulatedDeterministic(t *testing.T) {
	cfg := ClusterConfig{
		Shards:       3,
		Tree:         EunoBTree,
		Threads:      4,
		Keys:         2_000,
		OpsPerThread: 300,
		Seed:         9,
	}
	a := RunCluster(cfg)
	b := RunCluster(cfg)
	if a.Ops != b.Ops || a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatalf("emulated cluster run is not deterministic:\n  a: ops=%d cycles=%d %+v\n  b: ops=%d cycles=%d %+v",
			a.Ops, a.Cycles, a.Stats, b.Ops, b.Cycles, b.Stats)
	}
	if want := uint64(4 * 300); a.Ops != want {
		t.Fatalf("ops = %d, want %d", a.Ops, want)
	}
	if a.Throughput <= 0 {
		t.Fatalf("throughput = %f", a.Throughput)
	}
	if got := a.Latency.Count(); got != a.Ops {
		t.Fatalf("latency observations = %d, want %d", got, a.Ops)
	}
}

func TestRunClusterAllTreesBothPartitions(t *testing.T) {
	for _, kind := range []TreeKind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		for _, part := range []shard.Partition{shard.Hash, shard.Range} {
			res := RunCluster(ClusterConfig{
				Shards:       2,
				Partition:    part,
				Tree:         kind,
				Threads:      2,
				Keys:         1_000,
				OpsPerThread: 150,
			})
			if want := uint64(2 * 150); res.Ops != want {
				t.Fatalf("%s/%v: ops = %d, want %d", kind, part, res.Ops, want)
			}
			if res.PreloadedKeys == 0 {
				t.Fatalf("%s/%v: nothing preloaded", kind, part)
			}
		}
	}
}

func TestRunClusterHost(t *testing.T) {
	res := RunCluster(ClusterConfig{
		Shards:       2,
		Tree:         EunoBTree,
		Threads:      2,
		Keys:         1_000,
		OpsPerThread: 200,
		Host:         true,
	})
	if want := uint64(2 * 200); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Elapsed <= 0 || res.Throughput <= 0 {
		t.Fatalf("elapsed=%v throughput=%f", res.Elapsed, res.Throughput)
	}
	if res.GoMaxProcs <= 0 || res.NumCPU <= 0 {
		t.Fatalf("environment not recorded: GOMAXPROCS=%d NumCPU=%d", res.GoMaxProcs, res.NumCPU)
	}
}

func TestRunClusterHostDuration(t *testing.T) {
	res := RunCluster(ClusterConfig{
		Shards:   2,
		Tree:     EunoBTree,
		Threads:  2,
		Keys:     1_000,
		Duration: 25 * time.Millisecond,
		Host:     true,
	})
	if res.Ops == 0 {
		t.Fatal("duration run issued no operations")
	}
	// Allow a grain of timer slop below the configured 25ms.
	if res.Elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed %v far shorter than the configured duration", res.Elapsed)
	}
}

// TestRunClusterShardsSplitContention: under a hot Zipfian mix, hash
// sharding must decompose the contention domain — the single-shard run
// concentrates every conflict on one device, so more shards can only hold
// or reduce the per-op abort rate (deterministic emulated backend, so the
// comparison is exact, not statistical).
func TestRunClusterShardsSplitContention(t *testing.T) {
	base := ClusterConfig{
		Tree:         EunoBTree,
		Threads:      8,
		Keys:         512,
		Dist:         workload.Spec{Kind: workload.Zipfian, N: 512, Theta: 0.99},
		Mix:          workload.Mix{GetPct: 50, PutPct: 50},
		OpsPerThread: 400,
		Seed:         3,
	}
	one := base
	one.Shards = 1
	four := base
	four.Shards = 4
	r1, r4 := RunCluster(one), RunCluster(four)
	t.Logf("1 shard: aborts/op=%.3f cycles=%d; 4 shards: aborts/op=%.3f cycles=%d",
		r1.AbortsPerOp, r1.Cycles, r4.AbortsPerOp, r4.Cycles)
	if r4.AbortsPerOp > r1.AbortsPerOp {
		t.Fatalf("4 shards aborts/op %.3f > 1 shard %.3f: sharding failed to split the contention domain",
			r4.AbortsPerOp, r1.AbortsPerOp)
	}
}
