package harness

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "theta",
		YLabel: "ops/s",
		X:      []float64{0.2, 0.5, 0.9},
		Series: []ChartSeries{
			{Name: "alpha", Y: []float64{10e6, 11e6, 12e6}},
			{Name: "beta", Y: []float64{9e6, 8e6, 2e6}},
		},
	}
	var sb strings.Builder
	if err := c.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "alpha", "beta", "theta", "ops/s", "*", "o", "12.0M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in chart:\n%s", want, out)
		}
	}
	// Every line of the plot area must fit the declared width.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 90 {
			t.Fatalf("line too long (%d): %q", len(line), line)
		}
	}
}

func TestChartErrors(t *testing.T) {
	empty := Chart{Title: "x"}
	if err := empty.Fprint(&strings.Builder{}); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := Chart{
		X:      []float64{1, 2},
		Series: []ChartSeries{{Name: "a", Y: []float64{1}}},
	}
	if err := bad.Fprint(&strings.Builder{}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartDegenerateDomains(t *testing.T) {
	// Single X point and all-zero Y must not panic or divide by zero.
	c := Chart{
		X:      []float64{5},
		Series: []ChartSeries{{Name: "a", Y: []float64{0}}},
	}
	var sb strings.Builder
	if err := c.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	flat := Chart{
		X:      []float64{1, 2, 3},
		Series: []ChartSeries{{Name: "a", Y: []float64{7, 7, 7}}},
	}
	if err := flat.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{{0, "0"}, {12, "12"}, {1500, "1.5K"}, {2.5e6, "2.5M"}, {3e9, "3.0G"}, {0.25, "0.25"}}
	for _, c := range cases {
		if got := formatTick(c.v); got != c.want {
			t.Fatalf("formatTick(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
