package harness

import (
	"testing"
	"time"
)

func TestRunDurableSmoke(t *testing.T) {
	res, err := RunDurable(DurableConfig{
		Tree: EunoBTree, Threads: 2, OpsPerThread: 200, Keys: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 || res.Throughput <= 0 {
		t.Fatalf("ops=%d throughput=%f", res.Ops, res.Throughput)
	}
	if res.OpLatency.Count() != 400 {
		t.Fatalf("latency samples: %d", res.OpLatency.Count())
	}
	if res.Stats.FlushedFrames != 400 || res.Stats.Flushes == 0 {
		t.Fatalf("wal stats: %+v", res.Stats)
	}
	if res.Recovery.ReplayedFrames != 400 {
		t.Fatalf("recovery replayed %d frames, want 400", res.Recovery.ReplayedFrames)
	}
	if res.RecoveryNs <= 0 || res.ReplayRate <= 0 {
		t.Fatalf("recovery timing: ns=%d rate=%f", res.RecoveryNs, res.ReplayRate)
	}
}

func TestRunDurableGroupCommitAndSnapshot(t *testing.T) {
	res, err := RunDurable(DurableConfig{
		Tree: HTMBTree, Threads: 4, OpsPerThread: 300, Keys: 512,
		FlushInterval: time.Millisecond, SnapshotBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Flushes >= res.Stats.FlushedFrames {
		t.Fatalf("no batching: %d flushes for %d frames", res.Stats.Flushes, res.Stats.FlushedFrames)
	}
	if res.Stats.Snapshots == 0 {
		t.Fatal("auto-snapshot never fired")
	}
	recovered := res.Recovery.SnapshotPairs + res.Recovery.ReplayedFrames
	if recovered == 0 {
		t.Fatalf("nothing recovered: %+v", res.Recovery)
	}
}
