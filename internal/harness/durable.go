package harness

import (
	"fmt"
	"sync"
	"time"

	"eunomia/internal/durable"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// DurableConfig describes one wall-clock durability benchmark run: a
// write-heavy workload against a tree fronted by the group-committed WAL,
// followed by a timed recovery of everything it logged.
type DurableConfig struct {
	Tree         TreeKind
	Threads      int
	OpsPerThread int
	Keys         uint64
	Seed         uint64
	ArenaWords   uint64
	Fanout       int

	// Dir selects the backing store: empty runs on the in-memory
	// fsync-accurate MemFS (hermetic, measures the group-commit machinery
	// itself); non-empty uses the real filesystem at that path.
	Dir string

	FlushInterval time.Duration
	FlushBytes    int
	Shards        int
	SnapshotBytes int64
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 2_000
	}
	if c.Keys == 0 {
		c.Keys = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.ArenaWords == 0 {
		c.ArenaWords = c.Keys * 24
		if c.ArenaWords < 1<<22 {
			c.ArenaWords = 1 << 22
		}
	}
	return c
}

// DurableResult reports a durability benchmark.
type DurableResult struct {
	Config DurableConfig

	Ops         uint64
	WallSeconds float64
	Throughput  float64 // acknowledged writes per wall second

	// OpLatency is the acknowledgement latency per write (wall ns): the
	// group-commit cost as the caller experiences it.
	OpLatency metrics.Histogram

	// Stats is the WAL's own accounting (flush count, batch sizes, fsync
	// latency quantiles).
	Stats durable.Stats

	// Recovery reports the timed replay of everything the run logged into
	// a fresh tree.
	Recovery   durable.RecoveryInfo
	RecoveryNs int64
	// ReplayRate is recovered operations (snapshot pairs + frames) per
	// second of recovery time.
	ReplayRate float64
}

// durableTree is one tree + device + boot thread bundle.
type durableTree struct {
	device *htm.HTM
	boot   *htm.Thread
	kv     tree.KV
}

func newDurableTree(cfg DurableConfig) *durableTree {
	arena := simmem.NewArena(cfg.ArenaWords)
	device := newDevice(Config{}, arena)
	boot := device.NewThread(vclock.NewWallProc(0, 0), 1)
	kv := buildTree(Config{Tree: cfg.Tree, Fanout: cfg.Fanout}, device, boot)
	return &durableTree{device: device, boot: boot, kv: kv}
}

// scanAll pages the whole tree through emit, the shape Store.Snapshot
// expects (mirrors eunomia.DB.scanAll).
func (dt *durableTree) scanAll(th *htm.Thread) func(emit func(key, val uint64)) error {
	return func(emit func(key, val uint64)) error {
		const batch = 1024
		from := uint64(0)
		for {
			var last uint64
			n := dt.kv.Scan(th, from, batch, func(k, v uint64) bool {
				emit(k, v)
				last = k
				return true
			})
			if n < batch || last == ^uint64(0) {
				return nil
			}
			from = last + 1
		}
	}
}

// openStore opens the durability store over fsys replaying into dt.
func (dt *durableTree) openStore(cfg DurableConfig, fsys durable.FS, dir string) (*durable.Store, error) {
	return durable.Open(durable.Config{
		FS: fsys, Dir: dir, Shards: cfg.Shards,
		FlushInterval: cfg.FlushInterval, FlushBytes: cfg.FlushBytes,
		SnapshotBytes: cfg.SnapshotBytes,
	}, func(op durable.Op) {
		if op.Delete {
			dt.kv.Delete(dt.boot, op.Key)
		} else {
			dt.kv.Put(dt.boot, op.Key, op.Val)
		}
	})
}

// RunDurable measures group-commit throughput/latency and recovery time
// for one configuration. Unlike Run, this is a wall-clock benchmark: real
// goroutines, real (or MemFS-emulated) fsyncs, and numbers that vary with
// the host. It feeds the trajectory artifact, not the paper figures.
func RunDurable(cfg DurableConfig) (DurableResult, error) {
	cfg = cfg.withDefaults()
	res := DurableResult{Config: cfg}

	var fsys durable.FS
	dir := cfg.Dir
	if dir == "" {
		fsys = durable.NewMemFS(durable.FaultPlan{})
		dir = "bench"
	} else {
		fsys = durable.OSFS{}
	}

	dt := newDurableTree(cfg)
	st, err := dt.openStore(cfg, fsys, dir)
	if err != nil {
		return res, err
	}

	var mu sync.Mutex
	var merged metrics.Histogram
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Threads)
	start := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := dt.device.NewThread(vclock.NewWallProc(w+1, 0), uint64(w+1)*0x9e3779b9+1)
			var lat metrics.Histogram
			rng := vclock.NewRand(cfg.Seed + uint64(w)*7919)
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := rng.Uint64()%cfg.Keys + 1
				val := uint64(w)<<32 | uint64(i)
				t0 := time.Now()
				err := st.LogPut(key, val, func() { dt.kv.Put(th, key, val) })
				lat.Observe(uint64(time.Since(t0).Nanoseconds()))
				if err != nil {
					errs <- fmt.Errorf("harness: durable put: %w", err)
					return
				}
				if st.NeedSnapshot() {
					if err := st.Snapshot(dt.scanAll(th), true); err != nil {
						errs <- fmt.Errorf("harness: snapshot: %w", err)
						return
					}
				}
			}
			mu.Lock()
			merged.Merge(&lat)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.Ops = uint64(cfg.Threads * cfg.OpsPerThread)
	res.Throughput = float64(res.Ops) / res.WallSeconds
	res.OpLatency = merged
	res.Stats = st.Stats()
	if err := st.Close(); err != nil {
		return res, err
	}

	// Timed recovery: replay everything the run logged into a fresh tree
	// on the same filesystem.
	dt2 := newDurableTree(cfg)
	st2, err := dt2.openStore(cfg, fsys, dir)
	if err != nil {
		return res, fmt.Errorf("harness: recovery: %w", err)
	}
	defer st2.Close()
	res.Recovery = st2.RecoveryInfo()
	res.RecoveryNs = res.Recovery.DurationNs
	recovered := res.Recovery.SnapshotPairs + res.Recovery.ReplayedFrames
	if res.RecoveryNs > 0 {
		res.ReplayRate = float64(recovered) / (float64(res.RecoveryNs) / 1e9)
	}
	return res, nil
}
