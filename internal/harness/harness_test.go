package harness

import (
	"strings"
	"testing"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/obs"
	"eunomia/internal/workload"
)

func smallCfg(k TreeKind) Config {
	return Config{
		Tree:         k,
		Threads:      4,
		Keys:         2000,
		Dist:         workload.Spec{Kind: workload.Zipfian, Theta: 0.9},
		OpsPerThread: 400,
	}
}

func TestRunAllTreeKinds(t *testing.T) {
	for _, k := range []TreeKind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			res := Run(smallCfg(k))
			if res.Ops != 1600 {
				t.Fatalf("ops = %d", res.Ops)
			}
			if res.Cycles == 0 || res.Throughput <= 0 {
				t.Fatalf("no progress: cycles=%d tput=%v", res.Cycles, res.Throughput)
			}
			if res.PreloadedKeys == 0 {
				t.Fatal("nothing preloaded")
			}
			if res.Latency.Count() != res.Ops {
				t.Fatalf("latency count %d != ops %d", res.Latency.Count(), res.Ops)
			}
			if k == Masstree && res.Stats.Attempts != 0 {
				t.Fatal("masstree used transactions")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(smallCfg(EunoBTree))
	b := Run(smallCfg(EunoBTree))
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatalf("nondeterministic harness: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestContentionIncreasesAborts(t *testing.T) {
	low := smallCfg(HTMBTree)
	low.Dist.Theta = 0.1
	low.OpsPerThread = 800
	high := smallCfg(HTMBTree)
	high.Dist.Theta = 0.99
	high.OpsPerThread = 800
	rl, rh := Run(low), Run(high)
	if rh.AbortsPerOp <= rl.AbortsPerOp {
		t.Fatalf("aborts/op low=%.3f high=%.3f; contention had no effect",
			rl.AbortsPerOp, rh.AbortsPerOp)
	}
}

func TestEunoBeatsBaselineUnderHighContention(t *testing.T) {
	// The paper's headline: under heavy skew Euno-B+Tree outperforms the
	// monolithic HTM-B+Tree. Modest sizes keep this test quick; the full
	// sweep lives in cmd/eunobench.
	mk := func(k TreeKind) Config {
		// The collapse regime needs paper-scale parameters: enough threads
		// and enough keys that the hot leaves convoy the fallback lock.
		c := smallCfg(k)
		c.Threads = 20
		c.Keys = 100_000
		c.Dist.Theta = 0.99
		c.OpsPerThread = 1000
		return c
	}
	re := Run(mk(EunoBTree))
	rb := Run(mk(HTMBTree))
	if re.Throughput <= rb.Throughput {
		t.Fatalf("Euno %.0f ops/s <= baseline %.0f ops/s under high contention",
			re.Throughput, rb.Throughput)
	}
	t.Logf("speedup at theta=0.99: %.2fx (euno %.2fM vs base %.2fM ops/s)",
		re.Throughput/rb.Throughput, re.Throughput/1e6, rb.Throughput/1e6)
}

func TestEunoAblationConfigsRun(t *testing.T) {
	for _, ab := range core.AblationConfigs() {
		cfg := smallCfg(EunoBTree)
		ec := ab.Cfg
		cfg.EunoCfg = &ec
		res := Run(cfg)
		if res.Throughput <= 0 {
			t.Fatalf("%s made no progress", ab.Name)
		}
	}
}

func TestMixWithScansAndDeletes(t *testing.T) {
	cfg := smallCfg(EunoBTree)
	cfg.Mix = workload.Mix{GetPct: 40, PutPct: 40, DeletePct: 10, ScanPct: 10, ScanLen: 10}
	res := Run(cfg)
	if res.Throughput <= 0 {
		t.Fatal("no progress with mixed ops")
	}
}

func TestMemoryComparison(t *testing.T) {
	cfg := smallCfg(EunoBTree)
	cfg.Mix = workload.Mix{GetPct: 50, PutPct: 50}
	treeB, baseB, pct := MemoryComparison(cfg)
	if treeB <= 0 || baseB <= 0 {
		t.Fatalf("bytes: %d vs %d", treeB, baseB)
	}
	t.Logf("euno=%dB base=%dB overhead=%.1f%%", treeB, baseB, pct)
	if pct < -50 || pct > 300 {
		t.Fatalf("implausible overhead %.1f%%", pct)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := Table{Title: "Fig X", Header: []string{"theta", "ops/s"}}
	tbl.AddRow("0.5", "123")
	tbl.AddRow("0.99", "45")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Fig X", "theta", "0.99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "theta,ops/s\n0.5,123\n") {
		t.Fatalf("csv:\n%s", csv.String())
	}
	bad := Table{Header: []string{"a,b"}}
	if err := bad.CSV(&csv); err == nil {
		t.Fatal("comma cell accepted")
	}
}

func TestTreeKindStrings(t *testing.T) {
	for _, k := range []TreeKind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestFixedDurationMode(t *testing.T) {
	cfg := smallCfg(EunoBTree)
	cfg.OpsPerThread = 0
	cfg.DurationCycles = 400_000
	r := Run(cfg)
	if r.Ops == 0 {
		t.Fatal("no ops in duration mode")
	}
	// Every thread ran until its clock passed the deadline, so the
	// makespan is at least the deadline and not wildly beyond it.
	if r.Cycles < cfg.DurationCycles {
		t.Fatalf("makespan %d below duration %d", r.Cycles, cfg.DurationCycles)
	}
	if r.Cycles > cfg.DurationCycles*2 {
		t.Fatalf("makespan %d far beyond duration %d", r.Cycles, cfg.DurationCycles)
	}
	if r.Latency.Count() != r.Ops {
		t.Fatalf("latency count %d != ops %d", r.Latency.Count(), r.Ops)
	}
	// Deterministic like everything else.
	r2 := Run(cfg)
	if r2.Ops != r.Ops || r2.Cycles != r.Cycles {
		t.Fatal("duration mode not deterministic")
	}
}

func TestRunAndValidate(t *testing.T) {
	for _, k := range []TreeKind{EunoBTree, HTMBTree, Masstree} {
		cfg := smallCfg(k)
		cfg.Mix = workload.Mix{GetPct: 40, PutPct: 40, DeletePct: 20}
		res, err := RunAndValidate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%v: no ops", k)
		}
	}
}

// TestObserverDoesNotPerturbRun: attaching an observer must leave every
// virtual-time metric bit-identical — observer callbacks never tick the
// virtual clock. This is the enabled-path half of the zero-cost
// guarantee; the disabled path is pinned by the golden fig1/fig8 CSVs.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	for _, k := range []TreeKind{EunoBTree, HTMBTree} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			plain := Run(smallCfg(k))
			heat := obs.NewHeatmap(obs.HeatmapConfig{})
			cfg := smallCfg(k)
			cfg.Observer = heat
			observed := Run(cfg)
			if plain.Cycles != observed.Cycles || plain.Ops != observed.Ops {
				t.Fatalf("observer moved the run: %d/%d cycles, %d/%d ops",
					plain.Cycles, observed.Cycles, plain.Ops, observed.Ops)
			}
			if plain.Stats != observed.Stats {
				t.Fatalf("observer changed stats:\nplain:    %+v\nobserved: %+v",
					plain.Stats, observed.Stats)
			}
			seen, _ := heat.Seen()
			if seen != observed.Stats.TotalAborts() {
				t.Fatalf("heatmap saw %d aborts, run counted %d", seen, observed.Stats.TotalAborts())
			}
		})
	}
}

// TestAbortDecompositionShape pins the paper's Section 3 abort analysis
// on the baseline HTM-B+Tree under the contended Figure-8-style workload:
// layout false conflicts (different records, same line) must dominate the
// conflict mass, with shared-metadata and true conflicts as minority
// classes — the observation Eunomia's whole design answers. The same
// workload on the Euno-B+Tree must cut the false-conflict share (its
// partitioned leaves put each core's keys on distinct lines).
func TestAbortDecompositionShape(t *testing.T) {
	decompose := func(k TreeKind) (falseShare, metaShare, trueShare float64) {
		cfg := smallCfg(k)
		cfg.Threads = 8
		cfg.OpsPerThread = 1200
		r := Run(cfg)
		a := r.Stats.Aborts
		conflicts := float64(a[htm.AbortConflictFalse] + a[htm.AbortConflictMeta] + a[htm.AbortConflictTrue])
		if conflicts == 0 {
			t.Fatalf("%v: no conflict aborts under theta=0.9", k)
		}
		return float64(a[htm.AbortConflictFalse]) / conflicts,
			float64(a[htm.AbortConflictMeta]) / conflicts,
			float64(a[htm.AbortConflictTrue]) / conflicts
	}
	f, m, tr := decompose(HTMBTree)
	if f < 0.5 {
		t.Fatalf("baseline layout-false share = %.2f, want dominant (paper: 0.87-0.90)", f)
	}
	if m > f || tr > f {
		t.Fatalf("baseline minority classes out of shape: false=%.2f meta=%.2f true=%.2f", f, m, tr)
	}
	ef, _, _ := decompose(EunoBTree)
	if ef >= f {
		t.Fatalf("Euno layout-false share %.2f not below baseline %.2f", ef, f)
	}
}
