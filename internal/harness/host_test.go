package harness

import (
	"testing"
	"time"

	"eunomia/internal/workload"
)

func TestRunHostAllTrees(t *testing.T) {
	for _, kind := range []TreeKind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		t.Run(kind.String(), func(t *testing.T) {
			res := RunHost(HostConfig{
				Tree:         kind,
				Threads:      4,
				Keys:         2_000,
				OpsPerThread: 400,
			})
			if want := uint64(4 * 400); res.Ops != want {
				t.Fatalf("ops = %d, want %d", res.Ops, want)
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %f", res.Throughput)
			}
			if res.PreloadedKeys == 0 {
				t.Fatal("nothing preloaded")
			}
			if got := res.Latency.Count(); got != res.Ops {
				t.Fatalf("latency observations = %d, want %d", got, res.Ops)
			}
			// Masstree is lock-based (no transactions); the HTM trees must
			// have committed at least one transaction per op or fallen back.
			if kind != Masstree && res.Stats.Commits+res.Stats.Fallbacks < res.Ops {
				t.Fatalf("commits+fallbacks = %d < ops %d", res.Stats.Commits+res.Stats.Fallbacks, res.Ops)
			}
		})
	}
}

func TestRunHostDurationMode(t *testing.T) {
	res := RunHost(HostConfig{
		Tree:     EunoBTree,
		Threads:  2,
		Keys:     2_000,
		Duration: 30 * time.Millisecond,
	})
	if res.Ops == 0 {
		t.Fatal("duration run issued no operations")
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the configured duration", res.Elapsed)
	}
}

func TestRunHostResilience(t *testing.T) {
	res := RunHost(HostConfig{
		Tree:         EunoBTree,
		Threads:      4,
		Keys:         200, // tiny keyspace: force real contention
		Dist:         workload.Spec{Kind: workload.Zipfian, N: 200, Theta: 0.99},
		Mix:          workload.Mix{GetPct: 50, PutPct: 50},
		OpsPerThread: 300,
		Resilience:   true,
	})
	if want := uint64(4 * 300); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.GoMaxProcs <= 0 || res.NumCPU <= 0 {
		t.Fatalf("environment not recorded: GOMAXPROCS=%d NumCPU=%d", res.GoMaxProcs, res.NumCPU)
	}
}

func TestRunHostDeviceStatsFlushed(t *testing.T) {
	// The per-thread tail is batched on the host backend; RunHost must
	// flush it so thread-merged and device-aggregated stats agree.
	res := RunHost(HostConfig{
		Tree:         HTMBTree,
		Threads:      3,
		Keys:         1_000,
		OpsPerThread: 200,
	})
	if res.Stats.Commits == 0 {
		t.Fatal("no commits recorded in merged thread stats")
	}
}
