package workload

import (
	"testing"

	"eunomia/internal/vclock"
)

func TestScrambledPreservesSkewDestroysAdjacency(t *testing.T) {
	const n = 10000
	plain := Spec{Kind: Zipfian, N: n, Theta: 0.99}.New()
	scr := NewScrambled(Spec{Kind: Zipfian, N: n, Theta: 0.99}.New())

	// Same top-10% mass (popularity histogram preserved under a bijection
	// approximation; the modulo can collide, so allow slack).
	mp := topFracMass(t, plain, 0.10, 100000)
	ms := topFracMass(t, scr, 0.10, 100000)
	if ms < mp-0.08 || ms > mp+0.08 {
		t.Fatalf("scrambling changed skew: plain %.3f vs scrambled %.3f", mp, ms)
	}

	// Adjacency destroyed: the hottest two scrambled keys are far apart.
	r := vclock.NewRand(3)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		counts[scr.Next(r)]++
	}
	var k1, k2 uint64
	c1, c2 := -1, -1
	for k, c := range counts {
		if c > c1 {
			k2, c2 = k1, c1
			k1, c1 = k, c
		} else if c > c2 {
			k2, c2 = k, c
		}
	}
	diff := int64(k1) - int64(k2)
	if diff < 0 {
		diff = -diff
	}
	if diff <= 8 {
		t.Fatalf("hottest scrambled keys adjacent: %d and %d", k1, k2)
	}
}

func TestScrambledInRange(t *testing.T) {
	g := NewScrambled(Spec{Kind: Zipfian, N: 997, Theta: 0.9}.New())
	r := vclock.NewRand(5)
	for i := 0; i < 10000; i++ {
		if k := g.Next(r); k >= 997 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestLatestFavorsFrontier(t *testing.T) {
	g := NewLatest(100000, 1000, 0.99)
	r := vclock.NewRand(7)
	nearFront := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := g.Next(r)
		if k >= 900 { // within the most recent 10%
			nearFront++
		}
		if k >= 1000 {
			t.Fatalf("rank %d beyond frontier 1000", k)
		}
	}
	if frac := float64(nearFront) / draws; frac < 0.35 {
		t.Fatalf("only %.2f of draws near the frontier", frac)
	}
	// Extending the frontier shifts the mass.
	for i := 0; i < 5000; i++ {
		g.Extend()
	}
	hits := 0
	for i := 0; i < draws; i++ {
		if g.Next(r) >= 5000 {
			hits++
		}
	}
	if frac := float64(hits) / draws; frac < 0.4 {
		t.Fatalf("frontier did not move: %.2f", frac)
	}
}

func TestLatestBounds(t *testing.T) {
	g := NewLatest(10, 0, 0.9) // loaded clamps to 1
	r := vclock.NewRand(1)
	for i := 0; i < 100; i++ {
		if k := g.Next(r); k != 0 {
			t.Fatalf("single-key frontier drew %d", k)
		}
	}
	for i := 0; i < 50; i++ {
		g.Extend() // clamps at n
	}
	for i := 0; i < 1000; i++ {
		if k := g.Next(r); k >= 10 {
			t.Fatalf("rank %d out of space", k)
		}
	}
}

func TestScrambledSpecKind(t *testing.T) {
	g := Spec{Kind: ScrambledZipfian, N: 1000, Theta: 0.9}.New()
	r := vclock.NewRand(2)
	for i := 0; i < 1000; i++ {
		if k := g.Next(r); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if ScrambledZipfian.String() != "scrambled-zipfian" {
		t.Fatal("bad kind name")
	}
}
