// Package workload re-implements the YCSB-style key generators and
// operation mixes the paper evaluates with (Section 5.1): Zipfian with a
// tunable skew coefficient theta, Uniform, and the three additional input
// distributions of Section 5.5 (Poisson, Normal, Self-Similar). Each worker
// thread owns a private generator instance ("intra-thread locality", as in
// the paper), driven by the deterministic per-thread RNG.
package workload

import (
	"fmt"
	"math"
	"sync"

	"eunomia/internal/vclock"
)

// Kind selects an input key distribution.
type Kind int

// Supported distributions.
const (
	Uniform Kind = iota
	Zipfian
	SelfSimilar
	Normal
	Poisson
	// ScrambledZipfian hashes Zipfian ranks across the key space: same
	// popularity histogram, no hot-key adjacency (YCSB's scrambled
	// generator). Useful for separating the paper's consecutive-layout
	// effects from pure skew.
	ScrambledZipfian
)

// String returns the distribution name.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case SelfSimilar:
		return "self-similar"
	case Normal:
		return "normal"
	case Poisson:
		return "poisson"
	case ScrambledZipfian:
		return "scrambled-zipfian"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Generator produces key ranks in [0, N). Rank 0 is the hottest key for the
// skewed distributions. Generators are not safe for concurrent use; create
// one per worker thread.
type Generator interface {
	Next(r *vclock.Rand) uint64
	N() uint64
}

// Spec describes a key distribution.
type Spec struct {
	Kind Kind
	// N is the size of the key space.
	N uint64
	// Theta is the Zipfian skew coefficient (paper Eq. 1). 0 is uniform;
	// 0.99 directs 41% of accesses to the hottest tenth. Must be < 1.
	Theta float64
	// SelfSimilarH is the self-similar skew (default 0.2 = the 80-20 rule).
	SelfSimilarH float64
	// NormalSigmaFrac is the standard deviation as a fraction of the mean
	// (paper: 1%).
	NormalSigmaFrac float64
	// PoissonHotFrac/PoissonHotMass calibrate the Poisson spread so the
	// hottest PoissonHotFrac of the key space receives PoissonHotMass of
	// the accesses (paper: 10% hottest get 70%).
	PoissonHotFrac float64
	PoissonHotMass float64
}

// New builds a fresh per-thread generator for the spec.
func (s Spec) New() Generator {
	if s.N == 0 {
		panic("workload: Spec.N must be positive")
	}
	switch s.Kind {
	case Uniform:
		return uniformGen{n: s.N}
	case Zipfian:
		return newZipfian(s.N, s.Theta)
	case ScrambledZipfian:
		return NewScrambled(newZipfian(s.N, s.Theta))
	case SelfSimilar:
		h := s.SelfSimilarH
		if h == 0 {
			h = 0.2
		}
		return selfSimilarGen{n: s.N, exp: math.Log(h) / math.Log(1-h)}
	case Normal:
		frac := s.NormalSigmaFrac
		if frac == 0 {
			frac = 0.01
		}
		mean := float64(s.N) / 2
		return &normalGen{n: s.N, mean: mean, sigma: frac * mean}
	case Poisson:
		hf, hm := s.PoissonHotFrac, s.PoissonHotMass
		if hf == 0 {
			hf = 0.10
		}
		if hm == 0 {
			hm = 0.70
		}
		// Spread a Poisson(lambda) shape so that +-hf/2 of the key space
		// around the mode carries hm of the mass: hf/2*N = z(hm)*sigma.
		z := normalQuantile((1 + hm) / 2)
		sigma := hf / 2 * float64(s.N) / z
		const lambda = 100
		return &poissonGen{n: s.N, lambda: lambda, scale: sigma / math.Sqrt(lambda), mean: float64(s.N) / 2}
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", s.Kind))
	}
}

// --- uniform ---

type uniformGen struct{ n uint64 }

func (g uniformGen) Next(r *vclock.Rand) uint64 { return r.Uint64() % g.n }
func (g uniformGen) N() uint64                  { return g.n }

// --- zipfian (Gray et al., the YCSB algorithm) ---

type zipfianGen struct {
	n          uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	zeta2theta float64
}

type zetaKey struct {
	n     uint64
	theta float64
}

var (
	zetaMu    sync.Mutex
	zetaCache = map[zetaKey]float64{}
)

// zeta computes sum_{i=1..n} 1/i^theta, memoized: it is O(n) and shared by
// every per-thread generator with the same parameters.
func zeta(n uint64, theta float64) float64 {
	zetaMu.Lock()
	defer zetaMu.Unlock()
	k := zetaKey{n, theta}
	if v, ok := zetaCache[k]; ok {
		return v
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	zetaCache[k] = sum
	return sum
}

func newZipfian(n uint64, theta float64) *zipfianGen {
	if theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of [0,1)", theta))
	}
	g := &zipfianGen{n: n, theta: theta}
	g.zetan = zeta(n, theta)
	g.zeta2theta = zeta(2, theta)
	g.alpha = 1 / (1 - theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - g.zeta2theta/g.zetan)
	return g
}

func (g *zipfianGen) Next(r *vclock.Rand) uint64 {
	u := r.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	k := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if k >= g.n {
		k = g.n - 1
	}
	return k
}

func (g *zipfianGen) N() uint64 { return g.n }

// --- self-similar (Gray et al.; h=0.2 gives the 80-20 rule) ---

type selfSimilarGen struct {
	n   uint64
	exp float64
}

func (g selfSimilarGen) Next(r *vclock.Rand) uint64 {
	k := uint64(float64(g.n) * math.Pow(r.Float64(), g.exp))
	if k >= g.n {
		k = g.n - 1
	}
	return k
}

func (g selfSimilarGen) N() uint64 { return g.n }

// --- normal (mean N/2, sigma = 1% of mean, per Section 5.5) ---

type normalGen struct {
	n           uint64
	mean, sigma float64
	spare       float64
	haveSpare   bool
}

func (g *normalGen) Next(r *vclock.Rand) uint64 {
	var z float64
	if g.haveSpare {
		z = g.spare
		g.haveSpare = false
	} else {
		// Box-Muller transform.
		var u float64
		for u == 0 {
			u = r.Float64()
		}
		v := r.Float64()
		mag := math.Sqrt(-2 * math.Log(u))
		z = mag * math.Cos(2*math.Pi*v)
		g.spare = mag * math.Sin(2*math.Pi*v)
		g.haveSpare = true
	}
	x := g.mean + z*g.sigma
	if x < 0 {
		x = 0
	}
	k := uint64(x)
	if k >= g.n {
		k = g.n - 1
	}
	return k
}

func (g *normalGen) N() uint64 { return g.n }

// --- poisson (discrete, right-skewed; spread calibrated to the paper's
// "10% hottest records accessed by 70% of the requests") ---

type poissonGen struct {
	n      uint64
	lambda float64
	scale  float64 // key-space units per standard deviation of the deviate
	mean   float64
}

func (g *poissonGen) Next(r *vclock.Rand) uint64 {
	// Knuth's algorithm on the base lambda, then shift+scale into the key
	// space. lambda=100 keeps the shape visibly Poisson (skewed, discrete)
	// while exp(-lambda) stays comfortably inside float64 range.
	l := math.Exp(-g.lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			break
		}
		k++
	}
	// The base deviate is discrete (~80 distinct values for lambda=100);
	// sub-bucket jitter spreads each bucket across adjacent keys so the
	// distribution covers the key space instead of ~80 exact keys.
	x := g.mean + (float64(k)-g.lambda+r.Float64())*g.scale
	if x < 0 {
		x = 0
	}
	key := uint64(x)
	if key >= g.n {
		key = g.n - 1
	}
	return key
}

func (g *poissonGen) N() uint64 { return g.n }

// normalQuantile approximates the standard normal quantile function with
// the Beasley-Springer-Moro algorithm (sufficient for calibration).
func normalQuantile(p float64) float64 {
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		z := y * y
		return y * (((a[3]*z+a[2])*z+a[1])*z + a[0]) /
			((((b[3]*z+b[2])*z+b[1])*z+b[0])*z + 1)
	}
	z := p
	if y > 0 {
		z = 1 - p
	}
	z = math.Log(-math.Log(z))
	x := c[0]
	zp := 1.0
	for i := 1; i < 9; i++ {
		zp *= z
		x += c[i] * zp
	}
	if y < 0 {
		x = -x
	}
	return x
}
