package workload

import (
	"fmt"

	"eunomia/internal/vclock"
)

// OpKind is a key-value operation type.
type OpKind uint8

// Operation kinds, matching the paper's get/put/delete/range-query API.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
	OpScan
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     uint64
	ScanLen int
}

// Mix is an operation ratio specification; percentages must sum to 100.
// The paper's default is 50% get / 50% put.
type Mix struct {
	GetPct    int
	PutPct    int
	DeletePct int
	ScanPct   int
	ScanLen   int // keys per range query
}

// DefaultMix is YCSB's default 50/50 get/put mix.
var DefaultMix = Mix{GetPct: 50, PutPct: 50}

// Validate checks the percentages.
func (m Mix) Validate() error {
	s := m.GetPct + m.PutPct + m.DeletePct + m.ScanPct
	if s != 100 {
		return fmt.Errorf("workload: mix percentages sum to %d, want 100", s)
	}
	if m.GetPct < 0 || m.PutPct < 0 || m.DeletePct < 0 || m.ScanPct < 0 {
		return fmt.Errorf("workload: negative percentage in mix %+v", m)
	}
	if m.ScanPct > 0 && m.ScanLen <= 0 {
		return fmt.Errorf("workload: ScanPct set but ScanLen is %d", m.ScanLen)
	}
	return nil
}

// Stream draws operations for one worker thread: a private key generator
// plus the op mix. Not safe for concurrent use.
type Stream struct {
	gen Generator
	mix Mix
}

// NewStream builds a per-thread operation stream. It panics on an invalid
// mix, which is a configuration error.
func NewStream(spec Spec, mix Mix) *Stream {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	return &Stream{gen: spec.New(), mix: mix}
}

// Next draws the next operation.
func (s *Stream) Next(r *vclock.Rand) Op {
	k := KeyOfRank(s.gen.Next(r))
	d := r.Intn(100)
	switch {
	case d < s.mix.GetPct:
		return Op{Kind: OpGet, Key: k}
	case d < s.mix.GetPct+s.mix.PutPct:
		return Op{Kind: OpPut, Key: k}
	case d < s.mix.GetPct+s.mix.PutPct+s.mix.DeletePct:
		return Op{Kind: OpDelete, Key: k}
	default:
		return Op{Kind: OpScan, Key: k, ScanLen: s.mix.ScanLen}
	}
}

// KeyOfRank maps a popularity rank to a stored key. The mapping is the
// identity shifted by one (rank 0 -> key 1), so — as in the paper's plain
// Zipfian — the hottest keys are *adjacent*, which is what makes consecutive
// leaf layout produce false conflicts.
func KeyOfRank(rank uint64) uint64 { return rank + 1 }

// splitmix64 is used to decide preload membership deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShouldPreload reports whether the key of the given rank is inserted
// during the load phase. pct is the preload percentage; the choice is a
// deterministic pseudo-random function of the rank, so every tree kind sees
// the identical initial population and the remaining ranks exercise the
// insertion/split path during the measured phase.
func ShouldPreload(rank uint64, pct int) bool {
	return int(splitmix64(rank)%100) < pct
}

// ForEachPreload invokes fn for every preloaded key (in rank order).
func ForEachPreload(n uint64, pct int, fn func(key uint64)) {
	for rank := uint64(0); rank < n; rank++ {
		if ShouldPreload(rank, pct) {
			fn(KeyOfRank(rank))
		}
	}
}
