package workload

import (
	"math"
	"testing"
	"testing/quick"

	"eunomia/internal/vclock"
)

// topFracMass draws samples and returns the fraction of accesses landing on
// the hottest `frac` of ranks, where "hottest" means most frequently drawn.
func topFracMass(t *testing.T, g Generator, frac float64, samples int) float64 {
	t.Helper()
	r := vclock.NewRand(12345)
	counts := make(map[uint64]int)
	for i := 0; i < samples; i++ {
		k := g.Next(r)
		if k >= g.N() {
			t.Fatalf("key %d out of range %d", k, g.N())
		}
		counts[k]++
	}
	// Collect counts, sort descending by simple counting into buckets.
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	// insertion-free sort: use sort via slices? stdlib only: simple sort.
	sortIntsDesc(all)
	take := int(frac * float64(g.N()))
	if take < 1 {
		take = 1
	}
	sum := 0
	for i := 0; i < take && i < len(all); i++ {
		sum += all[i]
	}
	return float64(sum) / float64(samples)
}

func sortIntsDesc(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] > a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestZipfianTopTenthMass(t *testing.T) {
	// For a plain Zipf(0.99) over N=10^4 keys, the analytic top-10% mass is
	// H_{1000}(0.99)/H_{10000}(0.99) ~ 0.77. (The paper quotes YCSB's "41%"
	// figure, which does not follow from Eq. 1 for any large N; we validate
	// against the actual mathematics of the generator YCSB ships.)
	g := Spec{Kind: Zipfian, N: 10000, Theta: 0.99}.New()
	mass := topFracMass(t, g, 0.10, 200000)
	if mass < 0.70 || mass > 0.84 {
		t.Fatalf("theta=0.99 top-10%% mass = %.3f, want ~0.77", mass)
	}
}

func TestZipfianSkewOrdering(t *testing.T) {
	// Higher theta must concentrate more mass on the hottest keys.
	last := 0.0
	for _, theta := range []float64{0.0, 0.5, 0.9, 0.99} {
		g := Spec{Kind: Zipfian, N: 5000, Theta: theta}.New()
		mass := topFracMass(t, g, 0.05, 100000)
		if mass < last {
			t.Fatalf("mass not increasing with theta: %.3f after %.3f", mass, last)
		}
		last = mass
	}
}

func TestZipfianThetaZeroIsNearUniform(t *testing.T) {
	g := Spec{Kind: Zipfian, N: 1000, Theta: 0}.New()
	mass := topFracMass(t, g, 0.10, 100000)
	if mass < 0.07 || mass > 0.14 {
		t.Fatalf("theta=0 top-10%% mass = %.3f, want ~0.10", mass)
	}
}

func TestZipfianHottestIsRankZero(t *testing.T) {
	g := Spec{Kind: Zipfian, N: 100000, Theta: 0.99}.New()
	r := vclock.NewRand(7)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		counts[g.Next(r)]++
	}
	best, bestC := uint64(0), -1
	for k, c := range counts {
		if c > bestC {
			best, bestC = k, c
		}
	}
	if best != 0 {
		t.Fatalf("hottest rank = %d, want 0", best)
	}
}

func TestUniformSpread(t *testing.T) {
	g := Spec{Kind: Uniform, N: 100}.New()
	r := vclock.NewRand(3)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next(r)]++
	}
	for k, c := range counts {
		if c < n/100/2 || c > n/100*2 {
			t.Fatalf("key %d count %d far from uniform %d", k, c, n/100)
		}
	}
}

func TestSelfSimilar8020(t *testing.T) {
	g := Spec{Kind: SelfSimilar, N: 10000}.New()
	r := vclock.NewRand(9)
	const n = 200000
	inTop := 0
	for i := 0; i < n; i++ {
		if g.Next(r) < 2000 { // first 20% of the key space
			inTop++
		}
	}
	frac := float64(inTop) / n
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("80-20 rule violated: first 20%% got %.3f", frac)
	}
}

func TestNormalConcentration(t *testing.T) {
	g := Spec{Kind: Normal, N: 100000}.New()
	r := vclock.NewRand(11)
	mean, n := 0.0, 50000
	for i := 0; i < n; i++ {
		k := g.Next(r)
		mean += float64(k)
		if math.Abs(float64(k)-50000) > 5000 {
			t.Fatalf("sample %d implausibly far from mean (sigma=500)", k)
		}
	}
	mean /= float64(n)
	if math.Abs(mean-50000) > 100 {
		t.Fatalf("sample mean %.1f, want ~50000", mean)
	}
}

func TestPoissonCalibration(t *testing.T) {
	// The hottest 10% of the key space should receive roughly 70% of
	// accesses (paper Section 5.5).
	g := Spec{Kind: Poisson, N: 10000}.New()
	mass := topFracMass(t, g, 0.10, 100000)
	if mass < 0.60 || mass > 0.85 {
		t.Fatalf("poisson top-10%% mass = %.3f, want ~0.70", mass)
	}
}

func TestAllGeneratorsInRangeProperty(t *testing.T) {
	specs := []Spec{
		{Kind: Uniform, N: 977},
		{Kind: Zipfian, N: 977, Theta: 0.9},
		{Kind: SelfSimilar, N: 977},
		{Kind: Normal, N: 977},
		{Kind: Poisson, N: 977},
	}
	for _, s := range specs {
		g := s.New()
		f := func(seed uint64) bool {
			r := vclock.NewRand(seed)
			for i := 0; i < 50; i++ {
				if g.Next(r) >= s.N {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("%v: %v", s.Kind, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, k := range []Kind{Uniform, Zipfian, SelfSimilar, Normal, Poisson} {
		s := Spec{Kind: k, N: 1000, Theta: 0.9}
		g1, g2 := s.New(), s.New()
		r1, r2 := vclock.NewRand(5), vclock.NewRand(5)
		for i := 0; i < 200; i++ {
			if a, b := g1.Next(r1), g2.Next(r2); a != b {
				t.Fatalf("%v not deterministic at draw %d: %d vs %d", k, i, a, b)
			}
		}
	}
}

func TestMixValidate(t *testing.T) {
	if err := DefaultMix.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Mix{
		{GetPct: 50, PutPct: 40},
		{GetPct: -10, PutPct: 110},
		{GetPct: 50, PutPct: 40, ScanPct: 10}, // ScanLen missing
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("mix %+v validated", m)
		}
	}
	good := Mix{GetPct: 70, PutPct: 20, DeletePct: 5, ScanPct: 5, ScanLen: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRatios(t *testing.T) {
	s := NewStream(Spec{Kind: Uniform, N: 100}, Mix{GetPct: 70, PutPct: 30})
	r := vclock.NewRand(21)
	gets, puts := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		op := s.Next(r)
		switch op.Kind {
		case OpGet:
			gets++
		case OpPut:
			puts++
		default:
			t.Fatalf("unexpected op %v", op.Kind)
		}
		if op.Key == 0 {
			t.Fatal("key 0 generated (rank mapping must shift by 1)")
		}
	}
	if f := float64(gets) / n; f < 0.67 || f > 0.73 {
		t.Fatalf("get fraction = %.3f, want ~0.70", f)
	}
	_ = puts
}

func TestStreamScanOps(t *testing.T) {
	s := NewStream(Spec{Kind: Uniform, N: 100},
		Mix{GetPct: 0, PutPct: 50, ScanPct: 50, ScanLen: 7})
	r := vclock.NewRand(2)
	scans := 0
	for i := 0; i < 1000; i++ {
		op := s.Next(r)
		if op.Kind == OpScan {
			scans++
			if op.ScanLen != 7 {
				t.Fatalf("scan len = %d", op.ScanLen)
			}
		}
	}
	if scans < 400 || scans > 600 {
		t.Fatalf("scans = %d, want ~500", scans)
	}
}

func TestPreloadDeterministicAndProportional(t *testing.T) {
	const n, pct = 10000, 50
	count := 0
	ForEachPreload(n, pct, func(key uint64) {
		if key == 0 || key > n {
			t.Fatalf("preload key %d out of range", key)
		}
		count++
	})
	if count < 4700 || count > 5300 {
		t.Fatalf("preload count = %d, want ~5000", count)
	}
	for rank := uint64(0); rank < 100; rank++ {
		if ShouldPreload(rank, pct) != ShouldPreload(rank, pct) {
			t.Fatal("ShouldPreload not deterministic")
		}
	}
	// pct=0 and pct=100 are exact.
	if ShouldPreload(1, 0) {
		t.Fatal("pct=0 preloaded something")
	}
	if !ShouldPreload(1, 100) {
		t.Fatal("pct=100 skipped something")
	}
}

func TestKindAndOpStrings(t *testing.T) {
	for _, k := range []Kind{Uniform, Zipfian, SelfSimilar, Normal, Poisson} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	for _, o := range []OpKind{OpGet, OpPut, OpDelete, OpScan} {
		if o.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

func TestNormalQuantileSanity(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.8413, 1.0}, {0.975, 1.96}, {0.85, 1.036},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 0.02 {
			t.Fatalf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
