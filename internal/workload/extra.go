package workload

import "eunomia/internal/vclock"

// Additional YCSB-family generators beyond the paper's four. They are not
// used by any reproduced figure but round out the workload suite for the
// library's own users (and let experiments separate "skew" from "key
// adjacency": the plain Zipfian's hottest keys are neighbors, the
// scrambled one's are spread across the key space).

// ScrambledZipfian draws ranks from the Zipfian distribution and hashes
// them over the key space, as YCSB's ScrambledZipfianGenerator does. The
// popularity histogram is identical to Zipfian; adjacency is destroyed, so
// the false-conflict mechanisms that depend on neighboring hot keys
// disappear while true conflicts remain.
type scrambledGen struct {
	inner Generator
	n     uint64
}

// NewScrambled wraps any generator with rank scrambling.
func NewScrambled(inner Generator) Generator {
	return scrambledGen{inner: inner, n: inner.N()}
}

func (g scrambledGen) Next(r *vclock.Rand) uint64 {
	return splitmix64(g.inner.Next(r)) % g.n
}

func (g scrambledGen) N() uint64 { return g.n }

// Latest models YCSB workload D: most accesses go to recently inserted
// keys. The caller advances the insertion frontier with Extend; draws are
// Zipfian-distributed distances behind the frontier.
type LatestGen struct {
	zipf  Generator
	front uint64
	n     uint64
}

// NewLatest creates a latest-distribution generator over an initially
// `loaded`-key store within an n-key space.
func NewLatest(n, loaded uint64, theta float64) *LatestGen {
	if loaded == 0 {
		loaded = 1
	}
	if loaded > n {
		loaded = n
	}
	return &LatestGen{zipf: Spec{Kind: Zipfian, N: n, Theta: theta}.New(), front: loaded, n: n}
}

// Extend moves the insertion frontier forward (call after inserting a new
// key) and returns the new frontier rank.
func (g *LatestGen) Extend() uint64 {
	if g.front < g.n {
		g.front++
	}
	return g.front - 1
}

// Next draws a rank biased toward the frontier.
func (g *LatestGen) Next(r *vclock.Rand) uint64 {
	d := g.zipf.Next(r) % g.front
	return g.front - 1 - d
}

// N returns the key-space size.
func (g *LatestGen) N() uint64 { return g.n }
