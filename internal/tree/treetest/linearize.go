package treetest

import (
	"fmt"
	"sort"
	"testing"

	"eunomia/internal/vclock"
)

// Linearizability checking.
//
// In simulated mode every proc's clock is a point on one global virtual
// timeline, so operation invocation/response windows from different procs
// are directly comparable. We record per-key register histories (each
// write carries a globally unique value) and apply sound precedence rules
// — any violation is a genuine linearizability bug, though the check is
// deliberately incomplete (full register-history checking is costlier and
// unnecessary to catch the bugs that matter here):
//
//  1. a read must not return a value whose write had not been invoked
//     before the read responded;
//  2. a read must not return a value v when another write to the key
//     completed strictly after write(v) completed and strictly before the
//     read was invoked (definitely-overwritten);
//  3. once any write to a key has completed, later reads must not report
//     the key absent (the workload performs no deletes on checked keys).

type opRecord struct {
	key      uint64
	write    bool
	val      uint64 // value written, or value read (^0 = absent read)
	inv, rsp uint64 // virtual timestamps
}

const absentVal = ^uint64(0)

// checkKeyHistory applies the precedence rules to one key's history.
func checkKeyHistory(key uint64, ops []opRecord) error {
	var writes []opRecord
	for _, o := range ops {
		if o.write {
			writes = append(writes, o)
		}
	}
	byVal := make(map[uint64]opRecord, len(writes))
	for _, w := range writes {
		byVal[w.val] = w
	}
	for _, o := range ops {
		if o.write {
			continue
		}
		if o.val == absentVal {
			for _, w := range writes {
				if w.rsp < o.inv {
					return fmt.Errorf("key %d: read at [%d,%d] found nothing after write(%d) completed at %d",
						key, o.inv, o.rsp, w.val, w.rsp)
				}
			}
			continue
		}
		w, ok := byVal[o.val]
		if !ok {
			return fmt.Errorf("key %d: read returned value %d that was never written", key, o.val)
		}
		if w.inv > o.rsp {
			return fmt.Errorf("key %d: read at [%d,%d] returned value written at [%d,%d] (from the future)",
				key, o.inv, o.rsp, w.inv, w.rsp)
		}
		for _, w2 := range writes {
			if w2.val != w.val && w2.inv > w.rsp && w2.rsp < o.inv {
				return fmt.Errorf("key %d: read at [%d,%d] returned %d, definitely overwritten by %d at [%d,%d]",
					key, o.inv, o.rsp, o.val, w2.val, w2.inv, w2.rsp)
			}
		}
	}
	return nil
}

// runLinearizabilitySim drives concurrent reads/writes over a hot key set
// in virtual time and checks every per-key history.
func runLinearizabilitySim(t *testing.T, mk Factory) {
	h, _ := NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	kv := mk(h, boot)
	const procs, opsEach, hotKeys = 8, 400, 12

	// Ops are appended by whichever proc holds the simulation token, so no
	// locking is needed and the order is deterministic.
	history := make([]opRecord, 0, procs*opsEach)
	seq := uint64(0)
	sim := vclock.NewSim(procs, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+23)
		r := vclock.NewRand(uint64(p.ID()) + 91)
		for i := 0; i < opsEach; i++ {
			key := uint64(r.Intn(hotKeys)) + 1
			if r.Intn(2) == 0 {
				seq++
				val := seq<<8 | uint64(p.ID())
				inv := p.Now()
				kv.Put(th, key, val)
				history = append(history, opRecord{key: key, write: true, val: val, inv: inv, rsp: p.Now()})
			} else {
				inv := p.Now()
				v, ok := kv.Get(th, key)
				if !ok {
					v = absentVal
				}
				history = append(history, opRecord{key: key, val: v, inv: inv, rsp: p.Now()})
			}
		}
	})

	perKey := map[uint64][]opRecord{}
	for _, o := range history {
		perKey[o.key] = append(perKey[o.key], o)
	}
	keys := make([]uint64, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := checkKeyHistory(k, perKey[k]); err != nil {
			t.Fatal(err)
		}
	}
	if len(history) != procs*opsEach {
		t.Fatalf("recorded %d ops, want %d", len(history), procs*opsEach)
	}
}
