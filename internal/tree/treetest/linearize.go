package treetest

import (
	"runtime"
	"sync"
	"testing"

	"eunomia/internal/check"
	"eunomia/internal/htm"
	"eunomia/internal/vclock"
)

// Linearizability checking is delegated to internal/check: a complete
// per-key WGL checker over get/put/delete/scan histories, a deterministic
// schedule-exploration sweep over the lockstep scheduler, and fault
// injection at the named protocol points. This file adapts the kit's
// Factory to that subsystem and sets the per-tree budgets.

// sweepSeeds returns the exploration seed budget: 64 seeds in -short mode
// (the tier-1 floor) and a deeper sweep otherwise.
func sweepSeeds() int {
	if testing.Short() {
		return 64
	}
	return 128
}

// runLinearizabilitySweep explores seeded schedules (slack and fault
// variants per seed) in virtual time and checks every recorded history
// with the complete checker. A failure prints a shrunk one-command repro.
func runLinearizabilitySweep(t *testing.T, mk Factory) {
	name := treeName(mk)
	histories, fail := check.Sweep(name, check.Factory(mk), check.DefaultSweep(sweepSeeds()))
	if fail != nil {
		t.Fatal(fail)
	}
	t.Logf("%s: %d histories linearizable", name, histories)
}

// runLinearizabilityWall records a wall-clock (host-scheduler) history via
// the shared-counter timestamp mode and checks it. Nondeterministic, so it
// complements rather than replaces the sweep.
func runLinearizabilityWall(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	runLinearizabilityOn(t, mk, h, boot, func(w int) *htm.Thread {
		return h.NewThread(vclock.NewWallProc(w+1, 32), uint64(w)+13)
	})
}

// runLinearizabilityHost is the same recorded history on the host backend:
// real goroutines racing the TL2 protocol at native speed. The Wall
// recorder's shared-counter timestamps are proc-independent, so the checker
// applies unchanged.
func runLinearizabilityHost(t *testing.T, mk Factory) {
	h, boot := NewHostDevice(1 << 22)
	runLinearizabilityOn(t, mk, h, boot, func(w int) *htm.Thread {
		return h.NewHostThread(w+1, uint64(w)+13)
	})
}

// runLinearizabilityOn is the shared body: build the tree on the supplied
// device, race workers (one thread each from mkThread) over a small hot
// universe, and check the recorded history with the complete checker.
//
// On the host backend each worker yields between recorded operations.
// Without that, a single-core scheduler runs each goroutine for a long
// quantum of native-speed ops while another sits descheduled *mid-op*;
// that open window chains the whole per-key history into one overlap
// chunk and overflows the checker's bitset budget. Yielding at op
// boundaries keeps windows short (emulated wall threads already yield
// inside ops via WallProc's YieldEvery).
func runLinearizabilityOn(t *testing.T, mk Factory, h *htm.HTM, boot *htm.Thread, mkThread func(w int) *htm.Thread) {
	hosted := h.Host()
	kv := mk(h, boot)
	rec := check.NewRecorder(kv, check.Wall)
	universe := make([]uint64, 10)
	for i := range universe {
		universe[i] = uint64(i)*7 + 3
	}
	rec.SetUniverse(universe)
	for i := 0; i < len(universe); i += 2 {
		k := universe[i]
		v := k<<20 | 0xF0000
		kv.Put(boot, k, v)
		rec.SetInitial(k, v)
	}
	workers, iters := 4, 250
	if testing.Short() {
		iters = 60
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mkThread(w)
			r := vclock.NewRand(uint64(w) + 101)
			for i := 0; i < iters; i++ {
				k := universe[r.Intn(len(universe))]
				val := k<<20 | uint64(w)<<16 | uint64(i)
				switch r.Intn(10) {
				case 0, 1, 2:
					rec.Put(th, k, val)
				case 3, 4:
					rec.Delete(th, k)
				case 5:
					rec.Scan(th, k, 3, func(_, _ uint64) bool { return true })
				default:
					rec.Get(th, k)
				}
				if hosted {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := check.Check(rec.History()); err != nil {
		t.Fatalf("wall-clock history rejected:\n%v", err)
	}
}

// faultWorkload is put-heavy over a wide universe so every tree splits
// during the run (mid-split coverage needs actual splits).
func faultWorkload(seed uint64) check.Workload {
	return check.Workload{
		Procs: 3, Ops: 80, Keys: 48,
		GetPct: 20, PutPct: 60, DelPct: 15, ScanPct: 5,
		Preload: true, Seed: seed,
	}
}

// runFaultInjection arms every fault point/action combination in turn and
// requires (a) the history stays linearizable, and (b) any point the tree
// visits actually fires (Nth=1). Mid-split coverage is asserted for every
// tree: the workload forces splits. Points a tree never reaches (e.g. the
// stitch on monolithic-HTM trees, Execute entry on the lock-based
// masstree) are exempt — the Euno-specific all-points assertion lives in
// internal/check/trees.
func runFaultInjection(t *testing.T, mk Factory) {
	name := treeName(mk)
	specs := []htm.FaultSpec{
		{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultStitch, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultMidSplit, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultMidSplit, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultCCM, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultCCM, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultFallback, Action: htm.ActFallback, Nth: 3},
	}
	seeds := 3
	if testing.Short() {
		seeds = 2
	}
	for _, spec := range specs {
		sawMidSplit := false
		for seed := 0; seed < seeds; seed++ {
			_, fi, err := check.RunWorkload(check.Factory(mk), faultWorkload(uint64(seed)), spec)
			if err != nil {
				t.Fatalf("%s under fault %s seed %d:\n%v", name, spec, seed, err)
			}
			// The counter is monotonic, so reaching Nth visits guarantees
			// the Nth-visit trigger fired at least once.
			if fi.Visits(spec.Point) >= spec.Nth && fi.Hits(spec.Point) == 0 {
				t.Fatalf("%s: fault %s visited %d times but never fired", name, spec, fi.Visits(spec.Point))
			}
			if fi.Visits(htm.FaultMidSplit) > 0 {
				sawMidSplit = true
			}
		}
		if spec.Point == htm.FaultMidSplit && spec.Action == htm.ActYield && !sawMidSplit {
			t.Fatalf("%s: workload produced no splits; mid-split fault point untested", name)
		}
	}
}

// treeName builds a throwaway instance to learn the tree's name for repro
// lines and logs.
func treeName(mk Factory) string {
	h, boot := NewDevice(1 << 18)
	return mk(h, boot).Name()
}
