package treetest

import (
	"strings"
	"testing"
)

func TestCheckerAcceptsValidHistories(t *testing.T) {
	// Sequential write-then-read.
	ok := []opRecord{
		{key: 1, write: true, val: 10, inv: 0, rsp: 5},
		{key: 1, val: 10, inv: 6, rsp: 9},
	}
	if err := checkKeyHistory(1, ok); err != nil {
		t.Fatal(err)
	}
	// Read overlapping two writes may return either.
	overlap := []opRecord{
		{key: 1, write: true, val: 10, inv: 0, rsp: 5},
		{key: 1, write: true, val: 20, inv: 4, rsp: 12},
		{key: 1, val: 10, inv: 6, rsp: 9}, // w2 overlaps the read: stale ok
		{key: 1, val: 20, inv: 13, rsp: 14},
	}
	if err := checkKeyHistory(1, overlap); err != nil {
		t.Fatal(err)
	}
	// Absent read before any write completes is fine.
	early := []opRecord{
		{key: 1, val: absentVal, inv: 0, rsp: 2},
		{key: 1, write: true, val: 10, inv: 1, rsp: 5},
	}
	if err := checkKeyHistory(1, early); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerRejectsFutureRead(t *testing.T) {
	h := []opRecord{
		{key: 1, val: 10, inv: 0, rsp: 3},
		{key: 1, write: true, val: 10, inv: 5, rsp: 8},
	}
	err := checkKeyHistory(1, h)
	if err == nil || !strings.Contains(err.Error(), "future") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerRejectsDefinitelyStaleRead(t *testing.T) {
	h := []opRecord{
		{key: 1, write: true, val: 10, inv: 0, rsp: 2},
		{key: 1, write: true, val: 20, inv: 3, rsp: 5}, // strictly after w1
		{key: 1, val: 10, inv: 6, rsp: 8},              // strictly after w2
	}
	err := checkKeyHistory(1, h)
	if err == nil || !strings.Contains(err.Error(), "overwritten") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerRejectsLostInsert(t *testing.T) {
	h := []opRecord{
		{key: 1, write: true, val: 10, inv: 0, rsp: 2},
		{key: 1, val: absentVal, inv: 4, rsp: 6},
	}
	err := checkKeyHistory(1, h)
	if err == nil || !strings.Contains(err.Error(), "found nothing") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerRejectsPhantomValue(t *testing.T) {
	h := []opRecord{
		{key: 1, write: true, val: 10, inv: 0, rsp: 2},
		{key: 1, val: 99, inv: 4, rsp: 6},
	}
	err := checkKeyHistory(1, h)
	if err == nil || !strings.Contains(err.Error(), "never written") {
		t.Fatalf("err = %v", err)
	}
}
