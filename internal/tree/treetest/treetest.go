// Package treetest is a reusable correctness kit applied to every tree
// implementation in the repository: model-based sequential tests, property
// tests over random operation sequences, and concurrent stress tests in
// both wall-clock and deterministic virtual-time modes.
package treetest

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// Factory builds a fresh tree on a fresh HTM device for one test.
type Factory func(h *htm.HTM, boot *htm.Thread) tree.KV

// NewDevice creates an arena+HTM pair and a boot thread for tests.
func NewDevice(words uint64) (*htm.HTM, *htm.Thread) {
	a := simmem.NewArena(words)
	h := htm.New(a, htm.DefaultConfig)
	return h, h.NewThread(vclock.NewWallProc(0, 0), 1)
}

// NewHostDevice is NewDevice on the host backend: the cost model is off and
// threads are expected to be real goroutines on host procs.
func NewHostDevice(words uint64) (*htm.HTM, *htm.Thread) {
	a := simmem.NewArena(words)
	cfg := htm.DefaultConfig
	cfg.Backend = htm.BackendHost
	h := htm.New(a, cfg)
	return h, h.NewHostThread(0, 1)
}

// RunAll executes the full kit against a factory.
func RunAll(t *testing.T, mk Factory) {
	t.Run("EmptyTree", func(t *testing.T) { runEmpty(t, mk) })
	t.Run("PutGetUpdate", func(t *testing.T) { runPutGetUpdate(t, mk) })
	t.Run("SequentialFill", func(t *testing.T) { runSequentialFill(t, mk) })
	t.Run("ReverseFill", func(t *testing.T) { runReverseFill(t, mk) })
	t.Run("RandomModel", func(t *testing.T) { runRandomModel(t, mk) })
	t.Run("DeleteModel", func(t *testing.T) { runDeleteModel(t, mk) })
	t.Run("ScanSemantics", func(t *testing.T) { runScan(t, mk) })
	t.Run("PropertySequences", func(t *testing.T) { runProperty(t, mk) })
	t.Run("ConcurrentDisjointWall", func(t *testing.T) { runConcurrentDisjoint(t, mk) })
	t.Run("ConcurrentSharedWall", func(t *testing.T) { runConcurrentShared(t, mk) })
	t.Run("ConcurrentSim", func(t *testing.T) { runConcurrentSim(t, mk) })
	t.Run("ConcurrentMixedOpsSim", func(t *testing.T) { runConcurrentMixedSim(t, mk) })
	t.Run("LinearizabilitySweep", func(t *testing.T) { runLinearizabilitySweep(t, mk) })
	t.Run("LinearizabilityWall", func(t *testing.T) { runLinearizabilityWall(t, mk) })
	t.Run("LinearizabilityHost", func(t *testing.T) { runLinearizabilityHost(t, mk) })
	t.Run("ConcurrentSharedHost", func(t *testing.T) { runConcurrentSharedHost(t, mk) })
	t.Run("FaultInjection", func(t *testing.T) { runFaultInjection(t, mk) })
}

func runEmpty(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 18)
	kv := mk(h, boot)
	if _, ok := kv.Get(boot, 42); ok {
		t.Fatal("empty tree returned a value")
	}
	if kv.Delete(boot, 42) {
		t.Fatal("empty tree deleted a key")
	}
	if n := kv.Scan(boot, 0, 10, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatalf("empty scan visited %d", n)
	}
}

func runPutGetUpdate(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 18)
	kv := mk(h, boot)
	kv.Put(boot, 10, 100)
	kv.Put(boot, 20, 200)
	if v, ok := kv.Get(boot, 10); !ok || v != 100 {
		t.Fatalf("get(10) = %d,%v", v, ok)
	}
	kv.Put(boot, 10, 111) // update in place
	if v, ok := kv.Get(boot, 10); !ok || v != 111 {
		t.Fatalf("after update get(10) = %d,%v", v, ok)
	}
	if _, ok := kv.Get(boot, 15); ok {
		t.Fatal("absent key found")
	}
}

func runSequentialFill(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	kv := mk(h, boot)
	const n = 3000 // forces multiple levels of splits at fanout 16
	for i := uint64(1); i <= n; i++ {
		kv.Put(boot, i, i*3)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := kv.Get(boot, i); !ok || v != i*3 {
			t.Fatalf("get(%d) = %d,%v after sequential fill", i, v, ok)
		}
	}
}

func runReverseFill(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	kv := mk(h, boot)
	const n = 2000
	for i := uint64(n); i >= 1; i-- {
		kv.Put(boot, i, i+7)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := kv.Get(boot, i); !ok || v != i+7 {
			t.Fatalf("get(%d) = %d,%v after reverse fill", i, v, ok)
		}
	}
}

func runRandomModel(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	kv := mk(h, boot)
	model := map[uint64]uint64{}
	r := vclock.NewRand(99)
	for i := 0; i < 6000; i++ {
		k := uint64(r.Intn(1500)) + 1
		v := r.Uint64() >> 1
		kv.Put(boot, k, v)
		model[k] = v
	}
	for k, want := range model {
		if v, ok := kv.Get(boot, k); !ok || v != want {
			t.Fatalf("get(%d) = %d,%v want %d", k, v, ok, want)
		}
	}
}

func runDeleteModel(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	kv := mk(h, boot)
	model := map[uint64]uint64{}
	r := vclock.NewRand(7)
	for i := 0; i < 4000; i++ {
		k := uint64(r.Intn(600)) + 1
		switch r.Intn(3) {
		case 0, 1:
			v := r.Uint64() >> 1
			kv.Put(boot, k, v)
			model[k] = v
		case 2:
			_, inModel := model[k]
			if got := kv.Delete(boot, k); got != inModel {
				t.Fatalf("delete(%d) = %v, model says %v", k, got, inModel)
			}
			delete(model, k)
		}
	}
	for k := uint64(1); k <= 600; k++ {
		want, inModel := model[k]
		v, ok := kv.Get(boot, k)
		if ok != inModel || (ok && v != want) {
			t.Fatalf("get(%d) = %d,%v; model %d,%v", k, v, ok, want, inModel)
		}
	}
}

func runScan(t *testing.T, mk Factory) {
	h, boot := NewDevice(1 << 22)
	kv := mk(h, boot)
	// Insert even keys 2..400.
	for k := uint64(2); k <= 400; k += 2 {
		kv.Put(boot, k, k*10)
	}
	var got []uint64
	n := kv.Scan(boot, 100, 20, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("scan value mismatch: %d -> %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if n != 20 || len(got) != 20 {
		t.Fatalf("scan visited %d, want 20", n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("scan out of order: %v", got)
	}
	if got[0] != 100 || got[19] != 138 {
		t.Fatalf("scan range wrong: first=%d last=%d", got[0], got[19])
	}
	// From a key between stored keys.
	got = got[:0]
	kv.Scan(boot, 101, 3, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != 3 || got[0] != 102 {
		t.Fatalf("scan from gap: %v", got)
	}
	// Early termination by fn.
	calls := 0
	n = kv.Scan(boot, 2, 100, func(k, v uint64) bool { calls++; return calls < 5 })
	if calls != 5 {
		t.Fatalf("early-stop scan made %d calls", calls)
	}
	// Scan past the end.
	if n := kv.Scan(boot, 401, 10, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatalf("scan past end visited %d", n)
	}
}

// runProperty drives random op sequences via testing/quick and compares
// against a map+sorted-model, including scans.
func runProperty(t *testing.T, mk Factory) {
	f := func(seed uint64) bool {
		h, boot := NewDevice(1 << 22)
		kv := mk(h, boot)
		model := map[uint64]uint64{}
		r := vclock.NewRand(seed)
		for i := 0; i < 800; i++ {
			k := uint64(r.Intn(200)) + 1
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				v := r.Uint64() >> 1
				kv.Put(boot, k, v)
				model[k] = v
			case 4, 5:
				_, inModel := model[k]
				if kv.Delete(boot, k) != inModel {
					return false
				}
				delete(model, k)
			case 6, 7, 8:
				want, inModel := model[k]
				v, ok := kv.Get(boot, k)
				if ok != inModel || (ok && v != want) {
					return false
				}
			case 9:
				// Scan 5 from k and compare with the model's sorted view.
				var keys []uint64
				for mk := range model {
					if mk >= k {
						keys = append(keys, mk)
					}
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				if len(keys) > 5 {
					keys = keys[:5]
				}
				var got []uint64
				kv.Scan(boot, k, 5, func(sk, sv uint64) bool {
					got = append(got, sk)
					return true
				})
				if len(got) != len(keys) {
					return false
				}
				for j := range got {
					if got[j] != keys[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func runConcurrentDisjoint(t *testing.T, mk Factory) {
	// Workers insert disjoint key ranges concurrently; every key must be
	// present with its exact value afterwards (no lost splits/updates).
	h, boot := NewDevice(1 << 24)
	kv := mk(h, boot)
	const workers = 8
	per := uint64(400)
	if testing.Short() {
		per = 100 // keep -race -short runs inside CI time budgets
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread(vclock.NewWallProc(w+1, 64), uint64(w)+2)
			base := uint64(w)*per + 1
			for i := uint64(0); i < per; i++ {
				kv.Put(th, base+i, (base+i)*2)
			}
		}(w)
	}
	wg.Wait()
	for k := uint64(1); k <= workers*per; k++ {
		if v, ok := kv.Get(boot, k); !ok || v != k*2 {
			t.Fatalf("get(%d) = %d,%v after concurrent fill", k, v, ok)
		}
	}
}

func runConcurrentShared(t *testing.T, mk Factory) {
	// Workers hammer the same small hot set; a concurrent reader must only
	// ever observe values some worker actually wrote.
	h, boot := NewDevice(1 << 24)
	kv := mk(h, boot)
	const workers, hot = 6, 16
	ops := 500
	if testing.Short() {
		ops = 125 // keep -race -short runs inside CI time budgets
	}
	for k := uint64(1); k <= hot; k++ {
		kv.Put(boot, k, 1<<40)
	}
	var wg sync.WaitGroup
	bad := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread(vclock.NewWallProc(w+1, 32), uint64(w)+3)
			r := vclock.NewRand(uint64(w) + 50)
			for i := 0; i < ops; i++ {
				k := uint64(r.Intn(hot)) + 1
				if r.Intn(2) == 0 {
					kv.Put(th, k, 1<<40|uint64(w)<<20|uint64(i))
				} else {
					v, ok := kv.Get(th, k)
					if !ok || v&(1<<40) == 0 {
						bad[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, b := range bad {
		if b != 0 {
			t.Fatalf("worker %d observed %d invalid reads", w, b)
		}
	}
}

func runConcurrentSharedHost(t *testing.T, mk Factory) {
	// The shared-hot-set stress on the host backend: same invariant as
	// runConcurrentShared, but with the cost model off the goroutines run
	// the protocol at native speed, so far more real interleavings per
	// second reach the conflict paths.
	h, boot := NewHostDevice(1 << 24)
	kv := mk(h, boot)
	const workers, hot = 6, 16
	ops := 1500
	if testing.Short() {
		ops = 300 // keep -race -short runs inside CI time budgets
	}
	for k := uint64(1); k <= hot; k++ {
		kv.Put(boot, k, 1<<40)
	}
	var wg sync.WaitGroup
	bad := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewHostThread(w+1, uint64(w)+3)
			r := vclock.NewRand(uint64(w) + 50)
			for i := 0; i < ops; i++ {
				k := uint64(r.Intn(hot)) + 1
				if r.Intn(2) == 0 {
					kv.Put(th, k, 1<<40|uint64(w)<<20|uint64(i))
				} else {
					v, ok := kv.Get(th, k)
					if !ok || v&(1<<40) == 0 {
						bad[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, b := range bad {
		if b != 0 {
			t.Fatalf("worker %d observed %d invalid reads", w, b)
		}
	}
}

func runConcurrentSim(t *testing.T, mk Factory) {
	// Deterministic virtual-time stress: interleaving at single-access
	// granularity, then full verification.
	h, _ := NewDevice(1 << 24)
	var kv tree.KV
	sim := vclock.NewSim(8, 0)
	const per = 250
	procs := sim.Procs()
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	kv = mk(h, boot)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+11)
		base := uint64(p.ID()*per) + 1
		for i := uint64(0); i < per; i++ {
			kv.Put(th, base+i, (base+i)*5)
		}
		// Interleave some reads of our own keys.
		for i := uint64(0); i < per; i += 7 {
			if v, ok := kv.Get(th, base+i); !ok || v != (base+i)*5 {
				t.Errorf("proc %d: get(%d) = %d,%v", p.ID(), base+i, v, ok)
			}
		}
	})
	for k := uint64(1); k <= uint64(len(procs))*per; k++ {
		if v, ok := kv.Get(boot, k); !ok || v != k*5 {
			t.Fatalf("get(%d) = %d,%v after sim run", k, v, ok)
		}
	}
}

func runConcurrentMixedSim(t *testing.T, mk Factory) {
	// All op kinds concurrently on a shared key space under virtual time.
	// Verified invariant: values are always tagged with their key, so any
	// read must return a matching tag (no cross-key smearing), and scans
	// must be sorted and consistent.
	h, _ := NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	kv := mk(h, boot)
	const keys = 300
	for k := uint64(1); k <= keys; k += 2 {
		kv.Put(boot, k, k<<20|1)
	}
	sim := vclock.NewSim(6, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+31)
		r := vclock.NewRand(uint64(p.ID()) + 77)
		for i := 0; i < 400; i++ {
			k := uint64(r.Intn(keys)) + 1
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				kv.Put(th, k, k<<20|uint64(i)<<4|uint64(p.ID()))
			case 4:
				kv.Delete(th, k)
			case 5:
				var last uint64
				kv.Scan(th, k, 8, func(sk, sv uint64) bool {
					if sk < last || sv>>20 != sk {
						t.Errorf("scan anomaly at key %d: sk=%d sv=%x last=%d", k, sk, sv, last)
					}
					last = sk
					return true
				})
			default:
				if v, ok := kv.Get(th, k); ok && v>>20 != k {
					t.Errorf("get(%d) returned value tagged %d", k, v>>20)
				}
			}
		}
	})
}
