// Package tree defines the interface shared by the four concurrent search
// tree implementations the paper compares: the conventional HTM-B+Tree
// (internal/tree/htmtree), Euno-B+Tree (internal/core), and the fine-grained
// "Masstree" with its HTM-wrapped variant (internal/tree/masstree).
package tree

import "eunomia/internal/htm"

// Tombstone is a reserved value used internally by trees that defer
// deletion (Euno-B+Tree labels records deleted rather than rebalancing,
// following Section 4.2.4). User values must not equal Tombstone.
const Tombstone = ^uint64(0)

// KV is the key-value interface every tree implements. All methods take the
// calling worker's htm.Thread, which carries the virtual-time proc, the
// deterministic RNG, and the per-thread HTM statistics.
//
// Put inserts key with value val, or updates it in place if present (the
// paper's put semantics). Delete removes the key, reporting whether it was
// present. Scan visits up to max keys >= from in ascending order, stopping
// early if fn returns false, and returns the number visited.
type KV interface {
	Get(th *htm.Thread, key uint64) (val uint64, ok bool)
	Put(th *htm.Thread, key, val uint64)
	Delete(th *htm.Thread, key uint64) bool
	Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int
	Name() string
}
