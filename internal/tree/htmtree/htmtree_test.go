package htmtree

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/tree"
	"eunomia/internal/tree/treetest"
)

func factory(h *htm.HTM, boot *htm.Thread) tree.KV {
	return New(h, boot, 16)
}

func TestKit(t *testing.T) {
	treetest.RunAll(t, factory)
}

func TestDepthGrows(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 8)
	if d := tr.Depth(boot); d != 1 {
		t.Fatalf("fresh depth = %d", d)
	}
	for i := uint64(1); i <= 500; i++ {
		tr.Put(boot, i, i)
	}
	if d := tr.Depth(boot); d < 3 {
		t.Fatalf("depth after 500 inserts at fanout 8 = %d, want >= 3", d)
	}
}

func TestMonolithicOpIsOneTransaction(t *testing.T) {
	// A get on a warm tree must cost exactly one transaction attempt when
	// uncontended (the defining property of the baseline design).
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 16)
	for i := uint64(1); i <= 100; i++ {
		tr.Put(boot, i, i)
	}
	before := boot.Stats.Attempts
	tr.Get(boot, 50)
	if got := boot.Stats.Attempts - before; got != 1 {
		t.Fatalf("get used %d attempts, want 1", got)
	}
}

func TestFanoutValidation(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 18)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for fanout 2")
		}
	}()
	New(h, boot, 2)
}
