package htmtree

import (
	"fmt"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// Validate walks the tree with direct reads and checks structural
// invariants. It requires quiescence and is intended for tests.
func (t *Tree) Validate(p vclock.Proc) error {
	root := simmem.Addr(t.a.LoadWord(p, t.meta+metaRoot))
	depth := t.a.LoadWord(p, t.meta+metaDepth)
	var prevKey uint64
	leaves := map[simmem.Addr]bool{}
	if err := t.validateNode(p, root, depth, 0, ^uint64(0), &prevKey, leaves); err != nil {
		return err
	}
	// Leaf chain agrees with reachability and visits ascending keys.
	leftmost := root
	for d := depth; d > 1; d-- {
		leftmost = simmem.Addr(t.a.LoadWord(p, leftmost+t.childOff(0)))
	}
	seen := 0
	for l := leftmost; l != simmem.NilAddr; l = simmem.Addr(t.a.LoadWord(p, l+offNext)) {
		if !leaves[l] {
			return fmt.Errorf("leaf %d on chain but unreachable", l)
		}
		seen++
	}
	if seen != len(leaves) {
		return fmt.Errorf("chain has %d leaves, tree has %d", seen, len(leaves))
	}
	return nil
}

func (t *Tree) validateNode(p vclock.Proc, node simmem.Addr, depth, low, high uint64, prevKey *uint64, leaves map[simmem.Addr]bool) error {
	count := int(t.a.LoadWord(p, node+offCount))
	if depth == 1 {
		if leaves[node] {
			return fmt.Errorf("leaf %d reachable twice", node)
		}
		leaves[node] = true
		if count < 0 || count > t.fanout {
			return fmt.Errorf("leaf %d: count %d out of range", node, count)
		}
		for i := 0; i < count; i++ {
			k := t.a.LoadWord(p, node+t.keyOff(i))
			if k <= *prevKey && *prevKey != 0 {
				return fmt.Errorf("leaf %d: key %d not ascending after %d", node, k, *prevKey)
			}
			if k < low || k > high {
				return fmt.Errorf("leaf %d: key %d outside [%d, %d]", node, k, low, high)
			}
			*prevKey = k
		}
		return nil
	}
	if count < 1 || count > t.fanout {
		return fmt.Errorf("internal %d: count %d out of range", node, count)
	}
	prev := low
	for i := 0; i < count; i++ {
		k := t.a.LoadWord(p, node+t.keyOff(i))
		if (i > 0 && k <= prev) || k < low || k > high {
			return fmt.Errorf("internal %d: separator %d at %d violates (%d..%d, prev %d)", node, k, i, low, high, prev)
		}
		prev = k
	}
	childLow := low
	for i := 0; i <= count; i++ {
		childHigh := high
		if i < count {
			childHigh = t.a.LoadWord(p, node+t.keyOff(i)) - 1
		}
		child := simmem.Addr(t.a.LoadWord(p, node+t.childOff(i)))
		if child == simmem.NilAddr {
			return fmt.Errorf("internal %d: nil child %d", node, i)
		}
		if err := t.validateNode(p, child, depth-1, childLow, childHigh, prevKey, leaves); err != nil {
			return err
		}
		if i < count {
			childLow = t.a.LoadWord(p, node+t.keyOff(i))
		}
	}
	return nil
}
