package htmtree

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

func TestValidateAfterChurn(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 23)
	tr := New(h, boot, 16)
	r := vclock.NewRand(9)
	for i := 0; i < 8000; i++ {
		k := uint64(r.Intn(900)) + 1
		switch r.Intn(4) {
		case 0, 1:
			tr.Put(boot, k, r.Uint64()>>1)
		case 2:
			tr.Delete(boot, k)
		default:
			tr.Get(boot, k)
		}
	}
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAfterConcurrentSim(t *testing.T) {
	h, _ := treetest.NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, 8)
	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+3)
		r := vclock.NewRand(uint64(p.ID()) + 41)
		for i := 0; i < 700; i++ {
			k := uint64(r.Intn(1500)) + 1
			if r.Intn(3) == 0 {
				tr.Delete(th, k)
			} else {
				tr.Put(th, k, k)
			}
		}
	})
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 16)
	for i := uint64(1); i <= 300; i++ {
		tr.Put(boot, i, i)
	}
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
	// Corrupt a leaf count.
	leaf := tr.findLeafDirect(boot.P, 150)
	tr.a.StoreWordDirect(boot.P, leaf+offCount, 999)
	if err := tr.Validate(boot.P); err == nil {
		t.Fatal("validator accepted corrupted count")
	}
}

// findLeafDirect is a test helper walking with direct reads.
func (t *Tree) findLeafDirect(p vclock.Proc, key uint64) (leaf simmem.Addr) {
	node := simmem.Addr(t.a.LoadWord(p, t.meta+metaRoot))
	depth := t.a.LoadWord(p, t.meta+metaDepth)
	for d := depth; d > 1; d-- {
		count := int(t.a.LoadWord(p, node+offCount))
		i := 0
		for i < count && t.a.LoadWord(p, node+t.keyOff(i)) <= key {
			i++
		}
		node = simmem.Addr(t.a.LoadWord(p, node+t.childOff(i)))
	}
	return node
}
