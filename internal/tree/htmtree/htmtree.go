// Package htmtree implements the paper's baseline: a conventional
// concurrent B+Tree whose every operation runs inside a single monolithic
// HTM region (Algorithm 1), the design used by DBX, DrTM and related
// in-memory databases.
//
// The layout is deliberately "conventional": keys are stored sorted and
// consecutive, so neighboring records share cache lines (the source of the
// paper's false conflicts); every node has a metadata line holding its key
// count, and the tree root/depth live on one shared metadata line that every
// operation reads and every root split writes (the shared-metadata conflict
// source). Under low contention the single coarse region is simple and
// fast; under contention it exhibits exactly the abort profile of Figures 1
// and 2.
package htmtree

import (
	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// Node layout, in words from the node base address. Line 0 is the node's
// metadata line (tag TagNodeMeta); payload starts on line 1 (tag TagKeys).
//
// Words 8 and 9 are the *conventional in-node header*: a node version and
// a status word, updated on every modification, sitting at the head of the
// key array as in ordinary B+Tree implementations ("a conventional B+Tree
// inherently contains pervasive shared variables... e.g. number of layers
// and version number of nodes", Section 2.3). Because they share a cache
// line with the first keys, every put invalidates the line every search
// probes — the dominant false-conflict source in the paper's Figure 2.
const (
	offCount   = 0  // number of keys stored
	offNext    = 1  // leaves: address of the next leaf (0 = none)
	offLevel   = 2  // 0 for leaves, >0 for internal nodes
	offNodeVer = 8  // conventional node version, bumped on every modification
	offStatus  = 9  // conventional node status word
	offData    = 10 // keys begin here, same cache line as the header
)

// Tree-global metadata line layout (tag TagTreeMeta).
const (
	metaRoot  = 0
	metaDepth = 1 // number of levels; 1 = the root is a leaf
)

// Tree is the monolithic-transaction HTM-B+Tree.
type Tree struct {
	h      *htm.HTM
	a      *simmem.Arena
	fanout int
	meta   simmem.Addr
	policy htm.RetryPolicy
}

// New creates an empty tree with the given leaf/internal fanout (maximum
// keys per node). The boot thread is only used for initial allocation.
func New(h *htm.HTM, boot *htm.Thread, fanout int) *Tree {
	if fanout < 4 {
		panic("htmtree: fanout must be at least 4")
	}
	t := &Tree{h: h, a: h.Arena(), fanout: fanout, policy: htm.DefaultPolicy}
	t.meta = t.a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagTreeMeta)
	root := t.newNode(boot.P, true)
	t.a.StoreWordDirect(boot.P, t.meta+metaRoot, uint64(root))
	t.a.StoreWordDirect(boot.P, t.meta+metaDepth, 1)
	return t
}

// SetPolicy overrides the retry policy used by every operation (e.g. with
// htm.ResilientPolicy()). Call before sharing the tree between threads.
func (t *Tree) SetPolicy(pol htm.RetryPolicy) { t.policy = pol }

// Name implements tree.KV.
func (t *Tree) Name() string { return "htm-btree" }

// Fanout returns the node fanout.
func (t *Tree) Fanout() int { return t.fanout }

// leafWords and internalWords are the allocation sizes.
func (t *Tree) leafWords() int     { return offData + 2*t.fanout }
func (t *Tree) internalWords() int { return offData + 2*t.fanout + 1 }

func (t *Tree) keyOff(i int) simmem.Addr   { return simmem.Addr(offData + i) }
func (t *Tree) valOff(i int) simmem.Addr   { return simmem.Addr(offData + t.fanout + i) }
func (t *Tree) childOff(i int) simmem.Addr { return simmem.Addr(offData + t.fanout + i) }

// newNode allocates a node outside any transaction (boot path).
func (t *Tree) newNode(p vclock.Proc, leaf bool) simmem.Addr {
	n := t.leafWords()
	if !leaf {
		n = t.internalWords()
	}
	addr := t.a.AllocAligned(p, n, simmem.TagKeys)
	t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	return addr
}

// newNodeTx allocates a node inside a transaction (split path); the
// allocation is rolled back if the attempt aborts.
func (t *Tree) newNodeTx(tx *htm.Tx, leaf bool) simmem.Addr {
	n := t.leafWords()
	if !leaf {
		n = t.internalWords()
	}
	addr := tx.AllocAligned(n, simmem.TagKeys)
	t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	return addr
}

// findLeaf walks from the root to the leaf covering key, recording the
// internal-node path (root first) into path, and returns the leaf.
func (t *Tree) findLeaf(tx *htm.Tx, key uint64, path *[]simmem.Addr) simmem.Addr {
	node := simmem.Addr(tx.Load(t.meta + metaRoot))
	depth := tx.Load(t.meta + metaDepth)
	for d := depth; d > 1; d-- {
		if path != nil {
			*path = append(*path, node)
		}
		node = t.findChild(tx, node, key)
	}
	return node
}

// findChild selects the child of an internal node covering key: the child
// index equals the number of separators <= key.
func (t *Tree) findChild(tx *htm.Tx, node simmem.Addr, key uint64) simmem.Addr {
	count := int(tx.Load(node + offCount))
	lo, hi := 0, count // find first separator > key
	for lo < hi {
		mid := (lo + hi) / 2
		if tx.Load(node+t.keyOff(mid)) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return simmem.Addr(tx.Load(node + t.childOff(lo)))
}

// leafSearch finds the position of key in a leaf: the index of the first
// key >= key, and whether it is an exact match.
func (t *Tree) leafSearch(tx *htm.Tx, leaf simmem.Addr, key uint64) (int, bool) {
	count := int(tx.Load(leaf + offCount))
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if tx.Load(leaf+t.keyOff(mid)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < count && tx.Load(leaf+t.keyOff(lo)) == key {
		return lo, true
	}
	return lo, false
}

// Get implements tree.KV.
func (t *Tree) Get(th *htm.Thread, key uint64) (uint64, bool) {
	var val uint64
	var ok bool
	th.Execute(t.policy, func(tx *htm.Tx) {
		val, ok = 0, false
		leaf := t.findLeaf(tx, key, nil)
		if idx, found := t.leafSearch(tx, leaf, key); found {
			val = tx.Load(leaf + t.valOff(idx))
			ok = true
		}
	})
	return val, ok
}

// Put implements tree.KV: update in place if the key exists, insert
// (splitting as needed) otherwise — all in one HTM region.
func (t *Tree) Put(th *htm.Thread, key, val uint64) {
	path := make([]simmem.Addr, 0, 12)
	th.Execute(t.policy, func(tx *htm.Tx) {
		path = path[:0]
		leaf := t.findLeaf(tx, key, &path)
		idx, found := t.leafSearch(tx, leaf, key)
		if found {
			tx.Store(leaf+t.valOff(idx), val)
			t.bumpVersion(tx, leaf)
			return
		}
		if int(tx.Load(leaf+offCount)) == t.fanout {
			tx.Fault(htm.FaultMidSplit)
			right, sep := t.splitLeaf(tx, leaf)
			t.insertUp(tx, path, sep, right)
			if key >= sep {
				leaf = right
			}
			idx, _ = t.leafSearch(tx, leaf, key)
		}
		t.insertAt(tx, leaf, idx, key, val)
	})
}

// bumpVersion updates the conventional in-node header after a
// modification, as ordinary B+Tree code does.
func (t *Tree) bumpVersion(tx *htm.Tx, node simmem.Addr) {
	tx.Store(node+offNodeVer, tx.Load(node+offNodeVer)+1)
}

// insertAt shifts the sorted key/value arrays right and installs the new
// record — the consecutive-layout write the paper's false-conflict analysis
// centres on.
func (t *Tree) insertAt(tx *htm.Tx, leaf simmem.Addr, idx int, key, val uint64) {
	count := int(tx.Load(leaf + offCount))
	for i := count; i > idx; i-- {
		tx.Store(leaf+t.keyOff(i), tx.Load(leaf+t.keyOff(i-1)))
		tx.Store(leaf+t.valOff(i), tx.Load(leaf+t.valOff(i-1)))
	}
	tx.Store(leaf+t.keyOff(idx), key)
	tx.Store(leaf+t.valOff(idx), val)
	tx.Store(leaf+offCount, uint64(count+1))
	t.bumpVersion(tx, leaf)
}

// splitLeaf moves the upper half of a full leaf into a new right sibling
// and returns the sibling and its separator (its smallest key).
func (t *Tree) splitLeaf(tx *htm.Tx, leaf simmem.Addr) (right simmem.Addr, sep uint64) {
	right = t.newNodeTx(tx, true)
	half := t.fanout / 2
	moved := t.fanout - half
	for i := 0; i < moved; i++ {
		tx.Store(right+t.keyOff(i), tx.Load(leaf+t.keyOff(half+i)))
		tx.Store(right+t.valOff(i), tx.Load(leaf+t.valOff(half+i)))
	}
	tx.Store(right+offCount, uint64(moved))
	tx.Store(right+offNext, tx.Load(leaf+offNext))
	tx.Store(leaf+offNext, uint64(right))
	tx.Store(leaf+offCount, uint64(half))
	t.bumpVersion(tx, leaf)
	sep = tx.Load(right + t.keyOff(0))
	return right, sep
}

// insertUp propagates a (separator, right-child) pair up the recorded
// path, splitting internal nodes and finally the root as needed.
func (t *Tree) insertUp(tx *htm.Tx, path []simmem.Addr, sep uint64, child simmem.Addr) {
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i]
		count := int(tx.Load(node + offCount))
		if count < t.fanout {
			t.insertInternal(tx, node, count, sep, child)
			return
		}
		// Split the internal node: the middle separator moves up.
		mid := count / 2
		upKey := tx.Load(node + t.keyOff(mid))
		right := t.newNodeTx(tx, false)
		rc := count - mid - 1
		for j := 0; j < rc; j++ {
			tx.Store(right+t.keyOff(j), tx.Load(node+t.keyOff(mid+1+j)))
		}
		for j := 0; j <= rc; j++ {
			tx.Store(right+t.childOff(j), tx.Load(node+t.childOff(mid+1+j)))
		}
		tx.Store(right+offCount, uint64(rc))
		tx.Store(right+offLevel, tx.Load(node+offLevel))
		tx.Store(node+offCount, uint64(mid))
		if sep < upKey {
			t.insertInternal(tx, node, mid, sep, child)
		} else {
			t.insertInternal(tx, right, rc, sep, child)
		}
		sep, child = upKey, right
	}
	// Root split: grow the tree by one level.
	oldRoot := simmem.Addr(tx.Load(t.meta + metaRoot))
	depth := tx.Load(t.meta + metaDepth)
	newRoot := t.newNodeTx(tx, false)
	tx.Store(newRoot+offCount, 1)
	tx.Store(newRoot+offLevel, depth)
	tx.Store(newRoot+t.keyOff(0), sep)
	tx.Store(newRoot+t.childOff(0), uint64(oldRoot))
	tx.Store(newRoot+t.childOff(1), uint64(child))
	tx.Store(t.meta+metaRoot, uint64(newRoot))
	tx.Store(t.meta+metaDepth, depth+1)
}

// insertInternal inserts (sep, child-to-the-right) into an internal node
// with the given current count (caller guarantees count < fanout).
func (t *Tree) insertInternal(tx *htm.Tx, node simmem.Addr, count int, sep uint64, child simmem.Addr) {
	pos := 0
	for pos < count && tx.Load(node+t.keyOff(pos)) < sep {
		pos++
	}
	for i := count; i > pos; i-- {
		tx.Store(node+t.keyOff(i), tx.Load(node+t.keyOff(i-1)))
	}
	for i := count + 1; i > pos+1; i-- {
		tx.Store(node+t.childOff(i), tx.Load(node+t.childOff(i-1)))
	}
	tx.Store(node+t.keyOff(pos), sep)
	tx.Store(node+t.childOff(pos+1), uint64(child))
	tx.Store(node+offCount, uint64(count+1))
	t.bumpVersion(tx, node)
}

// Delete implements tree.KV: it removes the record by shifting the arrays
// left. Underfull leaves are left in place (deletion without rebalancing,
// as in Section 4.2.4's deferred scheme).
func (t *Tree) Delete(th *htm.Thread, key uint64) bool {
	var removed bool
	th.Execute(t.policy, func(tx *htm.Tx) {
		removed = false
		leaf := t.findLeaf(tx, key, nil)
		idx, found := t.leafSearch(tx, leaf, key)
		if !found {
			return
		}
		count := int(tx.Load(leaf + offCount))
		for i := idx; i < count-1; i++ {
			tx.Store(leaf+t.keyOff(i), tx.Load(leaf+t.keyOff(i+1)))
			tx.Store(leaf+t.valOff(i), tx.Load(leaf+t.valOff(i+1)))
		}
		tx.Store(leaf+offCount, uint64(count-1))
		t.bumpVersion(tx, leaf)
		removed = true
	})
	return removed
}

// Scan implements tree.KV: it gathers up to max records with key >= from
// inside one HTM region (following leaf links), then reports them to fn
// outside the region so retries never re-deliver.
func (t *Tree) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	type pair struct{ k, v uint64 }
	buf := make([]pair, 0, max)
	th.Execute(t.policy, func(tx *htm.Tx) {
		buf = buf[:0]
		leaf := t.findLeaf(tx, from, nil)
		idx, _ := t.leafSearch(tx, leaf, from)
		for len(buf) < max && leaf != simmem.NilAddr {
			count := int(tx.Load(leaf + offCount))
			for ; idx < count && len(buf) < max; idx++ {
				buf = append(buf, pair{tx.Load(leaf + t.keyOff(idx)), tx.Load(leaf + t.valOff(idx))})
			}
			leaf = simmem.Addr(tx.Load(leaf + offNext))
			idx = 0
		}
	})
	n := 0
	for _, p := range buf {
		if !fn(p.k, p.v) {
			break
		}
		n++
	}
	return n
}

// Depth returns the current number of tree levels (diagnostic).
func (t *Tree) Depth(th *htm.Thread) int {
	var d uint64
	th.Execute(t.policy, func(tx *htm.Tx) {
		d = tx.Load(t.meta + metaDepth)
	})
	return int(d)
}
