// Package masstree implements the paper's fine-grained-locking comparator:
// a concurrent B+Tree with Masstree-style optimistic concurrency control
// ("before-and-after" version validation, Section 4.6 of the Masstree
// paper), which the Eunomia paper derives its lock-based baseline from and
// still calls "Masstree" for simplicity — as do we.
//
// Every node carries a version word. Readers sample it, read optimistically
// and re-validate; writers lock the node (CAS on the version word), modify,
// and release with a version bump. This is exactly the extra
// synchronization instruction stream the paper measures ("a put operation
// in Masstree needs on average to check and manipulate a version number
// about 15 times while traversing the tree"): in our cost model those
// loads, CASes and re-checks are charged to virtual time, reproducing the
// ~40% instruction overhead against Euno-B+Tree.
//
// Structure modifications (splits) are serialized by a single SMO lock: the
// splitter locks the affected path top of that, so readers and unrelated
// writers proceed untouched. Masstree proper threads split locks hand over
// hand; serializing rare splits is a simplification that does not affect
// the contended-leaf behavior the evaluation measures.
//
// HTM-Masstree — "an HTM version of Masstree... using an HTM region to
// protect the entire Masstree operation, subsuming multiple elided locks" —
// is the same code run inside one transaction per operation with every lock
// elided (read, never written). The version-word bumps remain, which is
// precisely why it aborts so much: every writer invalidates every
// concurrent reader of the node's metadata line.
package masstree

import (
	"sort"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// Node layout (words from node base). Line 0 is metadata (TagNodeMeta);
// keys/values/children follow on TagKeys lines, as in the baseline tree.
const (
	offCount   = 0
	offNext    = 1 // right sibling (B-link pointer; leaves and internals)
	offLevel   = 2
	offVersion = 3 // bit 0 = locked, bits 1.. = version
	offHigh    = 4 // exclusive upper bound of this node's key range
	offData    = 8
)

// maxHigh is the high key of a rightmost node. User keys must be below it
// (the tree package already reserves ^0 as the tombstone).
const maxHigh = ^uint64(0)

// The tree-global metadata line packs root address and depth into one word
// so a descent reads them atomically: depth<<56 | root.
const (
	metaRootDepth = 0
	metaSMO       = 4 // structure-modification lock word (same line)
)

// Tree is the fine-grained B+Tree; set UseHTM for the HTM-Masstree variant.
type Tree struct {
	h      *htm.HTM
	a      *simmem.Arena
	fanout int
	meta   simmem.Addr
	useHTM bool
	policy htm.RetryPolicy
}

// New creates an empty tree. useHTM selects HTM-Masstree.
func New(h *htm.HTM, boot *htm.Thread, fanout int, useHTM bool) *Tree {
	if fanout < 4 {
		panic("masstree: fanout must be at least 4")
	}
	t := &Tree{h: h, a: h.Arena(), fanout: fanout, useHTM: useHTM, policy: htm.DefaultPolicy}
	t.meta = t.a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagTreeMeta)
	root := t.newNode(boot.P, true)
	t.a.StoreWordDirect(boot.P, root+offHigh, maxHigh)
	t.a.StoreWordDirect(boot.P, t.meta+metaRootDepth, packRootDepth(root, 1))
	return t
}

// SetPolicy overrides the retry policy used by the HTM-Masstree variant's
// transactions (e.g. with htm.ResilientPolicy()). Call before sharing the
// tree between threads; the non-HTM variant ignores it.
func (t *Tree) SetPolicy(pol htm.RetryPolicy) {
	t.policy = pol
}

func packRootDepth(root simmem.Addr, depth uint64) uint64 {
	return depth<<56 | uint64(root)
}

func unpackRootDepth(w uint64) (simmem.Addr, uint64) {
	return simmem.Addr(w & (1<<56 - 1)), w >> 56
}

// Name implements tree.KV.
func (t *Tree) Name() string {
	if t.useHTM {
		return "htm-masstree"
	}
	return "masstree"
}

func (t *Tree) leafWords() int     { return offData + 2*t.fanout }
func (t *Tree) internalWords() int { return offData + 2*t.fanout + 1 }

func (t *Tree) keyOff(i int) simmem.Addr   { return simmem.Addr(offData + i) }
func (t *Tree) valOff(i int) simmem.Addr   { return simmem.Addr(offData + t.fanout + i) }
func (t *Tree) childOff(i int) simmem.Addr { return simmem.Addr(offData + t.fanout + i) }

func (t *Tree) newNode(p vclock.Proc, leaf bool) simmem.Addr {
	n := t.leafWords()
	if !leaf {
		n = t.internalWords()
	}
	addr := t.a.AllocAligned(p, n, simmem.TagKeys)
	t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	return addr
}

// mem abstracts the two execution modes. In direct mode reads/writes are
// raw atomic word accesses (writers hold node locks; readers validate node
// versions), and lock operations are real CASes. In tx mode everything goes
// through the transaction and locks are elided: a "lock" only verifies the
// word is free/unchanged, relying on the transaction for atomicity.
type mem struct {
	t  *Tree
	p  vclock.Proc
	tx *htm.Tx // nil in direct mode
}

func (m mem) load(addr simmem.Addr) uint64 {
	if m.tx != nil {
		return m.tx.Load(addr)
	}
	return m.t.a.LoadWord(m.p, addr)
}

// fault marks a fault point in whichever mode the operation is running:
// transactional points can be aborted, direct-mode points can only yield.
func (m mem) fault(pt htm.FaultPoint) {
	if m.tx != nil {
		m.tx.Fault(pt)
		return
	}
	m.t.h.FaultProc(m.p, pt)
}

// store writes a word. Direct-mode callers must hold the covering node
// lock (or own the node exclusively); the owned store advances the line
// version so other cores' cached copies are invalidated.
func (m mem) store(addr simmem.Addr, v uint64) {
	if m.tx != nil {
		m.tx.Store(addr, v)
		return
	}
	m.t.a.StoreWordOwned(m.p, addr, v)
}

// stableVersion samples a node version, spinning past writers. The Fence
// cost models the ordering and bookkeeping instructions that surround every
// optimistic version check — the "before-and-after" machinery that makes
// Masstree execute ~2x the instructions of the HTM trees (Section 5.2).
func (m mem) stableVersion(node simmem.Addr) uint64 {
	for {
		v := m.load(node + offVersion)
		if v&1 == 0 {
			m.p.Tick(m.t.a.Costs().Fence)
			return v
		}
		// In tx mode a locked version is impossible (lock words are never
		// written transactionally), so this loop only spins in direct mode.
		m.p.Tick(m.t.a.Costs().SpinIter)
	}
}

// checkVersion re-validates a node against a previously sampled version
// (the "after" half of the before/after check).
func (m mem) checkVersion(node simmem.Addr, expect uint64) bool {
	m.p.Tick(m.t.a.Costs().Fence)
	return m.load(node+offVersion) == expect
}

// tryLock validates that the node still has the observed version and locks
// it. In tx mode validation alone suffices (the transaction serializes).
func (m mem) tryLock(node simmem.Addr, expect uint64) bool {
	if m.tx != nil {
		return m.tx.Load(node+offVersion) == expect
	}
	m.p.Tick(m.t.a.Costs().CAS)
	return m.t.a.CASWordDirect(m.p, node+offVersion, expect, expect|1)
}

// unlockBump releases a locked node, advancing its version.
func (m mem) unlockBump(node simmem.Addr, oldVer uint64) {
	if m.tx != nil {
		m.tx.Store(node+offVersion, oldVer+2)
		return
	}
	m.t.a.StoreWordOwned(m.p, node+offVersion, oldVer+2)
}

// unlockPlain releases a locked node without a version bump (no
// modification was made).
func (m mem) unlockPlain(node simmem.Addr, oldVer uint64) {
	if m.tx != nil {
		return
	}
	m.t.a.StoreWordOwned(m.p, node+offVersion, oldVer)
}

// root reads the packed root/depth word.
func (m mem) root() (simmem.Addr, uint64) {
	return unpackRootDepth(m.load(m.t.meta + metaRootDepth))
}

// newNode allocates a node; in tx mode the allocation is transaction-
// tracked so an abort returns it to the free list.
func (m mem) newNode(leaf bool) simmem.Addr {
	n := m.t.leafWords()
	if !leaf {
		n = m.t.internalWords()
	}
	var addr simmem.Addr
	if m.tx != nil {
		addr = m.tx.AllocAligned(n, simmem.TagKeys)
	} else {
		addr = m.t.a.AllocAligned(m.p, n, simmem.TagKeys)
	}
	m.t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	return addr
}

// findChildIdx returns the child index covering key (separators <= key).
// NodeWork charges Masstree's per-node structural instruction budget.
func (m mem) findChildIdx(node simmem.Addr, key uint64) int {
	m.p.Tick(m.t.a.Costs().NodeWork)
	count := int(m.load(node + offCount))
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if m.load(node+m.t.keyOff(mid)) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSearch returns the lower-bound index for key and whether it matched.
func (m mem) leafSearch(leaf simmem.Addr, key uint64) (int, bool) {
	m.p.Tick(m.t.a.Costs().NodeWork)
	count := int(m.load(leaf + offCount))
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if m.load(leaf+m.t.keyOff(mid)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < count && m.load(leaf+m.t.keyOff(lo)) == key {
		return lo, true
	}
	return lo, false
}

// descend performs an OLC root-to-leaf walk, validating each node version
// after reading the child pointer, and chasing B-link right-siblings
// whenever a node's high key shows it no longer covers the search key (a
// reader can arrive at a node just after it split away the upper half of
// its range). It returns the path (internal nodes, root first), their
// validated versions, the leaf and its version, or ok=false if a
// validation failed (caller restarts).
func (m mem) descend(key uint64, nodes *[]simmem.Addr, vers *[]uint64) (leaf simmem.Addr, leafVer uint64, ok bool) {
	// Entry edge: the root may split between reading the root pointer and
	// sampling its version, leaving a consistent-looking node that only
	// covers half the key space. Re-reading the pointer after the version
	// sample closes the window: any later root split bumps the node's
	// version and is caught by the normal per-node validation.
	var node simmem.Addr
	var depth, v uint64
	for {
		w := m.load(m.t.meta + metaRootDepth)
		node, depth = unpackRootDepth(w)
		v = m.stableVersion(node)
		if m.load(m.t.meta+metaRootDepth) == w {
			break
		}
		m.p.Tick(m.t.a.Costs().SpinIter)
	}
	for d := depth; ; d-- {
		// Chase right-siblings while the node's range ends at or below key.
		for {
			high := m.load(node + offHigh)
			if key < high {
				break
			}
			next := simmem.Addr(m.load(node + offNext))
			if !m.checkVersion(node, v) {
				return 0, 0, false
			}
			node = next
			v = m.stableVersion(node)
		}
		if d <= 1 {
			return node, v, true
		}
		idx := m.findChildIdx(node, key)
		child := simmem.Addr(m.load(node + m.t.childOff(idx)))
		if !m.checkVersion(node, v) { // before/after validation
			return 0, 0, false
		}
		*nodes = append(*nodes, node)
		*vers = append(*vers, v)
		node = child
		v = m.stableVersion(node)
	}
}

// Get implements tree.KV.
func (t *Tree) Get(th *htm.Thread, key uint64) (uint64, bool) {
	if t.useHTM {
		var val uint64
		var ok bool
		th.Execute(t.policy, func(tx *htm.Tx) {
			val, ok = t.getWith(mem{t: t, p: th.P, tx: tx})(key)
		})
		return val, ok
	}
	return t.getWith(mem{t: t, p: th.P})(key)
}

func (t *Tree) getWith(m mem) func(uint64) (uint64, bool) {
	return func(key uint64) (uint64, bool) {
		var nodes []simmem.Addr
		var vers []uint64
		for {
			nodes, vers = nodes[:0], vers[:0]
			leaf, v, ok := m.descend(key, &nodes, &vers)
			if !ok {
				continue
			}
			idx, found := m.leafSearch(leaf, key)
			var val uint64
			if found {
				val = m.load(leaf + t.valOff(idx))
			}
			if !m.checkVersion(leaf, v) {
				continue
			}
			return val, found
		}
	}
}

// Put implements tree.KV.
func (t *Tree) Put(th *htm.Thread, key, val uint64) {
	if t.useHTM {
		th.Execute(t.policy, func(tx *htm.Tx) {
			t.putWith(mem{t: t, p: th.P, tx: tx}, key, val)
		})
		return
	}
	t.putWith(mem{t: t, p: th.P}, key, val)
}

func (t *Tree) putWith(m mem, key, val uint64) {
	var nodes []simmem.Addr
	var vers []uint64
	for {
		nodes, vers = nodes[:0], vers[:0]
		leaf, v, ok := m.descend(key, &nodes, &vers)
		if !ok {
			continue
		}
		if !m.tryLock(leaf, v) {
			continue
		}
		idx, found := m.leafSearch(leaf, key)
		if found {
			m.store(leaf+t.valOff(idx), val)
			m.unlockBump(leaf, v)
			return
		}
		count := int(m.load(leaf + offCount))
		if count < t.fanout {
			for i := count; i > idx; i-- {
				m.store(leaf+t.keyOff(i), m.load(leaf+t.keyOff(i-1)))
				m.store(leaf+t.valOff(i), m.load(leaf+t.valOff(i-1)))
			}
			m.store(leaf+t.keyOff(idx), key)
			m.store(leaf+t.valOff(idx), val)
			m.store(leaf+offCount, uint64(count+1))
			m.unlockBump(leaf, v)
			return
		}
		if t.splitInsert(m, nodes, vers, leaf, v, key, val) {
			return
		}
		// Split raced with another structure modification: retry fully.
	}
}

// acquireSMO takes the structure-modification lock. In tx mode the word is
// only read (elided); it can never be observed held, because no one writes
// it transactionally and an HTM-Masstree tree has no direct writers.
func (m mem) acquireSMO() bool {
	addr := m.t.meta + metaSMO
	if m.tx != nil {
		return m.tx.Load(addr) == 0
	}
	for !m.t.a.CASWordDirect(m.p, addr, 0, 1) {
		for m.t.a.LoadWord(m.p, addr) != 0 {
			m.p.Tick(m.t.a.Costs().SpinIter)
		}
	}
	return true
}

func (m mem) releaseSMO() {
	if m.tx != nil {
		return
	}
	m.t.a.StoreWordDirect(m.p, m.t.meta+metaSMO, 0)
}

// splitInsert handles an insertion into a full leaf: under the SMO lock it
// locks the full suffix of the path, splits bottom-up, installs the new
// key, and releases everything. Returns false if any version validation
// failed (the caller retries the whole operation).
func (t *Tree) splitInsert(m mem, nodes []simmem.Addr, vers []uint64, leaf simmem.Addr, leafVer uint64, key, val uint64) bool {
	// The leaf is already locked by the caller.
	if !m.acquireSMO() {
		m.unlockPlain(leaf, leafVer)
		return false
	}
	m.fault(htm.FaultMidSplit)
	type held struct {
		node simmem.Addr
		ver  uint64
	}
	locked := []held{{leaf, leafVer}}
	release := func(bumped int) {
		// Nodes below `bumped` in the slice were modified.
		for i, h := range locked {
			if i < bumped {
				m.unlockBump(h.node, h.ver)
			} else {
				m.unlockPlain(h.node, h.ver)
			}
		}
		m.releaseSMO()
	}
	// Lock ancestors while they are full (they will split too), plus the
	// first non-full one (it will absorb the final separator).
	top := -1 // index into nodes of the non-full ancestor, -1 if root splits
	for i := len(nodes) - 1; i >= 0; i-- {
		if !m.tryLock(nodes[i], vers[i]) {
			release(0)
			return false
		}
		locked = append(locked, held{nodes[i], vers[i]})
		if int(m.load(nodes[i]+offCount)) < t.fanout {
			top = i
			break
		}
	}

	// Split the leaf.
	right := m.newNode(true)
	half := t.fanout / 2
	moved := t.fanout - half
	for i := 0; i < moved; i++ {
		m.store(right+t.keyOff(i), m.load(leaf+t.keyOff(half+i)))
		m.store(right+t.valOff(i), m.load(leaf+t.valOff(half+i)))
	}
	m.store(right+offCount, uint64(moved))
	m.store(right+offNext, m.load(leaf+offNext))
	m.store(leaf+offNext, uint64(right))
	m.store(leaf+offCount, uint64(half))
	sep := m.load(right + t.keyOff(0))
	m.store(right+offHigh, m.load(leaf+offHigh))
	m.store(leaf+offHigh, sep)

	// Install the pending record.
	target := leaf
	if key >= sep {
		target = right
	}
	idx, _ := m.leafSearch(target, key)
	count := int(m.load(target + offCount))
	for i := count; i > idx; i-- {
		m.store(target+t.keyOff(i), m.load(target+t.keyOff(i-1)))
		m.store(target+t.valOff(i), m.load(target+t.valOff(i-1)))
	}
	m.store(target+t.keyOff(idx), key)
	m.store(target+t.valOff(idx), val)
	m.store(target+offCount, uint64(count+1))

	// Propagate the separator upward through the locked full ancestors.
	child := right
	lo := 0
	if top >= 0 {
		lo = top
	}
	for i := len(nodes) - 1; i >= lo; i-- {
		node := nodes[i]
		count := int(m.load(node + offCount))
		if count < t.fanout {
			t.insertInternal(m, node, count, sep, child)
			release(len(locked))
			return true
		}
		mid := count / 2
		upKey := m.load(node + t.keyOff(mid))
		nright := m.newNode(false)
		rc := count - mid - 1
		for j := 0; j < rc; j++ {
			m.store(nright+t.keyOff(j), m.load(node+t.keyOff(mid+1+j)))
		}
		for j := 0; j <= rc; j++ {
			m.store(nright+t.childOff(j), m.load(node+t.childOff(mid+1+j)))
		}
		m.store(nright+offCount, uint64(rc))
		m.store(nright+offLevel, m.load(node+offLevel))
		m.store(nright+offNext, m.load(node+offNext))
		m.store(node+offNext, uint64(nright))
		m.store(nright+offHigh, m.load(node+offHigh))
		m.store(node+offHigh, upKey)
		m.store(node+offCount, uint64(mid))
		if sep < upKey {
			t.insertInternal(m, node, mid, sep, child)
		} else {
			t.insertInternal(m, nright, rc, sep, child)
		}
		sep, child = upKey, nright
	}
	if top < 0 {
		// Root split: swap in a new root atomically.
		oldRootDepth := m.load(t.meta + metaRootDepth)
		oldRoot, depth := unpackRootDepth(oldRootDepth)
		newRoot := m.newNode(false)
		m.store(newRoot+offCount, 1)
		m.store(newRoot+offLevel, depth)
		m.store(newRoot+offHigh, maxHigh)
		m.store(newRoot+t.keyOff(0), sep)
		m.store(newRoot+t.childOff(0), uint64(oldRoot))
		m.store(newRoot+t.childOff(1), uint64(child))
		m.store(t.meta+metaRootDepth, packRootDepth(newRoot, depth+1))
	}
	release(len(locked))
	return true
}

func (t *Tree) insertInternal(m mem, node simmem.Addr, count int, sep uint64, child simmem.Addr) {
	pos := 0
	for pos < count && m.load(node+t.keyOff(pos)) < sep {
		pos++
	}
	for i := count; i > pos; i-- {
		m.store(node+t.keyOff(i), m.load(node+t.keyOff(i-1)))
	}
	for i := count + 1; i > pos+1; i-- {
		m.store(node+t.childOff(i), m.load(node+t.childOff(i-1)))
	}
	m.store(node+t.keyOff(pos), sep)
	m.store(node+t.childOff(pos+1), uint64(child))
	m.store(node+offCount, uint64(count+1))
}

// Delete implements tree.KV.
func (t *Tree) Delete(th *htm.Thread, key uint64) bool {
	if t.useHTM {
		var removed bool
		th.Execute(t.policy, func(tx *htm.Tx) {
			removed = t.deleteWith(mem{t: t, p: th.P, tx: tx}, key)
		})
		return removed
	}
	return t.deleteWith(mem{t: t, p: th.P}, key)
}

func (t *Tree) deleteWith(m mem, key uint64) bool {
	var nodes []simmem.Addr
	var vers []uint64
	for {
		nodes, vers = nodes[:0], vers[:0]
		leaf, v, ok := m.descend(key, &nodes, &vers)
		if !ok {
			continue
		}
		idx, found := m.leafSearch(leaf, key)
		if !found {
			if !m.checkVersion(leaf, v) {
				continue
			}
			return false
		}
		if !m.tryLock(leaf, v) {
			continue
		}
		// Re-check under the lock (the optimistic search may be stale).
		idx, found = m.leafSearch(leaf, key)
		if !found {
			m.unlockPlain(leaf, v)
			return false
		}
		count := int(m.load(leaf + offCount))
		for i := idx; i < count-1; i++ {
			m.store(leaf+t.keyOff(i), m.load(leaf+t.keyOff(i+1)))
			m.store(leaf+t.valOff(i), m.load(leaf+t.valOff(i+1)))
		}
		m.store(leaf+offCount, uint64(count-1))
		m.unlockBump(leaf, v)
		return true
	}
}

// Scan implements tree.KV with per-leaf optimistic snapshots.
func (t *Tree) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	if max <= 0 {
		return 0
	}
	if t.useHTM {
		// Collect inside the transaction, emit outside, so an aborted
		// attempt never re-delivers records to fn.
		res := make([][2]uint64, 0, max)
		th.Execute(t.policy, func(tx *htm.Tx) {
			res = res[:0]
			t.scanWith(mem{t: t, p: th.P, tx: tx}, from, max, func(k, v uint64) bool {
				res = append(res, [2]uint64{k, v})
				return true
			})
		})
		n := 0
		for _, r := range res {
			if !fn(r[0], r[1]) {
				break
			}
			n++
		}
		return n
	}
	return t.scanWith(mem{t: t, p: th.P}, from, max, fn)
}

func (t *Tree) scanWith(m mem, from uint64, max int, fn func(key, val uint64) bool) int {
	type pair struct{ k, v uint64 }
	buf := make([]pair, 0, t.fanout)
	visited := 0
	cur := from
	var nodes []simmem.Addr
	var vers []uint64
	for {
		nodes, vers = nodes[:0], vers[:0]
		leaf, v, ok := m.descend(cur, &nodes, &vers)
		if !ok {
			continue
		}
	leafChain:
		for {
			buf = buf[:0]
			count := int(m.load(leaf + offCount))
			for i := 0; i < count; i++ {
				buf = append(buf, pair{m.load(leaf + t.keyOff(i)), m.load(leaf + t.valOff(i))})
			}
			next := simmem.Addr(m.load(leaf + offNext))
			var nv uint64
			if next != simmem.NilAddr {
				nv = m.stableVersion(next)
			}
			if !m.checkVersion(leaf, v) {
				break leafChain // snapshot invalid: re-descend at cur
			}
			sort.Slice(buf, func(a, b int) bool { return buf[a].k < buf[b].k })
			for _, r := range buf {
				if r.k < cur {
					continue
				}
				if !fn(r.k, r.v) {
					return visited
				}
				visited++
				cur = r.k + 1
				if visited == max {
					return visited
				}
			}
			if next == simmem.NilAddr {
				return visited
			}
			leaf, v = next, nv
		}
	}
}
