package masstree

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

func TestValidateAfterChurn(t *testing.T) {
	for _, useHTM := range []bool{false, true} {
		h, boot := treetest.NewDevice(1 << 23)
		tr := New(h, boot, 16, useHTM)
		r := vclock.NewRand(13)
		for i := 0; i < 8000; i++ {
			k := uint64(r.Intn(900)) + 1
			switch r.Intn(4) {
			case 0, 1:
				tr.Put(boot, k, r.Uint64()>>1)
			case 2:
				tr.Delete(boot, k)
			default:
				tr.Get(boot, k)
			}
		}
		if err := tr.Validate(boot.P); err != nil {
			t.Fatalf("useHTM=%v: %v", useHTM, err)
		}
	}
}

func TestValidateAfterSplitStormSim(t *testing.T) {
	h, _ := treetest.NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, 4, false) // tiny fanout: many splits, deep tree
	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+3)
		base := uint64(p.ID())
		for i := uint64(0); i < 600; i++ {
			tr.Put(th, i*8+base+1, i)
		}
	})
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
	// Every key present after the storm.
	for k := uint64(1); k <= 600*8; k++ {
		if _, ok := tr.Get(boot, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestValidateDetectsBrokenLink(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 8, false)
	for i := uint64(1); i <= 400; i++ {
		tr.Put(boot, i, i)
	}
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
	// Break a high key on the leftmost leaf.
	m := mem{t: tr, p: boot.P}
	node, depth := m.root()
	for d := depth; d > 1; d-- {
		node = simmem.Addr(m.load(node + tr.childOff(0)))
	}
	tr.a.StoreWordDirect(boot.P, node+offHigh, 0)
	if err := tr.Validate(boot.P); err == nil {
		t.Fatal("validator accepted a zero high key")
	}
}
