package masstree

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

// TestDebugLostKeys reproduces the deterministic sim-mode loss and reports
// whether missing keys are orphaned (present in the leaf chain but not
// reachable from the root) or never inserted.
func TestDebugLostKeys(t *testing.T) {
	h, _ := treetest.NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, 16, false)
	sim := vclock.NewSim(8, 0)
	const per = 250
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+11)
		base := uint64(p.ID()*per) + 1
		for i := uint64(0); i < per; i++ {
			tr.Put(th, base+i, (base+i)*5)
		}
	})
	// Collect every key in the leaf chain: find the leftmost leaf by
	// descending always to child 0.
	m := mem{t: tr, p: boot.P}
	node, depth := m.root()
	for d := depth; d > 1; d-- {
		node = simmem.Addr(m.load(node + tr.childOff(0)))
	}
	inChain := map[uint64]bool{}
	leaves := 0
	for node != simmem.NilAddr {
		leaves++
		count := int(m.load(node + offCount))
		for i := 0; i < count; i++ {
			inChain[m.load(node+tr.keyOff(i))] = true
		}
		node = simmem.Addr(m.load(node + offNext))
	}
	lostRouting, lostFully := 0, 0
	for k := uint64(1); k <= 8*per; k++ {
		if _, ok := tr.Get(boot, k); ok {
			continue
		}
		if inChain[k] {
			lostRouting++
			t.Logf("key %d: in leaf chain but not routable from root", k)
		} else {
			lostFully++
			t.Logf("key %d: absent everywhere", k)
		}
	}
	t.Logf("leaves=%d chainKeys=%d", leaves, len(inChain))
	if lostRouting+lostFully > 0 {
		t.Fatalf("lost %d keys (%d routing, %d fully)", lostRouting+lostFully, lostRouting, lostFully)
	}
}
