package masstree

import (
	"fmt"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// Validate checks the B-link structural invariants with direct reads. It
// requires quiescence and is intended for tests:
//
//   - per-level right-links form a chain with strictly increasing,
//     boundary-consistent high keys ending at maxHigh;
//   - keys in every node are strictly ascending and below the node's high
//     key; separators bound their children;
//   - no node is locked and the SMO lock is free.
func (t *Tree) Validate(p vclock.Proc) error {
	if t.a.LoadWord(p, t.meta+metaSMO) != 0 {
		return fmt.Errorf("SMO lock held at quiescence")
	}
	root, depth := unpackRootDepth(t.a.LoadWord(p, t.meta+metaRootDepth))
	// Walk each level via leftmost descent + right-links.
	node := root
	for d := depth; d >= 1; d-- {
		if err := t.validateLevel(p, node, d); err != nil {
			return err
		}
		if d > 1 {
			node = simmem.Addr(t.a.LoadWord(p, node+t.childOff(0)))
		}
	}
	return nil
}

func (t *Tree) validateLevel(p vclock.Proc, leftmost simmem.Addr, level uint64) error {
	low := uint64(0)
	for node := leftmost; node != simmem.NilAddr; {
		ver := t.a.LoadWord(p, node+offVersion)
		if ver&1 != 0 {
			return fmt.Errorf("level %d node %d locked at quiescence", level, node)
		}
		high := t.a.LoadWord(p, node+offHigh)
		if high <= low && high != maxHigh {
			return fmt.Errorf("level %d node %d: high %d <= low %d", level, node, high, low)
		}
		count := int(t.a.LoadWord(p, node+offCount))
		if count < 0 || count > t.fanout {
			return fmt.Errorf("level %d node %d: count %d", level, node, count)
		}
		prev := uint64(0)
		for i := 0; i < count; i++ {
			k := t.a.LoadWord(p, node+t.keyOff(i))
			if i > 0 && k <= prev {
				return fmt.Errorf("level %d node %d: key %d not ascending", level, node, k)
			}
			if k >= high || k < low {
				return fmt.Errorf("level %d node %d: key %d outside [%d, %d)", level, node, k, low, high)
			}
			prev = k
		}
		if level > 1 {
			for i := 0; i <= count; i++ {
				if t.a.LoadWord(p, node+t.childOff(i)) == 0 {
					return fmt.Errorf("level %d node %d: nil child %d", level, node, i)
				}
			}
		}
		next := simmem.Addr(t.a.LoadWord(p, node+offNext))
		if next == simmem.NilAddr && high != maxHigh {
			return fmt.Errorf("level %d node %d: rightmost with high %d", level, node, high)
		}
		low = high
		node = next
	}
	return nil
}
