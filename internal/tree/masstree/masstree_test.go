package masstree

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

func TestKitMasstree(t *testing.T) {
	treetest.RunAll(t, func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return New(h, boot, 16, false)
	})
}

func TestKitHTMMasstree(t *testing.T) {
	treetest.RunAll(t, func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return New(h, boot, 16, true)
	})
}

func TestKitSmallFanout(t *testing.T) {
	treetest.RunAll(t, func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return New(h, boot, 5, false)
	})
}

func TestNames(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 20)
	if got := New(h, boot, 16, false).Name(); got != "masstree" {
		t.Fatalf("name = %q", got)
	}
	if got := New(h, boot, 16, true).Name(); got != "htm-masstree" {
		t.Fatalf("name = %q", got)
	}
}

func TestRootDepthPacking(t *testing.T) {
	for _, c := range []struct {
		root  uint64
		depth uint64
	}{{8, 1}, {1 << 40, 7}, {1<<56 - 8, 200}} {
		r, d := unpackRootDepth(packRootDepth(simmem.Addr(c.root), c.depth))
		if uint64(r) != c.root || d != c.depth {
			t.Fatalf("pack/unpack(%d,%d) = (%d,%d)", c.root, c.depth, r, d)
		}
	}
}

func TestMasstreeUsesNoTransactions(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 16, false)
	for i := uint64(1); i <= 500; i++ {
		tr.Put(boot, i, i)
	}
	tr.Get(boot, 250)
	tr.Delete(boot, 250)
	if boot.Stats.Attempts != 0 {
		t.Fatalf("lock-based masstree issued %d transactions", boot.Stats.Attempts)
	}
}

func TestHTMMasstreeOneTxPerOp(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 16, true)
	for i := uint64(1); i <= 100; i++ {
		tr.Put(boot, i, i)
	}
	before := boot.Stats.Attempts
	tr.Get(boot, 50)
	if got := boot.Stats.Attempts - before; got != 1 {
		t.Fatalf("htm-masstree get used %d attempts, want 1", got)
	}
}

func TestVersionBumpsOnWrite(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 22)
	tr := New(h, boot, 16, false)
	tr.Put(boot, 1, 1)
	m := mem{t: tr, p: boot.P}
	root, depth := m.root()
	if depth != 1 {
		t.Fatalf("depth = %d", depth)
	}
	v0 := m.stableVersion(root)
	tr.Put(boot, 2, 2)
	v1 := m.stableVersion(root)
	if v1 <= v0 {
		t.Fatalf("version did not advance on write: %d -> %d", v0, v1)
	}
	tr.Get(boot, 1)
	if v2 := m.stableVersion(root); v2 != v1 {
		t.Fatalf("read bumped version: %d -> %d", v1, v2)
	}
}

func TestConcurrentSplitStormWall(t *testing.T) {
	// Many goroutines inserting ascending interleaved keys forces frequent
	// splits through the SMO path.
	h, boot := treetest.NewDevice(1 << 24)
	tr := New(h, boot, 4, false)
	done := make(chan struct{})
	const workers, per = 6, 500
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			th := h.NewThread(vclock.NewWallProc(w+1, 48), uint64(w)+9)
			for i := uint64(0); i < per; i++ {
				tr.Put(th, i*workers+uint64(w)+1, i)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for k := uint64(1); k <= workers*per; k++ {
		if _, ok := tr.Get(boot, k); !ok {
			t.Fatalf("key %d lost in split storm", k)
		}
	}
}
