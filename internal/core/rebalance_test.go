package core

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// countTombstones walks the stable regions directly.
func countTombstones(t *testing.T, tr *Tree, boot *htm.Thread) int {
	t.Helper()
	p := boot.P
	// Walk the leaf chain from the leftmost leaf.
	root := tr.a.LoadWord(p, tr.meta+metaRoot)
	depth := tr.a.LoadWord(p, tr.meta+metaDepth)
	node := root
	for d := depth; d > 1; d-- {
		node = tr.a.LoadWord(p, tr.intChild(simmem.Addr(node), 0))
	}
	tombs := 0
	for l := simmem.Addr(node); l != 0; l = simmem.Addr(tr.a.LoadWord(p, l+offNext)) {
		count := int(tr.a.LoadWord(p, l+offStableCount))
		for i := 0; i < count; i++ {
			if tr.a.LoadWord(p, tr.stableV(l, i)) == tree.Tombstone {
				tombs++
			}
		}
	}
	return tombs
}

// TestDeferredRebalanceCompactsTombstones: deleting past the threshold
// must trigger compaction that physically removes tombstones.
func TestDeferredRebalanceCompactsTombstones(t *testing.T) {
	cfg := DefaultConfig
	cfg.RebalanceThreshold = 4
	tr, boot := newEuno(t, cfg)
	// Build a few leaves whose records sit in the stable region.
	for i := uint64(1); i <= 64; i++ {
		tr.Put(boot, i, i)
	}
	before := tr.Compactions()
	// Delete most records from the same neighborhood: crossing the
	// threshold repeatedly must fire compactions.
	for i := uint64(1); i <= 64; i += 2 {
		tr.Delete(boot, i)
	}
	if tr.Compactions() == before {
		t.Fatal("no rebalance compaction fired")
	}
	if got := countTombstones(t, tr, boot); got >= 16 {
		t.Fatalf("%d tombstones remain; rebalance not effective", got)
	}
	// Semantics intact.
	for i := uint64(1); i <= 64; i++ {
		_, ok := tr.Get(boot, i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceUnderConcurrentTrafficSim: threshold compactions racing
// with puts and gets must preserve correctness.
func TestRebalanceUnderConcurrentTrafficSim(t *testing.T) {
	cfg := DefaultConfig
	cfg.RebalanceThreshold = 3
	tr, boot := newEuno(t, cfg)
	for i := uint64(1); i <= 600; i++ {
		tr.Put(boot, i, i)
	}
	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := tr.h.NewThread(p, uint64(p.ID())+41)
		r := vclock.NewRand(uint64(p.ID()) + 13)
		for i := 0; i < 500; i++ {
			k := uint64(r.Intn(600)) + 1
			switch r.Intn(3) {
			case 0:
				tr.Put(th, k, k<<4)
			case 1:
				tr.Delete(th, k)
			default:
				if v, ok := tr.Get(th, k); ok && v>>4 != k && v != k {
					t.Errorf("get(%d) = %d", k, v)
				}
			}
		}
	})
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}
