package core

import (
	"fmt"

	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// Validate walks the entire tree with direct (non-transactional) reads and
// checks every structural invariant. It requires quiescence — no
// concurrent operations — and is intended for tests and debugging.
//
// Checked invariants:
//   - internal nodes: separator keys strictly ascending and within the
//     node's inherited (low, high] bounds; child count = key count + 1;
//   - leaves: stable region strictly sorted; every segment strictly
//     sorted; all keys within the leaf's separator bounds; no key present
//     twice among live locations (a stable entry shadowed by a segment
//     copy is allowed, a duplicate within or across segments is not);
//   - the leaf chain visits leaves in ascending key order and agrees with
//     the set of leaves reachable from the root;
//   - with mark slots enabled, every live key's slot has a nonzero count
//     (marks may over-count, never under-count).
func (t *Tree) Validate(p vclock.Proc) error {
	root := simmem.Addr(t.a.LoadWord(p, t.meta+metaRoot))
	depth := t.a.LoadWord(p, t.meta+metaDepth)
	chain := map[simmem.Addr]bool{}
	var prevLeafMax *uint64
	if err := t.validateNode(p, root, depth, 0, ^uint64(0), chain, &prevLeafMax); err != nil {
		return err
	}
	// The next-pointer chain must visit exactly the reachable leaves.
	leftmost := root
	for d := depth; d > 1; d-- {
		leftmost = simmem.Addr(t.a.LoadWord(p, t.intChild(leftmost, 0)))
	}
	seen := 0
	for l := leftmost; l != simmem.NilAddr; l = simmem.Addr(t.a.LoadWord(p, l+offNext)) {
		if !chain[l] {
			return fmt.Errorf("leaf %d on the chain but not reachable from the root", l)
		}
		seen++
	}
	if seen != len(chain) {
		return fmt.Errorf("chain visits %d leaves, tree has %d", seen, len(chain))
	}
	return nil
}

// validateNode recursively checks the subtree at node, whose keys must lie
// in (low, high]. (low is exclusive via "k >= low" convention below with
// low=0 at the root; keys are >= 1 in practice.)
func (t *Tree) validateNode(p vclock.Proc, node simmem.Addr, depth uint64, low, high uint64, chain map[simmem.Addr]bool, prevLeafMax **uint64) error {
	if depth == 1 {
		return t.validateLeaf(p, node, low, high, chain, prevLeafMax)
	}
	count := int(t.a.LoadWord(p, node+offCount))
	if count < 1 || count > t.cfg.StableCap {
		return fmt.Errorf("internal %d: count %d out of range", node, count)
	}
	prev := low
	for i := 0; i < count; i++ {
		k := t.a.LoadWord(p, t.intKey(node, i))
		if k < prev || (i > 0 && k == prev) {
			return fmt.Errorf("internal %d: separator %d at %d not ascending (prev %d)", node, k, i, prev)
		}
		if k > high {
			return fmt.Errorf("internal %d: separator %d exceeds bound %d", node, k, high)
		}
		prev = k
	}
	childLow := low
	for i := 0; i <= count; i++ {
		childHigh := high
		if i < count {
			childHigh = t.a.LoadWord(p, t.intKey(node, i)) - 1
		}
		child := simmem.Addr(t.a.LoadWord(p, t.intChild(node, i)))
		if child == simmem.NilAddr {
			return fmt.Errorf("internal %d: nil child %d", node, i)
		}
		if err := t.validateNode(p, child, depth-1, childLow, childHigh, chain, prevLeafMax); err != nil {
			return err
		}
		if i < count {
			childLow = t.a.LoadWord(p, t.intKey(node, i))
		}
	}
	return nil
}

func (t *Tree) validateLeaf(p vclock.Proc, leaf simmem.Addr, low, high uint64, chain map[simmem.Addr]bool, prevLeafMax **uint64) error {
	if chain[leaf] {
		return fmt.Errorf("leaf %d reachable twice", leaf)
	}
	chain[leaf] = true
	live := map[uint64]bool{} // live key locations (segments first)
	inStable := map[uint64]bool{}

	stCount := int(t.a.LoadWord(p, leaf+offStableCount))
	if stCount < 0 || stCount > t.cfg.StableCap {
		return fmt.Errorf("leaf %d: stable count %d out of range", leaf, stCount)
	}
	prev := uint64(0)
	for i := 0; i < stCount; i++ {
		k := t.a.LoadWord(p, t.stableK(leaf, i))
		if i > 0 && k <= prev {
			return fmt.Errorf("leaf %d: stable not sorted at %d (%d after %d)", leaf, i, k, prev)
		}
		if k < low || k > high {
			return fmt.Errorf("leaf %d: stable key %d outside (%d, %d]", leaf, k, low, high)
		}
		if inStable[k] {
			return fmt.Errorf("leaf %d: duplicate stable key %d", leaf, k)
		}
		inStable[k] = true
		prev = k
	}
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		count := int(t.a.LoadWord(p, seg))
		if count < 0 || count > t.cfg.SegCap {
			return fmt.Errorf("leaf %d: segment %d count %d out of range", leaf, j, count)
		}
		prev = 0
		for i := 0; i < count; i++ {
			k := t.a.LoadWord(p, seg+simmem.Addr(1+2*i))
			if i > 0 && k <= prev {
				return fmt.Errorf("leaf %d: segment %d not sorted at %d", leaf, j, i)
			}
			if k < low || k > high {
				return fmt.Errorf("leaf %d: segment key %d outside (%d, %d]", leaf, k, low, high)
			}
			if live[k] {
				return fmt.Errorf("leaf %d: key %d present in two segments", leaf, k)
			}
			live[k] = true
			prev = k
		}
	}
	// Stable entries not shadowed and not tombstoned are live too.
	for i := 0; i < stCount; i++ {
		k := t.a.LoadWord(p, t.stableK(leaf, i))
		v := t.a.LoadWord(p, t.stableV(leaf, i))
		if v == tree.Tombstone || live[k] {
			continue
		}
		live[k] = true
	}
	// Marks must never under-count live keys.
	if t.cfg.CCMMarkBits {
		ccm := t.ccmAddr(leaf)
		perSlot := map[uint]uint64{}
		for k := range live {
			perSlot[t.slotOf(k)]++
		}
		for slot, n := range perSlot {
			got := t.markCount(p, ccm, slot)
			if got < n && got < markSaturation {
				return fmt.Errorf("leaf %d: slot %d marks %d < %d live keys", leaf, slot, got, n)
			}
		}
	}
	// Cross-leaf ordering via the recursion's in-order visit.
	var maxKey uint64
	for k := range live {
		if k > maxKey {
			maxKey = k
		}
	}
	if *prevLeafMax != nil && len(live) > 0 {
		for k := range live {
			if k <= **prevLeafMax {
				return fmt.Errorf("leaf %d: key %d not greater than previous leaf max %d", leaf, k, **prevLeafMax)
			}
		}
	}
	if len(live) > 0 {
		m := maxKey
		*prevLeafMax = &m
	}
	return nil
}
