package core

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

func factoryWith(cfg Config) treetest.Factory {
	return func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return New(h, boot, cfg)
	}
}

// TestKitFullEuno runs the complete correctness kit on the default (all
// guidelines enabled) configuration.
func TestKitFullEuno(t *testing.T) {
	treetest.RunAll(t, factoryWith(DefaultConfig))
}

// TestKitAblations runs the kit on every Figure 13 configuration, since
// each flag combination takes different code paths.
func TestKitAblations(t *testing.T) {
	for _, ab := range AblationConfigs() {
		ab := ab
		t.Run(ab.Name, func(t *testing.T) {
			treetest.RunAll(t, factoryWith(ab.Cfg))
		})
	}
}

// TestKitOddGeometries exercises non-default segment shapes.
func TestKitOddGeometries(t *testing.T) {
	cfgs := map[string]Config{
		"small-leaf":  {StableCap: 4, Segments: 2, SegCap: 1, PartLeaf: true, CCMLockBits: true, CCMMarkBits: true, Adaptive: true},
		"wide-leaf":   {StableCap: 32, Segments: 4, SegCap: 7, PartLeaf: true, CCMLockBits: true, CCMMarkBits: true},
		"no-adaptive": {StableCap: 16, Segments: 4, SegCap: 3, PartLeaf: true, CCMLockBits: true, CCMMarkBits: true},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			treetest.RunAll(t, factoryWith(cfg))
		})
	}
}

func newEuno(t *testing.T, cfg Config) (*Tree, *htm.Thread) {
	t.Helper()
	h, boot := treetest.NewDevice(1 << 24)
	return New(h, boot, cfg), boot
}

func TestTwoRegionGetUsesTwoTransactions(t *testing.T) {
	cfg := DefaultConfig
	cfg.Adaptive = false // CCM always on, but gets should still be 2 regions
	tr, boot := newEuno(t, cfg)
	for i := uint64(1); i <= 100; i++ {
		tr.Put(boot, i, i)
	}
	before := boot.Stats.Attempts
	tr.Get(boot, 50)
	if got := boot.Stats.Attempts - before; got != 2 {
		t.Fatalf("get used %d attempts, want 2 (upper + lower)", got)
	}
}

func TestMarkSlotsRejectAbsentKeys(t *testing.T) {
	cfg := DefaultConfig
	cfg.Adaptive = false
	tr, boot := newEuno(t, cfg)
	for i := uint64(1); i <= 64; i++ {
		tr.Put(boot, i*1000, i)
	}
	before := tr.MarkRejects()
	misses := 0
	for i := uint64(1); i <= 64; i++ {
		if _, ok := tr.Get(boot, i*1000+1); ok {
			t.Fatalf("found absent key %d", i*1000+1)
		}
		misses++
	}
	rejects := tr.MarkRejects() - before
	if rejects == 0 {
		t.Fatal("mark slots never rejected an absent-key get")
	}
	t.Logf("mark fast path rejected %d of %d absent gets", rejects, misses)
}

func TestMarkNeverFalseNegative(t *testing.T) {
	// Every present key must be found even after deletes of colliding keys
	// and splits (marks may over-count, never under-count).
	cfg := DefaultConfig
	cfg.Adaptive = false
	tr, boot := newEuno(t, cfg)
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		tr.Put(boot, i, i*7)
	}
	for i := uint64(1); i <= n; i += 3 {
		tr.Delete(boot, i)
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := tr.Get(boot, i)
		wantOK := i%3 != 1
		if ok != wantOK || (ok && v != i*7) {
			t.Fatalf("get(%d) = %d,%v want present=%v", i, v, ok, wantOK)
		}
	}
}

func TestDeletedKeysStayDeletedAcrossCompaction(t *testing.T) {
	tr, boot := newEuno(t, DefaultConfig)
	// Fill one leaf's key neighborhood so compactions and a split happen.
	for i := uint64(1); i <= 60; i++ {
		tr.Put(boot, i, i)
	}
	for i := uint64(1); i <= 60; i += 2 {
		if !tr.Delete(boot, i) {
			t.Fatalf("delete(%d) failed", i)
		}
	}
	// Force more maintenance traffic.
	for i := uint64(100); i <= 160; i++ {
		tr.Put(boot, i, i)
	}
	for i := uint64(1); i <= 60; i++ {
		_, ok := tr.Get(boot, i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestSplitsBumpSeqnoAndForceRootRetries(t *testing.T) {
	tr, boot := newEuno(t, DefaultConfig)
	for i := uint64(1); i <= 1000; i++ {
		tr.Put(boot, i, i)
	}
	if tr.Splits() == 0 {
		t.Fatal("no splits after 1000 sequential inserts")
	}
	if tr.Depth(boot) < 2 {
		t.Fatalf("depth = %d", tr.Depth(boot))
	}
}

func TestShadowUpdateWinsOverStable(t *testing.T) {
	// Drive a key into the stable region via compaction, then update it;
	// the segment shadow must win on reads and survive the next compaction.
	tr, boot := newEuno(t, DefaultConfig)
	for i := uint64(1); i <= 20; i++ { // overflow segments -> compaction
		tr.Put(boot, i, 100+i)
	}
	if tr.Compactions() == 0 {
		t.Fatal("expected at least one compaction")
	}
	tr.Put(boot, 5, 999) // shadow update of a stable-resident key
	if v, ok := tr.Get(boot, 5); !ok || v != 999 {
		t.Fatalf("get(5) = %d,%v want 999", v, ok)
	}
	for i := uint64(30); i <= 60; i++ { // force further compactions/splits
		tr.Put(boot, i, i)
	}
	if v, ok := tr.Get(boot, 5); !ok || v != 999 {
		t.Fatalf("get(5) after maintenance = %d,%v want 999", v, ok)
	}
}

func TestAdaptiveDetectorHeatsAndCools(t *testing.T) {
	cfg := DefaultConfig
	cfg.HotThreshold = 4
	tr, boot := newEuno(t, cfg)
	tr.Put(boot, 1, 1)
	leaf, _ := tr.upper(boot, 1)
	ccm := tr.ccmAddr(leaf)
	if tr.leafHot(boot.P, ccm) {
		t.Fatal("fresh leaf reported hot")
	}
	tr.a.AddWordDirect(boot.P, ccm+ccmConflict, 10)
	if !tr.leafHot(boot.P, ccm) {
		t.Fatal("leaf with conflict score 10 not hot")
	}
	// Conflict-free operations decay the score back below threshold.
	for i := 0; i < 20000 && tr.leafHot(boot.P, ccm); i++ {
		tr.Get(boot, 1)
	}
	if tr.leafHot(boot.P, ccm) {
		t.Fatal("leaf never cooled down")
	}
}

func TestTombstoneValueRejected(t *testing.T) {
	tr, boot := newEuno(t, DefaultConfig)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tombstone value")
		}
	}()
	tr.Put(boot, 1, tree.Tombstone)
}

func TestConfigValidation(t *testing.T) {
	h, boot := treetest.NewDevice(1 << 18)
	bad := []Config{
		{StableCap: 2},
		{StableCap: 64},
		{StableCap: 16, PartLeaf: true, Segments: 1, SegCap: 3},
		{StableCap: 16, PartLeaf: true, Segments: 4, SegCap: 9},
		{StableCap: 16, PartLeaf: true, Segments: 8, SegCap: 7}, // cannot split
		{StableCap: 4, PartLeaf: true, Segments: 2, SegCap: 2},  // cannot split
	}
	for _, cfg := range bad {
		func() {
			defer func() { recover() }()
			New(h, boot, cfg)
			t.Fatalf("config %+v accepted", cfg)
		}()
	}
}

func TestCCMBitOps(t *testing.T) {
	tr, boot := newEuno(t, DefaultConfig)
	tr.Put(boot, 1, 1)
	leaf, _ := tr.upper(boot, 1)
	ccm := tr.ccmAddr(leaf)
	p := boot.P

	// Lock bits: lock two slots independently, unlock, relock.
	tr.lockSlot(p, ccm, 3)
	tr.lockSlot(p, ccm, 7)
	bits := tr.a.LoadWord(p, ccm+ccmLockBits)
	if bits&(1<<3) == 0 || bits&(1<<7) == 0 {
		t.Fatalf("lock bits = %b", bits)
	}
	tr.unlockSlot(p, ccm, 3)
	if tr.a.LoadWord(p, ccm+ccmLockBits)&(1<<3) != 0 {
		t.Fatal("slot 3 still locked")
	}
	tr.unlockSlot(p, ccm, 7)

	// Counting marks: saturate and verify stickiness.
	slot := uint(5)
	base := tr.markCount(p, ccm, slot)
	for i := 0; i < 30; i++ {
		tr.markAdd(p, ccm, slot, +1)
	}
	if got := tr.markCount(p, ccm, slot); got != markSaturation {
		t.Fatalf("saturated mark = %d, want %d", got, markSaturation)
	}
	tr.markAdd(p, ccm, slot, -1)
	if got := tr.markCount(p, ccm, slot); got != markSaturation {
		t.Fatal("saturated mark decremented")
	}
	_ = base
}

func TestMarkAddClampAtZero(t *testing.T) {
	tr, boot := newEuno(t, DefaultConfig)
	tr.Put(boot, 1, 1)
	leaf, _ := tr.upper(boot, 1)
	ccm := tr.ccmAddr(leaf)
	slot := uint(9)
	if got := tr.markAdd(boot.P, ccm, slot, -1); got != 0 {
		t.Fatalf("decrement at zero = %d", got)
	}
}

func TestSlotHashInRangeAndDeterministic(t *testing.T) {
	tr, _ := newEuno(t, DefaultConfig)
	for k := uint64(0); k < 10000; k++ {
		s := tr.slotOf(k)
		if s >= tr.nslots {
			t.Fatalf("slot %d out of range %d", s, tr.nslots)
		}
		if s != tr.slotOf(k) {
			t.Fatal("slot hash not deterministic")
		}
	}
}

func TestReservedBytesTransient(t *testing.T) {
	// Maintenance and scans stage through TagReserved allocations that
	// must be freed afterwards: steady-state reserved bytes stay zero.
	tr, boot := newEuno(t, DefaultConfig)
	for i := uint64(1); i <= 3000; i++ {
		tr.Put(boot, i, i)
	}
	tr.Scan(boot, 0, 500, func(k, v uint64) bool { return true })
	if got := tr.a.BytesByTag(simmem.TagReserved); got != 0 {
		t.Fatalf("reserved bytes leaked: %d", got)
	}
	if tr.a.PeakBytes() == 0 {
		t.Fatal("peak accounting broken")
	}
}

func TestScanAcrossManySplitsUnderChurnSim(t *testing.T) {
	// Scans interleaved with inserts in deterministic virtual time: each
	// scan must be sorted and duplicate-free even across leaf hops.
	h, _ := treetest.NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	for i := uint64(2); i <= 600; i += 2 {
		tr.Put(boot, i, i)
	}
	sim := vclock.NewSim(4, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+5)
		if p.ID() == 0 {
			for round := 0; round < 30; round++ {
				last := uint64(0)
				tr.Scan(th, 0, 200, func(k, v uint64) bool {
					if k <= last && last != 0 {
						t.Errorf("scan not strictly ascending: %d after %d", k, last)
					}
					last = k
					return true
				})
			}
		} else {
			r := vclock.NewRand(uint64(p.ID()))
			for i := 0; i < 600; i++ {
				tr.Put(th, uint64(r.Intn(600))*2+1, 7)
			}
		}
	})
}
