package core

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// newTinyCapacityDevice builds an HTM whose transactional capacity is too
// small for maintenance-sized transactions, forcing tree operations down
// the capacity-abort → fallback path.
func newTinyCapacityDevice(readLines, writeLines int) (*htm.HTM, *htm.Thread) {
	a := simmem.NewArena(1 << 22)
	h := htm.New(a, htm.Config{MaxReadLines: readLines, MaxWriteLines: writeLines})
	return h, h.NewThread(vclock.NewWallProc(0, 0), 1)
}

// TestCorrectUnderCapacityPressure: with a 12-line working-set budget the
// split transactions cannot fit, so splits run on the global-lock path —
// the tree must stay correct throughout.
func TestCorrectUnderCapacityPressure(t *testing.T) {
	h, boot := newTinyCapacityDevice(12, 12)
	tr := New(h, boot, DefaultConfig)
	const n = 1200
	for i := uint64(1); i <= n; i++ {
		tr.Put(boot, i, i*3)
	}
	if boot.Stats.Fallbacks == 0 {
		t.Fatal("capacity pressure never forced a fallback")
	}
	if boot.Stats.Aborts[htm.AbortCapacity] == 0 {
		t.Fatal("no capacity aborts recorded")
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := tr.Get(boot, i); !ok || v != i*3 {
			t.Fatalf("get(%d) = %d,%v after capacity-pressured fill", i, v, ok)
		}
	}
	// Scans exceed the read budget too and must fall back correctly.
	visited := 0
	last := uint64(0)
	tr.Scan(boot, 0, 500, func(k, v uint64) bool {
		if k <= last {
			t.Fatalf("scan order violated: %d after %d", k, last)
		}
		last = k
		visited++
		return true
	})
	if visited != 500 {
		t.Fatalf("scan visited %d", visited)
	}
}

// TestConcurrentCapacityPressureSim runs the capacity-starved device under
// concurrency: fallback serialization must not lose updates.
func TestConcurrentCapacityPressureSim(t *testing.T) {
	h, _ := newTinyCapacityDevice(10, 10)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	sim := vclock.NewSim(6, 0)
	const per = 150
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+3)
		base := uint64(p.ID()*per) + 1
		for i := uint64(0); i < per; i++ {
			tr.Put(th, base+i, base+i)
		}
	})
	for k := uint64(1); k <= 6*per; k++ {
		if v, ok := tr.Get(boot, k); !ok || v != k {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestMaintenanceChurn: a tiny leaf geometry forces constant compactions
// and splits; heavy mixed traffic must preserve the model.
func TestMaintenanceChurn(t *testing.T) {
	cfg := Config{StableCap: 4, Segments: 2, SegCap: 1, PartLeaf: true,
		CCMLockBits: true, CCMMarkBits: true, Adaptive: true}
	a := simmem.NewArena(1 << 22)
	h := htm.New(a, htm.DefaultConfig)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, cfg)
	model := map[uint64]uint64{}
	r := vclock.NewRand(31)
	for i := 0; i < 5000; i++ {
		k := uint64(r.Intn(400)) + 1
		switch r.Intn(5) {
		case 0, 1, 2:
			v := r.Uint64() >> 1
			tr.Put(boot, k, v)
			model[k] = v
		case 3:
			delete(model, k)
			tr.Delete(boot, k)
		case 4:
			want, in := model[k]
			v, ok := tr.Get(boot, k)
			if ok != in || (ok && v != want) {
				t.Fatalf("op %d: get(%d) = %d,%v want %d,%v", i, k, v, ok, want, in)
			}
		}
	}
	if tr.Splits() == 0 || tr.Compactions() == 0 {
		t.Fatalf("churn did not exercise maintenance: splits=%d compactions=%d",
			tr.Splits(), tr.Compactions())
	}
}

// TestArenaExhaustionSurfacesClearly: running an undersized arena out of
// memory panics with an actionable message rather than corrupting state.
func TestArenaExhaustionSurfacesClearly(t *testing.T) {
	a := simmem.NewArena(64 * simmem.WordsPerLine)
	h := htm.New(a, htm.DefaultConfig)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on arena exhaustion")
		}
	}()
	for i := uint64(1); i < 100000; i++ {
		tr.Put(boot, i, i)
	}
}

// TestRandomSchedulerUnderLockBits: with adaptive off (CCM always hot) the
// random write scheduler is active; concurrent same-key puts must still
// never duplicate a key.
func TestRandomSchedulerUnderLockBitsSim(t *testing.T) {
	cfg := DefaultConfig
	cfg.Adaptive = false
	a := simmem.NewArena(1 << 22)
	h := htm.New(a, htm.DefaultConfig)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, cfg)
	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+7)
		for i := 0; i < 300; i++ {
			// Everyone hammers the same small key set: inserts, deletes,
			// re-inserts of identical keys through the random scheduler.
			k := uint64(i%10) + 1
			if i%13 == 5 {
				tr.Delete(th, k)
			} else {
				tr.Put(th, k, uint64(p.ID())<<32|uint64(i))
			}
		}
	})
	// Verify no duplicates via a scan (strictly ascending implies unique).
	last := uint64(0)
	tr.Scan(boot, 0, 100, func(k, v uint64) bool {
		if k <= last && last != 0 {
			t.Fatalf("duplicate or disorder: %d after %d", k, last)
		}
		last = k
		return true
	})
}

// TestUpperRegionRetriesOnRootSplit: growing the tree concurrently with
// reads must route every get correctly (exercises retry-from-root).
func TestUpperRegionRetriesOnRootSplitSim(t *testing.T) {
	a := simmem.NewArena(1 << 22)
	h := htm.New(a, htm.DefaultConfig)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	for i := uint64(2); i <= 400; i += 2 {
		tr.Put(boot, i, i)
	}
	sim := vclock.NewSim(4, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+17)
		if p.ID() == 0 { // writer driving splits
			for i := uint64(1); i <= 1200; i += 2 {
				tr.Put(th, i, i)
			}
		} else { // readers of stable keys
			for round := 0; round < 400; round++ {
				k := uint64(round%200)*2 + 2
				if v, ok := tr.Get(th, k); !ok || v != k {
					t.Errorf("get(%d) = %d,%v during split storm", k, v, ok)
				}
			}
		}
	})
	if tr.RootRetries() == 0 {
		t.Log("note: no root retries observed (timing-dependent, not an error)")
	}
}
