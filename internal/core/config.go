// Package core implements Euno-B+Tree, the paper's contribution: a
// concurrent B+Tree that stays scalable under contention by applying the
// four Eunomia design guidelines (Section 3):
//
//  1. Split HTM regions. Every get/put/delete runs as two transactions —
//     an upper region that traverses the index and samples the target
//     leaf's sequence number, and a lower region that operates on the leaf
//     after re-validating that number (Algorithm 2). A leaf-level conflict
//     now retries only the lower region; only a split (seqno change) forces
//     a retry from the root.
//
//  2. Partitioned leaf layout. A leaf stores records in S line-aligned
//     *segments* (sorted within a segment, unsorted across) plus a sorted
//     *stable region* that absorbs segment overflow; puts are scattered
//     across segments so adjacent records no longer share cache lines
//     (Section 4.1, Algorithm 3).
//
//  3. Conflict control module (CCM). Outside the HTM regions each leaf
//     carries per-key-slot advisory lock bits that serialize same-record
//     requests before they can conflict inside a transaction, and counting
//     mark slots (a counting Bloom filter) that turn away requests for
//     absent keys (Figure 5).
//
//  4. Adaptive concurrency control. A per-leaf contention detector lets
//     cold leaves bypass the CCM entirely, removing its overhead under low
//     contention.
//
// Documented deviations from the paper's prose, with reasons:
//
//   - The paper's purely random write scheduler can insert the same new key
//     into two different segments when two threads race past a bypassed
//     CCM (the paper's proof sketch quietly relies on the lock bits for
//     this case). We therefore use the random scheduler only while the
//     lock bits serialize same-slot requests, and a deterministic
//     home-segment scheduler (hash of the key) otherwise — adjacent keys
//     still scatter, but same-key inserts always collide inside one
//     segment and serialize transactionally.
//
//   - Mark "bits" are 4-bit saturating counters so deletion cannot create
//     false negatives under hash collisions (clearing a plain bit, as the
//     paper describes, is unsound).
//
//   - After a split, the old leaf's mark slots are left as a superset
//     (stale marks for moved keys) rather than rebuilt, because a rebuild
//     outside the transaction races with concurrent insertions; supersets
//     only cost false positives. The new leaf's marks are computed inside
//     the split transaction.
package core

import (
	"fmt"

	"eunomia/internal/htm"
)

// Config selects the Euno-B+Tree geometry and which Eunomia design
// guidelines are active; the flags give the Figure 13 ablation chain.
type Config struct {
	// StableCap is the capacity (in records) of the sorted stable region —
	// the B+Tree fanout in the paper's terms. 4..32.
	StableCap int
	// Segments and SegCap shape the partitioned insert area: Segments
	// line-aligned segments of SegCap records each. Ignored when PartLeaf
	// is false.
	Segments int
	SegCap   int

	// PartLeaf enables the partitioned leaf layout (+Part Leaf). When
	// false a leaf is just the sorted stable region, and inserts shift it
	// in place inside the lower region (+Split HTM configuration).
	PartLeaf bool
	// CCMLockBits enables the per-slot advisory lock bits (+CCM lockbits).
	CCMLockBits bool
	// CCMMarkBits enables the counting mark slots (+CCM markbits).
	CCMMarkBits bool
	// Adaptive enables the per-leaf contention detector that bypasses the
	// CCM on cold leaves (+Adaptive).
	Adaptive bool

	// HotThreshold is the contention score at which a leaf is considered
	// hot (the score decays on sampled conflict-free operations).
	HotThreshold uint64
	// RebalanceThreshold is the number of tombstones a leaf accumulates
	// before a delete triggers compaction (Section 4.2.4: "we do the
	// re-balance when the number of delete operations exceeds a
	// threshold"). 0 keeps the default.
	RebalanceThreshold uint64

	// Resilience applies the opt-in HTM hardening layer (randomized
	// backoff, lemming wait, per-operation attempt budget) to both
	// regions' retry policies. The zero value keeps the paper-faithful
	// htm.DefaultPolicy. The queued fallback lock and abort-storm
	// detector are device-level knobs (htm.Config), not per-tree.
	Resilience htm.Resilience

	// DisableSeqnoCheck deliberately breaks the tree by skipping the lower
	// region's sequence-number re-validation. It exists solely as the
	// mutation self-test for the linearizability checker (internal/check):
	// the checker must reject this configuration. Never set it otherwise.
	DisableSeqnoCheck bool

	// Combine configures CCM v2: opt-in elimination and flat combining for
	// hot keys and leaves (see combine.go). The zero value disables it.
	Combine CombineConfig
}

// CombineConfig configures the CCM v2 elimination/flat-combining layer.
// With Enabled false (the default) the tree behaves exactly as before —
// the combine path is never entered and figure metrics stay bit-identical.
type CombineConfig struct {
	// Enabled turns the layer on. Puts and deletes that target a hot leaf
	// (per the adaptive contention detector; always when Adaptive is off)
	// publish into a combining stripe instead of running the lower region
	// themselves: concurrent same-key insert+delete pairs are eliminated
	// without touching the leaf, and same-leaf bursts are drained by one
	// combiner thread in a single transaction.
	Enabled bool
	// Stripes is the number of publication stripes (leaves hash to a
	// stripe; same leaf always lands on the same stripe so bursts meet).
	// Default 4.
	Stripes int
	// Slots is the number of publication slots per stripe. A put/delete
	// that finds no free slot silently falls back to the normal path.
	// Default 8.
	Slots int
	// UnsoundEliminate deliberately breaks elimination by skipping the
	// absence proof (mark-slot and seqno checks), so a present key's
	// insert+delete pair is cancelled even though the delete should have
	// removed the *existing* record. It exists solely as the mutation
	// self-test for the linearizability checker. Never set it otherwise.
	UnsoundEliminate bool
}

// DefaultConfig is the full Euno-B+Tree ("+Adaptive" column of Figure 13):
// every guideline enabled, fanout 16 as in the paper's Section 5.7.
var DefaultConfig = Config{
	StableCap:          16,
	Segments:           4,
	SegCap:             3,
	PartLeaf:           true,
	CCMLockBits:        true,
	CCMMarkBits:        true,
	Adaptive:           true,
	HotThreshold:       24,
	RebalanceThreshold: 8,
}

// AblationConfigs returns the cumulative Figure 13 configurations in order:
// +Split HTM, +Part Leaf, +CCM lockbits, +CCM markbits, +Adaptive.
// (The Figure's "Baseline" is the monolithic htmtree.)
func AblationConfigs() []struct {
	Name string
	Cfg  Config
} {
	base := DefaultConfig
	mk := func(f func(*Config)) Config { c := base; f(&c); return c }
	return []struct {
		Name string
		Cfg  Config
	}{
		{"+Split HTM", mk(func(c *Config) { c.PartLeaf, c.CCMLockBits, c.CCMMarkBits, c.Adaptive = false, false, false, false })},
		{"+Part Leaf", mk(func(c *Config) { c.CCMLockBits, c.CCMMarkBits, c.Adaptive = false, false, false })},
		{"+CCM lockbits", mk(func(c *Config) { c.CCMMarkBits, c.Adaptive = false, false })},
		{"+CCM markbits", mk(func(c *Config) { c.Adaptive = false })},
		{"+Adaptive", base},
	}
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	if c.StableCap < 4 || c.StableCap > 32 {
		return fmt.Errorf("core: StableCap %d out of [4,32]", c.StableCap)
	}
	if !c.PartLeaf {
		c.Segments, c.SegCap = 0, 0
	} else {
		if c.Segments < 2 || c.Segments > 8 {
			return fmt.Errorf("core: Segments %d out of [2,8]", c.Segments)
		}
		if c.SegCap < 1 || c.SegCap > 7 {
			return fmt.Errorf("core: SegCap %d out of [1,7]", c.SegCap)
		}
		// A split distributes ceil((StableCap+Segments*SegCap+1)/2) live
		// records into each new leaf's stable region, so the segment area
		// must not exceed StableCap-1 or a full leaf could not split.
		if c.Segments*c.SegCap > c.StableCap-1 {
			return fmt.Errorf("core: Segments*SegCap = %d exceeds StableCap-1 = %d; a full leaf could not split",
				c.Segments*c.SegCap, c.StableCap-1)
		}
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = DefaultConfig.HotThreshold
	}
	if c.RebalanceThreshold == 0 {
		c.RebalanceThreshold = DefaultConfig.RebalanceThreshold
	}
	if c.Combine.Enabled {
		if c.Combine.Stripes <= 0 {
			c.Combine.Stripes = 4
		}
		if c.Combine.Slots <= 0 {
			c.Combine.Slots = 8
		}
		if c.Combine.Slots > 64 {
			return fmt.Errorf("core: Combine.Slots %d out of [1,64]", c.Combine.Slots)
		}
	}
	return nil
}
