package core

import (
	"fmt"
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

// combineTestConfig is the default tree with CCM v2 always on (Adaptive
// off makes every leaf hot, so the combining path is exercised
// constantly, not only under detected contention).
func combineTestConfig() Config {
	cfg := DefaultConfig
	cfg.Adaptive = false
	cfg.Combine.Enabled = true
	return cfg
}

// TestKitCombine runs the complete correctness kit with combining on.
func TestKitCombine(t *testing.T) {
	treetest.RunAll(t, factoryWith(combineTestConfig()))
}

// TestKitCombineTinyStripe forces constant stripe saturation (one slot)
// so the fallback-to-normal-path interop is exercised on every burst.
func TestKitCombineTinyStripe(t *testing.T) {
	cfg := combineTestConfig()
	cfg.Combine.Stripes = 1
	cfg.Combine.Slots = 1
	treetest.RunAll(t, factoryWith(cfg))
}

func TestCombineSingleThreadSemantics(t *testing.T) {
	tr, boot := newEuno(t, combineTestConfig())
	for i := uint64(1); i <= 500; i++ {
		tr.Put(boot, i, i*3)
	}
	for i := uint64(1); i <= 500; i++ {
		if v, ok := tr.Get(boot, i); !ok || v != i*3 {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := uint64(2); i <= 500; i += 2 {
		if !tr.Delete(boot, i) {
			t.Fatalf("delete(%d) missed", i)
		}
	}
	if tr.Delete(boot, 2) {
		t.Fatal("double delete reported found")
	}
	for i := uint64(1); i <= 500; i++ {
		v, ok := tr.Get(boot, i)
		if want := i%2 == 1; ok != want || (ok && v != i*3) {
			t.Fatalf("get(%d) = %d,%v want present=%v", i, v, ok, want)
		}
	}
	// A single thread always self-serves: batches of one, no handoffs.
	if tr.CombinedBatches() == 0 || tr.CombinedOps() == 0 {
		t.Fatalf("combining never engaged: batches=%d ops=%d",
			tr.CombinedBatches(), tr.CombinedOps())
	}
	if tr.CombinerHandoffs() != 0 {
		t.Fatalf("single thread recorded %d handoffs", tr.CombinerHandoffs())
	}
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}

// TestCombineScheduleFuzz is the schedule-exploration fuzz of
// schedfuzz_test.go with combining on: every interleaving must preserve
// the last-writer-tag model and the structural invariants.
func TestCombineScheduleFuzz(t *testing.T) {
	var handoffs, batches uint64
	for _, slack := range []uint64{0, 7, 63, 511} {
		for seed := uint64(1); seed <= 3; seed++ {
			slack, seed := slack, seed
			t.Run(fmt.Sprintf("slack=%d/seed=%d", slack, seed), func(t *testing.T) {
				a := simmem.NewArena(1 << 23)
				h := htm.New(a, htm.DefaultConfig)
				boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
				tr := New(h, boot, combineTestConfig())
				const keys = 64 // small universe: hot leaves, real bursts
				sim := vclock.NewSim(6, slack)
				sim.Run(func(p *vclock.SimProc) {
					th := h.NewThread(p, seed*1000+uint64(p.ID()))
					r := vclock.NewRand(seed*77 + uint64(p.ID()))
					for i := 0; i < 400; i++ {
						k := uint64(r.Intn(keys)) + 1
						switch r.Intn(8) {
						case 0:
							tr.Delete(th, k)
						case 1, 2, 3, 4:
							tr.Put(th, k, k<<16|uint64(p.ID()))
						default:
							if v, ok := tr.Get(th, k); ok {
								if v>>16 != k || v&0xffff >= 6 {
									t.Errorf("get(%d) = %#x: foreign value", k, v)
								}
							}
						}
					}
				})
				for k := uint64(1); k <= keys; k++ {
					if v, ok := tr.Get(boot, k); ok && (v>>16 != k || v&0xffff >= 6) {
						t.Fatalf("final get(%d) = %#x", k, v)
					}
				}
				if err := tr.Validate(boot.P); err != nil {
					t.Fatal(err)
				}
				handoffs += tr.CombinerHandoffs()
				batches += tr.CombinedBatches()
			})
		}
	}
	if batches == 0 {
		t.Fatal("no schedule produced a combined batch")
	}
	if handoffs == 0 {
		t.Fatal("no schedule produced a combiner handoff (bursts never met)")
	}
}

// TestCombineElimination hammers one key with concurrent inserts and
// deletes: across the schedule variations some insert+delete pairs must
// annihilate without touching the leaf, and the key's final state must
// stay consistent with some linearization.
func TestCombineElimination(t *testing.T) {
	var eliminated uint64
	for _, slack := range []uint64{0, 7, 63, 511} {
		for seed := uint64(1); seed <= 4; seed++ {
			a := simmem.NewArena(1 << 22)
			h := htm.New(a, htm.DefaultConfig)
			boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
			tr := New(h, boot, combineTestConfig())
			const hot = uint64(42)
			sim := vclock.NewSim(4, slack)
			sim.Run(func(p *vclock.SimProc) {
				th := h.NewThread(p, seed*1000+uint64(p.ID()))
				for i := 0; i < 200; i++ {
					if p.ID()%2 == 0 {
						tr.Put(th, hot, uint64(p.ID())<<8|1)
					} else {
						tr.Delete(th, hot)
					}
				}
			})
			if v, ok := tr.Get(boot, hot); ok && (v&1) != 1 {
				t.Fatalf("slack=%d seed=%d: corrupted survivor value %#x", slack, seed, v)
			}
			if err := tr.Validate(boot.P); err != nil {
				t.Fatal(err)
			}
			eliminated += tr.EliminatedPairs()
		}
	}
	if eliminated == 0 {
		t.Fatal("no schedule eliminated an insert+delete pair")
	}
	t.Logf("eliminated %d pairs across schedules", eliminated)
}

// TestCombineAbsenceProofBlocksPresentKeys checks the elimination guard
// directly: while a key is present its mark count is nonzero, so a
// same-key put+delete pair must NOT annihilate — the delete must remove
// the preloaded record.
func TestCombineAbsenceProofBlocksPresentKeys(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		a := simmem.NewArena(1 << 22)
		h := htm.New(a, htm.DefaultConfig)
		boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
		tr := New(h, boot, combineTestConfig())
		const hot = uint64(42)
		tr.Put(boot, hot, 7) // present: marks nonzero
		sim := vclock.NewSim(2, 31)
		sim.Run(func(p *vclock.SimProc) {
			th := h.NewThread(p, seed*1000+uint64(p.ID()))
			if p.ID() == 0 {
				tr.Put(th, hot, 9)
			} else {
				if !tr.Delete(th, hot) {
					// The only delete racing one put of a present key: it
					// must observe either the preloaded or the new record.
					t.Error("delete of a present key reported absent")
				}
			}
		})
		if tr.EliminatedPairs() != 0 {
			t.Fatalf("seed %d: eliminated a pair while the key was present", seed)
		}
		// Final state: put-then-delete leaves it absent; delete-then-put
		// leaves 9. Both linearizations are fine; a surviving 7 is not.
		if v, ok := tr.Get(boot, hot); ok && v != 9 {
			t.Fatalf("seed %d: stale value %d survived", seed, v)
		}
	}
}
