package core

import (
	"sync/atomic"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// Internal nodes use the same conventional layout as the baseline tree —
// the Eunomia redesign targets the leaf layer, where >90% of conflicts
// occur; the interior is protected by the upper HTM region and updated only
// by (rare) splits.
const (
	offCount   = 0 // internal node: number of separators
	offLevel   = 2
	offIntKeys = 8
	metaRoot   = 0
	metaDepth  = 1
)

// Tree is Euno-B+Tree. Create with New; all methods are safe for concurrent
// use by distinct htm.Threads.
type Tree struct {
	h   *htm.HTM
	a   *simmem.Arena
	cfg Config

	meta simmem.Addr

	// Leaf layout, derived from cfg.
	stableOff int // word offset of the stable region
	segOff    int // word offset of segment 0
	segStride int // words per segment block (line multiple)
	ccmOff    int // word offset of the CCM line
	leafWords int
	intWords  int
	nslots    uint

	upperPol htm.RetryPolicy
	lowerPol htm.RetryPolicy

	// CCM v2 (see combine.go). comb is nil unless cfg.Combine.Enabled; gc
	// is the durability hook for combined batches (nil when non-durable).
	comb *combiner
	gc   GroupCommitter

	// Diagnostics.
	splits      atomic.Uint64
	compactions atomic.Uint64
	markRejects atomic.Uint64 // get/delete turned away by mark slots
	rootRetries atomic.Uint64 // seqno mismatches forcing retry from root
	maintRounds atomic.Uint64

	// CCM v2 diagnostics.
	eliminatedPairs  atomic.Uint64 // insert+delete pairs cancelled leaf-free
	combinedBatches  atomic.Uint64 // per-leaf batches drained by a combiner
	combinedOps      atomic.Uint64 // operations served inside those batches
	combinerHandoffs atomic.Uint64 // claimed requests published by another thread
}

// New creates an empty Euno-B+Tree with the given configuration.
func New(h *htm.HTM, boot *htm.Thread, cfg Config) *Tree {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	pol := cfg.Resilience.Apply(htm.DefaultPolicy)
	t := &Tree{h: h, a: h.Arena(), cfg: cfg,
		upperPol: pol, lowerPol: pol}

	roundLine := func(w int) int {
		return (w + simmem.WordsPerLine - 1) &^ (simmem.WordsPerLine - 1)
	}
	t.stableOff = offLeafData
	if !cfg.PartLeaf {
		// Keep the baseline's conventional co-located header (see leaf.go).
		t.stableOff += convHeaderWords
	}
	t.segOff = roundLine(t.stableOff + 2*cfg.StableCap)
	t.segStride = roundLine(1 + 2*cfg.SegCap)
	t.ccmOff = t.segOff + cfg.Segments*t.segStride
	t.leafWords = t.ccmOff + simmem.WordsPerLine
	t.intWords = offIntKeys + 2*cfg.StableCap + 1
	t.nslots = uint(2 * cfg.StableCap)
	if t.nslots > 32 {
		t.nslots = 32
	}

	if cfg.Combine.Enabled {
		t.comb = newCombiner(cfg.Combine)
	}

	t.meta = t.a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagTreeMeta)
	root := t.newLeaf(boot.P)
	t.a.StoreWordDirect(boot.P, t.meta+metaRoot, uint64(root))
	t.a.StoreWordDirect(boot.P, t.meta+metaDepth, 1)
	return t
}

// Name implements tree.KV.
func (t *Tree) Name() string { return "euno-btree" }

// Config returns the active configuration.
func (t *Tree) Config() Config { return t.cfg }

// Splits, Compactions, MarkRejects, RootRetries and MaintRounds expose
// diagnostics.
func (t *Tree) Splits() uint64      { return t.splits.Load() }
func (t *Tree) Compactions() uint64 { return t.compactions.Load() }
func (t *Tree) MarkRejects() uint64 { return t.markRejects.Load() }
func (t *Tree) RootRetries() uint64 { return t.rootRetries.Load() }
func (t *Tree) MaintRounds() uint64 { return t.maintRounds.Load() }

// EliminatedPairs, CombinedBatches, CombinedOps and CombinerHandoffs
// expose the CCM v2 diagnostics (all zero unless Combine.Enabled).
func (t *Tree) EliminatedPairs() uint64  { return t.eliminatedPairs.Load() }
func (t *Tree) CombinedBatches() uint64  { return t.combinedBatches.Load() }
func (t *Tree) CombinedOps() uint64      { return t.combinedOps.Load() }
func (t *Tree) CombinerHandoffs() uint64 { return t.combinerHandoffs.Load() }

func (t *Tree) newLeaf(p vclock.Proc) simmem.Addr {
	addr := t.a.AllocAligned(p, t.leafWords, simmem.TagKeys)
	t.retagLeaf(addr)
	return addr
}

func (t *Tree) newLeafTx(tx *htm.Tx) simmem.Addr {
	addr := tx.AllocAligned(t.leafWords, simmem.TagKeys)
	t.retagLeaf(addr)
	return addr
}

func (t *Tree) retagLeaf(addr simmem.Addr) {
	t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	t.a.Retag(addr+simmem.Addr(t.ccmOff), simmem.WordsPerLine, simmem.TagCCM)
}

func (t *Tree) newInternalTx(tx *htm.Tx) simmem.Addr {
	addr := tx.AllocAligned(t.intWords, simmem.TagKeys)
	t.a.Retag(addr, simmem.WordsPerLine, simmem.TagNodeMeta)
	return addr
}

func (t *Tree) intKey(node simmem.Addr, i int) simmem.Addr {
	return node + simmem.Addr(offIntKeys+i)
}
func (t *Tree) intChild(node simmem.Addr, i int) simmem.Addr {
	return node + simmem.Addr(offIntKeys+t.cfg.StableCap+i)
}

// descend walks from the root to the leaf covering key, optionally
// recording the internal path, entirely within the given transaction.
func (t *Tree) descend(tx *htm.Tx, key uint64, path *[]simmem.Addr) simmem.Addr {
	node := simmem.Addr(tx.Load(t.meta + metaRoot))
	depth := tx.Load(t.meta + metaDepth)
	for d := depth; d > 1; d-- {
		if path != nil {
			*path = append(*path, node)
		}
		count := int(tx.Load(node + offCount))
		lo, hi := 0, count
		for lo < hi {
			mid := (lo + hi) / 2
			if tx.Load(t.intKey(node, mid)) <= key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		node = simmem.Addr(tx.Load(t.intChild(node, lo)))
	}
	return node
}

// upper executes the upper HTM region (Algorithm 2 lines 23-28): traverse
// the index and sample the target leaf's sequence number.
func (t *Tree) upper(th *htm.Thread, key uint64) (leaf simmem.Addr, s0 uint64) {
	// Upper-region conflicts happen on interior/meta lines, not the leaf
	// the previous operation annotated — clear the observability node
	// annotation so they attribute to their raw conflict line.
	th.NoteNode(0)
	th.Execute(t.upperPol, func(tx *htm.Tx) {
		leaf = t.descend(tx, key, nil)
		s0 = tx.Load(leaf + offSeqno)
	})
	return leaf, s0
}

// ccmGate decides, per operation, whether the CCM applies: enabled by
// configuration and — when adaptive — only on hot leaves.
func (t *Tree) ccmGate(th *htm.Thread, ccm simmem.Addr) (useLock, useMark bool) {
	if !t.cfg.CCMLockBits && !t.cfg.CCMMarkBits {
		return false, false
	}
	hot := t.leafHot(th.P, ccm)
	return t.cfg.CCMLockBits && hot, t.cfg.CCMMarkBits && hot
}

// Get implements tree.KV via the two-step traversal of Algorithm 2.
func (t *Tree) Get(th *htm.Thread, key uint64) (uint64, bool) {
	for {
		leaf, s0 := t.upper(th, key)
		// The stitch: between here and the lower region the leaf may split,
		// compact, or fill — correctness rests on the seqno re-validation.
		th.Fault(htm.FaultStitch)
		th.NoteStitch(uint64(leaf))
		th.NoteNode(uint64(leaf))
		ccm := t.ccmAddr(leaf)
		slot := t.slotOf(key)
		useLock, useMark := t.ccmGate(th, ccm)
		if useMark && t.markCount(th.P, ccm, slot) == 0 {
			// Mark slots say no key in this leaf hashes here. Validate the
			// leaf is still current (a split could have moved the key);
			// marks never under-count, so a clean seqno proves absence.
			if t.a.LoadWord(th.P, leaf+offSeqno) == s0 {
				t.markRejects.Add(1)
				return 0, false
			}
			t.rootRetries.Add(1)
			continue
		}
		if useLock {
			th.Fault(htm.FaultCCM)
			t.lockSlot(th.P, ccm, slot)
		}
		var out outcome
		var val uint64
		before := th.Stats.Attempts
		th.Execute(t.lowerPol, func(tx *htm.Tx) {
			out, val = t.leafGet(tx, leaf, s0, key)
		})
		if useLock {
			t.unlockSlot(th.P, ccm, slot)
		}
		t.noteConflicts(th, ccm, th.Stats.Attempts-before-1)
		switch out {
		case oMismatch:
			t.rootRetries.Add(1)
			continue
		case oFound:
			return val, true
		default:
			return 0, false
		}
	}
}

// Put implements tree.KV.
func (t *Tree) Put(th *htm.Thread, key, val uint64) {
	if val == tree.Tombstone {
		panic("core: the tombstone value is reserved")
	}
	// CCM v2 fast path: with combining on and no external durability
	// driver, offer the put to the elimination/flat-combining layer first
	// (a durable owner interleaves TryCombinePut with its own logging
	// instead, so nothing is logged twice).
	if t.comb != nil && t.gc == nil {
		if handled, _ := t.TryCombinePut(th, key, val); handled {
			return
		}
	}
	for {
		leaf, s0 := t.upper(th, key)
		th.Fault(htm.FaultStitch)
		th.NoteStitch(uint64(leaf))
		th.NoteNode(uint64(leaf))
		ccm := t.ccmAddr(leaf)
		slot := t.slotOf(key)
		useLock, _ := t.ccmGate(th, ccm)
		// Anticipate an insertion: marks are bumped *before* the lower
		// region so a concurrent get can never miss a committed insert
		// (Algorithm 2 line 38). A zero mark count proves the key absent,
		// so the common update path costs only this one load; the rare
		// insert-into-occupied-slot case is detected inside the lower
		// region (oNeedMark) and re-run after pre-incrementing.
		preMarked := false
		if t.cfg.CCMMarkBits && t.markCount(th.P, ccm, slot) == 0 {
			th.Fault(htm.FaultCCM)
			t.markAdd(th.P, ccm, slot, +1)
			preMarked = true
		}
		if useLock {
			th.Fault(htm.FaultCCM)
			t.lockSlot(th.P, ccm, slot)
		}
		var out outcome
		before := th.Stats.Attempts
		runLower := func() {
			needMark := t.cfg.CCMMarkBits && !preMarked
			th.Execute(t.lowerPol, func(tx *htm.Tx) {
				out = t.leafPut(tx, leaf, s0, key, val, useLock, th.Rand, needMark)
			})
		}
		runLower()
		if out == oNeedMark {
			t.markAdd(th.P, ccm, slot, +1)
			preMarked = true
			runLower()
		}
		if out == oMaint {
			// Locked maintenance: compaction or sort-split-reorganize. The
			// maintenance path may insert, so it needs the mark too.
			if t.cfg.CCMMarkBits && !preMarked {
				t.markAdd(th.P, ccm, slot, +1)
				preMarked = true
			}
			t.maintRounds.Add(1)
			t.lockLeaf(th.P, ccm)
			out = t.leafMaint(th, leaf, s0, key, val)
			t.unlockLeaf(th.P, ccm)
			if out == oUpdated || out == oInserted {
				t.compactions.Add(1)
			}
		}
		if preMarked && out != oInserted {
			// Update or retry: the anticipated insert did not materialize.
			t.markAdd(th.P, ccm, slot, -1)
		}
		if useLock {
			t.unlockSlot(th.P, ccm, slot)
		}
		t.noteConflicts(th, ccm, th.Stats.Attempts-before-1)
		if out == oMismatch {
			t.rootRetries.Add(1)
			continue
		}
		return
	}
}

// Delete implements tree.KV: the record is removed from its segment and/or
// tombstoned in the stable region; physical cleanup happens at the next
// compaction or split (deletion without rebalancing).
func (t *Tree) Delete(th *htm.Thread, key uint64) bool {
	// CCM v2 fast path; see Put.
	if t.comb != nil && t.gc == nil {
		if handled, found, _ := t.TryCombineDelete(th, key); handled {
			return found
		}
	}
	for {
		leaf, s0 := t.upper(th, key)
		th.Fault(htm.FaultStitch)
		th.NoteStitch(uint64(leaf))
		th.NoteNode(uint64(leaf))
		ccm := t.ccmAddr(leaf)
		slot := t.slotOf(key)
		useLock, useMark := t.ccmGate(th, ccm)
		if useMark && t.markCount(th.P, ccm, slot) == 0 {
			if t.a.LoadWord(th.P, leaf+offSeqno) == s0 {
				t.markRejects.Add(1)
				return false
			}
			t.rootRetries.Add(1)
			continue
		}
		if useLock {
			th.Fault(htm.FaultCCM)
			t.lockSlot(th.P, ccm, slot)
		}
		var out outcome
		var tombstoned bool
		before := th.Stats.Attempts
		th.Execute(t.lowerPol, func(tx *htm.Tx) {
			out, tombstoned = t.leafDelete(tx, leaf, s0, key)
		})
		if out == oFound && t.cfg.CCMMarkBits {
			th.Fault(htm.FaultCCM)
			t.markAdd(th.P, ccm, slot, -1)
		}
		if tombstoned &&
			t.a.AddWordDirect(th.P, ccm+ccmTombs, 1) >= t.cfg.RebalanceThreshold {
			// Deferred rebalance (Section 4.2.4): enough deletions have
			// accumulated on this leaf; compact it.
			t.compactLeaf(th, leaf, s0)
		}
		if useLock {
			t.unlockSlot(th.P, ccm, slot)
		}
		t.noteConflicts(th, ccm, th.Stats.Attempts-before-1)
		switch out {
		case oMismatch:
			t.rootRetries.Add(1)
			continue
		case oFound:
			return true
		default:
			return false
		}
	}
}

// Depth returns the number of tree levels (diagnostic).
func (t *Tree) Depth(th *htm.Thread) int {
	var d uint64
	th.Execute(t.upperPol, func(tx *htm.Tx) {
		d = tx.Load(t.meta + metaDepth)
	})
	return int(d)
}

// insertUp propagates a (separator, right-child) pair along the recorded
// root-to-parent path, splitting internal nodes and the root as needed —
// identical in shape to the conventional tree, since the interior keeps the
// sorted layout (Section 4.2.3: "the internal nodes are still arranged in
// an ordered way").
func (t *Tree) insertUp(tx *htm.Tx, path []simmem.Addr, sep uint64, child simmem.Addr) {
	F := t.cfg.StableCap
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i]
		count := int(tx.Load(node + offCount))
		if count < F {
			t.insertInternal(tx, node, count, sep, child)
			return
		}
		mid := count / 2
		upKey := tx.Load(t.intKey(node, mid))
		right := t.newInternalTx(tx)
		rc := count - mid - 1
		for j := 0; j < rc; j++ {
			tx.Store(t.intKey(right, j), tx.Load(t.intKey(node, mid+1+j)))
		}
		for j := 0; j <= rc; j++ {
			tx.Store(t.intChild(right, j), tx.Load(t.intChild(node, mid+1+j)))
		}
		tx.Store(right+offCount, uint64(rc))
		tx.Store(right+offLevel, tx.Load(node+offLevel))
		tx.Store(node+offCount, uint64(mid))
		if sep < upKey {
			t.insertInternal(tx, node, mid, sep, child)
		} else {
			t.insertInternal(tx, right, rc, sep, child)
		}
		sep, child = upKey, right
	}
	oldRoot := simmem.Addr(tx.Load(t.meta + metaRoot))
	depth := tx.Load(t.meta + metaDepth)
	newRoot := t.newInternalTx(tx)
	tx.Store(newRoot+offCount, 1)
	tx.Store(newRoot+offLevel, depth)
	tx.Store(t.intKey(newRoot, 0), sep)
	tx.Store(t.intChild(newRoot, 0), uint64(oldRoot))
	tx.Store(t.intChild(newRoot, 1), uint64(child))
	tx.Store(t.meta+metaRoot, uint64(newRoot))
	tx.Store(t.meta+metaDepth, depth+1)
}

func (t *Tree) insertInternal(tx *htm.Tx, node simmem.Addr, count int, sep uint64, child simmem.Addr) {
	pos := 0
	for pos < count && tx.Load(t.intKey(node, pos)) < sep {
		pos++
	}
	for i := count; i > pos; i-- {
		tx.Store(t.intKey(node, i), tx.Load(t.intKey(node, i-1)))
	}
	for i := count + 1; i > pos+1; i-- {
		tx.Store(t.intChild(node, i), tx.Load(t.intChild(node, i-1)))
	}
	tx.Store(t.intKey(node, pos), sep)
	tx.Store(t.intChild(node, pos+1), uint64(child))
	tx.Store(node+offCount, uint64(count+1))
}
