package core

import (
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree/treetest"
	"eunomia/internal/vclock"
)

func validateOrFail(t *testing.T, tr *Tree, boot *htm.Thread) {
	t.Helper()
	if err := tr.Validate(boot.P); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAfterSequentialAndReverseFill(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		tr, boot := newEuno(t, DefaultConfig)
		const n = 3000
		for i := 0; i < n; i++ {
			k := uint64(i + 1)
			if reverse {
				k = uint64(n - i)
			}
			tr.Put(boot, k, k)
		}
		validateOrFail(t, tr, boot)
	}
}

func TestValidateAfterRandomChurn(t *testing.T) {
	for _, ab := range AblationConfigs() {
		ab := ab
		t.Run(ab.Name, func(t *testing.T) {
			tr, boot := newEuno(t, ab.Cfg)
			r := vclock.NewRand(77)
			for i := 0; i < 8000; i++ {
				k := uint64(r.Intn(900)) + 1
				switch r.Intn(4) {
				case 0, 1:
					tr.Put(boot, k, r.Uint64()>>1)
				case 2:
					tr.Delete(boot, k)
				case 3:
					tr.Get(boot, k)
				}
			}
			validateOrFail(t, tr, boot)
		})
	}
}

func TestValidateAfterConcurrentSim(t *testing.T) {
	h, _ := treetest.NewDevice(1 << 24)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+3)
		r := vclock.NewRand(uint64(p.ID()) + 19)
		for i := 0; i < 800; i++ {
			k := uint64(r.Intn(1200)) + 1
			switch r.Intn(5) {
			case 0, 1, 2:
				tr.Put(th, k, k<<8)
			case 3:
				tr.Delete(th, k)
			default:
				tr.Scan(th, k, 5, func(uint64, uint64) bool { return true })
			}
		}
	})
	validateOrFail(t, tr, boot)
}

func TestValidateDetectsCorruption(t *testing.T) {
	// Sanity-check the validator itself: deliberately corrupt a leaf and
	// confirm it notices.
	tr, boot := newEuno(t, DefaultConfig)
	for i := uint64(1); i <= 200; i++ {
		tr.Put(boot, i, i)
	}
	validateOrFail(t, tr, boot)
	leaf, _ := tr.upper(boot, 100)
	// Swap two stable keys out of order.
	a := tr.a.LoadWord(boot.P, tr.stableK(leaf, 0))
	b := tr.a.LoadWord(boot.P, tr.stableK(leaf, 1))
	tr.a.StoreWordDirect(boot.P, tr.stableK(leaf, 0), b)
	tr.a.StoreWordDirect(boot.P, tr.stableK(leaf, 1), a)
	if err := tr.Validate(boot.P); err == nil {
		t.Fatal("validator accepted an unsorted stable region")
	}
	// Restore and corrupt a segment count instead.
	tr.a.StoreWordDirect(boot.P, tr.stableK(leaf, 0), a)
	tr.a.StoreWordDirect(boot.P, tr.stableK(leaf, 1), b)
	validateOrFail(t, tr, boot)
	seg := tr.segBase(leaf, 0)
	tr.a.StoreWordDirect(boot.P, seg, uint64(tr.cfg.SegCap)+5)
	if err := tr.Validate(boot.P); err == nil {
		t.Fatal("validator accepted an oversized segment count")
	}
}

func TestValidateUnderCapacityPressure(t *testing.T) {
	a := simmem.NewArena(1 << 22)
	h := htm.New(a, htm.Config{MaxReadLines: 12, MaxWriteLines: 12})
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	tr := New(h, boot, DefaultConfig)
	r := vclock.NewRand(5)
	for i := 0; i < 4000; i++ {
		tr.Put(boot, uint64(r.Intn(800))+1, uint64(i))
	}
	validateOrFail(t, tr, boot)
}
