package core

import (
	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// The conflict control module (CCM) of a leaf occupies one cache line,
// tagged TagCCM, which is *never* accessed inside an HTM region — the whole
// point is to serialize or filter requests before they enter a transaction
// (Figure 5). Word offsets within the CCM line:
const (
	ccmSplitLock = 0 // advisory per-leaf lock serializing splits and scans
	ccmLockBits  = 1 // one lock bit per hash slot (fine-grained advisory locks)
	ccmMarks0    = 2 // counting mark slots, 16 nibbles per word (2 words)
	ccmMarks1    = 3
	ccmConflict  = 4 // contention detector: decaying conflict score
	ccmTombs     = 5 // tombstones accumulated since the last compaction
)

// markSaturation is the nibble ceiling; a saturated slot never decrements
// again, keeping the filter conservative (false positives only).
const markSaturation = 15

// slotOf hashes a key to a CCM slot. All threads must agree on it.
func (t *Tree) slotOf(key uint64) uint {
	x := key + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return uint(x % uint64(t.nslots))
}

// lockSlot acquires the advisory lock bit for a slot, spinning (and
// charging virtual time) until it wins — Algorithm 2 lines 30-31.
func (t *Tree) lockSlot(p vclock.Proc, ccm simmem.Addr, slot uint) {
	addr := ccm + ccmLockBits
	bit := uint64(1) << slot
	for {
		cur := t.a.LoadWord(p, addr)
		if cur&bit == 0 && t.a.CASWordDirect(p, addr, cur, cur|bit) {
			return
		}
		p.Tick(t.a.Costs().SpinIter)
	}
}

// unlockSlot releases the advisory lock bit.
func (t *Tree) unlockSlot(p vclock.Proc, ccm simmem.Addr, slot uint) {
	addr := ccm + ccmLockBits
	bit := uint64(1) << slot
	for {
		cur := t.a.LoadWord(p, addr)
		if t.a.CASWordDirect(p, addr, cur, cur&^bit) {
			return
		}
		p.Tick(t.a.Costs().SpinIter)
	}
}

// markAddr returns the word and nibble shift for a slot's counter.
func markAddr(ccm simmem.Addr, slot uint) (simmem.Addr, uint) {
	return ccm + ccmMarks0 + simmem.Addr(slot/16), (slot % 16) * 4
}

// markCount reads a slot's counting mark.
func (t *Tree) markCount(p vclock.Proc, ccm simmem.Addr, slot uint) uint64 {
	addr, shift := markAddr(ccm, slot)
	return (t.a.LoadWord(p, addr) >> shift) & 0xf
}

// markAdd adjusts a slot's counting mark by +1 or -1 with saturating
// semantics and returns the new count. A saturated slot sticks at the
// ceiling forever (conservative). Decrements below zero are clamped.
func (t *Tree) markAdd(p vclock.Proc, ccm simmem.Addr, slot uint, delta int) uint64 {
	addr, shift := markAddr(ccm, slot)
	for {
		cur := t.a.LoadWord(p, addr)
		n := (cur >> shift) & 0xf
		switch {
		case delta > 0 && n < markSaturation:
			n++
		case delta < 0 && n > 0 && n < markSaturation:
			n--
		default:
			return n // saturated or clamped: leave as-is
		}
		next := (cur &^ (0xf << shift)) | (n << shift)
		if t.a.CASWordDirect(p, addr, cur, next) {
			return n
		}
		p.Tick(t.a.Costs().SpinIter)
	}
}

// lockLeaf acquires the per-leaf advisory split lock (serializing splits,
// compactions, and scans on the leaf).
func (t *Tree) lockLeaf(p vclock.Proc, ccm simmem.Addr) {
	for !t.a.CASWordDirect(p, ccm+ccmSplitLock, 0, 1) {
		for t.a.LoadWord(p, ccm+ccmSplitLock) != 0 {
			p.Tick(t.a.Costs().SpinIter)
		}
	}
}

// unlockLeaf releases the advisory split lock.
func (t *Tree) unlockLeaf(p vclock.Proc, ccm simmem.Addr) {
	t.a.StoreWordDirect(p, ccm+ccmSplitLock, 0)
}

// leafHot consults the contention detector: a leaf is hot when its decayed
// conflict score is at or above the threshold. With Adaptive disabled the
// CCM is considered always-on.
func (t *Tree) leafHot(p vclock.Proc, ccm simmem.Addr) bool {
	if !t.cfg.Adaptive {
		return true
	}
	return t.a.LoadWord(p, ccm+ccmConflict) >= t.cfg.HotThreshold
}

// noteConflicts feeds the contention detector after an operation that
// suffered aborts in the lower region. Conflict-free operations decay the
// score instead, on a sampled basis, so a leaf cools down once contention
// passes. The detector writes the CCM line only on aborts and on sampled
// decays — clean traffic leaves the line read-shared and therefore cached,
// keeping the detector itself from becoming a contention point.
func (t *Tree) noteConflicts(th *htm.Thread, ccm simmem.Addr, aborts uint64) {
	if !t.cfg.Adaptive {
		return
	}
	if aborts > 0 {
		t.a.AddWordDirect(th.P, ccm+ccmConflict, aborts)
		return
	}
	// Clean op: sampled decay-on-read (lossy racing is fine — the score is
	// a heuristic).
	if th.Rand.Uint64()%32 == 0 {
		if score := t.a.LoadWord(th.P, ccm+ccmConflict); score > 0 {
			t.a.StoreWordDirect(th.P, ccm+ccmConflict, score/2)
		}
	}
}
