package core

import (
	"sync/atomic"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
)

// CCM v2: elimination and flat combining for the hottest keys and leaves.
//
// The paper's conflict control module *serializes* same-record requests
// (lock bits) and *filters* absent-key requests (mark slots); under extreme
// skew (Zipf θ=0.99, single-key hammers) the serialized requests still each
// pay a full lower-region transaction on the same cache lines. CCM v2 goes
// further, borrowing from elimination (a,b)-trees:
//
//   - Elimination: a concurrent insert+delete pair on the same key whose
//     key is provably absent annihilates — the pair linearizes as
//     put-immediately-followed-by-delete at the proof instant, touching
//     neither the leaf nor (net zero) the WAL.
//
//   - Flat combining: puts and deletes that target the same hot leaf
//     publish into a per-stripe publication array; one thread (the
//     combiner) claims the stripe and drains every published request in a
//     single lower-region transaction — one seqno validation, one set of
//     cache-line acquisitions, one WAL group record — while the others
//     wait on their slot.
//
// The layer sits entirely outside the HTM regions, like the CCM line: slots
// live on the Go heap and are coordinated with Go atomics (deterministic
// under the lockstep simulator, which runs one goroutine at a time; polite
// under the host backend, where Proc.Tick yields). The gate is the same
// adaptive hotness signal the CCM uses, so cold leaves never pay a thing.

// GroupOp is one applied operation inside a durable group commit.
type GroupOp struct {
	Key, Val uint64
	Delete   bool
}

// GroupTxn is one open group-commit transaction: the durability layer
// holds the WAL shard locks for the batch's keys between Begin and
// Commit/Abort, so the in-memory batch and its single WAL group record are
// atomic with respect to snapshots and per-key ordering.
type GroupTxn interface {
	// Commit appends one WAL group record covering ops and acknowledges
	// after it is flushed (or per the store's group-commit mode).
	Commit(ops []GroupOp) error
	// Abort releases the transaction without logging anything.
	Abort()
}

// GroupCommitter mints group transactions; the eunomia package installs an
// adapter over durable.Store via Tree.SetGroupCommitter when durability is
// enabled. With a committer installed, plain Put/Delete stop combining
// internally — the owning DB routes through TryCombinePut/TryCombineDelete
// before its own WAL logging instead, so nothing is logged twice.
type GroupCommitter interface {
	Begin(keys []uint64) (GroupTxn, error)
}

// Publication-slot states. Free→Reserved (publisher CAS), Reserved→
// Published (publisher, after filling the request), Published→Claimed
// (combiner CAS), Claimed→Done (combiner, after filling the response),
// Done→Free (publisher, after reading the response).
const (
	slotFree uint32 = iota
	slotReserved
	slotPublished
	slotClaimed
	slotDone
)

// combineSlot is one publication slot. The request fields are written
// while Reserved and read while Claimed; the response fields are written
// while Claimed and read while Done — each side has exclusive access in
// those states, and the atomic state transitions order the plain fields.
type combineSlot struct {
	state atomic.Uint32

	// Request.
	key, val uint64
	del      bool
	leaf     simmem.Addr
	s0       uint64

	// Response.
	redo  bool  // run the normal path (seqno mismatch, maintenance, Begin failure)
	found bool  // delete: key was present
	err   error // durable group-commit failure for an applied op
}

type combineStripe struct {
	lock  atomic.Uint32
	slots []combineSlot
}

type combiner struct {
	stripes []combineStripe
}

func newCombiner(cfg CombineConfig) *combiner {
	c := &combiner{stripes: make([]combineStripe, cfg.Stripes)}
	for i := range c.stripes {
		c.stripes[i].slots = make([]combineSlot, cfg.Slots)
	}
	return c
}

// stripeOf maps a leaf to its stripe. Same leaf → same stripe, so a burst
// on one leaf always meets in one publication array.
func (c *combiner) stripeOf(leaf simmem.Addr) *combineStripe {
	x := uint64(leaf) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return &c.stripes[x%uint64(len(c.stripes))]
}

// SetGroupCommitter installs the durability hook for combined batches.
// Install before any combining traffic; may be nil (non-durable).
func (t *Tree) SetGroupCommitter(gc GroupCommitter) { t.gc = gc }

// CombineEnabled reports whether the CCM v2 layer is active.
func (t *Tree) CombineEnabled() bool { return t.comb != nil }

// TryCombinePut offers a put to the combining layer. handled=false means
// the layer declined (cold leaf, full stripe, or the batch outcome demands
// the normal path) and the caller must run the ordinary put. It exists for
// durable owners that must interleave combining with their own logging;
// non-durable paths combine inside plain Put.
func (t *Tree) TryCombinePut(th *htm.Thread, key, val uint64) (bool, error) {
	if t.comb == nil {
		return false, nil
	}
	handled, _, err := t.tryCombine(th, key, val, false)
	return handled, err
}

// TryCombineDelete is TryCombinePut's delete counterpart; found is
// meaningful only when handled.
func (t *Tree) TryCombineDelete(th *htm.Thread, key uint64) (handled, found bool, err error) {
	if t.comb == nil {
		return false, false, nil
	}
	return t.tryCombine(th, key, 0, true)
}

// tryCombine publishes one put/delete into the leaf's stripe and waits for
// a combiner to serve it — becoming the combiner itself whenever the
// stripe lock is free (so an unserved publisher always self-serves; no
// lost-wakeup livelock).
func (t *Tree) tryCombine(th *htm.Thread, key, val uint64, del bool) (handled, found bool, err error) {
	leaf, s0 := t.upper(th, key)
	th.NoteNode(uint64(leaf))
	ccm := t.ccmAddr(leaf)
	if !t.leafHot(th.P, ccm) {
		return false, false, nil
	}
	st := t.comb.stripeOf(leaf)
	var slot *combineSlot
	for i := range st.slots {
		s := &st.slots[i]
		if s.state.Load() == slotFree && s.state.CompareAndSwap(slotFree, slotReserved) {
			slot = s
			break
		}
	}
	if slot == nil {
		return false, false, nil // stripe saturated: normal path
	}
	slot.key, slot.val, slot.del = key, val, del
	slot.leaf, slot.s0 = leaf, s0
	th.Fault(htm.FaultCombine)
	slot.state.Store(slotPublished)
	for {
		if slot.state.Load() == slotDone {
			handled, found, err = !slot.redo, slot.found, slot.err
			slot.state.Store(slotFree)
			return handled, found, err
		}
		if st.lock.CompareAndSwap(0, 1) {
			t.combineDrain(th, st, slot)
			st.lock.Store(0)
			continue
		}
		th.P.Tick(t.a.Costs().SpinIter)
	}
}

// combineDrain claims every published request on the stripe and serves
// them, one transaction per distinct leaf.
func (t *Tree) combineDrain(th *htm.Thread, st *combineStripe, self *combineSlot) {
	th.Fault(htm.FaultCombine)
	var claimed []*combineSlot
	for i := range st.slots {
		s := &st.slots[i]
		if s.state.Load() == slotPublished && s.state.CompareAndSwap(slotPublished, slotClaimed) {
			claimed = append(claimed, s)
			if s != self {
				t.combinerHandoffs.Add(1)
			}
		}
	}
	for len(claimed) > 0 {
		leaf := claimed[0].leaf
		group := claimed[:0]
		var rest []*combineSlot
		for _, s := range claimed {
			if s.leaf == leaf {
				group = append(group, s)
			} else {
				rest = append(rest, s)
			}
		}
		t.combineLeaf(th, leaf, group)
		claimed = rest
	}
}

// finishRedo answers every op with "run the normal path yourself".
func finishRedo(ops []*combineSlot) {
	for _, op := range ops {
		op.redo, op.found, op.err = true, false, nil
		op.state.Store(slotDone)
	}
}

// applied reports whether an outcome mutated the tree (and therefore must
// be logged durably).
func applied(del bool, out outcome) bool {
	if del {
		return out == oFound
	}
	return out == oUpdated || out == oInserted
}

// combineLeaf serves one leaf's claimed batch: eliminate insert+delete
// pairs, then run every surviving op in a single lower-region transaction
// bracketed by one durable group commit.
func (t *Tree) combineLeaf(th *htm.Thread, leaf simmem.Addr, ops []*combineSlot) {
	ccm := t.ccmAddr(leaf)
	ops = t.eliminate(th, leaf, ccm, ops)
	if len(ops) == 0 {
		return
	}

	var gtx GroupTxn
	if t.gc != nil {
		keys := make([]uint64, 0, len(ops))
		seen := make(map[uint64]struct{}, len(ops))
		for _, op := range ops {
			if _, dup := seen[op.key]; !dup {
				seen[op.key] = struct{}{}
				keys = append(keys, op.key)
			}
		}
		var err error
		gtx, err = t.gc.Begin(keys)
		if err != nil {
			// The normal (per-op logging) path will surface the real error.
			finishRedo(ops)
			return
		}
	}
	t.combinedBatches.Add(1)
	t.combinedOps.Add(uint64(len(ops)))

	// Pre-mark every put — the anticipated-insert discipline of Tree.Put
	// done wholesale, so a concurrent get can never miss a committed
	// insert. Marks over-count transiently; non-inserts decrement below.
	if t.cfg.CCMMarkBits {
		for _, op := range ops {
			if !op.del {
				th.Fault(htm.FaultCCM)
				t.markAdd(th.P, ccm, t.slotOf(op.key), +1)
			}
		}
	}

	outs := make([]outcome, len(ops))
	tombs := make([]bool, len(ops))
	before := th.Stats.Attempts
	th.Execute(t.lowerPol, func(tx *htm.Tx) {
		// Re-run from scratch on retry: every op re-validates its own s0.
		for i, op := range ops {
			if op.del {
				outs[i], tombs[i] = t.leafDelete(tx, leaf, op.s0, op.key)
			} else {
				// Deterministic home-segment scheduling (batch ops are not
				// slot-serialized) with marks already pre-incremented.
				outs[i] = t.leafPut(tx, leaf, op.s0, op.key, op.val, false, th.Rand, false)
				tombs[i] = false
			}
		}
	})
	t.noteConflicts(th, ccm, th.Stats.Attempts-before-1)

	// Mark fixups: puts that did not insert, deletes that removed.
	if t.cfg.CCMMarkBits {
		for i, op := range ops {
			slot := t.slotOf(op.key)
			if !op.del && outs[i] != oInserted {
				t.markAdd(th.P, ccm, slot, -1)
			}
			if op.del && outs[i] == oFound {
				th.Fault(htm.FaultCCM)
				t.markAdd(th.P, ccm, slot, -1)
			}
		}
	}

	// One WAL group record covering exactly the applied ops.
	var commitErr error
	if gtx != nil {
		var logged []GroupOp
		for i, op := range ops {
			if applied(op.del, outs[i]) {
				logged = append(logged, GroupOp{Key: op.key, Val: op.val, Delete: op.del})
			}
		}
		if len(logged) > 0 {
			commitErr = gtx.Commit(logged)
		} else {
			gtx.Abort()
		}
	}

	// Tombstone accounting; the deferred rebalance itself runs after the
	// batch is answered (compactLeaf takes the leaf lock, and the WAL shard
	// locks are released by now — no lock-order cycles).
	needCompact := false
	var compactS0 uint64
	for i, op := range ops {
		if tombs[i] &&
			t.a.AddWordDirect(th.P, ccm+ccmTombs, 1) >= t.cfg.RebalanceThreshold {
			needCompact, compactS0 = true, op.s0
		}
	}

	for i, op := range ops {
		switch outs[i] {
		case oMismatch, oMaint, oNeedMark:
			op.redo, op.found, op.err = true, false, nil
		default:
			op.redo = false
			op.found = op.del && outs[i] == oFound
			op.err = nil
			if commitErr != nil && applied(op.del, outs[i]) {
				// The tree mutated but durability failed: same contract as a
				// failed LogPut — in memory, NOT durable.
				op.err = commitErr
			}
		}
		op.state.Store(slotDone)
	}
	if needCompact {
		t.compactLeaf(th, leaf, compactS0)
	}
}

// eliminate cancels same-key insert+delete pairs whose key is provably
// absent and answers both without touching the leaf. The absence proof:
// the key's counting mark is zero (marks never under-count a present key:
// inserts pre-mark before committing, splits initialize the new leaf's
// marks transactionally, deletes decrement only after removing), read
// *before* re-validating that the leaf's seqno still equals each paired
// op's sampled s0 — seqnos are monotonic, so a clean re-validation proves
// the leaf still covered the key at the instant the mark was read. The
// pair linearizes there: put, then delete (which observes the put and
// returns found). Net state change is zero, so nothing is logged; the
// UnsoundEliminate mutant skips the proof and is caught by the
// linearizability checker.
func (t *Tree) eliminate(th *htm.Thread, leaf, ccm simmem.Addr, ops []*combineSlot) []*combineSlot {
	unsound := t.cfg.Combine.UnsoundEliminate
	if len(ops) < 2 || (!t.cfg.CCMMarkBits && !unsound) {
		return ops
	}
	elim := make([]bool, len(ops))
	for i, put := range ops {
		if elim[i] || put.del {
			continue
		}
		for j, del := range ops {
			if elim[j] || !del.del || del.key != put.key {
				continue
			}
			if !unsound {
				if t.markCount(th.P, ccm, t.slotOf(put.key)) != 0 {
					break // key may be present: no elimination for this key
				}
				cur := t.a.LoadWord(th.P, leaf+offSeqno)
				if cur != put.s0 || cur != del.s0 {
					break // stale leaf view: let the batch path re-validate
				}
			}
			elim[i], elim[j] = true, true
			t.eliminatedPairs.Add(1)
			put.redo, put.found, put.err = false, false, nil
			del.redo, del.found, del.err = false, true, nil
			put.state.Store(slotDone)
			del.state.Store(slotDone)
			break
		}
	}
	rest := ops[:0]
	for i := range ops {
		if !elim[i] {
			rest = append(rest, ops[i])
		}
	}
	return rest
}
