package core

import (
	"sort"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
)

// Scan implements tree.KV range queries (Section 4.2.4). Per leaf it:
//
//  1. acquires the leaf's advisory lock, serializing against splits,
//     compactions and other scans (the paper locks scanned leaves);
//  2. snapshots the leaf's live records inside a lower HTM region that
//     re-validates the sequence number;
//  3. merge-sorts the (already per-segment-sorted) records — staged through
//     a transient reserved-keys buffer, the Section 5.7 footprint — and
//     emits them to fn outside the region, so retries never re-deliver.
//
// The hop to the next leaf reuses the (address, seqno) pair sampled inside
// the current leaf's region as the connection point; if validation of the
// next leaf fails, the scan re-traverses from the root at the first
// unvisited key.
func (t *Tree) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	if max <= 0 {
		return 0
	}
	visited := 0
	cur := from
	chainLeaf := simmem.NilAddr
	var chainSeq uint64
	buf := make([]pair, 0, t.leafCap())

	for {
		var leaf simmem.Addr
		var s0 uint64
		if chainLeaf != simmem.NilAddr {
			leaf, s0 = chainLeaf, chainSeq
		} else {
			leaf, s0 = t.upper(th, cur)
		}
		ccm := t.ccmAddr(leaf)
		th.NoteNode(uint64(leaf))
		t.lockLeaf(th.P, ccm)
		ok := false
		next := simmem.NilAddr
		var nextSeq uint64
		th.Execute(t.lowerPol, func(tx *htm.Tx) {
			ok, next, nextSeq = false, simmem.NilAddr, 0
			if tx.Load(leaf+offSeqno) != s0 {
				return
			}
			buf = t.collectLive(tx, leaf, buf[:0])
			next = simmem.Addr(tx.Load(leaf + offNext))
			if next != simmem.NilAddr {
				nextSeq = tx.Load(next + offSeqno)
			}
			ok = true
		})
		t.unlockLeaf(th.P, ccm)
		if !ok {
			t.rootRetries.Add(1)
			chainLeaf = simmem.NilAddr
			continue
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].k < buf[b].k })
		// Transient reserved-keys staging, accounted under TagReserved.
		var staging simmem.Addr
		if len(buf) > 0 {
			staging = t.a.AllocAligned(th.P, 2*len(buf), simmem.TagReserved)
		}
		stop := false
		for _, r := range buf {
			if r.k < cur {
				continue
			}
			if !fn(r.k, r.v) {
				stop = true
				break
			}
			visited++
			cur = r.k + 1
			if visited == max {
				stop = true
				break
			}
		}
		if staging != simmem.NilAddr {
			t.a.Free(th.P, staging, 2*len(buf), simmem.TagReserved)
		}
		if stop || next == simmem.NilAddr {
			return visited
		}
		chainLeaf, chainSeq = next, nextSeq
	}
}
