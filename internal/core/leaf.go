package core

import (
	"sort"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// Leaf memory layout (word offsets from the leaf base address):
//
//	line 0 (TagNodeMeta):  w0 seqno, w1 next-leaf, w2 stable count
//	stable region (TagKeys): StableCap interleaved (key,value) pairs,
//	    sorted by key; only written under the leaf's advisory lock during
//	    compaction or split, so it rarely conflicts (the paper's "reserved
//	    keys will not be updated and inserted frequently").
//	segments (TagKeys): Segments line-aligned blocks, each
//	    [count, k0,v0, k1,v1, ...], sorted within the block; all puts land
//	    here, scattered across blocks, so concurrent writers touch
//	    different cache lines.
//	CCM line (TagCCM): see ccm.go. Never accessed inside a transaction.
//
// A key may transiently exist both in a segment and in the stable region:
// a put that finds its key only in the stable region inserts a *shadow*
// copy into a segment instead of writing the stable line (keeping hot
// updates scattered). Lookups search segments before the stable region, so
// the newest copy always wins; compaction merges with segment priority.
const (
	offSeqno       = 0
	offNext        = 1
	offStableCount = 2
	offLeafData    = 8
	// convHeaderWords reserves the conventional in-node version/status
	// header at the head of the key area in the unpartitioned (+Split HTM)
	// configuration, which keeps the baseline's leaf layout: the header
	// shares a cache line with the first keys and is bumped on every
	// modification. The partitioned layout removes it — that removal is
	// part of what "+Part Leaf" buys in Figure 13.
	convHeaderWords = 2
)

// outcome is the result of one lower-region attempt.
type outcome int

const (
	oMismatch outcome = iota // seqno changed: retry from the root
	oUpdated                 // put: key existed, value replaced
	oInserted                // put: key was absent (or deleted), now present
	oFound                   // get/delete: key present
	oAbsent                  // get/delete: key not present
	oMaint                   // put: segment space exhausted; take the locked maintenance path
	oNeedMark                // put: would insert but the mark slot was not pre-incremented
)

func (t *Tree) stableK(leaf simmem.Addr, i int) simmem.Addr {
	return leaf + simmem.Addr(t.stableOff+2*i)
}
func (t *Tree) stableV(leaf simmem.Addr, i int) simmem.Addr {
	return leaf + simmem.Addr(t.stableOff+2*i+1)
}

// bumpConvHeader updates the conventional co-located node version in the
// unpartitioned configuration; a no-op for partitioned leaves.
func (t *Tree) bumpConvHeader(tx *htm.Tx, leaf simmem.Addr) {
	if t.cfg.PartLeaf {
		return
	}
	v := leaf + offLeafData
	tx.Store(v, tx.Load(v)+1)
}
func (t *Tree) segBase(leaf simmem.Addr, j int) simmem.Addr {
	return leaf + simmem.Addr(t.segOff+j*t.segStride)
}
func (t *Tree) ccmAddr(leaf simmem.Addr) simmem.Addr {
	return leaf + simmem.Addr(t.ccmOff)
}

// segment pair i lives at [base+1+2i] (key) and [base+2+2i] (value).

// prefetchLeaf issues the independent loads of a partitioned-leaf probe as
// one burst: all segment header lines plus the first stable lines. These
// are independent addresses (unlike a binary search's dependent probes),
// so they overlap in the memory pipeline — the reason the paper's
// partitioned layout costs only a few percent at low contention.
func (t *Tree) prefetchLeaf(tx *htm.Tx, leaf simmem.Addr) {
	if t.cfg.Segments == 0 {
		return
	}
	var addrs [10]simmem.Addr
	n := 0
	for j := 0; j < t.cfg.Segments && n < 8; j++ {
		addrs[n] = t.segBase(leaf, j)
		n++
	}
	addrs[n] = t.stableK(leaf, 0)
	n++
	if t.cfg.StableCap > 4 {
		addrs[n] = t.stableK(leaf, 4) // second stable line (4 pairs/line)
		n++
	}
	tx.Prefetch(addrs[:n]...)
}

// stableSearch binary-searches the stable region; returns the insertion
// index and whether the key is present (tombstones count as present — the
// caller inspects the value).
func (t *Tree) stableSearch(tx *htm.Tx, leaf simmem.Addr, key uint64) (int, bool) {
	count := int(tx.Load(leaf + offStableCount))
	lo, hi := 0, count
	for lo < hi {
		mid := (lo + hi) / 2
		if tx.Load(t.stableK(leaf, mid)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < count && tx.Load(t.stableK(leaf, lo)) == key {
		return lo, true
	}
	return lo, false
}

// segSearch looks for key in segment j. It prunes with the first/last
// comparison the paper describes, then scans the (short, sorted) segment.
// Returns the index within the segment and whether it matched.
func (t *Tree) segSearch(tx *htm.Tx, seg simmem.Addr, key uint64) (idx, count int, found bool) {
	count = int(tx.Load(seg))
	if count == 0 {
		return 0, 0, false
	}
	first := tx.Load(seg + 1)
	if key < first {
		return 0, count, false
	}
	last := tx.Load(seg + simmem.Addr(1+2*(count-1)))
	if key > last {
		return count, count, false
	}
	for i := 0; i < count; i++ {
		k := tx.Load(seg + simmem.Addr(1+2*i))
		if k == key {
			return i, count, true
		}
		if k > key {
			return i, count, false
		}
	}
	return count, count, false
}

// segInsertAt shifts segment j's pairs right from idx and installs the new
// record, keeping the segment sorted.
func (t *Tree) segInsertAt(tx *htm.Tx, seg simmem.Addr, idx, count int, key, val uint64) {
	for i := count; i > idx; i-- {
		tx.Store(seg+simmem.Addr(1+2*i), tx.Load(seg+simmem.Addr(1+2*(i-1))))
		tx.Store(seg+simmem.Addr(2+2*i), tx.Load(seg+simmem.Addr(2+2*(i-1))))
	}
	tx.Store(seg+simmem.Addr(1+2*idx), key)
	tx.Store(seg+simmem.Addr(2+2*idx), val)
	tx.Store(seg, uint64(count+1))
}

// segRemoveAt shifts segment j's pairs left over idx.
func (t *Tree) segRemoveAt(tx *htm.Tx, seg simmem.Addr, idx, count int) {
	for i := idx; i < count-1; i++ {
		tx.Store(seg+simmem.Addr(1+2*i), tx.Load(seg+simmem.Addr(1+2*(i+1))))
		tx.Store(seg+simmem.Addr(2+2*i), tx.Load(seg+simmem.Addr(2+2*(i+1))))
	}
	tx.Store(seg, uint64(count-1))
}

// homeSeg is the deterministic segment for a key, used whenever same-slot
// requests are not serialized by the CCM lock bits (see the package comment
// on the duplicate-insert hazard).
func (t *Tree) homeSeg(key uint64) int {
	x := key*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9
	x ^= x >> 33
	return int(x % uint64(t.cfg.Segments))
}

// seqnoValid is the lower region's re-validation of the sampled sequence
// number — the load-bearing check of the whole split-region protocol. The
// DisableSeqnoCheck escape hatch exists only for the checker's mutation
// self-test (a checker that cannot reject a known-broken tree proves
// nothing); it must never be set outside tests.
func (t *Tree) seqnoValid(tx *htm.Tx, leaf simmem.Addr, s0 uint64) bool {
	if t.cfg.DisableSeqnoCheck {
		return true
	}
	return tx.Load(leaf+offSeqno) == s0
}

// leafGet searches the leaf inside the lower region.
func (t *Tree) leafGet(tx *htm.Tx, leaf simmem.Addr, s0, key uint64) (outcome, uint64) {
	if !t.seqnoValid(tx, leaf, s0) {
		return oMismatch, 0
	}
	t.prefetchLeaf(tx, leaf)
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		if idx, _, found := t.segSearch(tx, seg, key); found {
			return oFound, tx.Load(seg + simmem.Addr(2+2*idx))
		}
	}
	if idx, found := t.stableSearch(tx, leaf, key); found {
		v := tx.Load(t.stableV(leaf, idx))
		if v == tree.Tombstone {
			return oAbsent, 0
		}
		return oFound, v
	}
	return oAbsent, 0
}

// leafPut performs the lower region of a put (Algorithm 2 lines 41-51 plus
// Algorithm 3's scheduler). randomSched selects the paper's random write
// scheduler (safe only while the CCM lock bits serialize the slot);
// otherwise the deterministic home segment is used.
//
// needMark is set when mark slots are enabled but the caller has not
// pre-incremented this key's slot: in that case an insertion must not be
// committed (return oNeedMark instead), because a mark increment published
// only after the commit would open a window in which the absent-key fast
// path misses a committed record. Updates never need the mark.
func (t *Tree) leafPut(tx *htm.Tx, leaf simmem.Addr, s0, key, val uint64, randomSched bool, rnd *vclock.Rand, needMark bool) outcome {
	if !t.seqnoValid(tx, leaf, s0) {
		return oMismatch
	}
	t.prefetchLeaf(tx, leaf)
	// Update in place if a segment already holds the key (newest copy).
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		if idx, _, found := t.segSearch(tx, seg, key); found {
			tx.Store(seg+simmem.Addr(2+2*idx), val)
			return oUpdated
		}
	}
	stIdx, inStable := t.stableSearch(tx, leaf, key)
	wasLive := false
	if inStable {
		wasLive = tx.Load(t.stableV(leaf, stIdx)) != tree.Tombstone
	}
	if t.cfg.Segments == 0 {
		// +Split HTM configuration: conventional sorted leaf, two-region
		// traversal only.
		if inStable {
			prev := tx.Load(t.stableV(leaf, stIdx))
			if prev == tree.Tombstone {
				if needMark {
					return oNeedMark
				}
				tx.Store(t.stableV(leaf, stIdx), val)
				t.bumpConvHeader(tx, leaf)
				return oInserted
			}
			tx.Store(t.stableV(leaf, stIdx), val)
			t.bumpConvHeader(tx, leaf)
			return oUpdated
		}
		if needMark {
			return oNeedMark
		}
		count := int(tx.Load(leaf + offStableCount))
		if count == t.cfg.StableCap {
			return oMaint
		}
		for i := count; i > stIdx; i-- {
			tx.Store(t.stableK(leaf, i), tx.Load(t.stableK(leaf, i-1)))
			tx.Store(t.stableV(leaf, i), tx.Load(t.stableV(leaf, i-1)))
		}
		tx.Store(t.stableK(leaf, stIdx), key)
		tx.Store(t.stableV(leaf, stIdx), val)
		tx.Store(leaf+offStableCount, uint64(count+1))
		t.bumpConvHeader(tx, leaf)
		return oInserted
	}
	// Partitioned leaf: the record goes to a segment (a shadow copy if a
	// live stable copy exists; lookups prefer segments, so it wins).
	if !wasLive && needMark {
		// A genuine insertion requires the mark pre-increment; shadow
		// copies of live keys are updates as far as the filter goes.
		return oNeedMark
	}
	insert := func(j int) bool {
		seg := t.segBase(leaf, j)
		idx, count, _ := t.segSearch(tx, seg, key)
		if count >= t.cfg.SegCap {
			return false
		}
		t.segInsertAt(tx, seg, idx, count, key, val)
		return true
	}
	if randomSched {
		// Algorithm 3 lines 60-63: random target, retried with a different
		// index while attempts remain.
		last := -1
		for tries := 0; tries < t.cfg.Segments; tries++ {
			j := rnd.Intn(t.cfg.Segments)
			if j == last {
				j = (j + 1) % t.cfg.Segments
			}
			last = j
			if insert(j) {
				if wasLive {
					return oUpdated
				}
				return oInserted
			}
		}
		return oMaint
	}
	if insert(t.homeSeg(key)) {
		if wasLive {
			return oUpdated
		}
		return oInserted
	}
	return oMaint
}

// leafDelete performs the lower region of a delete: it removes a segment
// copy and tombstones any live stable copy (both must go, or a stale stable
// value would resurrect). Rebalancing is deferred (Section 4.2.4):
// tombstones are physically dropped at the next compaction or split, and a
// delete that pushes the leaf past the rebalance threshold triggers one
// (see Tree.Delete). tombstoned reports whether a stable entry was marked.
func (t *Tree) leafDelete(tx *htm.Tx, leaf simmem.Addr, s0, key uint64) (out outcome, tombstoned bool) {
	if !t.seqnoValid(tx, leaf, s0) {
		return oMismatch, false
	}
	t.prefetchLeaf(tx, leaf)
	removed := false
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		if idx, count, found := t.segSearch(tx, seg, key); found {
			t.segRemoveAt(tx, seg, idx, count)
			removed = true
			break
		}
	}
	if idx, found := t.stableSearch(tx, leaf, key); found {
		if tx.Load(t.stableV(leaf, idx)) != tree.Tombstone {
			tx.Store(t.stableV(leaf, idx), tree.Tombstone)
			t.bumpConvHeader(tx, leaf)
			removed = true
			tombstoned = true
		}
	}
	if removed {
		return oFound, tombstoned
	}
	return oAbsent, false
}

// compactLeaf drops a leaf's tombstones by rewriting the stable region
// under the advisory lock — the deferred rebalance of Section 4.2.4. A
// stale seqno or an over-full leaf silently skips (the segment-overflow
// maintenance path handles those cases).
func (t *Tree) compactLeaf(th *htm.Thread, leaf simmem.Addr, s0 uint64) {
	ccm := t.ccmAddr(leaf)
	t.lockLeaf(th.P, ccm)
	var staging simmem.Addr
	var stagingWords int
	th.Execute(t.lowerPol, func(tx *htm.Tx) {
		staging, stagingWords = simmem.NilAddr, 0
		if tx.Load(leaf+offSeqno) != s0 {
			return
		}
		recs := t.collectLive(tx, leaf, make([]pair, 0, t.leafCap()))
		if len(recs) > t.cfg.StableCap {
			return
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].k < recs[b].k })
		stagingWords = 2*len(recs) + 1
		staging = tx.AllocAligned(stagingWords, simmem.TagReserved)
		t.writeStable(tx, leaf, recs)
	})
	if staging != simmem.NilAddr {
		t.a.Free(th.P, staging, stagingWords, simmem.TagReserved)
		t.compactions.Add(1)
	}
	t.a.StoreWordDirect(th.P, ccm+ccmTombs, 0)
	t.unlockLeaf(th.P, ccm)
}

// pair is a thread-local staging record.
type pair struct{ k, v uint64 }

// collectLive gathers every live record of the leaf (segment copies win
// over stable copies; tombstones dropped) into buf, unsorted.
func (t *Tree) collectLive(tx *htm.Tx, leaf simmem.Addr, buf []pair) []pair {
	inSeg := make(map[uint64]struct{}, t.cfg.Segments*t.cfg.SegCap)
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		count := int(tx.Load(seg))
		for i := 0; i < count; i++ {
			k := tx.Load(seg + simmem.Addr(1+2*i))
			v := tx.Load(seg + simmem.Addr(2+2*i))
			buf = append(buf, pair{k, v})
			inSeg[k] = struct{}{}
		}
	}
	stCount := int(tx.Load(leaf + offStableCount))
	for i := 0; i < stCount; i++ {
		k := tx.Load(t.stableK(leaf, i))
		v := tx.Load(t.stableV(leaf, i))
		if v == tree.Tombstone {
			continue
		}
		if _, shadowed := inSeg[k]; shadowed {
			continue
		}
		buf = append(buf, pair{k, v})
	}
	return buf
}

// writeStable rewrites the leaf's stable region with the given sorted
// records and clears all segments.
func (t *Tree) writeStable(tx *htm.Tx, leaf simmem.Addr, recs []pair) {
	t.bumpConvHeader(tx, leaf)
	for i, r := range recs {
		tx.Store(t.stableK(leaf, i), r.k)
		tx.Store(t.stableV(leaf, i), r.v)
	}
	tx.Store(leaf+offStableCount, uint64(len(recs)))
	for j := 0; j < t.cfg.Segments; j++ {
		tx.Store(t.segBase(leaf, j), 0)
	}
}

// leafMaint is the locked maintenance path for a put whose segment space
// was exhausted: under the leaf's advisory lock it merges segments and
// stable region (Figure 6b/6c — moveToReserved + shrinkSegs) and, if the
// leaf is genuinely full, performs the sort-split-reorganize of Figure 7
// (Algorithm 3 lines 67-86). It returns the final outcome of the put.
//
// A transient staging buffer is allocated from the arena with TagReserved
// for the duration of the reorganization and freed afterwards — this is the
// paper's "reserved keys" footprint measured in Section 5.7 (the merge
// itself stages through thread-local memory).
func (t *Tree) leafMaint(th *htm.Thread, leaf simmem.Addr, s0, key, val uint64) outcome {
	var out outcome
	var staging simmem.Addr
	var stagingWords int
	th.Execute(t.lowerPol, func(tx *htm.Tx) {
		staging, stagingWords = simmem.NilAddr, 0
		out = t.leafMaintBody(tx, leaf, s0, key, val, &staging, &stagingWords)
	})
	if staging != simmem.NilAddr {
		t.a.Free(th.P, staging, stagingWords, simmem.TagReserved)
	}
	return out
}

func (t *Tree) leafMaintBody(tx *htm.Tx, leaf simmem.Addr, s0, key, val uint64, staging *simmem.Addr, stagingWords *int) outcome {
	if tx.Load(leaf+offSeqno) != s0 {
		return oMismatch
	}
	// Re-check: a concurrent put may have inserted or updated the key (or
	// freed segment space) before we took the leaf lock.
	for j := 0; j < t.cfg.Segments; j++ {
		seg := t.segBase(leaf, j)
		if idx, _, found := t.segSearch(tx, seg, key); found {
			tx.Store(seg+simmem.Addr(2+2*idx), val)
			return oUpdated
		}
	}
	recs := t.collectLive(tx, leaf, make([]pair, 0, t.leafCap()+1))
	wasLive := false
	for i := range recs {
		if recs[i].k == key {
			recs[i].v = val
			wasLive = true
			break
		}
	}
	if !wasLive {
		recs = append(recs, pair{key, val})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].k < recs[b].k })

	// Model the reserved-keys allocation for the reorganize.
	*stagingWords = 2 * len(recs)
	*staging = tx.AllocAligned(*stagingWords, simmem.TagReserved)

	result := func() outcome {
		if wasLive {
			return oUpdated
		}
		return oInserted
	}

	if len(recs) <= t.cfg.StableCap {
		// Compaction suffices (Figure 6c): everything fits in the stable
		// region; segments empty out for new concurrent insertions. Leaf
		// membership is unchanged, so seqno stays — concurrent two-step
		// operations remain valid.
		t.writeStable(tx, leaf, recs)
		return result()
	}
	// Split (Figure 7): re-traverse from the root *inside this
	// transaction* so the parent path is consistent with the split.
	var path []simmem.Addr
	found := t.descend(tx, key, &path)
	if found != leaf {
		return oMismatch
	}
	// Structural modification begins: an injected abort here must discard
	// the half-built split wholesale.
	tx.Fault(htm.FaultMidSplit)
	half := len(recs) / 2
	right := t.newLeafTx(tx)
	t.writeStable(tx, leaf, recs[:half])
	t.writeStable(tx, right, recs[half:])
	tx.Store(right+offNext, tx.Load(leaf+offNext))
	tx.Store(leaf+offNext, uint64(right))
	tx.Store(leaf+offSeqno, s0+1)
	if t.cfg.CCMMarkBits {
		t.initMarks(tx, right, recs[half:])
	}
	sep := recs[half].k
	t.insertUp(tx, path, sep, right)
	t.splits.Add(1)
	return result()
}

// initMarks computes the new (unpublished) right leaf's counting marks
// inside the split transaction.
func (t *Tree) initMarks(tx *htm.Tx, leaf simmem.Addr, recs []pair) {
	var words [2]uint64
	for _, r := range recs {
		slot := t.slotOf(r.k)
		w, shift := slot/16, (slot%16)*4
		if (words[w]>>shift)&0xf < markSaturation {
			words[w] += 1 << shift
		}
	}
	ccm := t.ccmAddr(leaf)
	tx.Store(ccm+ccmMarks0, words[0])
	tx.Store(ccm+ccmMarks1, words[1])
}

// leafCap is the maximum number of live records a leaf can hold.
func (t *Tree) leafCap() int {
	return t.cfg.StableCap + t.cfg.Segments*t.cfg.SegCap
}
