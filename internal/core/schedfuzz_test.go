package core

import (
	"fmt"
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// TestScheduleFuzz explores different thread interleavings: the virtual
// scheduler's slack parameter and the per-thread RNG seeds perturb the
// (deterministic) schedule, so each variation is a distinct, reproducible
// interleaving of the same workload. Every variation must preserve the
// model and the structural invariants.
func TestScheduleFuzz(t *testing.T) {
	for _, slack := range []uint64{0, 7, 63, 511} {
		for seed := uint64(1); seed <= 3; seed++ {
			slack, seed := slack, seed
			t.Run(fmt.Sprintf("slack=%d/seed=%d", slack, seed), func(t *testing.T) {
				a := simmem.NewArena(1 << 23)
				h := htm.New(a, htm.DefaultConfig)
				boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
				tr := New(h, boot, DefaultConfig)
				const keys = 256
				// Per-key last-writer tags: worker w writes w into the low
				// byte; after the run each key's value must carry a valid
				// worker tag and the key itself in the high bits.
				sim := vclock.NewSim(6, slack)
				sim.Run(func(p *vclock.SimProc) {
					th := h.NewThread(p, seed*1000+uint64(p.ID()))
					r := vclock.NewRand(seed*77 + uint64(p.ID()))
					for i := 0; i < 400; i++ {
						k := uint64(r.Intn(keys)) + 1
						switch r.Intn(8) {
						case 0:
							tr.Delete(th, k)
						case 1, 2, 3, 4:
							tr.Put(th, k, k<<16|uint64(p.ID()))
						default:
							if v, ok := tr.Get(th, k); ok {
								if v>>16 != k || v&0xffff >= 6 {
									t.Errorf("get(%d) = %#x: foreign value", k, v)
								}
							}
						}
					}
				})
				for k := uint64(1); k <= keys; k++ {
					if v, ok := tr.Get(boot, k); ok && (v>>16 != k || v&0xffff >= 6) {
						t.Fatalf("final get(%d) = %#x", k, v)
					}
				}
				if err := tr.Validate(boot.P); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
