package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceOptions configures a TraceWriter.
type TraceOptions struct {
	// CyclesPerUsec converts event timestamps to the trace format's
	// microseconds. The default 2300 matches the simulator's modeled
	// 2.3 GHz clock; wall-clock recordings (nanosecond timestamps) should
	// pass 1000.
	CyclesPerUsec float64
}

// TraceWriter accumulates events and renders them as Chrome trace-event
// format JSON (the `chrome://tracing` / Perfetto "JSON Array Format"), so
// a whole contended virtual-time execution can be opened in a trace
// viewer: one process per recorded scenario, one track per virtual core,
// tx attempts as begin/end spans, aborts and stitches as instants,
// fallback executions and WAL flushes as complete spans.
//
// TraceWriter is not itself an Observer; call Process to allocate a named
// process lane and attach the returned Observer to a device. Collection
// is unbounded — traces are a diagnostic for bounded runs, not a
// production always-on sink.
type TraceWriter struct {
	opt TraceOptions

	mu     sync.Mutex
	procs  []string
	events []traceRecord
}

type traceRecord struct {
	pid int
	ev  Event
	seq int // arrival order, for a stable sort
}

// NewTraceWriter creates a TraceWriter emitting to w on Flush.
func NewTraceWriter(opt TraceOptions) *TraceWriter {
	if opt.CyclesPerUsec <= 0 {
		opt.CyclesPerUsec = 2300 // modeled 2.3 GHz core
	}
	return &TraceWriter{opt: opt}
}

// Process allocates a process lane named name and returns the Observer
// that records into it.
func (tw *TraceWriter) Process(name string) Observer {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	tw.procs = append(tw.procs, name)
	return &traceProc{tw: tw, pid: len(tw.procs) - 1}
}

type traceProc struct {
	tw  *TraceWriter
	pid int
}

func (p *traceProc) Event(e Event) {
	tw := p.tw
	tw.mu.Lock()
	tw.events = append(tw.events, traceRecord{pid: p.pid, ev: e, seq: len(tw.events)})
	tw.mu.Unlock()
}

// chromeEvent is one trace-event JSON object.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Encode renders the accumulated events as a single JSON document. It
// may be called repeatedly (e.g. periodic dumps of a long run).
func (tw *TraceWriter) Encode(w io.Writer) error {
	tw.mu.Lock()
	recs := append([]traceRecord(nil), tw.events...)
	procs := append([]string(nil), tw.procs...)
	tw.mu.Unlock()

	// Stable time order; the viewer requires B before its matching E.
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].ev.TS != recs[j].ev.TS {
			return recs[i].ev.TS < recs[j].ev.TS
		}
		return recs[i].seq < recs[j].seq
	})

	out := make([]chromeEvent, 0, len(recs)+len(procs))
	for pid, name := range procs {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	us := func(cycles uint64) float64 { return float64(cycles) / tw.opt.CyclesPerUsec }
	for _, r := range recs {
		e := r.ev
		ce := chromeEvent{Pid: r.pid, Tid: int64(e.Proc), Ts: us(e.TS)}
		switch e.Kind {
		case EvTxBegin:
			ce.Name, ce.Ph = "tx", "B"
		case EvTxCommit:
			ce.Name, ce.Ph = "tx", "E"
			ce.Args = map[string]any{"result": "commit"}
		case EvTxAbort:
			ce.Name, ce.Ph = "tx", "E"
			ce.Args = map[string]any{
				"result": "abort",
				"reason": e.ReasonName(),
				"line":   e.Line,
				"tag":    e.TagName(),
			}
			if e.Node != 0 {
				ce.Args["node"] = e.Node
			}
		case EvFallback:
			ce.Name, ce.Ph = "fallback", "X"
			ce.Ts = us(e.TS - min(e.Dur, e.TS))
			d := us(e.Dur)
			ce.Dur = &d
		case EvStitch:
			ce.Name, ce.Ph, ce.S = "stitch", "i", "t"
			ce.Args = map[string]any{"node": e.Node}
		case EvWALFlush:
			ce.Name, ce.Ph = "wal-flush", "X"
			ce.Ts = us(e.TS - min(e.Dur, e.TS))
			d := us(e.Dur)
			ce.Dur = &d
			ce.Args = map[string]any{"frames": e.Node, "bytes": e.Line}
		default:
			continue
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":`); err != nil {
		return err
	}
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// Len reports how many events have been recorded.
func (tw *TraceWriter) Len() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return len(tw.events)
}
