// Package obs is the observability layer: a stream of structured events
// emitted by the HTM device, the core tree, and the durability engine,
// consumed by pluggable Observers (contention heatmaps, Chrome-trace
// writers, user callbacks).
//
// Design constraints, in priority order:
//
//  1. Zero cost when disabled. Every emission site is guarded by a single
//     nil check on an observer field (the same pattern as the fault
//     injector), so the paper-faithful figure runs are bit-identical with
//     observability compiled in but not installed.
//  2. Zero *virtual-time* cost even when enabled. Observer callbacks never
//     call Proc.Tick, so attaching a heatmap or trace writer cannot move a
//     deterministic virtual-time run by a single cycle — goldens hold with
//     observability on.
//  3. No dependency on the emitting packages. Event carries raw ordinals
//     (abort reason, allocation tag) rather than the htm/simmem enum types;
//     the emitting package registers name functions at init so consumers
//     can still render human-readable labels.
//
// Observers must be safe for concurrent use: under wall-clock execution
// every worker goroutine delivers events directly.
package obs

import "sync/atomic"

// EventKind discriminates Event records.
type EventKind uint8

// Event kinds. The tx triple brackets one transaction attempt; Stitch
// marks the non-transactional window between the Euno-B+Tree's two HTM
// regions; Fallback spans a global-lock execution; WALFlush reports one
// group-commit fsync.
const (
	EvNone EventKind = iota
	// EvTxBegin marks a transaction attempt starting (TS = begin cycles).
	EvTxBegin
	// EvTxCommit marks a successful commit (Dur = attempt cycles).
	EvTxCommit
	// EvTxAbort marks an aborted attempt. Reason is the abort-reason
	// ordinal, Line the conflicting cache line (0 when not a memory
	// conflict), Tag the line's allocation-tag ordinal, Node the annotated
	// tree node if the emitting tree provided one (0 otherwise), and Dur
	// the cycles wasted in the attempt.
	EvTxAbort
	// EvFallback spans one global-lock execution, including lock acquire
	// (Dur = cycles from acquire start to body completion).
	EvFallback
	// EvStitch marks the stitch window between the Euno two-region
	// protocol's upper and lower HTM regions (Node = the connection leaf).
	EvStitch
	// EvWALFlush reports one durability group-commit fsync. Timestamps for
	// this kind are wall-clock nanoseconds, not virtual cycles: Dur is the
	// fsync latency, Node the frames in the batch, Line the bytes written,
	// Proc the WAL shard index.
	EvWALFlush
	NumEventKinds
)

// String returns a short name for the kind.
func (k EventKind) String() string {
	switch k {
	case EvNone:
		return "none"
	case EvTxBegin:
		return "tx-begin"
	case EvTxCommit:
		return "tx-commit"
	case EvTxAbort:
		return "tx-abort"
	case EvFallback:
		return "fallback"
	case EvStitch:
		return "stitch"
	case EvWALFlush:
		return "wal-flush"
	default:
		return "kind(?)"
	}
}

// Event is one observability record. Field meaning varies a little by
// Kind (documented on the kind constants); the common core is: TS is the
// event's virtual-cycle timestamp (wall ns for EvWALFlush), Proc the
// emitting virtual core, and Dur the spanned duration for span-like kinds.
type Event struct {
	Kind   EventKind
	Reason uint8 // abort-reason ordinal (EvTxAbort); see ReasonName
	Tag    uint8 // allocation-tag ordinal of Line (EvTxAbort); see TagName
	Proc   int32
	TS     uint64
	Dur    uint64
	Line   uint64 // conflicting cache line, or flushed bytes (EvWALFlush)
	Node   uint64 // annotated tree node, or flushed frames (EvWALFlush)
}

// Observer consumes events. Implementations must be safe for concurrent
// use (wall-clock workers call Event directly) and must be fast: the
// callback runs on the operation's critical path. Observers must never
// call back into the emitting DB/device.
type Observer interface {
	Event(Event)
}

// nameFn renders an ordinal; registered by the emitting package.
type nameFn func(uint8) string

var (
	reasonNames atomic.Value // nameFn
	tagNames    atomic.Value // nameFn
)

// SetReasonNames registers the abort-reason renderer (called from the htm
// package's init, breaking what would otherwise be an import cycle).
func SetReasonNames(fn func(uint8) string) { reasonNames.Store(nameFn(fn)) }

// SetTagNames registers the allocation-tag renderer.
func SetTagNames(fn func(uint8) string) { tagNames.Store(nameFn(fn)) }

// ReasonName renders the abort-reason ordinal of an EvTxAbort event.
func (e Event) ReasonName() string { return render(&reasonNames, e.Reason) }

// TagName renders the allocation-tag ordinal of an EvTxAbort event.
func (e Event) TagName() string { return render(&tagNames, e.Tag) }

func render(v *atomic.Value, ord uint8) string {
	if fn, ok := v.Load().(nameFn); ok {
		return fn(ord)
	}
	return "?"
}

// multi fans one event out to several observers in order.
type multi []Observer

func (m multi) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// Multi combines observers into one, skipping nil entries. It returns nil
// when no non-nil observer remains and the observer itself when exactly
// one does, so emission sites keep their single nil-check fast path.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}
