package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func abortEvent(node, line, ts uint64, reason uint8) Event {
	return Event{Kind: EvTxAbort, Reason: reason, Node: node, Line: line, TS: ts}
}

func TestHeatmapCounts(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{})
	for i := 0; i < 10; i++ {
		h.Event(abortEvent(7, 100, uint64(i), 2))
	}
	h.Event(Event{Kind: EvTxCommit}) // non-abort kinds are ignored
	seen, sampled := h.Seen()
	if seen != 10 || sampled != 10 {
		t.Fatalf("seen/sampled = %d/%d, want 10/10", seen, sampled)
	}
	hot := h.Hot()
	if len(hot) != 1 || hot[0].ID != 7 || !hot[0].Annotated || hot[0].Total != 10 {
		t.Fatalf("hot = %+v", hot)
	}
	if hot[0].ByReason[2] != 10 {
		t.Fatalf("ByReason = %v", hot[0].ByReason)
	}
	if hot[0].FirstTS != 0 || hot[0].LastTS != 9 {
		t.Fatalf("TS bracket = [%d,%d], want [0,9]", hot[0].FirstTS, hot[0].LastTS)
	}
}

func TestHeatmapUnannotatedFallsBackToLine(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{})
	h.Event(abortEvent(0, 42, 1, 1))
	hot := h.Hot()
	if len(hot) != 1 || hot[0].ID != 42 || hot[0].Annotated {
		t.Fatalf("hot = %+v, want unannotated line 42", hot)
	}
}

func TestHeatmapSampling(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{SampleEvery: 4})
	for i := 0; i < 100; i++ {
		h.Event(abortEvent(1, 1, uint64(i), 1))
	}
	seen, sampled := h.Seen()
	if seen != 100 || sampled != 25 {
		t.Fatalf("seen/sampled = %d/%d, want 100/25", seen, sampled)
	}
}

func TestHeatmapRingWrap(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{RingSize: 4})
	for i := uint64(0); i < 6; i++ {
		h.Event(abortEvent(1, 1, i, 1))
	}
	ring := h.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring len = %d, want 4", len(ring))
	}
	for i, e := range ring {
		if e.TS != uint64(i)+2 {
			t.Fatalf("ring[%d].TS = %d, want %d (oldest first)", i, e.TS, i+2)
		}
	}
}

// TestHeatmapHotSurvivesChurn: with far more distinct cold sites than
// table slots, a persistently hot leaf must stay in the table.
func TestHeatmapHotSurvivesChurn(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{TableSize: 8})
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			h.Event(abortEvent(999, 1, uint64(i), 1)) // the hot leaf
		} else {
			h.Event(abortEvent(uint64(1000+i), 1, uint64(i), 1)) // one-off churn
		}
	}
	hot := h.Hot()
	if len(hot) == 0 || hot[0].ID != 999 {
		t.Fatalf("hot leaf lost to churn: %+v", hot)
	}
	if hot[0].Total < 1500 {
		t.Fatalf("hot leaf total = %d, want ~2000", hot[0].Total)
	}
	if len(hot) > 8 {
		t.Fatalf("table exceeded bound: %d entries", len(hot))
	}
}

// TestHeatmapDeterministic: same event stream, same configuration — the
// reservoir admission RNG is seeded, so results are bit-identical.
func TestHeatmapDeterministic(t *testing.T) {
	run := func() []LeafHeat {
		h := NewHeatmap(HeatmapConfig{TableSize: 4})
		x := uint64(88172645463325252)
		for i := 0; i < 2000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			h.Event(abortEvent(x%64, 1, uint64(i), uint8(x%6)))
		}
		return h.Hot()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic heatmap:\n%v\n%v", a, b)
	}
}

func TestHeatmapReset(t *testing.T) {
	h := NewHeatmap(HeatmapConfig{})
	h.Event(abortEvent(1, 1, 1, 1))
	h.Reset()
	if seen, _ := h.Seen(); seen != 0 || len(h.Hot()) != 0 || len(h.Ring()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must be nil")
	}
	h := NewHeatmap(HeatmapConfig{})
	if got := Multi(nil, h, nil); got != Observer(h) {
		t.Fatalf("Multi with one live observer must return it directly, got %T", got)
	}
	h2 := NewHeatmap(HeatmapConfig{})
	m := Multi(h, h2)
	m.Event(abortEvent(1, 1, 1, 1))
	s1, _ := h.Seen()
	s2, _ := h2.Seen()
	if s1 != 1 || s2 != 1 {
		t.Fatalf("fan-out failed: %d/%d", s1, s2)
	}
}

// TestTraceEncode: the rendered document must be valid JSON in the
// Chrome trace-event format, with B/E attempt spans, instant stitches and
// complete (X) spans for fallbacks and WAL flushes.
func TestTraceEncode(t *testing.T) {
	tw := NewTraceWriter(TraceOptions{CyclesPerUsec: 1000})
	o := tw.Process("test-run")
	o.Event(Event{Kind: EvTxBegin, Proc: 1, TS: 1000, Node: 7})
	o.Event(Event{Kind: EvTxAbort, Proc: 1, TS: 3000, Dur: 2000, Reason: 2, Line: 9, Node: 7})
	o.Event(Event{Kind: EvTxBegin, Proc: 1, TS: 4000})
	o.Event(Event{Kind: EvTxCommit, Proc: 1, TS: 6000, Dur: 2000})
	o.Event(Event{Kind: EvStitch, Proc: 1, TS: 6500, Node: 7})
	o.Event(Event{Kind: EvFallback, Proc: 2, TS: 9000, Dur: 1500})
	o.Event(Event{Kind: EvWALFlush, Proc: 0, TS: 12000, Dur: 3000, Line: 4096, Node: 3})
	if tw.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tw.Len())
	}

	var buf bytes.Buffer
	if err := tw.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 7 events + 1 process_name metadata record.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("traceEvents = %d, want 8", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
	}
	if phases["M"] != 1 || phases["B"] != 2 || phases["E"] != 2 || phases["i"] != 1 || phases["X"] != 2 {
		t.Fatalf("phase histogram = %v", phases)
	}
	// Time order must hold for the viewer, and a B must precede its E.
	last := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < last {
			t.Fatalf("events out of order at ts=%v", e.Ts)
		}
		last = e.Ts
	}
}

// TestTraceConcurrentLanes: multiple goroutines recording into separate
// process lanes concurrently (the wall-clock delivery shape) must not
// race or lose events.
func TestTraceConcurrentLanes(t *testing.T) {
	tw := NewTraceWriter(TraceOptions{})
	var wg sync.WaitGroup
	const lanes, per = 4, 500
	for l := 0; l < lanes; l++ {
		o := tw.Process(fmt.Sprintf("lane-%d", l))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Event(Event{Kind: EvTxBegin, TS: uint64(i)})
				o.Event(Event{Kind: EvTxCommit, TS: uint64(i) + 1})
			}
		}()
	}
	wg.Wait()
	if tw.Len() != lanes*per*2 {
		t.Fatalf("Len = %d, want %d", tw.Len(), lanes*per*2)
	}
	var buf bytes.Buffer
	if err := tw.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON under concurrency")
	}
}

func TestReasonNameFallback(t *testing.T) {
	// The htm package is not linked into this test binary's init path for
	// obs alone only when nothing registered; but registration may have
	// happened via other imports. Render must never panic either way.
	_ = Event{Reason: 3}.ReasonName()
	_ = Event{Tag: 2}.TagName()
	if EvTxAbort.String() != "tx-abort" || EventKind(200).String() != "kind(?)" {
		t.Fatal("EventKind.String misrenders")
	}
}
