package obs

import "sync"

// HeatmapConfig sizes a Heatmap. Zero fields take defaults.
type HeatmapConfig struct {
	// SampleEvery keeps every Nth abort event (1 = keep all, the default).
	// Sampling bounds observer overhead on abort storms; the hot-leaf
	// ranking is scale-invariant under uniform sampling.
	SampleEvery int
	// RingSize bounds the most-recent-events ring (default 4096).
	RingSize int
	// TableSize bounds the hot-leaf table (default 64 entries).
	TableSize int
	// Seed drives the deterministic admission RNG (default 1).
	Seed uint64
}

// heatDefaults fills zero fields.
func (c HeatmapConfig) withDefaults() HeatmapConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.TableSize <= 0 {
		c.TableSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LeafHeat is one hot-leaf table entry: the abort pressure observed on one
// tree node (or, for trees that do not annotate nodes, one cache line).
type LeafHeat struct {
	// ID is the annotated node id when Annotated, else the conflicting
	// cache line index.
	ID        uint64
	Annotated bool
	// Tag is the allocation-tag ordinal of the last conflicting line.
	Tag uint8
	// Total counts sampled aborts attributed to this leaf; ByReason splits
	// them by abort-reason ordinal.
	Total    uint64
	ByReason [16]uint64
	// FirstTS and LastTS bracket the observed aborts (virtual cycles).
	FirstTS, LastTS uint64
}

// Heatmap is an Observer accumulating per-leaf abort pressure: a bounded
// ring of recent abort events plus a bounded table of the hottest leaves.
//
// The table uses reservoir-style admission: while it has room every new
// leaf enters; once full, a new leaf is admitted with probability
// size/(size+overflow) and evicts the coldest entry, so persistent hot
// spots survive churn while one-off conflicts wash out. Admission draws
// from a seeded xorshift RNG, keeping virtual-time runs deterministic.
//
// All other event kinds are ignored, so a Heatmap can sit on the same
// observer chain as a trace writer.
type Heatmap struct {
	mu      sync.Mutex
	cfg     HeatmapConfig
	rng     uint64
	seen    uint64 // all EvTxAbort events offered
	sampled uint64 // events kept after sampling
	dropped uint64 // leaves that lost the admission draw
	ring    []Event
	ringPos int
	wrapped bool
	table   map[uint64]*LeafHeat
}

// NewHeatmap creates a Heatmap.
func NewHeatmap(cfg HeatmapConfig) *Heatmap {
	cfg = cfg.withDefaults()
	return &Heatmap{
		cfg:   cfg,
		rng:   cfg.Seed,
		ring:  make([]Event, 0, cfg.RingSize),
		table: make(map[uint64]*LeafHeat, cfg.TableSize),
	}
}

// Event implements Observer.
func (h *Heatmap) Event(e Event) {
	if e.Kind != EvTxAbort {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	if h.cfg.SampleEvery > 1 && h.seen%uint64(h.cfg.SampleEvery) != 0 {
		return
	}
	h.sampled++
	// Ring of recent sampled aborts.
	if len(h.ring) < h.cfg.RingSize {
		h.ring = append(h.ring, e)
	} else {
		h.ring[h.ringPos] = e
		h.wrapped = true
	}
	h.ringPos = (h.ringPos + 1) % h.cfg.RingSize
	// Hot-leaf table, keyed on the annotated node when present, else the
	// conflicting line (capacity/explicit aborts with line 0 fold into one
	// "no site" bucket, which is fine — they carry no location).
	id, annotated := e.Node, true
	if id == 0 {
		id, annotated = e.Line, false
	}
	ls, ok := h.table[id]
	if !ok {
		if len(h.table) >= h.cfg.TableSize {
			over := h.sampled - uint64(h.cfg.TableSize)
			if h.next()%(uint64(h.cfg.TableSize)+over) >= uint64(h.cfg.TableSize) {
				h.dropped++
				return
			}
			h.evictColdest()
		}
		ls = &LeafHeat{ID: id, Annotated: annotated, FirstTS: e.TS}
		h.table[id] = ls
	}
	ls.Total++
	if int(e.Reason) < len(ls.ByReason) {
		ls.ByReason[e.Reason]++
	}
	ls.Tag = e.Tag
	ls.LastTS = e.TS
}

// evictColdest removes the entry with the smallest Total (oldest LastTS
// breaking ties), making room for a newly admitted leaf.
func (h *Heatmap) evictColdest() {
	var victim uint64
	var vls *LeafHeat
	for id, ls := range h.table {
		if vls == nil || ls.Total < vls.Total ||
			(ls.Total == vls.Total && ls.LastTS < vls.LastTS) {
			victim, vls = id, ls
		}
	}
	delete(h.table, victim)
}

// next advances the xorshift64 admission RNG.
func (h *Heatmap) next() uint64 {
	x := h.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.rng = x
	return x
}

// Hot returns the hot-leaf table sorted by Total descending (ID ascending
// on ties, so output is deterministic).
func (h *Heatmap) Hot() []LeafHeat {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]LeafHeat, 0, len(h.table))
	for _, ls := range h.table {
		out = append(out, *ls)
	}
	for i := 1; i < len(out); i++ { // insertion sort; table is small
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if a.Total > b.Total || (a.Total == b.Total && a.ID <= b.ID) {
				break
			}
			out[j-1], out[j] = *b, *a
		}
	}
	return out
}

// Ring returns the sampled abort events, oldest first.
func (h *Heatmap) Ring() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.wrapped {
		return append([]Event(nil), h.ring...)
	}
	out := make([]Event, 0, len(h.ring))
	out = append(out, h.ring[h.ringPos:]...)
	out = append(out, h.ring[:h.ringPos]...)
	return out
}

// Seen reports how many aborts were offered and how many were kept after
// sampling.
func (h *Heatmap) Seen() (aborts, sampled uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seen, h.sampled
}

// Reset clears all accumulated state (configuration and RNG position are
// kept).
func (h *Heatmap) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen, h.sampled, h.dropped = 0, 0, 0
	h.ring = h.ring[:0]
	h.ringPos, h.wrapped = 0, false
	clear(h.table)
}
