package simmem

import (
	"sync"
	"testing"
	"testing/quick"

	"eunomia/internal/vclock"
)

func testProc() *vclock.WallProc { return vclock.NewWallProc(0, 0) }

func TestAddrMath(t *testing.T) {
	cases := []struct {
		addr Addr
		line uint64
		off  uint
	}{
		{0, 0, 0}, {7, 0, 7}, {8, 1, 0}, {9, 1, 1}, {63, 7, 7}, {64, 8, 0},
	}
	for _, c := range cases {
		if c.addr.Line() != c.line || c.addr.WordInLine() != c.off {
			t.Errorf("addr %d: line=%d off=%d, want %d/%d",
				c.addr, c.addr.Line(), c.addr.WordInLine(), c.line, c.off)
		}
	}
}

func TestAddrMathProperty(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		return uint64(addr) == addr.Line()*WordsPerLine+uint64(addr.WordInLine())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignedAndTagged(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 5, TagKeys) // rounds to 8 words
	if x == NilAddr {
		t.Fatal("nil addr")
	}
	if uint64(x)%WordsPerLine != 0 {
		t.Fatalf("addr %d not line aligned", x)
	}
	if a.TagOf(x.Line()) != TagKeys {
		t.Fatalf("tag = %v, want keys", a.TagOf(x.Line()))
	}
	y := a.AllocAligned(p, 17, TagNodeMeta) // rounds to 24 words, 3 lines
	for l := y.Line(); l <= y.Line()+2; l++ {
		if a.TagOf(l) != TagNodeMeta {
			t.Fatalf("line %d tag = %v", l, a.TagOf(l))
		}
	}
	if x.Line() == y.Line() {
		t.Fatal("allocations share a line")
	}
}

func TestAddrZeroNeverAllocated(t *testing.T) {
	a := NewArena(1 << 10)
	p := testProc()
	for i := 0; i < 16; i++ {
		if got := a.AllocAligned(p, 8, TagOther); got == NilAddr {
			t.Fatal("allocated address 0")
		}
	}
}

func TestAccounting(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagReserved)
	if got := a.LiveBytes(); got != 64 {
		t.Fatalf("live = %d, want 64", got)
	}
	if got := a.BytesByTag(TagReserved); got != 64 {
		t.Fatalf("byTag = %d, want 64", got)
	}
	y := a.AllocAligned(p, 16, TagKeys)
	if got := a.LiveBytes(); got != 64+128 {
		t.Fatalf("live = %d, want 192", got)
	}
	a.Free(p, x, 8, TagReserved)
	if got := a.LiveBytes(); got != 128 {
		t.Fatalf("live after free = %d, want 128", got)
	}
	if got := a.BytesByTag(TagReserved); got != 0 {
		t.Fatalf("reserved bytes = %d, want 0", got)
	}
	if got := a.PeakBytes(); got != 192 {
		t.Fatalf("peak = %d, want 192", got)
	}
	a.Free(p, y, 16, TagKeys)
	if got := a.LiveBytes(); got != 0 {
		t.Fatalf("live = %d, want 0", got)
	}
}

func TestFreeListReuseIsZeroed(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagKeys)
	for w := 0; w < 8; w++ {
		a.StoreWordDirect(p, x+Addr(w), uint64(w)+100)
	}
	a.Free(p, x, 8, TagKeys)
	y := a.AllocAligned(p, 8, TagKeys)
	if y != x {
		t.Fatalf("free list did not reuse: got %d, want %d", y, x)
	}
	for w := 0; w < 8; w++ {
		if v := a.LoadWord(p, y+Addr(w)); v != 0 {
			t.Fatalf("word %d not zeroed: %d", w, v)
		}
	}
}

func TestFreeBumpsVersion(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagKeys)
	before := StateVersion(a.LineState(x.Line()))
	a.Free(p, x, 8, TagKeys)
	after := StateVersion(a.LineState(x.Line()))
	if after <= before {
		t.Fatalf("free did not advance line version: %d -> %d", before, after)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena(4 * WordsPerLine)
	p := testProc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exhaustion")
		}
	}()
	for i := 0; i < 100; i++ {
		a.AllocAligned(p, 8, TagOther)
	}
}

func TestDirectStoreBumpsVersionAndMask(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagKeys)
	v0 := StateVersion(a.LineState(x.Line()))
	a.StoreWordDirect(p, x+3, 42)
	if got := a.LoadWord(p, x+3); got != 42 {
		t.Fatalf("load = %d", got)
	}
	if v1 := StateVersion(a.LineState(x.Line())); v1 <= v0 {
		t.Fatalf("version not bumped: %d -> %d", v0, v1)
	}
	if m := a.WriteMask(x.Line()); m != 1<<3 {
		t.Fatalf("mask = %08b, want %08b", m, 1<<3)
	}
	if StateLocked(a.LineState(x.Line())) {
		t.Fatal("line left locked")
	}
}

func TestCASDirectSemantics(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagCCM)
	if !a.CASWordDirect(p, x, 0, 7) {
		t.Fatal("CAS from 0 failed")
	}
	v1 := StateVersion(a.LineState(x.Line()))
	if a.CASWordDirect(p, x, 0, 9) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if v2 := StateVersion(a.LineState(x.Line())); v2 != v1 {
		t.Fatalf("failed CAS changed version: %d -> %d", v1, v2)
	}
	if got := a.LoadWord(p, x); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestAddWordDirect(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagCCM)
	if got := a.AddWordDirect(p, x, 5); got != 5 {
		t.Fatalf("add = %d", got)
	}
	if got := a.AddWordDirect(p, x, ^uint64(0)); got != 4 { // -1
		t.Fatalf("add -1 = %d", got)
	}
}

func TestLineLockPrimitives(t *testing.T) {
	a := NewArena(1 << 12)
	p := testProc()
	x := a.AllocAligned(p, 8, TagKeys)
	line := x.Line()
	prev, ok := a.TryLockLine(line)
	if !ok {
		t.Fatal("lock failed")
	}
	if _, ok := a.TryLockLine(line); ok {
		t.Fatal("double lock succeeded")
	}
	a.RestoreLine(line, prev)
	if StateLocked(a.LineState(line)) {
		t.Fatal("restore left lock")
	}
	if StateVersion(a.LineState(line)) != StateVersion(prev) {
		t.Fatal("restore changed version")
	}
	if _, ok := a.TryLockLine(line); !ok {
		t.Fatal("relock failed")
	}
	a.UnlockLine(line, 99)
	if got := StateVersion(a.LineState(line)); got != 99 {
		t.Fatalf("version = %d, want 99", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	a := NewArena(1 << 10)
	last := a.Clock()
	for i := 0; i < 100; i++ {
		now := a.AdvanceClock()
		if now <= last {
			t.Fatalf("clock not monotonic: %d -> %d", last, now)
		}
		last = now
	}
}

func TestConcurrentDirectOps(t *testing.T) {
	// N goroutines increment one word through CAS loops; the total must be
	// exact and no line may be left locked.
	a := NewArena(1 << 12)
	setup := testProc()
	x := a.AllocAligned(setup, 8, TagCCM)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := vclock.NewWallProc(id, 16)
			for i := 0; i < each; i++ {
				for {
					old := a.LoadWord(p, x)
					if a.CASWordDirect(p, x, old, old+1) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := a.LoadWord(setup, x); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if StateLocked(a.LineState(x.Line())) {
		t.Fatal("line left locked")
	}
}

func TestTagStrings(t *testing.T) {
	seen := map[string]bool{}
	for tag := TagNone; tag < NumTags; tag++ {
		s := tag.String()
		if s == "" || seen[s] {
			t.Fatalf("tag %d has bad/duplicate name %q", tag, s)
		}
		seen[s] = true
	}
}
