package simmem

import (
	"testing"

	"eunomia/internal/vclock"
)

func costs() vclock.CostModel { return vclock.DefaultCosts }

// TestCacheHitMissCosts: the second access to an unmodified line costs the
// hit price; a committed write by another core turns it back into a miss.
func TestCacheHitMissCosts(t *testing.T) {
	a := NewArena(1 << 14)
	p := vclock.NewWallProc(1, 0)
	q := vclock.NewWallProc(2, 0)
	x := a.AllocAligned(p, 8, TagKeys)

	before := p.Now()
	a.LoadWord(p, x)
	missCost := p.Now() - before
	if missCost != costs().Miss {
		t.Fatalf("first access cost %d, want miss %d", missCost, costs().Miss)
	}
	before = p.Now()
	a.LoadWord(p, x+3) // same line
	if got := p.Now() - before; got != costs().Load {
		t.Fatalf("second access cost %d, want hit %d", got, costs().Load)
	}

	// Another core writes the line: our copy is invalidated.
	a.StoreWordDirect(q, x, 7)
	before = p.Now()
	a.LoadWord(p, x)
	if got := p.Now() - before; got != costs().Miss {
		t.Fatalf("post-invalidation access cost %d, want miss %d", got, costs().Miss)
	}

	// The writer's own copy stays fresh (NoteLineWritten).
	before = q.Now()
	a.LoadWord(q, x)
	if got := q.Now() - before; got != costs().Load {
		t.Fatalf("writer's own access cost %d, want hit %d", got, costs().Load)
	}
}

// TestPrefetchBatchCost: a burst of independent misses pays one full miss
// plus the pipelined marginal cost, and installs all lines.
func TestPrefetchBatchCost(t *testing.T) {
	a := NewArena(1 << 14)
	p := vclock.NewWallProc(1, 0)
	x := a.AllocAligned(p, 4*WordsPerLine, TagKeys)

	before := p.Now()
	a.Prefetch(p, x, x+8, x+16, x+24)
	want := costs().Miss + 3*costs().MissPipelined
	if got := p.Now() - before; got != want {
		t.Fatalf("burst cost %d, want %d", got, want)
	}
	// All four lines now hit.
	before = p.Now()
	for i := 0; i < 4; i++ {
		a.LoadWord(p, x+Addr(i*WordsPerLine))
	}
	if got := p.Now() - before; got != 4*costs().Load {
		t.Fatalf("post-prefetch loads cost %d, want %d", got, 4*costs().Load)
	}
	// Prefetching already-cached lines costs nothing.
	before = p.Now()
	a.Prefetch(p, x, x+8)
	if got := p.Now() - before; got != 0 {
		t.Fatalf("warm prefetch cost %d, want 0", got)
	}
}

// TestCacheProcIDBounds: out-of-range proc IDs are a configuration error.
func TestCacheProcIDBounds(t *testing.T) {
	a := NewArena(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range proc id")
		}
	}()
	a.LoadWord(vclock.NewWallProc(maxProcs, 0), 8)
}

// TestRetagMovesAccounting verifies the byte accounting transfer.
func TestRetagMovesAccounting(t *testing.T) {
	a := NewArena(1 << 12)
	p := vclock.NewWallProc(1, 0)
	x := a.AllocAligned(p, 3*WordsPerLine, TagKeys)
	if got := a.BytesByTag(TagKeys); got != 3*LineBytes {
		t.Fatalf("keys bytes = %d", got)
	}
	a.Retag(x, WordsPerLine, TagNodeMeta)
	if got := a.BytesByTag(TagNodeMeta); got != LineBytes {
		t.Fatalf("meta bytes = %d", got)
	}
	if got := a.BytesByTag(TagKeys); got != 2*LineBytes {
		t.Fatalf("keys bytes after retag = %d", got)
	}
	// Freeing accounts per line tag and leaves no residue.
	a.Free(p, x, 3*WordsPerLine, TagKeys)
	if a.BytesByTag(TagKeys) != 0 || a.BytesByTag(TagNodeMeta) != 0 {
		t.Fatalf("residue after free: keys=%d meta=%d",
			a.BytesByTag(TagKeys), a.BytesByTag(TagNodeMeta))
	}
}

// TestStoreWordOwnedInvalidatesAndAbortsReaders: owned stores must bump
// the version like direct stores do.
func TestStoreWordOwned(t *testing.T) {
	a := NewArena(1 << 12)
	p := vclock.NewWallProc(1, 0)
	x := a.AllocAligned(p, 8, TagKeys)
	v0 := StateVersion(a.LineState(x.Line()))
	a.StoreWordOwned(p, x+2, 9)
	if got := a.LoadWord(p, x+2); got != 9 {
		t.Fatalf("value = %d", got)
	}
	if v1 := StateVersion(a.LineState(x.Line())); v1 <= v0 {
		t.Fatalf("version not bumped: %d -> %d", v0, v1)
	}
	if m := a.WriteMask(x.Line()); m != 1<<2 {
		t.Fatalf("mask = %08b", m)
	}
}
