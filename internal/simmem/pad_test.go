package simmem

import (
	"sync/atomic"
	"testing"
	"unsafe"

	"eunomia/internal/vclock"
)

func TestPaddedUint64Layout(t *testing.T) {
	if s := unsafe.Sizeof(PaddedUint64{}); s != LineBytes {
		t.Fatalf("PaddedUint64 is %d bytes, want %d (one cache line)", s, LineBytes)
	}
	var arr [2]PaddedUint64
	d := uintptr(unsafe.Pointer(&arr[1])) - uintptr(unsafe.Pointer(&arr[0]))
	if d < LineBytes {
		t.Fatalf("adjacent PaddedUint64s are %d bytes apart, want >= %d", d, LineBytes)
	}
}

func TestDisableCostModel(t *testing.T) {
	a := NewArena(1 << 12)
	a.DisableCostModel()
	if !a.CostModelDisabled() {
		t.Fatal("CostModelDisabled() = false after DisableCostModel")
	}
	p := vclock.NewWallProc(1, 0)
	addr := a.AllocAligned(p, 8, TagKeys)
	before := p.Now()
	a.ChargeAccess(p, addr, false)
	a.ChargeAccess(p, addr, true)
	a.ChargeAccessVersioned(p, addr, 0, false)
	a.Prefetch(p, addr, addr+8)
	a.NoteLineWritten(p, addr.Line(), 1)
	if p.Now() != before {
		t.Fatalf("cost charging ticked %d cycles with the model disabled", p.Now()-before)
	}
	// Proc IDs beyond the cache model's bound must be usable: the host
	// backend hands out unbounded thread IDs.
	big := vclock.NewWallProc(10_000, 0)
	a.ChargeAccess(big, addr, false) // would panic if the cache table were consulted
	if got := a.LoadWord(big, addr); got != 0 {
		t.Fatalf("LoadWord = %d, want 0", got)
	}
}

// BenchmarkFalseSharing demonstrates why the arena's hot control words are
// padded to their own cache lines: goroutines each hammering a *different*
// counter still serialize on coherence traffic when the counters share a
// line. Run with GOMAXPROCS > 1 to see the packed/padded delta; the padded
// layout is what Arena.clock / Arena.next and the device-stats aggregates
// use on the host backend.
func BenchmarkFalseSharing(b *testing.B) {
	const slots = 16
	b.Run("packed", func(b *testing.B) {
		var counters [slots]atomic.Uint64
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			c := &counters[next.Add(1)%slots]
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	b.Run("padded", func(b *testing.B) {
		var counters [slots]PaddedUint64
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			c := &counters[next.Add(1)%slots]
			for pb.Next() {
				c.Add(1)
			}
		})
	})
}
