package simmem

import "sync/atomic"

// PaddedUint64 is an atomic counter followed by enough padding to push the
// next struct field onto a different cache line.
//
// In the emulator this is irrelevant — false sharing is *modeled* by the
// per-line version metadata, not suffered. On the host backend the arena's
// control words are real shared memory hammered by real cores, so a hot
// word that shares a line with another hot word causes genuine coherence
// ping-ponging. The global version clock (bumped by every committing
// writer) next to the allocation bump pointer was the worst offender: an
// allocating thread would invalidate every committer's cached line and vice
// versa. See BenchmarkFalseSharing in pad_test.go for the measured delta.
type PaddedUint64 struct {
	atomic.Uint64
	_ [LineBytes - 8]byte
}
