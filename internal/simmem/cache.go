package simmem

import (
	"fmt"

	"eunomia/internal/vclock"
)

// Per-proc cache model.
//
// Each virtual core owns a direct-mapped table of (line, version) entries.
// An access hits when the table holds the line *at its current version*;
// any committed write — transactional or direct — advances the line's
// version, so every other core's cached copy silently becomes a miss. This
// is a deliberately minimal model of private caches plus MESI
// invalidation: read-shared hot lines (upper index levels, a hot leaf's
// segment lines) cost CostModel.Load, anything recently written by another
// core costs CostModel.Miss. It reproduces the two locality effects the
// paper's numbers depend on: cold traversals are expensive relative to
// in-node computation, and contended lines get *more* expensive as
// contention rises (longer transactions, wider conflict windows).
//
// Concurrency contract: a proc ID must be used by at most one goroutine at
// a time (the same rule Proc itself has); each ID owns one cache.

const (
	// cacheSlots is the per-proc capacity in lines (direct-mapped). At 64
	// bytes per line this models ~64 KB of private cache.
	cacheSlots = 1024
	// maxProcs bounds the number of distinct proc IDs per arena.
	maxProcs = 256
)

type procCache struct {
	lines [cacheSlots]uint64
	vers  [cacheSlots]uint64
	valid [cacheSlots]bool
}

// cacheFor returns the proc's private cache, allocating it on first use
// (only that proc's goroutine ever touches its slot).
func (a *Arena) cacheFor(p vclock.Proc) *procCache {
	id := p.ID()
	if id < 0 || id >= maxProcs {
		panic(fmt.Sprintf("simmem: proc id %d out of [0,%d)", id, maxProcs))
	}
	c := a.caches[id]
	if c == nil {
		c = new(procCache)
		a.caches[id] = c
	}
	return c
}

// cacheSlot maps a line to its direct-mapped cache slot.
func cacheSlot(line uint64) uint64 {
	return (line * 0x9e3779b97f4a7c15 >> 33) % cacheSlots
}

// ChargeAccess charges p for touching the line containing addr: the hit
// cost if the proc's cache holds the line at its current version, the miss
// penalty otherwise (installing it). write selects the store hit cost.
func (a *Arena) ChargeAccess(p vclock.Proc, addr Addr, write bool) {
	if a.nocost {
		return
	}
	line := addr.Line()
	a.chargeAccessLine(p, line, StateVersion(a.state[line].Load()), write)
}

// ChargeAccessVersioned is ChargeAccess for callers that already validated
// the line's state word (the HTM Load path reads it twice for opacity): it
// takes the line version as an argument instead of atomically re-loading
// the state, removing a redundant atomic load from the hottest path in the
// emulator.
func (a *Arena) ChargeAccessVersioned(p vclock.Proc, addr Addr, ver uint64, write bool) {
	if a.nocost {
		return
	}
	a.chargeAccessLine(p, addr.Line(), ver, write)
}

func (a *Arena) chargeAccessLine(p vclock.Proc, line, ver uint64, write bool) {
	c := a.cacheFor(p)
	slot := cacheSlot(line)
	costs := &a.costs
	if c.valid[slot] && c.lines[slot] == line && c.vers[slot] == ver {
		if write {
			p.Tick(costs.Store)
		} else {
			p.Tick(costs.Load)
		}
		return
	}
	c.valid[slot] = true
	c.lines[slot] = line
	c.vers[slot] = ver
	p.Tick(costs.Miss)
}

// Prefetch models a burst of independent loads issued together: every
// distinct uncached line is installed in the proc's cache, and the burst
// costs one full Miss plus MissPipelined per additional miss (memory-level
// parallelism). It only affects the cost model — no values are read and no
// transactional bookkeeping happens — so it is always safe to call.
func (a *Arena) Prefetch(p vclock.Proc, addrs ...Addr) {
	if a.nocost {
		return
	}
	c := a.cacheFor(p)
	costs := &a.costs
	misses := 0
	for _, addr := range addrs {
		line := addr.Line()
		ver := StateVersion(a.state[line].Load())
		slot := cacheSlot(line)
		if c.valid[slot] && c.lines[slot] == line && c.vers[slot] == ver {
			continue
		}
		c.valid[slot] = true
		c.lines[slot] = line
		c.vers[slot] = ver
		misses++
	}
	if misses > 0 {
		p.Tick(costs.Miss + costs.MissPipelined*uint64(misses-1))
	}
}

// NoteLineWritten refreshes the writer's own cached copy after it advanced
// a line's version, so a core re-reading its own recent write still hits.
func (a *Arena) NoteLineWritten(p vclock.Proc, line uint64, newVer uint64) {
	if a.nocost {
		return
	}
	c := a.cacheFor(p)
	slot := cacheSlot(line)
	c.valid[slot] = true
	c.lines[slot] = line
	c.vers[slot] = newVer
}
