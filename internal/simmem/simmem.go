// Package simmem provides the flat, garbage-collector-free memory substrate
// that every tree in this reproduction lives in: a word-addressed arena with
// per-cache-line version/lock metadata.
//
// The paper's analysis hinges on *where fields land in cache lines*: Intel
// RTM detects conflicts at 64-byte granularity, so two threads touching
// different records that share a line conflict anyway ("false conflicts"),
// and metadata words co-located with data amplify aborts. Go's heap gives no
// such control (and the GC would abort real hardware transactions, which is
// why a native-HTM reproduction is gated). The arena restores that control:
//
//   - memory is a flat []uint64; an Addr is a word index; 8 words = 1 line;
//   - every line carries a TL2-style versioned lock word used by the HTM
//     emulator (internal/htm) for conflict detection and by the direct
//     (non-transactional) accessors for strong atomicity;
//   - every line carries the word-mask of its last writer and an allocation
//     Tag, which lets an aborting transaction classify its abort as a true
//     conflict (overlapping words), a false conflict from consecutive layout
//     (same line, disjoint words), or a shared-metadata conflict (Tag) —
//     the decomposition behind Figures 2 and 9;
//   - allocation is tag-accounted, so the reserved-keys memory overhead
//     analysis of Section 5.7 falls out of the allocator.
//
// All accessors charge cycle costs through vclock.Proc, so memory traffic is
// visible in virtual time.
package simmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eunomia/internal/vclock"
)

// Addr is a word index into an arena. Addr 0 is never allocated and serves
// as the nil address.
type Addr uint64

// NilAddr is the reserved "no address" value.
const NilAddr Addr = 0

const (
	// WordsPerLine is the number of 8-byte words per 64-byte cache line.
	WordsPerLine = 8
	// LineShift converts a word address to a line number.
	LineShift = 3
	// WordBytes is the size of one word.
	WordBytes = 8
	// LineBytes is the size of one cache line.
	LineBytes = WordsPerLine * WordBytes
)

// Line returns the cache line number containing the address.
func (a Addr) Line() uint64 { return uint64(a) >> LineShift }

// WordInLine returns the word offset of the address within its line, 0..7.
func (a Addr) WordInLine() uint { return uint(a) & (WordsPerLine - 1) }

// Tag classifies an allocation for abort attribution and memory accounting.
type Tag uint8

// Allocation tags. TagTreeMeta and TagNodeMeta mark the "pervasive shared
// metadata" the paper blames for 6-10% of conflicts; TagReserved marks the
// transient reserved-keys buffers whose footprint Section 5.7 measures.
const (
	TagNone     Tag = iota
	TagTreeMeta     // tree-global metadata: root pointer, depth, version
	TagNodeMeta     // per-node metadata lines: counts, seqno, node version
	TagKeys         // key/value storage inside nodes
	TagCCM          // conflict control module bit vectors and advisory locks
	TagReserved     // reserved-keys transient sort buffers
	TagFallback     // the HTM global fallback (elision) lock
	TagOther        // anything else
	NumTags
)

// String returns a short human-readable tag name.
func (t Tag) String() string {
	switch t {
	case TagNone:
		return "none"
	case TagTreeMeta:
		return "tree-meta"
	case TagNodeMeta:
		return "node-meta"
	case TagKeys:
		return "keys"
	case TagCCM:
		return "ccm"
	case TagReserved:
		return "reserved"
	case TagFallback:
		return "fallback"
	default:
		return "other"
	}
}

// Line-state encoding: bit 0 is the lock bit, bits 1..63 hold the version
// (a value of the arena's global clock).
const lockBit = 1

// StateLocked reports whether a line-state word is locked.
func StateLocked(s uint64) bool { return s&lockBit != 0 }

// StateVersion extracts the version from a line-state word.
func StateVersion(s uint64) uint64 { return s >> 1 }

// Arena is a fixed-capacity, word-addressed shared memory. All word accesses
// are atomic, so the arena is safe for concurrent use from real goroutines
// as well as from virtual-time procs.
type Arena struct {
	words []uint64
	state []atomic.Uint64 // per line: version<<1 | lock
	wmask []atomic.Uint32 // per line: word mask of the last committed writer
	// tags holds each line's allocation tag. Reads (abort classification)
	// can race with retag/free of a recycled line, so the slots are atomic;
	// a classification that observes the old tag is as good as one that
	// observes the new one (the abort already happened either way).
	tags []atomic.Uint32

	// clock and next are the two hottest cross-thread words in the arena
	// (every committing writer bumps clock; every allocation bumps next).
	// Each sits alone on its cache line so host-backend cores do not
	// false-share them with each other or with neighboring fields.
	clock PaddedUint64 // global TL2 version clock
	next  PaddedUint64 // bump pointer, in words

	costs vclock.CostModel

	// nocost disables the cycle-cost cache model (see DisableCostModel):
	// every Charge*/Prefetch/NoteLineWritten becomes a no-op. Set once
	// before the arena is shared; the host backend runs this way.
	nocost bool

	mu    sync.Mutex
	free  map[int][]Addr // line-aligned free lists by size class (words)
	live  atomic.Int64   // live allocated bytes
	peak  atomic.Int64
	byTag [NumTags]atomic.Int64

	caches [maxProcs]*procCache // per-proc cache model (see cache.go)
}

// NewArena creates an arena holding the given number of words (rounded up
// to a whole number of lines). The first line is reserved so that address 0
// is never valid.
func NewArena(words uint64) *Arena {
	if words < 2*WordsPerLine {
		words = 2 * WordsPerLine
	}
	words = (words + WordsPerLine - 1) &^ uint64(WordsPerLine-1)
	lines := words / WordsPerLine
	a := &Arena{
		words: make([]uint64, words),
		state: make([]atomic.Uint64, lines),
		wmask: make([]atomic.Uint32, lines),
		tags:  make([]atomic.Uint32, lines),
		costs: vclock.DefaultCosts,
		free:  make(map[int][]Addr),
	}
	a.next.Store(WordsPerLine) // reserve line 0
	return a
}

// Cap returns the arena capacity in words.
func (a *Arena) Cap() uint64 { return uint64(len(a.words)) }

// DisableCostModel switches off cycle-cost accounting and the per-proc
// cache model: ChargeAccess, ChargeAccessVersioned, Prefetch and
// NoteLineWritten become no-ops, and proc IDs are no longer bounded by the
// cache model's table. The line version/lock metadata — the part of the
// arena that carries correctness — is unaffected. The host backend calls
// this once at device construction, before the arena is shared.
func (a *Arena) DisableCostModel() { a.nocost = true }

// CostModelDisabled reports whether DisableCostModel was called.
func (a *Arena) CostModelDisabled() bool { return a.nocost }

// Clock returns the current value of the global version clock.
func (a *Arena) Clock() uint64 { return a.clock.Load() }

// AdvanceClock atomically increments the global version clock and returns
// the new value, which the caller uses as a commit timestamp.
func (a *Arena) AdvanceClock() uint64 { return a.clock.Add(1) }

// AllocAligned allocates nWords of zeroed memory starting at a cache-line
// boundary and occupying a whole number of lines, tagged for accounting and
// abort classification. It panics if the arena is exhausted: that is a
// configuration error (increase the arena size), not a recoverable runtime
// condition.
func (a *Arena) AllocAligned(p vclock.Proc, nWords int, tag Tag) Addr {
	if nWords <= 0 {
		panic(fmt.Sprintf("simmem: AllocAligned(%d)", nWords))
	}
	n := (nWords + WordsPerLine - 1) &^ (WordsPerLine - 1)
	p.Tick(a.costs.Compute * 8) // allocator bookkeeping

	a.mu.Lock()
	if lst := a.free[n]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[n] = lst[:len(lst)-1]
		a.mu.Unlock()
		a.account(n, tag)
		a.setTags(addr, n, tag)
		return addr
	}
	a.mu.Unlock()

	for {
		old := a.next.Load()
		if old+uint64(n) > uint64(len(a.words)) {
			panic(fmt.Sprintf("simmem: arena exhausted (cap %d words, need %d more); increase the arena size", len(a.words), n))
		}
		if a.next.CompareAndSwap(old, old+uint64(n)) {
			addr := Addr(old)
			a.account(n, tag)
			a.setTags(addr, n, tag)
			return addr
		}
	}
}

func (a *Arena) setTags(addr Addr, nWords int, tag Tag) {
	first := addr.Line()
	last := (uint64(addr) + uint64(nWords) - 1) >> LineShift
	for l := first; l <= last; l++ {
		a.tags[l].Store(uint32(tag))
	}
}

func (a *Arena) account(nWords int, tag Tag) {
	b := int64(nWords * WordBytes)
	live := a.live.Add(b)
	for {
		pk := a.peak.Load()
		if live <= pk || a.peak.CompareAndSwap(pk, live) {
			break
		}
	}
	a.byTag[tag].Add(b)
}

// Free returns a line-aligned allocation to the free list. The memory is
// zeroed through version-bumping stores so that any in-flight transaction
// still holding the address aborts instead of observing recycled contents.
// nWords must match the original request (it is rounded the same way).
func (a *Arena) Free(p vclock.Proc, addr Addr, nWords int, tag Tag) {
	if addr == NilAddr {
		return
	}
	n := (nWords + WordsPerLine - 1) &^ (WordsPerLine - 1)
	if uint64(addr)&(WordsPerLine-1) != 0 {
		panic(fmt.Sprintf("simmem: Free of unaligned addr %d", addr))
	}
	for i := 0; i < n; i += WordsPerLine {
		base := addr + Addr(i)
		line := base.Line()
		a.lockLineSpin(p, line)
		for w := 0; w < WordsPerLine; w++ {
			atomic.StoreUint64(&a.words[base+Addr(w)], 0)
		}
		a.wmask[line].Store(0xff)
		a.state[line].Store(a.AdvanceClock() << 1)
		p.Tick(a.costs.Store * WordsPerLine)
		// Per-line tag accounting: parts of the allocation may have been
		// retagged (node metadata, CCM lines).
		a.byTag[Tag(a.tags[line].Load())].Add(-LineBytes)
		a.tags[line].Store(uint32(tag))
	}
	a.live.Add(int64(-n * WordBytes))
	a.mu.Lock()
	a.free[n] = append(a.free[n], addr)
	a.mu.Unlock()
}

// LiveBytes returns the number of currently allocated bytes.
func (a *Arena) LiveBytes() int64 { return a.live.Load() }

// PeakBytes returns the high-water mark of allocated bytes.
func (a *Arena) PeakBytes() int64 { return a.peak.Load() }

// BytesByTag returns the live bytes attributed to one allocation tag.
func (a *Arena) BytesByTag(t Tag) int64 { return a.byTag[t].Load() }

// TagOf returns the allocation tag of a line.
func (a *Arena) TagOf(line uint64) Tag { return Tag(a.tags[line].Load()) }

// Retag reassigns the classification tag of the lines spanned by
// [addr, addr+nWords). Trees use it to mark a node's metadata line
// differently from its key lines so abort classification can distinguish
// shared-metadata conflicts from data conflicts. The byte accounting for
// the retagged span moves to the new tag. Must be called before the memory
// is shared (typically right after allocation).
func (a *Arena) Retag(addr Addr, nWords int, tag Tag) {
	first := addr.Line()
	last := (uint64(addr) + uint64(nWords) - 1) >> LineShift
	old := Tag(a.tags[first].Load())
	for l := first; l <= last; l++ {
		a.tags[l].Store(uint32(tag))
	}
	b := int64(nWords * WordBytes)
	a.byTag[old].Add(-b)
	a.byTag[tag].Add(b)
}

// --- line-state primitives (used by internal/htm and the direct ops) ---

// LineState returns the current state word of a line.
func (a *Arena) LineState(line uint64) uint64 { return a.state[line].Load() }

// TryLockLine attempts to acquire a line's lock. On success it returns the
// previous (unlocked) state and true; if the line is already locked it
// returns the observed state and false.
func (a *Arena) TryLockLine(line uint64) (prev uint64, ok bool) {
	s := a.state[line].Load()
	if StateLocked(s) {
		return s, false
	}
	if a.state[line].CompareAndSwap(s, s|lockBit) {
		return s, true
	}
	return a.state[line].Load(), false
}

// UnlockLine releases a locked line, installing a new version.
func (a *Arena) UnlockLine(line uint64, newVer uint64) {
	a.state[line].Store(newVer << 1)
}

// RestoreLine releases a locked line without changing its version (used
// when the lock holder made no modification, e.g. a failed direct CAS).
func (a *Arena) RestoreLine(line uint64, prevState uint64) {
	a.state[line].Store(prevState)
}

// lockLineSpin acquires a line lock, charging spin cost while it waits.
func (a *Arena) lockLineSpin(p vclock.Proc, line uint64) (prev uint64) {
	for {
		s, ok := a.TryLockLine(line)
		if ok {
			p.Tick(a.costs.CAS)
			return s
		}
		p.Tick(a.costs.SpinIter)
	}
}

// SetWriteMask publishes the word mask of the most recent committed writer
// of a line; mask bit i corresponds to word i of the line.
func (a *Arena) SetWriteMask(line uint64, mask uint8) {
	a.wmask[line].Store(uint32(mask))
}

// WriteMask returns the word mask of the last committed writer of a line.
func (a *Arena) WriteMask(line uint64) uint8 { return uint8(a.wmask[line].Load()) }

// WordRaw atomically reads a word with no cost accounting and no state
// checks. It is intended for the HTM engine (which does its own accounting)
// and for tests.
func (a *Arena) WordRaw(addr Addr) uint64 {
	return atomic.LoadUint64(&a.words[addr])
}

// SetWordRaw atomically writes a word with no cost accounting and no state
// maintenance. The caller must hold the line lock or otherwise guarantee
// exclusion (e.g. single-threaded initialization).
func (a *Arena) SetWordRaw(addr Addr, v uint64) {
	atomic.StoreUint64(&a.words[addr], v)
}

// --- direct (non-transactional) accessors ---
//
// These model plain and atomic instructions executed outside any HTM
// region. Stores and CASes lock the line and advance its version so that
// conflicting hardware transactions abort — the "strong atomicity" of
// Intel RTM. Single-word loads need no validation: a word load is atomic
// and always observes a committed value under the lazy-versioning commit
// protocol in internal/htm.

// LoadWord performs a direct single-word load.
func (a *Arena) LoadWord(p vclock.Proc, addr Addr) uint64 {
	a.ChargeAccess(p, addr, false)
	return atomic.LoadUint64(&a.words[addr])
}

// StoreWordDirect performs a direct single-word store, bumping the line
// version so concurrent transactions that read the line abort.
func (a *Arena) StoreWordDirect(p vclock.Proc, addr Addr, v uint64) {
	a.ChargeAccess(p, addr, true)
	line := addr.Line()
	a.lockLineSpin(p, line)
	atomic.StoreUint64(&a.words[addr], v)
	a.wmask[line].Store(1 << addr.WordInLine())
	ver := a.AdvanceClock()
	a.state[line].Store(ver << 1)
	a.NoteLineWritten(p, line, ver)
}

// StoreWordOwned performs an atomic store to a line whose exclusion the
// caller already guarantees through an application-level lock (e.g. a
// Masstree node lock). It skips the line-lock handshake but still advances
// the line version, so other cores' cached copies are invalidated and
// overlapping transactions abort.
func (a *Arena) StoreWordOwned(p vclock.Proc, addr Addr, v uint64) {
	a.ChargeAccess(p, addr, true)
	line := addr.Line()
	atomic.StoreUint64(&a.words[addr], v)
	a.wmask[line].Store(1 << addr.WordInLine())
	ver := a.AdvanceClock()
	a.state[line].Store(ver << 1)
	a.NoteLineWritten(p, line, ver)
}

// CASWordDirect performs a direct compare-and-swap on one word. A failed
// CAS leaves the line version unchanged, so pure readers are not disturbed.
func (a *Arena) CASWordDirect(p vclock.Proc, addr Addr, old, new uint64) bool {
	a.ChargeAccess(p, addr, true)
	line := addr.Line()
	prev := a.lockLineSpin(p, line)
	cur := atomic.LoadUint64(&a.words[addr])
	if cur != old {
		a.RestoreLine(line, prev)
		return false
	}
	atomic.StoreUint64(&a.words[addr], new)
	a.wmask[line].Store(1 << addr.WordInLine())
	ver := a.AdvanceClock()
	a.state[line].Store(ver << 1)
	a.NoteLineWritten(p, line, ver)
	return true
}

// AddWordDirect atomically adds delta to a word and returns the new value,
// with the same version-bumping semantics as StoreWordDirect.
func (a *Arena) AddWordDirect(p vclock.Proc, addr Addr, delta uint64) uint64 {
	a.ChargeAccess(p, addr, true)
	line := addr.Line()
	a.lockLineSpin(p, line)
	v := atomic.LoadUint64(&a.words[addr]) + delta
	atomic.StoreUint64(&a.words[addr], v)
	a.wmask[line].Store(1 << addr.WordInLine())
	ver := a.AdvanceClock()
	a.state[line].Store(ver << 1)
	a.NoteLineWritten(p, line, ver)
	return v
}

// Costs returns the arena's cost model (shared with the HTM engine).
func (a *Arena) Costs() *vclock.CostModel { return &a.costs }
