package shard

import (
	"testing"
)

// TestTableStableRoutesLikeRouter: a stable table is a Router with an
// epoch stapled on.
func TestTableStableRoutesLikeRouter(t *testing.T) {
	for _, part := range []Partition{Hash, Range} {
		r := New(4, part)
		tb := NewTable(r)
		if tb.Epoch() != 0 || tb.Migrating() {
			t.Fatalf("%v: fresh table epoch=%d migrating=%v", part, tb.Epoch(), tb.Migrating())
		}
		for k := uint64(0); k < 10_000; k++ {
			if got, want := tb.Route(k), r.Route(k); got != want {
				t.Fatalf("%v: key %d routed to %d, router says %d", part, k, got, want)
			}
		}
	}
}

// TestEnumerateMovesRangeBounds: range-mode moves carry tight interval
// bounds, and every key claimed by a move actually changes owner.
func TestEnumerateMovesRangeBounds(t *testing.T) {
	old, new := New(2, Range), New(3, Range)
	moves := EnumerateMoves(old, new)
	if len(moves) == 0 {
		t.Fatal("no moves for 2->3 range reshard")
	}
	for _, m := range moves {
		if m.Lo > m.Hi {
			t.Fatalf("move %+v: inverted bounds", m)
		}
		for _, k := range []uint64{m.Lo, m.Hi, m.Lo + (m.Hi-m.Lo)/2} {
			if old.Route(k) != m.Src || new.Route(k) != m.Dst {
				t.Fatalf("move %+v: key %d routes old=%d new=%d", m, k, old.Route(k), new.Route(k))
			}
		}
	}
	// Every moving key is claimed by exactly one move.
	for k := uint64(0); k < 1_000_000; k += 9973 {
		o, n := old.Route(k), new.Route(k)
		claims := 0
		for _, m := range moves {
			if m.Src == o && m.Dst == n && k >= m.Lo && k <= m.Hi {
				claims++
			}
		}
		want := 0
		if o != n {
			want = 1
		}
		if claims != want {
			t.Fatalf("key %d (old=%d new=%d): claimed by %d moves, want %d", k, o, n, claims, want)
		}
	}
}

// TestMigrationCutoverFlipsOwnership: keys route to their old owner
// until their move's cutover, to the new owner after, and every key ends
// on the target topology after Finish.
func TestMigrationCutoverFlipsOwnership(t *testing.T) {
	for _, part := range []Partition{Hash, Range} {
		oldR, newR := New(3, part), New(5, part)
		tb := NewTable(oldR)
		v := tb.BeginReshard(newR, 0)
		if !v.Migrating() || v.Shards() != 5 {
			t.Fatalf("%v: begin: migrating=%v shards=%d", part, v.Migrating(), v.Shards())
		}
		keys := make([]uint64, 0, 4096)
		for k := uint64(1); k <= 1<<20; k += 257 {
			keys = append(keys, k)
		}
		for mi := range v.Moves() {
			// Before the cut: keys of move mi still route to Src.
			cur := tb.View()
			for _, k := range keys {
				i, moving := cur.MoveOf(k)
				if !moving || i != mi {
					continue
				}
				if got := cur.Route(k); got != cur.Moves()[mi].Src {
					t.Fatalf("%v: move %d key %d routed to %d pre-cut, want src %d", part, mi, k, got, cur.Moves()[mi].Src)
				}
			}
			prevGen := cur.Gen
			cur = tb.CutOver(mi)
			if cur.Gen != prevGen+1 || cur.Cut() != mi+1 {
				t.Fatalf("%v: cutover %d: gen %d->%d cut=%d", part, mi, prevGen, cur.Gen, cur.Cut())
			}
			for _, k := range keys {
				i, moving := cur.MoveOf(k)
				if !moving || i != mi {
					continue
				}
				if got := cur.Route(k); got != cur.Moves()[mi].Dst {
					t.Fatalf("%v: move %d key %d routed to %d post-cut, want dst %d", part, mi, k, got, cur.Moves()[mi].Dst)
				}
			}
		}
		fin := tb.Finish()
		if fin.Epoch != 1 || fin.Migrating() {
			t.Fatalf("%v: finish: epoch=%d migrating=%v", part, fin.Epoch, fin.Migrating())
		}
		for _, k := range keys {
			if got, want := fin.Route(k), newR.Route(k); got != want {
				t.Fatalf("%v: post-finish key %d routed to %d, want %d", part, k, got, want)
			}
		}
	}
}

// TestViewImmutableUnderSwap: a loaded View keeps answering with its own
// cut prefix after the table advances — the property the frozen-scan
// merge depends on.
func TestViewImmutableUnderSwap(t *testing.T) {
	tb := NewTable(New(2, Hash))
	tb.BeginReshard(New(4, Hash), 0)
	frozen := tb.View()
	var movingKey uint64
	found := false
	for k := uint64(1); k < 1<<20; k++ {
		if _, ok := frozen.MoveOf(k); ok {
			movingKey, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no moving key found")
	}
	before := frozen.Route(movingKey)
	for mi := range frozen.Moves() {
		tb.CutOver(mi)
	}
	tb.Finish()
	if got := frozen.Route(movingKey); got != before {
		t.Fatalf("frozen view changed its answer: %d -> %d", before, got)
	}
	if got, want := tb.Route(movingKey), New(4, Hash).Route(movingKey); got != want {
		t.Fatalf("live table routes %d, want %d", got, want)
	}
}

// TestMergeShrinksSlots: a merge keeps serving the retiring slots until
// finish, then the stable view stops routing to them.
func TestMergeShrinksSlots(t *testing.T) {
	tb := NewTableAt(New(4, Hash), 3)
	v := tb.BeginReshard(New(2, Hash), 0)
	if v.Shards() != 4 {
		t.Fatalf("mid-merge slots = %d, want 4 (sources still serving)", v.Shards())
	}
	for mi := range v.Moves() {
		tb.CutOver(mi)
	}
	fin := tb.Finish()
	if fin.Shards() != 2 || fin.Epoch != 4 {
		t.Fatalf("post-merge slots=%d epoch=%d", fin.Shards(), fin.Epoch)
	}
	for k := uint64(0); k < 100_000; k += 37 {
		if s := fin.Route(k); s >= 2 {
			t.Fatalf("key %d routed to retired slot %d", k, s)
		}
	}
}

// TestResumeMidPrefix: BeginReshard with a recovered cut prefix routes
// already-cut moves to Dst immediately (crash resume).
func TestResumeMidPrefix(t *testing.T) {
	oldR, newR := New(2, Range), New(3, Range)
	moves := EnumerateMoves(oldR, newR)
	if len(moves) < 2 {
		t.Fatalf("want >= 2 moves, got %d", len(moves))
	}
	tb := NewTable(oldR)
	v := tb.BeginReshard(newR, 1)
	if v.Cut() != 1 {
		t.Fatalf("cut = %d, want 1", v.Cut())
	}
	m0 := v.Moves()[0]
	if got := v.Route(m0.Lo); got != m0.Dst {
		t.Fatalf("resumed cut move routes to %d, want dst %d", got, m0.Dst)
	}
	if len(v.Moves()) > 1 {
		m1 := v.Moves()[1]
		if got := v.Route(m1.Lo); got != m1.Src {
			t.Fatalf("pending move routes to %d, want src %d", got, m1.Src)
		}
	}
}

// TestMoveStateRoundTrip: the manifest vocabulary survives parsing.
func TestMoveStateRoundTrip(t *testing.T) {
	for st := MovePending; st <= MoveDone; st++ {
		got, err := ParseMoveState(st.String())
		if err != nil || got != st {
			t.Fatalf("round trip %v: got %v err %v", st, got, err)
		}
	}
	if _, err := ParseMoveState("bogus"); err == nil {
		t.Fatal("bogus state parsed")
	}
}

// TestStateOf: the four-state machine derives correctly from the cut and
// purge watermarks.
func TestStateOf(t *testing.T) {
	tb := NewTable(New(2, Hash))
	v := tb.BeginReshard(New(3, Hash), 0)
	n := len(v.Moves())
	if n < 3 {
		t.Fatalf("want >= 3 moves, got %d", n)
	}
	v = tb.CutOver(0)
	v = tb.CutOver(1)
	// purged=1: move 0 done, move 1 cut over awaiting purge, move 2
	// copying, rest pending.
	if got := v.StateOf(0, 1); got != MoveDone {
		t.Fatalf("move 0: %v", got)
	}
	if got := v.StateOf(1, 1); got != MoveCutOver {
		t.Fatalf("move 1: %v", got)
	}
	if got := v.StateOf(2, 1); got != MoveCopying {
		t.Fatalf("move 2: %v", got)
	}
	if n > 3 {
		if got := v.StateOf(3, 1); got != MovePending {
			t.Fatalf("move 3: %v", got)
		}
	}
}
