package shard

import (
	"fmt"
	"sync/atomic"
)

// This file is the epoched routing table behind online resharding. A bare
// Router maps every key to one shard forever; a Table wraps two Routers —
// the serving topology and a target topology — plus the set of key
// intervals whose ownership is in flight between them. Consumers load an
// immutable View per operation (one atomic pointer load) and route
// against it; the migration engine advances the table by swapping in a
// new View, so routing is wait-free and a View, once loaded, never
// changes under the caller. That immutability is what makes a merged
// range scan sound mid-migration: the scan freezes one View and filters
// every shard's cursor by it, so each key is accepted on exactly one
// shard for the whole scan no matter how many cutovers land meanwhile.

// Move is one migration interval: the keys leaving Src for Dst when the
// topology changes from the old Router to the new one. Under Range
// partitioning the keys form the contiguous interval [Lo, Hi]; under Hash
// partitioning they are scattered (Lo/Hi span the whole key space and
// membership is decided by the two Routers), so a Move is an interval of
// the *ownership map*, not necessarily of the key line.
type Move struct {
	Src, Dst int
	Lo, Hi   uint64
}

// MoveState is one Move's position in the migration state machine, as
// journaled in the cluster's migration manifest.
type MoveState int

const (
	// MovePending moves have not started: Src still owns every key.
	MovePending MoveState = iota
	// MoveCopying is the active move: Src is authoritative, the engine is
	// bulk-copying into Dst and tracking concurrent writes for catch-up.
	MoveCopying
	// MoveCutOver moves have flipped authority to Dst; Src may still hold
	// stale copies awaiting purge.
	MoveCutOver
	// MoveDone moves are complete: copied, cut over, and purged.
	MoveDone
)

// String names the state (the manifest's on-disk vocabulary).
func (s MoveState) String() string {
	switch s {
	case MovePending:
		return "pending"
	case MoveCopying:
		return "copying"
	case MoveCutOver:
		return "cutover"
	case MoveDone:
		return "done"
	default:
		return fmt.Sprintf("MoveState(%d)", int(s))
	}
}

// ParseMoveState inverts String.
func ParseMoveState(s string) (MoveState, error) {
	for st := MovePending; st <= MoveDone; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("shard: unknown move state %q", s)
}

// View is one immutable routing snapshot. Load it once per operation (or
// once per scan) and route every decision in that operation against it.
type View struct {
	// Epoch counts completed topology changes; a freshly built cluster is
	// epoch 0, and each finished reshard adds one.
	Epoch uint64
	// Gen is the routing generation: it advances on every View swap
	// (migration begin, each cutover, finish), so a cached per-shard
	// resource built against Gen g is stale exactly when the table's Gen
	// differs. Sessions re-thread on mismatch.
	Gen uint64

	old, new Router
	// moves is the migration's interval list in cutover order; nil when
	// the topology is stable. cut is the prefix already cut over: moves
	// [0,cut) route to Dst, moves [cut, len) still route to Src.
	moves []Move
	cut   int
	// moveIdx maps src*newShards+dst to the move's index in moves.
	moveIdx map[int]int
}

// Table is the shared mutable cell: an atomic pointer to the current
// View. The zero value is invalid; build with NewTable. Swaps
// (BeginReshard/Cut/Finish) must be externally serialized — the cluster's
// migration engine is the only writer — while Route/View/Gen are safe
// from any goroutine.
type Table struct {
	v atomic.Pointer[View]
}

// NewTable builds a stable table at epoch 0 over r.
func NewTable(r Router) *Table {
	t := &Table{}
	t.v.Store(&View{old: r, new: r, Gen: 1})
	return t
}

// NewTableAt builds a stable table at a recovered epoch (reopening a
// cluster that resharded in a previous life).
func NewTableAt(r Router, epoch uint64) *Table {
	t := &Table{}
	t.v.Store(&View{old: r, new: r, Epoch: epoch, Gen: 1})
	return t
}

// View returns the current immutable routing snapshot.
func (t *Table) View() *View { return t.v.Load() }

// Gen returns the current routing generation.
func (t *Table) Gen() uint64 { return t.v.Load().Gen }

// Epoch returns the completed-reshard count.
func (t *Table) Epoch() uint64 { return t.v.Load().Epoch }

// Route is the convenience form of View().Route for callers that need a
// single routing decision with no cross-key consistency requirement.
func (t *Table) Route(key uint64) int { return t.v.Load().Route(key) }

// Migrating reports whether a topology change is in flight.
func (t *Table) Migrating() bool { return t.v.Load().Migrating() }

// Migrating reports whether this View carries in-flight moves.
func (v *View) Migrating() bool { return len(v.moves) > 0 }

// Shards returns the serving slot count: the number of shard slots an
// operation may be routed to under this View. During a split it already
// includes the destination slots; during a merge it still includes the
// retiring sources.
func (v *View) Shards() int {
	if v.new.Shards() > v.old.Shards() {
		return v.new.Shards()
	}
	return v.old.Shards()
}

// Target returns the topology the table is moving toward (equal to the
// serving Router when stable).
func (v *View) Target() Router { return v.new }

// Route returns key's owning shard under this View: the new owner once
// the key's move has cut over, the old owner before that.
func (v *View) Route(key uint64) int {
	if v.moves == nil {
		return v.new.Route(key)
	}
	o, n := v.old.Route(key), v.new.Route(key)
	if o == n {
		return o
	}
	if mi, ok := v.moveIdx[o*v.new.Shards()+n]; ok && mi < v.cut {
		return n
	}
	return o
}

// MoveOf returns the index of the move that owns key's transition, and
// whether key is moving at all under this View. A key whose old and new
// owners agree is not moving.
func (v *View) MoveOf(key uint64) (int, bool) {
	if v.moves == nil {
		return 0, false
	}
	o, n := v.old.Route(key), v.new.Route(key)
	if o == n {
		return 0, false
	}
	mi, ok := v.moveIdx[o*v.new.Shards()+n]
	return mi, ok
}

// Cut returns the cut prefix: moves [0, Cut) have flipped to Dst.
func (v *View) Cut() int { return v.cut }

// Moves returns the migration's interval list (nil when stable). The
// slice is shared and must not be mutated.
func (v *View) Moves() []Move { return v.moves }

// StateOf reports move mi's position given the purge watermark (moves
// [0, purged) are fully purged): the Table itself only distinguishes
// cut from un-cut; purge progress is the manifest's.
func (v *View) StateOf(mi, purged int) MoveState { return StateAt(mi, v.cut, purged) }

// StateAt derives move mi's state from the two watermarks alone — the
// form the migration manifest writer uses, where the cut being journaled
// may be ahead of any installed View.
func StateAt(mi, cut, purged int) MoveState {
	switch {
	case mi < purged:
		return MoveDone
	case mi < cut:
		return MoveCutOver
	case mi == cut:
		return MoveCopying
	default:
		return MovePending
	}
}

// EnumerateMoves lists the ownership intervals that change hands going
// from old to new, in deterministic cutover order (by source, then
// destination). Under Range partitioning each move carries tight [Lo,Hi]
// bounds (the intersection of the source's old interval and the
// destination's new one); under Hash the bounds span the key space and
// the pair of Routers is the membership predicate. Pairs that happen to
// own no keys are harmless: their copy is empty and their cutover
// instant.
func EnumerateMoves(old, new Router) []Move {
	var moves []Move
	if old.Partition() == Range && new.Partition() == Range {
		for s := 0; s < old.Shards(); s++ {
			sLo := old.RangeStart(s)
			sHi := rangeEnd(old, s)
			for d := 0; d < new.Shards(); d++ {
				if d == s {
					continue
				}
				lo, hi := new.RangeStart(d), rangeEnd(new, d)
				if lo < sLo {
					lo = sLo
				}
				if hi > sHi {
					hi = sHi
				}
				if lo <= hi {
					moves = append(moves, Move{Src: s, Dst: d, Lo: lo, Hi: hi})
				}
			}
		}
		return moves
	}
	for s := 0; s < old.Shards(); s++ {
		for d := 0; d < new.Shards(); d++ {
			if d == s {
				continue
			}
			moves = append(moves, Move{Src: s, Dst: d, Lo: 0, Hi: ^uint64(0)})
		}
	}
	return moves
}

// rangeEnd returns the last key shard i owns under Range partitioning.
func rangeEnd(r Router, i int) uint64 {
	if i == r.Shards()-1 {
		return ^uint64(0)
	}
	return r.RangeStart(i+1) - 1
}

// BeginReshard swaps in a migration View toward target with the given
// cut prefix already applied (0 for a fresh reshard; a recovered cluster
// resumes mid-prefix). Returns the installed View.
func (t *Table) BeginReshard(target Router, cut int) *View {
	cur := t.v.Load()
	moves := EnumerateMoves(cur.new, target)
	if cut < 0 {
		cut = 0
	}
	if cut > len(moves) {
		cut = len(moves)
	}
	idx := make(map[int]int, len(moves))
	for i, m := range moves {
		idx[m.Src*target.Shards()+m.Dst] = i
	}
	v := &View{
		Epoch:   cur.Epoch,
		Gen:     cur.Gen + 1,
		old:     cur.new,
		new:     target,
		moves:   moves,
		cut:     cut,
		moveIdx: idx,
	}
	t.v.Store(v)
	return v
}

// CutOver advances the cut prefix to include move mi (which must be the
// current prefix boundary), flipping its keys to Dst. The caller must
// hold the migration fence so no operation is mid-flight on the flipped
// interval.
func (t *Table) CutOver(mi int) *View {
	cur := t.v.Load()
	if cur.moves == nil || mi != cur.cut {
		panic(fmt.Sprintf("shard: CutOver(%d) out of order (cut=%d, moves=%d)", mi, cur.cut, len(cur.moves)))
	}
	v := &View{
		Epoch:   cur.Epoch,
		Gen:     cur.Gen + 1,
		old:     cur.old,
		new:     cur.new,
		moves:   cur.moves,
		cut:     cur.cut + 1,
		moveIdx: cur.moveIdx,
	}
	t.v.Store(v)
	return v
}

// Finish completes the migration: the table becomes stable at the target
// Router and the epoch advances.
func (t *Table) Finish() *View {
	cur := t.v.Load()
	if cur.moves != nil && cur.cut != len(cur.moves) {
		panic(fmt.Sprintf("shard: Finish with %d of %d moves cut", cur.cut, len(cur.moves)))
	}
	v := &View{Epoch: cur.Epoch + 1, Gen: cur.Gen + 1, old: cur.new, new: cur.new}
	t.v.Store(v)
	return v
}
