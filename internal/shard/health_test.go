package shard

import (
	"errors"
	"sync"
	"testing"
)

var errBoom = errors.New("boom")

func TestHealthTripAfterWindowedFailures(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 8, TripFailures: 3, RecoverSuccesses: 2})
	if got := h.State(); got != Healthy {
		t.Fatalf("initial state = %v, want healthy", got)
	}
	if !h.Allow() {
		t.Fatal("healthy shard must allow")
	}
	if h.RecordFailure(errBoom, false) {
		t.Fatal("first failure must not trip")
	}
	if got := h.State(); got != Degraded {
		t.Fatalf("after 1 failure state = %v, want degraded", got)
	}
	if !h.Allow() {
		t.Fatal("degraded shard must still allow")
	}
	if h.RecordFailure(errBoom, false) {
		t.Fatal("second failure must not trip (threshold 3)")
	}
	if !h.RecordFailure(errBoom, false) {
		t.Fatal("third windowed failure must trip")
	}
	if got := h.State(); got != Failed {
		t.Fatalf("state = %v, want failed", got)
	}
	if h.Allow() {
		t.Fatal("failed shard must not allow")
	}
	if h.Permanent() {
		t.Fatal("transient trip must not be permanent")
	}
	if st := h.Stats(); st.Trips != 1 || st.Failures != 3 || st.Cause == "" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealthSuccessesClearDegraded(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 8, TripFailures: 3, RecoverSuccesses: 2})
	h.RecordFailure(errBoom, false)
	if got := h.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	h.RecordSuccess()
	if got := h.State(); got != Degraded {
		t.Fatalf("one success: state = %v, want still degraded", got)
	}
	h.RecordSuccess()
	if got := h.State(); got != Healthy {
		t.Fatalf("two successes: state = %v, want healthy", got)
	}
	// The window forgets: old failures slide out, so spaced failures
	// never trip.
	for i := 0; i < 20; i++ {
		h.RecordFailure(errBoom, false)
		for j := 0; j < 8; j++ {
			h.RecordSuccess()
		}
	}
	if got := h.State(); got != Healthy {
		t.Fatalf("spaced failures must not trip: state = %v", got)
	}
}

func TestHealthPermanentFailureParks(t *testing.T) {
	h := NewHealth(HealthConfig{})
	if !h.RecordFailure(errBoom, true) {
		t.Fatal("permanent failure must trip immediately")
	}
	if got := h.State(); got != Failed || !h.Permanent() {
		t.Fatalf("state = %v permanent=%v, want failed/true", got, h.Permanent())
	}
	if h.BeginRecovery() {
		t.Fatal("BeginRecovery must refuse a permanent failure")
	}
}

func TestHealthRecoveryLifecycle(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 4, TripFailures: 1})
	if !h.Trip(errBoom, false) {
		t.Fatal("Trip on a healthy shard must report tripped")
	}
	if h.Trip(errBoom, false) {
		t.Fatal("second Trip must not double-count")
	}
	if h.Admit() {
		t.Fatal("Admit outside Recovering must refuse")
	}
	if !h.BeginRecovery() {
		t.Fatal("BeginRecovery on transient Failed must succeed")
	}
	if got := h.State(); got != Recovering || h.Allow() {
		t.Fatalf("state = %v allow=%v, want recovering/false", got, h.Allow())
	}
	// A failed probe sends it back to Failed; a later attempt can retry.
	h.RefuseRecovery(errBoom, false)
	if got := h.State(); got != Failed || h.Permanent() {
		t.Fatalf("refused: state = %v permanent=%v", got, h.Permanent())
	}
	if !h.BeginRecovery() {
		t.Fatal("retry after transient refusal must be allowed")
	}
	if !h.Admit() {
		t.Fatal("Admit from Recovering must succeed")
	}
	if got := h.State(); got != Healthy || !h.Allow() {
		t.Fatalf("admitted: state = %v", got)
	}
	if st := h.Stats(); st.Repairs != 1 || st.Cause != "" {
		t.Fatalf("stats after admit = %+v", st)
	}
	// A permanent refusal parks for good.
	h.Trip(errBoom, false)
	h.BeginRecovery()
	h.RefuseRecovery(errBoom, true)
	if !h.Permanent() || h.BeginRecovery() {
		t.Fatal("permanent refusal must park the shard")
	}
}

func TestHealthStaleOutcomesIgnoredWhileOpen(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 4, TripFailures: 2})
	h.Trip(errBoom, false)
	// In-flight ops racing the trip must not flap the state.
	h.RecordSuccess()
	if got := h.State(); got != Failed {
		t.Fatalf("success while failed moved state to %v", got)
	}
	if h.RecordFailure(errBoom, false) {
		t.Fatal("failure while already failed must not re-trip")
	}
	// But a permanent failure reported late still forbids repair.
	h.RecordFailure(errBoom, true)
	if !h.Permanent() {
		t.Fatal("late permanent failure must park the shard")
	}
}

func TestHealthConcurrent(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 16, TripFailures: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if (i+g)%7 == 0 {
					h.RecordFailure(errBoom, false)
				} else {
					h.RecordSuccess()
				}
				h.Allow()
				h.State()
			}
		}(g)
	}
	wg.Wait()
	h.Stats() // must not race or panic
}
