// Package shard is the keyspace-partitioning layer shared by the public
// eunomia.Cluster, the harness's cluster runner, and the cluster-level
// correctness checks. A Router maps every key to exactly one of N shards;
// the three consumers must agree on that map (a write routed by one and a
// read routed by another land on the same shard), which is why it lives in
// one package instead of three copies.
package shard

import "fmt"

// Partition selects how the key space is cut into shards.
type Partition int

const (
	// Hash spreads keys by a 64-bit mix, so every shard sees a uniform
	// slice of any workload — including a Zipfian hot set, whose hot keys
	// scatter across shards. This is the default.
	Hash Partition = iota
	// Range cuts the uint64 key space into N contiguous, equal-width
	// intervals: shard i owns [i*width, (i+1)*width). Range scans touch
	// only the shards their interval overlaps, at the price of skew
	// sensitivity (a hot contiguous region lands on one shard).
	Range
)

// String names the partition scheme.
func (p Partition) String() string {
	switch p {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Router maps keys to shards. The zero value is invalid; build with New.
// Routers are immutable and safe for concurrent use.
type Router struct {
	n     int
	part  Partition
	width uint64 // range mode: interval width
}

// New builds a router over n shards (n >= 1).
func New(n int, part Partition) Router {
	if n < 1 {
		panic(fmt.Sprintf("shard: need >= 1 shard, got %d", n))
	}
	r := Router{n: n, part: part}
	if part == Range {
		// ceil(2^64 / n) without overflow: every key / width < n.
		r.width = ^uint64(0)/uint64(n) + 1
	}
	return r
}

// Shards returns the shard count.
func (r Router) Shards() int { return r.n }

// Partition returns the partition scheme.
func (r Router) Partition() Partition { return r.part }

// Route returns the owning shard of key, in [0, Shards()).
func (r Router) Route(key uint64) int {
	if r.n == 1 {
		return 0
	}
	if r.part == Range {
		return int(key / r.width)
	}
	return int(Mix(key) % uint64(r.n))
}

// RangeStart returns the first key owned by shard i under Range
// partitioning (0 for shard 0). Hash partitioning has no contiguous
// ownership; RangeStart panics there.
func (r Router) RangeStart(i int) uint64 {
	if r.part != Range {
		panic("shard: RangeStart requires Range partitioning")
	}
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("shard: shard %d out of [0,%d)", i, r.n))
	}
	return uint64(i) * r.width
}

// Mix is the splitmix64 finalizer: a full-avalanche 64-bit mix, used for
// hash routing and for deriving seeded per-shard values (crash plans,
// kill masks) elsewhere in the tree.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
