package shard

import "testing"

func TestRouteInBounds(t *testing.T) {
	for _, part := range []Partition{Hash, Range} {
		for _, n := range []int{1, 2, 3, 4, 7, 8, 64} {
			r := New(n, part)
			keys := []uint64{0, 1, 2, 1000, ^uint64(0), ^uint64(0) - 1, 1 << 63, (1 << 63) - 1}
			for k := uint64(0); k < 10_000; k++ {
				keys = append(keys, k*7+3, Mix(k))
			}
			for _, k := range keys {
				s := r.Route(k)
				if s < 0 || s >= n {
					t.Fatalf("%v/%d: Route(%d) = %d out of bounds", part, n, k, s)
				}
			}
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	a := New(5, Hash)
	b := New(5, Hash)
	for k := uint64(0); k < 1000; k++ {
		if a.Route(k) != b.Route(k) {
			t.Fatalf("routers disagree on key %d", k)
		}
	}
}

func TestRangePartitionContiguous(t *testing.T) {
	r := New(4, Range)
	// Keys in ascending order must route to non-decreasing shards, and every
	// shard boundary must be exact: RangeStart(i) is owned by i, and the key
	// just below it by i-1.
	prev := 0
	for k := uint64(0); k < 1<<20; k += 1 << 12 {
		s := r.Route(k)
		if s < prev {
			t.Fatalf("range routing not monotone at key %d: %d -> %d", k, prev, s)
		}
		prev = s
	}
	for i := 0; i < 4; i++ {
		start := r.RangeStart(i)
		if got := r.Route(start); got != i {
			t.Fatalf("Route(RangeStart(%d)=%d) = %d", i, start, got)
		}
		if i > 0 {
			if got := r.Route(start - 1); got != i-1 {
				t.Fatalf("Route(RangeStart(%d)-1) = %d, want %d", i, got, i-1)
			}
		}
	}
	if got := r.Route(^uint64(0)); got != 3 {
		t.Fatalf("Route(MaxUint64) = %d, want 3", got)
	}
}

func TestHashSpreadsUniformly(t *testing.T) {
	const n, keys = 8, 1 << 16
	r := New(n, Hash)
	var counts [n]int
	for k := uint64(0); k < keys; k++ {
		counts[r.Route(k)]++
	}
	want := keys / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("shard %d got %d of %d keys (want ~%d): hash not spreading", i, c, keys, want)
		}
	}
}

func TestHashScattersContiguousHotSet(t *testing.T) {
	// The point of hash routing: a contiguous hot range (a Zipfian head)
	// must not land on one shard.
	r := New(4, Hash)
	seen := map[int]bool{}
	for k := uint64(0); k < 64; k++ {
		seen[r.Route(k)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first 64 keys hit only %d of 4 shards", len(seen))
	}
}

func TestNewPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Hash)
}
