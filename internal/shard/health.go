package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Per-shard health: a circuit breaker with a probation-gated recovery
// path. The state machine is
//
//	Healthy ──failure──▶ Degraded ──window trips──▶ Failed
//	   ▲                    │                         │
//	   │  consecutive       │                         │ repair loop
//	   └────successes───────┘                         ▼
//	   ▲                                          Recovering
//	   └────────────── probation passes ──────────────┘
//
// plus a terminal refinement: a *permanent* failure (data loss,
// corruption — anything a reopen cannot fix) parks the shard in Failed
// with Permanent() set, and BeginRecovery refuses to leave it.
//
// The breaker is deliberately generic: it scores opaque outcomes and
// never inspects errors itself. Classifying an error as transient vs
// permanent is the caller's job (the eunomia package knows its own error
// taxonomy; this package must not import it).

// State is a shard's serving state.
type State int32

const (
	// Healthy shards serve normally.
	Healthy State = iota
	// Degraded shards have seen recent failures but still serve; enough
	// consecutive successes restore Healthy, enough windowed failures trip
	// to Failed.
	Degraded
	// Failed shards do not serve: the breaker is open and routed
	// operations fail fast. A repair loop may move the shard to
	// Recovering — unless the failure was permanent.
	Failed
	// Recovering shards are reopened but on probation: still not serving,
	// while repair probes decide between Admit (→ Healthy) and
	// RefuseRecovery (→ Failed).
	Recovering
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// HealthConfig sizes the breaker. The zero value picks the defaults.
type HealthConfig struct {
	// Window is the sliding window of recent outcomes the breaker scores,
	// in operations (max 64 — it is a bitmask). Default 32.
	Window int
	// TripFailures is the number of failures within Window that trip
	// Degraded → Failed. Default 5.
	TripFailures int
	// RecoverSuccesses is the number of consecutive successes that clear
	// Degraded → Healthy. Default 8.
	RecoverSuccesses int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Window > 64 {
		c.Window = 64
	}
	if c.TripFailures <= 0 {
		c.TripFailures = 5
	}
	if c.TripFailures > c.Window {
		c.TripFailures = c.Window
	}
	if c.RecoverSuccesses <= 0 {
		c.RecoverSuccesses = 8
	}
	return c
}

// HealthStats is a point-in-time snapshot of one shard's breaker.
type HealthStats struct {
	State     State
	Permanent bool   // Failed with no legal path out
	Failures  uint64 // outcomes scored as failures, lifetime
	Trips     uint64 // times the breaker opened (→ Failed)
	Repairs   uint64 // times a repaired shard was re-admitted (→ Healthy)
	Cause     string // last failure cause, "" when none
}

// Health is one shard's breaker. All methods are safe for concurrent
// use; State/Allow are lock-free reads on the hot path.
type Health struct {
	cfg   HealthConfig
	state atomic.Int32

	mu        sync.Mutex
	window    uint64 // ring bitmask of the last cfg.Window outcomes, 1 = failure
	pos       int    // next bit to overwrite
	windowed  int    // failures currently in the window
	consecOK  int    // successes since the last failure
	cause     error  // last failure cause
	permanent bool

	failures atomic.Uint64
	trips    atomic.Uint64
	repairs  atomic.Uint64
}

// NewHealth builds a breaker in the Healthy state.
func NewHealth(cfg HealthConfig) *Health {
	return &Health{cfg: cfg.withDefaults()}
}

// State returns the current serving state.
func (h *Health) State() State { return State(h.state.Load()) }

// Allow reports whether the shard should serve routed operations: true
// in Healthy and Degraded, false once the breaker is open (Failed,
// Recovering).
func (h *Health) Allow() bool {
	s := State(h.state.Load())
	return s == Healthy || s == Degraded
}

// Cause returns the most recent failure cause (nil when the shard has
// never failed).
func (h *Health) Cause() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cause
}

// Permanent reports whether the shard is terminally Failed: repair must
// not attempt recovery.
func (h *Health) Permanent() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.permanent
}

// RecordSuccess scores a successful operation. Enough consecutive
// successes clear Degraded back to Healthy. Success while Failed or
// Recovering is ignored (stale in-flight ops racing the trip).
func (h *Health) RecordSuccess() {
	if s := State(h.state.Load()); s != Healthy && s != Degraded {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := State(h.state.Load())
	if s != Healthy && s != Degraded {
		return
	}
	h.push(false)
	h.consecOK++
	if s == Degraded && h.consecOK >= h.cfg.RecoverSuccesses {
		h.state.Store(int32(Healthy))
	}
}

// RecordFailure scores a failed operation and reports whether this
// failure tripped the breaker (the caller should capture the shard's
// durable watermark and start repair exactly when tripped is true). A
// permanent failure trips immediately and parks the shard.
func (h *Health) RecordFailure(cause error, permanent bool) (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := State(h.state.Load())
	if s == Failed || s == Recovering {
		// Already open: remember a permanent cause (it forbids repair),
		// otherwise just count.
		h.failures.Add(1)
		if permanent && !h.permanent {
			h.permanent = true
			h.cause = cause
		}
		return false
	}
	h.push(true)
	h.consecOK = 0
	h.cause = cause
	h.failures.Add(1)
	if permanent {
		h.permanent = true
		h.state.Store(int32(Failed))
		h.trips.Add(1)
		return true
	}
	if h.windowed >= h.cfg.TripFailures {
		h.state.Store(int32(Failed))
		h.trips.Add(1)
		return true
	}
	h.state.Store(int32(Degraded))
	return false
}

// Trip force-opens the breaker regardless of the window — for failures
// that are conclusive on their own (the shard's store is poisoned, its
// disk is gone). Reports whether this call did the tripping.
func (h *Health) Trip(cause error, permanent bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := State(h.state.Load())
	if s == Failed || s == Recovering {
		if permanent && !h.permanent {
			h.permanent = true
			h.cause = cause
		}
		return false
	}
	h.cause = cause
	h.permanent = permanent
	h.consecOK = 0
	h.state.Store(int32(Failed))
	h.trips.Add(1)
	return true
}

// BeginRecovery moves Failed → Recovering, the repair loop's claim that
// a reopen succeeded and probation is starting. Refused (returns false)
// unless the shard is Failed and the failure is not permanent.
func (h *Health) BeginRecovery() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if State(h.state.Load()) != Failed || h.permanent {
		return false
	}
	h.state.Store(int32(Recovering))
	return true
}

// RefuseRecovery aborts probation: Recovering → Failed. A permanent
// refusal (recovered state below the durable watermark — data loss)
// parks the shard for good.
func (h *Health) RefuseRecovery(cause error, permanent bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if State(h.state.Load()) != Recovering {
		return
	}
	h.cause = cause
	h.permanent = h.permanent || permanent
	h.state.Store(int32(Failed))
}

// Admit completes probation: Recovering → Healthy with a clean window.
func (h *Health) Admit() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if State(h.state.Load()) != Recovering {
		return false
	}
	h.window, h.pos, h.windowed, h.consecOK = 0, 0, 0, 0
	h.cause = nil
	h.state.Store(int32(Healthy))
	h.repairs.Add(1)
	return true
}

// Stats snapshots the breaker.
func (h *Health) Stats() HealthStats {
	h.mu.Lock()
	cause, perm := h.cause, h.permanent
	h.mu.Unlock()
	st := HealthStats{
		State:     h.State(),
		Permanent: perm,
		Failures:  h.failures.Load(),
		Trips:     h.trips.Load(),
		Repairs:   h.repairs.Load(),
	}
	if cause != nil {
		st.Cause = cause.Error()
	}
	return st
}

// push records one outcome bit into the ring window. Caller holds mu.
func (h *Health) push(failed bool) {
	bit := uint64(1) << uint(h.pos)
	if h.window&bit != 0 {
		h.windowed--
	}
	if failed {
		h.window |= bit
		h.windowed++
	} else {
		h.window &^= bit
	}
	h.pos = (h.pos + 1) % h.cfg.Window
}
