package check

import (
	"fmt"
	"sort"
)

// Violation is a checker failure: some key's sub-history admits no legal
// linearization. Ops holds the smallest failing window (a chunk of the
// key's history with no internal quiescent point), and Starts the register
// states that were reachable when the window opened.
type Violation struct {
	Key    uint64
	Ops    []Op
	Starts []regState
}

func (v *Violation) Error() string {
	return fmt.Sprintf("history not linearizable at %s", formatViolation(v))
}

// Check verifies that h is linearizable with respect to a per-key
// register-with-delete specification:
//
//	put(k,v)      — always legal (blind upsert)
//	del(k)=true   — legal iff k is present; leaves k absent
//	del(k)=false  — legal iff k is absent
//	get(k)=v      — legal iff k is present with value v
//	get(k)=absent — legal iff k is absent
//	scan observations — identical to get
//
// The search is complete: by linearizability's locality (Herlihy & Wing),
// the history is linearizable iff each per-key sub-history is. Each
// sub-history is cut at quiescent points (instants where every earlier
// operation has responded before every later one invokes — a valid
// linearization can never carry an operation across such a cut), and each
// resulting chunk is checked with an exhaustive Wing & Gong just-in-time
// linearization DFS, memoized on (linearized-set, register state), that
// computes every register state reachable at the chunk's end. The state
// sets thread the chunks together, so no legal linearization is missed and
// no illegal one is admitted. A nil return means h is linearizable; a
// non-nil return is a *Violation naming the first key that fails.
func Check(h History) error {
	byKey := map[uint64][]Op{}
	for _, o := range h.Ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	// Deterministic key order so failures are stable across runs.
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		init, hasInit := uint64(0), false
		if h.Initial != nil {
			init, hasInit = h.Initial[k]
		}
		if v := checkKey(k, byKey[k], regState{present: hasInit, val: init}); v != nil {
			return v
		}
	}
	return nil
}

// regState is the register's abstract state during the search.
type regState struct {
	present bool
	val     uint64
}

func (s regState) String() string {
	if !s.present {
		return "absent"
	}
	return fmt.Sprintf("%d", s.val)
}

// maxChunkOps bounds the mutually-overlapping window the bitset DFS can
// handle: the done-set is a uint64 bitset, so 64 is the representation's
// ceiling. A chunk only grows past the process count when operations
// chain-overlap; crash harnesses produce such windows legitimately, because
// an operation whose effect is unknown (errored mid-crash) keeps its window
// open until the end of the run, and every later operation on that key
// chains through it. Oversized chunks are therefore checked conservatively
// via overApproxEndStates rather than refused: no false violation can be
// reported, and exhaustive checking resumes at the next quiescent cut.
const maxChunkOps = 64

// checkKey verifies one key's sub-history. Returns nil if linearizable.
func checkKey(key uint64, ops []Op, start regState) *Violation {
	if len(ops) == 0 {
		return nil
	}
	sorted := append([]Op(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Inv < sorted[j].Inv })

	states := []regState{start}
	chunkStart := 0
	maxRsp := sorted[0].Rsp
	flush := func(end int) *Violation {
		chunk := sorted[chunkStart:end]
		if len(chunk) > maxChunkOps {
			// Too wide for the exhaustive search. Thread a sound
			// over-approximation of the reachable states forward instead of
			// failing the whole run; the surrounding chunks stay fully
			// checked.
			states = overApproxEndStates(chunk, states)
			return nil
		}
		next := chunkEndStates(chunk, states)
		if len(next) == 0 {
			return &Violation{Key: key, Ops: chunk, Starts: states}
		}
		states = next
		return nil
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Inv > maxRsp {
			// Quiescent cut: every op before i responded before op i (and
			// everything after it) invoked, so no linearization reorders
			// across this instant.
			if v := flush(i); v != nil {
				return v
			}
			chunkStart = i
			maxRsp = sorted[i].Rsp
		} else if sorted[i].Rsp > maxRsp {
			maxRsp = sorted[i].Rsp
		}
	}
	return flush(len(sorted))
}

// overApproxEndStates returns a superset of every register state a legal
// linearization of chunk could end in, without searching. The final state
// of any linearization is the effect of its last state-changing operation —
// some Put's value, or absent after a successful Delete — or, if the chunk
// changes nothing, an incoming state; collecting all three covers every
// case. Used when a chunk outgrows the DFS bitset: the superset means an
// oversized window can never raise a false violation (it can only fail to
// notice one confined to that window), and every later chunk is still
// checked exhaustively against states that include the truly reachable
// ones.
func overApproxEndStates(chunk []Op, in []regState) []regState {
	set := map[regState]struct{}{regState{}: {}}
	for _, st := range in {
		set[st] = struct{}{}
	}
	for _, o := range chunk {
		if o.Kind == Put {
			set[regState{present: true, val: o.Val}] = struct{}{}
		}
	}
	out := make([]regState, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].present != out[j].present {
			return !out[i].present
		}
		return out[i].val < out[j].val
	})
	return out
}

// chunkEndStates runs the exhaustive WGL search over one chunk from each
// possible starting state and returns every register state some legal
// linearization can end in (empty = no legal linearization exists).
//
// Candidate rule: an operation may linearize next iff its invocation does
// not strictly follow another unlinearized operation's response — if
// inv(o) > min unlinearized rsp, that other operation finished before o
// began and must go first. Ties count as concurrent, which only admits
// more linearizations (sound: both stamps come from one totally-ordered
// clock, so equal stamps mean genuinely indistinguishable instants).
func chunkEndStates(ops []Op, starts []regState) []regState {
	n := len(ops)
	full := uint64(1)<<uint(n) - 1
	type memoKey struct {
		done  uint64
		state regState
	}
	visited := map[memoKey]struct{}{}
	endSet := map[regState]struct{}{}

	var dfs func(done uint64, st regState)
	dfs = func(done uint64, st regState) {
		if done == full {
			endSet[st] = struct{}{}
			return
		}
		mk := memoKey{done, st}
		if _, seen := visited[mk]; seen {
			return
		}
		visited[mk] = struct{}{}
		minRsp := ^uint64(0)
		for i := 0; i < n; i++ {
			if done&(1<<uint(i)) == 0 && ops[i].Rsp < minRsp {
				minRsp = ops[i].Rsp
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			o := ops[i]
			if o.Inv > minRsp {
				continue
			}
			next, legal := apply(st, o)
			if !legal {
				continue
			}
			dfs(done|1<<uint(i), next)
		}
	}
	for _, st := range starts {
		dfs(0, st)
	}
	out := make([]regState, 0, len(endSet))
	for st := range endSet {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].present != out[j].present {
			return !out[i].present
		}
		return out[i].val < out[j].val
	})
	return out
}

// apply attempts to linearize o against state st, returning the successor
// state and whether o's observed result is legal in st.
func apply(st regState, o Op) (regState, bool) {
	switch o.Kind {
	case Put:
		return regState{present: true, val: o.Val}, true
	case Delete:
		if o.OK {
			if !st.present {
				return st, false
			}
			return regState{}, true
		}
		return st, !st.present
	case Get, ScanObs:
		if o.OK {
			return st, st.present && st.val == o.Val
		}
		return st, !st.present
	default:
		return st, false
	}
}
