package checktrees

import (
	"strings"
	"testing"

	"eunomia/internal/check"
	"eunomia/internal/htm"
)

// TestClusterSweep is the cluster-level linearizability acceptance run:
// the router + N shard devices are one checked object, so any disagreement
// between a write's route and a later read's route — or any per-shard tree
// bug — fails the sweep. Full mode runs 64 seeds on the default-geometry
// cluster (the acceptance bar) plus 32 on the split-heavy tiny cluster.
func TestClusterSweep(t *testing.T) {
	cases := []struct {
		name         string
		seeds, short int
	}{
		{"euno-cluster", 64, 12},
		{"euno-cluster-tiny", 32, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seeds := c.seeds
			if testing.Short() {
				seeds = c.short
			}
			mk, err := Lookup(c.name)
			if err != nil {
				t.Fatal(err)
			}
			histories, fail := check.Sweep(c.name, mk, check.DefaultSweep(seeds))
			if fail != nil {
				t.Fatalf("cluster sweep failed after %d histories:\n%v", histories, fail)
			}
			t.Logf("%s: %d histories linearizable (%d seeds)", c.name, histories, seeds)
		})
	}
}

// TestClusterMutantCaught proves the checker has teeth at the cluster
// level: a router that "rebalances" (shifts every key's owner by one
// shard) without migrating data must be rejected, the failure must shrink,
// and the shrunk one-command repro must replay the violation
// deterministically while the healthy cluster passes the same schedule.
func TestClusterMutantCaught(t *testing.T) {
	mk, err := Lookup("euno-cluster-broken")
	if err != nil {
		t.Fatal(err)
	}
	histories, fail := check.Sweep("euno-cluster-broken", mk, check.DefaultSweep(8))
	if fail == nil {
		t.Fatalf("router mutant survived %d histories; the cluster checker lost its teeth", histories)
	}
	t.Logf("router mutant caught after %d histories", histories)
	t.Logf("repro: %s", fail.ReproLine())
	if !strings.Contains(fail.ReproLine(), "tree=euno-cluster-broken") {
		t.Errorf("repro line does not name the cluster entry: %s", fail.ReproLine())
	}

	r, err := check.ParseRepro(check.Repro{Tree: fail.Tree, Workload: fail.Workload, Fault: fail.Fault}.String())
	if err != nil {
		t.Fatalf("emitted repro does not parse: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := check.RunWorkload(mk, r.Workload, r.Fault); err == nil {
			t.Fatalf("replay %d of the shrunk repro passed; cluster repro is not deterministic", i)
		}
	}

	// The mutant is in the router, not the trees: the same shards with an
	// honest router must pass the exact failing schedule.
	healthy, err := Lookup("euno-cluster-tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := check.RunWorkload(healthy, r.Workload, r.Fault); err != nil {
		t.Errorf("healthy cluster fails the router mutant's repro schedule:\n%v", err)
	}
}

// TestClusterReshardSweep checks linearizability with a live migration in
// flight: the reshard registry entry starts a 3->4 topology change 16 ops
// into every history and advances one move per subsequent op, so the
// checker linearizes reads and writes against every intermediate routing
// state — mid-copy, mid-cutover, mid-purge.
func TestClusterReshardSweep(t *testing.T) {
	seeds := 48
	if testing.Short() {
		seeds = 10
	}
	mk, err := Lookup("euno-cluster-reshard")
	if err != nil {
		t.Fatal(err)
	}
	histories, fail := check.Sweep("euno-cluster-reshard", mk, check.DefaultSweep(seeds))
	if fail != nil {
		t.Fatalf("reshard sweep failed after %d histories:\n%v", histories, fail)
	}
	t.Logf("euno-cluster-reshard: %d histories linearizable (%d seeds)", histories, seeds)
}

// TestClusterReshardMutantCaught proves the checker sees migration bugs:
// a cutover that commits one op before its data copy leaves the
// destination serving a hole (stale reads) and lets the late copy clobber
// writes landed in the window (lost updates). The sweep must reject it,
// the failure must replay deterministically, and the fenced migration
// must pass the same schedule.
func TestClusterReshardMutantCaught(t *testing.T) {
	mk, err := Lookup("euno-cluster-reshard-broken")
	if err != nil {
		t.Fatal(err)
	}
	histories, fail := check.Sweep("euno-cluster-reshard-broken", mk, check.DefaultSweep(8))
	if fail == nil {
		t.Fatalf("flip-before-copy mutant survived %d histories; the migration checker lost its teeth", histories)
	}
	t.Logf("migration mutant caught after %d histories", histories)
	t.Logf("repro: %s", fail.ReproLine())
	if !strings.Contains(fail.ReproLine(), "tree=euno-cluster-reshard-broken") {
		t.Errorf("repro line does not name the reshard entry: %s", fail.ReproLine())
	}

	r, err := check.ParseRepro(check.Repro{Tree: fail.Tree, Workload: fail.Workload, Fault: fail.Fault}.String())
	if err != nil {
		t.Fatalf("emitted repro does not parse: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := check.RunWorkload(mk, r.Workload, r.Fault); err == nil {
			t.Fatalf("replay %d of the shrunk repro passed; migration repro is not deterministic", i)
		}
	}

	// The mutant is in the cutover ordering, not the migration itself: the
	// correctly fenced reshard must pass the exact failing schedule.
	healthy, err := Lookup("euno-cluster-reshard")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := check.RunWorkload(healthy, r.Workload, r.Fault); err != nil {
		t.Errorf("fenced migration fails the mutant's repro schedule:\n%v", err)
	}
}

// TestClusterFaultsReachShards: the caller device's fault injector must
// propagate into the shard devices — otherwise every sweep fault variant
// silently skips the cluster entries.
func TestClusterFaultsReachShards(t *testing.T) {
	mk, err := Lookup("euno-cluster-tiny")
	if err != nil {
		t.Fatal(err)
	}
	wl := check.Workload{
		Procs: 3, Ops: 60, Keys: 24,
		GetPct: 20, PutPct: 60, DelPct: 15, ScanPct: 5,
		Preload: true, Seed: 11,
	}
	spec := htm.FaultSpec{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 2}
	_, fi, err := check.RunWorkload(mk, wl, spec)
	if err != nil {
		t.Fatalf("cluster under stitch faults:\n%v", err)
	}
	if fi.Hits(spec.Point) == 0 {
		t.Fatalf("stitch fault never fired inside any shard (visits=%d)", fi.Visits(spec.Point))
	}
	t.Logf("stitch fired %d times across shard devices", fi.Hits(spec.Point))
}
