package checktrees

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/shard"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// clusterKV puts the sharding layer itself inside the checked surface: it
// is a tree.KV whose keys are routed across N shard trees, each on its own
// arena and HTM device — the same architecture as eunomia.Cluster, built
// from internal packages so the checker sees router + shards as one
// object. A routing bug (the canonical cluster failure mode: a write and a
// later read disagreeing on a key's owner) surfaces to the checker as a
// stale read or lost update, exactly like a tree bug.
//
// Routing goes through the epoched shard.Table, and the reshard variants
// run a live migration in the middle of every checked history: once the
// op counter crosses migrateAfter, each subsequent op advances one move
// (copy src→dst, cut over, purge src) before executing, so the checker
// linearizes operations against every intermediate routing state. The
// flip-before-copy mutant splits a move across two ops — cutover first,
// data copy one op later — opening exactly the window the production
// engine's fence exists to close.
//
// The caller's device h is only a clock source: per-proc threads are
// created lazily on each shard device the first time that proc touches the
// shard. One vclock.Proc drives threads on all N devices; virtual time is
// charged to the proc regardless of which device does the charging, so the
// lockstep schedule stays deterministic.
type clusterKV struct {
	table   *shard.Table
	devices []*htm.HTM
	shards  []tree.KV

	mu      sync.Mutex
	nextIdx int
	threads map[vclock.Proc]*procThreads

	// ops counts routed operations; once it passes rebalanceAfter (when
	// non-zero) the seeded mutant shifts every route by one shard — a
	// "rebalance" that moves ownership without migrating data, so keys
	// written before the shift are unreachable after it.
	ops            atomic.Uint64
	rebalanceAfter uint64

	// target, when non-nil, is the topology the cluster reshards toward
	// once ops crosses migrateAfter. Migration steps hold migMu's write
	// side; routed ops hold the read side, so each step is atomic with
	// respect to the checked history. migMu is a cooperative spin lock —
	// an OS mutex would deadlock the lockstep scheduler, whose only
	// scheduling point is Tick. flipBeforeCopy is the seeded migration
	// mutant: authority flips one op before the data arrives.
	target         *shard.Router
	migrateAfter   uint64
	flipBeforeCopy bool
	migMu          coopRWLock
	migDone        atomic.Bool
	pendingCopy    int // mutant: move cut over but not yet copied (-1 none)
}

// procThreads is one proc's per-shard thread set plus its registration
// index (used to derive distinct deterministic seeds; proc IDs alone would
// collide between the boot WallProc and SimProc 0).
type procThreads struct {
	idx int
	ths []*htm.Thread
}

// newClusterKV builds n shard trees via mkShard, propagating the caller
// device's fault injector so sweep fault variants fire inside the shards.
func newClusterKV(h *htm.HTM, n int, mkShard func(h *htm.HTM, boot *htm.Thread) tree.KV, rebalanceAfter uint64) *clusterKV {
	c := &clusterKV{
		table:          shard.NewTable(shard.New(n, shard.Hash)),
		threads:        map[vclock.Proc]*procThreads{},
		rebalanceAfter: rebalanceAfter,
		pendingCopy:    -1,
	}
	c.grow(h, n, mkShard)
	return c
}

// newReshardClusterKV builds a cluster that starts serving from `from`
// shards and live-migrates to target mid-history. All max(from, target)
// shard slots exist from construction (the checker has no dynamic
// shard-open path); the table simply routes nothing to the destination
// slots until their moves cut over.
func newReshardClusterKV(h *htm.HTM, from int, target shard.Router, mkShard func(h *htm.HTM, boot *htm.Thread) tree.KV, migrateAfter uint64, flipBeforeCopy bool) *clusterKV {
	c := &clusterKV{
		table:          shard.NewTable(shard.New(from, shard.Hash)),
		threads:        map[vclock.Proc]*procThreads{},
		target:         &target,
		migrateAfter:   migrateAfter,
		flipBeforeCopy: flipBeforeCopy,
		pendingCopy:    -1,
	}
	slots := from
	if target.Shards() > slots {
		slots = target.Shards()
	}
	c.grow(h, slots, mkShard)
	return c
}

// grow appends shard slots [len, n) built via mkShard, propagating the
// caller device's fault injector so sweep fault variants fire inside them.
func (c *clusterKV) grow(h *htm.HTM, n int, mkShard func(h *htm.HTM, boot *htm.Thread) tree.KV) {
	for i := len(c.shards); i < n; i++ {
		a := simmem.NewArena(1 << 16)
		dev := htm.New(a, htm.DefaultConfig)
		if fi := h.Injector(); fi != nil {
			dev.SetFaultInjector(fi)
		}
		boot := dev.NewThread(vclock.NewWallProc(0, 0), shard.Mix(uint64(i)+0xb007)|1)
		c.devices = append(c.devices, dev)
		c.shards = append(c.shards, mkShard(dev, boot))
	}
}

// routeAt returns key's owning shard under view v for the op numbered n,
// applying the rebalance mutant once the counter crosses the threshold.
// The counter advances deterministically under the lockstep scheduler.
func (c *clusterKV) routeAt(v *shard.View, key, n uint64) int {
	s := v.Route(key)
	if c.rebalanceAfter != 0 && n > c.rebalanceAfter {
		s = (s + 1) % v.Shards()
	}
	return s
}

// maybeMigrate advances the live migration by one step when op n has
// crossed the trigger. Steps take the write lock, so they are atomic with
// respect to routed ops (which hold the read side): the checker observes
// only pre-step and post-step placements — except under the mutant, which
// deliberately commits a cutover with the copy still pending.
func (c *clusterKV) maybeMigrate(th *htm.Thread, n uint64) {
	if c.target == nil || n < c.migrateAfter || c.migDone.Load() {
		return
	}
	c.migMu.lock(th)
	defer c.migMu.unlock()
	if c.migDone.Load() {
		return
	}
	v := c.table.View()
	if !v.Migrating() {
		v = c.table.BeginReshard(*c.target, 0)
	}
	if c.pendingCopy >= 0 {
		// Mutant second half: the interval flipped an op ago; only now does
		// the data follow (stale src values clobbering any dst writes the
		// window let through — both faces of the bug the checker must see).
		mi := c.pendingCopy
		c.pendingCopy = -1
		c.moveData(th, v, mi)
		c.purgeMoveData(th, v, mi)
		c.finishIfCut()
		return
	}
	mi := v.Cut()
	if mi >= len(v.Moves()) {
		c.finishIfCut()
		return
	}
	if c.flipBeforeCopy {
		c.table.CutOver(mi)
		c.pendingCopy = mi
		return
	}
	// Correct order: data lands on Dst, then authority flips, then the
	// stale src copies go — one atomic step under the write lock, the
	// lockstep analogue of the production engine's fenced cutover.
	c.moveData(th, v, mi)
	c.table.CutOver(mi)
	c.purgeMoveData(th, v, mi)
	c.finishIfCut()
}

// moveData copies every key of move mi from Src to Dst.
func (c *clusterKV) moveData(th *htm.Thread, v *shard.View, mi int) {
	mv := v.Moves()[mi]
	for _, p := range c.collectMove(th, v, mi) {
		c.shards[mv.Dst].Put(c.threadFor(th, mv.Dst), p.k, p.v)
	}
}

// purgeMoveData deletes move mi's keys from Src after cutover.
func (c *clusterKV) purgeMoveData(th *htm.Thread, v *shard.View, mi int) {
	mv := v.Moves()[mi]
	for _, p := range c.collectMove(th, v, mi) {
		c.shards[mv.Src].Delete(c.threadFor(th, mv.Src), p.k)
	}
}

// collectMove scans Src for the keys belonging to move mi.
func (c *clusterKV) collectMove(th *htm.Thread, v *shard.View, mi int) []kvEntry {
	mv := v.Moves()[mi]
	var out []kvEntry
	c.shards[mv.Src].Scan(c.threadFor(th, mv.Src), 0, 1<<30, func(k, val uint64) bool {
		if ami, ok := v.MoveOf(k); ok && ami == mi {
			out = append(out, kvEntry{k, val})
		}
		return true
	})
	return out
}

// finishIfCut completes the migration once every move has cut over and no
// mutant copy is outstanding.
func (c *clusterKV) finishIfCut() {
	cur := c.table.View()
	if cur.Migrating() && cur.Cut() == len(cur.Moves()) && c.pendingCopy < 0 {
		c.table.Finish()
		c.migDone.Store(true)
	}
}

type kvEntry struct{ k, v uint64 }

// migSpinCost is the virtual-time charge of one failed lock iteration,
// mirroring the substrate's SpinIter scale: small enough that a waiter is
// rescheduled promptly, nonzero so the lockstep clock always advances.
const migSpinCost = 16

// coopRWLock is a reader/writer spin lock for code running under the
// lockstep scheduler, where blocking on an OS mutex would deadlock the
// simulation (a blocked proc never reaches Tick, the only scheduling
// point). state is -1 while the writer holds the lock, else the reader
// count. Fairness comes from the scheduler itself: a spinning waiter
// charges virtual time, becomes the laggard proc, and is scheduled ahead
// of the holder until the lock frees — and once a migration is pending,
// every op tries the write side first, so readers drain instead of
// starving the writer.
type coopRWLock struct {
	state atomic.Int64
}

func (l *coopRWLock) rlock(th *htm.Thread) {
	for {
		if s := l.state.Load(); s >= 0 && l.state.CompareAndSwap(s, s+1) {
			return
		}
		th.P.Tick(migSpinCost)
	}
}

func (l *coopRWLock) runlock() { l.state.Add(-1) }

func (l *coopRWLock) lock(th *htm.Thread) {
	for {
		if l.state.CompareAndSwap(0, -1) {
			return
		}
		th.P.Tick(migSpinCost)
	}
}

func (l *coopRWLock) unlock() { l.state.Store(0) }

// threadFor returns th's thread on shard s, creating it on first use with
// a seed derived from (proc registration index, shard).
func (c *clusterKV) threadFor(th *htm.Thread, s int) *htm.Thread {
	c.mu.Lock()
	pt := c.threads[th.P]
	if pt == nil {
		pt = &procThreads{idx: c.nextIdx, ths: make([]*htm.Thread, len(c.shards))}
		c.nextIdx++
		c.threads[th.P] = pt
	}
	t := pt.ths[s]
	if t == nil {
		t = c.devices[s].NewThread(th.P, shard.Mix(uint64(pt.idx)<<8|uint64(s))|1)
		pt.ths[s] = t
	}
	c.mu.Unlock()
	return t
}

func (c *clusterKV) Get(th *htm.Thread, key uint64) (uint64, bool) {
	n := c.ops.Add(1)
	c.maybeMigrate(th, n)
	c.migMu.rlock(th)
	defer c.migMu.runlock()
	s := c.routeAt(c.table.View(), key, n)
	return c.shards[s].Get(c.threadFor(th, s), key)
}

func (c *clusterKV) Put(th *htm.Thread, key, val uint64) {
	n := c.ops.Add(1)
	c.maybeMigrate(th, n)
	c.migMu.rlock(th)
	defer c.migMu.runlock()
	s := c.routeAt(c.table.View(), key, n)
	c.shards[s].Put(c.threadFor(th, s), key, val)
}

func (c *clusterKV) Delete(th *htm.Thread, key uint64) bool {
	n := c.ops.Add(1)
	c.maybeMigrate(th, n)
	c.migMu.rlock(th)
	defer c.migMu.runlock()
	s := c.routeAt(c.table.View(), key, n)
	return c.shards[s].Delete(c.threadFor(th, s), key)
}

// Scan merges the per-shard scans: each shard contributes its first max
// keys >= from, the union is sorted, and the globally smallest max are
// emitted. The whole merge freezes one View and accepts a key from shard s
// only if that View routes it to s — so a key mid-move is counted on
// exactly one shard even if a stale copy lingers on its old owner. The
// recorder's coverage bound (last emitted key when max is hit) stays
// sound: a key k <= last missing from the output would need its shard to
// hold >= max accepted keys below k, all of which sort before k — leaving
// no room for k among the emitted max.
func (c *clusterKV) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	if max <= 0 {
		return 0
	}
	n := c.ops.Add(1)
	c.maybeMigrate(th, n)
	c.migMu.rlock(th)
	defer c.migMu.runlock()
	v := c.table.View()
	type pair struct{ k, v uint64 }
	var all []pair
	for s := range c.shards {
		c.shards[s].Scan(c.threadFor(th, s), from, max, func(k, val uint64) bool {
			if c.routeAt(v, k, n) == s {
				all = append(all, pair{k, val})
			}
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	emitted := 0
	for _, p := range all {
		if emitted == max {
			break
		}
		emitted++
		if !fn(p.k, p.v) {
			break
		}
	}
	return emitted
}

func (c *clusterKV) Name() string {
	if c.target != nil {
		return fmt.Sprintf("cluster[%d->%d]/%s", len(c.shards), c.target.Shards(), c.shards[0].Name())
	}
	return fmt.Sprintf("cluster[%d]/%s", len(c.shards), c.shards[0].Name())
}

func init() {
	// euno-cluster: 3 default-geometry Euno shards — the router layered on
	// the production tree config.
	Registry["euno-cluster"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 3, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, core.DefaultConfig)
		}, 0)
	}
	// euno-cluster-tiny: 4 split-heavy shards, so cluster histories also
	// exercise stitch/CCM/split paths inside every shard.
	Registry["euno-cluster-tiny"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 4, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 0)
	}
	// euno-cluster-broken: the router mutant — after 24 routed operations a
	// "rebalance" shifts every key's owner by one shard without migrating
	// data. The sweep must reject it.
	Registry["euno-cluster-broken"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 3, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 24)
	}
	// euno-cluster-reshard: a 3->4 live migration starting 16 ops into
	// every history, one move advanced per op — copy, cutover, purge done
	// atomically with respect to routed ops. Must pass the sweep: the
	// checker linearizes ops against every intermediate routing state.
	Registry["euno-cluster-reshard"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newReshardClusterKV(h, 3, shard.New(4, shard.Hash), func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 16, false)
	}
	// euno-cluster-reshard-broken: the migration mutant — cutover commits
	// one op before the data copy, so the destination serves a hole (stale
	// reads) and the late copy clobbers writes that landed in the window
	// (lost updates). The sweep must reject it.
	Registry["euno-cluster-reshard-broken"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newReshardClusterKV(h, 3, shard.New(4, shard.Hash), func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 16, true)
	}
}
