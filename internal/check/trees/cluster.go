package checktrees

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/shard"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// clusterKV puts the sharding layer itself inside the checked surface: it
// is a tree.KV whose keys are routed across N shard trees, each on its own
// arena and HTM device — the same architecture as eunomia.Cluster, built
// from internal packages so the checker sees router + shards as one
// object. A routing bug (the canonical cluster failure mode: a write and a
// later read disagreeing on a key's owner) surfaces to the checker as a
// stale read or lost update, exactly like a tree bug.
//
// The caller's device h is only a clock source: per-proc threads are
// created lazily on each shard device the first time that proc touches the
// shard. One vclock.Proc drives threads on all N devices; virtual time is
// charged to the proc regardless of which device does the charging, so the
// lockstep schedule stays deterministic.
type clusterKV struct {
	router  shard.Router
	devices []*htm.HTM
	shards  []tree.KV

	mu      sync.Mutex
	nextIdx int
	threads map[vclock.Proc]*procThreads

	// ops counts routed operations; once it passes rebalanceAfter (when
	// non-zero) the seeded mutant shifts every route by one shard — a
	// "rebalance" that moves ownership without migrating data, so keys
	// written before the shift are unreachable after it.
	ops            atomic.Uint64
	rebalanceAfter uint64
}

// procThreads is one proc's per-shard thread set plus its registration
// index (used to derive distinct deterministic seeds; proc IDs alone would
// collide between the boot WallProc and SimProc 0).
type procThreads struct {
	idx int
	ths []*htm.Thread
}

// newClusterKV builds n shard trees via mkShard, propagating the caller
// device's fault injector so sweep fault variants fire inside the shards.
func newClusterKV(h *htm.HTM, n int, mkShard func(h *htm.HTM, boot *htm.Thread) tree.KV, rebalanceAfter uint64) *clusterKV {
	c := &clusterKV{
		router:         shard.New(n, shard.Hash),
		threads:        map[vclock.Proc]*procThreads{},
		rebalanceAfter: rebalanceAfter,
	}
	for i := 0; i < n; i++ {
		a := simmem.NewArena(1 << 16)
		dev := htm.New(a, htm.DefaultConfig)
		if fi := h.Injector(); fi != nil {
			dev.SetFaultInjector(fi)
		}
		boot := dev.NewThread(vclock.NewWallProc(0, 0), shard.Mix(uint64(i)+0xb007)|1)
		c.devices = append(c.devices, dev)
		c.shards = append(c.shards, mkShard(dev, boot))
	}
	return c
}

// route returns key's owning shard, applying the rebalance mutant once the
// op counter crosses the threshold. The counter advances deterministically
// under the lockstep scheduler.
func (c *clusterKV) route(key uint64) int {
	s := c.router.Route(key)
	if c.rebalanceAfter != 0 && c.ops.Add(1) > c.rebalanceAfter {
		s = (s + 1) % c.router.Shards()
	}
	return s
}

// threadFor returns th's thread on shard s, creating it on first use with
// a seed derived from (proc registration index, shard).
func (c *clusterKV) threadFor(th *htm.Thread, s int) *htm.Thread {
	c.mu.Lock()
	pt := c.threads[th.P]
	if pt == nil {
		pt = &procThreads{idx: c.nextIdx, ths: make([]*htm.Thread, len(c.shards))}
		c.nextIdx++
		c.threads[th.P] = pt
	}
	t := pt.ths[s]
	if t == nil {
		t = c.devices[s].NewThread(th.P, shard.Mix(uint64(pt.idx)<<8|uint64(s))|1)
		pt.ths[s] = t
	}
	c.mu.Unlock()
	return t
}

func (c *clusterKV) Get(th *htm.Thread, key uint64) (uint64, bool) {
	s := c.route(key)
	return c.shards[s].Get(c.threadFor(th, s), key)
}

func (c *clusterKV) Put(th *htm.Thread, key, val uint64) {
	s := c.route(key)
	c.shards[s].Put(c.threadFor(th, s), key, val)
}

func (c *clusterKV) Delete(th *htm.Thread, key uint64) bool {
	s := c.route(key)
	return c.shards[s].Delete(c.threadFor(th, s), key)
}

// Scan merges the per-shard scans: each shard contributes its first max
// keys >= from, the union is sorted, and the globally smallest max are
// emitted. The recorder's coverage bound (last emitted key when max is
// hit) stays sound: a key k <= last missing from the output would need
// its shard to hold >= max keys below k, all of which sort before k —
// leaving no room for k among the emitted max.
func (c *clusterKV) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	if max <= 0 {
		return 0
	}
	type pair struct{ k, v uint64 }
	var all []pair
	for s := range c.shards {
		c.shards[s].Scan(c.threadFor(th, s), from, max, func(k, v uint64) bool {
			all = append(all, pair{k, v})
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	n := 0
	for _, p := range all {
		if n == max {
			break
		}
		n++
		if !fn(p.k, p.v) {
			break
		}
	}
	return n
}

func (c *clusterKV) Name() string {
	return fmt.Sprintf("cluster[%d]/%s", len(c.shards), c.shards[0].Name())
}

func init() {
	// euno-cluster: 3 default-geometry Euno shards — the router layered on
	// the production tree config.
	Registry["euno-cluster"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 3, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, core.DefaultConfig)
		}, 0)
	}
	// euno-cluster-tiny: 4 split-heavy shards, so cluster histories also
	// exercise stitch/CCM/split paths inside every shard.
	Registry["euno-cluster-tiny"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 4, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 0)
	}
	// euno-cluster-broken: the router mutant — after 24 routed operations a
	// "rebalance" shifts every key's owner by one shard without migrating
	// data. The sweep must reject it.
	Registry["euno-cluster-broken"] = func(h *htm.HTM, _ *htm.Thread) tree.KV {
		return newClusterKV(h, 3, func(dev *htm.HTM, boot *htm.Thread) tree.KV {
			return core.New(dev, boot, tinyEuno())
		}, 24)
	}
}
