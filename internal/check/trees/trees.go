// Package checktrees binds the tree implementations to the internal/check
// harness. It lives outside internal/check (which must stay free of tree
// imports: the tree packages' own tests import treetest, and treetest
// imports check) and outside treetest (same cycle, other direction).
//
// The registry names appearing in EUNO_CHECK_REPRO lines resolve here, so
// a failure printed by any sweep can be replayed with:
//
//	EUNO_CHECK_REPRO='tree=<name>;wl=<workload>;fault=<spec>' \
//	    go test ./internal/check/trees/ -run TestRepro -v
package checktrees

import (
	"fmt"
	"sort"

	"eunomia/internal/check"
	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/tree"
	"eunomia/internal/tree/htmtree"
	"eunomia/internal/tree/masstree"
)

// tinyEuno is a deliberately split-heavy Euno geometry with the adaptive
// gate off (CCM always active): six live records force a split, so the
// stitch and CCM paths are exercised constantly even by small workloads.
func tinyEuno() core.Config {
	return core.Config{
		StableCap: 4, Segments: 2, SegCap: 1,
		PartLeaf: true, CCMLockBits: true, CCMMarkBits: true,
		Adaptive: false,
	}
}

// brokenEuno is tinyEuno with the lower region's seqno re-validation
// removed — the seeded mutant the checker must reject (see
// core.Config.DisableSeqnoCheck).
func brokenEuno() core.Config {
	cfg := tinyEuno()
	cfg.DisableSeqnoCheck = true
	return cfg
}

// combineEuno is tinyEuno with the CCM v2 elimination + flat-combining
// layer on: split-heavy geometry, always-hot leaves, so every burst runs
// through the publication slots.
func combineEuno() core.Config {
	cfg := tinyEuno()
	cfg.Combine.Enabled = true
	return cfg
}

// combineBrokenEuno is combineEuno with the elimination absence proof
// removed: an insert+delete pair annihilates even when the key is
// present, so an intervening read (or the delete's own found answer) can
// contradict every linearization — the seeded mutant the checker must
// catch (see core.CombineConfig.UnsoundEliminate).
func combineBrokenEuno() core.Config {
	cfg := combineEuno()
	cfg.Combine.UnsoundEliminate = true
	return cfg
}

// Registry maps repro names to factories. Default-geometry entries match
// the tree's own Name(); -tiny entries shrink fanout for split pressure.
var Registry = map[string]check.Factory{
	"euno-btree": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return core.New(h, boot, core.DefaultConfig)
	},
	"euno-tiny": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return core.New(h, boot, tinyEuno())
	},
	"euno-broken": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return core.New(h, boot, brokenEuno())
	},
	"euno-combine": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return core.New(h, boot, combineEuno())
	},
	"euno-combine-tiny": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		cfg := combineEuno()
		cfg.Combine.Stripes, cfg.Combine.Slots = 1, 2
		return core.New(h, boot, cfg)
	},
	"euno-combine-broken": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return core.New(h, boot, combineBrokenEuno())
	},
	"htm-btree": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return htmtree.New(h, boot, 16)
	},
	"htm-btree-tiny": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return htmtree.New(h, boot, 5)
	},
	"masstree": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return masstree.New(h, boot, 16, false)
	},
	"masstree-tiny": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return masstree.New(h, boot, 5, false)
	},
	"htm-masstree": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return masstree.New(h, boot, 16, true)
	},
	"htm-masstree-tiny": func(h *htm.HTM, boot *htm.Thread) tree.KV {
		return masstree.New(h, boot, 5, true)
	},
}

// Lookup resolves a repro tree name.
func Lookup(name string) (check.Factory, error) {
	if mk, ok := Registry[name]; ok {
		return mk, nil
	}
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("checktrees: unknown tree %q (known: %v)", name, names)
}
