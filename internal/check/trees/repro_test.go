package checktrees

import (
	"os"
	"testing"

	"eunomia/internal/check"
	"eunomia/internal/core"
	"eunomia/internal/htm"
	"eunomia/internal/tree"
)

// TestRegistryBuilds instantiates every registry entry once so a renamed
// constructor or config field cannot silently break repro resolution.
func TestRegistryBuilds(t *testing.T) {
	for name := range Registry {
		mk, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = check.RunWorkload(mk, check.Workload{
			Procs: 2, Ops: 6, Keys: 4,
			GetPct: 40, PutPct: 40, DelPct: 10, ScanPct: 10,
			Preload: true,
		}, htm.FaultSpec{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Lookup("no-such-tree"); err == nil {
		t.Fatal("Lookup accepted an unknown tree name")
	}
}

// TestRepro replays the exact run named by EUNO_CHECK_REPRO. Sweep failures
// print a ready-made command line invoking this test; with the variable
// unset it is skipped. A repro of a failing case fails here with the full
// violation, which is the point: the one command shows the bug.
func TestRepro(t *testing.T) {
	env := os.Getenv("EUNO_CHECK_REPRO")
	if env == "" {
		t.Skip("EUNO_CHECK_REPRO not set; this test replays sweep failures")
	}
	r, err := check.ParseRepro(env)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := Lookup(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	hist, fi, err := check.RunWorkload(mk, r.Workload, r.Fault)
	st := hist.Stats()
	t.Logf("replayed %s: %d ops over %d keys, fault %s (visits=%d hits=%d)",
		r.Tree, st.Ops, st.Keys, r.Fault, fi.Visits(r.Fault.Point), fi.Hits(r.Fault.Point))
	if err != nil {
		t.Fatalf("repro reproduces:\n%v", err)
	}
	t.Logf("repro passed — the recorded history is linearizable")
}

// mutantSweep is the sweep that must catch the seeded seqno mutant: the
// stitch-point yields stretch the window between the upper-region descent
// and the lower-region leaf operation, which is exactly the window the
// disabled seqno re-validation was guarding.
func mutantSweep(seeds int) check.SweepConfig {
	sc := check.DefaultSweep(seeds)
	sc.Faults = []htm.FaultSpec{
		{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 2},
	}
	return sc
}

func mutantSeeds() int {
	if testing.Short() {
		return 64
	}
	return 128
}

// TestMutantCaught is the checker's self-test: a tree with the lower-region
// seqno re-validation disabled (core.Config.DisableSeqnoCheck) must be
// rejected within the default seed budget, the failure must carry a printed
// one-command repro line, and replaying the parsed repro must fail
// deterministically.
func TestMutantCaught(t *testing.T) {
	mk, err := Lookup("euno-broken")
	if err != nil {
		t.Fatal(err)
	}
	histories, fail := check.Sweep("euno-broken", mk, mutantSweep(mutantSeeds()))
	if fail == nil {
		t.Fatalf("seqno mutant survived %d histories; the checker lost its teeth", histories)
	}
	t.Logf("mutant caught after %d histories", histories)
	t.Logf("repro: %s", fail.ReproLine())
	t.Logf("violation:\n%v", fail.Err)

	// The printed repro must replay to the same failure, twice (determinism).
	r, err := check.ParseRepro(check.Repro{Tree: fail.Tree, Workload: fail.Workload, Fault: fail.Fault}.String())
	if err != nil {
		t.Fatalf("emitted repro does not parse: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := check.RunWorkload(mk, r.Workload, r.Fault); err == nil {
			t.Fatalf("replay %d of the shrunk repro passed; repro is not deterministic", i)
		}
	}

	// The shrunk case must actually have shrunk from the sweep base, and the
	// healthy geometry must pass the very same schedule.
	base := mutantSweep(1).Base
	if fail.Workload.Ops >= base.Ops && fail.Workload.Procs >= base.Procs && fail.Workload.Keys >= base.Keys {
		t.Errorf("shrinking reduced nothing: %s (base %s)", fail.Workload, base)
	}
	healthy, err := Lookup("euno-tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := check.RunWorkload(healthy, r.Workload, r.Fault); err != nil {
		t.Errorf("healthy geometry fails the mutant's repro schedule:\n%v", err)
	}
}

// combineSweep is the sweep shape for the CCM v2 layer: few keys and a
// put/delete-heavy mix maximize same-key insert+delete pairing, and the
// FaultCombine yields stretch the publication window (slot Reserved, not
// yet Published) so concurrent bursts actually meet in one stripe drain.
func combineSweep(seeds int) check.SweepConfig {
	sc := check.DefaultSweep(seeds)
	sc.Base = check.Workload{
		Procs: 3, Ops: 40, Keys: 4,
		GetPct: 20, PutPct: 40, DelPct: 40,
		Preload: true,
	}
	sc.Faults = []htm.FaultSpec{
		{Point: htm.FaultCombine, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultCombine, Action: htm.ActYield, Nth: 2},
	}
	return sc
}

func combineSeeds() int {
	if testing.Short() {
		return 8
	}
	return 16
}

// TestCombineSweep is the healthy half of the CCM v2 acceptance: both
// combining geometries must pass the full elimination-weighted sweep.
func TestCombineSweep(t *testing.T) {
	for _, name := range []string{"euno-combine", "euno-combine-tiny"} {
		mk, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		histories, fail := check.Sweep(name, mk, combineSweep(combineSeeds()))
		if fail != nil {
			t.Fatalf("%s failed after %d histories\nrepro: %s\n%v",
				name, histories, fail.ReproLine(), fail.Err)
		}
		t.Logf("%s: %d histories linearizable", name, histories)
	}
}

// TestCombineMutantCaught is the CCM v2 self-test: with the elimination
// absence proof removed (core.CombineConfig.UnsoundEliminate) an
// insert+delete pair annihilates even when the key is present, so the
// pre-existing value survives a delete that answered found — an
// intervening or later read contradicts every linearization. The checker
// must reject it within the seed budget, the failure must shrink and
// replay deterministically, and the sound geometry must pass the very
// same schedule.
func TestCombineMutantCaught(t *testing.T) {
	mk, err := Lookup("euno-combine-broken")
	if err != nil {
		t.Fatal(err)
	}
	histories, fail := check.Sweep("euno-combine-broken", mk, combineSweep(mutantSeeds()))
	if fail == nil {
		t.Fatalf("unsound-elimination mutant survived %d histories; the checker lost its teeth", histories)
	}
	t.Logf("mutant caught after %d histories", histories)
	t.Logf("repro: %s", fail.ReproLine())
	t.Logf("violation:\n%v", fail.Err)

	r, err := check.ParseRepro(check.Repro{Tree: fail.Tree, Workload: fail.Workload, Fault: fail.Fault}.String())
	if err != nil {
		t.Fatalf("emitted repro does not parse: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := check.RunWorkload(mk, r.Workload, r.Fault); err == nil {
			t.Fatalf("replay %d of the shrunk repro passed; repro is not deterministic", i)
		}
	}

	healthy, err := Lookup("euno-combine")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := check.RunWorkload(healthy, r.Workload, r.Fault); err != nil {
		t.Errorf("sound elimination fails the mutant's repro schedule:\n%v", err)
	}
}

// TestCombineFaultCovered asserts the FaultCombine point — the CCM v2
// publication and drain windows — is both visited and forced under the
// combining geometry, with the history staying linearizable. (The base
// coverage test runs euno-tiny, which has no combiner, so this point
// needs its own run.)
func TestCombineFaultCovered(t *testing.T) {
	mk, err := Lookup("euno-combine-tiny")
	if err != nil {
		t.Fatal(err)
	}
	wl := check.Workload{
		Procs: 3, Ops: 80, Keys: 8,
		GetPct: 20, PutPct: 40, DelPct: 40,
		Preload: true, Seed: 7,
	}
	for _, spec := range []htm.FaultSpec{
		{Point: htm.FaultCombine, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultCombine, Action: htm.ActYield, Nth: 3},
	} {
		_, fi, err := check.RunWorkload(mk, wl, spec)
		if err != nil {
			t.Fatalf("euno-combine-tiny under fault %s:\n%v", spec, err)
		}
		if fi.Hits(spec.Point) == 0 {
			t.Fatalf("fault %s never fired (visits=%d)", spec, fi.Visits(spec.Point))
		}
		t.Logf("fault %s: visits=%d hits=%d", spec, fi.Visits(spec.Point), fi.Hits(spec.Point))
	}
}

// TestCombineEliminationObserved proves the sound elimination path is not
// vacuous under the checker: across the seed sweep at least one
// insert+delete pair must actually annihilate (the counter moves), and
// every one of those histories must still linearize. Without this, a
// regression that silently disabled elimination would leave the mutant
// sweep green for the wrong reason.
func TestCombineEliminationObserved(t *testing.T) {
	var last *core.Tree
	mk := func(h *htm.HTM, boot *htm.Thread) tree.KV {
		cfg := combineEuno()
		cfg.Combine.Stripes, cfg.Combine.Slots = 1, 4
		last = core.New(h, boot, cfg)
		return last
	}
	wl := check.Workload{
		Procs: 3, Ops: 60, Keys: 2,
		GetPct: 10, PutPct: 45, DelPct: 45,
		Preload: false, // absent keys: the absence proof can succeed
	}
	fault := htm.FaultSpec{Point: htm.FaultCombine, Action: htm.ActYield, Nth: 1}
	var eliminated, batches uint64
	for seed := uint64(0); seed < 32; seed++ {
		wl.Seed = seed
		if _, _, err := check.RunWorkload(mk, wl, fault); err != nil {
			t.Fatalf("seed %d:\n%v", seed, err)
		}
		eliminated += last.EliminatedPairs()
		batches += last.CombinedBatches()
	}
	if eliminated == 0 {
		t.Fatalf("no insert+delete pair eliminated across 32 seeds (%d combined batches); the elimination sweep is vacuous", batches)
	}
	t.Logf("eliminated %d pairs across 32 seeds (%d combined batches)", eliminated, batches)
}

// TestFaultPointsCoveredEuno is the coverage acceptance test for the Euno
// B+Tree: every named fault point — the upper/lower stitch, mid-split, the
// CCM lock/mark update, and fallback-lock entry — must be both visited and
// actually fired at least once per suite run, with the history staying
// linearizable throughout. The tiny geometry keeps splits frequent and the
// adaptive gate off keeps CCM active on every lower-region operation.
func TestFaultPointsCoveredEuno(t *testing.T) {
	mk, err := Lookup("euno-tiny")
	if err != nil {
		t.Fatal(err)
	}
	wl := check.Workload{
		Procs: 3, Ops: 80, Keys: 48,
		GetPct: 20, PutPct: 60, DelPct: 15, ScanPct: 5,
		Preload: true, Seed: 7,
	}
	specs := []htm.FaultSpec{
		{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultStitch, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultMidSplit, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultMidSplit, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultCCM, Action: htm.ActYield, Nth: 1},
		{Point: htm.FaultCCM, Action: htm.ActAbort, Nth: 2},
		{Point: htm.FaultFallback, Action: htm.ActFallback, Nth: 3},
	}
	covered := map[htm.FaultPoint]uint64{}
	for _, spec := range specs {
		_, fi, err := check.RunWorkload(mk, wl, spec)
		if err != nil {
			t.Fatalf("euno-tiny under fault %s:\n%v", spec, err)
		}
		if fi.Hits(spec.Point) == 0 {
			t.Fatalf("fault %s never fired (visits=%d)", spec, fi.Visits(spec.Point))
		}
		covered[spec.Point] += fi.Hits(spec.Point)
	}
	for _, pt := range []htm.FaultPoint{htm.FaultStitch, htm.FaultMidSplit, htm.FaultCCM, htm.FaultFallback} {
		if covered[pt] == 0 {
			t.Errorf("fault point %s not covered", pt)
		} else {
			t.Logf("fault point %s: %d forced hits", pt, covered[pt])
		}
	}
}
