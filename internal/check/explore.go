package check

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// Factory builds a fresh tree over a fresh HTM device. It mirrors
// treetest.Factory (redeclared here so treetest can depend on check without
// a cycle).
type Factory func(h *htm.HTM, boot *htm.Thread) tree.KV

// Workload is one deterministic, seeded workload configuration for the
// schedule-exploration fuzzer. Identical Workload + Factory + FaultSpec
// always produce the identical history: the lockstep scheduler, the
// per-proc RNGs, and the fault injector's counters are all deterministic.
type Workload struct {
	Procs int    // virtual cores
	Ops   int    // operations per core
	Keys  int    // size of the checked-key universe
	Seed  uint64 // master seed; perturbs RNGs and start priorities
	Slack uint64 // vclock.Sim slack (scheduler perturbation)

	// Op mix in percent of ops; must sum to 100.
	GetPct, PutPct, DelPct, ScanPct int

	// Preload inserts every other universe key before recording starts
	// (seeded into the checker as initial state).
	Preload bool
}

// DefaultWorkload is the base configuration sweeps perturb.
func DefaultWorkload() Workload {
	return Workload{
		Procs: 3, Ops: 40, Keys: 8,
		GetPct: 30, PutPct: 40, DelPct: 20, ScanPct: 10,
		Preload: true,
	}
}

// String renders the workload in the parseable repro syntax.
func (w Workload) String() string {
	p := 0
	if w.Preload {
		p = 1
	}
	return fmt.Sprintf("procs=%d,ops=%d,keys=%d,seed=%d,slack=%d,mix=%d/%d/%d/%d,preload=%d",
		w.Procs, w.Ops, w.Keys, w.Seed, w.Slack, w.GetPct, w.PutPct, w.DelPct, w.ScanPct, p)
}

// ParseWorkload parses the String syntax.
func ParseWorkload(text string) (Workload, error) {
	var w Workload
	for _, field := range strings.Split(text, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return w, fmt.Errorf("check: workload field %q: want key=value", field)
		}
		switch k {
		case "mix":
			if n, err := fmt.Sscanf(v, "%d/%d/%d/%d", &w.GetPct, &w.PutPct, &w.DelPct, &w.ScanPct); n != 4 || err != nil {
				return w, fmt.Errorf("check: bad mix %q", v)
			}
		default:
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return w, fmt.Errorf("check: workload field %q: %v", field, err)
			}
			switch k {
			case "procs":
				w.Procs = int(n)
			case "ops":
				w.Ops = int(n)
			case "keys":
				w.Keys = int(n)
			case "seed":
				w.Seed = n
			case "slack":
				w.Slack = n
			case "preload":
				w.Preload = n != 0
			default:
				return w, fmt.Errorf("check: unknown workload field %q", k)
			}
		}
	}
	return w, w.validate()
}

func (w Workload) validate() error {
	if w.Procs < 1 || w.Ops < 1 || w.Keys < 1 {
		return fmt.Errorf("check: workload needs procs/ops/keys >= 1, got %s", w)
	}
	if w.GetPct+w.PutPct+w.DelPct+w.ScanPct != 100 {
		return fmt.Errorf("check: workload mix must sum to 100, got %s", w)
	}
	return nil
}

// universeKey maps universe index i to its key. Keys are spaced and offset
// so ranges span leaf boundaries under small-fanout trees.
func universeKey(i int) uint64 { return uint64(i)*7 + 3 }

// RunWorkload executes one seeded workload against a fresh tree built by
// mk, with fault armed on the device, and checks the recorded history.
// It returns the history, the injector (for coverage assertions), and the
// first error: a linearizability Violation, or a panic escaping the tree
// (also a bug, surfaced rather than crashing the harness).
func RunWorkload(mk Factory, wl Workload, fault htm.FaultSpec) (History, *htm.FaultInjector, error) {
	if err := wl.validate(); err != nil {
		return History{}, nil, err
	}
	// Exploration trees are tiny (tens of keys); a small arena keeps the
	// per-run allocation cheap across hundreds of sweep runs.
	a := simmem.NewArena(1 << 16)
	h := htm.New(a, htm.DefaultConfig)
	fi := htm.NewFaultInjector(fault)
	h.SetFaultInjector(fi)
	boot := h.NewThread(vclock.NewWallProc(0, 0), 1)
	kv := mk(h, boot)

	rec := NewRecorder(kv, Virtual)
	universe := make([]uint64, wl.Keys)
	for i := range universe {
		universe[i] = universeKey(i)
	}
	rec.SetUniverse(universe)
	if wl.Preload {
		for i := 0; i < wl.Keys; i += 2 {
			k := universe[i]
			v := k<<20 | 0xF0000
			kv.Put(boot, k, v)
			rec.SetInitial(k, v)
		}
	}

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	sim := vclock.NewSim(wl.Procs, wl.Slack)
	sim.Run(func(p *vclock.SimProc) {
		// The harness must survive a buggy tree: convert panics (corrupt
		// structure under injected faults, emulator invariant trips) into
		// reported failures so shrinking can proceed.
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("proc %d panicked: %v", p.ID(), r))
			}
		}()
		th := h.NewThread(p, wl.Seed*0x9E3779B97F4A7C15+uint64(p.ID())+1)
		r := vclock.NewRand(wl.Seed<<8 | uint64(p.ID()))
		// Priority perturbation: a seeded stagger decides which cores run
		// first and how their op streams phase against each other.
		p.Tick(uint64(r.Intn(500)))
		for i := 0; i < wl.Ops; i++ {
			k := universe[r.Intn(wl.Keys)]
			val := k<<20 | uint64(p.ID())<<16 | uint64(i)
			switch pick := r.Intn(100); {
			case pick < wl.GetPct:
				rec.Get(th, k)
			case pick < wl.GetPct+wl.PutPct:
				rec.Put(th, k, val)
			case pick < wl.GetPct+wl.PutPct+wl.DelPct:
				rec.Delete(th, k)
			default:
				rec.Scan(th, k, 3, func(_, _ uint64) bool { return true })
			}
		}
	})
	hist := rec.History()
	if firstErr != nil {
		return hist, fi, firstErr
	}
	return hist, fi, Check(hist)
}

// Failure is a reproducible checker failure found by Sweep: the (already
// shrunk) workload, the fault that was armed, and the underlying error.
type Failure struct {
	Tree     string
	Workload Workload
	Fault    htm.FaultSpec
	Err      error
}

// ReproLine is the one-command repro: run it from the repository root and
// the identical schedule replays deterministically.
func (f *Failure) ReproLine() string {
	return fmt.Sprintf("EUNO_CHECK_REPRO='tree=%s;wl=%s;fault=%s' go test ./internal/check/trees/ -run TestRepro -v",
		f.Tree, f.Workload, f.Fault)
}

func (f *Failure) Error() string {
	return fmt.Sprintf("linearizability failure on %s (workload %s, fault %s)\nrepro: %s\n%v",
		f.Tree, f.Workload, f.Fault, f.ReproLine(), f.Err)
}

// Repro names one exact exploration run: tree, workload, fault.
type Repro struct {
	Tree     string
	Workload Workload
	Fault    htm.FaultSpec
}

// String renders the EUNO_CHECK_REPRO value.
func (r Repro) String() string {
	return fmt.Sprintf("tree=%s;wl=%s;fault=%s", r.Tree, r.Workload, r.Fault)
}

// ParseRepro parses the EUNO_CHECK_REPRO syntax emitted by ReproLine.
func ParseRepro(text string) (Repro, error) {
	var out Repro
	for _, field := range strings.Split(text, ";") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return out, fmt.Errorf("check: repro field %q: want key=value", field)
		}
		var err error
		switch k {
		case "tree":
			out.Tree = v
		case "wl":
			out.Workload, err = ParseWorkload(v)
		case "fault":
			out.Fault, err = htm.ParseFaultSpec(v)
		default:
			err = fmt.Errorf("check: unknown repro field %q", k)
		}
		if err != nil {
			return out, err
		}
	}
	if out.Tree == "" {
		return out, fmt.Errorf("check: repro %q names no tree", text)
	}
	return out, nil
}

// SweepConfig shapes an exploration sweep: Seeds base workloads, each run
// once per slack and once per fault variant.
type SweepConfig struct {
	Seeds  int
	Slacks []uint64        // scheduler perturbations; default {0, 3, 17}
	Faults []htm.FaultSpec // fault variants; always includes "none"
	Base   Workload
}

// DefaultSweep returns the short-mode sweep shape.
func DefaultSweep(seeds int) SweepConfig {
	return SweepConfig{
		Seeds:  seeds,
		Slacks: []uint64{0, 3, 17},
		Faults: []htm.FaultSpec{{Point: htm.FaultStitch, Action: htm.ActYield, Nth: 3}},
		Base:   DefaultWorkload(),
	}
}

// Sweep explores schedules: for each seed, the base workload runs once per
// slack with no fault, plus once per fault variant (at the first slack).
// The first failing run is shrunk (procs, then ops, then keys) and returned
// as a *Failure; histories reports how many histories were checked.
func Sweep(treeName string, mk Factory, sc SweepConfig) (histories int, fail *Failure) {
	if sc.Base.Procs == 0 {
		sc.Base = DefaultWorkload()
	}
	if len(sc.Slacks) == 0 {
		sc.Slacks = []uint64{0}
	}
	run := func(wl Workload, fault htm.FaultSpec) *Failure {
		_, _, err := RunWorkload(mk, wl, fault)
		if err == nil {
			return nil
		}
		wl = shrink(mk, wl, fault)
		_, _, err = RunWorkload(mk, wl, fault) // re-run the shrunk case for its error
		return &Failure{Tree: treeName, Workload: wl, Fault: fault, Err: err}
	}
	for seed := 0; seed < sc.Seeds; seed++ {
		wl := sc.Base
		wl.Seed = uint64(seed)
		for _, slack := range sc.Slacks {
			wl.Slack = slack
			histories++
			if f := run(wl, htm.FaultSpec{}); f != nil {
				return histories, f
			}
		}
		wl.Slack = sc.Slacks[0]
		for _, fs := range sc.Faults {
			histories++
			if f := run(wl, fs); f != nil {
				return histories, f
			}
		}
	}
	return histories, nil
}

// shrink greedily reduces a failing workload — procs, then ops (halving,
// then stepping), then keys — keeping every reduction that still fails.
// Deterministic replay makes each probe exact, not probabilistic.
func shrink(mk Factory, wl Workload, fault htm.FaultSpec) Workload {
	fails := func(c Workload) bool {
		_, _, err := RunWorkload(mk, c, fault)
		return err != nil
	}
	for wl.Procs > 2 {
		c := wl
		c.Procs--
		if !fails(c) {
			break
		}
		wl = c
	}
	for wl.Ops > 4 {
		c := wl
		c.Ops /= 2
		if !fails(c) {
			break
		}
		wl = c
	}
	for wl.Ops > 2 {
		c := wl
		c.Ops--
		if !fails(c) {
			break
		}
		wl = c
	}
	for wl.Keys > 1 {
		c := wl
		c.Keys--
		if !fails(c) {
			break
		}
		wl = c
	}
	return wl
}
