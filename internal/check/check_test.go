package check

import (
	"strings"
	"testing"
)

// ops builds a History from a compact literal.
func hist(ops ...Op) History { return History{Ops: ops} }

func mustOK(t *testing.T, h History) {
	t.Helper()
	if err := Check(h); err != nil {
		t.Fatalf("expected linearizable, got:\n%v", err)
	}
}

func mustFail(t *testing.T, h History, key uint64) {
	t.Helper()
	err := Check(h)
	if err == nil {
		t.Fatalf("expected violation on key %d, checker accepted history", key)
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if v.Key != key {
		t.Fatalf("expected violation on key %d, got key %d:\n%v", key, v.Key, err)
	}
}

func TestSequentialLegal(t *testing.T) {
	mustOK(t, hist(
		Op{Kind: Get, Key: 1, OK: false, Inv: 1, Rsp: 2},
		Op{Kind: Put, Key: 1, Val: 10, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 1, Val: 10, OK: true, Inv: 5, Rsp: 6},
		Op{Kind: Delete, Key: 1, OK: true, Inv: 7, Rsp: 8},
		Op{Kind: Get, Key: 1, OK: false, Inv: 9, Rsp: 10},
		Op{Kind: Delete, Key: 1, OK: false, Inv: 11, Rsp: 12},
	))
}

func TestFutureReadRejected(t *testing.T) {
	// A value is read strictly before the only put of that value begins.
	mustFail(t, hist(
		Op{Kind: Get, Key: 5, Val: 42, OK: true, Inv: 1, Rsp: 2},
		Op{Kind: Put, Key: 5, Val: 42, Inv: 3, Rsp: 4},
	), 5)
}

func TestLostInsertRejected(t *testing.T) {
	// Put completes, then a later get misses it with no intervening delete.
	mustFail(t, hist(
		Op{Kind: Put, Key: 7, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Get, Key: 7, OK: false, Inv: 3, Rsp: 4},
	), 7)
}

func TestOverwrittenReadRejected(t *testing.T) {
	// get=1 runs strictly after put(2) completed; 1 was definitely gone.
	mustFail(t, hist(
		Op{Kind: Put, Key: 3, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Put, Key: 3, Val: 2, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 3, Val: 1, OK: true, Inv: 5, Rsp: 6},
	), 3)
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping puts: reads may observe them in either commit order,
	// but all readers must agree after both complete... per-key the final
	// read just needs SOME order: get=1 after both is fine (put(2) first,
	// put(1) second).
	mustOK(t, hist(
		Op{Kind: Put, Key: 9, Val: 1, Inv: 1, Rsp: 10},
		Op{Kind: Put, Key: 9, Val: 2, Inv: 2, Rsp: 9},
		Op{Kind: Get, Key: 9, Val: 1, OK: true, Inv: 11, Rsp: 12},
	))
	mustOK(t, hist(
		Op{Kind: Put, Key: 9, Val: 1, Inv: 1, Rsp: 10},
		Op{Kind: Put, Key: 9, Val: 2, Inv: 2, Rsp: 9},
		Op{Kind: Get, Key: 9, Val: 2, OK: true, Inv: 11, Rsp: 12},
	))
}

func TestConcurrentReadSeesEitherState(t *testing.T) {
	// A get overlapping a put may see the old absence or the new value.
	mustOK(t, hist(
		Op{Kind: Put, Key: 4, Val: 5, Inv: 1, Rsp: 10},
		Op{Kind: Get, Key: 4, OK: false, Inv: 2, Rsp: 9},
	))
	mustOK(t, hist(
		Op{Kind: Put, Key: 4, Val: 5, Inv: 1, Rsp: 10},
		Op{Kind: Get, Key: 4, Val: 5, OK: true, Inv: 2, Rsp: 9},
	))
	// But it cannot see a value never written.
	mustFail(t, hist(
		Op{Kind: Put, Key: 4, Val: 5, Inv: 1, Rsp: 10},
		Op{Kind: Get, Key: 4, Val: 6, OK: true, Inv: 2, Rsp: 9},
	), 4)
}

func TestDeleteSemantics(t *testing.T) {
	// del=true with nothing ever present: illegal.
	mustFail(t, hist(
		Op{Kind: Delete, Key: 2, OK: true, Inv: 1, Rsp: 2},
	), 2)
	// del=false while the key is definitely present: illegal.
	mustFail(t, hist(
		Op{Kind: Put, Key: 2, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Delete, Key: 2, OK: false, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 2, Val: 1, OK: true, Inv: 5, Rsp: 6},
	), 2)
	// Two overlapping deletes of one present key: exactly one may win.
	mustOK(t, hist(
		Op{Kind: Put, Key: 2, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Delete, Key: 2, OK: true, Inv: 3, Rsp: 10},
		Op{Kind: Delete, Key: 2, OK: false, Inv: 4, Rsp: 9},
	))
	mustFail(t, hist(
		Op{Kind: Put, Key: 2, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Delete, Key: 2, OK: true, Inv: 3, Rsp: 10},
		Op{Kind: Delete, Key: 2, OK: true, Inv: 4, Rsp: 9},
	), 2)
}

func TestInitialState(t *testing.T) {
	h := hist(
		Op{Kind: Get, Key: 8, Val: 99, OK: true, Inv: 1, Rsp: 2},
	)
	mustFail(t, h, 8) // no initial state: future read
	h.Initial = map[uint64]uint64{8: 99}
	mustOK(t, h)
	// del=true with only initial state present is fine.
	h2 := hist(
		Op{Kind: Delete, Key: 8, OK: true, Inv: 1, Rsp: 2},
		Op{Kind: Get, Key: 8, OK: false, Inv: 3, Rsp: 4},
	)
	h2.Initial = map[uint64]uint64{8: 1}
	mustOK(t, h2)
}

func TestScanObsCheckedLikeGet(t *testing.T) {
	// Scan observes absence of a key that was put and never deleted,
	// strictly after the put completed: phantom-miss, illegal.
	mustFail(t, hist(
		Op{Kind: Put, Key: 6, Val: 3, Inv: 1, Rsp: 2},
		Op{Kind: ScanObs, Key: 6, OK: false, Inv: 3, Rsp: 4},
	), 6)
	// Overlapping the put: legal.
	mustOK(t, hist(
		Op{Kind: Put, Key: 6, Val: 3, Inv: 1, Rsp: 10},
		Op{Kind: ScanObs, Key: 6, OK: false, Inv: 2, Rsp: 9},
	))
}

func TestDeleteResurrectRejected(t *testing.T) {
	// put; delete completes; later read still sees the value: the classic
	// stale-leaf stitch bug shape.
	mustFail(t, hist(
		Op{Kind: Put, Key: 11, Val: 7, Inv: 1, Rsp: 2},
		Op{Kind: Delete, Key: 11, OK: true, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 11, Val: 7, OK: true, Inv: 5, Rsp: 6},
	), 11)
}

func TestTieTimestampsTreatedConcurrent(t *testing.T) {
	// Wall-mode can produce inv(b) == rsp(a) only when distinct draws tie
	// across restarts; virtual mode can produce equal cycle stamps for
	// zero-cost sections. Equal stamps must be treated as overlap.
	mustOK(t, hist(
		Op{Kind: Put, Key: 1, Val: 5, Inv: 1, Rsp: 3},
		Op{Kind: Get, Key: 1, OK: false, Inv: 3, Rsp: 4},
	))
}

func TestComplexInterleavingNeedsSearch(t *testing.T) {
	// A history the old rule-based checker could not decide: three
	// overlapping writers and two readers observing different values.
	// Legal order: put(1) put(3) get=3 put(2) get=2.
	mustOK(t, hist(
		Op{Kind: Put, Key: 20, Val: 1, Inv: 1, Rsp: 20},
		Op{Kind: Put, Key: 20, Val: 2, Inv: 2, Rsp: 19},
		Op{Kind: Put, Key: 20, Val: 3, Inv: 3, Rsp: 18},
		Op{Kind: Get, Key: 20, Val: 3, OK: true, Inv: 4, Rsp: 17},
		Op{Kind: Get, Key: 20, Val: 2, OK: true, Inv: 5, Rsp: 16},
	))
	// Illegal: reader A sees 2 then 3, reader A' sees 3 then 2, with both
	// reads of each pair sequential — contradictory orders.
	mustFail(t, hist(
		Op{Kind: Put, Key: 21, Val: 2, Inv: 1, Rsp: 30},
		Op{Kind: Put, Key: 21, Val: 3, Inv: 2, Rsp: 29},
		Op{Kind: Get, Key: 21, Val: 2, OK: true, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 21, Val: 3, OK: true, Inv: 5, Rsp: 6},
		Op{Kind: Get, Key: 21, Val: 2, OK: true, Inv: 7, Rsp: 8},
	), 21)
}

func TestPerKeyIsolation(t *testing.T) {
	// A violation on one key does not implicate others; the reported key is
	// the smallest failing one.
	err := Check(hist(
		Op{Kind: Put, Key: 1, Val: 1, Inv: 1, Rsp: 2},
		Op{Kind: Get, Key: 1, Val: 1, OK: true, Inv: 3, Rsp: 4},
		Op{Kind: Get, Key: 2, Val: 9, OK: true, Inv: 5, Rsp: 6},
	))
	v, ok := err.(*Violation)
	if !ok || v.Key != 2 {
		t.Fatalf("expected violation on key 2, got %v", err)
	}
	if !strings.Contains(err.Error(), "key 2") {
		t.Fatalf("violation message should name the key: %q", err.Error())
	}
}

func TestMemoizationHandlesWideConcurrency(t *testing.T) {
	// 16 fully-overlapping puts plus a final read: naive DFS is 16!
	// (~2e13) orderings; the memoized search visits at most
	// 2^16 × 17 (done-set × last-writer) states and must finish fast.
	// (Real recorded histories have concurrency width bounded by the
	// process count, which prunes far harder than this worst case.)
	var ops []Op
	for i := 0; i < 16; i++ {
		ops = append(ops, Op{Kind: Put, Key: 1, Val: uint64(i), Inv: 1, Rsp: 100})
	}
	ops = append(ops, Op{Kind: Get, Key: 1, Val: 7, OK: true, Inv: 101, Rsp: 102})
	mustOK(t, History{Ops: ops})
	// And an unsatisfiable variant terminates too.
	ops[len(ops)-1] = Op{Kind: Get, Key: 1, Val: 999, OK: true, Inv: 101, Rsp: 102}
	mustFail(t, History{Ops: ops}, 1)
}

// oversizedChunk builds >64 chain-overlapping ops on one key: one op whose
// window spans the whole run (a crash-opened window, the way RunCluster
// records effect-unknown operations) plus a staircase of quick puts chaining
// through it. No quiescent cut exists anywhere inside.
func oversizedChunk(key uint64) []Op {
	ops := []Op{{Kind: Put, Key: key, Val: 1000, Inv: 1, Rsp: 100000}}
	for i := 0; i < 80; i++ {
		t := uint64(10 + 2*i)
		ops = append(ops, Op{Kind: Put, Key: key, Val: uint64(i), Inv: t, Rsp: t + 1})
	}
	return ops
}

func TestOversizedChunkDegradesWithoutPanic(t *testing.T) {
	// 81 mutually-overlapping ops exceed the 64-bit DFS bitset; the checker
	// must over-approximate instead of panicking, and a read consistent
	// with one of the chunk's puts is accepted.
	ops := oversizedChunk(1)
	ops = append(ops, Op{Kind: Get, Key: 1, Val: 79, OK: true, Inv: 200000, Rsp: 200001})
	mustOK(t, History{Ops: ops})
}

func TestOversizedChunkStillCatchesLaterViolation(t *testing.T) {
	// Degrading inside the oversized window must not blind the checker
	// past it: after the quiescent cut, a read of a value no put ever
	// wrote is inconsistent with every over-approximated state.
	ops := oversizedChunk(1)
	ops = append(ops, Op{Kind: Get, Key: 1, Val: 999999, OK: true, Inv: 200000, Rsp: 200001})
	mustFail(t, History{Ops: ops}, 1)
}

func TestOversizedChunkIsolatedPerKey(t *testing.T) {
	// An oversized window on one key leaves other keys fully checked.
	ops := oversizedChunk(1)
	ops = append(ops,
		Op{Kind: Put, Key: 2, Val: 7, Inv: 300000, Rsp: 300001},
		Op{Kind: Get, Key: 2, Val: 8, OK: true, Inv: 300002, Rsp: 300003},
	)
	mustFail(t, History{Ops: ops}, 2)
}
