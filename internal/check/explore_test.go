package check

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/vclock"
)

// refKV is a linearizable reference dictionary: every operation is atomic
// under one mutex. It ticks the caller's virtual clock so lockstep runs
// interleave operations rather than serializing them by accident.
type refKV struct {
	mu sync.Mutex
	m  map[uint64]uint64
	// brokenDelete makes Delete report true unconditionally — a seeded
	// specification bug the checker must catch.
	brokenDelete bool
}

func newRefKV(broken bool) *refKV {
	return &refKV{m: map[uint64]uint64{}, brokenDelete: broken}
}

func (r *refKV) Name() string { return "ref" }

func (r *refKV) Get(th *htm.Thread, key uint64) (uint64, bool) {
	th.P.Tick(40)
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[key]
	return v, ok
}

func (r *refKV) Put(th *htm.Thread, key, val uint64) {
	th.P.Tick(60)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[key] = val
}

func (r *refKV) Delete(th *htm.Thread, key uint64) bool {
	th.P.Tick(60)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[key]
	delete(r.m, key)
	if r.brokenDelete {
		return true
	}
	return ok
}

func (r *refKV) Scan(th *htm.Thread, from uint64, max int, fn func(k, v uint64) bool) int {
	th.P.Tick(80)
	r.mu.Lock()
	defer r.mu.Unlock()
	var keys []uint64
	for k := range r.m {
		if k >= from {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := 0
	for _, k := range keys {
		if n == max {
			break
		}
		n++
		if !fn(k, r.m[k]) {
			break
		}
	}
	return n
}

func refFactory(h *htm.HTM, boot *htm.Thread) tree.KV       { return newRefKV(false) }
func brokenRefFactory(h *htm.HTM, boot *htm.Thread) tree.KV { return newRefKV(true) }

// wallDevice builds a tiny real device for tests that only need Threads.
func wallDevice() *htm.HTM {
	return htm.New(simmem.NewArena(1<<12), htm.DefaultConfig)
}

func TestRunWorkloadAcceptsReference(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		wl := DefaultWorkload()
		wl.Seed = seed
		wl.Slack = seed % 3 * 7
		hist, _, err := RunWorkload(refFactory, wl, htm.FaultSpec{})
		if err != nil {
			t.Fatalf("seed %d: reference KV rejected:\n%v", seed, err)
		}
		if s := hist.Stats(); s.Ops < wl.Procs*wl.Ops {
			t.Fatalf("seed %d: only %d ops recorded for %d issued", seed, s.Ops, wl.Procs*wl.Ops)
		}
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	wl := DefaultWorkload()
	wl.Seed = 9
	h1, _, err1 := RunWorkload(refFactory, wl, htm.FaultSpec{})
	h2, _, err2 := RunWorkload(refFactory, wl, htm.FaultSpec{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if len(h1.Ops) != len(h2.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(h1.Ops), len(h2.Ops))
	}
	for i := range h1.Ops {
		if h1.Ops[i] != h2.Ops[i] {
			t.Fatalf("op %d differs:\n%v\n%v", i, h1.Ops[i], h2.Ops[i])
		}
	}
}

func TestSweepCatchesBrokenReference(t *testing.T) {
	sc := DefaultSweep(8)
	// The broken Delete is schedule-independent, so drop fault variants.
	sc.Faults = nil
	n, fail := Sweep("ref-broken", brokenRefFactory, sc)
	if fail == nil {
		t.Fatalf("broken reference survived %d histories", n)
	}
	line := fail.ReproLine()
	if !strings.Contains(line, "EUNO_CHECK_REPRO='tree=ref-broken;wl=") {
		t.Fatalf("repro line malformed: %s", line)
	}
	// The shrunk case must replay deterministically.
	r, err := ParseRepro(strings.TrimSuffix(strings.SplitAfter(line, "'")[1], "'"))
	if err != nil {
		// Extract between the quotes instead.
		t.Fatalf("repro line did not parse: %v (%s)", err, line)
	}
	if _, _, err := RunWorkload(brokenRefFactory, r.Workload, r.Fault); err == nil {
		t.Fatalf("shrunk repro did not reproduce: %s", line)
	}
	// Shrinking should have reduced the default 40 ops/proc.
	if fail.Workload.Ops >= DefaultWorkload().Ops && fail.Workload.Procs >= DefaultWorkload().Procs {
		t.Fatalf("no shrinking happened: %s", fail.Workload)
	}
}

func TestWorkloadRoundtrip(t *testing.T) {
	wl := DefaultWorkload()
	wl.Seed, wl.Slack = 123, 17
	got, err := ParseWorkload(wl.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != wl {
		t.Fatalf("roundtrip mismatch: %s vs %s", got, wl)
	}
	if _, err := ParseWorkload("procs=0,ops=1,keys=1,seed=0,slack=0,mix=100/0/0/0,preload=0"); err == nil {
		t.Fatal("accepted zero procs")
	}
	if _, err := ParseWorkload("procs=1,ops=1,keys=1,seed=0,slack=0,mix=50/0/0/0,preload=0"); err == nil {
		t.Fatal("accepted mix not summing to 100")
	}
}

func TestReproRoundtrip(t *testing.T) {
	r := Repro{
		Tree:     "euno-btree",
		Workload: DefaultWorkload(),
		Fault:    htm.FaultSpec{Point: htm.FaultMidSplit, Action: htm.ActAbort, Nth: 2},
	}
	got, err := ParseRepro(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("roundtrip mismatch:\n%s\n%s", got, r)
	}
}

// TestWallModeRecorder drives real goroutines (host scheduler) against the
// reference KV with wall-clock timestamps and checks the history.
func TestWallModeRecorder(t *testing.T) {
	kv := newRefKV(false)
	rec := NewRecorder(kv, Wall)
	universe := []uint64{3, 10, 17, 24}
	rec.SetUniverse(universe)
	var wg sync.WaitGroup
	workers := 4
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := wallDevice().NewThread(vclock.NewWallProc(w+1, 0), uint64(w)+1)
			r := vclock.NewRand(uint64(w) + 7)
			for i := 0; i < iters; i++ {
				k := universe[r.Intn(len(universe))]
				switch r.Intn(4) {
				case 0:
					rec.Put(th, k, k<<20|uint64(w)<<16|uint64(i))
				case 1:
					rec.Delete(th, k)
				case 2:
					rec.Scan(th, k, 2, func(_, _ uint64) bool { return true })
				default:
					rec.Get(th, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := Check(rec.History()); err != nil {
		t.Fatalf("wall-mode history rejected:\n%v", err)
	}
}

// TestScanDecomposition scripts one scan and inspects the derived per-key
// observations, including absent observations for skipped universe keys.
func TestScanDecomposition(t *testing.T) {
	kv := newRefKV(false)
	rec := NewRecorder(kv, Wall)
	boot := wallDevice().NewThread(vclock.NewWallProc(0, 0), 1)
	rec.SetUniverse([]uint64{5, 10, 15, 20, 25})
	kv.Put(boot, 10, 100)
	kv.Put(boot, 20, 200)

	rec.Reset()
	n := rec.Scan(boot, 5, 10, func(_, _ uint64) bool { return true })
	if n != 2 {
		t.Fatalf("scan visited %d", n)
	}
	h := rec.History()
	var present, absent []uint64
	for _, o := range h.Ops {
		if o.Kind != ScanObs {
			t.Fatalf("unexpected op %v", o)
		}
		if o.OK {
			present = append(present, o.Key)
		} else {
			absent = append(absent, o.Key)
		}
	}
	sortU64(present)
	sortU64(absent)
	if len(present) != 2 || present[0] != 10 || present[1] != 20 {
		t.Fatalf("present obs %v", present)
	}
	// Scan exhausted the tree (n < max): coverage is unbounded, so all
	// unvisited universe keys >= from are absent.
	if len(absent) != 3 || absent[0] != 5 || absent[1] != 15 || absent[2] != 25 {
		t.Fatalf("absent obs %v", absent)
	}

	// Early stop: coverage ends at the last visited key.
	rec.Reset()
	rec.Scan(boot, 5, 1, func(_, _ uint64) bool { return true })
	h = rec.History()
	absent = absent[:0]
	for _, o := range h.Ops {
		if !o.OK {
			absent = append(absent, o.Key)
		}
	}
	if len(absent) != 1 || absent[0] != 5 {
		t.Fatalf("bounded scan absent obs %v", absent)
	}
}
