package check

import (
	"sort"
	"sync"
	"sync/atomic"

	"eunomia/internal/htm"
	"eunomia/internal/tree"
)

// Mode selects the Recorder's timestamp source.
type Mode uint8

const (
	// Virtual timestamps come from each thread's virtual clock (th.P.Now()).
	// Under the vclock lockstep simulator all procs share one global
	// timeline, so timestamps are totally ordered and precedence is exact.
	// Only use Virtual when every recording thread runs under one Sim.
	Virtual Mode = iota
	// Wall timestamps are draws from a single shared atomic counter, taken
	// immediately before invocation and after response. If a responded
	// (drew its Rsp) before b invoked (drew its Inv), then a really did
	// complete before b started, so Rsp(a) < Inv(b) is a sound real-time
	// precedence for goroutines running on the actual host scheduler.
	Wall
)

// Recorder wraps any tree.KV and records a complete invocation/response
// history suitable for Check. It implements tree.KV itself, so workloads
// run unchanged against it.
//
// Range scans are decomposed into per-key observations: the underlying
// trees guarantee per-leaf-atomic (hence per-key-atomic) scans, so each
// visited key becomes a present observation, and — when a universe of
// checked keys is declared via SetUniverse — every universe key inside the
// range the scan definitely covered becomes an absent observation. All
// observations share the scan's [Inv, Rsp] window.
type Recorder struct {
	inner tree.KV
	mode  Mode

	wall atomic.Uint64

	mu       sync.Mutex
	ops      []Op
	universe []uint64 // sorted checked keys, for scan absent-observations
	initial  map[uint64]uint64
}

// NewRecorder wraps kv. The zero history starts empty with no initial state.
func NewRecorder(kv tree.KV, mode Mode) *Recorder {
	return &Recorder{inner: kv, mode: mode}
}

// SetUniverse declares the checked-key universe (need not be sorted). Scans
// use it to derive absent observations; keys outside the universe are still
// recorded when visited but never generate absence claims.
func (r *Recorder) SetUniverse(keys []uint64) {
	u := append([]uint64(nil), keys...)
	sortU64(u)
	r.mu.Lock()
	r.universe = u
	r.mu.Unlock()
}

// SetInitial declares the pre-recording state of key (e.g. a preload done
// before recording began). Checker timestamps only cover the recorded
// window, so seeding initial state here avoids mixing clock domains.
func (r *Recorder) SetInitial(key, val uint64) {
	r.mu.Lock()
	if r.initial == nil {
		r.initial = map[uint64]uint64{}
	}
	r.initial[key] = val
	r.mu.Unlock()
}

// History snapshots the recorded history.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := History{Ops: append([]Op(nil), r.ops...)}
	if r.initial != nil {
		h.Initial = make(map[uint64]uint64, len(r.initial))
		for k, v := range r.initial {
			h.Initial[k] = v
		}
	}
	return h
}

// Reset clears recorded operations (keeps universe and initial state).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ops = r.ops[:0]
	r.mu.Unlock()
}

// Name implements tree.KV.
func (r *Recorder) Name() string { return r.inner.Name() + "+rec" }

// stamp draws a timestamp in the configured mode.
func (r *Recorder) stamp(th *htm.Thread) uint64 {
	if r.mode == Virtual {
		return th.P.Now()
	}
	return r.wall.Add(1)
}

func (r *Recorder) record(ops ...Op) {
	r.mu.Lock()
	r.ops = append(r.ops, ops...)
	r.mu.Unlock()
}

// Get implements tree.KV.
func (r *Recorder) Get(th *htm.Thread, key uint64) (uint64, bool) {
	inv := r.stamp(th)
	v, ok := r.inner.Get(th, key)
	rsp := r.stamp(th)
	r.record(Op{Kind: Get, Key: key, Val: v, OK: ok, Inv: inv, Rsp: rsp, Proc: th.P.ID()})
	return v, ok
}

// Put implements tree.KV.
func (r *Recorder) Put(th *htm.Thread, key, val uint64) {
	inv := r.stamp(th)
	r.inner.Put(th, key, val)
	rsp := r.stamp(th)
	r.record(Op{Kind: Put, Key: key, Val: val, OK: true, Inv: inv, Rsp: rsp, Proc: th.P.ID()})
}

// Delete implements tree.KV.
func (r *Recorder) Delete(th *htm.Thread, key uint64) bool {
	inv := r.stamp(th)
	ok := r.inner.Delete(th, key)
	rsp := r.stamp(th)
	r.record(Op{Kind: Delete, Key: key, OK: ok, Inv: inv, Rsp: rsp, Proc: th.P.ID()})
	return ok
}

// Scan implements tree.KV. Each visited key is recorded as a present
// observation. Absent observations are derived for universe keys in
// [from, bound] that the scan skipped, where bound is the last visited key
// when the scan stopped early (caller returned false, or max results
// reached) and unbounded otherwise: an early-stopped scan has only
// definitely covered up to its last visit, while a scan that ran out of
// tree has covered the whole remaining keyspace.
func (r *Recorder) Scan(th *htm.Thread, from uint64, max int, fn func(key, val uint64) bool) int {
	if max <= 0 {
		return r.inner.Scan(th, from, max, fn)
	}
	type visit struct{ key, val uint64 }
	var visited []visit
	stopped := false
	inv := r.stamp(th)
	n := r.inner.Scan(th, from, max, func(key, val uint64) bool {
		visited = append(visited, visit{key, val})
		if !fn(key, val) {
			stopped = true
			return false
		}
		return true
	})
	rsp := r.stamp(th)
	proc := th.P.ID()

	ops := make([]Op, 0, len(visited))
	for _, v := range visited {
		ops = append(ops, Op{Kind: ScanObs, Key: v.key, Val: v.val, OK: true, Inv: inv, Rsp: rsp, Proc: proc})
	}

	bound := ^uint64(0)
	if stopped || n == max {
		if len(visited) == 0 {
			// Unreachable in practice: a scan only stops early after at
			// least one visit (max > 0 here). Claim no coverage.
			r.record(ops...)
			return n
		}
		bound = visited[len(visited)-1].key
	}
	r.mu.Lock()
	seen := map[uint64]struct{}{}
	for _, v := range visited {
		seen[v.key] = struct{}{}
	}
	for _, k := range r.universe {
		if k < from || k > bound {
			continue
		}
		if _, ok := seen[k]; ok {
			continue
		}
		ops = append(ops, Op{Kind: ScanObs, Key: k, OK: false, Inv: inv, Rsp: rsp, Proc: proc})
	}
	r.ops = append(r.ops, ops...)
	r.mu.Unlock()
	return n
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
