// Package check is the concurrency-correctness subsystem applied to every
// tree in the repository. It has three layers:
//
//  1. A *complete* per-key linearizability checker (linearize.go) over the
//     full dictionary API — get, put, delete, and range scans — using the
//     Wing & Gong just-in-time linearization search. Completeness matters:
//     the previous checker applied three sound-but-incomplete precedence
//     rules and explicitly excluded deletes and scans, so entire classes of
//     stitching bugs (a put landing in a just-split leaf, a scan observing
//     a tombstone resurrect) were invisible to it. Complete per-key checking
//     is sufficient for the trees' actual guarantee: linearizability is
//     compositional over keys (Herlihy & Wing locality), and the trees
//     promise per-key atomicity — scans snapshot one leaf at a time, so a
//     scan decomposes into independent per-key read observations
//     (see Recorder.Scan).
//
//  2. A Recorder (recorder.go) that wraps any tree.KV and records an
//     invocation/response history, in virtual-time mode (timestamps from the
//     lockstep simulator's global timeline) or wall-clock mode (timestamps
//     from a shared atomic counter, so "a responded before b was invoked"
//     is still a sound real-time precedence).
//
//  3. A deterministic schedule-exploration fuzzer (explore.go) that drives
//     the vclock lockstep scheduler through seeded slack/priority
//     perturbations and fault-injection plans (internal/htm/faults.go),
//     shrinks failing cases (threads → ops → keys), and prints a
//     one-command repro line; internal/check/trees can replay it.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the operation type of a history record.
type Kind uint8

// Operation kinds. ScanObs is a single-key observation derived from a range
// scan: the scan either visited the key (OK, with its value) or definitely
// passed over it (!OK); both are checked exactly like a Get.
const (
	Get Kind = iota
	Put
	Delete
	ScanObs
)

// String returns a short name.
func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "del"
	case ScanObs:
		return "scan"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one completed operation of a recorded history.
type Op struct {
	Kind Kind
	Key  uint64
	// Val is the value written (Put) or observed (Get/ScanObs with OK).
	Val uint64
	// OK reports presence: for Get/ScanObs, whether the key was found; for
	// Delete, whether the key was present (the tree's return value). Always
	// true for Put.
	OK bool
	// Inv and Rsp are the invocation and response timestamps. In virtual
	// mode they are points on the simulator's global cycle timeline; in wall
	// mode they are draws from a shared atomic counter. In both modes
	// Rsp(a) < Inv(b) is a sound "a happened before b" precedence.
	Inv, Rsp uint64
	// Proc is the virtual core (or worker) that issued the operation.
	Proc int
}

func (o Op) String() string {
	switch o.Kind {
	case Put:
		return fmt.Sprintf("p%d put(%d,%d) @[%d,%d]", o.Proc, o.Key, o.Val, o.Inv, o.Rsp)
	case Delete:
		return fmt.Sprintf("p%d del(%d)=%v @[%d,%d]", o.Proc, o.Key, o.OK, o.Inv, o.Rsp)
	default:
		if o.OK {
			return fmt.Sprintf("p%d %s(%d)=%d @[%d,%d]", o.Proc, o.Kind, o.Key, o.Val, o.Inv, o.Rsp)
		}
		return fmt.Sprintf("p%d %s(%d)=absent @[%d,%d]", o.Proc, o.Kind, o.Key, o.Inv, o.Rsp)
	}
}

// History is a complete (no pending operations) recorded history.
type History struct {
	Ops []Op
	// Initial seeds per-key initial state: keys present before the recorded
	// window opened, with their values (e.g. a preload phase that was not
	// recorded). Keys absent from the map start absent.
	Initial map[uint64]uint64
}

// Stats summarizes a history.
type Stats struct {
	Ops  int
	Keys int
}

// Stats counts the operations and distinct keys of the history.
func (h History) Stats() Stats {
	keys := map[uint64]struct{}{}
	for _, o := range h.Ops {
		keys[o.Key] = struct{}{}
	}
	return Stats{Ops: len(h.Ops), Keys: len(keys)}
}

// formatViolation renders the failing window, sorted by invocation.
func formatViolation(v *Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "key %d (reachable states at window start:", v.Key)
	for _, s := range v.Starts {
		fmt.Fprintf(&b, " %s", s)
	}
	b.WriteString("):\n")
	sorted := append([]Op(nil), v.Ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Inv < sorted[j].Inv })
	for _, o := range sorted {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	return b.String()
}
