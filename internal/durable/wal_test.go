package durable

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// mapState is a trivial "tree" for store tests: a locked map plus the
// recovery apply callback.
type mapState struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func newMapState() *mapState { return &mapState{m: map[uint64]uint64{}} }

func (s *mapState) apply(op Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op.Delete {
		delete(s.m, op.Key)
	} else {
		s.m[op.Key] = op.Val
	}
}

func (s *mapState) put(k, v uint64) func() {
	return func() {
		s.mu.Lock()
		s.m[k] = v
		s.mu.Unlock()
	}
}

func (s *mapState) del(k uint64) func() bool {
	return func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.m[k]; !ok {
			return false
		}
		delete(s.m, k)
		return true
	}
}

func (s *mapState) scan(emit func(k, v uint64)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		emit(k, v)
	}
	return nil
}

func (s *mapState) snapshot() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[uint64]uint64{}
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

func sameMap(t *testing.T, got, want map[uint64]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("state size: got %d want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("key %d: got %v,%v want %v", k, gv, ok, v)
		}
	}
}

func TestFrameRoundtrip(t *testing.T) {
	frames := []frame{
		{op: opPut, seq: 1, key: 42, val: 99},
		{op: opDel, seq: 2, key: 42},
		{op: opSnapHeader, seq: 7, key: 3},
		{op: opSnapRecord, key: 1, val: 2},
		{op: opSnapFooter, seq: 7, key: 1},
	}
	var buf []byte
	for _, f := range frames {
		buf = appendFrame(buf, f)
	}
	off := 0
	for i, want := range frames {
		got, n, ok := decodeFrame(buf, off)
		if !ok {
			t.Fatalf("frame %d: decode failed", i)
		}
		if got.op != want.op || got.seq != want.seq || got.key != want.key ||
			got.val != want.val || got.group != nil {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}

	// Corruptions must all fail validation.
	good := appendFrame(nil, frame{op: opPut, seq: 9, key: 5, val: 6})
	if _, _, ok := decodeFrame(good[:len(good)-1], 0); ok {
		t.Fatal("truncated frame decoded")
	}
	flip := append([]byte(nil), good...)
	flip[frameHeaderSize+3] ^= 0x10
	if _, _, ok := decodeFrame(flip, 0); ok {
		t.Fatal("bit-flipped frame decoded")
	}
	if _, _, ok := decodeFrame(make([]byte, 64), 0); ok {
		t.Fatal("zeroed region decoded")
	}
	badOp := append([]byte(nil), good...)
	// A wrong op with a recomputed CRC must still be rejected.
	badOp[frameHeaderSize] = 77
	if _, _, ok := decodeFrame(badOp, 0); ok {
		t.Fatal("bad-op frame decoded")
	}
}

func TestStoreRoundtrip(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db"}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := st.LogPut(i, i*10, state.put(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 100; i += 2 {
		ok, err := st.LogDelete(i, state.del(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Deleting an absent key must not append a frame.
	if ok, err := st.LogDelete(999, state.del(999)); ok || err != nil {
		t.Fatalf("absent delete: ok=%v err=%v", ok, err)
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := st.LogPut(1, 2, func() {}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("put after close: %v", err)
	}

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	ri := st2.RecoveryInfo()
	if ri.ReplayedFrames != 150 { // 100 puts + 50 deletes
		t.Fatalf("replayed %d frames, want 150", ri.ReplayedFrames)
	}
	if ri.MaxSeq != 150 {
		t.Fatalf("max seq %d, want 150", ri.MaxSeq)
	}
}

func TestImmediateModeFlushPerOp(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := uint64(0); i < 10; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	// A single sequential writer gets no batching: one fsync per op.
	if s.Flushes != 10 || s.FlushedFrames != 10 {
		t.Fatalf("flushes=%d frames=%d, want 10/10", s.Flushes, s.FlushedFrames)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1, FlushInterval: 2 * time.Millisecond}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				if err := st.LogPut(k, k, state.put(k, k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := st.Stats()
	if s.FlushedFrames != workers*per {
		t.Fatalf("flushed %d frames, want %d", s.FlushedFrames, workers*per)
	}
	// Timed group commit must batch: far fewer fsyncs than frames.
	if s.Flushes >= s.FlushedFrames {
		t.Fatalf("no batching: %d flushes for %d frames", s.Flushes, s.FlushedFrames)
	}
	if s.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", s.MaxBatch)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), state.snapshot())
}

func TestConcurrentLeaderGroupCommit(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				if err := st.LogPut(k, k^0xbeef, state.put(k, k^0xbeef)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
}

func TestShortWritesRetried(t *testing.T) {
	fs := NewMemFS(FaultPlan{ShortWriteEveryN: 3})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := st.LogPut(i, i+7, state.put(i, i+7)); err != nil {
			t.Fatal(err)
		}
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Reboot()
	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
}

func TestFailedFsyncPoisonsShard(t *testing.T) {
	fs := NewMemFS(FaultPlan{FailSyncAtIO: 3}) // Open's dir fsync=1; first put: Write=2, Sync=3
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	err = st.LogPut(1, 1, state.put(1, 1))
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("first put after failed fsync: %v", err)
	}
	// fsyncgate: the shard stays poisoned even though later fsyncs would
	// succeed — the failed batch's durability is unknowable.
	err = st.LogPut(2, 2, state.put(2, 2))
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("second put on poisoned shard: %v", err)
	}
}

func TestCrashLosesOnlyUnacked(t *testing.T) {
	for crashAt := uint64(1); crashAt <= 40; crashAt++ {
		fs := NewMemFS(FaultPlan{CrashAtIO: crashAt, TornSeed: crashAt * 31})
		state := newMapState()
		acked := map[uint64]uint64{}
		st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
		if err != nil && !fs.Crashed() {
			t.Fatal(err)
		}
		if err == nil {
			// The crash can also fire inside Open (its dir fsync is an IO
			// point); then nothing is acknowledged and recovery must yield
			// an empty store.
			for i := uint64(1); i <= 30; i++ {
				if err := st.LogPut(i, i*3, state.put(i, i*3)); err == nil {
					acked[i] = i * 3
				}
			}
			st.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crashAt=%d: crash never fired", crashAt)
		}
		fs.Reboot()
		state2 := newMapState()
		st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
		if err != nil {
			t.Fatalf("crashAt=%d: recovery: %v", crashAt, err)
		}
		got := state2.snapshot()
		st2.Close()
		// Every acknowledged write must survive; survivors must have been
		// written (values are a function of the key, so any resurrection
		// with a wrong value would also be caught).
		for k, v := range acked {
			if gv, ok := got[k]; !ok || gv != v {
				t.Fatalf("crashAt=%d: acked write %d=%d lost (got %v,%v)", crashAt, k, v, gv, ok)
			}
		}
		for k, v := range got {
			if k < 1 || k > 30 || v != k*3 {
				t.Fatalf("crashAt=%d: impossible recovered entry %d=%d", crashAt, k, v)
			}
		}
	}
}
