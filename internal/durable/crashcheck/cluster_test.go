package crashcheck

import (
	"os"
	"testing"

	"eunomia"
	"eunomia/internal/durable"
)

// TestClusterCrashSweep is the cluster acceptance gate: >= 100 seeded
// crash points (full mode) killing seeded subsets of the shard disks,
// every recovered cluster verified by the linearizability checker.
// -short trims the budget for CI's quick lane.
func TestClusterCrashSweep(t *testing.T) {
	points := uint64(60)
	if testing.Short() {
		points = 15
	}
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 40, Keys: 16, Seed: 31}
	fired, err := ClusterSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired < int(points)*2/3 {
		t.Fatalf("only %d of %d cluster crash points fired", fired, points)
	}
	t.Logf("cluster sweep: %d crash points fired across shard subsets, zero violations", fired)
}

// TestClusterCrashMidBarrier drives crash points through the cluster
// snapshot barrier: a mid-run Cluster.Snapshot syncs every shard and
// commits the manifest while a seeded disk subset — including, some
// points, the manifest disk itself — is dying.
func TestClusterCrashMidBarrier(t *testing.T) {
	points := uint64(50)
	if testing.Short() {
		points = 12
	}
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 40, Keys: 16, Seed: 57, Barrier: true}
	fired, err := ClusterSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no crash points fired")
	}
	t.Logf("mid-barrier sweep: %d crash points fired, zero violations", fired)
}

// TestClusterCrashRestartCycles mirrors Scenario.Restarts at the cluster
// level: crash a shard subset, recover the cluster, acknowledge new
// writes, restart cleanly twice more. Torn-tail healing and
// later-generation replay must hold independently in every shard's WAL
// group.
func TestClusterCrashRestartCycles(t *testing.T) {
	points := uint64(40)
	if testing.Short() {
		points = 10
	}
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 30, Keys: 12, Seed: 71, Restarts: 2}
	fired, err := ClusterSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired < int(points)*2/3 {
		t.Fatalf("only %d of %d crash points fired", fired, points)
	}
	t.Logf("cluster restart-cycle sweep: %d crash points fired, zero violations", fired)
}

// TestClusterAckBeforeFlushMutantCaught: the cluster harness must retain
// the single-DB harness's teeth — shards that acknowledge before fsync
// lose acknowledged writes on a shard-subset crash, and the checker (or
// the barrier verification) must reject the recovered cluster.
func TestClusterAckBeforeFlushMutantCaught(t *testing.T) {
	// FlushBytes forces periodic real flushes, so the broken mode has IO
	// points mid-run to crash at (without it nothing is ever written and
	// the crash lands inside Open, before anything is acknowledged).
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 60, Keys: 8, Seed: 5, FlushBytes: 256, AckBeforeFlush: true}
	var failing *ClusterScenario
	for p := uint64(1); p <= 24; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p * 17
		s.Kill = p%uint64(1<<base.Shards-1) + 1
		r := RunCluster(s)
		if !r.Crashed {
			continue
		}
		if r.Err != nil {
			failing = &s
			break
		}
	}
	if failing == nil {
		t.Fatal("cluster ack-before-flush mutant survived every crash point: the checker is blind")
	}
	parsed, err := ParseCluster(failing.String())
	if err != nil {
		t.Fatalf("repro token does not parse: %v", err)
	}
	if parsed != *failing {
		t.Fatalf("repro round-trip mismatch:\n  %+v\n  %+v", parsed, *failing)
	}
	if r := RunCluster(parsed); r.Err == nil {
		t.Fatal("replayed cluster repro did not reproduce the violation")
	}
	t.Logf("cluster mutant caught; repro: %s", ClusterReproLine(*failing))
}

// TestClusterCrashHealSweep: the self-healing gate. Seeded crash points
// kill seeded shard-disk subsets mid-run; the disks then come back and
// the cluster's own repair loop — trip, reopen, WAL replay, watermark
// check, probation — must re-admit every shard, after which the
// re-admitted cluster takes acknowledged writes and the whole history
// (pre-crash acks, open windows, post-heal acks, post-reboot reads) is
// checked linearizable.
func TestClusterCrashHealSweep(t *testing.T) {
	points := uint64(30)
	if testing.Short() {
		points = 8
	}
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 40, Keys: 16, Seed: 93, Heal: true}
	fired, healed := 0, 0
	for p := uint64(1); p <= points; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p*2654435761 + base.Seed
		s.Kill = p%uint64(1<<base.Shards-1) + 1 // shard disks only
		r := RunCluster(s)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Crashed {
			fired++
		}
		if r.Healed {
			healed++
		}
	}
	if fired == 0 || healed == 0 {
		t.Fatalf("heal sweep exercised nothing: fired=%d healed=%d", fired, healed)
	}
	t.Logf("heal sweep: %d crash points fired, %d clusters healed in place, zero violations", fired, healed)
}

// TestClusterHealMutantCaught: repair with AdmitBeforeReplay — re-admit
// with no replay, no watermark check, no probation — must be caught by
// the heal fuzzer. If every crash point survives, the probation gate is
// decorative.
func TestClusterHealMutantCaught(t *testing.T) {
	base := ClusterScenario{Shards: 3, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 40, Keys: 16, Seed: 93, Heal: true, AdmitBeforeReplay: true}
	var failing *ClusterScenario
	for p := uint64(1); p <= 24 && failing == nil; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p*2654435761 + base.Seed
		s.Kill = p%uint64(1<<base.Shards-1) + 1
		r := RunCluster(s)
		if !r.Crashed || r.Err == nil {
			continue
		}
		// Whether the premature re-admission is observed depends on how the
		// hammer rounds interleave with the mutant repair loop, so only a
		// point that fails again is accepted — the printed repro token must
		// be actionable, not a one-off scheduling fluke.
		for try := 0; try < 5; try++ {
			if RunCluster(s).Err != nil {
				failing = &s
				break
			}
		}
	}
	if failing == nil {
		t.Fatal("admit-before-replay mutant survived every heal crash point: the probation gate is blind")
	}
	parsed, err := ParseCluster(failing.String())
	if err != nil {
		t.Fatalf("repro token does not parse: %v", err)
	}
	if parsed != *failing {
		t.Fatalf("repro round-trip mismatch:\n  %+v\n  %+v", parsed, *failing)
	}
	// The replay races the mutant repair loop against wall-clock hammer
	// rounds, so reproduction probability per attempt is high but not 1 —
	// and drops further on a loaded machine (race detector, parallel
	// packages). The budget is sized so a genuine repro practically cannot
	// miss while a fixed bug still fails fast.
	reproduced := false
	for try := 0; try < 30 && !reproduced; try++ {
		reproduced = RunCluster(parsed).Err != nil
	}
	if !reproduced {
		t.Fatal("replayed heal-mutant repro did not reproduce the violation in 30 attempts")
	}
	t.Logf("heal mutant caught; repro: %s", ClusterReproLine(*failing))
}

// TestClusterReshardCrashSweep drives seeded crash points through a live
// 2->4 split running concurrently with the writers: points land mid
// bulk-copy, mid-catch-up, inside the fenced cutover's manifest commit,
// and during purge — on source disks, the freshly opened destination
// disks, or the root disk holding the migration manifest. Every recovered
// cluster (which resumes the migration from the journaled watermarks,
// then survives a restart cycle) must check linearizable.
func TestClusterReshardCrashSweep(t *testing.T) {
	points := uint64(40)
	if testing.Short() {
		points = 10
	}
	base := ClusterScenario{Shards: 2, Reshard: 4, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 50, Keys: 24, Seed: 131, Restarts: 1}
	fired, err := ClusterSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no crash points fired during the reshard sweep")
	}
	t.Logf("reshard sweep: %d crash points fired mid-migration, zero violations", fired)
}

// TestClusterReshardMergeCrashSweep is the shrink direction: a 4->2 merge
// retires two serving shards while their keys drain to the survivors.
func TestClusterReshardMergeCrashSweep(t *testing.T) {
	points := uint64(24)
	if testing.Short() {
		points = 6
	}
	base := ClusterScenario{Shards: 4, Reshard: 2, Kind: eunomia.EunoBTree,
		Procs: 2, Ops: 40, Keys: 20, Seed: 177}
	fired, err := ClusterSweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no crash points fired during the merge sweep")
	}
	t.Logf("merge sweep: %d crash points fired mid-migration, zero violations", fired)
}

// TestClusterReshardMutantCaught: a migration that cuts over without
// draining the dirty set loses writes acknowledged during the copy window
// — no crash needed, just live writers concurrent with the move. The
// harness must catch it: if every seed survives, the catch-up drain (and
// the fence around the final one) is decorative.
func TestClusterReshardMutantCaught(t *testing.T) {
	// The universe must be big enough that the bulk copy genuinely
	// overlaps the writers — over a small one the migration finishes
	// before a single racing write lands.
	base := ClusterScenario{Shards: 3, Reshard: 5, CutBeforeCatchup: true,
		Kind: eunomia.EunoBTree, Procs: 3, Ops: 200, Keys: 2048, Kill: 1}
	var failing *ClusterScenario
	for seed := uint64(1); seed <= 8 && failing == nil; seed++ {
		s := base
		s.Seed = seed
		// The overlap between the writers and the copy window is a real
		// race; accept a seed only if it fails repeatably enough to print.
		for try := 0; try < 3; try++ {
			if RunCluster(s).Err != nil {
				failing = &s
				break
			}
		}
	}
	if failing == nil {
		t.Fatal("cut-before-catch-up mutant survived every seed: the migration fuzzer is blind")
	}
	parsed, err := ParseCluster(failing.String())
	if err != nil {
		t.Fatalf("repro token does not parse: %v", err)
	}
	if parsed != *failing {
		t.Fatalf("repro round-trip mismatch:\n  %+v\n  %+v", parsed, *failing)
	}
	reproduced := false
	for try := 0; try < 10 && !reproduced; try++ {
		reproduced = RunCluster(parsed).Err != nil
	}
	if !reproduced {
		t.Fatal("replayed reshard-mutant repro did not reproduce the violation in 10 attempts")
	}
	t.Logf("reshard mutant caught; repro: %s", ClusterReproLine(*failing))
}

// TestClusterBarrierDetectsRolledBackShard: commit a snapshot barrier,
// then replace one shard's disk with an empty one (a lost disk / stale
// backup). OpenCluster must refuse to serve: the shard recovers below the
// barrier vector, a state no single point in time ever had.
func TestClusterBarrierDetectsRolledBackShard(t *testing.T) {
	fses := make([]*durable.MemFS, 3)
	for i := range fses {
		fses[i] = durable.NewMemFS(durable.FaultPlan{})
	}
	manifestFS := durable.NewMemFS(durable.FaultPlan{})
	opts := func() eunomia.ClusterOptions {
		return eunomia.ClusterOptions{
			Shards: 3,
			Shard: eunomia.Options{
				ArenaWords: 1 << 19,
				Durability: eunomia.Durability{Dir: "clusterdb", FS: manifestFS},
			},
			PerShard: func(i int, o *eunomia.Options) { o.Durability.FS = fses[i] },
		}
	}
	c, err := eunomia.OpenCluster(opts())
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	for k := uint64(1); k <= 64; k++ {
		if err := sess.Put(k, k<<8|1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Sanity: an intact cluster reopens fine.
	c2, err := eunomia.OpenCluster(opts())
	if err != nil {
		t.Fatalf("intact cluster failed to reopen: %v", err)
	}
	c2.Close()

	// Wipe shard 1's disk. The barrier manifest survives; reopen must fail.
	fses[1] = durable.NewMemFS(durable.FaultPlan{})
	if _, err := eunomia.OpenCluster(opts()); err == nil {
		t.Fatal("cluster opened with a wiped shard behind a committed barrier: rollback undetected")
	} else {
		t.Logf("rolled-back shard rejected: %v", err)
	}
}

// TestClusterScenarioRoundtrip checks String/ParseCluster over a fully
// populated scenario.
func TestClusterScenarioRoundtrip(t *testing.T) {
	s := ClusterScenario{Shards: 5, Kill: 11, Kind: eunomia.Masstree,
		Procs: 3, Ops: 99, Keys: 31, Seed: 8, CrashAtIO: 42, TornSeed: 77,
		Restarts: 2, Barrier: true, Reshard: 7, CutBeforeCatchup: true,
		FlushInterval: 1_000_000,
		FlushBytes: 512, SnapshotBytes: 4096, AckBeforeFlush: true}
	parsed, err := ParseCluster(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != s {
		t.Fatalf("round-trip mismatch:\n  in:  %+v\n  out: %+v", s, parsed)
	}
	if _, err := ParseCluster("nope=1"); err == nil {
		t.Fatal("unknown field parsed")
	}
}

// TestClusterCrashRepro replays the scenario in EUNO_CLUSTER_CRASH_REPRO,
// the one-command repro printed when a cluster sweep fails.
func TestClusterCrashRepro(t *testing.T) {
	tok := os.Getenv("EUNO_CLUSTER_CRASH_REPRO")
	if tok == "" {
		t.Skip("EUNO_CLUSTER_CRASH_REPRO not set")
	}
	s, err := ParseCluster(tok)
	if err != nil {
		t.Fatal(err)
	}
	r := RunCluster(s)
	t.Logf("replay: crashed=%v acked=%d checked=%d", r.Crashed, r.Acked, r.Checked)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}
