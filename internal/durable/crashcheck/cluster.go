package crashcheck

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eunomia"
	"eunomia/internal/check"
	"eunomia/internal/durable"
	"eunomia/internal/shard"
)

// This file extends the crash harness to the sharded Cluster. The failure
// model is richer than the single-DB one: instead of the whole machine
// dying, a seeded SUBSET of the shard disks dies (k of N, chosen by a kill
// bitmask), possibly including the cluster root's manifest disk — so crash
// points land mid-group-commit on some shards while others keep serving,
// and mid-snapshot-barrier while the cluster-wide manifest is being
// committed. Writers deliberately continue past per-shard errors (a dead
// shard is not a dead process): every failed write stays in the history
// with an open window, exactly like the single-DB in-flight rule. After
// the run the whole cluster reboots, recovers through OpenCluster (which
// re-checks the snapshot-barrier vector), optionally survives extra
// restart cycles, and the full history — acked writes, open-window
// failures, post-recovery reads of the entire universe — goes through the
// linearizability checker.

// ClusterScenario is one fully-specified cluster crash-recovery run.
type ClusterScenario struct {
	Shards int    // cluster shards (default 3)
	Kill   uint64 // bitmask: bit i < Shards kills shard i's disk; bit Shards kills the manifest disk
	Kind   eunomia.Kind
	Procs  int    // concurrent writer goroutines (default 2)
	Ops    int    // operations per writer (default 40)
	Keys   uint64 // key universe size (default 16)
	Seed   uint64

	CrashAtIO uint64 // IO point (per killed disk's own IO stream) at which it dies
	TornSeed  uint64
	Restarts  int  // post-crash recover→write→restart cycles
	Barrier   bool // writer 0 triggers a cluster Snapshot mid-run (mid-barrier crash coverage)
	// Heal revives the killed disks after phase 1 and requires the
	// cluster's own repair loop — not a process restart — to trip, reopen,
	// replay, and re-admit every wounded shard before the run continues.
	// Acknowledged writes taken through the re-admitted shards join the
	// checked history, so a repair loop that loses data fails the checker.
	Heal bool
	// AdmitBeforeReplay passes the deliberately broken repair mode through
	// to RepairOptions: re-admit with no replay, no watermark check, no
	// probation. A Heal run with this set must FAIL the checker — the
	// mutant proving the probation gate has teeth.
	AdmitBeforeReplay bool

	// Reshard, when non-zero, starts a live Cluster.Reshard to this shard
	// count concurrently with phase 1's writers, so crash points land mid
	// bulk-copy, mid-catch-up, mid-cutover, and inside the migration
	// manifest commit — on source disks, destination disks (the kill mask
	// spans max(Shards, Reshard) disks), or the root manifest disk. After
	// recovery the migration resumes from the journaled move watermarks.
	Reshard int
	// CutBeforeCatchup passes the deliberately broken migration mode
	// through to ReshardOptions: cutover with no dirty-set drain. A Reshard
	// run with live writers must FAIL the checker under it.
	CutBeforeCatchup bool

	FlushInterval  time.Duration
	FlushBytes     int
	SnapshotBytes  int64
	AckBeforeFlush bool // the deliberately broken mode the harness must catch
}

func (s ClusterScenario) withDefaults() ClusterScenario {
	if s.Shards == 0 {
		s.Shards = 3
	}
	if s.Procs == 0 {
		s.Procs = 2
	}
	if s.Ops == 0 {
		s.Ops = 40
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	if s.Kill == 0 {
		s.Kill = 1
	}
	return s
}

// String encodes the scenario as the EUNO_CLUSTER_CRASH_REPRO token.
func (s ClusterScenario) String() string {
	return fmt.Sprintf("shards=%d,kill=%d,kind=%d,procs=%d,ops=%d,keys=%d,seed=%d,crash=%d,torn=%d,restarts=%d,barrier=%d,heal=%d,mutant=%d,reshard=%d,cutmut=%d,interval=%d,flushbytes=%d,snapbytes=%d,ack=%d",
		s.Shards, s.Kill, int(s.Kind), s.Procs, s.Ops, s.Keys, s.Seed, s.CrashAtIO, s.TornSeed,
		s.Restarts, b2i(s.Barrier), b2i(s.Heal), b2i(s.AdmitBeforeReplay), s.Reshard, b2i(s.CutBeforeCatchup),
		int64(s.FlushInterval), s.FlushBytes, s.SnapshotBytes, b2i(s.AckBeforeFlush))
}

// ParseCluster decodes a ClusterScenario from its String form.
func ParseCluster(tok string) (ClusterScenario, error) {
	var s ClusterScenario
	for _, kv := range strings.Split(strings.TrimSpace(tok), ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return s, fmt.Errorf("crashcheck: bad field %q", kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return s, fmt.Errorf("crashcheck: bad value in %q: %v", kv, err)
		}
		switch name {
		case "shards":
			s.Shards = int(n)
		case "kill":
			s.Kill = uint64(n)
		case "kind":
			s.Kind = eunomia.Kind(n)
		case "procs":
			s.Procs = int(n)
		case "ops":
			s.Ops = int(n)
		case "keys":
			s.Keys = uint64(n)
		case "seed":
			s.Seed = uint64(n)
		case "crash":
			s.CrashAtIO = uint64(n)
		case "torn":
			s.TornSeed = uint64(n)
		case "restarts":
			s.Restarts = int(n)
		case "barrier":
			s.Barrier = n != 0
		case "heal":
			s.Heal = n != 0
		case "mutant":
			s.AdmitBeforeReplay = n != 0
		case "reshard":
			s.Reshard = int(n)
		case "cutmut":
			s.CutBeforeCatchup = n != 0
		case "interval":
			s.FlushInterval = time.Duration(n)
		case "flushbytes":
			s.FlushBytes = int(n)
		case "snapbytes":
			s.SnapshotBytes = n
		case "ack":
			s.AckBeforeFlush = n != 0
		default:
			return s, fmt.Errorf("crashcheck: unknown field %q", name)
		}
	}
	return s, nil
}

// ClusterReproLine renders the one-command repro for a failing scenario.
func ClusterReproLine(s ClusterScenario) string {
	return fmt.Sprintf("EUNO_CLUSTER_CRASH_REPRO='%s' go test ./internal/durable/crashcheck -run TestClusterCrashRepro -v", s)
}

// RunCluster executes one cluster crash-recovery scenario.
func RunCluster(s ClusterScenario) Result {
	s = s.withDefaults()
	plan := durable.FaultPlan{CrashAtIO: s.CrashAtIO, TornSeed: s.TornSeed}
	// A Reshard run serves from max(Shards, Reshard) disks: destination
	// slots opened by the split get their own killable disks, so crash
	// points land on the copy's write side too.
	maxShards := s.Shards
	if s.Reshard > maxShards {
		maxShards = s.Reshard
	}
	fses := make([]*durable.MemFS, maxShards)
	for i := range fses {
		if s.Kill&(1<<uint(i)) != 0 {
			fses[i] = durable.NewMemFS(plan)
		} else {
			fses[i] = durable.NewMemFS(durable.FaultPlan{})
		}
	}
	manifestFS := durable.NewMemFS(durable.FaultPlan{})
	if s.Kill&(1<<uint(maxShards)) != 0 {
		manifestFS = durable.NewMemFS(plan)
	}
	anyCrashed := func() bool {
		for _, fs := range fses {
			if fs.Crashed() {
				return true
			}
		}
		return manifestFS.Crashed()
	}
	open := func(shards int) (*eunomia.Cluster, error) {
		co := eunomia.ClusterOptions{
			Shards:  shards,
			Reshard: eunomia.ReshardOptions{CutBeforeCatchup: s.CutBeforeCatchup},
			Shard: eunomia.Options{
				Kind:       s.Kind,
				ArenaWords: 1 << 19,
				Durability: eunomia.Durability{
					Dir:            "clusterdb",
					FS:             manifestFS,
					FlushInterval:  s.FlushInterval,
					FlushBytes:     s.FlushBytes,
					SnapshotBytes:  s.SnapshotBytes,
					AckBeforeFlush: s.AckBeforeFlush,
				},
			},
			PerShard: func(i int, o *eunomia.Options) { o.Durability.FS = fses[i] },
		}
		if s.Heal {
			// Heal runs need a sensitive breaker and a tight repair loop so
			// the full trip→reopen→probation→readmit cycle fits in one run.
			co.Health = eunomia.HealthOptions{Window: 8, TripFailures: 2}
			co.Repair = eunomia.RepairOptions{
				Backoff:           2 * time.Millisecond,
				MaxBackoff:        20 * time.Millisecond,
				Probes:            2,
				ProbeInterval:     time.Millisecond,
				AdmitBeforeReplay: s.AdmitBeforeReplay,
			}
		}
		return eunomia.OpenCluster(co)
	}
	c, err := open(s.Shards)
	if err != nil && !anyCrashed() {
		return Result{Err: fmt.Errorf("crashcheck: first cluster open: %w", err)}
	}
	// After a successful first open the topology record is durable, so
	// recovery opens adopt the stored shard count: a reshard may have
	// completed (or be mid-flight) by then, making the original count
	// stale. If the first open itself crashed, nothing was recorded and
	// recovery must restate the intended count.
	reopenShards := s.Shards
	if s.Reshard != 0 && c != nil {
		reopenShards = 0
	}

	var clock atomic.Uint64
	var mu sync.Mutex
	var acked []check.Op
	var inflight []check.Op // response timestamps patched after recovery

	// Reshard runs preload the whole universe first: an empty cluster
	// migrates instantly (nothing to copy), leaving no window for crash
	// points or the cut-before-catch-up mutant to land in. The preload
	// writes are acknowledged history like any other.
	if s.Reshard != 0 && c != nil {
		sess := c.NewSession()
		proc := s.Procs + s.Restarts + 3
		for key := uint64(1); key <= s.Keys; key++ {
			val := uint64(proc)<<40 | key<<8 | 0x5
			op := check.Op{Kind: check.Put, Key: key, Val: val, OK: true,
				Proc: proc, Inv: clock.Add(1)}
			err := sess.Put(key, val)
			op.Rsp = clock.Add(1)
			if err == nil {
				acked = append(acked, op)
			} else {
				inflight = append(inflight, op)
			}
		}
	}

	// The live migration runs concurrently with phase 1's writers. The
	// goroutine parks until the migration finishes or the cluster closes
	// (a killed disk blocks the engine on the shard's breaker; Close is
	// this harness's process death).
	var reshardDone chan struct{}
	if s.Reshard != 0 && c != nil {
		reshardDone = make(chan struct{})
		go func(c *eunomia.Cluster) {
			defer close(reshardDone)
			_ = c.Reshard(s.Reshard)
		}(c)
	}
	// The crash can fire inside OpenCluster itself (segment creation and
	// directory fsyncs are IO points); nothing was acknowledged, so phase 1
	// is skipped and the run goes straight to recovery.

	// migrating reports whether the concurrent Reshard is still running.
	migrating := func() bool {
		if reshardDone == nil {
			return false
		}
		select {
		case <-reshardDone:
			return false
		default:
			return true
		}
	}

	// Phase 1: concurrent writers. Unlike the single-DB harness, a failed
	// operation does NOT end the worker — only its shard's disk died, the
	// process is alive — so every failed write is recorded with an open
	// window and the worker moves on, exercising healthy shards around the
	// dead one.
	//
	// With a live migration the writers run past their op budget until the
	// cutovers finish (hard-capped, and never past a crash): the copy
	// window then always overlaps acknowledged writes, so the overlap the
	// CutBeforeCatchup mutant loses is structural, not a scheduling
	// accident of a loaded test machine.
	maxOps := s.Ops
	if s.Reshard != 0 {
		maxOps = s.Ops * 64
	}
	var wg sync.WaitGroup
	for p := 0; c != nil && p < s.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess := c.NewSession()
			rng := s.Seed*0x9E3779B97F4A7C15 + uint64(p)*0xBF58476D1CE4E5B9 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < maxOps; i++ {
				if i >= s.Ops && (!migrating() || anyCrashed()) {
					break
				}
				if s.Barrier && p == 0 && i == s.Ops/2 {
					// Mid-run cluster snapshot: the barrier's per-shard syncs
					// and the manifest commit interleave their IO points with
					// the killed disks' streams. Errors are expected when a
					// shard is already dead.
					_ = c.Snapshot()
				}
				key := next()%s.Keys + 1
				val := uint64(p)<<40 | uint64(i)<<8 | 0x5
				del := next()%10 < 3
				inv := clock.Add(1)
				var op check.Op
				var err error
				if del {
					var ok bool
					ok, err = sess.Delete(key)
					op = check.Op{Kind: check.Delete, Key: key, OK: ok, Proc: p}
				} else {
					err = sess.Put(key, val)
					op = check.Op{Kind: check.Put, Key: key, Val: val, OK: true, Proc: p}
				}
				op.Inv = inv
				op.Rsp = clock.Add(1)
				mu.Lock()
				switch {
				case del && !op.OK:
					// Never recorded. An absent-delete writes nothing and its
					// "absent" observation is served from volatile memory —
					// with workers outliving a dead shard it can witness an
					// applied-but-unlogged delete that the crash rolls back,
					// the same group-commit volatility that exempts pre-crash
					// reads from recording (see the package comment). This
					// relies on Session.Delete's no-retry-after-half-apply
					// guarantee: present=false means the removal provably did
					// not run, whether err is nil or not. (An early retry
					// design re-ran half-applied deletes, which observed their
					// own removal and came back (false, nil) — this harness
					// caught the resulting unexplainable absent keys.)
				case err == nil:
					acked = append(acked, op)
				default:
					// Effect unknown: the crash may or may not have persisted
					// it, so the window stays open past recovery.
					inflight = append(inflight, op)
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	crashed := anyCrashed()
	healed := false

	// Phase 1b (Heal): the killed disks come back in place — same files,
	// same handles — and the cluster's own repair loop must bring every
	// wounded shard home. Ops keep hammering the whole universe while the
	// shards are down: failures feed the breakers (tripping shards the
	// crash left wounded-but-untripped, since their poisoned WALs never
	// acknowledge again), and once a shard is re-admitted its successes
	// are real acknowledged writes that enter the checked history. A
	// repair loop that re-admits a shard missing acknowledged data — or
	// one that serves writes it won't replay — fails the checker at the
	// post-reboot read phase.
	if s.Heal && c != nil && crashed {
		for _, fs := range fses {
			if fs.Crashed() {
				fs.Reboot()
			}
		}
		if manifestFS.Crashed() {
			manifestFS.Reboot()
		}
		proc := s.Procs + s.Restarts + 2
		sess := c.NewSession()
		deadline := time.Now().Add(15 * time.Second)
		for i, rounds := 0, 0; ; rounds++ {
			allHealthy := true
			for sh := 0; sh < s.Shards; sh++ {
				if c.ShardState(sh) != eunomia.ShardHealthy {
					allHealthy = false
					break
				}
			}
			if allHealthy && rounds > 0 {
				healed = true
				break
			}
			if time.Now().After(deadline) {
				return Result{Crashed: crashed, Acked: len(acked), Err: fmt.Errorf(
					"crashcheck: shards never re-admitted after disk revival\nrepro: %s", ClusterReproLine(s))}
			}
			for key := uint64(1); key <= s.Keys; key++ {
				val := uint64(proc)<<40 | uint64(i)<<8 | 0x5
				i++
				op := check.Op{Kind: check.Put, Key: key, Val: val, OK: true,
					Proc: proc, Inv: clock.Add(1)}
				err := sess.Put(key, val)
				op.Rsp = clock.Add(1)
				if err == nil {
					acked = append(acked, op)
				} else {
					inflight = append(inflight, op)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}

	// On a crash-free run let the migration land before closing: the
	// cutover and purge must happen while the cluster serves, which is
	// exactly the window the CutBeforeCatchup mutant loses writes in. On a
	// crashed run the engine is parked on a dead shard's breaker — Close
	// unblocks it, like killing the process.
	if reshardDone != nil && !anyCrashed() {
		<-reshardDone
	}
	res := Result{Crashed: crashed, Healed: healed, Acked: len(acked)}
	if c != nil {
		c.Close() // joined errors expected after a crash
	}
	if reshardDone != nil {
		<-reshardDone
	}

	// Phase 2: reboot every disk and recover the whole cluster. Healthy
	// disks keep everything (clean restart); killed disks keep only synced
	// prefixes plus seeded torn tails. OpenCluster re-verifies the barrier
	// vector here: a shard recovering below a committed barrier is itself a
	// detected failure.
	for _, fs := range fses {
		fs.Reboot()
	}
	manifestFS.Reboot()
	c2, err := open(reopenShards)
	if err != nil {
		res.Err = fmt.Errorf("crashcheck: cluster recovery failed: %w", err)
		return res
	}
	defer func() { c2.Close() }()

	// Phase 2b: restart cycles — acknowledged writes on the recovered
	// cluster, clean close, recover again. Regression gate for torn-tail
	// healing and later-generation replay, per shard.
	for cy := 0; cy < s.Restarts; cy++ {
		proc := s.Procs + 1 + cy
		sess := c2.NewSession()
		rng := s.Seed*0xBF58476D1CE4E5B9 + uint64(proc)*0x94D049BB133111EB + 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for i := 0; i < s.Ops; i++ {
			key := next()%s.Keys + 1
			val := uint64(proc)<<40 | uint64(i)<<8 | 0x5
			del := next()%10 < 3
			inv := clock.Add(1)
			var op check.Op
			var err error
			if del {
				var ok bool
				ok, err = sess.Delete(key)
				op = check.Op{Kind: check.Delete, Key: key, OK: ok, Proc: proc}
			} else {
				err = sess.Put(key, val)
				op = check.Op{Kind: check.Put, Key: key, Val: val, OK: true, Proc: proc}
			}
			op.Inv = inv
			op.Rsp = clock.Add(1)
			if err != nil {
				res.Err = fmt.Errorf("crashcheck: cluster restart cycle %d write: %w", cy, err)
				return res
			}
			acked = append(acked, op)
		}
		if err := c2.Close(); err != nil {
			res.Err = fmt.Errorf("crashcheck: cluster restart cycle %d close: %w", cy, err)
			return res
		}
		if c2, err = open(reopenShards); err != nil {
			res.Err = fmt.Errorf("crashcheck: cluster restart cycle %d recovery: %w", cy, err)
			return res
		}
	}

	// Phase 3: observe the whole universe through the router, then close
	// the in-flight windows after every observation.
	ops := acked
	sess := c2.NewSession()
	for key := uint64(1); key <= s.Keys; key++ {
		inv := clock.Add(1)
		v, ok, err := sess.Get(key)
		if err != nil {
			res.Err = fmt.Errorf("crashcheck: post-recovery cluster get(%d): %w", key, err)
			return res
		}
		ops = append(ops, check.Op{
			Kind: check.Get, Key: key, Val: v, OK: ok,
			Inv: inv, Rsp: clock.Add(1), Proc: s.Procs,
		})
	}
	end := clock.Add(1)
	for _, op := range inflight {
		op.Rsp = end
		ops = append(ops, op)
	}
	res.Checked = len(ops)
	if err := check.Check(check.History{Ops: ops}); err != nil {
		res.Err = fmt.Errorf("crashcheck: %w\nrepro: %s", err, ClusterReproLine(s))
	}
	return res
}

// ClusterSweep runs the base scenario once per crash point in [1, points].
// Each point perturbs the torn seed and draws a seeded nonzero kill mask,
// so the sweep covers single-shard deaths, multi-shard deaths, and (when
// Barrier is set) manifest-disk deaths mid-snapshot-barrier.
func ClusterSweep(base ClusterScenario, points uint64) (fired int, firstErr error) {
	base = base.withDefaults()
	disks := uint(base.Shards)
	if base.Reshard > int(disks) {
		disks = uint(base.Reshard) // destination disks are killable too
	}
	if base.Barrier || base.Reshard != 0 {
		disks++ // the manifest disk (and migration manifest) is killable too
	}
	for p := uint64(1); p <= points; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p*2654435761 + base.Seed
		s.Kill = shard.Mix(p*0x9E3779B97F4A7C15+base.Seed)%((1<<disks)-1) + 1
		r := RunCluster(s)
		if r.Crashed {
			fired++
		}
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	return fired, firstErr
}
