package crashcheck

import (
	"os"
	"testing"

	"eunomia"
)

// TestCrashSweepAllKinds is the headline robustness gate: for each of the
// four tree kinds, kill the machine at every IO point in a budget and
// verify via the linearizability checker that recovery loses no
// acknowledged write and resurrects nothing inconsistent with a prefix.
// In the default mode this fires >= 200 seeded crash points across the
// kinds (60 each); -short trims the budget for CI's quick lane.
func TestCrashSweepAllKinds(t *testing.T) {
	points := uint64(60)
	if testing.Short() {
		points = 15
	}
	kinds := []eunomia.Kind{eunomia.EunoBTree, eunomia.HTMBTree, eunomia.Masstree, eunomia.HTMMasstree}
	totalFired := 0
	for _, k := range kinds {
		base := Scenario{Kind: k, Procs: 2, Ops: 40, Keys: 16, Seed: uint64(k)*977 + 13}
		fired, err := Sweep(base, points)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if fired < int(points)*2/3 {
			t.Fatalf("%v: only %d of %d crash points fired", k, fired, points)
		}
		totalFired += fired
		t.Logf("%v: %d crash points fired, zero violations", k, fired)
	}
	if !testing.Short() && totalFired < 200 {
		t.Fatalf("total fired crash points %d < 200", totalFired)
	}
}

// TestCrashWithSnapshots exercises crash points that land inside the
// snapshot protocol (rotate, scan, footer, rename, truncate) by forcing
// frequent automatic snapshots.
func TestCrashWithSnapshots(t *testing.T) {
	points := uint64(40)
	if testing.Short() {
		points = 12
	}
	base := Scenario{Kind: eunomia.EunoBTree, Procs: 2, Ops: 60, Keys: 12,
		Seed: 41, SnapshotBytes: 512}
	fired, err := Sweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no crash points fired")
	}
	t.Logf("snapshot-heavy sweep: %d crash points fired, zero violations", fired)
}

// TestTimedGroupCommitCrash sweeps with the background interval flusher,
// where acknowledgements park on the timer instead of leading the flush.
func TestTimedGroupCommitCrash(t *testing.T) {
	points := uint64(30)
	if testing.Short() {
		points = 10
	}
	base := Scenario{Kind: eunomia.EunoBTree, Procs: 3, Ops: 40, Keys: 16,
		Seed: 7, FlushInterval: 200_000 /* 200us */}
	fired, err := Sweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no crash points fired")
	}
}

// TestCrashRecoverWriteRestart sweeps the full multi-incarnation
// sequence: crash with a possibly-torn tail, recover, acknowledge a new
// batch of writes on the healthy disk, restart cleanly, and recover
// again (twice). Every write acknowledged by an intermediate incarnation
// must survive the later restarts — this is the regression gate for
// physical torn-tail healing, since a recovery that only logically
// truncates a tear orphans the generations the intermediate incarnations
// wrote.
func TestCrashRecoverWriteRestart(t *testing.T) {
	points := uint64(40)
	if testing.Short() {
		points = 12
	}
	base := Scenario{Kind: eunomia.EunoBTree, Procs: 2, Ops: 30, Keys: 12,
		Seed: 23, Restarts: 2}
	fired, err := Sweep(base, points)
	if err != nil {
		t.Fatal(err)
	}
	if fired < int(points)*2/3 {
		t.Fatalf("only %d of %d crash points fired", fired, points)
	}
	t.Logf("restart-cycle sweep: %d crash points fired, zero violations", fired)
}

// TestAckBeforeFlushMutantCaught proves the harness has teeth: a build
// that acknowledges before fsync (the classic durability bug) must
// produce a linearizability violation under the same sweep, with a
// working one-command repro.
func TestAckBeforeFlushMutantCaught(t *testing.T) {
	base := Scenario{Kind: eunomia.EunoBTree, Procs: 1, Ops: 60, Keys: 8,
		Seed: 5, Shards: 2, FlushBytes: 256, AckBeforeFlush: true}
	var failing *Scenario
	for p := uint64(1); p <= 16; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p * 17
		r := Run(s)
		if !r.Crashed {
			continue
		}
		if r.Err != nil {
			failing = &s
			break
		}
	}
	if failing == nil {
		t.Fatal("ack-before-flush mutant survived every crash point: the checker is blind")
	}
	// The repro token must round-trip and reproduce the violation.
	parsed, err := Parse(failing.String())
	if err != nil {
		t.Fatalf("repro token does not parse: %v", err)
	}
	if parsed != *failing {
		t.Fatalf("repro round-trip mismatch:\n  %+v\n  %+v", parsed, *failing)
	}
	if r := Run(parsed); r.Err == nil {
		t.Fatal("replayed repro did not reproduce the violation")
	}
	t.Logf("mutant caught; repro: %s", ReproLine(*failing))
}

// TestScenarioRoundtrip checks String/Parse over a fully populated
// scenario.
func TestScenarioRoundtrip(t *testing.T) {
	s := Scenario{Kind: eunomia.Masstree, Procs: 3, Ops: 99, Keys: 31, Seed: 8,
		CrashAtIO: 42, TornSeed: 77, Restarts: 2, FlushInterval: 1_000_000,
		FlushBytes: 512, Shards: 4, SnapshotBytes: 4096, AckBeforeFlush: true}
	parsed, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != s {
		t.Fatalf("round-trip mismatch:\n  in:  %+v\n  out: %+v", s, parsed)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("garbage token parsed")
	}
	if _, err := Parse("nope=1"); err == nil {
		t.Fatal("unknown field parsed")
	}
}

// TestCrashRepro replays the scenario in EUNO_CRASH_REPRO, the
// one-command repro printed when a sweep fails. With the variable unset it
// is a no-op.
func TestCrashRepro(t *testing.T) {
	tok := os.Getenv("EUNO_CRASH_REPRO")
	if tok == "" {
		t.Skip("EUNO_CRASH_REPRO not set")
	}
	s, err := Parse(tok)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(s)
	t.Logf("replay: crashed=%v acked=%d checked=%d", r.Crashed, r.Acked, r.Checked)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}
