// Package crashcheck is the crash-recovery correctness harness: it runs a
// concurrent write workload against a durable DB on a fault-injecting
// in-memory filesystem, kills the "machine" at a chosen IO point
// (discarding unsynced bytes, leaving torn tails), recovers into a fresh
// DB, and asserts — with the complete linearizability checker from
// internal/check — that the recovered state is consistent with a per-key
// prefix of the history containing every acknowledged operation.
//
// The history it checks is built from three ingredients:
//
//   - Acknowledged writes, with their real invocation/response windows. An
//     acknowledged write returned from Put/Delete before the crash, which
//     with durability on means it was fsynced; losing one is a
//     linearizability violation (the post-recovery read cannot be ordered
//     after it).
//   - In-flight writes — operations that returned an error because the
//     crash interrupted them. Whether they reached the disk is genuinely
//     unknown (the torn-tail model may preserve them), so their windows
//     are left open past every post-recovery observation: the checker may
//     order them before the recovery reads (they survived) or after (they
//     were lost), both legal.
//   - One post-recovery Get per key in the workload's key universe.
//
// Pre-crash reads are deliberately NOT recorded: a read may observe an
// applied-but-not-yet-flushed write whose acknowledgement the crash then
// swallows. That is correct behavior for a WAL with group commit (reads
// are served from memory), but it would look like a violation if the read
// were replayed against the durable prefix alone.
package crashcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eunomia"
	"eunomia/internal/check"
	"eunomia/internal/durable"
)

// Scenario is one fully-specified crash-recovery run. The zero value of
// any field means its default; String/Parse round-trip it for the
// EUNO_CRASH_REPRO one-command repro.
type Scenario struct {
	Kind  eunomia.Kind
	Procs int    // concurrent writer goroutines (default 2)
	Ops   int    // operations per writer (default 40)
	Keys  uint64 // key universe size (default 16)
	Seed  uint64 // workload RNG seed

	CrashAtIO uint64 // IO point at which the machine dies (0 = never)
	TornSeed  uint64 // how much unsynced tail survives the crash
	Restarts  int    // post-crash recover→write→restart cycles before checking

	FlushInterval  time.Duration
	FlushBytes     int
	Shards         int
	SnapshotBytes  int64
	AckBeforeFlush bool // the deliberately broken mode the harness must catch
}

func (s Scenario) withDefaults() Scenario {
	if s.Procs == 0 {
		s.Procs = 2
	}
	if s.Ops == 0 {
		s.Ops = 40
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	return s
}

// String encodes the scenario as the repro token used by EUNO_CRASH_REPRO.
func (s Scenario) String() string {
	return fmt.Sprintf("kind=%d,procs=%d,ops=%d,keys=%d,seed=%d,crash=%d,torn=%d,restarts=%d,interval=%d,flushbytes=%d,shards=%d,snapbytes=%d,ack=%d",
		int(s.Kind), s.Procs, s.Ops, s.Keys, s.Seed, s.CrashAtIO, s.TornSeed, s.Restarts,
		int64(s.FlushInterval), s.FlushBytes, s.Shards, s.SnapshotBytes, b2i(s.AckBeforeFlush))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Parse decodes a Scenario from its String form.
func Parse(tok string) (Scenario, error) {
	var s Scenario
	for _, kv := range strings.Split(strings.TrimSpace(tok), ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return s, fmt.Errorf("crashcheck: bad field %q", kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return s, fmt.Errorf("crashcheck: bad value in %q: %v", kv, err)
		}
		switch name {
		case "kind":
			s.Kind = eunomia.Kind(n)
		case "procs":
			s.Procs = int(n)
		case "ops":
			s.Ops = int(n)
		case "keys":
			s.Keys = uint64(n)
		case "seed":
			s.Seed = uint64(n)
		case "crash":
			s.CrashAtIO = uint64(n)
		case "torn":
			s.TornSeed = uint64(n)
		case "restarts":
			s.Restarts = int(n)
		case "interval":
			s.FlushInterval = time.Duration(n)
		case "flushbytes":
			s.FlushBytes = int(n)
		case "shards":
			s.Shards = int(n)
		case "snapbytes":
			s.SnapshotBytes = n
		case "ack":
			s.AckBeforeFlush = n != 0
		default:
			return s, fmt.Errorf("crashcheck: unknown field %q", name)
		}
	}
	return s, nil
}

// ReproLine renders the one-command repro for a failing scenario.
func ReproLine(s Scenario) string {
	return fmt.Sprintf("EUNO_CRASH_REPRO='%s' go test ./internal/durable/crashcheck -run TestCrashRepro -v", s)
}

// Result reports one Run.
type Result struct {
	Crashed bool // whether the injected crash actually fired
	Healed  bool // Heal runs: every shard returned to Healthy via repair
	Acked   int  // writes acknowledged before the crash
	Checked int  // operations in the checked history
	// Err is a linearizability violation (acknowledged-write loss,
	// resurrection inconsistent with any prefix) or a recovery failure.
	Err error
}

// Run executes one crash-recovery scenario.
func Run(s Scenario) Result {
	s = s.withDefaults()
	fs := durable.NewMemFS(durable.FaultPlan{CrashAtIO: s.CrashAtIO, TornSeed: s.TornSeed})
	open := func() (*eunomia.DB, error) {
		return eunomia.Open(eunomia.Options{
			Kind:       s.Kind,
			ArenaWords: 1 << 19,
			Durability: eunomia.Durability{
				Dir:            "crashdb",
				FS:             fs,
				FlushInterval:  s.FlushInterval,
				FlushBytes:     s.FlushBytes,
				Shards:         s.Shards,
				SnapshotBytes:  s.SnapshotBytes,
				AckBeforeFlush: s.AckBeforeFlush,
			},
		})
	}
	db, err := open()
	if err != nil && !fs.Crashed() {
		return Result{Err: fmt.Errorf("crashcheck: first open: %w", err)}
	}
	// A crash can fire inside Open itself (segment creation ends with a
	// directory fsync, an IO point): nothing was acknowledged, so phase 1
	// is skipped and the run goes straight to recovery.

	// Phase 1: concurrent writers until done or killed by the crash. Wall
	// timestamps come from one shared atomic counter, so rsp(a) < inv(b)
	// is a sound happened-before across goroutines.
	var clock atomic.Uint64
	var mu sync.Mutex
	var acked []check.Op
	var inflight []check.Op // response timestamps patched later
	var wg sync.WaitGroup
	for p := 0; db != nil && p < s.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := db.NewThread()
			rng := s.Seed*0x9E3779B97F4A7C15 + uint64(p)*0xBF58476D1CE4E5B9 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < s.Ops; i++ {
				key := next()%s.Keys + 1
				// Unique nonzero value per (proc, i): a recovered value
				// that was never written is impossible to fabricate.
				val := uint64(p)<<40 | uint64(i)<<8 | 0x5
				del := next()%10 < 3
				inv := clock.Add(1)
				var op check.Op
				var err error
				if del {
					var ok bool
					ok, err = th.Delete(key)
					op = check.Op{Kind: check.Delete, Key: key, OK: ok, Proc: p}
				} else {
					err = th.Put(key, val)
					op = check.Op{Kind: check.Put, Key: key, Val: val, OK: true, Proc: p}
				}
				op.Inv = inv
				op.Rsp = clock.Add(1)
				mu.Lock()
				if err == nil {
					acked = append(acked, op)
					mu.Unlock()
					continue
				}
				// The crash interrupted this operation: effect unknown.
				// Absent deletes observed nothing and wrote nothing — drop
				// them; everything else stays with an open window.
				if !(del && !op.OK) {
					inflight = append(inflight, op)
				}
				mu.Unlock()
				return // this worker's process is dead
			}
		}(p)
	}
	wg.Wait()
	res := Result{Crashed: fs.Crashed(), Acked: len(acked)}
	if db != nil {
		db.Close() // errors expected after a crash
	}

	// Phase 2: reboot and recover.
	fs.Reboot()
	db2, err := open()
	if err != nil {
		res.Err = fmt.Errorf("crashcheck: recovery failed: %w", err)
		return res
	}
	defer func() { db2.Close() }()

	// Phase 2b: restart cycles. Each cycle writes acknowledged data on the
	// recovered (healthy) disk, closes cleanly, and recovers again. This is
	// the regression gate for torn-tail healing: the first recovery
	// physically truncated any tear, so writes acknowledged here land in a
	// later generation that the next recovery must replay — a recovery
	// that only logically truncates the tear would re-read it and orphan
	// everything this cycle wrote.
	for c := 0; c < s.Restarts; c++ {
		proc := s.Procs + 1 + c // distinct proc id and value space per cycle
		th := db2.NewThread()
		rng := s.Seed*0xBF58476D1CE4E5B9 + uint64(proc)*0x94D049BB133111EB + 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for i := 0; i < s.Ops; i++ {
			key := next()%s.Keys + 1
			val := uint64(proc)<<40 | uint64(i)<<8 | 0x5
			del := next()%10 < 3
			inv := clock.Add(1)
			var op check.Op
			var err error
			if del {
				var ok bool
				ok, err = th.Delete(key)
				op = check.Op{Kind: check.Delete, Key: key, OK: ok, Proc: proc}
			} else {
				err = th.Put(key, val)
				op = check.Op{Kind: check.Put, Key: key, Val: val, OK: true, Proc: proc}
			}
			op.Inv = inv
			op.Rsp = clock.Add(1)
			if err != nil {
				res.Err = fmt.Errorf("crashcheck: restart cycle %d write: %w", c, err)
				return res
			}
			acked = append(acked, op)
		}
		if err := db2.Close(); err != nil {
			res.Err = fmt.Errorf("crashcheck: restart cycle %d close: %w", c, err)
			return res
		}
		if db2, err = open(); err != nil {
			res.Err = fmt.Errorf("crashcheck: restart cycle %d recovery: %w", c, err)
			return res
		}
	}

	// Phase 3: observe the whole key universe, then close the in-flight
	// windows after every observation so the checker may order them on
	// either side.
	ops := acked
	th := db2.NewThread()
	for key := uint64(1); key <= s.Keys; key++ {
		inv := clock.Add(1)
		v, ok, err := th.Get(key)
		if err != nil {
			res.Err = fmt.Errorf("crashcheck: post-recovery get(%d): %w", key, err)
			return res
		}
		ops = append(ops, check.Op{
			Kind: check.Get, Key: key, Val: v, OK: ok,
			Inv: inv, Rsp: clock.Add(1), Proc: s.Procs,
		})
	}
	end := clock.Add(1)
	for _, op := range inflight {
		op.Rsp = end
		ops = append(ops, op)
	}
	res.Checked = len(ops)
	if err := check.Check(check.History{Ops: ops}); err != nil {
		res.Err = fmt.Errorf("crashcheck: %w\nrepro: %s", err, ReproLine(s))
	}
	return res
}

// Sweep runs the scenario once per crash point in [1, points], returning
// how many crashes actually fired and the first failure (nil if none).
func Sweep(base Scenario, points uint64) (fired int, firstErr error) {
	for p := uint64(1); p <= points; p++ {
		s := base
		s.CrashAtIO = p
		s.TornSeed = p*2654435761 + base.Seed
		r := Run(s)
		if r.Crashed {
			fired++
		}
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	return fired, firstErr
}

// sortOps orders a history by invocation time (test/debug helper).
func sortOps(ops []check.Op) {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })
}
