package durable

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame format (all integers little-endian):
//
//	+--------+--------+---------------------------+
//	| len u32| crc u32| payload (len bytes)       |
//	+--------+--------+---------------------------+
//
// crc is CRC32C (Castagnoli) over the payload. The payload is
//
//	op u8 | seq u64 | key u64 | val u64 (put/snap-record frames only)
//
// for the fixed-size ops, or — for a combined-batch group record —
//
//	op u8 | seq u64 | count u32 | count × (kind u8 | key u64 | val u64)
//
// where seq is the LSN of the *last* sub-operation (sub-op i carries
// seq-count+1+i) so the shard's flush watermark covers the whole batch.
// A fixed frame is 17 or 25 payload bytes and a group frame is
// 13 + 17·count; anything else fails validation, which is what makes a
// zeroed tail (len=0) or a length landing past EOF (truncated frame)
// detectable without a scan-forward heuristic. Recovery truncates a file
// at the first frame that fails any of these checks — torn tails are
// expected after a crash, and everything past the tear was never
// acknowledged.
const (
	frameHeaderSize = 8
	payloadDel      = 17 // op + seq + key
	payloadPut      = 25 // op + seq + key + val
	maxFrameSize    = frameHeaderSize + payloadPut
	groupFixed      = 13 // op + seq + count
	groupOpSize     = 17 // kind + key + val
)

// Frame op codes. WAL segments hold only put and delete frames; snapshot
// files hold a header, records, and a footer.
const (
	opPut        = 1
	opDel        = 2
	opSnapHeader = 3 // seq = base LSN, key = snapshot id
	opSnapRecord = 4 // key/val pair captured by the snapshot scan
	opSnapFooter = 5 // seq = base LSN, key = record count
	opGroup      = 6 // combined batch: one record, many sub-operations
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded record.
type frame struct {
	op  byte
	seq uint64
	key uint64
	val uint64
	// group holds a group frame's sub-operations (nil otherwise); seq is
	// then the last sub-op's LSN.
	group []groupRec
}

// groupRec is one sub-operation of a group frame.
type groupRec struct {
	key, val uint64
	del      bool
}

// hasVal reports whether the op carries a value word.
func hasVal(op byte) bool { return op == opPut || op == opSnapRecord }

// appendFrame encodes f onto buf.
func appendFrame(buf []byte, f frame) []byte {
	plen := payloadDel
	if hasVal(f.op) {
		plen = payloadPut
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize+plen)...)
	p := buf[start+frameHeaderSize:]
	p[0] = f.op
	binary.LittleEndian.PutUint64(p[1:], f.seq)
	binary.LittleEndian.PutUint64(p[9:], f.key)
	if hasVal(f.op) {
		binary.LittleEndian.PutUint64(p[17:], f.val)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf
}

// appendGroupFrame encodes a combined batch as one frame. lastSeq is the
// LSN of the final sub-operation; sub-op i carries lastSeq-len(ops)+1+i.
func appendGroupFrame(buf []byte, lastSeq uint64, ops []groupRec) []byte {
	plen := groupFixed + groupOpSize*len(ops)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize+plen)...)
	p := buf[start+frameHeaderSize:]
	p[0] = opGroup
	binary.LittleEndian.PutUint64(p[1:], lastSeq)
	binary.LittleEndian.PutUint32(p[9:], uint32(len(ops)))
	o := groupFixed
	for _, g := range ops {
		if g.del {
			p[o] = opDel
		} else {
			p[o] = opPut
		}
		binary.LittleEndian.PutUint64(p[o+1:], g.key)
		binary.LittleEndian.PutUint64(p[o+9:], g.val)
		o += groupOpSize
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf
}

// validPayloadLen screens a length word before anything else is trusted.
func validPayloadLen(plen int) bool {
	if plen == payloadDel || plen == payloadPut {
		return true
	}
	return plen >= groupFixed+groupOpSize && (plen-groupFixed)%groupOpSize == 0
}

// decodeFrame decodes the frame at data[off:]. ok=false means the bytes
// at off do not form a valid frame (torn tail, zeroed region, bit flip) —
// recovery stops reading the file there.
func decodeFrame(data []byte, off int) (f frame, size int, ok bool) {
	if off+frameHeaderSize > len(data) {
		return f, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	if !validPayloadLen(plen) {
		return f, 0, false
	}
	if off+frameHeaderSize+plen > len(data) {
		return f, 0, false
	}
	p := data[off+frameHeaderSize : off+frameHeaderSize+plen]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
		return f, 0, false
	}
	f.op = p[0]
	f.seq = binary.LittleEndian.Uint64(p[1:])
	switch f.op {
	case opPut, opSnapRecord:
		if plen != payloadPut {
			return f, 0, false
		}
		f.key = binary.LittleEndian.Uint64(p[9:])
		f.val = binary.LittleEndian.Uint64(p[17:])
	case opDel, opSnapHeader, opSnapFooter:
		if plen != payloadDel {
			return f, 0, false
		}
		f.key = binary.LittleEndian.Uint64(p[9:])
	case opGroup:
		count := int(binary.LittleEndian.Uint32(p[9:]))
		if count <= 0 || plen != groupFixed+groupOpSize*count {
			return f, 0, false
		}
		f.group = make([]groupRec, count)
		o := groupFixed
		for i := range f.group {
			kind := p[o]
			if kind != opPut && kind != opDel {
				return f, 0, false
			}
			f.group[i] = groupRec{
				key: binary.LittleEndian.Uint64(p[o+1:]),
				val: binary.LittleEndian.Uint64(p[o+9:]),
				del: kind == opDel,
			}
			o += groupOpSize
		}
	default:
		return f, 0, false
	}
	return f, frameHeaderSize + plen, true
}
