package durable

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files are named snap-<id>.snap and contain one header frame
// (base LSN + id), the scanned key/value records, and a footer frame
// whose count must match — a snapshot missing its footer (crash mid-scan)
// is ignored by recovery. Snapshots are written to a .tmp name and
// renamed into place only after the WAL has been flushed through
// everything the scan could have observed, so a committed snapshot never
// resurrects an unacknowledged write.

// snapName is the on-disk name of a committed snapshot.
func snapName(id uint64) string { return fmt.Sprintf("snap-%012d.snap", id) }

// parseSnapName extracts the id from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	return id, err == nil
}

// snapshotWriter streams records into a snapshot temp file.
type snapshotWriter struct {
	f     File
	buf   []byte
	count uint64
	base  uint64
	err   error
}

const snapFlushChunk = 64 << 10

func newSnapshotWriter(f File, baseLSN, id uint64) *snapshotWriter {
	w := &snapshotWriter{f: f, base: baseLSN}
	w.buf = appendFrame(w.buf, frame{op: opSnapHeader, seq: baseLSN, key: id})
	return w
}

// Add appends one scanned pair.
func (w *snapshotWriter) Add(key, val uint64) {
	if w.err != nil {
		return
	}
	w.buf = appendFrame(w.buf, frame{op: opSnapRecord, key: key, val: val})
	w.count++
	if len(w.buf) >= snapFlushChunk {
		w.err = writeAll(w.f, w.buf)
		w.buf = w.buf[:0]
	}
}

// finish writes the footer and syncs. The caller renames on success.
func (w *snapshotWriter) finish() (uint64, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.buf = appendFrame(w.buf, frame{op: opSnapFooter, seq: w.base, key: w.count})
	if err := writeAll(w.f, w.buf); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return w.count, nil
}

// readSnapshot validates and decodes a snapshot file. ok=false means the
// file is torn, corrupt, or footerless and must be ignored.
func readSnapshot(data []byte) (baseLSN uint64, pairs []frame, ok bool) {
	off := 0
	h, n, ok := decodeFrame(data, off)
	if !ok || h.op != opSnapHeader {
		return 0, nil, false
	}
	off += n
	for {
		f, n, ok := decodeFrame(data, off)
		if !ok {
			return 0, nil, false
		}
		off += n
		switch f.op {
		case opSnapRecord:
			pairs = append(pairs, f)
		case opSnapFooter:
			if f.key != uint64(len(pairs)) || f.seq != h.seq || off != len(data) {
				return 0, nil, false
			}
			return h.seq, pairs, true
		default:
			return 0, nil, false
		}
	}
}

// bestSnapshot picks the committed snapshot with the highest base LSN
// (ties broken by id), ignoring invalid files. It returns the chosen
// file's name for bookkeeping and every other snapshot name for cleanup.
func bestSnapshot(cfg Config, names []string) (chosen string, baseLSN uint64, pairs []frame, maxID uint64, others []string) {
	type cand struct {
		name string
		id   uint64
	}
	var cands []cand
	for _, name := range names {
		if id, ok := parseSnapName(name); ok {
			cands = append(cands, cand{name, id})
			if id > maxID {
				maxID = id
			}
		}
	}
	// Highest id first: ids are monotone, so the newest valid snapshot
	// wins and also has the highest base LSN.
	sort.Slice(cands, func(i, j int) bool { return cands[i].id > cands[j].id })
	for _, c := range cands {
		if chosen != "" {
			others = append(others, c.name)
			continue
		}
		data, err := readFileAll(cfg.FS, join(cfg.Dir, c.name))
		if err != nil {
			others = append(others, c.name)
			continue
		}
		if base, p, ok := readSnapshot(data); ok {
			chosen, baseLSN, pairs = c.name, base, p
		} else {
			others = append(others, c.name)
		}
	}
	return chosen, baseLSN, pairs, maxID, others
}

// readFileAll slurps a file through the FS interface.
func readFileAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var data []byte
	buf := make([]byte, 32<<10)
	for {
		n, err := f.Read(buf)
		data = append(data, buf[:n]...)
		if err == io.EOF {
			return data, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
