package durable

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every MemFS operation after an injected crash:
// the "process" is dead as far as the durability layer is concerned, and
// nothing else reaches the disk until Reboot.
var ErrCrashed = errors.New("durable: filesystem crashed (injected)")

// ErrInjectedSyncFailure is the error an injected fsync failure returns.
// Like a real EIO from fsync, the data's durability is unknown — the WAL
// treats it as fatal and never re-acknowledges (fsyncgate semantics).
var ErrInjectedSyncFailure = errors.New("durable: injected fsync failure")

// FaultPlan configures MemFS fault injection. IO points are counted
// across Write, Sync, Rename and SyncDir calls in order; the counter
// starts at 1. The zero plan injects nothing.
type FaultPlan struct {
	// CrashAtIO kills the filesystem at the Nth IO point: a Write applies
	// only a seeded prefix of its bytes (a torn write), a Sync fails
	// before making anything durable, a Rename fails before taking
	// effect, a SyncDir fails before pinning any directory entry. Every
	// later operation returns ErrCrashed. 0 disables.
	CrashAtIO uint64
	// TornSeed seeds how many unsynced bytes each file retains across
	// Reboot — the adversarial model where unfsynced page-cache data
	// partially survives a crash, leaving torn tail records.
	TornSeed uint64
	// ShortWriteEveryN makes every Nth Write (at IO points that are
	// multiples of N) write only half its bytes and return
	// io.ErrShortWrite, like a real short write. 0 disables.
	ShortWriteEveryN uint64
	// FailSyncAtIO makes the Sync at that IO point return
	// ErrInjectedSyncFailure without syncing. 0 disables.
	FailSyncAtIO uint64
}

// memFile is one file's durable state: data is everything written, synced
// is the prefix known durable (advanced by Sync).
type memFile struct {
	data   []byte
	synced int
}

// MemFS is an in-memory FS with fsync-accurate crash semantics: bytes are
// durable only once Sync succeeds, and an injected crash discards (most
// of) the unsynced suffix. Directory entries are modeled too: a file
// created, renamed, or removed is only durably so after SyncDir, exactly
// like a real filesystem — a crash reverts un-fsynced metadata (new files
// vanish, renames undo, removed files resurrect), so a protocol that
// skips a directory fsync fails the crash sweep instead of passing
// silently. It is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // live view (what List/Open see)
	dir     map[string]*memFile // durable directory entries (what a crash keeps)
	plan    FaultPlan
	ioCount uint64
	crashed bool
}

// NewMemFS creates a MemFS with the given fault plan (zero plan = none).
func NewMemFS(plan FaultPlan) *MemFS {
	return &MemFS{files: map[string]*memFile{}, dir: map[string]*memFile{}, plan: plan}
}

// Crashed reports whether the injected crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// IOCount returns how many IO points have occurred.
func (m *MemFS) IOCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ioCount
}

// Kill crashes the filesystem immediately — the explicit-kill analogue
// of FaultPlan.CrashAtIO, for harnesses that script failures on a
// wall-clock timeline (the swarmchaos bench, the heal fuzzer) instead of
// at a counted IO point. Every later operation returns ErrCrashed, with
// the same unsynced-data semantics as a counted crash; Reboot revives
// the disk.
func (m *MemFS) Kill() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Reboot simulates the post-crash restart: the directory reverts to its
// last SyncDir'd state (un-pinned creates vanish, renames undo, removes
// resurrect), every surviving file keeps its synced prefix plus a
// TornSeed-determined portion of its unsynced tail (torn tail), open
// handles are dead, and the fault plan is cleared so recovery runs on a
// healthy disk. It also works without a prior crash (clean restart:
// unsynced data survives intact is NOT assumed — the torn model applies
// only after a crash, so a clean Reboot keeps everything).
func (m *MemFS) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		m.files = map[string]*memFile{}
		for name, f := range m.dir {
			unsynced := len(f.data) - f.synced
			keep := tornKeep(m.plan.TornSeed, name, unsynced)
			f.data = f.data[:f.synced+keep]
			f.synced = len(f.data)
			m.files[name] = f
		}
	}
	m.dir = map[string]*memFile{}
	for name, f := range m.files {
		m.dir[name] = f
	}
	m.crashed = false
	m.plan = FaultPlan{}
	m.ioCount = 0
}

// tornKeep decides how many of n unsynced bytes survive the crash —
// deterministic in (seed, name).
func tornKeep(seed uint64, name string, n int) int {
	if n == 0 {
		return 0
	}
	h := seed*0x9E3779B97F4A7C15 + 0x123456789
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001B3
	}
	return int(h % uint64(n+1))
}

// RawData returns a copy of a file's current bytes (test helper for the
// torn-write matrix).
func (m *MemFS) RawData(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// SetRawData replaces a file's bytes and marks them (and the directory
// entry) durable — a test helper for constructing corrupted on-disk
// states byte by byte.
func (m *MemFS) SetRawData(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), synced: len(data)}
	m.files[name] = f
	m.dir[name] = f
}

// ioPoint advances the fault counters. It returns crash=true if the crash
// fires at this point.
func (m *MemFS) ioPoint() (crash bool) {
	m.ioCount++
	return m.plan.CrashAtIO != 0 && m.ioCount == m.plan.CrashAtIO
}

type memHandle struct {
	fs   *MemFS
	name string
	rpos int
	rdon bool // opened read-only
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if m.files[name] == nil {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if m.files[name] == nil {
		return nil, fmt.Errorf("durable: open %s: no such file", name)
	}
	return &memHandle{fs: m, name: name, rdon: true}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.ioPoint() {
		m.crashed = true
		return ErrCrashed
	}
	f := m.files[oldname]
	if f == nil {
		return fmt.Errorf("durable: rename %s: no such file", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	delete(m.files, name)
	return nil
}

// SyncDir implements FS: directory entries under dir (creates, renames,
// removes) become durable. File contents are untouched — they still need
// File.Sync, as on a real filesystem.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.ioPoint() {
		m.crashed = true
		return ErrCrashed
	}
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	for name := range m.dir {
		if strings.HasPrefix(name, prefix) {
			if _, ok := m.files[name]; !ok {
				delete(m.dir, name)
			}
		}
	}
	for name, f := range m.files {
		if strings.HasPrefix(name, prefix) {
			m.dir[name] = f
		}
	}
	return nil
}

// List implements FS. MemFS is flat: every file whose path starts with
// dir is listed by base name.
func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, strings.TrimPrefix(name, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS (a no-op: MemFS is flat).
func (m *MemFS) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// Write implements File with short-write and crash injection.
func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if h.rdon {
		return 0, fmt.Errorf("durable: write %s: read-only handle", h.name)
	}
	f := m.files[h.name]
	if f == nil {
		return 0, fmt.Errorf("durable: write %s: file removed", h.name)
	}
	if m.ioPoint() {
		// Torn write: a seeded prefix lands, then the world ends.
		m.crashed = true
		n := tornKeep(m.plan.TornSeed, h.name, len(p))
		f.data = append(f.data, p[:n]...)
		return n, ErrCrashed
	}
	if n := m.plan.ShortWriteEveryN; n != 0 && m.ioCount%n == 0 && len(p) > 1 {
		half := len(p) / 2
		f.data = append(f.data, p[:half]...)
		return half, io.ErrShortWrite
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

// Sync implements File: on success the file's whole current content is
// durable.
func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f := m.files[h.name]
	if f == nil {
		return fmt.Errorf("durable: sync %s: file removed", h.name)
	}
	if m.ioPoint() {
		m.crashed = true
		return ErrCrashed
	}
	if m.plan.FailSyncAtIO != 0 && m.ioCount == m.plan.FailSyncAtIO {
		return ErrInjectedSyncFailure
	}
	f.synced = len(f.data)
	return nil
}

// Read implements File (sequential).
func (h *memHandle) Read(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	f := m.files[h.name]
	if f == nil {
		return 0, fmt.Errorf("durable: read %s: file removed", h.name)
	}
	if h.rpos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[h.rpos:])
	h.rpos += n
	return n, nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }
