package durable

import (
	"errors"
	"testing"
)

func TestGroupFrameRoundtrip(t *testing.T) {
	ops := []groupRec{
		{key: 1, val: 10},
		{key: 2, del: true},
		{key: 3, val: 30},
	}
	buf := appendGroupFrame(nil, 7, ops)
	f, n, ok := decodeFrame(buf, 0)
	if !ok || n != len(buf) {
		t.Fatalf("decode: ok=%v n=%d len=%d", ok, n, len(buf))
	}
	if f.op != opGroup || f.seq != 7 || len(f.group) != 3 {
		t.Fatalf("decoded %+v", f)
	}
	for i, want := range ops {
		if f.group[i] != want {
			t.Fatalf("sub-op %d: got %+v want %+v", i, f.group[i], want)
		}
	}

	// Torn tail: any truncation must fail validation.
	for cut := 1; cut < len(buf); cut++ {
		if _, _, ok := decodeFrame(buf[:cut], 0); ok {
			t.Fatalf("truncated group frame decoded at %d bytes", cut)
		}
	}
	// Bit flip in a sub-op fails the CRC.
	flip := append([]byte(nil), buf...)
	flip[frameHeaderSize+groupFixed+5] ^= 0x40
	if _, _, ok := decodeFrame(flip, 0); ok {
		t.Fatal("bit-flipped group frame decoded")
	}
	// A count disagreeing with the payload length must be rejected even
	// with a recomputed CRC (validPayloadLen + the count check).
	short := appendGroupFrame(nil, 3, ops[:1])
	short[frameHeaderSize+9] = 2 // claims 2 sub-ops, payload holds 1
	if _, _, ok := decodeFrame(short, 0); ok {
		t.Fatal("count-mismatched group frame decoded")
	}
	// A sub-op kind outside {put, del} is invalid.
	badKind := appendGroupFrame(nil, 3, ops[:1])
	badKind[frameHeaderSize+groupFixed] = opSnapHeader
	if _, _, ok := decodeFrame(badKind, 0); ok {
		t.Fatal("bad-kind group frame decoded")
	}
}

// groupCommit applies ops to state and commits them as one batch.
func groupCommit(t *testing.T, st *Store, state *mapState, ops []GroupEntry) {
	t.Helper()
	keys := make([]uint64, len(ops))
	for i, op := range ops {
		keys[i] = op.Key
	}
	g, err := st.BeginGroup(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Delete {
			state.del(op.Key)()
		} else {
			state.put(op.Key, op.Val)()
		}
	}
	if err := g.Commit(ops); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitRoundtrip(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 4}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave single ops and combined batches spanning many shards.
	for i := uint64(1); i <= 20; i++ {
		if err := st.LogPut(i, i*10, state.put(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	groupCommit(t, st, state, []GroupEntry{
		{Key: 1, Val: 111},
		{Key: 2, Delete: true},
		{Key: 100, Val: 1000},
		{Key: 101, Val: 1010},
	})
	groupCommit(t, st, state, []GroupEntry{
		{Key: 100, Delete: true},
		{Key: 3, Val: 333},
	})
	if err := st.LogPut(2, 222, state.put(2, 222)); err != nil {
		t.Fatal(err)
	}
	// LSNs are contiguous: 20 singles + 4 + 2 + 1.
	if got := st.LastLSN(); got != 27 {
		t.Fatalf("LastLSN = %d, want 27", got)
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	ri := st2.RecoveryInfo()
	if ri.ReplayedFrames != 27 {
		t.Fatalf("replayed %d sub-operations, want 27", ri.ReplayedFrames)
	}
	if ri.MaxSeq != 27 {
		t.Fatalf("MaxSeq = %d, want 27", ri.MaxSeq)
	}
}

// TestGroupRecoveryOrdersAcrossShards targets the reason recovery sorts
// globally by LSN: a group frame lands on the lowest involved shard but
// covers keys homed elsewhere, so per-shard file order is not per-key
// order. A later single-op write to such a key must win over the group's
// earlier sub-operation on every reopen, whichever shard replays first.
func TestGroupRecoveryOrdersAcrossShards(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 4}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	// Find two keys on different shards, kLow homed strictly lower.
	kLow, kHigh := uint64(0), uint64(0)
	for k := uint64(1); k < 100 && kHigh == 0; k++ {
		s := st.wal.shardFor(k)
		switch {
		case kLow == 0:
			kLow = k
		case s.id < st.wal.shardFor(kLow).id:
			kLow = k
		case s.id > st.wal.shardFor(kLow).id:
			kHigh = k
		}
	}
	if kHigh == 0 {
		t.Fatal("no cross-shard key pair found")
	}
	// Group writes kHigh (frame lands on kLow's shard), then a single put
	// overwrites kHigh on its own shard with a higher LSN.
	groupCommit(t, st, state, []GroupEntry{
		{Key: kLow, Val: 1},
		{Key: kHigh, Val: 100},
	})
	if err := st.LogPut(kHigh, 200, state.put(kHigh, 200)); err != nil {
		t.Fatal(err)
	}
	// And the converse hazard: a single put first, then a group delete of
	// the same key recorded on the other shard's file.
	if err := st.LogPut(kLow+1000, 5, state.put(kLow+1000, 5)); err != nil {
		t.Fatal(err)
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// groupSegments iterates a map, so without the LSN sort the replay
	// order across shards would be random; several reopens give the wrong
	// order many chances to appear.
	for i := 0; i < 10; i++ {
		state2 := newMapState()
		st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
		if err != nil {
			t.Fatal(err)
		}
		got := state2.snapshot()
		st2.Close()
		sameMap(t, got, want)
		if got[kHigh] != 200 {
			t.Fatalf("reopen %d: group sub-op replayed after the newer put", i)
		}
	}
}

func TestGroupAbortAndEmptyCommit(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	g, err := st.BeginGroup([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	g.Abort()
	g2, err := st.BeginGroup([]uint64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if st.LastLSN() != 0 {
		t.Fatalf("aborted/empty groups consumed LSNs: %d", st.LastLSN())
	}
	// The shards must be usable again (locks released).
	for i := uint64(1); i <= 5; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.BeginGroup([]uint64{1}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("BeginGroup after close: %v", err)
	}
}

// TestGroupSnapshotInterleave drives batches and snapshots together: a
// snapshot's base LSN must never split a group (the group holds its shard
// locks across apply+append, and rotate takes each lock), so recovery
// after truncation still sees every batch exactly once.
func TestGroupSnapshotInterleave(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 5; round++ {
		groupCommit(t, st, state, []GroupEntry{
			{Key: round*2 + 1, Val: round + 1},
			{Key: round*2 + 2, Val: round + 1},
			{Key: round * 2, Delete: true},
		})
		if err := st.Snapshot(state.scan, false); err != nil {
			t.Fatal(err)
		}
		groupCommit(t, st, state, []GroupEntry{
			{Key: 500 + round, Val: round},
		})
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	ri := st2.RecoveryInfo()
	if ri.SnapshotBase == 0 {
		t.Fatal("recovery ignored the snapshots")
	}
}

// TestGroupCrashAtomicity crashes at every IO point while combined
// batches are committing. An acknowledged batch must survive whole;
// an unacknowledged one may be lost whole — a recovered state must be a
// prefix of the batch sequence (batches are single frames, so a torn
// frame drops the entire batch).
func TestGroupCrashAtomicity(t *testing.T) {
	for crashAt := uint64(1); crashAt <= 30; crashAt++ {
		fs := NewMemFS(FaultPlan{CrashAtIO: crashAt, TornSeed: crashAt * 17})
		state := newMapState()
		var ackedBatches int
		st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
		if err != nil && !fs.Crashed() {
			t.Fatal(err)
		}
		if err == nil {
			for b := uint64(1); b <= 15; b++ {
				keys := []uint64{b * 3, b*3 + 1, b*3 + 2}
				g, err := st.BeginGroup(keys)
				if err != nil {
					break
				}
				ops := make([]GroupEntry, len(keys))
				for i, k := range keys {
					ops[i] = GroupEntry{Key: k, Val: b}
					state.put(k, b)()
				}
				if g.Commit(ops) == nil {
					ackedBatches++
				}
			}
			st.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crashAt=%d: crash never fired", crashAt)
		}
		fs.Reboot()
		state2 := newMapState()
		st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
		if err != nil {
			t.Fatalf("crashAt=%d: recovery: %v", crashAt, err)
		}
		got := state2.snapshot()
		st2.Close()
		// Count recovered batches and check each is whole.
		recovered := map[uint64]int{}
		for k, v := range got {
			if v < 1 || v > 15 || k < v*3 || k > v*3+2 {
				t.Fatalf("crashAt=%d: impossible entry %d=%d", crashAt, k, v)
			}
			recovered[v]++
		}
		for b, n := range recovered {
			if n != 3 {
				t.Fatalf("crashAt=%d: batch %d recovered partially (%d/3 keys)", crashAt, b, n)
			}
		}
		if len(recovered) < ackedBatches {
			t.Fatalf("crashAt=%d: %d batches acknowledged, only %d recovered",
				crashAt, ackedBatches, len(recovered))
		}
	}
}
