// Package durable adds crash durability to the in-memory trees: a
// group-committed write-ahead log (per-shard append files with
// CRC32C-framed records and acknowledged-only-after-flush semantics),
// periodic snapshots with log truncation, and recovery that replays
// snapshot + log tail and tolerates torn or partial tail records.
//
// The package is tree-agnostic: a Store serializes apply+append per shard
// through caller-supplied closures, so any of the four tree
// implementations (or anything else) can sit above it. Everything goes
// through the FS interface below, which has two implementations: OSFS
// (real files) and MemFS (in-memory, with fault injection and
// crash-at-point semantics for the crash-recovery checker).
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the os.File-shaped handle the WAL and snapshot writers use.
// Write may perform a short write (n < len(p) with a non-nil error, like
// os.File); Sync makes all previously written bytes durable.
type File interface {
	io.Writer
	io.Reader
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layer needs. Paths are
// slash-separated and interpreted relative to the FS root.
type FS interface {
	// Create truncates-or-creates name for writing (snapshot temp files).
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent (WAL
	// segments).
	OpenAppend(name string) (File, error)
	// Open opens name read-only (recovery).
	Open(name string) (File, error)
	// Rename atomically moves oldname to newname (snapshot commit).
	Rename(oldname, newname string) error
	// Remove deletes name (log truncation, stale snapshots).
	Remove(name string) error
	// SyncDir makes dir's directory entries durable: files created,
	// renamed, or removed under dir before the call survive a power loss
	// after it. File *contents* still need File.Sync — SyncDir only pins
	// the names. Required after creating WAL segments and after the
	// snapshot-commit rename; without it a crash can lose a fully-fsynced
	// file's directory entry or undo a committed rename.
	SyncDir(dir string) error
	// List returns the base names of all files under dir.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
}

// OSFS implements FS over the real filesystem rooted at the process
// working directory (paths may be absolute).
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS: open the directory and fsync it, which is how
// POSIX makes directory entries durable.
func (OSFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// join joins dir and name for any FS (both use slash paths).
func join(dir, name string) string {
	if dir == "" {
		return name
	}
	return filepath.ToSlash(filepath.Join(dir, name))
}
