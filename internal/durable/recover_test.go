package durable

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotTruncatesLog checks the snapshot protocol end to end:
// rotate, scan, commit, truncate, and recovery preferring the snapshot.
func TestSnapshotTruncatesLog(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot(state.scan, false); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("db")
	var snaps, logs int
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".snap"):
			snaps++
		case strings.HasSuffix(n, ".log"):
			logs++
		}
	}
	if snaps != 1 {
		t.Fatalf("snapshots on disk: %d, want 1 (%v)", snaps, names)
	}
	if logs != 2 { // one fresh segment per shard; sealed generation removed
		t.Fatalf("log segments on disk: %d, want 2 (%v)", logs, names)
	}

	// More writes after the snapshot land in the new generation.
	for i := uint64(51); i <= 60; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	ri := st2.RecoveryInfo()
	if ri.SnapshotBase != 50 || ri.SnapshotPairs != 50 {
		t.Fatalf("recovery used snapshot base=%d pairs=%d, want 50/50", ri.SnapshotBase, ri.SnapshotPairs)
	}
	if ri.ReplayedFrames != 10 {
		t.Fatalf("replayed %d frames, want 10", ri.ReplayedFrames)
	}
}

// TestAutoSnapshotThreshold checks the NeedSnapshot claim protocol.
func TestAutoSnapshotThreshold(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1, SnapshotBytes: 1024}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fired := 0
	for i := uint64(1); i <= 200; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
		if st.NeedSnapshot() {
			fired++
			if err := st.Snapshot(state.scan, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fired == 0 {
		t.Fatal("auto-snapshot threshold never fired")
	}
	if got := st.Stats().Snapshots; got != uint64(fired) {
		t.Fatalf("snapshot count %d, want %d", got, fired)
	}
}

// TestUncommittedSnapshotIgnored: a crash between scan and rename leaves a
// .tmp file that recovery must not use.
func TestUncommittedSnapshotIgnored(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := state.snapshot()
	st.Close()

	// Fake a crash mid-snapshot: a half-written tmp file on disk.
	fs.SetRawData("db/"+snapName(7)+".tmp", []byte("partial snapshot data"))
	// And a committed-looking snapshot with a corrupt footer.
	bad := appendFrame(nil, frame{op: opSnapHeader, seq: 999, key: 8})
	bad = appendFrame(bad, frame{op: opSnapRecord, key: 77, val: 77})
	bad = appendFrame(bad, frame{op: opSnapFooter, seq: 999, key: 2}) // count lies
	fs.SetRawData("db/"+snapName(8), bad)

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	if st2.RecoveryInfo().SnapshotBase != 0 {
		t.Fatal("recovery used an invalid snapshot")
	}
	// The orphaned .tmp must have been swept, not left to collide with a
	// future snapshot id.
	for _, n := range mustList(t, fs, "db") {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("recovery left orphaned temp file %s", n)
		}
	}
}

// mustList is fs.List with the error folded into the test.
func mustList(t *testing.T, fs *MemFS, dir string) []string {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// tornCase is one corruption in the torn-write matrix.
type tornCase struct {
	name string
	// mutate corrupts the raw bytes of the single shard's live segment.
	mutate func(data []byte) []byte
	// losesLast reports whether the corruption destroys the last frame.
	losesLast bool
}

var tornMatrix = []tornCase{
	{
		name: "truncated-frame",
		mutate: func(d []byte) []byte {
			return d[:len(d)-5] // last frame loses its final bytes
		},
		losesLast: true,
	},
	{
		name: "bit-flipped-payload",
		mutate: func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-3] ^= 0x40 // inside the last frame's payload
			return out
		},
		losesLast: true,
	},
	{
		name: "zeroed-tail",
		mutate: func(d []byte) []byte {
			out := append([]byte(nil), d...)
			last := len(out) - (frameHeaderSize + payloadPut)
			for i := last; i < len(out); i++ {
				out[i] = 0
			}
			// Plus a zero-page worth of pre-allocated space past EOF.
			return append(out, make([]byte, 512)...)
		},
		losesLast: true,
	},
	{
		name: "duplicate-last-frame",
		mutate: func(d []byte) []byte {
			last := d[len(d)-(frameHeaderSize+payloadPut):]
			return append(append([]byte(nil), d...), last...)
		},
		losesLast: false, // replay is idempotent; the dup is harmless
	},
}

// TestTornWriteMatrix runs every corruption against both a log-only store
// and one with a committed snapshot under the log tail.
func TestTornWriteMatrix(t *testing.T) {
	for _, withSnap := range []bool{false, true} {
		for _, tc := range tornMatrix {
			name := tc.name + "/log-only"
			if withSnap {
				name = tc.name + "/snapshot"
			}
			t.Run(name, func(t *testing.T) {
				fs := NewMemFS(FaultPlan{})
				state := newMapState()
				// One shard so "the last frame" is well defined.
				st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
				if err != nil {
					t.Fatal(err)
				}
				for i := uint64(1); i <= 5; i++ {
					if err := st.LogPut(i, i*100, state.put(i, i*100)); err != nil {
						t.Fatal(err)
					}
				}
				if withSnap {
					if err := st.Snapshot(state.scan, false); err != nil {
						t.Fatal(err)
					}
				}
				for i := uint64(6); i <= 10; i++ {
					if err := st.LogPut(i, i*100, state.put(i, i*100)); err != nil {
						t.Fatal(err)
					}
				}
				full := state.snapshot()
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}

				// Find the live (highest-generation) segment and corrupt it.
				names, _ := fs.List("db")
				var seg string
				for _, segs := range groupSegments(names) {
					seg = segs[len(segs)-1].name
				}
				if seg == "" {
					t.Fatalf("no segment found in %v", names)
				}
				raw := fs.RawData("db/" + seg)
				if len(raw) == 0 {
					t.Fatalf("segment %s empty", seg)
				}
				fs.SetRawData("db/"+seg, tc.mutate(raw))

				want := full
				if tc.losesLast {
					want = map[uint64]uint64{}
					for k, v := range full {
						want[k] = v
					}
					delete(want, 10) // key 10 was the last frame
				}

				state2 := newMapState()
				st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
				if err != nil {
					t.Fatal(err)
				}
				defer st2.Close()
				sameMap(t, state2.snapshot(), want)
				ri := st2.RecoveryInfo()
				if tc.losesLast && ri.TornTails != 1 {
					t.Fatalf("torn tails %d, want 1", ri.TornTails)
				}
				if withSnap && ri.SnapshotBase == 0 {
					t.Fatal("recovery ignored the committed snapshot")
				}
			})
		}
	}
}

// TestTornSegmentHealedAndLaterGenerationsReplayed encodes the three-run
// sequence from the review: run A crashes leaving a torn tail in its
// generation; run B recovers (physically truncating the tear to its valid
// prefix), acknowledges new writes into the next generation, and closes
// cleanly; run C must recover run B's writes — a recovery that only
// logically truncated the tear would re-read it and orphan them.
func TestTornSegmentHealedAndLaterGenerationsReplayed(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// "Run A's crash": tear the tail of generation 1 — key 4's frame loses
	// its last bytes, so only keys 1..3 are recoverable.
	names, _ := fs.List("db")
	seg := groupSegments(names)[0][0].name
	raw := fs.RawData("db/" + seg)
	fs.SetRawData("db/"+seg, raw[:len(raw)-3])
	validPrefix := 3 * (frameHeaderSize + payloadPut)

	// Run B: recovery truncates the tear physically, then acknowledges new
	// writes into generation 2 and shuts down cleanly.
	stateB := newMapState()
	stB, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, stateB.apply)
	if err != nil {
		t.Fatal(err)
	}
	if ri := stB.RecoveryInfo(); ri.TornTails != 1 {
		t.Fatalf("run B torn tails %d, want 1", ri.TornTails)
	}
	if healed := fs.RawData("db/" + seg); len(healed) != validPrefix {
		t.Fatalf("torn segment not physically truncated: %d bytes on disk, want %d", len(healed), validPrefix)
	}
	for i := uint64(5); i <= 8; i++ {
		if err := stB.LogPut(i, i, stateB.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}

	// Run C: the tear is gone, and run B's acknowledged writes survive.
	stateC := newMapState()
	stC, err := Open(Config{FS: fs, Dir: "db"}, stateC.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer stC.Close()
	sameMap(t, stateC.snapshot(), map[uint64]uint64{1: 1, 2: 2, 3: 3, 5: 5, 6: 6, 7: 7, 8: 8})
	if ri := stC.RecoveryInfo(); ri.TornTails != 0 {
		t.Fatalf("run C re-read a tear run B should have healed: %+v", ri)
	}
}

// TestExplicitSnapshotNotSkipped: an explicit Snapshot call that finds an
// automatic one in flight must block and then take its own snapshot — the
// in-flight one's base LSN predates the call, so returning early would
// leave operations acknowledged since then uncovered.
func TestExplicitSnapshotNotSkipped(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1, SnapshotBytes: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LogPut(1, 1, state.put(1, 1)); err != nil {
		t.Fatal(err)
	}
	if !st.NeedSnapshot() {
		t.Fatal("auto-snapshot threshold did not fire")
	}

	// Park the claimed (automatic) snapshot inside its scan, after it has
	// captured its base LSN.
	started := make(chan struct{})
	release := make(chan struct{})
	autoDone := make(chan error, 1)
	go func() {
		autoDone <- st.Snapshot(func(emit func(k, v uint64)) error {
			close(started)
			<-release
			return state.scan(emit)
		}, true)
	}()
	<-started

	// Acknowledge a write the parked snapshot cannot cover, then call
	// Snapshot explicitly.
	if err := st.LogPut(2, 2, state.put(2, 2)); err != nil {
		t.Fatal(err)
	}
	exDone := make(chan error, 1)
	go func() { exDone <- st.Snapshot(state.scan, false) }()
	select {
	case err := <-exDone:
		t.Fatalf("explicit Snapshot returned (%v) while another was in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-autoDone; err != nil {
		t.Fatal(err)
	}
	if err := <-exDone; err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Snapshots; got != 2 {
		t.Fatalf("snapshots taken: %d, want 2", got)
	}
	// The newest snapshot must cover both acknowledged writes.
	names, _ := fs.List("db")
	_, base, pairs, _, _ := bestSnapshot(Config{FS: fs, Dir: "db"}, names)
	if base != 2 || len(pairs) != 2 {
		t.Fatalf("newest snapshot base=%d pairs=%d, want 2/2", base, len(pairs))
	}
}
