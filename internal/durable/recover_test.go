package durable

import (
	"strings"
	"testing"
)

// TestSnapshotTruncatesLog checks the snapshot protocol end to end:
// rotate, scan, commit, truncate, and recovery preferring the snapshot.
func TestSnapshotTruncatesLog(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 2}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot(state.scan, false); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("db")
	var snaps, logs int
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".snap"):
			snaps++
		case strings.HasSuffix(n, ".log"):
			logs++
		}
	}
	if snaps != 1 {
		t.Fatalf("snapshots on disk: %d, want 1 (%v)", snaps, names)
	}
	if logs != 2 { // one fresh segment per shard; sealed generation removed
		t.Fatalf("log segments on disk: %d, want 2 (%v)", logs, names)
	}

	// More writes after the snapshot land in the new generation.
	for i := uint64(51); i <= 60; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := state.snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	ri := st2.RecoveryInfo()
	if ri.SnapshotBase != 50 || ri.SnapshotPairs != 50 {
		t.Fatalf("recovery used snapshot base=%d pairs=%d, want 50/50", ri.SnapshotBase, ri.SnapshotPairs)
	}
	if ri.ReplayedFrames != 10 {
		t.Fatalf("replayed %d frames, want 10", ri.ReplayedFrames)
	}
}

// TestAutoSnapshotThreshold checks the NeedSnapshot claim protocol.
func TestAutoSnapshotThreshold(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1, SnapshotBytes: 1024}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fired := 0
	for i := uint64(1); i <= 200; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
		if st.NeedSnapshot() {
			fired++
			if err := st.Snapshot(state.scan, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fired == 0 {
		t.Fatal("auto-snapshot threshold never fired")
	}
	if got := st.Stats().Snapshots; got != uint64(fired) {
		t.Fatalf("snapshot count %d, want %d", got, fired)
	}
}

// TestUncommittedSnapshotIgnored: a crash between scan and rename leaves a
// .tmp file that recovery must not use.
func TestUncommittedSnapshotIgnored(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := state.snapshot()
	st.Close()

	// Fake a crash mid-snapshot: a half-written tmp file on disk.
	fs.SetRawData("db/"+snapName(7)+".tmp", []byte("partial snapshot data"))
	// And a committed-looking snapshot with a corrupt footer.
	bad := appendFrame(nil, frame{op: opSnapHeader, seq: 999, key: 8})
	bad = appendFrame(bad, frame{op: opSnapRecord, key: 77, val: 77})
	bad = appendFrame(bad, frame{op: opSnapFooter, seq: 999, key: 2}) // count lies
	fs.SetRawData("db/"+snapName(8), bad)

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameMap(t, state2.snapshot(), want)
	if st2.RecoveryInfo().SnapshotBase != 0 {
		t.Fatal("recovery used an invalid snapshot")
	}
}

// tornCase is one corruption in the torn-write matrix.
type tornCase struct {
	name string
	// mutate corrupts the raw bytes of the single shard's live segment.
	mutate func(data []byte) []byte
	// losesLast reports whether the corruption destroys the last frame.
	losesLast bool
}

var tornMatrix = []tornCase{
	{
		name: "truncated-frame",
		mutate: func(d []byte) []byte {
			return d[:len(d)-5] // last frame loses its final bytes
		},
		losesLast: true,
	},
	{
		name: "bit-flipped-payload",
		mutate: func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-3] ^= 0x40 // inside the last frame's payload
			return out
		},
		losesLast: true,
	},
	{
		name: "zeroed-tail",
		mutate: func(d []byte) []byte {
			out := append([]byte(nil), d...)
			last := len(out) - (frameHeaderSize + payloadPut)
			for i := last; i < len(out); i++ {
				out[i] = 0
			}
			// Plus a zero-page worth of pre-allocated space past EOF.
			return append(out, make([]byte, 512)...)
		},
		losesLast: true,
	},
	{
		name: "duplicate-last-frame",
		mutate: func(d []byte) []byte {
			last := d[len(d)-(frameHeaderSize+payloadPut):]
			return append(append([]byte(nil), d...), last...)
		},
		losesLast: false, // replay is idempotent; the dup is harmless
	},
}

// TestTornWriteMatrix runs every corruption against both a log-only store
// and one with a committed snapshot under the log tail.
func TestTornWriteMatrix(t *testing.T) {
	for _, withSnap := range []bool{false, true} {
		for _, tc := range tornMatrix {
			name := tc.name + "/log-only"
			if withSnap {
				name = tc.name + "/snapshot"
			}
			t.Run(name, func(t *testing.T) {
				fs := NewMemFS(FaultPlan{})
				state := newMapState()
				// One shard so "the last frame" is well defined.
				st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
				if err != nil {
					t.Fatal(err)
				}
				for i := uint64(1); i <= 5; i++ {
					if err := st.LogPut(i, i*100, state.put(i, i*100)); err != nil {
						t.Fatal(err)
					}
				}
				if withSnap {
					if err := st.Snapshot(state.scan, false); err != nil {
						t.Fatal(err)
					}
				}
				for i := uint64(6); i <= 10; i++ {
					if err := st.LogPut(i, i*100, state.put(i, i*100)); err != nil {
						t.Fatal(err)
					}
				}
				full := state.snapshot()
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}

				// Find the live (highest-generation) segment and corrupt it.
				names, _ := fs.List("db")
				var seg string
				for _, segs := range groupSegments(names) {
					seg = segs[len(segs)-1].name
				}
				if seg == "" {
					t.Fatalf("no segment found in %v", names)
				}
				raw := fs.RawData("db/" + seg)
				if len(raw) == 0 {
					t.Fatalf("segment %s empty", seg)
				}
				fs.SetRawData("db/"+seg, tc.mutate(raw))

				want := full
				if tc.losesLast {
					want = map[uint64]uint64{}
					for k, v := range full {
						want[k] = v
					}
					delete(want, 10) // key 10 was the last frame
				}

				state2 := newMapState()
				st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
				if err != nil {
					t.Fatal(err)
				}
				defer st2.Close()
				sameMap(t, state2.snapshot(), want)
				ri := st2.RecoveryInfo()
				if tc.losesLast && ri.TornTails != 1 {
					t.Fatalf("torn tails %d, want 1", ri.TornTails)
				}
				if withSnap && ri.SnapshotBase == 0 {
					t.Fatal("recovery ignored the committed snapshot")
				}
			})
		}
	}
}

// TestTornEarlierGenerationOrphansLater: a tear in generation N must also
// discard generations > N for that shard — their frames were acknowledged
// after the torn region and replaying them would reorder history.
func TestTornEarlierGenerationOrphansLater(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	state := newMapState()
	st, err := Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// Reopen to get a second generation on top of the first.
	state = newMapState()
	st, err = Open(Config{FS: fs, Dir: "db", Shards: 1}, state.apply)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(5); i <= 8; i++ {
		if err := st.LogPut(i, i, state.put(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Corrupt the tail of generation 1.
	names, _ := fs.List("db")
	segs := groupSegments(names)[0]
	if len(segs) < 2 {
		t.Fatalf("want >= 2 generations, have %v", names)
	}
	raw := fs.RawData("db/" + segs[0].name)
	fs.SetRawData("db/"+segs[0].name, raw[:len(raw)-3])

	state2 := newMapState()
	st2, err := Open(Config{FS: fs, Dir: "db"}, state2.apply)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := state2.snapshot()
	// Keys 1..3 survive (gen 1 minus torn tail); 5..8 from gen 2 must NOT.
	want := map[uint64]uint64{1: 1, 2: 2, 3: 3}
	sameMap(t, got, want)
}
