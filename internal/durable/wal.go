package durable

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"eunomia/internal/obs"
)

// ErrWALFailed wraps the first fatal WAL error (failed fsync, write error,
// crash): once a shard's log is poisoned, no later operation on it is
// ever acknowledged.
var ErrWALFailed = errors.New("durable: write-ahead log failed")

// shard is one append log: a mutex serializing apply+append (so the log
// order of a key equals its apply order), a pending group-commit buffer,
// and a flushed-LSN watermark that acknowledgement waits on.
type shard struct {
	id int

	mu       sync.Mutex
	cond     *sync.Cond
	f        File
	gen      int
	pending  []byte // encoded frames not yet written+synced
	nFrames  int    // frames in pending
	lastSeq  uint64 // seq of the newest appended frame
	flushed  uint64 // seq watermark: everything <= flushed is durable
	flushing bool   // a leader is mid-flush
	err      error  // first fatal error; poisons the shard
	closed   bool
}

// segmentName is the on-disk name of a WAL segment.
func segmentName(shard, gen int) string {
	return fmt.Sprintf("wal-%03d-%06d.log", shard, gen)
}

// lock/unlock expose the shard mutex to Store's apply+append critical
// section.
func (s *shard) lock()   { s.mu.Lock() }
func (s *shard) unlock() { s.mu.Unlock() }

// appendLocked encodes a frame into the pending buffer. Caller holds mu.
func (s *shard) appendLocked(f frame) {
	s.pending = appendFrame(s.pending, f)
	s.nFrames++
	s.lastSeq = f.seq
}

// appendGroupLocked encodes a combined batch as one group frame. lastSeq
// is the batch's final LSN. Caller holds mu.
func (s *shard) appendGroupLocked(lastSeq uint64, recs []groupRec) {
	s.pending = appendGroupFrame(s.pending, lastSeq, recs)
	s.nFrames++
	s.lastSeq = lastSeq
}

// flushLocked runs the leader protocol until everything appended at entry
// is durable (or the shard fails). Caller holds mu; mu is released around
// the file IO and re-held on return. immediate controls whether this
// caller may become the flush leader itself (false = park and wait for
// the interval flusher).
func (w *wal) flushLocked(s *shard, upto uint64, immediate bool) error {
	for s.flushed < upto {
		if s.err != nil {
			return fmt.Errorf("%w: %v", ErrWALFailed, s.err)
		}
		if s.closed {
			return fmt.Errorf("%w: log closed", ErrWALFailed)
		}
		if s.flushing || !immediate {
			s.cond.Wait()
			continue
		}
		w.leaderFlush(s)
	}
	return nil
}

// leaderFlush takes the pending buffer and makes it durable. Caller holds
// mu; the file IO happens with mu released.
func (w *wal) leaderFlush(s *shard) {
	if s.nFrames == 0 {
		s.flushed = s.lastSeq
		s.cond.Broadcast()
		return
	}
	s.flushing = true
	buf := s.pending
	frames := s.nFrames
	target := s.lastSeq
	s.pending = nil
	s.nFrames = 0
	f := s.f
	s.mu.Unlock()

	start := time.Now()
	err := writeAll(f, buf)
	if err == nil {
		err = f.Sync()
	}
	lat := time.Since(start)
	if o := w.cfg.Observer; o != nil && err == nil {
		// Emitted with no shard/stats lock held; WAL-flush timestamps are
		// wall nanoseconds (virtual cycles do not advance during fsync).
		o.Event(obs.Event{
			Kind: obs.EvWALFlush,
			Proc: int32(s.id),
			TS:   uint64(start.UnixNano()) + uint64(lat.Nanoseconds()),
			Dur:  uint64(lat.Nanoseconds()),
			Line: uint64(len(buf)),
			Node: uint64(frames),
		})
	}

	s.mu.Lock()
	s.flushing = false
	if err != nil {
		s.err = err
	} else {
		s.flushed = target
		w.stats.mu.Lock()
		w.stats.flushes++
		w.stats.frames += uint64(frames)
		w.stats.bytes += uint64(len(buf))
		if uint64(frames) > w.stats.maxBatch {
			w.stats.maxBatch = uint64(frames)
		}
		w.stats.lat.Observe(uint64(lat.Nanoseconds()))
		w.stats.mu.Unlock()
	}
	s.cond.Broadcast()
}

// writeAll retries short writes (io.ErrShortWrite with partial progress),
// failing on any other error.
func writeAll(f File, buf []byte) error {
	for len(buf) > 0 {
		n, err := f.Write(buf)
		buf = buf[n:]
		if err == io.ErrShortWrite && n > 0 {
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// walStats accumulates group-commit behavior.
type walStats struct {
	mu       sync.Mutex
	flushes  uint64
	frames   uint64
	bytes    uint64
	maxBatch uint64
	lat      latHist
}

// wal is the sharded write-ahead log.
type wal struct {
	cfg      Config
	shards   []*shard
	interval time.Duration
	stats    walStats

	flusherStop chan struct{}
	flusherDone chan struct{}
	kick        chan struct{}
}

// newWAL opens (or resumes, after recovery) the shard segment files.
// startGen is the generation to begin appending at.
func newWAL(cfg Config, startGen int) (*wal, error) {
	w := &wal{cfg: cfg, interval: cfg.FlushInterval}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{id: i, gen: startGen}
		s.cond = sync.NewCond(&s.mu)
		f, err := cfg.FS.OpenAppend(join(cfg.Dir, segmentName(i, s.gen)))
		if err != nil {
			return nil, err
		}
		s.f = f
		w.shards = append(w.shards, s)
	}
	// Pin the fresh segments' directory entries before anything can be
	// acknowledged into them — a crash must not unlink an fsynced segment.
	if err := cfg.FS.SyncDir(cfg.Dir); err != nil {
		return nil, err
	}
	if w.interval > 0 {
		w.flusherStop = make(chan struct{})
		w.flusherDone = make(chan struct{})
		w.kick = make(chan struct{}, 1)
		go w.flusherLoop()
	}
	return w, nil
}

// flusherLoop is the timed group-commit driver: every FlushInterval (or
// sooner, when a byte-threshold kick arrives) it flushes every shard's
// pending batch.
func (w *wal) flusherLoop() {
	defer close(w.flusherDone)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.flusherStop:
			return
		case <-t.C:
		case <-w.kick:
		}
		w.flushAll()
	}
}

// flushAll flushes every shard's pending frames.
func (w *wal) flushAll() {
	for _, s := range w.shards {
		s.mu.Lock()
		for s.flushing {
			s.cond.Wait()
		}
		if s.err == nil && !s.closed {
			w.leaderFlush(s)
		}
		s.mu.Unlock()
	}
}

// kickFlush nudges the interval flusher (byte threshold crossed).
func (w *wal) kickFlush() {
	if w.kick == nil {
		return
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// shardFor maps a key to its shard; same key, same shard, so per-key log
// order is per-shard file order.
func (w *wal) shardFor(key uint64) *shard {
	h := key * 0x9E3779B97F4A7C15
	return w.shards[h%uint64(len(w.shards))]
}

// waitFlushed blocks until seq is durable on s. With no interval flusher
// the caller becomes the group-commit leader itself (concurrent appenders
// that arrived during an in-progress flush are absorbed into one batch);
// with an interval flusher it parks until the timed flush covers it.
func (w *wal) waitFlushed(s *shard, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.flushLocked(s, seq, w.interval == 0)
}

// rotate seals every shard's current segment (flushing its pending tail)
// and starts a new generation. It returns the sealed generation's names
// for later truncation. Called by the snapshotter.
func (w *wal) rotate() (sealed []string, err error) {
	for _, s := range w.shards {
		s.mu.Lock()
		for s.flushing {
			s.cond.Wait()
		}
		if s.err != nil || s.closed {
			e := s.err
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrWALFailed, e)
		}
		// Seal: write+sync the pending tail while holding mu (brief — the
		// snapshot path is rare), then swap files.
		if s.nFrames > 0 {
			if err := writeAll(s.f, s.pending); err == nil {
				err = s.f.Sync()
				if err == nil {
					s.flushed = s.lastSeq
					s.pending = nil
					s.nFrames = 0
				} else {
					s.err = err
				}
			} else {
				s.err = err
			}
			if s.err != nil {
				e := s.err
				s.cond.Broadcast()
				s.mu.Unlock()
				return nil, fmt.Errorf("%w: %v", ErrWALFailed, e)
			}
		}
		s.f.Close()
		sealed = append(sealed, segmentName(s.id, s.gen))
		s.gen++
		f, ferr := w.cfg.FS.OpenAppend(join(w.cfg.Dir, segmentName(s.id, s.gen)))
		if ferr == nil {
			// The dir fsync must land before this shard's lock is released:
			// once unlocked, a writer can append and acknowledge into the
			// new segment, whose directory entry must by then be
			// crash-proof.
			if ferr = w.cfg.FS.SyncDir(w.cfg.Dir); ferr != nil {
				f.Close()
			}
		}
		if ferr != nil {
			s.err = ferr
			s.cond.Broadcast()
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrWALFailed, ferr)
		}
		s.f = f
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	return sealed, nil
}

// sweepLocks acquires and releases every shard lock in turn. After it
// returns, any operation whose apply was visible to a concurrent tree
// scan has also completed its append (apply and append happen under the
// same shard lock), so a seq captured now bounds everything a snapshot
// scan may have seen.
func (w *wal) sweepLocks() {
	for _, s := range w.shards {
		s.mu.Lock()
		//lint:ignore SA2001 empty critical section is the point: it
		// barriers against in-flight apply+append sections.
		s.mu.Unlock()
	}
}

// syncAll makes everything appended so far durable.
func (w *wal) syncAll() error {
	// Every shard is flushed even when one fails — the healthy shards'
	// acknowledged bytes still deserve to reach disk — and the failures are
	// joined rather than hiding all but the first.
	var errs []error
	for _, s := range w.shards {
		s.mu.Lock()
		err := w.flushLocked(s, s.lastSeq, true)
		s.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("wal shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// close flushes and closes every shard. Idempotent.
func (w *wal) close() error {
	if w.flusherStop != nil {
		close(w.flusherStop)
		<-w.flusherDone
		w.flusherStop = nil
	}
	var errs []error
	for _, s := range w.shards {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		err := w.flushLocked(s, s.lastSeq, true)
		s.closed = true
		if s.f != nil {
			if cerr := s.f.Close(); err == nil {
				err = cerr
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("wal shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}
