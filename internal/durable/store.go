package durable

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/metrics"
	"eunomia/internal/obs"
)

// latHist is the flush-latency histogram (wall nanoseconds).
type latHist = metrics.Histogram

// Config configures a Store.
type Config struct {
	// FS is the filesystem (default OSFS). Tests inject a MemFS.
	FS FS
	// Dir is the directory holding WAL segments and snapshots.
	Dir string
	// Shards is the number of WAL append files (default 8). A key's
	// shard is fixed, so per-key log order equals per-key apply order.
	Shards int
	// FlushInterval enables timed group commit: appenders park and a
	// background flusher syncs every interval. 0 means leader-based
	// immediate group commit (the appender that finds no flush in
	// progress syncs the whole pending batch itself).
	FlushInterval time.Duration
	// FlushBytes triggers an early flush once a shard's pending batch
	// reaches this size. 0 disables the threshold.
	FlushBytes int
	// SnapshotBytes triggers an automatic snapshot (via the registered
	// scan) once that many WAL bytes have been appended since the last
	// one. 0 disables automatic snapshots; Snapshot can still be called.
	SnapshotBytes int64
	// AckBeforeFlush is a deliberately broken mode for the crash-recovery
	// checker: operations acknowledge after append, before the flush. A
	// crash then loses acknowledged writes, which the checker must catch.
	// Never enable outside tests.
	AckBeforeFlush bool
	// Observer receives an obs.EvWALFlush event per group-commit fsync
	// (timestamps in wall nanoseconds). nil disables emission.
	Observer obs.Observer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = OSFS{}
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	return c
}

// Op is a recovered operation handed to the replay callback.
type Op struct {
	Seq      uint64
	Key, Val uint64
	Delete   bool
}

// RecoveryInfo reports what recovery found and how long it took.
type RecoveryInfo struct {
	DurationNs     int64
	SnapshotBase   uint64 // base LSN of the snapshot used (0 = none)
	SnapshotPairs  uint64 // records loaded from the snapshot
	ReplayedFrames uint64 // log frames applied (seq > snapshot base)
	SkippedFrames  uint64 // log frames skipped (already covered)
	TornTails      int    // files truncated at a bad frame
	Segments       int    // segment files read
	MaxSeq         uint64 // highest sequence number seen
}

// Stats is a point-in-time snapshot of the durability layer's behavior.
type Stats struct {
	// Group commit.
	Flushes       uint64
	FlushedFrames uint64
	FlushedBytes  uint64
	MaxBatch      uint64  // largest frames-per-fsync batch
	AvgBatch      float64 // FlushedFrames / Flushes
	FlushP50Ns    uint64
	FlushP99Ns    uint64
	FlushMaxNs    uint64
	// Snapshots.
	Snapshots      uint64
	SnapshotErrors uint64
	// Recovery (from this Store's Open).
	Recovery RecoveryInfo
}

// Store is the durability engine: a sharded group-committed WAL plus
// snapshot/truncate/recover machinery. One Store backs one tree.
type Store struct {
	cfg Config
	wal *wal

	seq    atomic.Uint64 // last assigned LSN
	closed atomic.Bool

	snapMu         sync.Mutex // serializes snapshots
	snapshotting   atomic.Bool
	snapID         atomic.Uint64
	bytesSinceSnap atomic.Int64

	snapshots      atomic.Uint64
	snapshotErrors atomic.Uint64

	recovery RecoveryInfo
}

// Open recovers existing state (replaying the newest valid snapshot and
// then every log frame past its base LSN into the apply callback) and
// readies the Store for appends. Replay order is per-shard append order,
// which per key equals acknowledgement order; torn or corrupt tail
// frames are truncated, never applied.
func Open(cfg Config, apply func(Op)) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg}

	start := time.Now()
	info := &st.recovery
	names, err := cfg.FS.List(cfg.Dir)
	if err != nil {
		return nil, err
	}

	// 1. Newest committed snapshot.
	chosen, baseLSN, pairs, maxSnapID, stale := bestSnapshot(cfg, names)
	if chosen != "" {
		info.SnapshotBase = baseLSN
		info.SnapshotPairs = uint64(len(pairs))
		for _, p := range pairs {
			apply(Op{Key: p.key, Val: p.val})
		}
	}
	st.snapID.Store(maxSnapID)

	// 2. Log tail: per shard, generations in order, frames in file order.
	// A bad frame truncates the rest of that shard's segment (the tear
	// marks where acknowledged — synced — bytes end), and the truncation
	// is made physical: the segment is rewritten to its valid prefix. That
	// heal is what lets replay continue into later generations — they can
	// only hold frames acknowledged by a run that already recovered past
	// this tear, and without the rewrite a second restart would re-read
	// the tear and silently orphan those acknowledged writes.
	//
	// Operations are collected and applied in global LSN order rather than
	// shard-by-shard: a combined batch's group frame lands on ONE shard but
	// may cover keys homed on others, so per-shard file order no longer
	// implies per-key order — the sub-operations' LSNs do. (For plain
	// frames the sort is a no-op per key: same key, same shard, ascending
	// seq in file order.)
	maxSeq := baseLSN
	maxGen := 0
	var replay []Op
	collect := func(op Op) {
		if op.Seq > maxSeq {
			maxSeq = op.Seq
		}
		if op.Seq <= baseLSN {
			info.SkippedFrames++
			return
		}
		replay = append(replay, op)
		info.ReplayedFrames++
	}
	for _, segs := range groupSegments(names) {
		for _, sg := range segs {
			if sg.gen > maxGen {
				maxGen = sg.gen
			}
			data, err := readFileAll(cfg.FS, join(cfg.Dir, sg.name))
			if err != nil {
				return nil, err
			}
			info.Segments++
			off := 0
			for off < len(data) {
				f, n, ok := decodeFrame(data, off)
				if !ok || (f.op != opPut && f.op != opDel && f.op != opGroup) {
					info.TornTails++
					if err := healSegment(cfg, sg.name, data[:off]); err != nil {
						return nil, err
					}
					break
				}
				off += n
				if f.op == opGroup {
					base := f.seq - uint64(len(f.group)) + 1
					for i, g := range f.group {
						collect(Op{Seq: base + uint64(i), Key: g.key, Val: g.val, Delete: g.del})
					}
					continue
				}
				collect(Op{Seq: f.seq, Key: f.key, Val: f.val, Delete: f.op == opDel})
			}
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].Seq < replay[j].Seq })
	for _, op := range replay {
		apply(op)
	}
	st.seq.Store(maxSeq)
	info.MaxSeq = maxSeq

	// 3. Stale snapshots and orphaned temp files (a crash mid-snapshot or
	// mid-heal) are garbage; old segments stay until the next snapshot
	// truncates them.
	for _, name := range stale {
		cfg.FS.Remove(join(cfg.Dir, name))
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			cfg.FS.Remove(join(cfg.Dir, name))
		}
	}

	// 4. Fresh generation for new appends (never append to a possibly
	// torn file).
	st.wal, err = newWAL(cfg, maxGen+1)
	if err != nil {
		return nil, err
	}
	info.DurationNs = time.Since(start).Nanoseconds()
	return st, nil
}

// segment names a parsed WAL file.
type segment struct {
	name  string
	shard int
	gen   int
}

// groupSegments parses wal-<shard>-<gen>.log names and groups them by
// shard with generations ascending.
func groupSegments(names []string) map[int][]segment {
	out := map[int][]segment{}
	for _, name := range names {
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-")
		if len(parts) != 2 {
			continue
		}
		sh, err1 := strconv.Atoi(parts[0])
		gen, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			continue
		}
		out[sh] = append(out[sh], segment{name: name, shard: sh, gen: gen})
	}
	for sh := range out {
		segs := out[sh]
		sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
		out[sh] = segs
	}
	return out
}

// healSegment makes a logical truncation physical: the torn segment is
// rewritten as its valid prefix via tmp + fsync + rename + dir fsync, so
// every future Open reads a clean file. The rename is atomic — a crash
// mid-heal leaves either the old torn segment (healed again next time) or
// the truncated one, never a mix.
func healSegment(cfg Config, name string, prefix []byte) error {
	tmp := join(cfg.Dir, name+".tmp")
	f, err := cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	err = writeAll(f, prefix)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cfg.FS.Remove(tmp)
		return err
	}
	if err := cfg.FS.Rename(tmp, join(cfg.Dir, name)); err != nil {
		cfg.FS.Remove(tmp)
		return err
	}
	return cfg.FS.SyncDir(cfg.Dir)
}

// ErrStoreClosed is returned by operations on a closed Store.
var ErrStoreClosed = errors.New("durable: store closed")

// LogPut runs apply (the tree insert) and the WAL append atomically with
// respect to the key's shard, then blocks until the record is durable —
// acknowledged-only-after-flush. apply runs even on a poisoned log (the
// in-memory tree stays usable); the error reports that durability was
// not achieved, and the caller must not acknowledge.
func (st *Store) LogPut(key, val uint64, apply func()) error {
	return st.log(frame{op: opPut, key: key, val: val}, apply)
}

// LogDelete is LogPut for deletions. apply reports whether the key was
// present; an absent-key delete mutates nothing and is not logged.
func (st *Store) LogDelete(key uint64, apply func() bool) (bool, error) {
	if st.closed.Load() {
		return false, ErrStoreClosed
	}
	s := st.wal.shardFor(key)
	s.lock()
	before := len(s.pending)
	ok := apply()
	if !ok {
		s.unlock()
		return false, nil // read-only: nothing to make durable
	}
	seq := st.seq.Add(1)
	s.appendLocked(frame{op: opDel, seq: seq, key: key})
	n := len(s.pending)
	s.unlock()
	return true, st.ack(s, seq, n, n-before)
}

// log is the shared put/delete append path.
func (st *Store) log(f frame, apply func()) error {
	if st.closed.Load() {
		return ErrStoreClosed
	}
	s := st.wal.shardFor(f.key)
	s.lock()
	before := len(s.pending)
	apply()
	f.seq = st.seq.Add(1)
	s.appendLocked(f)
	n := len(s.pending)
	s.unlock()
	return st.ack(s, f.seq, n, n-before)
}

// GroupEntry is one operation of a combined batch.
type GroupEntry struct {
	Key, Val uint64
	Delete   bool
}

// Group is an open combined-batch transaction: the shards homing the
// batch's keys are locked (in ascending shard order — the global lock
// order, so concurrent groups and single-op appends cannot deadlock)
// until Commit or Abort.
type Group struct {
	st     *Store
	shards []*shard
}

// BeginGroup locks the shards homing keys, in ascending shard order,
// pinning the apply+append critical section for the whole batch. The
// caller applies the batch's tree mutations while the group is open,
// then Commits the operations that actually happened (or Aborts).
func (st *Store) BeginGroup(keys []uint64) (*Group, error) {
	if st.closed.Load() {
		return nil, ErrStoreClosed
	}
	seen := map[int]*shard{}
	for _, k := range keys {
		s := st.wal.shardFor(k)
		seen[s.id] = s
	}
	g := &Group{st: st, shards: make([]*shard, 0, len(seen))}
	for _, s := range seen {
		g.shards = append(g.shards, s)
	}
	sort.Slice(g.shards, func(i, j int) bool { return g.shards[i].id < g.shards[j].id })
	for _, s := range g.shards {
		s.lock()
	}
	return g, nil
}

// Commit assigns the batch a contiguous LSN range, appends it as one
// group frame on the lowest-id involved shard, releases the shard locks,
// and blocks until the frame is durable. ops must list only operations
// that actually mutated the tree (an absent-key delete is not logged);
// an empty ops is an Abort. Recovery re-expands the frame and replays
// sub-operations in global LSN order, so the batch's effects survive a
// crash exactly as applied.
func (g *Group) Commit(ops []GroupEntry) error {
	if len(ops) == 0 {
		g.Abort()
		return nil
	}
	recs := make([]groupRec, len(ops))
	for i, op := range ops {
		recs[i] = groupRec{key: op.Key, val: op.Val, del: op.Delete}
	}
	last := g.st.seq.Add(uint64(len(ops)))
	s := g.shards[0]
	before := len(s.pending)
	s.appendGroupLocked(last, recs)
	n := len(s.pending)
	g.release()
	return g.st.ack(s, last, n, n-before)
}

// Abort releases the shard locks without logging anything. The caller
// must not have applied any mutation under this group.
func (g *Group) Abort() { g.release() }

// release unlocks the group's shards (reverse order, for symmetry).
func (g *Group) release() {
	for i := len(g.shards) - 1; i >= 0; i-- {
		g.shards[i].unlock()
	}
	g.shards = nil
}

// ack waits for durability (or, in the broken AckBeforeFlush mode,
// doesn't — the mode the crash checker exists to catch) and accounts the
// appended bytes toward the auto-snapshot threshold.
func (st *Store) ack(s *shard, seq uint64, pendingBytes, frameBytes int) error {
	st.bytesSinceSnap.Add(int64(frameBytes))
	if st.cfg.FlushBytes > 0 && pendingBytes >= st.cfg.FlushBytes {
		if st.wal.interval > 0 {
			st.wal.kickFlush()
		}
		// With no interval flusher the waiter below flushes immediately
		// anyway.
	}
	if st.cfg.AckBeforeFlush {
		// BROKEN: acknowledge before the data is durable. A timed or
		// threshold flush will eventually sync it — unless the crash
		// comes first.
		if st.wal.interval == 0 && st.cfg.FlushBytes > 0 && pendingBytes >= st.cfg.FlushBytes {
			return st.wal.waitFlushed(s, seq)
		}
		return nil
	}
	return st.wal.waitFlushed(s, seq)
}

// NeedSnapshot reports whether the auto-snapshot threshold has been
// crossed and, if so, atomically claims the snapshot slot: a true return
// obliges the caller to call Snapshot.
func (st *Store) NeedSnapshot() bool {
	if st.cfg.SnapshotBytes <= 0 || st.closed.Load() {
		return false
	}
	if st.bytesSinceSnap.Load() < st.cfg.SnapshotBytes {
		return false
	}
	return st.snapshotting.CompareAndSwap(false, true)
}

// Snapshot captures the tree through scan (which must emit every live
// key/value pair), commits the snapshot, and truncates covered log
// segments. claimed says whether the caller holds the NeedSnapshot claim.
//
// Protocol (the order is what makes crash-anywhere safe):
//  1. rotate shards to fresh segments — every frame in a sealed segment
//     has seq <= the base LSN captured next;
//  2. capture base LSN, scan the tree into snap-<id>.tmp;
//  3. sweep the shard locks, flush everything the scan could have
//     observed (apply and append share the shard lock, so after the
//     sweep any scanned-but-unlogged operation has its seq assigned and
//     a full flush covers it);
//  4. sync + rename the snapshot into place, then fsync the directory —
//     only now is it eligible for recovery;
//  5. delete sealed segments and stale snapshots (pure space reclaim;
//     crashing before this is safe because replay skips seq <= base).
//
// Snapshots are serialized on snapMu. An explicit (unclaimed) call that
// finds one in flight blocks and then takes its own snapshot rather than
// piggybacking: the in-flight snapshot's base LSN was captured earlier,
// so it does not cover operations acknowledged since.
func (st *Store) Snapshot(scan func(emit func(key, val uint64)) error, claimed bool) error {
	if claimed {
		defer st.snapshotting.Store(false)
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	if st.closed.Load() {
		return ErrStoreClosed
	}
	err := st.snapshotLocked(scan)
	if err != nil {
		st.snapshotErrors.Add(1)
	} else {
		st.snapshots.Add(1)
		st.bytesSinceSnap.Store(0)
	}
	return err
}

func (st *Store) snapshotLocked(scan func(emit func(key, val uint64)) error) error {
	sealed, err := st.wal.rotate()
	if err != nil {
		return err
	}
	base := st.seq.Load()
	id := st.snapID.Add(1)
	tmp := join(st.cfg.Dir, snapName(id)+".tmp")
	f, err := st.cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	w := newSnapshotWriter(f, base, id)
	if err := scan(w.Add); err != nil {
		f.Close()
		st.cfg.FS.Remove(tmp)
		return err
	}
	// Barrier + flush: everything the scan observed is in the log and
	// durable before the snapshot becomes visible to recovery.
	st.wal.sweepLocks()
	if err := st.wal.syncAll(); err != nil {
		f.Close()
		st.cfg.FS.Remove(tmp)
		return err
	}
	if _, err := w.finish(); err != nil {
		f.Close()
		st.cfg.FS.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		st.cfg.FS.Remove(tmp)
		return err
	}
	if err := st.cfg.FS.Rename(tmp, join(st.cfg.Dir, snapName(id))); err != nil {
		st.cfg.FS.Remove(tmp)
		return err
	}
	// The commit rename must be crash-proof before anything it covers is
	// deleted: a power loss that undid the rename but kept the deletions
	// would lose acknowledged data.
	if err := st.cfg.FS.SyncDir(st.cfg.Dir); err != nil {
		return err
	}
	// Truncation: sealed segments are fully covered by the snapshot.
	for _, name := range sealed {
		st.cfg.FS.Remove(join(st.cfg.Dir, name))
	}
	if id > 0 {
		st.cfg.FS.Remove(join(st.cfg.Dir, snapName(id-1)))
	}
	return nil
}

// Sync flushes every shard — the DB.Sync entry point.
func (st *Store) Sync() error {
	if st.closed.Load() {
		return ErrStoreClosed
	}
	return st.wal.syncAll()
}

// Close flushes and closes the log. Idempotent; operations after Close
// fail.
func (st *Store) Close() error {
	if !st.closed.CompareAndSwap(false, true) {
		return nil
	}
	return st.wal.close()
}

// RecoveryInfo returns what this Store's Open recovered.
func (st *Store) RecoveryInfo() RecoveryInfo { return st.recovery }

// LastLSN returns the highest log sequence number assigned so far (the
// recovered maximum right after Open).
func (st *Store) LastLSN() uint64 { return st.seq.Load() }

// DurableLSN returns the highest LSN known to be on disk: the max of the
// WAL shards' flushed watermarks. It is a sound witness even with writers
// running concurrently — unlike LastLSN, it never includes an LSN whose
// frame is still in a pending buffer — so a later recovery must always
// report MaxSeq >= a previously observed DurableLSN. (In the deliberately
// broken AckBeforeFlush mode, acknowledged-but-unflushed LSNs are NOT
// covered; that loss is the linearizability checker's to catch.)
func (st *Store) DurableLSN() uint64 {
	var max uint64
	for _, s := range st.wal.shards {
		s.mu.Lock()
		if s.flushed > max {
			max = s.flushed
		}
		s.mu.Unlock()
	}
	return max
}

// Stats snapshots the durability counters.
func (st *Store) Stats() Stats {
	ws := &st.wal.stats
	ws.mu.Lock()
	out := Stats{
		Flushes:       ws.flushes,
		FlushedFrames: ws.frames,
		FlushedBytes:  ws.bytes,
		MaxBatch:      ws.maxBatch,
		FlushP50Ns:    ws.lat.Quantile(0.50),
		FlushP99Ns:    ws.lat.Quantile(0.99),
		FlushMaxNs:    ws.lat.Max(),
	}
	if ws.flushes > 0 {
		out.AvgBatch = float64(ws.frames) / float64(ws.flushes)
	}
	ws.mu.Unlock()
	out.Snapshots = st.snapshots.Load()
	out.SnapshotErrors = st.snapshotErrors.Load()
	out.Recovery = st.recovery
	return out
}

// String renders a Stats one-liner for logs and STATS protocol replies.
func (s Stats) String() string {
	return fmt.Sprintf("flushes=%d frames=%d batch_max=%d batch_avg=%.1f p99_us=%d snaps=%d recovered_frames=%d recovery_ms=%.2f",
		s.Flushes, s.FlushedFrames, s.MaxBatch, s.AvgBatch,
		s.FlushP99Ns/1000, s.Snapshots, s.Recovery.ReplayedFrames,
		float64(s.Recovery.DurationNs)/1e6)
}
