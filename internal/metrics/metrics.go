// Package metrics provides the small measurement utilities the benchmark
// harness aggregates: a log-scaled latency histogram and helpers for
// formatting rates.
package metrics

import (
	"fmt"
	"math/bits"
)

// Histogram is a power-of-two-bucketed histogram of uint64 observations
// (typically per-operation cycle counts). Bucket i covers [2^(i-1), 2^i).
// It is not safe for concurrent use; record per thread and Merge.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the top
// of the bucket containing it. Resolution is a factor of two, which is
// adequate for latency orders of magnitude.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// HistogramSnapshot is an immutable copy of a Histogram at one point in
// time with the commonly reported derived values pre-computed, safe to
// hand across API boundaries (the live Histogram is single-writer).
type HistogramSnapshot struct {
	Count uint64
	Sum   uint64
	Max   uint64
	Mean  float64
	// P50/P99/P999 are bucket upper bounds (see Quantile).
	P50  uint64
	P99  uint64
	P999 uint64
	// Buckets[i] counts observations in [2^(i-1), 2^i).
	Buckets [65]uint64
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Max:     h.max,
		Mean:    h.Mean(),
		P50:     h.Quantile(0.50),
		P99:     h.Quantile(0.99),
		P999:    h.Quantile(0.999),
		Buckets: h.buckets,
	}
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// FormatOps renders an operations-per-second rate compactly (e.g. "18.6M").
func FormatOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e9:
		return fmt.Sprintf("%.2fG", opsPerSec/1e9)
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.1fK", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f", opsPerSec)
	}
}
