package metrics

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v", m)
	}
	// Median of 1..1000 is ~500; bucket resolution is a factor of two, so
	// the reported bound must be in [500, 1023].
	if q := h.Quantile(0.5); q < 500 || q > 1023 {
		t.Fatalf("p50 = %d", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 = %d", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1 << 20)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() != 1<<20 {
		t.Fatalf("max = %d", a.Max())
	}
}

// TestMergeEquivalenceProperty pins the Merge contract: merging the
// histograms of two disjoint observation streams must be indistinguishable
// — bucket by bucket, and through every derived value including Max and
// the quantiles — from one histogram that observed the concatenation.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b, all Histogram
		for _, v := range xs {
			a.Observe(uint64(v))
			all.Observe(uint64(v))
		}
		for _, v := range ys {
			b.Observe(uint64(v))
			all.Observe(uint64(v))
		}
		a.Merge(&b)
		return a.Snapshot() == all.Snapshot()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != h.Count() || s.Max != h.Max() || s.Mean != h.Mean() {
		t.Fatalf("snapshot disagrees with accessors: %+v", s)
	}
	if s.P50 != h.Quantile(0.5) || s.P99 != h.Quantile(0.99) || s.P999 != h.Quantile(0.999) {
		t.Fatalf("snapshot quantiles disagree: %+v", s)
	}
	h.Observe(1 << 40)
	if s.Max == h.Max() {
		t.Fatal("snapshot not detached from live histogram")
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		last := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatOps(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{5, "5"}, {1500, "1.5K"}, {18_600_000, "18.60M"}, {2.3e9, "2.30G"},
	}
	for _, c := range cases {
		if got := FormatOps(c.v); got != c.want {
			t.Fatalf("FormatOps(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
