package vclock

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSimSingleProcRunsToCompletion(t *testing.T) {
	s := NewSim(1, 0)
	var ran bool
	s.Run(func(p *SimProc) {
		for i := 0; i < 100; i++ {
			p.Tick(3)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if got := s.Procs()[0].Now(); got != 300 {
		t.Fatalf("clock = %d, want 300", got)
	}
	if s.MaxClock() != 300 {
		t.Fatalf("MaxClock = %d, want 300", s.MaxClock())
	}
}

func TestSimInterleavesByClock(t *testing.T) {
	// Core 0 charges 10 per step, core 1 charges 1 per step. Record the
	// global order of steps: core 1 must complete ~10 steps per core-0 step.
	s := NewSim(2, 0)
	var order []int
	s.Run(func(p *SimProc) {
		steps := 10
		cost := uint64(10)
		if p.ID() == 1 {
			steps = 100
			cost = 1
		}
		for i := 0; i < steps; i++ {
			p.Tick(cost)
			order = append(order, p.ID())
		}
	})
	if len(order) != 110 {
		t.Fatalf("got %d steps, want 110", len(order))
	}
	// The first core-0 step commits at t=10; by then core 1 has reached
	// t=10 too, i.e. at least 9 of the first 10 entries belong to core 1.
	ones := 0
	for _, id := range order[:10] {
		if id == 1 {
			ones++
		}
	}
	if ones < 9 {
		t.Fatalf("core 1 ran only %d of the first 10 steps; order=%v", ones, order[:10])
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() []int {
		s := NewSim(4, 0)
		var order []int
		s.Run(func(p *SimProc) {
			r := NewRand(uint64(p.ID()) + 7)
			for i := 0; i < 200; i++ {
				p.Tick(1 + r.Uint64()%13)
				order = append(order, p.ID())
			}
		})
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSimMutualExclusionOfToken(t *testing.T) {
	// Since only one proc runs at a time, an unsynchronized counter must
	// never be corrupted even under -race.
	s := NewSim(8, 0)
	counter := 0
	s.Run(func(p *SimProc) {
		for i := 0; i < 1000; i++ {
			counter++
			p.Tick(1)
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestSimSlackStillCompletes(t *testing.T) {
	s := NewSim(4, 64)
	var total atomic.Uint64
	s.Run(func(p *SimProc) {
		for i := 0; i < 500; i++ {
			p.Tick(2)
		}
		total.Add(p.Now())
	})
	if total.Load() != 4*1000 {
		t.Fatalf("total clock = %d, want 4000", total.Load())
	}
}

func TestSimSpinLoopMakesProgress(t *testing.T) {
	// A proc spinning on a flag set by another proc must not deadlock: Tick
	// hands control to the earlier-clock proc.
	s := NewSim(2, 0)
	flag := false
	s.Run(func(p *SimProc) {
		if p.ID() == 0 {
			for i := 0; i < 50; i++ {
				p.Tick(5)
			}
			flag = true
		} else {
			for !flag {
				p.Tick(DefaultCosts.SpinIter)
			}
		}
	})
	if !flag {
		t.Fatal("flag never set")
	}
}

func TestWallProcCountsAndYields(t *testing.T) {
	p := NewWallProc(3, 10)
	if p.ID() != 3 {
		t.Fatalf("ID = %d", p.ID())
	}
	for i := 0; i < 25; i++ {
		p.Tick(1)
	}
	if p.Now() != 25 {
		t.Fatalf("Now = %d, want 25", p.Now())
	}
	// yieldEvery = 0 must not yield and must still count.
	q := NewWallProc(0, 0)
	q.Tick(1 << 40)
	if q.Now() != 1<<40 {
		t.Fatalf("Now = %d", q.Now())
	}
}

func TestRandDeterministicAndNonzero(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		x, y := a.Uint64(), b.Uint64()
		if x != y {
			t.Fatalf("sequence diverged at %d", i)
		}
		if x == 0 {
			t.Fatal("xorshift emitted 0")
		}
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 64; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestSimManyProcsFairness(t *testing.T) {
	// With identical per-step costs every core must finish with the same
	// clock, and MaxClock equals that.
	const n = 16
	s := NewSim(n, 0)
	s.Run(func(p *SimProc) {
		for i := 0; i < 100; i++ {
			p.Tick(7)
		}
	})
	for _, p := range s.Procs() {
		if p.Now() != 700 {
			t.Fatalf("core %d clock = %d, want 700", p.ID(), p.Now())
		}
	}
	if s.MaxClock() != 700 {
		t.Fatalf("MaxClock = %d", s.MaxClock())
	}
}
