package vclock

// Rand is a small, fast, deterministic PRNG (xorshift64*). Each virtual
// thread owns one so that simulated runs are reproducible regardless of
// scheduling. It is not safe for concurrent use.
type Rand struct {
	s uint64
}

// NewRand seeds a generator. A zero seed is remapped to a fixed nonzero
// constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("vclock: Rand.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
