package vclock

import "runtime"

// WallProc is a Proc for real goroutine execution measured in wall-clock
// time. Tick still accumulates a local cycle count (used for wasted-work
// accounting) and optionally yields the OS thread every YieldEvery charged
// cycles, which produces fine-grained interleaving on hosts with fewer
// physical cores than worker goroutines.
type WallProc struct {
	id         int
	clock      uint64
	yieldEvery uint64
	sinceYield uint64
}

// NewWallProc creates a wall-clock proc. yieldEvery of 0 disables
// cooperative yielding.
func NewWallProc(id int, yieldEvery uint64) *WallProc {
	return &WallProc{id: id, yieldEvery: yieldEvery}
}

// ID implements Proc.
func (p *WallProc) ID() int { return p.id }

// Now implements Proc.
func (p *WallProc) Now() uint64 { return p.clock }

// Tick implements Proc.
func (p *WallProc) Tick(cycles uint64) {
	p.clock += cycles
	if p.yieldEvery == 0 {
		return
	}
	p.sinceYield += cycles
	if p.sinceYield >= p.yieldEvery {
		p.sinceYield = 0
		runtime.Gosched()
	}
}
