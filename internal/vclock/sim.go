package vclock

import "fmt"

// Sim is a deterministic discrete-event multicore simulator. Each virtual
// core runs as one goroutine, but exactly one goroutine executes at any
// moment: control is handed to whichever core currently has the smallest
// local cycle clock (ties broken by core id). Because scheduling depends
// only on charged costs, a run is bit-for-bit reproducible.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	procs     []*SimProc
	heap      []*SimProc // min-heap of parked runnable procs, by (clock, id)
	remaining int
	done      chan struct{}
	slack     uint64
	running   bool
}

// SimProc is one virtual core of a Sim. It implements Proc.
type SimProc struct {
	sim   *Sim
	id    int
	clock uint64
	wake  chan struct{}
}

// NewSim creates a simulator with n virtual cores. slack is the number of
// cycles a core may run ahead of the global minimum before it must yield;
// 0 gives exact min-clock interleaving, larger values trade fidelity for
// fewer context switches.
func NewSim(n int, slack uint64) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("vclock: NewSim with n=%d", n))
	}
	s := &Sim{done: make(chan struct{}), slack: slack}
	s.procs = make([]*SimProc, n)
	for i := range s.procs {
		s.procs[i] = &SimProc{sim: s, id: i, wake: make(chan struct{}, 1)}
	}
	return s
}

// Procs returns the simulator's virtual cores.
func (s *Sim) Procs() []*SimProc { return s.procs }

// Run executes body once per virtual core, in virtual-time lockstep, and
// returns when every body has finished. It must not be called twice on the
// same Sim.
func (s *Sim) Run(body func(p *SimProc)) {
	if s.running {
		panic("vclock: Sim.Run called twice")
	}
	s.running = true
	s.remaining = len(s.procs)
	for _, p := range s.procs {
		p := p
		go func() {
			<-p.wake
			body(p)
			p.finish()
		}()
	}
	// Park everyone, then release the first core. Only the token holder
	// touches the heap, so no further synchronization is needed.
	for _, p := range s.procs {
		s.heapPush(p)
	}
	first := s.heapPop()
	first.wake <- struct{}{}
	<-s.done
}

// MaxClock returns the largest per-core clock, i.e. the virtual makespan of
// the run. Valid after Run returns.
func (s *Sim) MaxClock() uint64 {
	var m uint64
	for _, p := range s.procs {
		if p.clock > m {
			m = p.clock
		}
	}
	return m
}

// ID implements Proc.
func (p *SimProc) ID() int { return p.id }

// Now implements Proc.
func (p *SimProc) Now() uint64 { return p.clock }

// Tick implements Proc: it charges cycles and, if some parked core now has
// an earlier clock, hands control to it.
func (p *SimProc) Tick(cycles uint64) {
	p.clock += cycles
	s := p.sim
	if len(s.heap) == 0 {
		return
	}
	head := s.heap[0]
	if head.clock+s.slack > p.clock || (head.clock == p.clock && head.id > p.id) {
		return // still the earliest core; keep running
	}
	next := s.heapPop()
	s.heapPush(p)
	next.wake <- struct{}{}
	<-p.wake
}

// finish retires the proc: it wakes the next parked core or, if it was the
// last one, signals Run to return.
func (p *SimProc) finish() {
	s := p.sim
	s.remaining--
	if s.remaining == 0 {
		close(s.done)
		return
	}
	if next := s.heapPop(); next != nil {
		next.wake <- struct{}{}
	}
}

// less orders parked procs by (clock, id).
func procLess(a, b *SimProc) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (s *Sim) heapPush(p *SimProc) {
	s.heap = append(s.heap, p)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !procLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Sim) heapPop() *SimProc {
	n := len(s.heap)
	if n == 0 {
		return nil
	}
	top := s.heap[0]
	s.heap[0] = s.heap[n-1]
	s.heap[n-1] = nil
	s.heap = s.heap[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && procLess(s.heap[l], s.heap[small]) {
			small = l
		}
		if r < n && procLess(s.heap[r], s.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}
