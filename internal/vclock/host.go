package vclock

import (
	"runtime"
	"time"
)

// hostEpoch anchors HostProc.Now: clocks are nanoseconds since process
// start, so durations fit comfortably in uint64 and early timestamps stay
// small. time.Since uses the monotonic clock, so Now never goes backwards.
var hostEpoch = time.Now()

// hostYieldCycles is how many charged cycles a HostProc accumulates before
// cooperatively yielding the OS thread. Cost charging is mostly disabled on
// the host backend (the arena's cache model is off), so the remaining Tick
// calls come from transaction bookkeeping and — critically — from spin
// loops (the fallback-lock waits, the CCM advisory-lock loops, line-lock
// spins). Folding the yield into Tick gives every such loop a scheduling
// point without host-specific branches at each site, which is what keeps
// spinners from starving a lock holder when goroutines outnumber cores.
const hostYieldCycles = 1 << 14

// HostProc is a Proc for native-speed execution on the host backend: Tick
// charges nothing (wall time is the only clock), and Now returns real
// nanoseconds. With a HostProc, "cycles" in Stats (WastedCycles, latency
// histograms) are nanoseconds.
type HostProc struct {
	id  int
	acc uint64
}

// NewHostProc creates a native-speed proc. IDs only label threads (they are
// not bounded by the emulator's cache-model proc limit, which the host
// backend bypasses).
func NewHostProc(id int) *HostProc { return &HostProc{id: id} }

// ID implements Proc.
func (p *HostProc) ID() int { return p.id }

// Now implements Proc: nanoseconds of wall-clock time since process start.
func (p *HostProc) Now() uint64 { return uint64(time.Since(hostEpoch)) }

// Tick implements Proc. It costs nothing in time accounting but yields the
// OS thread every hostYieldCycles charged cycles, which turns every
// cost-charging spin loop in the substrate into a polite waiter.
func (p *HostProc) Tick(cycles uint64) {
	p.acc += cycles
	if p.acc >= hostYieldCycles {
		p.acc = 0
		runtime.Gosched()
	}
}
