// Package vclock provides the execution substrate the rest of the
// reproduction runs on: virtual threads ("procs") that charge cycle costs
// for every memory and synchronization operation they perform.
//
// Two implementations of the Proc interface exist:
//
//   - Sim: a deterministic, discrete-event multicore simulator. N virtual
//     cores run as goroutines in strict lockstep; a scheduler always resumes
//     the core with the smallest local cycle clock (ties broken by core id),
//     so every run with the same seed is bit-for-bit reproducible and
//     "throughput versus thread count" is meaningful even on a single-core
//     host. This stands in for the paper's 20-core Xeon E5-2650.
//
//   - Wall: plain goroutines with an optional cooperative yield every few
//     charged cycles, used by the testing.B benchmarks where host wall-clock
//     time is the metric.
//
// All memory traffic in internal/simmem and all transaction bookkeeping in
// internal/htm is charged through Proc.Tick using the CostModel below, so
// instruction-count arguments from the paper (for example "Masstree executes
// 2.1x the instructions of Euno-B+Tree at theta=0.5") surface directly in
// virtual time.
package vclock

// Proc is one virtual thread of execution. Every operation that would cost
// CPU cycles on real hardware must be charged through Tick; in simulated
// mode Tick is also the only scheduling point, so any spin loop that fails
// to Tick would deadlock the simulation.
type Proc interface {
	// ID returns the virtual core number, in [0, nprocs).
	ID() int
	// Tick charges the given number of cycles to this proc's local clock
	// and may transfer control to another proc.
	Tick(cycles uint64)
	// Now returns the proc's local cycle clock.
	Now() uint64
}

// CostModel holds the cycle costs charged for the primitive operations of
// the memory and HTM substrates. The defaults approximate L1-resident
// behavior on the paper's 2.3 GHz Haswell-class parts; they are knobs, not
// measurements, and only relative magnitudes matter for shape fidelity.
type CostModel struct {
	// Load and Store are the costs of a cache-hitting access; Miss is the
	// penalty when the line is not in the accessing core's simulated
	// private cache (see simmem's per-proc cache with version-based
	// invalidation). Because a write by any other core invalidates a
	// cached line, contended lines miss on nearly every access — exactly
	// the coherence behavior that stretches transactions (and therefore
	// widens conflict windows) on real multi-socket hardware.
	Load  uint64
	Store uint64
	Miss  uint64
	// MissPipelined is the marginal cost of the 2nd..Nth miss in a burst
	// of *independent* loads (memory-level parallelism): probing several
	// leaf segments overlaps in the memory pipeline, while the dependent
	// probes of a binary search or a pointer chase each pay full Miss.
	MissPipelined uint64
	CAS           uint64 // atomic compare-and-swap (locked instruction)
	TxBegin       uint64 // xbegin: checkpoint registers, enter speculation
	TxCommitPer   uint64 // commit cost per write-set line
	TxCommit      uint64 // fixed xend cost
	TxAbort       uint64 // abort: discard speculative state, restore checkpoint
	SpinIter      uint64 // one failed iteration of a spin loop
	Fence         uint64 // ordering/bookkeeping around an optimistic version check
	// NodeWork is the per-node structural instruction budget of the
	// fine-grained Masstree comparator (permutation decode, border-key
	// checks, key-slice dispatch) that our uint64-key simplification would
	// otherwise omit. It is calibrated against the paper's measurement
	// that Masstree executes ~2.1x the instructions of Euno-B+Tree per
	// operation (Section 5.2).
	NodeWork uint64
	Compute  uint64 // generic bookkeeping instruction
}

// DefaultCosts is the cost model used by all experiments unless overridden.
// Miss approximates a blend of L3 hits and cross-socket/DRAM accesses on
// the paper's two-socket Xeon.
var DefaultCosts = CostModel{
	Load:          4,
	Store:         4,
	Miss:          150,
	MissPipelined: 25,
	CAS:           40,
	TxBegin:       40,
	TxCommitPer:   10,
	TxCommit:      30,
	TxAbort:       150,
	SpinIter:      15,
	Fence:         12,
	NodeWork:      60,
	Compute:       1,
}

// CyclesPerSecond converts virtual cycles to seconds at the paper's clock
// rate (2.30 GHz Intel Xeon E5-2650 v3).
const CyclesPerSecond = 2_300_000_000
