package htm

import (
	"sync"
	"testing"

	"eunomia/internal/simmem"
)

// The host backend runs the same TL2 protocol as the emulator but on real
// goroutines at wall-clock speed, so these tests hammer it with genuine
// parallelism and assert the transactional invariants directly. They are
// the package-level half of satellite (b); the tree-level linearizability
// sweep lives in internal/tree/treetest.

func newHostDevice(words uint64, cfg Config) (*HTM, *simmem.Arena) {
	a := simmem.NewArena(words)
	cfg.Backend = BackendHost
	return New(a, cfg), a
}

func TestBackendString(t *testing.T) {
	if BackendEmulated.String() != "emulated" || BackendHost.String() != "host" {
		t.Fatalf("Backend strings: %q %q", BackendEmulated, BackendHost)
	}
	if got := Backend(7).String(); got != "backend(7)" {
		t.Fatalf("unknown backend string: %q", got)
	}
}

func TestHostDisablesCostModel(t *testing.T) {
	h, a := newHostDevice(1<<14, Config{})
	if !h.Host() {
		t.Fatal("Host() = false on host backend")
	}
	if !a.CostModelDisabled() {
		t.Fatal("host backend left the arena cost model enabled")
	}
	// Host thread IDs are unbounded (no per-proc cache table).
	th := h.NewHostThread(4096, 1)
	x := a.AllocAligned(th.P, 8, simmem.TagKeys)
	if ok, reason := th.Run(func(tx *Tx) { tx.Store(x, 42) }); !ok {
		t.Fatalf("host commit failed: %v", reason)
	}
	if got := a.WordRaw(x); got != 42 {
		t.Fatalf("word = %d, want 42", got)
	}
}

// hostCounterRun drives workers goroutines through incs transactional
// increments of one shared word each and checks the total — lost updates
// mean broken write-write conflict detection.
func hostCounterRun(t *testing.T, cfg Config, pol RetryPolicy) {
	t.Helper()
	h, a := newHostDevice(1<<16, cfg)
	boot := h.NewHostThread(0, 1)
	ctr := a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagKeys)

	workers, incs := 8, 300
	if testing.Short() {
		incs = 100
	}
	var wg sync.WaitGroup
	threads := make([]*Thread, workers)
	for w := 0; w < workers; w++ {
		th := h.NewHostThread(w+1, uint64(w)*7919+1)
		threads[w] = th
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				th.Execute(pol, func(tx *Tx) {
					tx.Store(ctr, tx.Load(ctr)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got, want := a.WordRaw(ctr), uint64(workers*incs); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	for _, th := range threads {
		th.FlushStats()
	}
	ds := h.DeviceStats()
	if ds.Commits+ds.Fallbacks < uint64(workers*incs) {
		t.Fatalf("device stats undercount after FlushStats: commits=%d fallbacks=%d want >= %d",
			ds.Commits, ds.Fallbacks, workers*incs)
	}
}

func TestHostCounterDefaultPolicy(t *testing.T) {
	hostCounterRun(t, Config{}, DefaultPolicy)
}

func TestHostCounterResilient(t *testing.T) {
	cfg := Config{QueuedFallback: true}
	hostCounterRun(t, cfg, ResilientPolicy())
}

// TestHostOpacity keeps an invariant (a + b == 1000) across transfer
// transactions while readers assert it transactionally from other
// goroutines. A reader observing a torn sum means the host backend lost
// TL2 opacity under real concurrency.
func TestHostOpacity(t *testing.T) {
	h, a := newHostDevice(1<<16, Config{})
	boot := h.NewHostThread(0, 1)
	// Two words on distinct lines so a transfer really spans two lines.
	wa := a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagKeys)
	wb := a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagKeys)
	const total = 1000
	a.StoreWordDirect(boot.P, wa, total)

	iters := 400
	if testing.Short() {
		iters = 120
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := h.NewHostThread(w+1, uint64(w)*2654435761+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				th.Execute(DefaultPolicy, func(tx *Tx) {
					av, bv := tx.Load(wa), tx.Load(wb)
					if av > 0 {
						tx.Store(wa, av-1)
						tx.Store(wb, bv+1)
					} else {
						tx.Store(wa, av+bv)
						tx.Store(wb, 0)
					}
				})
			}
		}()
	}
	for w := 0; w < 2; w++ {
		th := h.NewHostThread(10+w, uint64(w)*97+13)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var av, bv uint64
				th.Execute(DefaultPolicy, func(tx *Tx) {
					av, bv = tx.Load(wa), tx.Load(wb)
				})
				if av+bv != total {
					t.Errorf("opacity violated: a=%d b=%d sum=%d", av, bv, av+bv)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := a.WordRaw(wa) + a.WordRaw(wb); got != total {
		t.Fatalf("final sum = %d, want %d", got, total)
	}
}

// TestHostFallbackMutualExclusion mixes transactional increments with
// direct-mode fallback increments from separate goroutines, on both
// fallback-lock flavors. The fallback's version bumps must abort in-flight
// transactions, and the lock must serialize fallback bodies.
func TestHostFallbackMutualExclusion(t *testing.T) {
	for _, queued := range []bool{false, true} {
		name := "spin"
		if queued {
			name = "ticket"
		}
		t.Run(name, func(t *testing.T) {
			h, a := newHostDevice(1<<16, Config{QueuedFallback: queued})
			boot := h.NewHostThread(0, 1)
			ctr := a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagKeys)

			workers, incs := 6, 200
			if testing.Short() {
				incs = 60
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				th := h.NewHostThread(w+1, uint64(w)*31+7)
				useFallback := w%2 == 0
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < incs; i++ {
						if useFallback {
							th.RunFallback(func(tx *Tx) {
								tx.Store(ctr, tx.Load(ctr)+1)
							})
						} else {
							th.Execute(DefaultPolicy, func(tx *Tx) {
								tx.Store(ctr, tx.Load(ctr)+1)
							})
						}
					}
				}()
			}
			wg.Wait()
			if got, want := a.WordRaw(ctr), uint64(workers*incs); got != want {
				t.Fatalf("counter = %d, want %d", got, want)
			}
		})
	}
}

// TestHostResilienceWaits exercises the wall-clock branches of backoff and
// lemming-wait under real contention, checking they make progress and
// still record backoff cycles.
func TestHostResilienceWaits(t *testing.T) {
	h, a := newHostDevice(1<<16, Config{QueuedFallback: true})
	boot := h.NewHostThread(0, 1)
	ctr := a.AllocAligned(boot.P, simmem.WordsPerLine, simmem.TagKeys)

	pol := ResilientPolicy()
	workers, incs := 6, 150
	if testing.Short() {
		incs = 50
	}
	var wg sync.WaitGroup
	threads := make([]*Thread, workers)
	for w := 0; w < workers; w++ {
		th := h.NewHostThread(w+1, uint64(w)*101+3)
		threads[w] = th
		heavy := w == 0 // one thread forces fallback traffic
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				if heavy && i%4 == 0 {
					th.RunFallback(func(tx *Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				} else {
					th.Execute(pol, func(tx *Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				}
			}
		}()
	}
	wg.Wait()
	if got, want := a.WordRaw(ctr), uint64(workers*incs); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	var backoff uint64
	for _, th := range threads {
		backoff += th.Stats.BackoffCycles
	}
	// With 6 threads hammering one line plus periodic fallbacks, at least
	// one conflict-retry backoff must have fired; its cycles are recorded
	// even though the host pause is wall-clock.
	if backoff == 0 {
		t.Log("no backoff recorded (uncontended run); acceptable but unusual")
	}
}
