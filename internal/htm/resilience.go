package htm

import (
	"sync"
	"sync/atomic"
)

// This file is the opt-in hardening layer over the paper-faithful retry
// loop. The reproduction's default behavior is deliberately fragile — no
// backoff, lemming-style fallback, a spin-CAS global lock — because that
// fragility *is* the baseline the paper analyses. A production deployment
// needs the opposite: bounded worst cases under abort storms. Resilience
// bundles four defenses, each individually selectable:
//
//  1. Randomized exponential backoff between conflict retries (Retry-
//     Policy.BackoffBase/BackoffMax), with the pause drawn from the
//     thread's deterministic RNG in virtual-time ticks, so simulated runs
//     stay reproducible.
//
//  2. Lemming mitigation (RetryPolicy.LemmingWait): after an attempt
//     aborts on the held fallback lock, the thread waits for the lock to
//     clear before re-attempting instead of burning further
//     AbortFallbackLock aborts — the fix Brown's HTM template paper
//     identifies as the difference between a usable and a collapsing
//     fallback path.
//
//  3. A fair ticket ("queued") fallback lock (Config.QueuedFallback): FIFO
//     hand-off instead of spin-CAS, so a lock hog cannot starve waiters.
//
//  4. A per-device abort-storm detector (Config.Storm) driving graceful
//     degradation: when the abort fraction over a sliding sample window
//     crosses a threshold, Execute temporarily serializes through the
//     fallback path, and re-enables HTM after the storm subsides — the
//     engage/disengage dynamic of contention-adapting trees.
//
// A fifth knob, RetryPolicy.AttemptBudget, is the per-operation starvation
// watchdog: it bounds the total attempts of one Execute across all abort
// reasons, guaranteeing the fallback path (and so a bounded worst case)
// regardless of how the per-reason thresholds interleave.

// StormConfig configures the per-device abort-storm detector. The zero
// value disables it.
type StormConfig struct {
	// Window is the number of attempt samples per detector window; 0
	// disables the detector entirely.
	Window uint64
	// Threshold is the abort fraction (aborts/attempts in one window) at
	// which degradation engages. <= 0 defaults to 0.85.
	Threshold float64
	// CooldownWindows is how many consecutive sub-threshold windows must
	// pass while degraded before HTM execution is re-enabled. <= 0
	// defaults to 2.
	CooldownWindows int
}

// withDefaults fills the tunables left at zero.
func (c StormConfig) withDefaults() StormConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.85
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 2
	}
	return c
}

// stormDetector tracks the device-wide abort rate over a sliding sample
// window and drives the degraded flag. Counters are mutex-guarded: under
// the lockstep simulator only one goroutine runs at a time, so window
// boundaries (and therefore degradation decisions) are fully deterministic;
// under wall-clock runs the lock makes the rollover race-free.
type stormDetector struct {
	cfg StormConfig

	mu      sync.Mutex
	samples uint64
	aborts  uint64
	calm    int // consecutive sub-threshold windows while degraded

	degraded atomic.Bool
	events   atomic.Uint64
}

func newStormDetector(cfg StormConfig) *stormDetector {
	if cfg.Window == 0 {
		return nil
	}
	return &stormDetector{cfg: cfg.withDefaults()}
}

// note records one attempt sample and rolls the window over when full.
func (d *stormDetector) note(aborted bool) {
	d.mu.Lock()
	d.samples++
	if aborted {
		d.aborts++
	}
	if d.samples >= d.cfg.Window {
		rate := float64(d.aborts) / float64(d.samples)
		if d.degraded.Load() {
			if rate < d.cfg.Threshold {
				d.calm++
				if d.calm >= d.cfg.CooldownWindows {
					d.degraded.Store(false)
					d.calm = 0
				}
			} else {
				d.calm = 0
			}
		} else if rate >= d.cfg.Threshold {
			d.degraded.Store(true)
			d.calm = 0
			d.events.Add(1)
		}
		d.samples, d.aborts = 0, 0
	}
	d.mu.Unlock()
}

// Degraded reports whether the storm detector is currently serializing
// executions through the fallback path.
func (h *HTM) Degraded() bool {
	return h.storm != nil && h.storm.degraded.Load()
}

// StormEvents returns how many times the detector engaged degradation.
func (h *HTM) StormEvents() uint64 {
	if h.storm == nil {
		return 0
	}
	return h.storm.events.Load()
}

// Resilience bundles every hardening knob so callers can flip one switch.
// The zero value (Enabled=false) is the paper-faithful fragile default;
// DefaultResilience returns the full production bundle.
type Resilience struct {
	// Enabled is the master switch; when false the other fields are
	// ignored and both Apply and DeviceConfig are identity functions.
	Enabled bool

	// Retry-layer knobs, applied to a RetryPolicy by Apply.
	BackoffBase   uint64
	BackoffMax    uint64
	LemmingWait   bool
	AttemptBudget int

	// Device-layer knobs, applied to a Config by DeviceConfig.
	QueuedFallback bool
	Storm          StormConfig
}

// DefaultResilience is the full hardening bundle: every defense on, with
// thresholds sized for the emulator's cost model (SpinIter=15 cycles, tx
// round trips a few hundred).
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:        true,
		BackoffBase:    64,
		BackoffMax:     8192,
		LemmingWait:    true,
		AttemptBudget:  24,
		QueuedFallback: true,
		Storm:          StormConfig{Window: 256, Threshold: 0.85, CooldownWindows: 2},
	}
}

// Apply overlays the retry-layer knobs onto a base policy. With Enabled
// false it returns base unchanged.
func (r Resilience) Apply(base RetryPolicy) RetryPolicy {
	if !r.Enabled {
		return base
	}
	base.BackoffBase = r.BackoffBase
	base.BackoffMax = r.BackoffMax
	base.LemmingWait = r.LemmingWait
	base.AttemptBudget = r.AttemptBudget
	return base
}

// DeviceConfig overlays the device-layer knobs onto an htm.Config. With
// Enabled false it returns cfg unchanged.
func (r Resilience) DeviceConfig(cfg Config) Config {
	if !r.Enabled {
		return cfg
	}
	cfg.QueuedFallback = r.QueuedFallback
	cfg.Storm = r.Storm
	return cfg
}
