package htm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"eunomia/internal/vclock"
)

// Backend selects the execution engine behind the transactional API. Both
// backends run the *same* TL2-style protocol over the same per-line
// version/lock metadata — the concurrency control in this package is real
// either way (the arena is atomics, commits CAS line locks, wall-clock
// tests race real goroutines through it even in emulated mode). What the
// backend changes is the clock:
//
//   - BackendEmulated charges every memory access and transaction event
//     through the virtual-time cost model, so contention plays out in
//     deterministic simulated cycles (the mode all paper figures use).
//
//   - BackendHost turns the cost model off and measures nothing but wall
//     time: threads are plain goroutines on vclock.HostProc, loads and
//     stores are bare sync/atomic word operations, and the resilience
//     waits (backoff, lemming-wait, fallback spins) pause in real time
//     with cooperative yields. This is the engine for real multi-core
//     throughput numbers (eunobench hostperf).
type Backend int

// The two execution engines.
const (
	BackendEmulated Backend = iota
	BackendHost
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendEmulated:
		return "emulated"
	case BackendHost:
		return "host"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// Host reports whether the device runs on the host backend.
func (h *HTM) Host() bool { return h.host }

// NewHostThread creates a worker handle on a fresh native-speed proc. It is
// the host-backend counterpart of NewThread(vclock.NewWallProc(...), seed);
// id only labels the thread (host proc IDs are unbounded).
func (h *HTM) NewHostThread(id int, seed uint64) *Thread {
	return h.NewThread(vclock.NewHostProc(id), seed)
}

// hostSpinSink gives host-backend pause loops a load the compiler cannot
// elide without the coherence cost of a shared store.
var hostSpinSink atomic.Uint64

// hostPause busy-waits for roughly n spin units (about a nanosecond each),
// yielding the OS thread periodically so a descheduled lock holder or
// conflicting writer can run — mandatory for progress when goroutines
// outnumber cores. It is the host-backend realization of "pause for d
// virtual cycles" in the randomized backoff.
func hostPause(n uint64) {
	for i := uint64(0); i < n; i++ {
		_ = hostSpinSink.Load()
		if i&1023 == 1023 {
			runtime.Gosched()
		}
	}
}

// hostWait spins until cond returns true, escalating from a brief busy wait
// to yielding every iteration. Used for the host-backend fallback-lock
// waits, where the condition flips only when another goroutine gets to run.
func hostWait(cond func() bool) {
	for spins := 0; !cond(); spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}
