package htm

import (
	"sync"
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

func newDevice(words uint64) (*HTM, *simmem.Arena) {
	a := simmem.NewArena(words)
	return New(a, DefaultConfig), a
}

func TestCommitMakesWritesVisible(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		tx.Store(x, 11)
		tx.Store(x+1, 22)
	})
	if !ok {
		t.Fatalf("commit failed: %v", reason)
	}
	if got := a.LoadWord(p, x); got != 11 {
		t.Fatalf("word0 = %d", got)
	}
	if got := a.LoadWord(p, x+1); got != 22 {
		t.Fatalf("word1 = %d", got)
	}
	if th.Stats.Commits != 1 || th.Stats.TotalAborts() != 0 {
		t.Fatalf("stats: %s", th.Stats.String())
	}
}

func TestBufferedWritesInvisibleUntilCommit(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	th.Run(func(tx *Tx) {
		tx.Store(x, 5)
		if got := a.WordRaw(x); got != 0 {
			t.Fatalf("write leaked before commit: %d", got)
		}
	})
}

func TestReadYourWrites(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	ok, _ := th.Run(func(tx *Tx) {
		tx.Store(x, 7)
		if got := tx.Load(x); got != 7 {
			t.Fatalf("read-own-write = %d", got)
		}
		tx.Store(x, 9)
		if got := tx.Load(x); got != 9 {
			t.Fatalf("after overwrite = %d", got)
		}
	})
	if !ok {
		t.Fatal("commit failed")
	}
	if got := a.LoadWord(p, x); got != 9 {
		t.Fatalf("final = %d", got)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		tx.Store(x, 42)
		tx.Abort(3)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("ok=%v reason=%v", ok, reason)
	}
	if got := a.LoadWord(p, x); got != 0 {
		t.Fatalf("aborted write persisted: %d", got)
	}
	if th.Stats.Aborts[AbortExplicit] != 1 {
		t.Fatalf("stats: %s", th.Stats.String())
	}
	if th.Stats.WastedCycles == 0 {
		t.Fatal("wasted cycles not accounted")
	}
}

func TestAbortReturnsAllocations(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	before := a.LiveBytes()

	th.Run(func(tx *Tx) {
		tx.AllocAligned(16, simmem.TagKeys)
		tx.Abort(1)
	})
	if got := a.LiveBytes(); got != before {
		t.Fatalf("leaked %d bytes on abort", got-before)
	}

	// And a committed transaction keeps its allocation.
	ok, _ := th.Run(func(tx *Tx) {
		tx.AllocAligned(16, simmem.TagKeys)
	})
	if !ok {
		t.Fatal("commit failed")
	}
	if got := a.LiveBytes(); got != before+128 {
		t.Fatalf("live = %d, want %d", got, before+128)
	}
}

func TestCapacityAbortReads(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, Config{MaxReadLines: 16, MaxWriteLines: 16})
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 64*simmem.WordsPerLine, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		for i := 0; i < 32; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("ok=%v reason=%v, want capacity abort", ok, reason)
	}
}

func TestCapacityAbortWrites(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, Config{MaxReadLines: 64, MaxWriteLines: 8})
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 64*simmem.WordsPerLine, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		for i := 0; i < 16; i++ {
			tx.Store(base+simmem.Addr(i*simmem.WordsPerLine), 1)
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("ok=%v reason=%v, want capacity abort", ok, reason)
	}
}

func TestStrongAtomicityDirectStoreAbortsReader(t *testing.T) {
	// A transaction that read a line must abort when a non-transactional
	// store hits the same line before it commits (writes something so the
	// commit validates the read set).
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)
	y := a.AllocAligned(p, 8, simmem.TagKeys)

	first := true
	ok, reason := th.Run(func(tx *Tx) {
		v := tx.Load(x)
		tx.Store(y, v+1)
		if first {
			first = false
			a.StoreWordDirect(p, x, 99) // conflicting direct write
		}
	})
	if ok || !reason.IsConflict() {
		t.Fatalf("ok=%v reason=%v, want conflict", ok, reason)
	}
}

func TestConflictClassificationTrueVsFalse(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys) // one line, words x..x+7

	// True conflict: reader read word 2; writer wrote word 2.
	step := 0
	_, reason := th.Run(func(tx *Tx) {
		tx.Load(x + 2)
		tx.Store(x+7, 1) // make it a writing tx so commit validates
		if step == 0 {
			step = 1
			a.StoreWordDirect(p, x+2, 5)
		}
	})
	if reason != AbortConflictTrue {
		t.Fatalf("reason = %v, want conflict-true", reason)
	}

	// False conflict: reader read word 2; writer wrote word 6 (same line).
	step = 0
	_, reason = th.Run(func(tx *Tx) {
		tx.Load(x + 2)
		tx.Store(x+7, 1)
		if step == 0 {
			step = 1
			a.StoreWordDirect(p, x+6, 5)
		}
	})
	if reason != AbortConflictFalse {
		t.Fatalf("reason = %v, want conflict-false", reason)
	}
}

func TestConflictClassificationMeta(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	m := a.AllocAligned(p, 8, simmem.TagNodeMeta)

	step := 0
	_, reason := th.Run(func(tx *Tx) {
		tx.Load(m)
		tx.Store(m+1, 1)
		if step == 0 {
			step = 1
			a.StoreWordDirect(p, m+3, 5)
		}
	})
	if reason != AbortConflictMeta {
		t.Fatalf("reason = %v, want conflict-meta", reason)
	}
}

func TestFallbackLockAbortsTransactions(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	// Take the fallback lock directly; a new attempt must abort at begin.
	if !a.CASWordDirect(p, h.fallback, 0, 1) {
		t.Fatal("could not take fallback lock")
	}
	ok, reason := th.Run(func(tx *Tx) { tx.Load(x) })
	if ok || reason != AbortFallbackLock {
		t.Fatalf("ok=%v reason=%v, want fallback-lock abort", ok, reason)
	}
	a.StoreWordDirect(p, h.fallback, 0)
}

func TestExecuteFallsBackAfterExplicitRetries(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	// The body aborts explicitly on every transactional attempt; Execute
	// must eventually run it in fallback mode, where Abort is unreachable
	// because the body checks Direct().
	runs := 0
	th.Execute(RetryPolicy{Conflict: 2, Capacity: 1, Explicit: 3}, func(tx *Tx) {
		runs++
		tx.Store(x, uint64(runs))
		if !tx.Direct() {
			tx.Abort(1)
		}
	})
	if th.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1; %s", th.Stats.Fallbacks, th.Stats.String())
	}
	if got := a.LoadWord(p, x); got == 0 {
		t.Fatal("fallback execution did not apply writes")
	}
	if !h.FallbackHeld() == false && h.FallbackHeld() {
		t.Fatal("fallback lock leaked")
	}
}

func TestExecuteCommitsSimpleBody(t *testing.T) {
	h, a := newDevice(1 << 14)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)
	th.Execute(DefaultPolicy, func(tx *Tx) {
		tx.Store(x, tx.Load(x)+1)
	})
	if got := a.LoadWord(p, x); got != 1 {
		t.Fatalf("x = %d", got)
	}
	if th.Stats.Fallbacks != 0 {
		t.Fatal("unexpected fallback")
	}
}

func TestConcurrentCountersExactWall(t *testing.T) {
	// 8 goroutines × 300 transactional increments of 4 counters that all
	// share one line: heavy conflicts, but the final sums must be exact.
	h, a := newDevice(1 << 16)
	setup := vclock.NewWallProc(0, 0)
	x := a.AllocAligned(setup, 8, simmem.TagKeys)
	const workers, each = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := h.NewThread(vclock.NewWallProc(id, 32), uint64(id)+1)
			for i := 0; i < each; i++ {
				slot := simmem.Addr(i % 4)
				th.Execute(DefaultPolicy, func(tx *Tx) {
					tx.Store(x+slot, tx.Load(x+slot)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 4; i++ {
		total += a.LoadWord(setup, x+simmem.Addr(i))
	}
	if total != workers*each {
		t.Fatalf("total = %d, want %d", total, workers*each)
	}
}

func TestOpacityInvariantUnderSim(t *testing.T) {
	// Writers keep x+y constant inside transactions; readers must never
	// observe a violated invariant inside a transaction (opacity), in
	// deterministic virtual time.
	a := simmem.NewArena(1 << 16)
	h := New(a, DefaultConfig)
	boot := vclock.NewWallProc(0, 0)
	x := a.AllocAligned(boot, 8, simmem.TagKeys)
	y := a.AllocAligned(boot, 8, simmem.TagKeys)
	a.StoreWordDirect(boot, x, 1000)

	sim := vclock.NewSim(6, 0)
	violations := 0
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+1)
		if p.ID() < 3 { // writers: move value between x and y
			for i := 0; i < 400; i++ {
				th.Execute(DefaultPolicy, func(tx *Tx) {
					vx, vy := tx.Load(x), tx.Load(y)
					tx.Store(x, vx-1)
					tx.Store(y, vy+1)
				})
			}
		} else { // readers
			for i := 0; i < 400; i++ {
				th.Execute(DefaultPolicy, func(tx *Tx) {
					if tx.Load(x)+tx.Load(y) != 1000 {
						violations++
					}
				})
			}
		}
	})
	if violations != 0 {
		t.Fatalf("%d opacity violations", violations)
	}
	if got := a.LoadWord(boot, x) + a.LoadWord(boot, y); got != 1000 {
		t.Fatalf("final sum = %d", got)
	}
}

func TestSimRunsAreDeterministic(t *testing.T) {
	run := func() (uint64, Stats) {
		a := simmem.NewArena(1 << 16)
		h := New(a, DefaultConfig)
		boot := vclock.NewWallProc(0, 0)
		x := a.AllocAligned(boot, 8, simmem.TagKeys)
		sim := vclock.NewSim(4, 0)
		var agg Stats
		sim.Run(func(p *vclock.SimProc) {
			th := h.NewThread(p, uint64(p.ID())+1)
			for i := 0; i < 200; i++ {
				th.Execute(DefaultPolicy, func(tx *Tx) {
					tx.Store(x, tx.Load(x)+1)
				})
			}
			agg.Merge(&th.Stats)
		})
		return sim.MaxClock(), agg
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("makespan differs: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r := AbortNone; r < NumAbortReasons; r++ {
		if r.String() == "" {
			t.Fatalf("empty name for reason %d", r)
		}
	}
	if !AbortConflictMeta.IsConflict() || AbortCapacity.IsConflict() {
		t.Fatal("IsConflict misclassifies")
	}
}

func TestStatsMergeAndString(t *testing.T) {
	var a, b Stats
	a.Commits, a.Aborts[AbortCapacity] = 3, 2
	b.Commits, b.Aborts[AbortConflictTrue], b.Fallbacks = 4, 5, 1
	a.Merge(&b)
	if a.Commits != 7 || a.TotalAborts() != 7 || a.Fallbacks != 1 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	if a.ConflictAborts() != 5 {
		t.Fatalf("conflict aborts = %d", a.ConflictAborts())
	}
	if a.String() == "" {
		t.Fatal("empty string")
	}
}
