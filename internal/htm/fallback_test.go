package htm

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// TestCapacityPolicyFallsBack: a body that always exceeds the read-set
// capacity must be executed on the fallback path and still apply its
// effects exactly once.
func TestCapacityPolicyFallsBack(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, Config{MaxReadLines: 4, MaxWriteLines: 64})
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 16*simmem.WordsPerLine, simmem.TagKeys)
	sum := a.AllocAligned(p, 8, simmem.TagKeys)

	th.Execute(DefaultPolicy, func(tx *Tx) {
		var s uint64
		for i := 0; i < 8; i++ { // 8 lines > capacity 4
			s += tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
		tx.Store(sum, tx.Load(sum)+1)
	})
	if th.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (%s)", th.Stats.Fallbacks, th.Stats.String())
	}
	if th.Stats.Aborts[AbortCapacity] != uint64(DefaultPolicy.Capacity)+1 {
		t.Fatalf("capacity aborts = %d, want %d", th.Stats.Aborts[AbortCapacity], DefaultPolicy.Capacity+1)
	}
	if got := a.LoadWord(p, sum); got != 1 {
		t.Fatalf("fallback applied %d times", got)
	}
	if h.FallbackHeld() {
		t.Fatal("fallback lock leaked")
	}
}

// TestFallbackMutualExclusionSim: while one thread executes on the
// fallback path, transactional threads must never commit interleaved
// effects — verified with an invariant two-word counter.
func TestFallbackMutualExclusionSim(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, DefaultConfig)
	boot := vclock.NewWallProc(0, 0)
	x := a.AllocAligned(boot, 8, simmem.TagKeys)
	// Invariant: word0 == word1 at every commit boundary.
	sim := vclock.NewSim(6, 0)
	bad := 0
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+1)
		for i := 0; i < 200; i++ {
			body := func(tx *Tx) {
				v0 := tx.Load(x)
				v1 := tx.Load(x + 1)
				if v0 != v1 {
					bad++
				}
				tx.Store(x, v0+1)
				tx.Store(x+1, v1+1)
			}
			if i%17 == 0 {
				th.RunFallback(body) // force the lock path periodically
			} else {
				th.Execute(DefaultPolicy, body)
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d invariant violations across fallback/tx boundary", bad)
	}
	if got := a.LoadWord(boot, x); got != 6*200 {
		t.Fatalf("count = %d, want 1200", got)
	}
}

// TestLockBusyStorm: threads retrying into a held fallback lock burn
// AbortFallbackLock aborts (the lemming behavior) and eventually queue.
func TestLockBusyStorm(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, DefaultConfig)
	boot := vclock.NewWallProc(0, 0)
	x := a.AllocAligned(boot, 8, simmem.TagKeys)

	sim := vclock.NewSim(4, 0)
	var merged Stats
	stats := make([]Stats, 4)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+1)
		if p.ID() == 0 {
			// Hog the lock repeatedly.
			for i := 0; i < 50; i++ {
				th.RunFallback(func(tx *Tx) {
					for j := 0; j < 50; j++ {
						tx.Store(x+simmem.Addr(j%8), uint64(j))
					}
				})
			}
		} else {
			for i := 0; i < 100; i++ {
				th.Execute(DefaultPolicy, func(tx *Tx) {
					tx.Store(x, tx.Load(x)+1)
				})
			}
		}
		stats[p.ID()] = th.Stats
	})
	for i := range stats {
		merged.Merge(&stats[i])
	}
	if merged.Aborts[AbortFallbackLock] == 0 {
		t.Fatal("no fallback-lock aborts despite a lock hog")
	}
}

// TestPrefetchIsSemanticallyInert: prefetching must not affect values,
// conflict detection, or abort behavior — only timing.
func TestPrefetchIsSemanticallyInert(t *testing.T) {
	a := simmem.NewArena(1 << 14)
	h := New(a, DefaultConfig)
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 32, simmem.TagKeys)

	ok, _ := th.Run(func(tx *Tx) {
		tx.Prefetch(x, x+8, x+16, x+24)
		tx.Store(x, 1)
	})
	if !ok {
		t.Fatal("commit failed")
	}
	// Prefetched-but-unread lines are not in the read set: a conflicting
	// write to one of them must not abort us.
	first := true
	ok, _ = th.Run(func(tx *Tx) {
		tx.Prefetch(x + 8)
		v := tx.Load(x)
		if first {
			first = false
			a.StoreWordDirect(p, x+8, 99) // prefetched line, never loaded
		}
		tx.Store(x+16, v)
	})
	if !ok {
		t.Fatal("write to a prefetched-but-unread line aborted the tx")
	}
}

// TestTxLoadStoreCounters verifies the instruction-proxy counters.
func TestTxLoadStoreCounters(t *testing.T) {
	a := simmem.NewArena(1 << 14)
	h := New(a, DefaultConfig)
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)
	th.Run(func(tx *Tx) {
		tx.Load(x)
		tx.Load(x + 1)
		tx.Store(x+2, 1)
	})
	// +1 load for the fallback-lock subscription.
	if th.Stats.TxLoads != 3 || th.Stats.TxStores != 1 {
		t.Fatalf("loads=%d stores=%d", th.Stats.TxLoads, th.Stats.TxStores)
	}
}

// TestDirectModeTx exercises the fallback-mode Tx API surface.
func TestDirectModeTx(t *testing.T) {
	a := simmem.NewArena(1 << 14)
	h := New(a, DefaultConfig)
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	th.RunFallback(func(tx *Tx) {
		if !tx.Direct() {
			t.Fatal("not in direct mode")
		}
		tx.Store(x, 5)
		if got := tx.Load(x); got != 5 {
			t.Fatalf("direct load = %d", got)
		}
		addr := tx.AllocAligned(8, simmem.TagReserved)
		if addr == simmem.NilAddr {
			t.Fatal("direct alloc failed")
		}
		a.Free(p, addr, 8, simmem.TagReserved)
	})
	if got := a.LoadWord(p, x); got != 5 {
		t.Fatalf("fallback store lost: %d", got)
	}

	// Abort in direct mode is a programming error and must panic. (The
	// device is test-local, so the lock the panic strands is harmless.)
	defer func() {
		if recover() == nil {
			t.Fatal("Abort in direct mode did not panic")
		}
	}()
	th.RunFallback(func(tx *Tx) { tx.Abort(1) })
}

// TestSerializabilityRandomRegisterFileSim: concurrent random
// multi-register transactions must preserve a global invariant (the sum of
// all registers), which only holds if every commit is atomic.
func TestSerializabilityRandomRegisterFileSim(t *testing.T) {
	a := simmem.NewArena(1 << 18)
	h := New(a, DefaultConfig)
	boot := vclock.NewWallProc(0, 0)
	const regs = 24
	base := a.AllocAligned(boot, regs*simmem.WordsPerLine, simmem.TagKeys)
	reg := func(i int) simmem.Addr { return base + simmem.Addr(i*simmem.WordsPerLine) }
	a.StoreWordDirect(boot, reg(0), 1_000_000)

	sim := vclock.NewSim(8, 0)
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+100)
		r := vclock.NewRand(uint64(p.ID()) + 5)
		for i := 0; i < 300; i++ {
			from, to := r.Intn(regs), r.Intn(regs)
			amt := uint64(r.Intn(10))
			th.Execute(DefaultPolicy, func(tx *Tx) {
				f := tx.Load(reg(from))
				if f < amt {
					return
				}
				tx.Store(reg(from), f-amt)
				tx.Store(reg(to), tx.Load(reg(to))+amt)
			})
		}
	})
	var total uint64
	for i := 0; i < regs; i++ {
		total += a.LoadWord(boot, reg(i))
	}
	if total != 1_000_000 {
		t.Fatalf("conservation violated: total = %d", total)
	}
}
