package htm_test

// Host-speed micro-benchmarks of the emulator's hot paths. The bodies live
// in the hostbench package so `eunobench hostbench` can run the identical
// code and write BENCH_emulator.json; this file only adapts them to
// `go test -bench`.
//
// Run with:
//
//	go test -run=NONE -bench=HostEmulator -benchmem -count=5 ./internal/htm/
//
// (or `make bench-emulator`). The acceptance bar tracked across PRs is the
// rs=512 Load and WriteCommit cases: per-access cost must stay flat as the
// set grows, and the writing-commit path must not allocate.

import (
	"testing"

	"eunomia/internal/htm/hostbench"
)

func BenchmarkHostEmulator(b *testing.B) {
	for _, c := range hostbench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}
