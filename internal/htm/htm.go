// Package htm emulates Intel Restricted Transactional Memory (RTM) in
// software over a simmem.Arena.
//
// Why an emulator: Go cannot issue xbegin/xend (no intrinsics), and even via
// assembly stubs the runtime is hostile to hardware transactions — stack
// growth, preemption signals, and the garbage collector's write barriers all
// abort them. The paper's results, however, do not depend on transactions
// being executed by hardware; they depend on the *semantics* of hardware
// transactions: optimistic execution, conflict detection at cache-line
// granularity, bounded capacity, all-or-nothing abort with full re-execution,
// and a global-lock fallback for forward progress. This package reproduces
// exactly those semantics:
//
//   - TL2-style concurrency control: a transaction snapshots the arena's
//     global version clock (rv) at begin; every Load validates that the
//     line is unlocked and no newer than rv (providing opacity — a running
//     transaction never observes an inconsistent snapshot, which is what
//     RTM's eager conflict detection guarantees); Stores are buffered;
//     commit locks the write lines, validates the read set, applies, and
//     releases at a new clock value.
//
//   - Conflicts are detected per 64-byte line, so consecutive key layout
//     produces the false conflicts the paper measures.
//
//   - Read and write sets are capped at an L1d's worth of lines, producing
//     RTM capacity aborts.
//
//   - Aborts are classified for the Figure 2/9 decomposition: a conflict on
//     a metadata-tagged line is a shared-metadata abort; a conflict on a
//     data line is a true conflict if the last committed writer touched the
//     same word(s) the aborter accessed, and a false (cache-line-sharing)
//     conflict otherwise.
//
//   - A global fallback lock provides the standard lock-elision escape
//     hatch: every transaction subscribes to the lock word, and Execute
//     retries with per-reason thresholds (the DBX/DrTM policy) before
//     acquiring the lock and running the body non-transactionally.
package htm

import (
	"fmt"

	"eunomia/internal/obs"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// AbortReason says why a transaction attempt failed.
type AbortReason uint8

// Abort reasons. The three conflict reasons correspond to the paper's
// decomposition in Figures 2 and 9.
const (
	AbortNone          AbortReason = iota
	AbortConflictTrue              // conflicting access to the same word ("same record")
	AbortConflictFalse             // same cache line, disjoint words ("different records")
	AbortConflictMeta              // conflict on a shared-metadata line
	AbortCapacity                  // read or write set exceeded L1 capacity
	AbortExplicit                  // xabort issued by the program
	AbortFallbackLock              // fallback lock held or acquired mid-flight
	NumAbortReasons
)

// String returns a short name for the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortConflictTrue:
		return "conflict-true"
	case AbortConflictFalse:
		return "conflict-false"
	case AbortConflictMeta:
		return "conflict-meta"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortFallbackLock:
		return "fallback-lock"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// IsConflict reports whether the reason is one of the three conflict kinds.
func (r AbortReason) IsConflict() bool {
	return r == AbortConflictTrue || r == AbortConflictFalse || r == AbortConflictMeta
}

// Config sets the emulated hardware limits and the opt-in device-level
// resilience features (see resilience.go).
type Config struct {
	// MaxReadLines and MaxWriteLines bound the transactional working set,
	// modeling L1d capacity (32 KB / 64 B = 512 lines).
	MaxReadLines  int
	MaxWriteLines int

	// Backend selects the execution engine (see Backend). The default,
	// BackendEmulated, is the deterministic virtual-time emulator every
	// figure uses; BackendHost disables the arena's cost model and runs
	// the same protocol at native speed on real goroutines.
	Backend Backend

	// QueuedFallback replaces the spin-CAS fallback lock with a fair
	// ticket lock (FIFO hand-off), so a fallback hog cannot starve
	// waiters. Default false keeps the paper-faithful unfair lock.
	QueuedFallback bool
	// Storm configures the per-device abort-storm detector driving
	// graceful degradation; a zero Window (the default) disables it.
	Storm StormConfig

	// Observer receives observability events (see internal/obs and
	// SetObserver). nil — the default — disables emission entirely; each
	// site then costs one nil check, and virtual-time metrics are
	// bit-identical to an un-instrumented build either way (observers
	// never tick the virtual clock).
	Observer obs.Observer
}

// DefaultConfig models the paper's Haswell-class parts.
var DefaultConfig = Config{MaxReadLines: 512, MaxWriteLines: 512}

// HTM is an emulated transactional-memory device bound to one arena.
type HTM struct {
	arena    *simmem.Arena
	cfg      Config
	fallback simmem.Addr // global elision lock word, on its own line
	// qticket/qserving implement the optional fair ticket fallback lock;
	// each lives on its own line (allocated only with QueuedFallback, so
	// the default arena layout is untouched). Separate lines matter on the
	// host backend: ticket takers CAS one word while waiters spin-load the
	// other, and co-locating them would ping-pong the waiters' line on
	// every queue join.
	qticket  simmem.Addr
	qserving simmem.Addr
	host     bool // cfg.Backend == BackendHost, cached for hot paths
	storm    *stormDetector
	fi       *FaultInjector
	obs      obs.Observer
	dev      deviceStats
}

// New creates an HTM emulator over the arena.
func New(a *simmem.Arena, cfg Config) *HTM {
	if cfg.MaxReadLines <= 0 {
		cfg.MaxReadLines = DefaultConfig.MaxReadLines
	}
	if cfg.MaxWriteLines <= 0 {
		cfg.MaxWriteLines = DefaultConfig.MaxWriteLines
	}
	boot := vclock.NewWallProc(0, 0)
	h := &HTM{
		arena:    a,
		cfg:      cfg,
		fallback: a.AllocAligned(boot, simmem.WordsPerLine, simmem.TagFallback),
		host:     cfg.Backend == BackendHost,
		storm:    newStormDetector(cfg.Storm),
		obs:      cfg.Observer,
	}
	if h.host {
		a.DisableCostModel()
	}
	if cfg.QueuedFallback {
		h.qticket = a.AllocAligned(boot, simmem.WordsPerLine, simmem.TagFallback)
		h.qserving = a.AllocAligned(boot, simmem.WordsPerLine, simmem.TagFallback)
	}
	return h
}

// Arena returns the memory the device is bound to.
func (h *HTM) Arena() *simmem.Arena { return h.arena }

// FallbackHeld reports whether the global fallback lock is currently taken
// (a diagnostic; the answer may be stale by the time it returns).
func (h *HTM) FallbackHeld() bool { return h.arena.WordRaw(h.fallback) != 0 }

type readEntry struct {
	line uint64
	mask uint8 // words of the line read by this transaction
}

type writeEntry struct {
	addr simmem.Addr
	val  uint64
}

type writeLine struct {
	line uint64
	mask uint8
}

type allocRec struct {
	addr  simmem.Addr
	words int
	tag   simmem.Tag
}

// held records one line locked during commit, with the state word to
// restore if the commit aborts.
type held struct {
	line uint64
	prev uint64
}

// Tx is one transaction attempt. A Tx is only valid inside the body passed
// to Thread.Run / Thread.Execute; it must not be retained. In fallback mode
// (after the retry policy is exhausted) the same body runs with a Tx whose
// operations go directly to memory under the global lock.
//
// All per-attempt state below (slices, hash indexes, the commit scratch
// buffer) is retained across attempts and reset in O(1), so a warmed-up
// thread executes and commits transactions without heap allocation, and
// every Load/Store is O(1) regardless of read/write-set size (see
// txindex.go).
type Tx struct {
	h      *HTM
	p      vclock.Proc
	st     *Stats
	rv     uint64
	direct bool

	rs     []readEntry
	ws     []writeEntry
	wls    []writeLine
	allocs []allocRec

	lines lineTab // line → rs/wls index (+ owned flag during commit)
	wsIdx addrTab // buffered-store address → ws index

	// lastStore{Addr,Idx} short-circuit the common store→load/store-again
	// pattern on the most recently written address without a table probe.
	// lastStoreAddr is NilAddr when no store is buffered (NilAddr is never
	// an allocated address).
	lastStoreAddr simmem.Addr
	lastStoreIdx  int32

	locked []held // commit scratch: lines locked so far this attempt

	maxRead, maxWrite int // cfg limits, cached off the pointer chase

	startCycles uint64
}

// txAbort is the panic payload used to unwind an aborted attempt.
type txAbort struct {
	reason AbortReason
	line   uint64
	code   uint8
}

// Proc returns the executing virtual thread.
func (tx *Tx) Proc() vclock.Proc { return tx.p }

// Direct reports whether the transaction is running in fallback (non-
// transactional, global-lock) mode. Bodies rarely need this; it is exposed
// for tests and diagnostics.
func (tx *Tx) Direct() bool { return tx.direct }

// abort unwinds the attempt with the given reason.
func (tx *Tx) abort(reason AbortReason, line uint64, code uint8) {
	panic(&txAbort{reason: reason, line: line, code: code})
}

// Abort issues an explicit abort (RTM xabort) carrying a user code.
func (tx *Tx) Abort(code uint8) {
	if tx.direct {
		// A fallback execution cannot abort; this mirrors RTM, where the
		// fallback path runs non-speculatively. Bodies that can reach
		// Abort must check Direct() or structure the check so the direct
		// run never needs it.
		panic("htm: Abort called in fallback mode")
	}
	tx.abort(AbortExplicit, 0, code)
}

// accessMask returns every word of the line this transaction has touched so
// far (reads and buffered writes), plus extra bits for the access that is
// currently being attempted.
func (tx *Tx) accessMask(line uint64, extra uint8) uint8 {
	m := extra
	if s := tx.lines.get(line); s != nil {
		if s.rs != noIdx {
			m |= tx.rs[s.rs].mask
		}
		if s.wls != noIdx {
			m |= tx.wls[s.wls].mask
		}
	}
	return m
}

// classifyConflict maps a conflicting line to the paper's abort taxonomy.
// accessMask is the set of words this transaction touched in the line.
func (tx *Tx) classifyConflict(line uint64, accessMask uint8) AbortReason {
	a := tx.h.arena
	switch a.TagOf(line) {
	case simmem.TagFallback:
		return AbortFallbackLock
	case simmem.TagTreeMeta, simmem.TagNodeMeta:
		return AbortConflictMeta
	}
	if a.WriteMask(line)&accessMask != 0 {
		return AbortConflictTrue
	}
	return AbortConflictFalse
}

// Load performs a transactional read of one word.
func (tx *Tx) Load(addr simmem.Addr) uint64 {
	tx.st.TxLoads++
	a := tx.h.arena
	if tx.direct {
		return a.LoadWord(tx.p, addr)
	}
	// Read-your-writes: a buffered store to this address wins (a
	// store-buffer hit, charged at hit cost). Coalescing in Store keeps at
	// most one entry per address, so the index lookup is exact.
	if addr == tx.lastStoreAddr {
		tx.p.Tick(a.Costs().Load)
		return tx.ws[tx.lastStoreIdx].val
	}
	if len(tx.ws) > 0 {
		if i := tx.wsIdx.get(addr); i != noIdx {
			tx.p.Tick(a.Costs().Load)
			return tx.ws[i].val
		}
	}
	line := addr.Line()
	bit := uint8(1) << addr.WordInLine()
	s1 := a.LineState(line)
	if simmem.StateLocked(s1) || simmem.StateVersion(s1) > tx.rv {
		tx.abort(tx.classifyConflict(line, tx.accessMask(line, bit)), line, 0)
	}
	v := a.WordRaw(addr)
	if a.LineState(line) != s1 {
		tx.abort(tx.classifyConflict(line, tx.accessMask(line, bit)), line, 0)
	}
	// Record in the read set, merging with an existing entry for the line.
	ls := tx.lines.put(line)
	if ls.rs != noIdx {
		tx.rs[ls.rs].mask |= bit
	} else {
		if len(tx.rs) >= tx.maxRead {
			tx.abort(AbortCapacity, line, 0)
		}
		ls.rs = int32(len(tx.rs))
		tx.rs = append(tx.rs, readEntry{line: line, mask: bit})
	}
	// The recheck above pinned the line's state to s1, so its version is
	// StateVersion(s1); passing it down saves ChargeAccess an atomic
	// re-load of the state word.
	a.ChargeAccessVersioned(tx.p, addr, simmem.StateVersion(s1), false)
	return v
}

// Store performs a transactional (buffered) write of one word.
func (tx *Tx) Store(addr simmem.Addr, v uint64) {
	tx.st.TxStores++
	a := tx.h.arena
	if tx.direct {
		a.StoreWordDirect(tx.p, addr, v)
		return
	}
	// Coalesce with an existing buffered store to the same address
	// (last-write-wins, and commit's apply loop sees each address once).
	if addr == tx.lastStoreAddr {
		tx.ws[tx.lastStoreIdx].val = v
		tx.p.Tick(a.Costs().Store)
		return
	}
	if len(tx.ws) > 0 {
		if i := tx.wsIdx.get(addr); i != noIdx {
			tx.ws[i].val = v
			tx.lastStoreAddr, tx.lastStoreIdx = addr, i
			tx.p.Tick(a.Costs().Store)
			return
		}
	}
	idx := int32(len(tx.ws))
	tx.ws = append(tx.ws, writeEntry{addr: addr, val: v})
	tx.wsIdx.set(addr, idx)
	tx.lastStoreAddr, tx.lastStoreIdx = addr, idx
	line := addr.Line()
	bit := uint8(1) << addr.WordInLine()
	ls := tx.lines.put(line)
	if ls.wls != noIdx {
		tx.wls[ls.wls].mask |= bit
	} else {
		if len(tx.wls) >= tx.maxWrite {
			tx.abort(AbortCapacity, line, 0)
		}
		ls.wls = int32(len(tx.wls))
		tx.wls = append(tx.wls, writeLine{line: line, mask: bit})
	}
	tx.p.Tick(a.Costs().Store)
}

// Prefetch models a burst of independent line fetches (memory-level
// parallelism): it only touches the cost model's cache state, never the
// read set, so it is safe in any mode.
func (tx *Tx) Prefetch(addrs ...simmem.Addr) {
	tx.h.arena.Prefetch(tx.p, addrs...)
}

// AllocAligned allocates arena memory from inside the transaction. If the
// attempt later aborts, the allocation is automatically returned to the
// free list (real RTM leaks or double-books allocator state on abort, a
// pathology noted by Dice et al.; we model the clean variant).
func (tx *Tx) AllocAligned(nWords int, tag simmem.Tag) simmem.Addr {
	addr := tx.h.arena.AllocAligned(tx.p, nWords, tag)
	if !tx.direct {
		tx.allocs = append(tx.allocs, allocRec{addr: addr, words: nWords, tag: tag})
	}
	return addr
}

// releaseLocked restores every line locked so far in this commit attempt.
func (tx *Tx) releaseLocked() {
	a := tx.h.arena
	for _, l := range tx.locked {
		a.RestoreLine(l.line, l.prev)
	}
}

// commit finishes a (non-direct) attempt: it locks the write lines,
// validates the read set against rv, applies the buffered stores, and
// releases the lines at a fresh clock value. On any failure it unwinds via
// abort after releasing what it locked.
//
// Complexity: O(write lines + read lines) — locking marks each owned line
// in the tx.lines index, so read-set validation checks ownership with one
// lookup instead of scanning the locked list. The locked list itself lives
// in Tx scratch state, so a warmed-up writing commit allocates nothing.
func (tx *Tx) commit() {
	a := tx.h.arena
	costs := a.Costs()
	if len(tx.ws) == 0 {
		// Read-only transactions were fully validated at read time.
		tx.p.Tick(costs.TxCommit)
		return
	}
	tx.locked = tx.locked[:0]
	for _, wl := range tx.wls {
		prev, ok := a.TryLockLine(wl.line)
		if !ok {
			tx.releaseLocked()
			tx.abort(tx.classifyConflict(wl.line, tx.accessMask(wl.line, 0)), wl.line, 0)
		}
		tx.locked = append(tx.locked, held{wl.line, prev})
		if simmem.StateVersion(prev) > tx.rv {
			// The line was committed past our snapshot. If we also read
			// it, that read is invalid; even if we only wrote it, a TL2
			// commit at version > rv could order us inconsistently, so
			// abort (hardware would have aborted on the coherence event).
			tx.releaseLocked()
			tx.abort(tx.classifyConflict(wl.line, tx.accessMask(wl.line, 0)), wl.line, 0)
		}
		// Every write line was entered into tx.lines by Store, so the
		// lookup cannot miss; the owned flag is what read-set validation
		// keys on below. It needs no explicit clearing: reset invalidates
		// the whole table by generation.
		tx.lines.get(wl.line).owned = true
	}
	tx.p.Tick(costs.CAS) // clock advance
	wv := a.AdvanceClock()
	// Validate the read set. Lines we hold were validated via prev above.
	for _, re := range tx.rs {
		if ls := tx.lines.get(re.line); ls != nil && ls.owned {
			continue
		}
		s := a.LineState(re.line)
		if simmem.StateLocked(s) || simmem.StateVersion(s) > tx.rv {
			tx.releaseLocked()
			tx.abort(tx.classifyConflict(re.line, tx.accessMask(re.line, 0)), re.line, 0)
		}
	}
	// Apply and release. Write-back charges per-line coherence costs and
	// refreshes the committer's own cached copies at the new version.
	for _, w := range tx.ws {
		a.SetWordRaw(w.addr, w.val)
	}
	for _, wl := range tx.wls {
		a.ChargeAccess(tx.p, simmem.Addr(wl.line*simmem.WordsPerLine), true)
		a.SetWriteMask(wl.line, wl.mask)
		a.UnlockLine(wl.line, wv)
		a.NoteLineWritten(tx.p, wl.line, wv)
	}
	tx.p.Tick(costs.TxCommit + costs.TxCommitPer*uint64(len(tx.wls)))
}

// reset prepares the Tx for a fresh attempt, retaining buffer and index
// capacity; every step is O(1) (the hash indexes reset by generation).
func (tx *Tx) reset(direct bool) {
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.wls = tx.wls[:0]
	tx.allocs = tx.allocs[:0]
	tx.locked = tx.locked[:0]
	tx.lines.reset()
	tx.wsIdx.reset()
	tx.lastStoreAddr = simmem.NilAddr
	tx.lastStoreIdx = noIdx
	tx.direct = direct
	tx.startCycles = tx.p.Now()
}
