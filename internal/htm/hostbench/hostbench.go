// Package hostbench holds the host-speed micro-benchmark bodies for the HTM
// emulator's hot paths: Tx.Load, Tx.Store, read-your-writes, and commit, at
// read/write-set sizes spanning the L1-capacity range the trees actually
// produce (a root-to-leaf probe is ~8 lines; a range scan or leaf split can
// touch hundreds).
//
// The bodies live in a normal (non-test) package so they can be driven two
// ways with identical code:
//
//   - `go test -bench=HostEmulator ./internal/htm/` via the thin wrappers in
//     internal/htm/bench_test.go, for -cpuprofile/-memprofile/-count work;
//   - `eunobench hostbench`, which runs them through testing.Benchmark and
//     writes a machine-readable summary (BENCH_emulator.json) so before/after
//     speedups are tracked across PRs.
//
// All cases run single-threaded on a WallProc: there are no conflicts and no
// aborts, so ns/op measures exactly the emulator's bookkeeping — the host
// overhead that, if superlinear, distorts every figure benchmark's wall
// time. Virtual-time metrics are deliberately not reported here; hostbench
// exists to measure the simulator, not the simulation.
package hostbench

import (
	"fmt"
	"testing"

	"eunomia/internal/htm"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// Sizes are the read/write-set line counts every case runs at. 512 is the
// emulated L1d capacity (DefaultConfig.MaxReadLines), the worst legal case.
var Sizes = []int{8, 64, 512}

// Case is one named micro-benchmark.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Cases returns the full HostEmulator suite.
func Cases() []Case {
	var cs []Case
	for _, n := range Sizes {
		n := n
		cs = append(cs,
			Case{fmt.Sprintf("Load/rs=%d", n), func(b *testing.B) { benchLoad(b, n) }},
			Case{fmt.Sprintf("LoadMerge/rs=%d", n), func(b *testing.B) { benchLoadMerge(b, n) }},
			Case{fmt.Sprintf("StoreCommit/ws=%d", n), func(b *testing.B) { benchStoreCommit(b, n) }},
			Case{fmt.Sprintf("ReadYourWrites/ws=%d", n), func(b *testing.B) { benchReadYourWrites(b, n) }},
			Case{fmt.Sprintf("WriteCommit/rs=%d", n), func(b *testing.B) { benchWriteCommit(b, n) }},
		)
	}
	return cs
}

// setup builds a single-threaded device with nLines line-aligned, line-sized
// allocations, so every address in the returned slice is a distinct cache
// line.
func setup(nLines int) (*htm.Thread, []simmem.Addr) {
	arena := simmem.NewArena(uint64((nLines + 16) * simmem.WordsPerLine * 2))
	// Double the default capacity caps: the fallback-lock subscription
	// occupies one read-set line, and capacity aborts are not what these
	// benchmarks measure — set-size scaling of the bookkeeping is.
	h := htm.New(arena, htm.Config{
		MaxReadLines:  2 * htm.DefaultConfig.MaxReadLines,
		MaxWriteLines: 2 * htm.DefaultConfig.MaxWriteLines,
	})
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	addrs := make([]simmem.Addr, nLines)
	for i := range addrs {
		addrs[i] = arena.AllocAligned(p, simmem.WordsPerLine, simmem.TagKeys)
	}
	return th, addrs
}

func mustCommit(b *testing.B, th *htm.Thread, body func(*htm.Tx)) {
	b.Helper()
	if ok, reason := th.Run(body); !ok {
		b.Fatalf("unexpected abort: %v", reason)
	}
}

// benchLoad: one read-only transaction reading n distinct lines. Each Load
// must consult the store buffer (empty) and merge into the read set; the
// read-only commit is O(1).
func benchLoad(b *testing.B, n int) {
	th, addrs := setup(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCommit(b, th, func(tx *htm.Tx) {
			for _, a := range addrs {
				tx.Load(a)
			}
		})
	}
	reportPerAccess(b, n)
}

// benchLoadMerge: every line is loaded twice (different words), so half the
// Loads take the merge-with-existing-read-set-entry path.
func benchLoadMerge(b *testing.B, n int) {
	th, addrs := setup(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCommit(b, th, func(tx *htm.Tx) {
			for _, a := range addrs {
				tx.Load(a)
			}
			for _, a := range addrs {
				tx.Load(a + 1)
			}
		})
	}
	reportPerAccess(b, 2*n)
}

// benchStoreCommit: one transaction buffering stores to n distinct lines,
// then a writing commit that locks, applies, and releases all n.
func benchStoreCommit(b *testing.B, n int) {
	th, addrs := setup(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCommit(b, th, func(tx *htm.Tx) {
			for j, a := range addrs {
				tx.Store(a, uint64(j))
			}
		})
	}
	reportPerAccess(b, n)
}

// benchReadYourWrites: n buffered stores followed by n Loads of the same
// addresses, all of which must be served from the store buffer.
func benchReadYourWrites(b *testing.B, n int) {
	th, addrs := setup(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCommit(b, th, func(tx *htm.Tx) {
			for j, a := range addrs {
				tx.Store(a, uint64(j))
			}
			for _, a := range addrs {
				tx.Load(a)
			}
		})
	}
	reportPerAccess(b, 2*n)
}

// benchWriteCommit: reads and writes the same n lines, so commit locks n
// write lines and validates an n-line read set against them — the case
// where a nested validation loop goes quadratic.
func benchWriteCommit(b *testing.B, n int) {
	th, addrs := setup(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCommit(b, th, func(tx *htm.Tx) {
			for _, a := range addrs {
				tx.Load(a)
			}
			for j, a := range addrs {
				tx.Store(a+1, uint64(j))
			}
		})
	}
	reportPerAccess(b, 2*n)
}

// reportPerAccess adds a ns/access metric (transaction ns/op divided by the
// number of transactional accesses) so different set sizes are comparable
// at a glance.
func reportPerAccess(b *testing.B, accesses int) {
	if b.N > 0 && accesses > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*accesses), "ns/access")
	}
}
