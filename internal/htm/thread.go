package htm

import (
	"fmt"
	"strings"

	"eunomia/internal/vclock"
)

// Stats accumulates per-thread transaction statistics. Threads own their
// Stats exclusively; harnesses merge them after a run.
type Stats struct {
	Attempts  uint64 // transaction attempts (xbegin count)
	Commits   uint64 // successful commits
	Fallbacks uint64 // executions that took the global-lock path
	Aborts    [NumAbortReasons]uint64
	// WastedCycles is virtual time spent inside attempts that aborted —
	// the paper's ">94% of CPU cycles wasted at theta=0.9" metric.
	WastedCycles uint64
	// TxLoads and TxStores count transactional memory accesses, the proxy
	// for the paper's executed-instruction comparisons.
	TxLoads  uint64
	TxStores uint64
}

// TotalAborts sums aborts across all reasons.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// ConflictAborts sums only the three conflict reasons.
func (s *Stats) ConflictAborts() uint64 {
	return s.Aborts[AbortConflictTrue] + s.Aborts[AbortConflictFalse] + s.Aborts[AbortConflictMeta]
}

// Merge adds o into s.
func (s *Stats) Merge(o *Stats) {
	s.Attempts += o.Attempts
	s.Commits += o.Commits
	s.Fallbacks += o.Fallbacks
	for i := range s.Aborts {
		s.Aborts[i] += o.Aborts[i]
	}
	s.WastedCycles += o.WastedCycles
	s.TxLoads += o.TxLoads
	s.TxStores += o.TxStores
}

// String renders a one-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d fallbacks=%d", s.Commits, s.TotalAborts(), s.Fallbacks)
	for r := AbortReason(1); r < NumAbortReasons; r++ {
		if s.Aborts[r] > 0 {
			fmt.Fprintf(&b, " %s=%d", r, s.Aborts[r])
		}
	}
	return b.String()
}

// RetryPolicy gives the per-abort-reason retry thresholds before an
// execution falls back to the global lock, mirroring the DBX policy the
// paper reuses ("we set different thresholds for different types of
// aborts").
type RetryPolicy struct {
	Conflict int // retries allowed for conflict aborts
	Capacity int // retries allowed for capacity aborts
	Explicit int // retries allowed for explicit aborts
	// LockBusy bounds retries that abort on the held fallback lock. As in
	// simple lock-elision fallbacks, an attempt that begins while the lock
	// is held aborts and immediately retries — each failure is a real
	// abort — until this threshold sends the thread to the blocking
	// acquire. This "lemming" behavior is what lets one fallback trigger
	// an abort storm across all threads under contention, a major
	// component of the paper's collapsed baseline.
	LockBusy int
}

// DefaultPolicy matches the DBX-style configuration: a small conflict-retry
// budget before taking the lock (aggressive fallback is what produces the
// serialization collapse the paper analyses).
var DefaultPolicy = RetryPolicy{Conflict: 3, Capacity: 2, Explicit: 16, LockBusy: 16}

// Thread is a per-worker handle on the HTM device. It owns a reusable Tx,
// the worker's statistics, and a deterministic RNG. A Thread must not be
// shared between goroutines.
type Thread struct {
	H     *HTM
	P     vclock.Proc
	Rand  *vclock.Rand
	Stats Stats
	tx    Tx
	// pendingAbort is set by fault injection at a non-transactional point
	// (see Thread.Fault): the next attempt aborts at begin, modeling an
	// asynchronous abort landing in the window between HTM regions.
	pendingAbort bool
}

// NewThread creates a worker handle executing on proc p.
func (h *HTM) NewThread(p vclock.Proc, seed uint64) *Thread {
	t := &Thread{H: h, P: p, Rand: vclock.NewRand(seed)}
	t.tx.h = h
	t.tx.p = p
	t.tx.st = &t.Stats
	t.tx.maxRead = h.cfg.MaxReadLines
	t.tx.maxWrite = h.cfg.MaxWriteLines
	return t
}

// Run executes body as a single transaction attempt and reports whether it
// committed, and if not, why it aborted. The body may be re-invoked by
// callers; it must be written to tolerate re-execution from the top (all
// effects inside the attempt are rolled back on abort).
func (t *Thread) Run(body func(*Tx)) (committed bool, reason AbortReason) {
	tx := &t.tx
	tx.reset(false)
	tx.rv = t.H.arena.Clock()
	t.Stats.Attempts++
	t.P.Tick(t.H.arena.Costs().TxBegin)

	reason = AbortNone
	func() {
		defer func() {
			if r := recover(); r != nil {
				ab, ok := r.(*txAbort)
				if !ok {
					panic(r)
				}
				reason = ab.reason
			}
		}()
		if t.pendingAbort {
			t.pendingAbort = false
			tx.abort(AbortExplicit, 0, faultAbortCode)
		}
		// Subscribe to the fallback lock: reading it into the read set
		// guarantees this attempt cannot commit concurrently with a
		// lock-holder (lock elision).
		if tx.Load(t.H.fallback) != 0 {
			tx.abort(AbortFallbackLock, t.H.fallback.Line(), 0)
		}
		body(tx)
		tx.commit()
	}()

	if reason == AbortNone {
		t.Stats.Commits++
		return true, AbortNone
	}
	t.Stats.Aborts[reason]++
	t.Stats.WastedCycles += t.P.Now() - tx.startCycles
	for _, al := range tx.allocs {
		t.H.arena.Free(t.P, al.addr, al.words, al.tag)
	}
	t.P.Tick(t.H.arena.Costs().TxAbort)
	return false, reason
}

// Execute runs body transactionally with retries per the policy and falls
// back to the global lock when a threshold is exceeded. The body observes
// identical semantics on both paths (in fallback mode its Tx routes
// operations directly to memory under the lock).
func (t *Thread) Execute(pol RetryPolicy, body func(*Tx)) {
	if fi := t.H.fi; fi != nil && fi.at(FaultFallback) {
		switch fi.spec.Action {
		case ActFallback:
			t.RunFallback(body)
			return
		case ActYield:
			t.P.Tick(yieldCost)
		case ActAbort:
			t.pendingAbort = true
		}
	}
	conflicts, caps, expl, busy := 0, 0, 0, 0
	if pol.LockBusy <= 0 {
		pol.LockBusy = DefaultPolicy.LockBusy
	}
	for {
		ok, reason := t.Run(body)
		if ok {
			return
		}
		switch {
		case reason == AbortFallbackLock:
			busy++
			if busy > pol.LockBusy {
				t.RunFallback(body)
				return
			}
			t.P.Tick(t.H.arena.Costs().SpinIter)
		case reason.IsConflict():
			conflicts++
			if conflicts > pol.Conflict {
				t.RunFallback(body)
				return
			}
			// DBX retries essentially immediately; a token pause avoids a
			// zero-length livelock in virtual time. (No exponential
			// backoff — its absence is part of why contended HTM trees
			// convoy and collapse, which is the behavior under study.)
			t.P.Tick(t.H.arena.Costs().SpinIter)
		case reason == AbortCapacity:
			caps++
			if caps > pol.Capacity {
				t.RunFallback(body)
				return
			}
		default: // AbortExplicit
			expl++
			if expl > pol.Explicit {
				t.RunFallback(body)
				return
			}
		}
	}
}

// RunFallback acquires the global fallback lock and executes body
// non-transactionally. All concurrent transactions abort (they subscribed
// to the lock word), so the execution is mutually exclusive with every
// transactional and fallback execution on this HTM device.
func (t *Thread) RunFallback(body func(*Tx)) {
	a := t.H.arena
	for !a.CASWordDirect(t.P, t.H.fallback, 0, 1) {
		for a.LoadWord(t.P, t.H.fallback) != 0 {
			t.P.Tick(a.Costs().SpinIter)
		}
	}
	t.Stats.Fallbacks++
	tx := &t.tx
	tx.reset(true)
	body(tx)
	a.StoreWordDirect(t.P, t.H.fallback, 0)
}
