package htm

import (
	"fmt"
	"strings"

	"eunomia/internal/obs"
	"eunomia/internal/vclock"
)

// Stats accumulates per-thread transaction statistics. Threads own their
// Stats exclusively; harnesses merge them after a run.
type Stats struct {
	Attempts  uint64 // transaction attempts (xbegin count)
	Commits   uint64 // successful commits
	Fallbacks uint64 // executions that took the global-lock path
	Aborts    [NumAbortReasons]uint64
	// WastedCycles is virtual time spent inside attempts that aborted —
	// the paper's ">94% of CPU cycles wasted at theta=0.9" metric.
	WastedCycles uint64
	// TxLoads and TxStores count transactional memory accesses, the proxy
	// for the paper's executed-instruction comparisons.
	TxLoads  uint64
	TxStores uint64
	// BackoffCycles is virtual time spent in randomized exponential
	// backoff between conflict retries (resilience layer; 0 by default).
	BackoffCycles uint64
	// DegradationEvents counts Executes this thread serialized through the
	// fallback path because the device's abort-storm detector was engaged.
	DegradationEvents uint64
	// WatchdogTrips counts Executes whose per-operation attempt budget
	// expired, forcing the guaranteed fallback.
	WatchdogTrips uint64
}

// TotalAborts sums aborts across all reasons.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// ConflictAborts sums only the three conflict reasons.
func (s *Stats) ConflictAborts() uint64 {
	return s.Aborts[AbortConflictTrue] + s.Aborts[AbortConflictFalse] + s.Aborts[AbortConflictMeta]
}

// Merge adds o into s.
func (s *Stats) Merge(o *Stats) {
	s.Attempts += o.Attempts
	s.Commits += o.Commits
	s.Fallbacks += o.Fallbacks
	for i := range s.Aborts {
		s.Aborts[i] += o.Aborts[i]
	}
	s.WastedCycles += o.WastedCycles
	s.TxLoads += o.TxLoads
	s.TxStores += o.TxStores
	s.BackoffCycles += o.BackoffCycles
	s.DegradationEvents += o.DegradationEvents
	s.WatchdogTrips += o.WatchdogTrips
}

// String renders a one-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d fallbacks=%d", s.Commits, s.TotalAborts(), s.Fallbacks)
	for r := AbortReason(1); r < NumAbortReasons; r++ {
		if s.Aborts[r] > 0 {
			fmt.Fprintf(&b, " %s=%d", r, s.Aborts[r])
		}
	}
	if s.BackoffCycles > 0 {
		fmt.Fprintf(&b, " backoff-cycles=%d", s.BackoffCycles)
	}
	if s.DegradationEvents > 0 {
		fmt.Fprintf(&b, " degraded=%d", s.DegradationEvents)
	}
	if s.WatchdogTrips > 0 {
		fmt.Fprintf(&b, " watchdog=%d", s.WatchdogTrips)
	}
	return b.String()
}

// RetryPolicy gives the per-abort-reason retry thresholds before an
// execution falls back to the global lock, mirroring the DBX policy the
// paper reuses ("we set different thresholds for different types of
// aborts").
//
// Execute normalizes the policy before use: a zero threshold means "use
// the DefaultPolicy value for this reason" (the zero value of the whole
// struct is therefore DefaultPolicy, not fall-back-on-first-abort), and
// the NoRetry sentinel requests explicitly zero retries.
type RetryPolicy struct {
	Conflict int // retries allowed for conflict aborts
	Capacity int // retries allowed for capacity aborts
	Explicit int // retries allowed for explicit aborts
	// LockBusy bounds retries that abort on the held fallback lock. As in
	// simple lock-elision fallbacks, an attempt that begins while the lock
	// is held aborts and immediately retries — each failure is a real
	// abort — until this threshold sends the thread to the blocking
	// acquire. This "lemming" behavior is what lets one fallback trigger
	// an abort storm across all threads under contention, a major
	// component of the paper's collapsed baseline.
	LockBusy int

	// The fields below are the opt-in resilience layer (see resilience.go
	// and Resilience.Apply); all zero keeps the paper-faithful behavior.

	// BackoffBase and BackoffMax enable randomized exponential backoff
	// between conflict retries: after the k-th consecutive conflict abort
	// the thread pauses a uniform random number of virtual ticks in
	// [1, min(BackoffBase<<k, BackoffMax)], drawn from the thread RNG so
	// simulated runs stay deterministic. BackoffBase 0 disables backoff.
	BackoffBase uint64
	BackoffMax  uint64
	// LemmingWait, when true, replaces the retry-into-a-held-lock
	// behavior: after an AbortFallbackLock the thread waits for the
	// fallback lock to clear before re-attempting instead of burning
	// further aborts against it.
	LemmingWait bool
	// AttemptBudget bounds the total attempts of one Execute across all
	// abort reasons; when reached, the execution is guaranteed to take
	// the fallback path (a watchdog trip), so every Execute has a bounded
	// worst case. 0 disables the watchdog.
	AttemptBudget int
}

// NoRetry is the explicit "zero retries for this reason" threshold. A
// plain zero is normalized to the DefaultPolicy value (see normalized);
// NoRetry requests an immediate fallback on the first abort of that kind.
const NoRetry = -1

// normalized resolves the zero-value footgun: each unset (zero) threshold
// takes its DefaultPolicy value, and NoRetry (or any negative threshold)
// becomes explicitly zero retries. Execute applies this to every policy.
func (p RetryPolicy) normalized() RetryPolicy {
	norm := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0
		default:
			return v
		}
	}
	p.Conflict = norm(p.Conflict, DefaultPolicy.Conflict)
	p.Capacity = norm(p.Capacity, DefaultPolicy.Capacity)
	p.Explicit = norm(p.Explicit, DefaultPolicy.Explicit)
	p.LockBusy = norm(p.LockBusy, DefaultPolicy.LockBusy)
	if p.AttemptBudget < 0 {
		p.AttemptBudget = 0
	}
	return p
}

// DefaultPolicy matches the DBX-style configuration: a small conflict-retry
// budget before taking the lock (aggressive fallback is what produces the
// serialization collapse the paper analyses).
var DefaultPolicy = RetryPolicy{Conflict: 3, Capacity: 2, Explicit: 16, LockBusy: 16}

// ResilientPolicy is DefaultPolicy with the full hardening layer applied —
// the policy eunomia.Options.Resilience and harness runs use.
func ResilientPolicy() RetryPolicy {
	return DefaultResilience().Apply(DefaultPolicy)
}

// Thread is a per-worker handle on the HTM device. It owns a reusable Tx,
// the worker's statistics, and a deterministic RNG. A Thread must not be
// shared between goroutines.
type Thread struct {
	H     *HTM
	P     vclock.Proc
	Rand  *vclock.Rand
	Stats Stats
	tx    Tx
	// pendingAbort is set by fault injection at a non-transactional point
	// (see Thread.Fault): the next attempt aborts at begin, modeling an
	// asynchronous abort landing in the window between HTM regions.
	pendingAbort bool
	// obsNode is the tree-node annotation attached to emitted abort/commit
	// events (see NoteNode); 0 when unannotated or observability is off.
	obsNode uint64
	// devFlushed is the portion of Stats already folded into the device
	// aggregates (see flushDeviceStats); sinceFlush counts the executions
	// skipped by the host backend's batched flushing.
	devFlushed Stats
	sinceFlush int
}

// NewThread creates a worker handle executing on proc p.
func (h *HTM) NewThread(p vclock.Proc, seed uint64) *Thread {
	t := &Thread{H: h, P: p, Rand: vclock.NewRand(seed)}
	t.tx.h = h
	t.tx.p = p
	t.tx.st = &t.Stats
	t.tx.maxRead = h.cfg.MaxReadLines
	t.tx.maxWrite = h.cfg.MaxWriteLines
	return t
}

// Run executes body as a single transaction attempt and reports whether it
// committed, and if not, why it aborted. The body may be re-invoked by
// callers; it must be written to tolerate re-execution from the top (all
// effects inside the attempt are rolled back on abort).
func (t *Thread) Run(body func(*Tx)) (committed bool, reason AbortReason) {
	tx := &t.tx
	tx.reset(false)
	tx.rv = t.H.arena.Clock()
	t.Stats.Attempts++
	t.P.Tick(t.H.arena.Costs().TxBegin)
	if o := t.H.obs; o != nil {
		o.Event(obs.Event{
			Kind: obs.EvTxBegin,
			Proc: int32(t.P.ID()),
			TS:   tx.startCycles,
			Node: t.obsNode,
		})
	}

	reason = AbortNone
	var abortLine uint64
	func() {
		defer func() {
			if r := recover(); r != nil {
				ab, ok := r.(*txAbort)
				if !ok {
					panic(r)
				}
				reason = ab.reason
				abortLine = ab.line
			}
		}()
		if t.pendingAbort {
			t.pendingAbort = false
			tx.abort(AbortExplicit, 0, faultAbortCode)
		}
		// Subscribe to the fallback lock: reading it into the read set
		// guarantees this attempt cannot commit concurrently with a
		// lock-holder (lock elision).
		if tx.Load(t.H.fallback) != 0 {
			tx.abort(AbortFallbackLock, t.H.fallback.Line(), 0)
		}
		body(tx)
		tx.commit()
	}()

	if reason == AbortNone {
		t.Stats.Commits++
		if o := t.H.obs; o != nil {
			now := t.P.Now()
			o.Event(obs.Event{
				Kind: obs.EvTxCommit,
				Proc: int32(t.P.ID()),
				TS:   now,
				Dur:  now - tx.startCycles,
				Node: t.obsNode,
			})
		}
		return true, AbortNone
	}
	t.Stats.Aborts[reason]++
	t.Stats.WastedCycles += t.P.Now() - tx.startCycles
	for _, al := range tx.allocs {
		t.H.arena.Free(t.P, al.addr, al.words, al.tag)
	}
	t.P.Tick(t.H.arena.Costs().TxAbort)
	if o := t.H.obs; o != nil {
		now := t.P.Now()
		var tag uint8
		if reason.IsConflict() || reason == AbortFallbackLock || reason == AbortCapacity {
			tag = uint8(t.H.arena.TagOf(abortLine))
		}
		o.Event(obs.Event{
			Kind:   obs.EvTxAbort,
			Reason: uint8(reason),
			Tag:    tag,
			Proc:   int32(t.P.ID()),
			TS:     now,
			Dur:    now - tx.startCycles,
			Line:   abortLine,
			Node:   t.obsNode,
		})
	}
	return false, reason
}

// Execute runs body transactionally with retries per the policy and falls
// back to the global lock when a threshold is exceeded. The body observes
// identical semantics on both paths (in fallback mode its Tx routes
// operations directly to memory under the lock).
//
// The policy is normalized first (zero thresholds take DefaultPolicy
// values, NoRetry means zero retries). When the device's abort-storm
// detector is engaged, the execution serializes through the fallback path
// immediately (graceful degradation); when the policy sets AttemptBudget,
// the total attempt count is bounded before the guaranteed fallback.
func (t *Thread) Execute(pol RetryPolicy, body func(*Tx)) {
	defer t.maybeFlushDeviceStats()
	if fi := t.H.fi; fi != nil && fi.at(FaultFallback) {
		switch fi.spec.Action {
		case ActFallback:
			t.RunFallback(body)
			return
		case ActYield:
			t.P.Tick(yieldCost)
		case ActAbort:
			t.pendingAbort = true
		}
	}
	pol = pol.normalized()
	if s := t.H.storm; s != nil && s.degraded.Load() {
		// Graceful degradation: a device-wide abort storm is in progress.
		// Serializing through the (queued) fallback adds no fuel, and the
		// calm sample drives the detector toward recovery.
		t.Stats.DegradationEvents++
		t.Fault(FaultStorm)
		s.note(false)
		t.RunFallback(body)
		return
	}
	conflicts, caps, expl, busy, attempts := 0, 0, 0, 0, 0
	for {
		ok, reason := t.Run(body)
		if s := t.H.storm; s != nil {
			s.note(!ok)
		}
		if ok {
			return
		}
		attempts++
		if pol.AttemptBudget > 0 && attempts >= pol.AttemptBudget {
			// Starvation watchdog: the per-operation budget is spent;
			// take the guaranteed (bounded, with the queued lock fair)
			// fallback path no matter which reasons burned it.
			t.Stats.WatchdogTrips++
			t.Fault(FaultWatchdog)
			t.RunFallback(body)
			return
		}
		switch {
		case reason == AbortFallbackLock:
			busy++
			if busy > pol.LockBusy {
				t.RunFallback(body)
				return
			}
			if pol.LemmingWait {
				// Lemming mitigation: wait for the lock holder to finish
				// instead of burning more aborts against the held lock.
				a := t.H.arena
				if t.H.host {
					hostWait(func() bool { return a.LoadWord(t.P, t.H.fallback) == 0 })
				} else {
					for a.LoadWord(t.P, t.H.fallback) != 0 {
						t.P.Tick(a.Costs().SpinIter)
					}
				}
			} else {
				t.P.Tick(t.H.arena.Costs().SpinIter)
			}
		case reason.IsConflict():
			conflicts++
			if conflicts > pol.Conflict {
				t.RunFallback(body)
				return
			}
			if pol.BackoffBase > 0 {
				t.backoff(pol, uint(conflicts-1))
			} else {
				// DBX retries essentially immediately; a token pause avoids a
				// zero-length livelock in virtual time. (No exponential
				// backoff — its absence is part of why contended HTM trees
				// convoy and collapse, which is the behavior under study.)
				t.P.Tick(t.H.arena.Costs().SpinIter)
			}
		case reason == AbortCapacity:
			caps++
			if caps > pol.Capacity {
				t.RunFallback(body)
				return
			}
		default: // AbortExplicit
			expl++
			if expl > pol.Explicit {
				t.RunFallback(body)
				return
			}
		}
	}
}

// backoff charges the k-th randomized exponential pause: a uniform draw
// from [1, min(BackoffBase<<k, BackoffMax)] virtual ticks off the thread
// RNG, so lockstep-simulated runs remain bit-for-bit reproducible. On the
// host backend the draw is realized as a real busy-wait of roughly that
// many spin units (with cooperative yields) instead of a virtual-clock
// charge — same distribution, wall-clock duration.
func (t *Thread) backoff(pol RetryPolicy, k uint) {
	if k > 32 {
		k = 32
	}
	window := pol.BackoffBase << k
	if window == 0 || (pol.BackoffMax > 0 && window > pol.BackoffMax) {
		window = pol.BackoffMax
	}
	if window == 0 {
		window = pol.BackoffBase
	}
	d := 1 + t.Rand.Uint64()%window
	t.Stats.BackoffCycles += d
	if t.H.host {
		hostPause(d)
		return
	}
	t.P.Tick(d)
}

// RunFallback acquires the global fallback lock and executes body
// non-transactionally. All concurrent transactions abort (they subscribed
// to the lock word), so the execution is mutually exclusive with every
// transactional and fallback execution on this HTM device.
//
// With Config.QueuedFallback the acquisition goes through a fair ticket
// lock (FIFO hand-off; a hog cannot starve waiters); otherwise it is the
// paper-faithful spin-CAS. The lock is released via defer, so a panicking
// body (or an injected fault) cannot wedge the device.
func (t *Thread) RunFallback(body func(*Tx)) {
	defer t.maybeFlushDeviceStats()
	a := t.H.arena
	start := t.P.Now()
	if t.H.cfg.QueuedFallback {
		t.Fault(FaultQLock)
		// Ticket acquire: AddWordDirect hands out FIFO tickets; the
		// ticket and serving words each live on their own line so queue
		// joins do not disturb transactions subscribed to the lock word
		// (nor, on the host backend, the waiters spinning on serving).
		my := a.AddWordDirect(t.P, t.H.qticket, 1) - 1
		if t.H.host {
			hostWait(func() bool { return a.LoadWord(t.P, t.H.qserving) == my })
		} else {
			for a.LoadWord(t.P, t.H.qserving) != my {
				t.P.Tick(a.Costs().SpinIter)
			}
		}
		// Exclusive by ticket order; publish the held flag transactions
		// subscribe to (the version bump aborts in-flight readers).
		a.StoreWordDirect(t.P, t.H.fallback, 1)
	} else {
		for !a.CASWordDirect(t.P, t.H.fallback, 0, 1) {
			if t.H.host {
				hostWait(func() bool { return a.LoadWord(t.P, t.H.fallback) == 0 })
			} else {
				for a.LoadWord(t.P, t.H.fallback) != 0 {
					t.P.Tick(a.Costs().SpinIter)
				}
			}
		}
	}
	t.Stats.Fallbacks++
	defer func() {
		a.StoreWordDirect(t.P, t.H.fallback, 0)
		if t.H.cfg.QueuedFallback {
			a.AddWordDirect(t.P, t.H.qserving, 1)
		}
	}()
	tx := &t.tx
	tx.reset(true)
	body(tx)
	if o := t.H.obs; o != nil {
		now := t.P.Now()
		o.Event(obs.Event{
			Kind: obs.EvFallback,
			Proc: int32(t.P.ID()),
			TS:   now,
			Dur:  now - start,
			Node: t.obsNode,
		})
	}
}
