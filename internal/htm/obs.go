package htm

import (
	"sync/atomic"

	"eunomia/internal/obs"
	"eunomia/internal/simmem"
)

// This file wires the device into the observability layer (internal/obs):
// event emission from the transaction lifecycle and the device-wide
// aggregated statistics behind DB.Metrics.
//
// Emission follows the fault-injector pattern: every site is guarded by
// one nil check on HTM.obs, so an un-instrumented device pays a single
// predictable branch. Observer callbacks never Tick the proc — attaching
// an observer cannot move a virtual-time run by a cycle.

func init() {
	obs.SetReasonNames(func(ord uint8) string { return AbortReason(ord).String() })
	obs.SetTagNames(func(ord uint8) string { return simmem.Tag(ord).String() })
}

// SetObserver installs (or, with nil, removes) the device's observer.
// Install observers before worker threads start issuing operations; the
// field itself is not synchronized, matching SetFaultInjector.
func (h *HTM) SetObserver(o obs.Observer) { h.obs = o }

// Observer returns the installed observer (nil when disabled).
func (h *HTM) Observer() obs.Observer { return h.obs }

// NoteNode annotates subsequent attempts of this thread with a tree-node
// id (the Euno two-region protocol's connection leaf), so abort events —
// and the heatmaps built from them — can attribute contention to a leaf
// rather than a raw cache line. Annotate with 0 to clear. A no-op without
// an observer.
func (t *Thread) NoteNode(id uint64) {
	if t.H.obs != nil {
		t.obsNode = id
	}
}

// NoteStitch emits a stitch-window event: the thread is between the upper
// and lower HTM regions, holding only the (leaf, seqno) connection point.
func (t *Thread) NoteStitch(node uint64) {
	if o := t.H.obs; o != nil {
		o.Event(obs.Event{
			Kind: obs.EvStitch,
			Proc: int32(t.P.ID()),
			TS:   t.P.Now(),
			Node: node,
		})
	}
}

// deviceStats aggregates Stats across every thread of the device.
// Per-thread Stats stay plain uint64s owned by their goroutine (the hot
// path); each thread folds its delta into these atomics once per Execute/
// RunFallback (batched on the host backend, see maybeFlushDeviceStats), so
// DB-wide snapshots are race-free and cheap. The per-transaction counters
// are padded to their own cache lines: on the host backend every worker
// flushes into them concurrently, and packing them would make the flush a
// coherence hotspot of exactly the kind pad.go's benchmark measures.
type deviceStats struct {
	attempts          simmem.PaddedUint64
	commits           simmem.PaddedUint64
	fallbacks         simmem.PaddedUint64
	txLoads           simmem.PaddedUint64
	txStores          simmem.PaddedUint64
	wastedCycles      simmem.PaddedUint64
	aborts            [NumAbortReasons]atomic.Uint64
	backoffCycles     atomic.Uint64
	degradationEvents atomic.Uint64
	watchdogTrips     atomic.Uint64
}

// DeviceStats snapshots the device-wide aggregated statistics: every
// thread's activity up to its last completed Execute or RunFallback.
func (h *HTM) DeviceStats() Stats {
	d := &h.dev
	s := Stats{
		Attempts:          d.attempts.Load(),
		Commits:           d.commits.Load(),
		Fallbacks:         d.fallbacks.Load(),
		WastedCycles:      d.wastedCycles.Load(),
		TxLoads:           d.txLoads.Load(),
		TxStores:          d.txStores.Load(),
		BackoffCycles:     d.backoffCycles.Load(),
		DegradationEvents: d.degradationEvents.Load(),
		WatchdogTrips:     d.watchdogTrips.Load(),
	}
	for i := range s.Aborts {
		s.Aborts[i] = d.aborts[i].Load()
	}
	return s
}

// flushDeviceStats folds the thread's per-field growth since the last
// flush into the device aggregates. Zero deltas skip the atomic entirely,
// so an idle field costs one comparison.
func (t *Thread) flushDeviceStats() {
	d := &t.H.dev
	cur, prev := &t.Stats, &t.devFlushed
	add := func(c *atomic.Uint64, now, before uint64) {
		if now != before {
			c.Add(now - before)
		}
	}
	add(&d.attempts.Uint64, cur.Attempts, prev.Attempts)
	add(&d.commits.Uint64, cur.Commits, prev.Commits)
	add(&d.fallbacks.Uint64, cur.Fallbacks, prev.Fallbacks)
	for i := range cur.Aborts {
		add(&d.aborts[i], cur.Aborts[i], prev.Aborts[i])
	}
	add(&d.wastedCycles.Uint64, cur.WastedCycles, prev.WastedCycles)
	add(&d.txLoads.Uint64, cur.TxLoads, prev.TxLoads)
	add(&d.txStores.Uint64, cur.TxStores, prev.TxStores)
	add(&d.backoffCycles, cur.BackoffCycles, prev.BackoffCycles)
	add(&d.degradationEvents, cur.DegradationEvents, prev.DegradationEvents)
	add(&d.watchdogTrips, cur.WatchdogTrips, prev.WatchdogTrips)
	t.devFlushed = *cur
}

// hostFlushEvery is how many Execute/RunFallback completions a host-backend
// thread batches before folding its stats into the device aggregates.
// Emulated mode flushes every time (the flush is free in virtual time and
// keeping it per-op preserves bit-identical figure runs); on the host a
// per-op flush of half a dozen shared atomics would itself become the
// scaling bottleneck it is meant to observe.
const hostFlushEvery = 64

func (t *Thread) maybeFlushDeviceStats() {
	if !t.H.host {
		t.flushDeviceStats()
		return
	}
	t.sinceFlush++
	if t.sinceFlush >= hostFlushEvery {
		t.sinceFlush = 0
		t.flushDeviceStats()
	}
}

// FlushStats folds any batched per-thread statistics into the device
// aggregates immediately. Host-backend harnesses call it per thread at the
// end of a run so DeviceStats reflects every completed operation; it is a
// harmless no-op when nothing is pending.
func (t *Thread) FlushStats() { t.flushDeviceStats() }
