package htm

import "eunomia/internal/simmem"

// Per-transaction hash indexes over the read set, write-line list, and
// store buffer.
//
// The rs/ws/wls slices remain the ordered source of truth (commit's apply
// loop and the capacity checks iterate them); the tables here only map a
// cache line or word address to its slice index so that every Tx.Load /
// Tx.Store / accessMask query is O(1) instead of a linear scan. Both tables
// are open-addressed with linear probing and are owned by exactly one Tx,
// which reuses them across attempts the same way it reuses rs/ws/wls:
// resetting is O(1) via a generation stamp (a slot is live only when its
// gen matches the table's), so an aborted 512-line attempt does not pay to
// clear 512 slots before retrying.
//
// Growth doubles the slot array and reinserts live entries; after the first
// few transactions warm a thread's tables to its working-set size, the
// steady state allocates nothing.

const (
	// noIdx marks "no entry" in a slot's rs/wls/store index fields.
	noIdx int32 = -1
	// minTabBits sizes a fresh table at 64 slots.
	minTabBits = 6
	// hashMult is Fibonacci-hashing's 64-bit golden-ratio multiplier.
	hashMult = 0x9e3779b97f4a7c15
)

// lineSlot is one line's index entry: where the line sits in tx.rs and
// tx.wls (noIdx if absent), and whether commit currently holds its lock
// ("owned", valid only during a commit attempt).
type lineSlot struct {
	line  uint64
	gen   uint32
	owned bool
	rs    int32
	wls   int32
}

// lineTab indexes tx.rs and tx.wls by cache line.
type lineTab struct {
	slots []lineSlot
	shift uint
	gen   uint32
	used  int
}

// reset invalidates every entry in O(1) by advancing the generation.
func (t *lineTab) reset() {
	t.gen++
	t.used = 0
	if t.gen == 0 { // generation counter wrapped: flush stale stamps once
		for i := range t.slots {
			t.slots[i].gen = 0
		}
		t.gen = 1
	}
}

// get returns the live slot for line, or nil.
func (t *lineTab) get(line uint64) *lineSlot {
	if len(t.slots) == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := (line * hashMult) >> t.shift; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			return nil
		}
		if s.line == line {
			return s
		}
	}
}

// put returns the live slot for line, inserting an empty one (rs = wls =
// noIdx) if absent.
func (t *lineTab) put(line uint64) *lineSlot {
	if len(t.slots) == 0 {
		t.slots = make([]lineSlot, 1<<minTabBits)
		t.shift = 64 - minTabBits
		if t.gen == 0 {
			t.gen = 1
		}
	} else if t.used*2 >= len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := (line * hashMult) >> t.shift; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			*s = lineSlot{line: line, gen: t.gen, rs: noIdx, wls: noIdx}
			t.used++
			return s
		}
		if s.line == line {
			return s
		}
	}
}

// grow doubles the table, reinserting live entries.
func (t *lineTab) grow() {
	old := t.slots
	bits := 64 - t.shift + 1
	t.slots = make([]lineSlot, 1<<bits)
	t.shift = 64 - bits
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		s := old[i]
		if s.gen != t.gen {
			continue
		}
		for j := (s.line * hashMult) >> t.shift; ; j = (j + 1) & mask {
			if t.slots[j].gen != t.gen {
				t.slots[j] = s
				break
			}
		}
	}
}

// addrSlot maps one word address to its index in tx.ws.
type addrSlot struct {
	addr simmem.Addr
	gen  uint32
	idx  int32
}

// addrTab indexes the store buffer (tx.ws) by address, giving O(1)
// read-your-writes and store coalescing.
type addrTab struct {
	slots []addrSlot
	shift uint
	gen   uint32
	used  int
}

// reset invalidates every entry in O(1) by advancing the generation.
func (t *addrTab) reset() {
	t.gen++
	t.used = 0
	if t.gen == 0 {
		for i := range t.slots {
			t.slots[i].gen = 0
		}
		t.gen = 1
	}
}

// get returns the ws index for addr, or noIdx.
func (t *addrTab) get(addr simmem.Addr) int32 {
	if len(t.slots) == 0 {
		return noIdx
	}
	mask := uint64(len(t.slots) - 1)
	for i := (uint64(addr) * hashMult) >> t.shift; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			return noIdx
		}
		if s.addr == addr {
			return s.idx
		}
	}
}

// set records addr → idx; addr must not already be present (stores to a
// buffered address coalesce in place and never re-insert).
func (t *addrTab) set(addr simmem.Addr, idx int32) {
	if len(t.slots) == 0 {
		t.slots = make([]addrSlot, 1<<minTabBits)
		t.shift = 64 - minTabBits
		if t.gen == 0 {
			t.gen = 1
		}
	} else if t.used*2 >= len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := (uint64(addr) * hashMult) >> t.shift; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			*s = addrSlot{addr: addr, gen: t.gen, idx: idx}
			t.used++
			return
		}
	}
}

// grow doubles the table, reinserting live entries.
func (t *addrTab) grow() {
	old := t.slots
	bits := 64 - t.shift + 1
	t.slots = make([]addrSlot, 1<<bits)
	t.shift = 64 - bits
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		s := old[i]
		if s.gen != t.gen {
			continue
		}
		for j := (uint64(s.addr) * hashMult) >> t.shift; ; j = (j + 1) & mask {
			if t.slots[j].gen != t.gen {
				t.slots[j] = s
				break
			}
		}
	}
}
