package htm

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"eunomia/internal/vclock"
)

// FaultPoint names an instrumented location in a tree's concurrency
// protocol. Trees call Thread.Fault / Tx.Fault at these points; with no
// injector installed the calls are near-free no-ops, so the hooks stay in
// production code paths.
type FaultPoint uint8

// The named points. They cover the windows where split-HTM-region protocols
// concentrate their bugs: the stitch between the upper and lower regions,
// structural modification mid-flight, CCM bookkeeping done outside any
// transaction, and the fallback path itself.
const (
	FaultNone FaultPoint = iota
	// FaultStitch fires in the non-transactional window between a
	// split-region operation's upper region (descend + seqno sample) and
	// its lower region (leaf operation). Anything the protocol survives
	// here — splits, compactions, deletes by other threads — it survives
	// only by virtue of seqno re-validation.
	FaultStitch
	// FaultMidSplit fires inside a structural modification, immediately
	// before a leaf split rewrites the tree (still inside the transaction,
	// so an abort here discards a half-done split).
	FaultMidSplit
	// FaultCCM fires around conflict-control-module updates: advisory
	// lock-bit acquisition and counting-mark increments/decrements, which
	// run outside the HTM regions.
	FaultCCM
	// FaultFallback fires at Thread.Execute entry and can force the
	// execution straight onto the global-lock fallback path.
	FaultFallback
	// FaultStorm fires when the abort-storm detector redirects an Execute
	// onto the serialized degradation path (resilience layer).
	FaultStorm
	// FaultWatchdog fires when an Execute's per-operation attempt budget
	// expires and the starvation watchdog forces the fallback.
	FaultWatchdog
	// FaultQLock fires at each queued (ticket) fallback-lock acquisition,
	// before the ticket is taken.
	FaultQLock
	// FaultCombine fires in the CCM v2 combining windows: after a
	// publisher fills its publication slot (before the request becomes
	// visible) and at combiner drain entry — the gaps where elimination
	// and batch execution race against normal-path operations.
	FaultCombine
	NumFaultPoints
)

// String returns the spec-syntax name of the point.
func (p FaultPoint) String() string {
	switch p {
	case FaultNone:
		return "none"
	case FaultStitch:
		return "stitch"
	case FaultMidSplit:
		return "midsplit"
	case FaultCCM:
		return "ccm"
	case FaultFallback:
		return "fallback"
	case FaultStorm:
		return "storm"
	case FaultWatchdog:
		return "watchdog"
	case FaultQLock:
		return "qlock"
	case FaultCombine:
		return "combine"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// FaultAction is what happens when an armed point fires.
type FaultAction uint8

const (
	// ActYield charges a large virtual-time tick, handing the lockstep
	// schedule to every other virtual core before this one proceeds — it
	// stretches the window at the point so concurrent structural changes
	// land inside it.
	ActYield FaultAction = iota
	// ActAbort aborts the transaction attempt. At a transactional point it
	// is an explicit abort of the running attempt; at a non-transactional
	// point (stitch, CCM) it poisons the thread so its next attempt aborts
	// at begin. In fallback (direct) mode it is a no-op, mirroring RTM,
	// where the non-speculative path cannot abort.
	ActAbort
	// ActFallback forces the next Thread.Execute to skip the transactional
	// attempts entirely and take the global lock. Only honored at
	// FaultFallback.
	ActFallback
)

// String returns the spec-syntax name of the action.
func (a FaultAction) String() string {
	switch a {
	case ActYield:
		return "yield"
	case ActAbort:
		return "abort"
	case ActFallback:
		return "fallback"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// FaultSpec arms one point with one action. The zero value is "none" (never
// fires, but visit counters still run when an injector is installed).
type FaultSpec struct {
	Point  FaultPoint
	Action FaultAction
	// Nth fires the action on every Nth visit to the point (1 = every
	// visit). 0 is normalized to 1.
	Nth uint64
}

// String renders the spec in the parseable "point:action:nth" syntax used
// by repro lines.
func (s FaultSpec) String() string {
	if s.Point == FaultNone {
		return "none"
	}
	n := s.Nth
	if n == 0 {
		n = 1
	}
	return fmt.Sprintf("%s:%s:%d", s.Point, s.Action, n)
}

// ParseFaultSpec parses "none" or "point:action:nth" (nth optional).
func ParseFaultSpec(text string) (FaultSpec, error) {
	if text == "" || text == "none" {
		return FaultSpec{}, nil
	}
	parts := strings.Split(text, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return FaultSpec{}, fmt.Errorf("htm: fault spec %q: want point:action[:nth]", text)
	}
	var s FaultSpec
	switch parts[0] {
	case "stitch":
		s.Point = FaultStitch
	case "midsplit":
		s.Point = FaultMidSplit
	case "ccm":
		s.Point = FaultCCM
	case "fallback":
		s.Point = FaultFallback
	case "storm":
		s.Point = FaultStorm
	case "watchdog":
		s.Point = FaultWatchdog
	case "qlock":
		s.Point = FaultQLock
	case "combine":
		s.Point = FaultCombine
	default:
		return FaultSpec{}, fmt.Errorf("htm: unknown fault point %q", parts[0])
	}
	switch parts[1] {
	case "yield":
		s.Action = ActYield
	case "abort":
		s.Action = ActAbort
	case "fallback":
		s.Action = ActFallback
	default:
		return FaultSpec{}, fmt.Errorf("htm: unknown fault action %q", parts[1])
	}
	s.Nth = 1
	if len(parts) == 3 {
		n, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil || n == 0 {
			return FaultSpec{}, fmt.Errorf("htm: bad fault nth %q", parts[2])
		}
		s.Nth = n
	}
	return s, nil
}

// yieldCost is the virtual-time charge of ActYield: far larger than any
// slack or single-operation cost, so every other runnable core executes
// past the yielding one before it resumes.
const yieldCost = 200_000

// FaultInjector arms a device with one FaultSpec and counts, per point, how
// often the point was visited and how often the action fired. Counters are
// mutex-guarded: under the lockstep simulator only one goroutine runs at a
// time, so counts (and therefore firing decisions) are fully deterministic;
// under wall-clock runs they are merely atomic.
type FaultInjector struct {
	mu     sync.Mutex
	spec   FaultSpec
	visits [NumFaultPoints]uint64
	hits   [NumFaultPoints]uint64
}

// NewFaultInjector arms spec (normalizing Nth=0 to 1).
func NewFaultInjector(spec FaultSpec) *FaultInjector {
	if spec.Nth == 0 {
		spec.Nth = 1
	}
	return &FaultInjector{spec: spec}
}

// Spec returns the armed spec.
func (fi *FaultInjector) Spec() FaultSpec { return fi.spec }

// Visits returns how many times point was reached.
func (fi *FaultInjector) Visits(p FaultPoint) uint64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.visits[p]
}

// Hits returns how many times the armed action fired at point.
func (fi *FaultInjector) Hits(p FaultPoint) uint64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.hits[p]
}

// at counts a visit to p and reports whether the armed action fires.
func (fi *FaultInjector) at(p FaultPoint) bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.visits[p]++
	if fi.spec.Point != p {
		return false
	}
	if fi.visits[p]%fi.spec.Nth != 0 {
		return false
	}
	fi.hits[p]++
	return true
}

// SetFaultInjector installs (or, with nil, removes) the device's injector.
// Install before starting workers; the field is read without synchronization
// on every instrumented point.
func (h *HTM) SetFaultInjector(fi *FaultInjector) { h.fi = fi }

// Injector returns the installed injector, or nil.
func (h *HTM) Injector() *FaultInjector { return h.fi }

// Fault marks a transactional fault point. Inside an attempt, ActAbort
// unwinds it as an explicit abort; in direct (fallback) mode the abort is
// skipped. ActYield stretches the schedule window in either mode.
func (tx *Tx) Fault(p FaultPoint) {
	fi := tx.h.fi
	if fi == nil || !fi.at(p) {
		return
	}
	switch fi.spec.Action {
	case ActYield:
		tx.p.Tick(yieldCost)
	case ActAbort:
		if !tx.direct {
			tx.abort(AbortExplicit, 0, faultAbortCode)
		}
	}
}

// Fault marks a non-transactional fault point (between HTM regions, around
// CCM updates). ActYield stretches the window; ActAbort poisons the thread
// so its next transactional attempt aborts at begin — the emulator's
// analogue of an asynchronous event (interrupt, capacity eviction) landing
// in the gap and killing the upcoming transaction.
func (t *Thread) Fault(p FaultPoint) {
	fi := t.H.fi
	if fi == nil || !fi.at(p) {
		return
	}
	switch fi.spec.Action {
	case ActYield:
		t.P.Tick(yieldCost)
	case ActAbort:
		t.pendingAbort = true
	}
}

// FaultProc marks a fault point for code running outside any Thread or Tx
// (e.g. a lock-based tree's direct-mode structural modification). Only
// ActYield can fire here — there is no transaction to abort and no Execute
// to redirect — but visits are still counted.
func (h *HTM) FaultProc(p vclock.Proc, pt FaultPoint) {
	fi := h.fi
	if fi == nil || !fi.at(pt) {
		return
	}
	if fi.spec.Action == ActYield {
		p.Tick(yieldCost)
	}
}

// faultAbortCode is the xabort code carried by injected explicit aborts.
const faultAbortCode = 0xFA
