package htm

// Adversarial tests for the O(1) per-Tx indexes (txindex.go): they drive
// the hash tables through growth, coalescing, capacity edges, and
// cross-attempt reuse, checking against brute-force references computed
// independently of the indexed paths.

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// TestReadYourWritesManyStores buffers stores to far more than 64 distinct
// addresses (forcing both index tables through several growth doublings),
// interleaved with repeated stores to the same addresses, and checks that
// every read-your-writes Load returns the latest buffered value and that
// commit applies last-write-wins.
func TestReadYourWritesManyStores(t *testing.T) {
	const nLines = 100 // 800 words: > 64 distinct addresses per pass
	h, a := newDevice(1 << 16)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, nLines*simmem.WordsPerLine, simmem.TagKeys)

	want := make(map[simmem.Addr]uint64)
	ok, reason := th.Run(func(tx *Tx) {
		// Three passes over every word of every line, each overwriting the
		// previous value; between passes, spot-check reads.
		for pass := uint64(1); pass <= 3; pass++ {
			for w := 0; w < nLines*simmem.WordsPerLine; w++ {
				addr := base + simmem.Addr(w)
				v := pass*10_000 + uint64(w)
				tx.Store(addr, v)
				want[addr] = v
			}
			for w := 0; w < nLines*simmem.WordsPerLine; w += 7 {
				addr := base + simmem.Addr(w)
				if got := tx.Load(addr); got != want[addr] {
					t.Fatalf("pass %d: Load(%d) = %d, want %d", pass, addr, got, want[addr])
				}
			}
		}
		// The store buffer must have coalesced: one entry per address.
		if len(tx.ws) != nLines*simmem.WordsPerLine {
			t.Fatalf("store buffer has %d entries, want %d (coalescing broken)",
				len(tx.ws), nLines*simmem.WordsPerLine)
		}
	})
	if !ok {
		t.Fatalf("commit failed: %v", reason)
	}
	for addr, v := range want {
		if got := a.WordRaw(addr); got != v {
			t.Fatalf("after commit word %d = %d, want %d", addr, got, v)
		}
	}
}

// TestStoreBufferIndexResetAcrossAttempts aborts an attempt with a large
// store buffer, then checks that the next attempt does not serve stale
// read-your-writes hits from the previous attempt's index.
func TestStoreBufferIndexResetAcrossAttempts(t *testing.T) {
	h, a := newDevice(1 << 16)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 80*simmem.WordsPerLine, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		for i := 0; i < 80; i++ {
			tx.Store(x+simmem.Addr(i*simmem.WordsPerLine), 99)
		}
		tx.Abort(1)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("expected explicit abort, got ok=%v reason=%v", ok, reason)
	}
	ok, reason = th.Run(func(tx *Tx) {
		for i := 0; i < 80; i++ {
			if got := tx.Load(x + simmem.Addr(i*simmem.WordsPerLine)); got != 0 {
				t.Fatalf("stale store-buffer hit after abort: word %d = %d", i, got)
			}
		}
	})
	if !ok {
		t.Fatalf("second attempt failed: %v", reason)
	}
}

// TestReadSetCapacityExact checks the capacity abort fires exactly when the
// read set would exceed MaxReadLines — and that re-reading lines already in
// the read set never counts against capacity.
func TestReadSetCapacityExact(t *testing.T) {
	const maxLines = 8
	a := simmem.NewArena(1 << 14)
	h := New(a, Config{MaxReadLines: maxLines, MaxWriteLines: maxLines})
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, (maxLines+2)*simmem.WordsPerLine, simmem.TagKeys)

	// The fallback-lock subscription in Run occupies one read-set line, so
	// the body may read maxLines-1 distinct new lines.
	ok, reason := th.Run(func(tx *Tx) {
		for i := 0; i < maxLines-1; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
		if len(tx.rs) != maxLines {
			t.Fatalf("read set has %d lines, want %d", len(tx.rs), maxLines)
		}
		// Re-reading every line (other words included) must not abort.
		for i := 0; i < maxLines-1; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine+3))
		}
		if len(tx.rs) != maxLines {
			t.Fatalf("re-reads grew the read set to %d lines", len(tx.rs))
		}
	})
	if !ok {
		t.Fatalf("at-capacity transaction aborted: %v", reason)
	}

	// One more distinct line is one too many.
	ok, reason = th.Run(func(tx *Tx) {
		for i := 0; i < maxLines; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("expected capacity abort, got ok=%v reason=%v", ok, reason)
	}
	if th.Stats.Aborts[AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want 1", th.Stats.Aborts[AbortCapacity])
	}
}

// TestWriteSetCapacityExact is the write-line analogue.
func TestWriteSetCapacityExact(t *testing.T) {
	const maxLines = 8
	a := simmem.NewArena(1 << 14)
	h := New(a, Config{MaxReadLines: 64, MaxWriteLines: maxLines})
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, (maxLines+2)*simmem.WordsPerLine, simmem.TagKeys)

	ok, reason := th.Run(func(tx *Tx) {
		for i := 0; i < maxLines; i++ {
			tx.Store(base+simmem.Addr(i*simmem.WordsPerLine), 1)
		}
		// Additional stores to buffered lines (same or different word) are
		// free: they coalesce or merge into existing write lines.
		for i := 0; i < maxLines; i++ {
			tx.Store(base+simmem.Addr(i*simmem.WordsPerLine+5), 2)
		}
		if len(tx.wls) != maxLines {
			t.Fatalf("write-line list has %d lines, want %d", len(tx.wls), maxLines)
		}
	})
	if !ok {
		t.Fatalf("at-capacity transaction aborted: %v", reason)
	}

	ok, reason = th.Run(func(tx *Tx) {
		for i := 0; i <= maxLines; i++ {
			tx.Store(base+simmem.Addr(i*simmem.WordsPerLine), 1)
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("expected capacity abort, got ok=%v reason=%v", ok, reason)
	}
}

// TestAccessMaskBruteForce drives a pseudo-random mix of Loads and Stores
// and checks accessMask for every line (touched and untouched) against a
// reference mask map maintained independently of the indexes.
func TestAccessMaskBruteForce(t *testing.T) {
	const nLines = 50
	h, a := newDevice(1 << 16)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, nLines*simmem.WordsPerLine, simmem.TagKeys)
	rng := vclock.NewRand(7)

	ok, reason := th.Run(func(tx *Tx) {
		ref := make(map[uint64]uint8) // line → words touched by the body
		for op := 0; op < 2000; op++ {
			l := int(rng.Uint64() % nLines)
			w := uint(rng.Uint64() % simmem.WordsPerLine)
			addr := base + simmem.Addr(l*simmem.WordsPerLine) + simmem.Addr(w)
			if rng.Uint64()%2 == 0 {
				tx.Load(addr)
			} else {
				tx.Store(addr, uint64(op))
			}
			ref[addr.Line()] |= 1 << w
		}
		// Note: the reference is per-word-touched; a Load served from the
		// store buffer still touched that word from the body's view, and
		// must not add read-set bits beyond what Store already recorded —
		// both maps agree because Store records the word in the write line.
		for l := uint64(0); l < nLines; l++ {
			line := (base + simmem.Addr(l*simmem.WordsPerLine)).Line()
			want := ref[line]
			if got := tx.accessMask(line, 0); got != want {
				t.Fatalf("accessMask(line %d) = %08b, want %08b", line, got, want)
			}
			if got := tx.accessMask(line, 0b1010); got != want|0b1010 {
				t.Fatalf("accessMask(line %d, extra) = %08b, want %08b", line, got, want|0b1010)
			}
		}
		// An untouched line reports only the extra bits.
		untouched := (base + simmem.Addr(nLines*simmem.WordsPerLine)).Line() + 5
		if got := tx.accessMask(untouched, 0b1); got != 0b1 {
			t.Fatalf("accessMask(untouched) = %08b, want 1", got)
		}
	})
	if !ok {
		t.Fatalf("commit failed: %v", reason)
	}
}

// TestWritingCommitZeroAlloc verifies the whole Run/Store/commit cycle is
// allocation-free once the per-Tx buffers and indexes are warm — the
// invariant that keeps host benchmark time proportional to emulated work.
func TestWritingCommitZeroAlloc(t *testing.T) {
	h, a := newDevice(1 << 16)
	p := vclock.NewWallProc(0, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 64*simmem.WordsPerLine, simmem.TagKeys)

	body := func(tx *Tx) {
		for i := 0; i < 32; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
		for i := 0; i < 32; i++ {
			tx.Store(base+simmem.Addr(i*simmem.WordsPerLine+1), uint64(i))
		}
	}
	// Warm up buffers, index tables, and the commit scratch list.
	for i := 0; i < 3; i++ {
		if ok, reason := th.Run(body); !ok {
			t.Fatalf("warm-up abort: %v", reason)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := th.Run(body); !ok {
			t.Fatal("abort during measured run")
		}
	})
	if allocs != 0 {
		t.Fatalf("writing commit allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}
