package htm

import (
	"testing"

	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// alwaysAbortBody explicitly aborts every transactional attempt but runs to
// completion on the fallback path, where Abort is unavailable by design.
func alwaysAbortBody(dst simmem.Addr) func(*Tx) {
	return func(tx *Tx) {
		if !tx.Direct() {
			tx.Abort(0x51)
		}
		tx.Store(dst, tx.Load(dst)+1)
	}
}

// TestZeroValuePolicyIsDefault: the zero RetryPolicy must behave exactly
// like DefaultPolicy, not "fall back on the first abort" — the footgun was
// that a forgotten policy silently serialized every contended execution.
func TestZeroValuePolicyIsDefault(t *testing.T) {
	if got := (RetryPolicy{}).normalized(); got != DefaultPolicy {
		t.Fatalf("zero policy normalized to %+v, want DefaultPolicy %+v", got, DefaultPolicy)
	}
	// Behavioral check: a capacity-overflowing body under the zero policy
	// must retry DefaultPolicy.Capacity times before the fallback.
	a := simmem.NewArena(1 << 16)
	h := New(a, Config{MaxReadLines: 4, MaxWriteLines: 64})
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 16*simmem.WordsPerLine, simmem.TagKeys)
	th.Execute(RetryPolicy{}, func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
	})
	if want := uint64(DefaultPolicy.Capacity) + 1; th.Stats.Aborts[AbortCapacity] != want {
		t.Fatalf("capacity aborts = %d, want %d (zero policy must retry like DefaultPolicy)",
			th.Stats.Aborts[AbortCapacity], want)
	}
	if th.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", th.Stats.Fallbacks)
	}
}

// TestNoRetrySentinel: NoRetry requests explicitly zero retries for a
// reason, i.e. fall back on that reason's first abort.
func TestNoRetrySentinel(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, Config{MaxReadLines: 4, MaxWriteLines: 64})
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	base := a.AllocAligned(p, 16*simmem.WordsPerLine, simmem.TagKeys)
	th.Execute(RetryPolicy{Capacity: NoRetry}, func(tx *Tx) {
		for i := 0; i < 8; i++ {
			tx.Load(base + simmem.Addr(i*simmem.WordsPerLine))
		}
	})
	if th.Stats.Aborts[AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want 1 (NoRetry means first abort falls back)",
			th.Stats.Aborts[AbortCapacity])
	}
	if th.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", th.Stats.Fallbacks)
	}
}

// TestDefaultPathDrawsNoRandomness: the paper-faithful DefaultPolicy must
// never touch the thread RNG (backoff is the only consumer), so enabling
// the resilience *code* cannot perturb the bit-identical default figures.
func TestDefaultPathDrawsNoRandomness(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	h := New(a, DefaultConfig)
	p := vclock.NewWallProc(1, 0)
	const seed = 99
	th := h.NewThread(p, seed)
	x := a.AllocAligned(p, 8, simmem.TagKeys)
	for i := 0; i < 50; i++ {
		th.Execute(DefaultPolicy, func(tx *Tx) { tx.Store(x, tx.Load(x)+1) })
	}
	if got, want := th.Rand.Uint64(), vclock.NewRand(seed).Uint64(); got != want {
		t.Fatalf("default-path Execute consumed RNG draws: next=%d, fresh=%d", got, want)
	}
}

// TestBackoffDeterminism: two identical contended simulations under the
// resilient policy must produce bit-identical virtual clocks and backoff
// accounting — the randomized pauses come from the deterministic thread RNG.
func TestBackoffDeterminism(t *testing.T) {
	run := func() (makespan, backoff, commits uint64) {
		a := simmem.NewArena(1 << 16)
		h := New(a, DefaultConfig)
		boot := vclock.NewWallProc(0, 0)
		x := a.AllocAligned(boot, 8, simmem.TagKeys)
		pol := ResilientPolicy()
		sim := vclock.NewSim(8, 0)
		stats := make([]Stats, 8)
		sim.Run(func(p *vclock.SimProc) {
			th := h.NewThread(p, uint64(p.ID())*31+7)
			for i := 0; i < 200; i++ {
				th.Execute(pol, func(tx *Tx) { tx.Store(x, tx.Load(x)+1) })
			}
			stats[p.ID()] = th.Stats
		})
		var m Stats
		for i := range stats {
			m.Merge(&stats[i])
		}
		return sim.MaxClock(), m.BackoffCycles, m.Commits
	}
	m1, b1, c1 := run()
	m2, b2, c2 := run()
	if m1 != m2 || b1 != b2 || c1 != c2 {
		t.Fatalf("resilient runs diverged: makespan %d vs %d, backoff %d vs %d, commits %d vs %d",
			m1, m2, b1, b2, c1, c2)
	}
	if b1 == 0 {
		t.Fatal("contended resilient run recorded no backoff cycles")
	}
}

// TestWatchdogBudget: an execution whose aborts never trip a per-reason
// threshold must still be bounded by AttemptBudget and complete on the
// guaranteed fallback path — the no-starvation property.
func TestWatchdogBudget(t *testing.T) {
	a := simmem.NewArena(1 << 14)
	h := New(a, DefaultConfig)
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)

	const budget = 5
	// Explicit threshold (16) is far above the budget, so only the watchdog
	// can end this execution.
	th.Execute(RetryPolicy{AttemptBudget: budget}, alwaysAbortBody(x))
	if th.Stats.WatchdogTrips != 1 {
		t.Fatalf("watchdog trips = %d, want 1 (%s)", th.Stats.WatchdogTrips, th.Stats.String())
	}
	if th.Stats.Attempts != budget {
		t.Fatalf("attempts = %d, want exactly the budget %d", th.Stats.Attempts, budget)
	}
	if th.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", th.Stats.Fallbacks)
	}
	if got := a.LoadWord(p, x); got != 1 {
		t.Fatalf("effect applied %d times, want exactly once", got)
	}
	if h.FallbackHeld() {
		t.Fatal("fallback lock leaked")
	}
}

// TestLemmingWaitReducesLockAborts: with a hog on the fallback lock, the
// default policy burns an AbortFallbackLock per retry (the lemming storm);
// LemmingWait must complete the same schedule with strictly fewer of them.
func TestLemmingWaitReducesLockAborts(t *testing.T) {
	run := func(pol RetryPolicy) uint64 {
		a := simmem.NewArena(1 << 16)
		h := New(a, DefaultConfig)
		boot := vclock.NewWallProc(0, 0)
		x := a.AllocAligned(boot, 8, simmem.TagKeys)
		y := a.AllocAligned(boot, 8, simmem.TagKeys)
		sim := vclock.NewSim(4, 0)
		stats := make([]Stats, 4)
		sim.Run(func(p *vclock.SimProc) {
			th := h.NewThread(p, uint64(p.ID())+1)
			if p.ID() == 0 {
				for i := 0; i < 30; i++ {
					th.RunFallback(func(tx *Tx) {
						tx.Store(y, tx.Load(y)+1)
						tx.Proc().Tick(5_000) // sit on the lock
					})
				}
			} else {
				for i := 0; i < 100; i++ {
					th.Execute(pol, func(tx *Tx) { tx.Store(x, tx.Load(x)+1) })
				}
			}
			stats[p.ID()] = th.Stats
		})
		var m Stats
		for i := range stats {
			m.Merge(&stats[i])
		}
		if got := a.LoadWord(boot, x); got != 300 {
			t.Fatalf("lost updates: count = %d, want 300", got)
		}
		return m.Aborts[AbortFallbackLock]
	}
	lemming := DefaultPolicy
	lemming.LemmingWait = true
	fragileAborts := run(DefaultPolicy)
	lemmingAborts := run(lemming)
	if fragileAborts == 0 {
		t.Fatal("hog produced no fallback-lock aborts under the fragile policy")
	}
	if lemmingAborts >= fragileAborts {
		t.Fatalf("LemmingWait did not reduce lock aborts: %d vs fragile %d", lemmingAborts, fragileAborts)
	}
}

// TestStormDetectorHysteresis unit-tests the sliding-window engage /
// cooldown / recover cycle.
func TestStormDetectorHysteresis(t *testing.T) {
	d := newStormDetector(StormConfig{Window: 10, Threshold: 0.5, CooldownWindows: 2})
	feed := func(n int, aborted bool) {
		for i := 0; i < n; i++ {
			d.note(aborted)
		}
	}
	feed(10, true) // one all-abort window
	if !d.degraded.Load() || d.events.Load() != 1 {
		t.Fatalf("detector did not engage: degraded=%v events=%d", d.degraded.Load(), d.events.Load())
	}
	feed(10, false) // first calm window: still cooling down
	if !d.degraded.Load() {
		t.Fatal("detector recovered before CooldownWindows calm windows")
	}
	feed(10, false) // second calm window: recover
	if d.degraded.Load() {
		t.Fatal("detector failed to recover after cooldown")
	}
	feed(10, true) // storms re-engage
	if !d.degraded.Load() || d.events.Load() != 2 {
		t.Fatalf("detector did not re-engage: degraded=%v events=%d", d.degraded.Load(), d.events.Load())
	}
	// A mixed window below threshold while healthy must not engage.
	feed(4, true)
	feed(6, false)
	if d.events.Load() != 2 {
		t.Fatal("sub-threshold window engaged degradation")
	}
	if newStormDetector(StormConfig{}) != nil {
		t.Fatal("zero StormConfig must disable the detector")
	}
}

// TestStormDegradationEndToEnd: a device-wide abort storm must flip the
// detector, serialize subsequent Executes through the fallback (counted as
// DegradationEvents), and recover once the diet turns calm — with every
// operation's effect still applied exactly once.
func TestStormDegradationEndToEnd(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	cfg := DefaultConfig
	cfg.Storm = StormConfig{Window: 16, Threshold: 0.5, CooldownWindows: 1}
	h := New(a, cfg)
	p := vclock.NewWallProc(1, 0)
	th := h.NewThread(p, 1)
	x := a.AllocAligned(p, 8, simmem.TagKeys)
	y := a.AllocAligned(p, 8, simmem.TagKeys)

	// Storm phase: every attempt aborts, so each Execute feeds the window
	// 17 abort samples (Explicit threshold 16) before its fallback.
	const stormOps = 4
	for i := 0; i < stormOps; i++ {
		th.Execute(DefaultPolicy, alwaysAbortBody(x))
	}
	if !h.Degraded() {
		t.Fatalf("detector not engaged after %d all-abort executions (events=%d)", stormOps, h.StormEvents())
	}
	if h.StormEvents() == 0 {
		t.Fatal("no storm events recorded")
	}

	// Degraded phase: even a benign body serializes through the fallback.
	before := th.Stats.Fallbacks
	th.Execute(DefaultPolicy, func(tx *Tx) { tx.Store(y, tx.Load(y)+1) })
	if th.Stats.DegradationEvents == 0 {
		t.Fatal("degraded Execute not counted as a DegradationEvent")
	}
	if th.Stats.Fallbacks != before+1 {
		t.Fatal("degraded Execute did not serialize through the fallback")
	}

	// Calm diet: degraded executions feed calm samples; the detector must
	// disengage and HTM execution resume.
	calm := func(tx *Tx) { tx.Store(y, tx.Load(y)+1) }
	for i := 0; i < 64 && h.Degraded(); i++ {
		th.Execute(DefaultPolicy, calm)
	}
	if h.Degraded() {
		t.Fatal("detector never recovered on a calm diet")
	}
	commitsBefore := th.Stats.Commits
	th.Execute(DefaultPolicy, calm)
	if th.Stats.Commits != commitsBefore+1 {
		t.Fatal("post-recovery Execute did not commit transactionally")
	}
	if got := a.LoadWord(p, x); got != stormOps {
		t.Fatalf("storm-phase effects applied %d times, want %d", got, stormOps)
	}
}

// TestQueuedFallbackFairness: the ticket lock must preserve mutual
// exclusion and hand the lock off FIFO — with every thread re-queuing
// immediately, per-thread acquisition counts stay within a bounded skew at
// every prefix of the service order (a spinning hog cannot starve waiters).
func TestQueuedFallbackFairness(t *testing.T) {
	a := simmem.NewArena(1 << 16)
	cfg := DefaultConfig
	cfg.QueuedFallback = true
	h := New(a, cfg)
	boot := vclock.NewWallProc(0, 0)
	x := a.AllocAligned(boot, 8, simmem.TagKeys)

	const threads, rounds = 4, 40
	var order []int
	sim := vclock.NewSim(threads, 0)
	bad := 0
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())+1)
		for i := 0; i < rounds; i++ {
			th.RunFallback(func(tx *Tx) {
				v0, v1 := tx.Load(x), tx.Load(x+1)
				if v0 != v1 {
					bad++
				}
				tx.Store(x, v0+1)
				tx.Store(x+1, v1+1)
				// Lockstep: only one goroutine runs at a time, so the
				// append is race-free and the order deterministic.
				order = append(order, p.ID())
			})
		}
	})
	if bad != 0 {
		t.Fatalf("%d mutual-exclusion violations under the ticket lock", bad)
	}
	if got := a.LoadWord(boot, x); got != threads*rounds {
		t.Fatalf("count = %d, want %d", got, threads*rounds)
	}
	counts := make([]int, threads)
	for _, id := range order {
		counts[id]++
		mn, mx := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		// A finished thread stops re-queuing, so skew can only exceed the
		// FIFO bound once some thread has completed all its rounds.
		if mx-mn > 2 && mn < rounds {
			t.Fatalf("ticket lock served unfairly: counts %v after %d acquisitions", counts, len(order))
		}
	}
	if h.FallbackHeld() {
		t.Fatal("ticket lock left held")
	}
}

// TestRunFallbackPanicReleasesLock is the regression test for the
// fallback-lock leak: a panicking body must release the lock (and, with the
// ticket lock, advance the serving counter) so the device stays usable.
func TestRunFallbackPanicReleasesLock(t *testing.T) {
	for _, queued := range []bool{false, true} {
		cfg := DefaultConfig
		cfg.QueuedFallback = queued
		a := simmem.NewArena(1 << 14)
		h := New(a, cfg)
		p := vclock.NewWallProc(1, 0)
		th := h.NewThread(p, 1)
		x := a.AllocAligned(p, 8, simmem.TagKeys)

		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("queued=%v: body panic did not propagate", queued)
				}
			}()
			th.RunFallback(func(tx *Tx) { panic("body exploded") })
		}()
		if h.FallbackHeld() {
			t.Fatalf("queued=%v: fallback lock leaked across a body panic", queued)
		}
		// The device must still work on both paths.
		if ok, reason := th.Run(func(tx *Tx) { tx.Store(x, 1) }); !ok {
			t.Fatalf("queued=%v: post-panic transaction aborted (%s)", queued, reason)
		}
		th.RunFallback(func(tx *Tx) { tx.Store(x, tx.Load(x)+1) })
		if got := a.LoadWord(p, x); got != 2 {
			t.Fatalf("queued=%v: post-panic effects = %d, want 2", queued, got)
		}
	}
}

// TestResilienceFaultPointsCovered extends the fault-point coverage
// acceptance to the resilience layer: storm, watchdog, and qlock must be
// both visited and fired by deterministic scenarios, and their spec syntax
// must round-trip.
func TestResilienceFaultPointsCovered(t *testing.T) {
	for _, spec := range []string{"storm:yield:1", "watchdog:yield:2", "qlock:abort:1"} {
		s, err := ParseFaultSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		if s.String() != spec {
			t.Fatalf("spec %q round-tripped to %q", spec, s.String())
		}
	}

	// watchdog: the budget-bounded always-abort scenario.
	{
		a := simmem.NewArena(1 << 14)
		h := New(a, DefaultConfig)
		fi := NewFaultInjector(FaultSpec{Point: FaultWatchdog, Action: ActYield, Nth: 1})
		h.SetFaultInjector(fi)
		th := h.NewThread(vclock.NewWallProc(1, 0), 1)
		x := a.AllocAligned(th.P, 8, simmem.TagKeys)
		th.Execute(RetryPolicy{AttemptBudget: 3}, alwaysAbortBody(x))
		if fi.Hits(FaultWatchdog) == 0 {
			t.Fatalf("watchdog point never fired (visits=%d)", fi.Visits(FaultWatchdog))
		}
	}

	// qlock: every ticket acquisition visits the point.
	{
		a := simmem.NewArena(1 << 14)
		cfg := DefaultConfig
		cfg.QueuedFallback = true
		h := New(a, cfg)
		fi := NewFaultInjector(FaultSpec{Point: FaultQLock, Action: ActYield, Nth: 1})
		h.SetFaultInjector(fi)
		th := h.NewThread(vclock.NewWallProc(1, 0), 1)
		x := a.AllocAligned(th.P, 8, simmem.TagKeys)
		th.RunFallback(func(tx *Tx) { tx.Store(x, 1) })
		if fi.Hits(FaultQLock) != 1 {
			t.Fatalf("qlock hits = %d, want 1", fi.Hits(FaultQLock))
		}
	}

	// storm: the degradation redirect fires the point.
	{
		a := simmem.NewArena(1 << 16)
		cfg := DefaultConfig
		cfg.Storm = StormConfig{Window: 16, Threshold: 0.5, CooldownWindows: 1}
		h := New(a, cfg)
		fi := NewFaultInjector(FaultSpec{Point: FaultStorm, Action: ActYield, Nth: 1})
		h.SetFaultInjector(fi)
		th := h.NewThread(vclock.NewWallProc(1, 0), 1)
		x := a.AllocAligned(th.P, 8, simmem.TagKeys)
		for i := 0; i < 4; i++ {
			th.Execute(DefaultPolicy, alwaysAbortBody(x))
		}
		th.Execute(DefaultPolicy, func(tx *Tx) { tx.Store(x, tx.Load(x)+1) })
		if fi.Hits(FaultStorm) == 0 {
			t.Fatalf("storm point never fired (visits=%d, degraded=%v)", fi.Visits(FaultStorm), h.Degraded())
		}
	}
}

// TestResilienceBundleHelpers pins the Apply/DeviceConfig identity contract:
// a disabled bundle must change nothing (the bit-identical-defaults
// guarantee), an enabled one must carry every knob across.
func TestResilienceBundleHelpers(t *testing.T) {
	if got := (Resilience{}).Apply(DefaultPolicy); got != DefaultPolicy {
		t.Fatalf("disabled Apply changed the policy: %+v", got)
	}
	if got := (Resilience{}).DeviceConfig(DefaultConfig); got != DefaultConfig {
		t.Fatalf("disabled DeviceConfig changed the config: %+v", got)
	}
	r := DefaultResilience()
	pol := r.Apply(DefaultPolicy)
	if pol.BackoffBase != r.BackoffBase || pol.BackoffMax != r.BackoffMax ||
		pol.LemmingWait != r.LemmingWait || pol.AttemptBudget != r.AttemptBudget {
		t.Fatalf("Apply dropped knobs: %+v", pol)
	}
	if pol.Conflict != DefaultPolicy.Conflict || pol.LockBusy != DefaultPolicy.LockBusy {
		t.Fatalf("Apply clobbered the base thresholds: %+v", pol)
	}
	cfg := r.DeviceConfig(DefaultConfig)
	if !cfg.QueuedFallback || cfg.Storm != r.Storm {
		t.Fatalf("DeviceConfig dropped knobs: %+v", cfg)
	}
}
