module eunomia

go 1.22
