module eunomia

go 1.23
