package eunomia

import (
	"errors"
	"time"

	"eunomia/internal/core"
	"eunomia/internal/durable"
	"eunomia/internal/htm"
)

// Durability configures crash durability: a group-committed write-ahead
// log plus periodic snapshots, recovered on Open. The zero value disables
// durability entirely (the hot path then costs one atomic load and a nil
// check — no logging, no allocation, no virtual ticks).
type Durability struct {
	// Dir enables durability when non-empty: WAL segments and snapshots
	// live in this directory, and Open replays them into the tree before
	// returning.
	Dir string
	// FlushInterval selects the group-commit mode. 0 (the default) is
	// leader-based immediate commit: an acknowledging operation that finds
	// no flush in progress fsyncs the whole pending batch itself, so
	// concurrent writers amortize one fsync. A positive interval parks
	// writers and fsyncs on a timer — higher throughput, bounded
	// acknowledgement latency of about one interval.
	FlushInterval time.Duration
	// FlushBytes forces an early flush once a shard's pending batch
	// reaches this many bytes. 0 disables the threshold.
	FlushBytes int
	// SnapshotBytes triggers an automatic snapshot (with WAL truncation)
	// after that many log bytes. 0 disables automatic snapshots;
	// DB.Snapshot still works.
	SnapshotBytes int64
	// Shards is the number of WAL append files (default 8).
	Shards int
	// FS overrides the filesystem. nil means the operating system; the
	// crash-recovery checker injects a fault-modeling in-memory FS.
	FS durable.FS
	// AckBeforeFlush deliberately breaks the acknowledged-only-after-flush
	// rule so the crash checker can prove it detects the resulting data
	// loss. Never enable it for real data.
	AckBeforeFlush bool
}

// ErrClosed is returned by every operation on a closed DB.
var ErrClosed = errors.New("eunomia: db is closed")

// openDurable wires the durability store into a freshly built DB,
// replaying any existing snapshot and WAL through the boot thread.
func (db *DB) openDurable(boot *htm.Thread, d Durability) error {
	st, err := durable.Open(durable.Config{
		FS:             d.FS,
		Dir:            d.Dir,
		Shards:         d.Shards,
		FlushInterval:  d.FlushInterval,
		FlushBytes:     d.FlushBytes,
		SnapshotBytes:  d.SnapshotBytes,
		AckBeforeFlush: d.AckBeforeFlush,
		Observer:       db.observer,
	}, func(op durable.Op) {
		if op.Delete {
			db.kv.Delete(boot, op.Key)
		} else {
			db.kv.Put(boot, op.Key, op.Val)
		}
	})
	if err != nil {
		return err
	}
	db.dur = st
	if db.euno != nil && db.euno.CombineEnabled() {
		// Route combined batches through the WAL's group commit. Installing
		// the committer also stops the tree from combining inside plain
		// Put/Delete — Thread.Put/Delete offer each op to the combining
		// layer BEFORE their own LogPut, so nothing is logged twice.
		db.euno.SetGroupCommitter(groupCommitter{st})
	}
	return nil
}

// groupCommitter adapts durable.Store's group commit to the tree's
// GroupCommitter hook.
type groupCommitter struct{ st *durable.Store }

func (g groupCommitter) Begin(keys []uint64) (core.GroupTxn, error) {
	grp, err := g.st.BeginGroup(keys)
	if err != nil {
		return nil, err
	}
	return groupTxn{grp}, nil
}

// groupTxn adapts one open durable.Group.
type groupTxn struct{ g *durable.Group }

func (t groupTxn) Commit(ops []core.GroupOp) error {
	entries := make([]durable.GroupEntry, len(ops))
	for i, op := range ops {
		entries[i] = durable.GroupEntry{Key: op.Key, Val: op.Val, Delete: op.Delete}
	}
	return t.g.Commit(entries)
}

func (t groupTxn) Abort() { t.g.Abort() }

// durErr maps store-level errors onto the public API's vocabulary.
func durErr(err error) error {
	if errors.Is(err, durable.ErrStoreClosed) {
		return ErrClosed
	}
	return err
}

// scanAll returns a full-tree scan callback for the snapshotter, driven
// through th. It pages through the tree in key order; concurrent writers
// are fine — anything the scan misses is still in the (un-truncated) log.
func (db *DB) scanAll(th *htm.Thread) func(emit func(key, val uint64)) error {
	return func(emit func(key, val uint64)) error {
		const batch = 1024
		from := uint64(0)
		for {
			var last uint64
			n := db.kv.Scan(th, from, batch, func(k, v uint64) bool {
				emit(k, v)
				last = k
				return true
			})
			if n < batch || last == ^uint64(0) {
				return nil
			}
			from = last + 1
		}
	}
}

// maybeSnapshot runs an automatic snapshot on the calling thread if the
// byte threshold has been crossed. Snapshot failures are recorded in
// DurabilityStats but do not fail the triggering operation — nothing has
// been truncated, so durability is unaffected.
func (t *Thread) maybeSnapshot() {
	d := t.db.dur
	if d != nil && d.NeedSnapshot() {
		_ = d.Snapshot(t.db.scanAll(t.th), true)
	}
}

// Sync forces every acknowledged-but-buffered WAL byte to disk. It is a
// no-op without durability.
func (db *DB) Sync() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.dur == nil {
		return nil
	}
	return durErr(db.dur.Sync())
}

// Snapshot captures the whole tree into a snapshot file and truncates the
// WAL segments it covers. Without durability it is a no-op.
func (db *DB) Snapshot() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.dur == nil {
		return nil
	}
	return durErr(db.dur.Snapshot(db.scanAll(db.NewThread().th), false))
}

// Close flushes the WAL and releases the DB. It is idempotent; operations
// on a closed DB return ErrClosed. Without durability Close only marks
// the DB closed.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	if db.dur == nil {
		return nil
	}
	return db.dur.Close()
}

// durableLSN returns the highest WAL LSN known flushed to disk (0 without
// durability). The Cluster's snapshot barrier captures this after a Sync
// to define a per-shard durability cut; the flushed watermark (rather
// than the last assigned LSN) keeps the cut sound with writers running
// concurrently with the barrier.
func (db *DB) durableLSN() uint64 {
	if db.dur == nil {
		return 0
	}
	return db.dur.DurableLSN()
}

// recoveredSeq returns the highest LSN this DB's Open recovered (0
// without durability). The Cluster cross-checks it against the last
// committed barrier vector to detect a shard rolled back behind the
// cluster-wide snapshot.
func (db *DB) recoveredSeq() uint64 {
	if db.dur == nil {
		return 0
	}
	return db.dur.RecoveryInfo().MaxSeq
}

// DurabilityStats reports the durability layer's behavior: group-commit
// batching, flush latency, snapshots, and what recovery replayed.
type DurabilityStats struct {
	// Enabled is false when the DB was opened without durability (all
	// other fields are then zero).
	Enabled bool
	// Group commit.
	Flushes       uint64
	FlushedFrames uint64
	FlushedBytes  uint64
	MaxBatch      uint64  // largest frames-per-fsync batch
	AvgBatch      float64 // mean frames per fsync
	FlushP50Ns    uint64
	FlushP99Ns    uint64
	FlushMaxNs    uint64
	// Snapshots taken (and failed) since Open.
	Snapshots      uint64
	SnapshotErrors uint64
	// Recovery performed by Open.
	RecoveryNs     int64
	SnapshotPairs  uint64 // pairs loaded from the recovered snapshot
	ReplayedFrames uint64 // WAL frames replayed
	TornTails      int    // log files truncated at a torn/corrupt frame
}

// durabilityMetrics builds the Metrics.Durability section.
func (db *DB) durabilityMetrics() DurabilityStats {
	if db.dur == nil {
		return DurabilityStats{}
	}
	s := db.dur.Stats()
	return DurabilityStats{
		Enabled:        true,
		Flushes:        s.Flushes,
		FlushedFrames:  s.FlushedFrames,
		FlushedBytes:   s.FlushedBytes,
		MaxBatch:       s.MaxBatch,
		AvgBatch:       s.AvgBatch,
		FlushP50Ns:     s.FlushP50Ns,
		FlushP99Ns:     s.FlushP99Ns,
		FlushMaxNs:     s.FlushMaxNs,
		Snapshots:      s.Snapshots,
		SnapshotErrors: s.SnapshotErrors,
		RecoveryNs:     s.Recovery.DurationNs,
		SnapshotPairs:  s.Recovery.SnapshotPairs,
		ReplayedFrames: s.Recovery.ReplayedFrames,
		TornTails:      s.Recovery.TornTails,
	}
}
