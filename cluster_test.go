package eunomia

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"eunomia/internal/durable"
)

// testCluster opens an in-memory (non-durable) cluster for routing and
// metrics tests.
func testCluster(t *testing.T, n int, part Partition) *Cluster {
	t.Helper()
	c, err := OpenCluster(ClusterOptions{
		Shards:    n,
		Partition: part,
		Shard:     Options{ArenaWords: 1 << 19},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClusterRoutesToOwningShard: a key written through a Session lands in
// exactly the shard ShardFor names — present there, absent everywhere else
// (inspected through each shard's own DB, below the router).
func TestClusterRoutesToOwningShard(t *testing.T) {
	c := testCluster(t, 3, HashPartition)
	sess := c.NewSession()
	keys := []uint64{0, 1, 7, 100, 1 << 40, ^uint64(0)}
	for _, k := range keys {
		if err := sess.Put(k, k^0xff); err != nil {
			t.Fatal(err)
		}
	}
	ths := make([]*Thread, c.Shards())
	for i := range ths {
		ths[i] = c.DB(i).NewThread()
	}
	for _, k := range keys {
		owner := c.ShardFor(k)
		for i, th := range ths {
			v, ok, err := th.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if i == owner && (!ok || v != k^0xff) {
				t.Fatalf("key %d missing from owning shard %d", k, owner)
			}
			if i != owner && ok {
				t.Fatalf("key %d leaked into shard %d (owner %d)", k, i, owner)
			}
		}
	}
	// Reads and deletes route identically.
	for _, k := range keys {
		if v, ok, err := sess.Get(k); err != nil || !ok || v != k^0xff {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	if ok, err := sess.Delete(keys[2]); err != nil || !ok {
		t.Fatalf("Delete = %v,%v", ok, err)
	}
	if _, ok, _ := sess.Get(keys[2]); ok {
		t.Fatal("deleted key still visible")
	}
}

// TestClusterRangePartitionContiguous: RangePartition assigns contiguous,
// monotone slices of the key space.
func TestClusterRangePartitionContiguous(t *testing.T) {
	c := testCluster(t, 4, RangePartition)
	if got := c.ShardFor(0); got != 0 {
		t.Fatalf("ShardFor(0) = %d", got)
	}
	if got := c.ShardFor(^uint64(0)); got != 3 {
		t.Fatalf("ShardFor(max) = %d", got)
	}
	prev := 0
	for i := uint64(0); i < 64; i++ {
		s := c.ShardFor(i << 58)
		if s < prev {
			t.Fatalf("range partition not monotone: key %#x -> shard %d after %d", i<<58, s, prev)
		}
		prev = s
	}
}

// TestClusterMetricsAggregation: Agg sums the per-shard counters, and
// PerShard is index-aligned with Cluster.DB.
func TestClusterMetricsAggregation(t *testing.T) {
	c := testCluster(t, 3, HashPartition)
	sess := c.NewSession()
	for k := uint64(0); k < 200; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	cm := c.ClusterMetrics()
	if cm.Shards != 3 || len(cm.PerShard) != 3 {
		t.Fatalf("Shards=%d len(PerShard)=%d", cm.Shards, len(cm.PerShard))
	}
	var sum uint64
	var touched int
	for i, m := range cm.PerShard {
		sum += m.Tx.Commits
		if m.Tx.Commits > 0 {
			touched++
		}
		if m2 := c.DB(i).Metrics(); m2.Tx.Commits < m.Tx.Commits {
			t.Fatalf("PerShard[%d] not aligned with DB(%d)", i, i)
		}
	}
	if cm.Agg.Tx.Commits != sum {
		t.Fatalf("Agg commits %d != per-shard sum %d", cm.Agg.Tx.Commits, sum)
	}
	if cm.Agg.Tx.Commits < 200 {
		t.Fatalf("aggregate commits %d < 200 puts", cm.Agg.Tx.Commits)
	}
	if touched < 2 {
		t.Fatalf("200 hashed keys touched only %d shards", touched)
	}
}

// TestClusterOptionsValidation: a negative shard count is rejected; zero
// defaults to 4.
func TestClusterOptionsValidation(t *testing.T) {
	if _, err := OpenCluster(ClusterOptions{Shards: -1, Shard: Options{ArenaWords: 1 << 19}}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	c, err := OpenCluster(ClusterOptions{Shard: Options{ArenaWords: 1 << 19}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 4 {
		t.Fatalf("default shards = %d, want 4", c.Shards())
	}
}

// TestClusterReservedValueRejected: Session.Put surfaces the single-DB
// reserved-value error.
func TestClusterReservedValueRejected(t *testing.T) {
	c := testCluster(t, 2, HashPartition)
	if err := c.NewSession().Put(1, ^uint64(0)); !errors.Is(err, ErrReservedValue) {
		t.Fatalf("Put(reserved) = %v, want ErrReservedValue", err)
	}
}

// TestClusterClosedOps: after Close, Session operations and cluster-level
// maintenance report ErrClosed; Close is idempotent.
func TestClusterClosedOps(t *testing.T) {
	c := testCluster(t, 2, HashPartition)
	sess := c.NewSession()
	if err := sess.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := sess.Put(3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, _, err := sess.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if _, err := sess.Scan(0, 10, func(k, v uint64) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close = %v", err)
	}
	if err := c.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after close = %v", err)
	}
}

// TestClusterSnapshotWithoutDurability: Snapshot and Sync are no-ops on an
// in-memory cluster.
func TestClusterSnapshotWithoutDurability(t *testing.T) {
	c := testCluster(t, 2, HashPartition)
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDurableRecovery: a durable cluster recovers every
// acknowledged write shard-by-shard (each shard replays its own WAL group
// under the cluster root).
func TestClusterDurableRecovery(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	opts := func() ClusterOptions {
		return ClusterOptions{
			Shards: 3,
			Shard: Options{
				ArenaWords: 1 << 19,
				Durability: Durability{Dir: "clusterdb", FS: fs},
			},
		}
	}
	c, err := OpenCluster(opts())
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	for k := uint64(1); k <= 100; k++ {
		if err := sess.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(10); k <= 100; k += 10 {
		if _, err := sess.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCluster(opts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sess2 := c2.NewSession()
	for k := uint64(1); k <= 100; k++ {
		v, ok, err := sess2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if k%10 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
		} else if !ok || v != k*3 {
			t.Fatalf("key %d lost across restart: %d,%v", k, v, ok)
		}
	}
	if ds := c2.ClusterMetrics().Agg.Durability; ds.ReplayedFrames == 0 && ds.SnapshotPairs == 0 {
		t.Fatal("recovery replayed nothing")
	}
}

// TestClusterSingleShardFailureJoined is the multi-DB error-surface test:
// one shard's filesystem dies mid-run; the cluster must keep serving the
// healthy shards, and Sync/Close must name the failing shard in a joined
// error instead of hiding it (or hiding the others behind it).
func TestClusterSingleShardFailureJoined(t *testing.T) {
	for p := uint64(1); p <= 60; p++ {
		fses := [3]*durable.MemFS{
			durable.NewMemFS(durable.FaultPlan{}),
			durable.NewMemFS(durable.FaultPlan{CrashAtIO: p}), // shard 1's disk dies
			durable.NewMemFS(durable.FaultPlan{}),
		}
		manifestFS := durable.NewMemFS(durable.FaultPlan{})
		c, err := OpenCluster(ClusterOptions{
			Shards: 3,
			Shard: Options{
				ArenaWords: 1 << 19,
				Durability: Durability{Dir: "clusterdb", FS: manifestFS},
			},
			PerShard: func(i int, o *Options) { o.Durability.FS = fses[i] },
		})
		if err != nil {
			// Crash fired inside Open: the joined error must name shard 1,
			// and the shards opened before it must have been closed.
			if !strings.Contains(err.Error(), "shard 1") {
				t.Fatalf("open error does not identify the failing shard: %v", err)
			}
			continue
		}
		sess := c.NewSession()
		var shard1Err error
		for k := uint64(0); k < 120; k++ {
			err := sess.Put(k, k)
			if err != nil {
				if c.ShardFor(k) != 1 {
					t.Fatalf("point %d: healthy shard %d failed: %v", p, c.ShardFor(k), err)
				}
				shard1Err = err
			}
		}
		if !fses[1].Crashed() || shard1Err == nil {
			c.Close()
			continue // crash point beyond this run's IO; try the next
		}
		// Healthy shards still serve reads and writes.
		hk := uint64(200)
		for c.ShardFor(hk) == 1 {
			hk++
		}
		if err := sess.Put(hk, 9); err != nil {
			t.Fatalf("point %d: healthy shard write failed after shard 1 died: %v", p, err)
		}
		if v, ok, err := sess.Get(hk); err != nil || !ok || v != 9 {
			t.Fatalf("point %d: healthy shard read failed: %d,%v,%v", p, v, ok, err)
		}
		syncErr := c.Sync()
		if syncErr == nil {
			t.Fatalf("point %d: Sync succeeded with a crashed shard disk", p)
		}
		// "cluster shard N" is the cluster-level attribution (the WAL's own
		// append files are also called "wal shard N" — don't match those).
		if !strings.Contains(syncErr.Error(), "cluster shard 1 sync") {
			t.Fatalf("Sync error does not identify the failing shard: %v", syncErr)
		}
		if strings.Contains(syncErr.Error(), "cluster shard 0") || strings.Contains(syncErr.Error(), "cluster shard 2") {
			t.Fatalf("Sync error blames healthy shards: %v", syncErr)
		}
		if err := c.Close(); err != nil && !strings.Contains(err.Error(), "cluster shard 1 close") {
			t.Fatalf("Close error does not identify the failing shard: %v", err)
		}
		t.Logf("crash point %d: shard 1 failed with %v; healthy shards unaffected", p, shard1Err)
		return
	}
	t.Fatal("no crash point produced a mid-run shard failure")
}

// TestClusterPerShardHook: the PerShard hook sees every index and can
// override options per shard.
func TestClusterPerShardHook(t *testing.T) {
	var seen []int
	c, err := OpenCluster(ClusterOptions{
		Shards: 3,
		Shard:  Options{ArenaWords: 1 << 19},
		PerShard: func(i int, o *Options) {
			seen = append(seen, i)
			o.ArenaWords = 1 << 18
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if fmt.Sprint(seen) != "[0 1 2]" {
		t.Fatalf("PerShard saw %v", seen)
	}
}
