package eunomia

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"eunomia/internal/durable"
	"eunomia/internal/shard"
)

// durableReshardOpts builds options for a durable cluster over one shared
// MemFS (shard dirs + cluster manifests all on the same disk).
func durableReshardOpts(fs *durable.MemFS, n int, part Partition) ClusterOptions {
	return ClusterOptions{
		Shards:    n,
		Partition: part,
		Shard: Options{
			ArenaWords: 1 << 19,
			Durability: Durability{Dir: "clusterdb", FS: fs},
		},
	}
}

// TestReshardSplitLive: a 2→4 split under a live writer. Every key —
// written before and during the migration — survives on its new owner,
// the epoch advances, and a reopen with Shards:0 adopts the grown
// topology.
func TestReshardSplitLive(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	c, err := OpenCluster(durableReshardOpts(fs, 2, RangePartition))
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	const preKeys = 400
	for k := uint64(0); k < preKeys; k++ {
		if err := sess.Put(k*(1<<55), k); err != nil {
			t.Fatal(err)
		}
	}
	// Writer racing the migration: keys interleaved with the preloaded
	// set, spread across the whole space so every move sees traffic.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	live := map[uint64]uint64{} // final acked value per live-written key
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws := c.NewSession()
		for k := uint64(0); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			key := (k%512)*(1<<55) + 1
			if err := ws.Put(key, k); err != nil {
				t.Errorf("live write %d: %v", k, err)
				return
			}
			live[key] = k
		}
	}()
	time.Sleep(2 * time.Millisecond)
	if err := c.Reshard(4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if got := c.Shards(); got != 4 {
		t.Fatalf("post-split Shards() = %d", got)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("post-split Epoch() = %d", got)
	}
	if c.Migrating() {
		t.Fatal("still migrating after Reshard returned")
	}
	verify := func(sess *Session, c *Cluster) {
		for k := uint64(0); k < preKeys; k++ {
			v, ok, err := sess.Get(k * (1 << 55))
			if err != nil || !ok || v != k {
				t.Fatalf("pre-split key %d: %d,%v,%v", k, v, ok, err)
			}
		}
		for key, want := range live {
			v, ok, err := sess.Get(key)
			if err != nil || !ok || v != want {
				t.Fatalf("live key %d: got %d,%v,%v want %d", key, v, ok, err, want)
			}
		}
		// Partitioning invariant: each key physically lives only on its
		// owning shard (stale source copies must have been purged).
		ths := make([]*Thread, c.Shards())
		for i := range ths {
			ths[i] = c.DB(i).NewThread()
		}
		for k := uint64(0); k < preKeys; k++ {
			key := k * (1 << 55)
			owner := c.ShardFor(key)
			for i, th := range ths {
				_, ok, err := th.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if ok && i != owner {
					t.Fatalf("key %d: stale copy on shard %d (owner %d)", key, i, owner)
				}
				if !ok && i == owner {
					t.Fatalf("key %d: missing from owner %d", key, owner)
				}
			}
		}
	}
	verify(sess, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen adopting the stored topology.
	o := durableReshardOpts(fs, 0, RangePartition)
	c2, err := OpenCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Shards() != 4 || c2.Epoch() != 1 {
		t.Fatalf("reopen: shards=%d epoch=%d", c2.Shards(), c2.Epoch())
	}
	verify(c2.NewSession(), c2)
}

// TestReshardMerge: 4→2 online merge; the retired slots' data lands on
// the survivors and their directories are wiped.
func TestReshardMerge(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	c, err := OpenCluster(durableReshardOpts(fs, 4, HashPartition))
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	for k := uint64(1); k <= 500; k++ {
		if err := sess.Put(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Reshard(2); err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 2 || c.Epoch() != 1 {
		t.Fatalf("post-merge shards=%d epoch=%d", c.Shards(), c.Epoch())
	}
	for k := uint64(1); k <= 500; k++ {
		v, ok, err := sess.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("post-merge key %d: %d,%v,%v", k, v, ok, err)
		}
	}
	n := 0
	for range sess.Range(0, ^uint64(0)) {
		n++
	}
	if n != 500 {
		t.Fatalf("post-merge range saw %d keys, want 500", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCluster(durableReshardOpts(fs, 0, HashPartition))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Shards() != 2 {
		t.Fatalf("reopen shards=%d", c2.Shards())
	}
	s2 := c2.NewSession()
	for k := uint64(1); k <= 500; k++ {
		v, ok, err := s2.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("reopened key %d: %d,%v,%v", k, v, ok, err)
		}
	}
}

// TestReshardTopologyMismatchTyped: reopening a resharded store with a
// contradicting explicit shard count fails with the typed error carrying
// both sides — not the old hard refusal string.
func TestReshardTopologyMismatchTyped(t *testing.T) {
	fs := durable.NewMemFS(durable.FaultPlan{})
	c, err := OpenCluster(durableReshardOpts(fs, 2, HashPartition))
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	for k := uint64(1); k <= 50; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Reshard(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenCluster(durableReshardOpts(fs, 5, HashPartition))
	if !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("want ErrTopologyMismatch, got %v", err)
	}
	var tm *TopologyMismatchError
	if !errors.As(err, &tm) {
		t.Fatalf("want *TopologyMismatchError, got %T: %v", err, err)
	}
	if tm.StoredShards != 3 || tm.CurrentShards != 5 || tm.StoredEpoch != 1 {
		t.Fatalf("mismatch detail: %+v", *tm)
	}
	// The matching explicit count and the adopt form both still open.
	for _, n := range []int{3, 0} {
		c2, err := OpenCluster(durableReshardOpts(fs, n, HashPartition))
		if err != nil {
			t.Fatalf("Shards:%d reopen: %v", n, err)
		}
		if c2.Shards() != 3 {
			t.Fatalf("Shards:%d reopen got %d shards", n, c2.Shards())
		}
		c2.Close()
	}
}

// TestBarrierV1V2BackCompat: barrier manifests from before resharding
// load as epoch 0 and still gate recovery, instead of being rejected.
func TestBarrierV1V2BackCompat(t *testing.T) {
	for _, hdr := range []string{
		"euno-cluster-barrier v1 id=1 shards=2\n",
		"euno-cluster-barrier v2 id=1 shards=2 excluded=0\n",
	} {
		fs := durable.NewMemFS(durable.FaultPlan{})
		c, err := OpenCluster(durableReshardOpts(fs, 2, HashPartition))
		if err != nil {
			t.Fatal(err)
		}
		sess := c.NewSession()
		for k := uint64(1); k <= 20; k++ {
			if err := sess.Put(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		// Plant an old-format barrier with zero floors: loads as epoch 0,
		// verification passes (every shard recovered past 0).
		f, err := fs.Create("clusterdb/cluster-barrier")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(hdr + "0 0\n1 0\n")); err != nil {
			t.Fatal(err)
		}
		f.Sync()
		f.Close()
		c2, err := OpenCluster(durableReshardOpts(fs, 2, HashPartition))
		if err != nil {
			t.Fatalf("%q: reopen: %v", hdr, err)
		}
		if c2.Epoch() != 0 {
			t.Fatalf("%q: epoch = %d, want 0", hdr, c2.Epoch())
		}
		// Unsatisfiable floor in the old format still fails loudly.
		c2.Close()
		f, err = fs.Create("clusterdb/cluster-barrier")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(hdr + "0 999999\n1 999999\n")); err != nil {
			t.Fatal(err)
		}
		f.Sync()
		f.Close()
		if _, err := OpenCluster(durableReshardOpts(fs, 2, HashPartition)); err == nil {
			t.Fatalf("%q: rolled-back store opened against old-format barrier", hdr)
		}
	}
}

// TestReshardScanExactlyOnceMidMigration is the white-box straddling-scan
// test: with an interval physically present on BOTH its source and its
// destination (copied, cut over, not yet purged — and separately, copied
// but NOT cut over), a merged range over the boundary returns every key
// exactly once.
func TestReshardScanExactlyOnceMidMigration(t *testing.T) {
	c := testCluster(t, 2, RangePartition)
	sess := c.NewSession()
	const n = 200
	keys := make([]uint64, 0, n)
	for k := 0; k < n; k++ {
		key := uint64(k) * (1 << 56) // spread across the whole space
		keys = append(keys, key)
		if err := sess.Put(key, key^5); err != nil {
			t.Fatal(err)
		}
	}
	// Manually stage a 2→4 migration the way Reshard does, so the test
	// controls exactly which state the scan observes.
	from := shard.New(2, shard.Range)
	to := shard.New(4, shard.Range)
	list := c.shardList()
	grown := make([]*clusterShard, len(list), 4)
	copy(grown, list)
	for i := 2; i < 4; i++ {
		db, err := Open(c.opts.Shard)
		if err != nil {
			t.Fatal(err)
		}
		sh := &clusterShard{idx: i, opts: c.opts.Shard, health: shard.NewHealth(c.healthCfg)}
		sh.db.Store(db)
		grown = append(grown, sh)
	}
	c.shards.Store(&grown)
	m := newMigration(from, to, 0, 0)
	c.mig.Store(m)
	v := c.table.BeginReshard(to, 0)
	if len(v.Moves()) == 0 {
		t.Fatal("no moves for 2->4 range split")
	}
	mv := v.Moves()[0]

	// Physically copy move 0 to its destination WITHOUT cutting over:
	// both copies exist; the scan must take the source's.
	sth := c.DB(mv.Src).NewThread()
	dth := c.DB(mv.Dst).NewThread()
	copied := 0
	for _, k := range keys {
		if mi, ok := v.MoveOf(k); ok && mi == 0 {
			val, ok2, err := sth.Get(k)
			if err != nil || !ok2 {
				t.Fatalf("move key %d unreadable on src: %v %v", k, ok2, err)
			}
			if err := dth.Put(k, val); err != nil {
				t.Fatal(err)
			}
			copied++
		}
	}
	if copied == 0 {
		t.Fatal("move 0 carried no test keys")
	}
	checkExactlyOnce := func(stage string) {
		seen := map[uint64]int{}
		for k, val := range sess.Range(0, ^uint64(0)) {
			seen[k]++
			if val != k^5 {
				t.Fatalf("%s: key %d carries %d", stage, k, val)
			}
		}
		for _, k := range keys {
			if seen[k] != 1 {
				t.Fatalf("%s: key %d seen %d times", stage, k, seen[k])
			}
		}
		if len(seen) != n {
			t.Fatalf("%s: %d keys scanned, want %d", stage, len(seen), n)
		}
	}
	checkExactlyOnce("copied-not-cut")

	// Cut move 0 over (authority flips to Dst) but do NOT purge: the
	// stale source copies are still physically present.
	m.fence.Lock()
	c.table.CutOver(0)
	m.cut = 1
	m.fence.Unlock()
	checkExactlyOnce("cut-not-purged")

	// A scan frozen before a cutover keeps its own routing for the whole
	// iteration: start iterating, cut another move mid-scan, finish — the
	// stream stays exactly-once because the frozen view filters every
	// cursor consistently.
	if len(v.Moves()) > 1 {
		seen := map[uint64]int{}
		i := 0
		for k := range sess.Range(0, ^uint64(0)) {
			seen[k]++
			if i == n/3 {
				m.fence.Lock()
				c.table.CutOver(1)
				m.cut = 2
				m.fence.Unlock()
			}
			i++
		}
		for _, k := range keys {
			if seen[k] != 1 {
				t.Fatalf("mid-scan cutover: key %d seen %d times", k, seen[k])
			}
		}
	}
	// Leave the staged migration in place; Close tolerates it (no engine
	// goroutine was started).
	c.mig.Store(nil)
}

// TestReshardAutoSplitTriggers: a hot shard under a skewed load trips the
// watcher, which grows the topology without any explicit Reshard call.
func TestReshardAutoSplitTriggers(t *testing.T) {
	c, err := OpenCluster(ClusterOptions{
		Shards:    2,
		Partition: RangePartition,
		Shard:     Options{ArenaWords: 1 << 19},
		AutoSplit: AutoSplitOptions{
			Enable:    true,
			MaxShards: 3,
			HotFactor: 2,
			MinOps:    256,
			Interval:  5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := c.NewSession()
	// Hammer shard 0's half of the key space only.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for k := uint64(0); k < 512; k++ {
			if err := sess.Put(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if c.Shards() == 3 && !c.Migrating() {
			if got := c.ClusterMetrics().Topology.AutoSplits; got != 1 {
				t.Fatalf("AutoSplits = %d, want 1", got)
			}
			return
		}
	}
	t.Fatalf("auto-split never triggered: shards=%d", c.Shards())
}

// TestReshardArgErrors: bad targets and concurrent reshard attempts are
// rejected with the right sentinels.
func TestReshardArgErrors(t *testing.T) {
	c := testCluster(t, 2, HashPartition)
	if err := c.Reshard(0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
	if err := c.Reshard(65); err == nil {
		t.Fatal("Reshard(65) accepted")
	}
	if err := c.Reshard(2); err != nil {
		t.Fatalf("no-op reshard: %v", err)
	}
	sess := c.NewSession()
	for k := uint64(0); k < 2000; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var once sync.Once
	var second error
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Reshard(4)
			if errs[i] != nil {
				once.Do(func() { second = errs[i] })
			}
		}(i)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		// Both succeeding is possible only if they serialized cleanly —
		// but the second must then have been a no-op arriving after the
		// first finished, which Reshard(4)==4-shards reports as nil. Fine.
		if c.Shards() != 4 {
			t.Fatalf("shards=%d after concurrent reshards", c.Shards())
		}
		return
	}
	if second != nil && !errors.Is(second, ErrReshardInProgress) {
		t.Fatalf("concurrent reshard error = %v, want ErrReshardInProgress", second)
	}
	if c.Shards() != 4 {
		t.Fatalf("shards=%d, want 4", c.Shards())
	}
	for k := uint64(0); k < 2000; k++ {
		v, ok, err := sess.Get(k)
		if err != nil || !ok || v != k {
			t.Fatalf("key %d after racing reshards: %d,%v,%v", k, v, ok, err)
		}
	}
}

// TestReshardQuiescesInFlightOps is the deterministic regression test for
// the migration-start grace period: an operation that routed under the
// stable pre-migration view takes the fenceless fast path, so one delayed
// between routing and its tree write could land on the source after its
// interval was copied, drained, and cut over — an acknowledged write the
// new owner never sees. Holding a Session's guard read-side is exactly
// the state such a delayed op is in; the engine must not move a byte
// until it releases, and the write it then performs on the old owner must
// survive the migration.
func TestReshardQuiescesInFlightOps(t *testing.T) {
	c := testCluster(t, 1, RangePartition)
	sess := c.NewSession()
	for k := uint64(0); k < 64; k++ {
		if err := sess.Put(k*(1<<58), k); err != nil {
			t.Fatal(err)
		}
	}
	held := c.NewSession()
	held.guard.RLock()
	done := make(chan error, 1)
	go func() { done <- c.Reshard(2) }()
	deadline := time.Now().Add(10 * time.Second)
	for !c.Migrating() {
		if time.Now().After(deadline) {
			held.guard.RUnlock()
			t.Fatal("migration view never installed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// The routing swap has landed but the engine is parked in the grace
	// period: the destination slot must still be empty.
	time.Sleep(20 * time.Millisecond)
	if n, err := c.DB(1).NewThread().Scan(0, 1, func(uint64, uint64) bool { return true }); err != nil || n != 0 {
		held.guard.RUnlock()
		t.Fatalf("engine copied during the grace period: n=%d err=%v", n, err)
	}
	// The delayed op's write lands on the pre-migration owner — the exact
	// interleaving that lost acknowledged writes without the quiesce.
	const movedKey = uint64(3)<<62 + 1 // upper half: moves shard 0 -> 1
	if err := c.DB(0).NewThread().Put(movedKey, 12345); err != nil {
		held.guard.RUnlock()
		t.Fatal(err)
	}
	held.guard.RUnlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.ShardFor(movedKey) != 1 {
		t.Fatalf("movedKey owned by shard %d, want 1", c.ShardFor(movedKey))
	}
	v, ok, err := sess.Get(movedKey)
	if err != nil || !ok || v != 12345 {
		t.Fatalf("delayed pre-migration write lost: %d,%v,%v", v, ok, err)
	}
	for k := uint64(0); k < 64; k++ {
		v, ok, err := sess.Get(k * (1 << 58))
		if err != nil || !ok || v != k {
			t.Fatalf("key %d after quiesced split: %d,%v,%v", k, v, ok, err)
		}
	}
}

// denyFS wraps a durable.FS and fails Create for paths containing deny —
// the hook for failing exactly the reshard manifest's tmp file.
type denyFS struct {
	durable.FS
	mu   sync.Mutex
	deny string
}

func (f *denyFS) setDeny(s string) {
	f.mu.Lock()
	f.deny = s
	f.mu.Unlock()
}

func (f *denyFS) Create(name string) (durable.File, error) {
	f.mu.Lock()
	deny := f.deny
	f.mu.Unlock()
	if deny != "" && strings.Contains(name, deny) {
		return nil, errors.New("denyFS: injected create failure")
	}
	return f.FS.Create(name)
}

// TestReshardManifestFailureKeepsServingTopology: when the migration
// manifest cannot be journaled, the failed Reshard must leave no trace —
// Shards()/Metrics keep reporting the topology that actually serves, the
// speculatively opened destination slots are closed (so a later retry can
// wipe and reopen their directories), and the retry succeeds once the
// disk recovers.
func TestReshardManifestFailureKeepsServingTopology(t *testing.T) {
	mem := durable.NewMemFS(durable.FaultPlan{})
	ffs := &denyFS{FS: mem}
	o := durableReshardOpts(mem, 2, RangePartition)
	o.Shard.Durability.FS = ffs
	c, err := OpenCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := c.NewSession()
	for k := uint64(0); k < 100; k++ {
		if err := sess.Put(k*(1<<57), k); err != nil {
			t.Fatal(err)
		}
	}
	ffs.setDeny("cluster-reshard")
	if err := c.Reshard(4); err == nil {
		t.Fatal("Reshard succeeded despite manifest failure")
	}
	if got := c.Shards(); got != 2 {
		t.Fatalf("Shards() = %d after failed reshard, want 2 (serving topology)", got)
	}
	if c.Migrating() {
		t.Fatal("Migrating() after failed reshard")
	}
	m := c.ClusterMetrics()
	if m.Shards != 2 || m.Topology.Shards != 2 || len(m.PerShard) != 2 {
		t.Fatalf("metrics report phantom slots: Shards=%d Topology.Shards=%d PerShard=%d",
			m.Shards, m.Topology.Shards, len(m.PerShard))
	}
	for k := uint64(0); k < 100; k++ {
		v, ok, err := sess.Get(k * (1 << 57))
		if err != nil || !ok || v != k {
			t.Fatalf("key %d after failed reshard: %d,%v,%v", k, v, ok, err)
		}
	}
	// Disk recovers: the retry re-wipes and reopens the destination slots
	// (which must have been closed by the rollback) and completes.
	ffs.setDeny("")
	if err := c.Reshard(4); err != nil {
		t.Fatalf("retry after manifest failure: %v", err)
	}
	if c.Shards() != 4 || c.Epoch() != 1 {
		t.Fatalf("retry topology: shards=%d epoch=%d", c.Shards(), c.Epoch())
	}
	for k := uint64(0); k < 100; k++ {
		v, ok, err := sess.Get(k * (1 << 57))
		if err != nil || !ok || v != k {
			t.Fatalf("key %d after retried reshard: %d,%v,%v", k, v, ok, err)
		}
	}
}

// TestReshardCloseRace: Close racing a just-started Reshard must neither
// trip the WaitGroup's Add-vs-Wait misuse nor leave goroutines behind —
// every interleaving ends in ErrClosed, ErrReshardInProgress, or a clean
// completion.
func TestReshardCloseRace(t *testing.T) {
	for i := 0; i < 25; i++ {
		c, err := OpenCluster(ClusterOptions{
			Shards:    2,
			Partition: RangePartition,
			Shard:     Options{ArenaWords: 1 << 19},
		})
		if err != nil {
			t.Fatal(err)
		}
		sess := c.NewSession()
		for k := uint64(0); k < 32; k++ {
			if err := sess.Put(k*(1<<58), k); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan error, 1)
		go func() { done <- c.Reshard(3) }()
		time.Sleep(time.Duration(i%5) * 20 * time.Microsecond)
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", i, err)
		}
		if err := <-done; err != nil &&
			!errors.Is(err, ErrClosed) && !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("iter %d: reshard: %v", i, err)
		}
	}
}

// TestReshardCrashResume: kill the whole cluster (every disk) at seeded
// IO points during a durable split; every reopen must either resume and
// finish the migration or leave a consistent stable topology — with no
// acknowledged write lost, across multiple crash-restart cycles. The
// dedicated crashcheck Reshard mode sweeps this densely (including
// per-shard disk kills); this is the root package's smoke version.
func TestReshardCrashResume(t *testing.T) {
	const keys = 120
	preload := func(fs *durable.MemFS) (*Cluster, error) {
		o := durableReshardOpts(fs, 2, RangePartition)
		o.Repair = RepairOptions{Disable: true}
		c, err := OpenCluster(o)
		if err != nil {
			return nil, err
		}
		sess := c.NewSession()
		for k := uint64(0); k < keys; k++ {
			if err := sess.Put(k*(1<<56), k); err != nil {
				c.Close()
				return nil, err
			}
		}
		return c, nil
	}
	// Dry run: measure the IO window the migration spans, so the sweep's
	// absolute crash points land inside it.
	dry := durable.NewMemFS(durable.FaultPlan{})
	c, err := preload(dry)
	if err != nil {
		t.Fatal(err)
	}
	base := dry.IOCount()
	if err := c.Reshard(4); err != nil {
		t.Fatal(err)
	}
	end := dry.IOCount()
	c.Close()
	if end <= base {
		t.Fatalf("migration performed no IO (base=%d end=%d)", base, end)
	}
	steps := uint64(8)
	if testing.Short() {
		steps = 4
	}
	for s := uint64(0); s < steps; s++ {
		p := base + 1 + s*(end-base)/steps
		t.Run(fmt.Sprint(p), func(t *testing.T) {
			fs := durable.NewMemFS(durable.FaultPlan{CrashAtIO: p})
			c, err := preload(fs)
			if err != nil {
				t.Fatal(err)
			}
			// The crash trips breakers and (with repair off) the engine
			// waits for a recovery that never comes: run Reshard in the
			// background and simulate process death with Close once the
			// disk is gone.
			done := make(chan error, 1)
			go func() { done <- c.Reshard(4) }()
			deadline := time.Now().Add(20 * time.Second)
			finished, rerr := false, error(nil)
			for !fs.Crashed() && !finished {
				select {
				case rerr = <-done:
					finished = true
				default:
					time.Sleep(100 * time.Microsecond)
				}
				if time.Now().After(deadline) {
					t.Fatal("crash point never fired")
				}
			}
			c.Close()
			if !finished {
				<-done
			}
			if !fs.Crashed() {
				if rerr != nil {
					t.Fatalf("no crash but reshard failed: %v", rerr)
				}
				t.Skipf("crash point %d beyond this run's migration IO", p)
			}
			fs.Reboot()
			// Three restart cycles: each reopen resumes any journaled
			// migration; all must converge with every key intact.
			for cycle := 0; cycle < 3; cycle++ {
				o := durableReshardOpts(fs, 0, RangePartition)
				c2, err := OpenCluster(o)
				if err != nil {
					t.Fatalf("cycle %d: reopen: %v", cycle, err)
				}
				wait := time.Now().Add(20 * time.Second)
				for c2.Migrating() && time.Now().Before(wait) {
					time.Sleep(time.Millisecond)
				}
				if c2.Migrating() {
					t.Fatalf("cycle %d: resumed migration never finished", cycle)
				}
				s2 := c2.NewSession()
				for k := uint64(0); k < keys; k++ {
					v, ok, err := s2.Get(k * (1 << 56))
					if err != nil || !ok || v != k {
						t.Fatalf("cycle %d: key %d: %d,%v,%v", cycle, k, v, ok, err)
					}
				}
				sh, ep := c2.Shards(), c2.Epoch()
				if !(sh == 4 && ep == 1) && !(sh == 2 && ep == 0) {
					t.Fatalf("cycle %d: inconsistent topology shards=%d epoch=%d", cycle, sh, ep)
				}
				if cycle > 0 && sh != 4 {
					// Cycle 0 finished any journaled migration; later
					// cycles must see it committed (or never started, in
					// which case sh==2 stays — but then cycle 0 already
					// reported 2, which the assertion above allowed).
					_ = sh
				}
				c2.Close()
			}
		})
	}
}
