package eunomia

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"eunomia/internal/shard"
)

// This file is the online resharding engine: Cluster.Reshard changes the
// shard count while sessions keep serving. The paper's core move —
// splitting one contended HTM region into smaller independently-retryable
// pieces — is applied one level up: a contended shard is split into
// smaller independently-serving shards, with the migration running as the
// slow path beside normal routing's fast path.
//
// One migration runs at a time and proceeds move by move (a move is one
// ownership interval, enumerated by shard.EnumerateMoves). Per move:
//
//  1. Copy: snapshot-iterate the source's slice of the interval into the
//     destination. Concurrent writes to the interval are tracked in the
//     migration's dirty set (Session.routed notes them under the shared
//     side of the migration fence).
//  2. Catch-up: bounded drain passes re-read each dirty key from the
//     source and re-apply it to the destination, shrinking the window.
//  3. Cutover: take the fence exclusively (no operation is mid-flight on
//     the interval), drain the dirty set exactly, journal the new cut
//     watermark in the migration manifest, then flip the routing table.
//     The fence is held for one final drain plus one manifest commit —
//     the interval's only unavailability window.
//  4. Purge: once every scan that froze a pre-cutover routing view has
//     finished, delete the source's stale copies.
//
// Crash safety: the manifest (tmp+fsync+rename+dir-fsync, like every
// other manifest here) journals the cut and purge watermarks, so a crash
// at any IO point resumes exactly where authority stood: un-cut moves
// restart their copy (with a destination scrub, since the in-memory dirty
// set died with the process), cut-but-unpurged moves re-run their purge,
// and a crash between the final topology commit and manifest removal is
// recognized by the topology file's newer epoch.

// ErrMoved reports an operation whose key's ownership changed more times
// mid-flight than the redirect limit allows. Ops redirect transparently
// across a cutover; only topology churn outrunning the limit surfaces
// this.
var ErrMoved = errors.New("eunomia: key moved during operation")

// ErrReshardInProgress reports a Reshard call while a migration (possibly
// one resumed from a crash) is still running.
var ErrReshardInProgress = errors.New("eunomia: reshard already in progress")

// ErrTopologyMismatch reports a store whose recorded topology contradicts
// what the caller asked for (or, for a barrier from the cluster's future,
// what the store itself says). Match with errors.Is; the concrete
// *TopologyMismatchError carries the two sides.
var ErrTopologyMismatch = errors.New("eunomia: cluster topology mismatch")

// TopologyMismatchError reports the stored vs. requested/current topology
// behind an ErrTopologyMismatch.
type TopologyMismatchError struct {
	StoredEpoch, CurrentEpoch   uint64
	StoredShards, CurrentShards int
}

func (e *TopologyMismatchError) Error() string {
	return fmt.Sprintf(
		"eunomia: cluster topology mismatch: store has %d shards at epoch %d, caller/current has %d at epoch %d (open with Shards:0 to adopt the stored topology, or Reshard to change it)",
		e.StoredShards, e.StoredEpoch, e.CurrentShards, e.CurrentEpoch)
}

// Is makes every TopologyMismatchError match ErrTopologyMismatch.
func (e *TopologyMismatchError) Is(target error) bool { return target == ErrTopologyMismatch }

// ReshardOptions configures the migration engine.
type ReshardOptions struct {
	// CutBeforeCatchup DELIBERATELY skips the catch-up drains: intervals
	// cut over with whatever the bulk copy happened to see, so writes
	// accepted during the copy window are silently missing from the new
	// owner. Exists only so the crash fuzzer can prove the checker catches
	// a broken cutover protocol. Never enable outside tests.
	CutBeforeCatchup bool
}

// AutoSplitOptions configures the hot-shard watcher: a background loop
// that samples per-shard op counts and triggers Reshard(n+1) when one
// shard runs disproportionately hot.
type AutoSplitOptions struct {
	// Enable turns the watcher on (off by default).
	Enable bool
	// MaxShards caps automatic growth (default 16, hard cap 64).
	MaxShards int
	// HotFactor is the trigger ratio: split when the hottest shard served
	// more than HotFactor times the mean of the other shards over the
	// last window (default 4).
	HotFactor int
	// MinOps is the minimum cluster-wide ops per window before the
	// watcher acts at all — an idle cluster is never "hot" (default 4096).
	MinOps uint64
	// Interval is the sampling window (default 500ms).
	Interval time.Duration
}

func (o AutoSplitOptions) withDefaults() AutoSplitOptions {
	if o.MaxShards == 0 {
		o.MaxShards = 16
	}
	if o.MaxShards > 64 {
		o.MaxShards = 64
	}
	if o.HotFactor == 0 {
		o.HotFactor = 4
	}
	if o.MinOps == 0 {
		o.MinOps = 4096
	}
	if o.Interval == 0 {
		o.Interval = 500 * time.Millisecond
	}
	return o
}

// migration is one in-flight topology change's shared state.
type migration struct {
	from, to shard.Router
	moves    []shard.Move

	// fence is the copy/cutover synchronization: operations on un-cut
	// moving keys hold the read side for their whole execution; the
	// engine takes the write side for each interval's final drain +
	// cutover, so authority never flips under a mid-flight op.
	fence sync.RWMutex

	mu    sync.Mutex
	dirty map[uint64]struct{} // keys written during the active move's copy

	cut    int // moves [0, cut) have flipped to their destinations
	purged int // moves [0, purged) also had their source copies deleted
	// cutGen is the routing generation installed by the latest cutover
	// (or by BeginReshard on resume): a merged scan frozen at an earlier
	// generation may still route this migration's moved keys to their
	// sources, so purges wait for those scans to drain.
	cutGen uint64

	done chan struct{}
	err  error
}

func newMigration(from, to shard.Router, cut, purged int) *migration {
	return &migration{
		from:   from,
		to:     to,
		moves:  shard.EnumerateMoves(from, to),
		dirty:  map[uint64]struct{}{},
		cut:    cut,
		purged: purged,
		done:   make(chan struct{}),
	}
}

// note records a write to the interval currently being copied; the
// catch-up drains re-read the key from the source and re-apply it.
func (m *migration) note(key uint64) {
	m.mu.Lock()
	m.dirty[key] = struct{}{}
	m.mu.Unlock()
}

// swapDirty takes the whole dirty set, installing a fresh one. Any write
// landing after the swap notes into the fresh set and is picked up by a
// later pass; the fenced final pass runs with no concurrent writers, so
// one swap there empties the set exactly.
func (m *migration) swapDirty() map[uint64]struct{} {
	m.mu.Lock()
	d := m.dirty
	m.dirty = map[uint64]struct{}{}
	m.mu.Unlock()
	return d
}

// Reshard changes the cluster to n shards online: sessions keep serving
// throughout, with each key interval unavailable only for its own brief
// fenced cutover. Blocks until the migration completes (or fails); at
// most one topology change runs at a time (ErrReshardInProgress
// otherwise — including a migration resumed from a crash that is still
// catching up). Must not be called from inside a Range/Scan loop on the
// same goroutine: the engine waits for live scans before retiring data.
//
// On a durable cluster the migration journals its progress in a manifest
// next to the barrier, so a crash at any point — including mid-copy,
// mid-cutover, or between the final topology commit and cleanup — is
// resumed (or recognized as complete) by the next OpenCluster.
func (c *Cluster) Reshard(n int) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if n < 1 || n > 64 {
		return fmt.Errorf("eunomia: reshard to %d shards (want 1..64)", n)
	}
	if !c.reshardMu.TryLock() {
		return ErrReshardInProgress
	}
	defer c.reshardMu.Unlock()
	if c.mig.Load() != nil || c.table.Migrating() {
		return ErrReshardInProgress
	}
	v := c.table.View()
	cur := v.Shards()
	if n == cur {
		return nil
	}
	// Never migrate off — or onto — a tripped shard: the engine would
	// immediately stall against the breaker, holding the topology in its
	// least legible state. Let repair win first.
	for i := 0; i < cur; i++ {
		if c.healthOn && !c.shard(i).health.Allow() {
			return fmt.Errorf("eunomia: reshard: %w", c.unavailable(i))
		}
	}
	from := v.Target()
	to := shard.New(n, from.Partition())
	// A split opens the destination slots before anything is journaled (a
	// crash here leaves only empty directories, which the next split wipes
	// again; wiping first clears debris from a migration that completed —
	// and retired these slots — but crashed before cleanup). They are NOT
	// published into the serving slice yet: a failed manifest write below
	// must leave Shards()/Metrics reporting the topology that actually
	// serves, and must not leave open DB handles behind for a retry's wipe
	// to pull the rug from under.
	var opened []*clusterShard
	if n > cur {
		for i := cur; i < n; i++ {
			o := c.opts.Shard
			if o.Durability.Dir != "" {
				o.Durability.Dir = shardDirName(c.dir, i)
				if err := c.wipeDir(o.Durability.Dir); err != nil {
					err = fmt.Errorf("eunomia: reshard: wipe shard %d: %w", i, err)
					return errors.Join(append([]error{err}, closeAll(opened)...)...)
				}
			}
			if c.opts.PerShard != nil {
				c.opts.PerShard(i, &o)
			}
			db, err := Open(o)
			if err != nil {
				err = fmt.Errorf("eunomia: reshard: open shard %d: %w", i, err)
				return errors.Join(append([]error{err}, closeAll(opened)...)...)
			}
			sh := &clusterShard{idx: i, opts: o, health: shard.NewHealth(c.healthCfg)}
			sh.db.Store(db)
			opened = append(opened, sh)
		}
	}
	m := newMigration(from, to, 0, 0)
	if c.dir != "" {
		if err := c.writeReshardManifest(m, 0, 0); err != nil {
			// Nothing routed or published yet: abandon cleanly, closing the
			// slots opened above (their wiped-then-empty directories are
			// harmless debris a later split wipes again).
			err = fmt.Errorf("eunomia: reshard: manifest: %w", err)
			return errors.Join(append([]error{err}, closeAll(opened)...)...)
		}
	}
	// Register the engine goroutine under the same closed re-check barrier
	// startRepair uses: Close's migWG.Wait either observes this Add, or we
	// observe closed here and stand down — an Add racing a Wait-at-zero is
	// documented WaitGroup misuse. A manifest already committed above is
	// fine on the stand-down path: the next OpenCluster resumes the
	// migration, exactly as after a Close mid-flight.
	c.repairMu.Lock()
	if c.closed.Load() {
		c.repairMu.Unlock()
		return errors.Join(append([]error{ErrClosed}, closeAll(opened)...)...)
	}
	c.migWG.Add(1)
	c.repairMu.Unlock()
	if len(opened) > 0 {
		list := c.shardList()
		grown := make([]*clusterShard, 0, n)
		grown = append(grown, list...)
		grown = append(grown, opened...)
		c.shards.Store(&grown)
	}
	c.mig.Store(m)
	m.cutGen = c.table.BeginReshard(to, 0).Gen
	go c.runMigration(m, false)
	<-m.done
	return m.err
}

// runMigration drives one migration to completion (or to cluster close,
// leaving the manifest for the next incarnation to resume).
func (c *Cluster) runMigration(m *migration, resumed bool) {
	defer c.migWG.Done()
	defer close(m.done)
	// Grace period: an operation that loaded a stable pre-migration view
	// took the fenceless fast path, so one delayed between routing and its
	// tree write could land on a source shard after its interval was
	// copied, drained, and cut over — an acknowledged write the new owner
	// never sees (and, on a merge, an index into a since-truncated shard
	// slice). Quiesce every registered session before the first copy or
	// purge: anything routed after this observes the migration view and
	// either takes the fence or is safe fenceless.
	c.quiesceSessions()
	// Purge backlog first: moves already cut over in a previous life may
	// still hold stale source copies.
	for mi := m.purged; mi < m.cut; mi++ {
		if !c.purgeMove(m, mi) {
			m.err = c.migAborted()
			return
		}
	}
	for mi := m.cut; mi < len(m.moves); mi++ {
		// A resumed migration's active move restarts with a destination
		// scrub: the dirty set died with the previous process, so a
		// partially-caught-up destination may hold stale values (or
		// resurrected deletes) the fresh copy would not overwrite.
		if !c.copyMove(m, mi, resumed && mi == m.cut) {
			m.err = c.migAborted()
			return
		}
		if !c.purgeMove(m, mi) {
			m.err = c.migAborted()
			return
		}
		c.movesDone.Add(1)
	}
	m.err = c.finalizeReshard(m)
}

// migAborted names why the engine stopped without finishing.
func (c *Cluster) migAborted() error {
	if c.closed.Load() {
		return ErrClosed
	}
	return fmt.Errorf("eunomia: reshard: %w", ErrShardUnavailable)
}

// copyMove runs move mi's copy + catch-up + fenced cutover, retrying
// through transient shard failures (each attempt re-waits both breakers
// and re-threads against the current DBs, since repair swaps them).
// Returns false when the cluster is closing or a shard is permanently
// gone.
func (c *Cluster) copyMove(m *migration, mi int, scrub bool) bool {
	for attempt := 0; ; attempt++ {
		if !c.waitShard(m.moves[mi].Src) || !c.waitShard(m.moves[mi].Dst) {
			return false
		}
		// Any retry re-scrubs: a delete tracked only in the dirty set may
		// have been lost by the failed attempt, leaving a resurrected key
		// on the destination that a plain re-copy would never remove.
		if err := c.tryCopyMove(m, mi, scrub || attempt > 0); err == nil {
			return true
		}
		if !c.sleepUnlessClosed(time.Millisecond) {
			return false
		}
	}
}

// tryCopyMove is one copy attempt for move mi. Shard failures are scored
// against the owning breaker (tripping it engages repair) and returned.
func (c *Cluster) tryCopyMove(m *migration, mi int, scrub bool) error {
	mv := m.moves[mi]
	src, dst := c.shard(mv.Src), c.shard(mv.Dst)
	sdb, ddb := src.db.Load(), dst.db.Load()
	sth, dth := sdb.NewThread(), ddb.NewThread()
	v := c.table.View()
	inMove := func(k uint64) bool {
		ami, ok := v.MoveOf(k)
		return ok && ami == mi
	}
	if scrub {
		if err := c.scanInterval(dth, mv.Lo, mv.Hi, func(k, _ uint64) error {
			if !inMove(k) {
				return nil
			}
			_, err := dth.Delete(k)
			return err
		}); err != nil {
			return c.scoreMaintErr(dst, err)
		}
	}
	// Bulk copy. Writers race this scan freely; everything they touch is
	// in the dirty set and re-applied by the drains below.
	if err := c.copyInterval(sth, dth, mv, inMove); err != nil {
		return err
	}
	if !c.opts.Reshard.CutBeforeCatchup {
		// Bounded pre-fence drains shrink the dirty window so the fenced
		// final drain — the only part writers wait on — is near-empty.
		for pass := 0; pass < 8; pass++ {
			n, err := c.drainDirty(m, sth, dth, mv)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
		}
	}
	m.fence.Lock()
	if !c.opts.Reshard.CutBeforeCatchup {
		// Exact final drain: the fence excludes writers, so one pass
		// empties the set.
		if _, err := c.drainDirty(m, sth, dth, mv); err != nil {
			m.fence.Unlock()
			return err
		}
	}
	if c.dir != "" {
		// Journal the cut before flipping routing: a crash after the
		// manifest commit resumes with the destination authoritative —
		// which is sound, because the drain above already completed. The
		// reverse order could ack post-flip writes on the destination and
		// then resume routing to a source that never saw them. Single
		// attempt: writers are blocked on the fence, so a dead manifest
		// disk must fail the attempt, not hold the cluster.
		if err := c.writeReshardManifest(m, mi+1, m.purged); err != nil {
			m.fence.Unlock()
			return err
		}
	}
	m.swapDirty() // next move starts with a clean set
	nv := c.table.CutOver(mi)
	m.cut = mi + 1
	m.cutGen = nv.Gen
	m.fence.Unlock()
	return nil
}

// copyInterval pages move mv's keys from source to destination.
func (c *Cluster) copyInterval(sth, dth *Thread, mv shard.Move, inMove func(uint64) bool) error {
	src, dst := c.shard(mv.Src), c.shard(mv.Dst)
	from := mv.Lo
	for {
		if c.closed.Load() {
			return ErrClosed
		}
		var page []kvPair
		err := c.scanPage(sth, &from, mv.Hi, func(k, val uint64) {
			if inMove(k) {
				page = append(page, kvPair{k, val})
			}
		})
		if err != nil && err != errScanDone {
			return c.scoreMaintErr(src, err)
		}
		for _, p := range page {
			if perr := dth.Put(p.k, p.v); perr != nil {
				return c.scoreMaintErr(dst, perr)
			}
		}
		if err == errScanDone {
			return nil
		}
	}
}

// errScanDone is scanPage's "interval exhausted" signal.
var errScanDone = errors.New("scan done")

// scanPage reads one page of [*from, hi] from th, advancing *from past
// the raw keys seen. Returns errScanDone when the interval is exhausted
// after delivering the page's keys.
func (c *Cluster) scanPage(th *Thread, from *uint64, hi uint64, fn func(k, v uint64)) error {
	raw, past := 0, false
	var lastRaw uint64
	if _, err := th.Scan(*from, clusterRangeBatch, func(k, v uint64) bool {
		if k > hi {
			past = true
			return false
		}
		raw++
		lastRaw = k
		fn(k, v)
		return true
	}); err != nil {
		return err
	}
	if raw == 0 || past || raw < clusterRangeBatch || lastRaw >= hi || lastRaw == ^uint64(0) {
		return errScanDone
	}
	*from = lastRaw + 1
	return nil
}

// scanInterval visits every key in [lo, hi] on th, applying fn (which may
// mutate th's shard — pages re-anchor by key, not position).
func (c *Cluster) scanInterval(th *Thread, lo, hi uint64, fn func(k, v uint64) error) error {
	from := lo
	for {
		if c.closed.Load() {
			return ErrClosed
		}
		var page []kvPair
		err := c.scanPage(th, &from, hi, func(k, v uint64) {
			page = append(page, kvPair{k, v})
		})
		if err != nil && err != errScanDone {
			return err
		}
		for _, p := range page {
			if ferr := fn(p.k, p.v); ferr != nil {
				return ferr
			}
		}
		if err == errScanDone {
			return nil
		}
	}
}

// drainDirty takes the current dirty set and re-applies each key's
// present source state to the destination (Put if present, Delete if
// not) — order-free, because the value is re-read at drain time rather
// than replayed from a log. Returns how many keys were drained. On
// error the un-applied keys are lost from tracking; the caller's retry
// re-scrubs, which re-establishes them from the source wholesale.
func (c *Cluster) drainDirty(m *migration, sth, dth *Thread, mv shard.Move) (int, error) {
	d := m.swapDirty()
	src, dst := c.shard(mv.Src), c.shard(mv.Dst)
	for k := range d {
		val, ok, err := sth.Get(k)
		if err != nil {
			return 0, c.scoreMaintErr(src, err)
		}
		if ok {
			err = dth.Put(k, val)
		} else {
			_, err = dth.Delete(k)
		}
		if err != nil {
			return 0, c.scoreMaintErr(dst, err)
		}
	}
	return len(d), nil
}

// purgeMove deletes move mi's stale source copies once no live scan can
// still be routing the interval's reads to the source. Retries through
// transient failures; false means closing or permanently failed.
func (c *Cluster) purgeMove(m *migration, mi int) bool {
	if !c.waitScansBefore(m.cutGen) {
		return false
	}
	for {
		if !c.waitShard(m.moves[mi].Src) {
			return false
		}
		if err := c.tryPurgeMove(m, mi); err == nil {
			break
		}
		if !c.sleepUnlessClosed(time.Millisecond) {
			return false
		}
	}
	if c.dir == "" {
		m.purged = mi + 1
		return true
	}
	for {
		if err := c.writeReshardManifest(m, m.cut, mi+1); err == nil {
			m.purged = mi + 1
			return true
		}
		if !c.sleepUnlessClosed(time.Millisecond) {
			return false
		}
	}
}

// tryPurgeMove is one purge attempt: delete every move-mi key from the
// source. Idempotent — a crashed or failed purge just re-runs.
func (c *Cluster) tryPurgeMove(m *migration, mi int) error {
	mv := m.moves[mi]
	src := c.shard(mv.Src)
	sth := src.db.Load().NewThread()
	v := c.table.View()
	err := c.scanInterval(sth, mv.Lo, mv.Hi, func(k, _ uint64) error {
		if ami, ok := v.MoveOf(k); !ok || ami != mi {
			return nil
		}
		_, derr := sth.Delete(k)
		return derr
	})
	if err != nil && !errors.Is(err, ErrClosed) {
		return c.scoreMaintErr(src, err)
	}
	return err
}

// finalizeReshard commits the new topology, retires merged-away slots,
// and removes the migration manifest. Order matters: the topology file's
// epoch bump is the migration's commit point — a crash after it (before
// manifest removal) is recognized by resolveTopology as "complete, drop
// the manifest".
func (c *Cluster) finalizeReshard(m *migration) error {
	if c.dir != "" {
		for {
			if err := c.writeTopology(c.table.Epoch()+1, m.to.Shards(), m.to.Partition()); err == nil {
				break
			}
			if !c.sleepUnlessClosed(time.Millisecond) {
				return ErrClosed
			}
		}
	}
	fin := c.table.Finish()
	// Scans frozen on a migration-era view may still read retiring slots
	// (and rely on stale copies the view routes them to): let them drain
	// before anything is closed or wiped.
	if !c.waitScansBefore(fin.Gen) {
		// Closing: the topology is committed; only cleanup is skipped,
		// and the retired slots' debris is wiped by a future split.
		c.mig.Store(nil)
		return ErrClosed
	}
	list := c.shardList()
	if fin.Shards() < len(list) {
		kept := make([]*clusterShard, fin.Shards())
		copy(kept, list[:fin.Shards()])
		c.shards.Store(&kept)
		for _, sh := range list[fin.Shards():] {
			if db := sh.db.Load(); db != nil {
				db.Close()
			}
			if sh.opts.Durability.Dir != "" {
				c.wipeDir(sh.opts.Durability.Dir)
			}
		}
	}
	if c.dir != "" {
		c.fs.Remove(c.dir + "/" + reshardFile)
		c.fs.SyncDir(c.dir)
	}
	c.mig.Store(nil)
	return nil
}

// waitShard blocks until shard i's breaker admits traffic. False means
// the cluster is closing or the shard is permanently gone (its disk
// rolled back past the durable watermark — no migration can complete).
func (c *Cluster) waitShard(i int) bool {
	for {
		if c.closed.Load() {
			return false
		}
		sh := c.shard(i)
		if !c.healthOn || sh.health.Allow() {
			return true
		}
		if sh.health.Permanent() {
			return false
		}
		if !c.sleepUnlessClosed(2 * time.Millisecond) {
			return false
		}
	}
}

// quiesceSessions waits, one session at a time, for every operation in
// flight at the time of the call to finish: each registered Session's
// guard is taken exclusively once and released. Sessions created after
// the registry snapshot route under the already-installed migration view
// (NewSession's registration orders after BeginReshard's store through
// sessMu), so a rolling barrier suffices — the property needed is only
// that no operation which routed under a pre-migration view is still in
// flight once this returns.
func (c *Cluster) quiesceSessions() {
	c.sessMu.Lock()
	sess := make([]*Session, 0, len(c.sessions))
	for s := range c.sessions {
		sess = append(sess, s)
	}
	c.sessMu.Unlock()
	for _, s := range sess {
		s.guard.Lock()
		s.guard.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
}

// scanFreeze freezes a routing view for a merged scan and registers it
// with the live-scan registry, closing the load-then-register race: a
// cutover plus purge landing between the View load and scanEnter would
// pass its scan wait without seeing this scan, then delete source copies
// the frozen view still routes reads to. Registering first and then
// re-checking the generation makes that impossible — if the table still
// reports the registered generation, any later purge wait is ordered
// after the registration (both sides serialize through scanMu and the
// table's atomic view pointer); if not, unregister and re-freeze on the
// newer view.
func (c *Cluster) scanFreeze() *shard.View {
	for {
		v := c.table.View()
		c.scanEnter(v.Gen)
		if c.table.Gen() == v.Gen {
			return v
		}
		c.scanExit(v.Gen)
	}
}

// scanEnter registers a merged scan frozen at routing generation gen.
func (c *Cluster) scanEnter(gen uint64) {
	c.scanMu.Lock()
	c.scans[gen]++
	c.scanMu.Unlock()
}

// scanExit unregisters it.
func (c *Cluster) scanExit(gen uint64) {
	c.scanMu.Lock()
	if c.scans[gen]--; c.scans[gen] <= 0 {
		delete(c.scans, gen)
	}
	c.scanMu.Unlock()
}

// scansBefore reports whether any live scan froze a view older than gen.
func (c *Cluster) scansBefore(gen uint64) bool {
	c.scanMu.Lock()
	defer c.scanMu.Unlock()
	for g, n := range c.scans {
		if g < gen && n > 0 {
			return true
		}
	}
	return false
}

// waitScansBefore blocks until no scan older than gen survives (false on
// close).
func (c *Cluster) waitScansBefore(gen uint64) bool {
	for c.scansBefore(gen) {
		if !c.sleepUnlessClosed(time.Millisecond) {
			return false
		}
	}
	return !c.closed.Load()
}

// autoSplitLoop is the hot-shard watcher: every Interval it compares each
// shard's served-op delta against the others' mean and splits when one
// runs disproportionately hot.
func (c *Cluster) autoSplitLoop() {
	defer c.migWG.Done()
	o := c.opts.AutoSplit.withDefaults()
	for {
		if !c.sleepUnlessClosed(o.Interval) {
			return
		}
		if c.mig.Load() != nil || c.table.Migrating() {
			continue
		}
		list := c.shardList()
		var total, hot uint64
		for _, sh := range list {
			cur := sh.ops.Load()
			d := cur - sh.lastOps
			sh.lastOps = cur
			total += d
			if d > hot {
				hot = d
			}
		}
		if total < o.MinOps || len(list) >= o.MaxShards {
			continue
		}
		// Compare the hottest shard against the mean of the rest: against
		// the overall mean, a perfectly-skewed load could never exceed
		// factor * mean once factor >= shard count.
		split := false
		if len(list) == 1 {
			split = true // one shard holding a hot load is definitionally hot
		} else {
			others := (total - hot) / uint64(len(list)-1)
			split = hot > uint64(o.HotFactor)*others
		}
		if split {
			if err := c.Reshard(len(list) + 1); err == nil {
				c.autoSplits.Add(1)
			}
		}
	}
}

// --- topology resolution & manifest IO ---------------------------------

// reshardFile journals the in-flight migration; topologyFile records the
// committed topology. Both live in the cluster root next to the barrier.
const (
	reshardFile  = "cluster-reshard"
	topologyFile = "cluster-topology"
)

// commitFile writes name's content crash-atomically in the cluster root:
// tmp + fsync + rename + dir-fsync, the discipline every manifest here
// shares.
func (c *Cluster) commitFile(name, content string) error {
	tmp := c.dir + "/" + name + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(content))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = c.fs.Rename(tmp, c.dir+"/"+name)
	}
	if err != nil {
		c.fs.Remove(tmp)
		return err
	}
	return c.fs.SyncDir(c.dir)
}

// reshardManifest is the parsed migration journal.
type reshardManifest struct {
	epoch    uint64
	from, to int
	part     shard.Partition
	cut      int
	purged   int
}

// writeReshardManifest journals the migration at the given watermarks.
// The per-move lines are derivable from the header (the watermarks fix
// every state) but make a half-dead cluster legible from the shell.
func (c *Cluster) writeReshardManifest(m *migration, cut, purged int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "euno-cluster-reshard v1 epoch=%d from=%d to=%d part=%d cut=%d purged=%d moves=%d\n",
		c.table.Epoch(), m.from.Shards(), m.to.Shards(), int(m.from.Partition()), cut, purged, len(m.moves))
	for i, mv := range m.moves {
		fmt.Fprintf(&b, "move %d src=%d dst=%d lo=%d hi=%d state=%s\n",
			i, mv.Src, mv.Dst, mv.Lo, mv.Hi, shard.StateAt(i, cut, purged))
	}
	return c.commitFile(reshardFile, b.String())
}

// readReshardManifest loads the migration journal; (nil, nil) when none
// exists.
func (c *Cluster) readReshardManifest() (*reshardManifest, error) {
	if !c.rootHas(reshardFile) {
		return nil, nil
	}
	f, err := c.fs.Open(c.dir + "/" + reshardFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("eunomia: reshard manifest empty")
	}
	man := &reshardManifest{}
	var part, moves int
	if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-reshard v1 epoch=%d from=%d to=%d part=%d cut=%d purged=%d moves=%d",
		&man.epoch, &man.from, &man.to, &part, &man.cut, &man.purged, &moves); err != nil {
		return nil, fmt.Errorf("eunomia: reshard manifest header %q: %v", sc.Text(), err)
	}
	if part != int(shard.Hash) && part != int(shard.Range) {
		return nil, fmt.Errorf("eunomia: reshard manifest partition %d", part)
	}
	man.part = shard.Partition(part)
	if man.from < 1 || man.from > 64 || man.to < 1 || man.to > 64 ||
		man.cut < 0 || man.cut > moves || man.purged < 0 || man.purged > man.cut {
		return nil, fmt.Errorf("eunomia: reshard manifest inconsistent: %+v moves=%d", *man, moves)
	}
	for i := 0; i < moves; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("eunomia: reshard manifest truncated at move %d", i)
		}
		var mi, src, dst int
		var lo, hi uint64
		var state string
		if _, err := fmt.Sscanf(sc.Text(), "move %d src=%d dst=%d lo=%d hi=%d state=%s",
			&mi, &src, &dst, &lo, &hi, &state); err != nil || mi != i {
			return nil, fmt.Errorf("eunomia: reshard manifest line %q", sc.Text())
		}
		if _, err := shard.ParseMoveState(state); err != nil {
			return nil, fmt.Errorf("eunomia: reshard manifest: %v", err)
		}
	}
	return man, sc.Err()
}

// writeTopology commits the stable topology record.
func (c *Cluster) writeTopology(epoch uint64, shards int, part shard.Partition) error {
	return c.commitFile(topologyFile,
		fmt.Sprintf("euno-cluster-topology v1 epoch=%d shards=%d part=%d\n", epoch, shards, int(part)))
}

// topologyRecord is the parsed topology file.
type topologyRecord struct {
	epoch  uint64
	shards int
	part   shard.Partition
}

// readTopology loads the topology record; (nil, nil) when none exists
// (a cluster that never resharded).
func (c *Cluster) readTopology() (*topologyRecord, error) {
	if !c.rootHas(topologyFile) {
		return nil, nil
	}
	f, err := c.fs.Open(c.dir + "/" + topologyFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("eunomia: topology record empty")
	}
	rec := &topologyRecord{}
	var part int
	if _, err := fmt.Sscanf(sc.Text(), "euno-cluster-topology v1 epoch=%d shards=%d part=%d",
		&rec.epoch, &rec.shards, &part); err != nil {
		return nil, fmt.Errorf("eunomia: topology record header %q: %v", sc.Text(), err)
	}
	if rec.shards < 1 || rec.shards > 64 || (part != int(shard.Hash) && part != int(shard.Range)) {
		return nil, fmt.Errorf("eunomia: topology record inconsistent: %q", sc.Text())
	}
	rec.part = shard.Partition(part)
	return rec, nil
}

// rootHas reports whether name exists in the cluster root.
func (c *Cluster) rootHas(name string) bool {
	names, err := c.fs.List(c.dir)
	if err != nil {
		return false
	}
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// wipeDir empties dir (creating it if missing) and fsyncs the entry
// removals — used before opening a fresh destination slot and after
// retiring a merged-away one.
func (c *Cluster) wipeDir(dir string) error {
	if err := c.fs.MkdirAll(dir); err != nil {
		return err
	}
	names, err := c.fs.List(dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := c.fs.Remove(dir + "/" + n); err != nil {
			return err
		}
	}
	return c.fs.SyncDir(dir)
}

// topology is resolveTopology's answer: how many shard slots to open,
// the stable (pre-migration) topology for the routing table, and the
// migration to resume, if any.
type topology struct {
	slots  int
	stable int
	part   shard.Partition
	epoch  uint64
	man    *reshardManifest
	// recorded reports whether the store itself already records this
	// topology (record or manifest). When false on a durable cluster,
	// OpenCluster writes the record eagerly, so the count is never again
	// guessed from Options after a crash.
	recorded bool
}

// resolveTopology decides the cluster's shape from, in precedence order:
// the migration manifest (a reshard was in flight), the topology record
// (a reshard completed), the barrier manifest's header (pre-resharding
// stores), and finally the caller's Options. Options.Shards == 0 adopts
// whatever the store says; a non-zero count that contradicts the store is
// a typed ErrTopologyMismatch, never a silent reinterpretation.
func (c *Cluster) resolveTopology() (topology, error) {
	part := c.opts.Partition.internal()
	want := c.opts.Shards
	top := topology{part: part}
	var storedN int
	var storedEpoch uint64
	haveStored := false
	if c.dir != "" {
		rec, err := c.readTopology()
		if err != nil {
			return top, err
		}
		man, err := c.readReshardManifest()
		if err != nil {
			return top, err
		}
		if man != nil && rec != nil && rec.epoch > man.epoch {
			// The migration committed (topology record written) but the
			// crash hit before manifest removal: it is complete, not
			// resumable.
			c.fs.Remove(c.dir + "/" + reshardFile)
			c.fs.SyncDir(c.dir)
			man = nil
		}
		if rec != nil {
			top.recorded = true
			storedN, storedEpoch, haveStored = rec.shards, rec.epoch, true
			if rec.part != part {
				if c.opts.Partition != HashPartition {
					return top, fmt.Errorf("eunomia: store is %v-partitioned, options say %v: %w",
						rec.part, c.opts.Partition, ErrTopologyMismatch)
				}
				part = rec.part
				top.part = part
			}
		} else if man == nil {
			bar, err := c.readBarrier()
			if err != nil {
				return top, err
			}
			if bar != nil {
				storedN, storedEpoch, haveStored = len(bar.vec), bar.epoch, true
			}
		}
		if man != nil {
			if man.part != part {
				if c.opts.Partition != HashPartition {
					return top, fmt.Errorf("eunomia: store is %v-partitioned, options say %v: %w",
						man.part, c.opts.Partition, ErrTopologyMismatch)
				}
				part = man.part
				top.part = part
			}
			// Mid-migration the caller may know either era's count; both
			// adopt the resume. Anything else is a real contradiction.
			if want != 0 && want != man.from && want != man.to {
				return top, &TopologyMismatchError{
					StoredEpoch: man.epoch, CurrentEpoch: man.epoch,
					StoredShards: man.to, CurrentShards: want,
				}
			}
			top.stable = man.from
			top.epoch = man.epoch
			top.man = man
			top.recorded = true
			top.slots = man.from
			if man.to > top.slots {
				top.slots = man.to
			}
			return top, nil
		}
	}
	if haveStored {
		if want != 0 && want != storedN {
			return top, &TopologyMismatchError{
				StoredEpoch: storedEpoch, CurrentEpoch: storedEpoch,
				StoredShards: storedN, CurrentShards: want,
			}
		}
		top.stable, top.epoch = storedN, storedEpoch
	} else {
		if want == 0 {
			want = 4
		}
		top.stable = want
	}
	top.slots = top.stable
	return top, nil
}
