package eunomia_test

import (
	"fmt"

	"eunomia"
)

// Example demonstrates basic point operations.
func Example() {
	db, err := eunomia.Open(eunomia.Options{ArenaWords: 1 << 20})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	th := db.NewThread()
	th.Put(7, 700)
	if v, ok, _ := th.Get(7); ok {
		fmt.Println("value:", v)
	}
	th.Delete(7)
	_, ok, _ := th.Get(7)
	fmt.Println("present after delete:", ok)
	// Output:
	// value: 700
	// present after delete: false
}

// ExampleThread_Scan shows ordered range queries over the partitioned
// leaves.
func ExampleThread_Scan() {
	db, _ := eunomia.Open(eunomia.Options{ArenaWords: 1 << 20})
	defer db.Close()
	th := db.NewThread()
	for k := uint64(10); k <= 50; k += 10 {
		th.Put(k, k*k)
	}
	th.Scan(15, 3, func(k, v uint64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 20 400
	// 30 900
	// 40 1600
}

// ExampleThread_Range is the range-over-func form of Scan: iterate the
// key/value pairs in a closed interval [from, to] with a plain for-range
// loop. Scan remains the right call when you want an explicit count limit
// or need the closed-DB error.
func ExampleThread_Range() {
	db, _ := eunomia.Open(eunomia.Options{ArenaWords: 1 << 20})
	defer db.Close()
	th := db.NewThread()
	for k := uint64(10); k <= 50; k += 10 {
		th.Put(k, k*k)
	}
	for k, v := range th.Range(15, 40) {
		fmt.Println(k, v)
	}
	// Output:
	// 20 400
	// 30 900
	// 40 1600
}

// ExampleDB_Metrics reads the unified metrics snapshot: transactional
// counters with the abort-reason decomposition, resilience, memory, tree
// maintenance, durability, and (when enabled) the contention heatmap —
// one coherent view replacing the per-subsystem accessors.
func ExampleDB_Metrics() {
	db, _ := eunomia.Open(eunomia.Options{
		ArenaWords:    1 << 20,
		Observability: eunomia.Observability{Heatmap: true},
	})
	defer db.Close()
	th := db.NewThread()
	for i := uint64(0); i < 100; i++ {
		th.Put(i, i)
	}
	m := db.Metrics()
	fmt.Println("committed:", m.Tx.Commits > 0)
	fmt.Println("live bytes tracked:", m.Memory.LiveBytes > 0)
	fmt.Println("heatmap enabled:", m.Contention.Enabled)
	// Output:
	// committed: true
	// live bytes tracked: true
	// heatmap enabled: true
}

// ExampleDB_RunVirtual runs a deterministic parallel workload in virtual
// time: sixteen virtual cores insert disjoint ranges concurrently.
func ExampleDB_RunVirtual() {
	db, _ := eunomia.Open(eunomia.Options{ArenaWords: 1 << 22})
	res := db.RunVirtual(16, func(t *eunomia.Thread) {
		// Each virtual core gets its own Thread; stats are aggregated.
		for i := uint64(0); i < 100; i++ {
			t.Put(i*16+1, i)
		}
	})
	fmt.Println("committed operations:", res.Stats.Commits > 0)
	fmt.Println("virtual time advanced:", res.Cycles > 0)
	// Output:
	// committed operations: true
	// virtual time advanced: true
}

// ExampleOptions_ablation builds the paper's "+Split HTM" configuration by
// disabling the later Eunomia guidelines.
func ExampleOptions() {
	db, err := eunomia.Open(eunomia.Options{
		Kind: eunomia.EunoBTree,
		Euno: eunomia.Tuning{
			DisablePartLeaf:    true,
			DisableCCMLockBits: true,
			DisableCCMMarkBits: true,
			DisableAdaptive:    true,
		},
		ArenaWords: 1 << 20,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(db.Kind())
	// Output:
	// Euno-B+Tree
}
