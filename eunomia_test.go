package eunomia

import (
	"sync"
	"testing"
)

func TestOpenDefaultsAndQuickPath(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Kind() != EunoBTree {
		t.Fatalf("default kind = %v", db.Kind())
	}
	th := db.NewThread()
	if err := th.Put(10, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := th.Get(10); !ok || v != 100 {
		t.Fatalf("get = %d,%v", v, ok)
	}
	if _, ok, _ := th.Get(11); ok {
		t.Fatal("phantom key")
	}
	if ok, _ := th.Delete(10); !ok {
		t.Fatal("delete failed")
	}
	if ok, _ := th.Delete(10); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestOpenAllKinds(t *testing.T) {
	for _, k := range []Kind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		db, err := Open(Options{Kind: k, ArenaWords: 1 << 20})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		th := db.NewThread()
		for i := uint64(1); i <= 200; i++ {
			if err := th.Put(i, i*2); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(1); i <= 200; i++ {
			if v, ok, _ := th.Get(i); !ok || v != i*2 {
				t.Fatalf("%v: get(%d) = %d,%v", k, i, v, ok)
			}
		}
		n, _ := th.Scan(50, 10, func(k, v uint64) bool { return true })
		if n != 10 {
			t.Fatalf("%v: scan visited %d", k, n)
		}
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestReservedValueRejected(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 18})
	th := db.NewThread()
	if err := th.Put(1, ^uint64(0)); err != ErrReservedValue {
		t.Fatalf("err = %v", err)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open(Options{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Open(Options{Euno: Tuning{StableCap: 3}}); err == nil {
		t.Fatal("bad tuning accepted")
	}
}

func TestTuningAblation(t *testing.T) {
	db, err := Open(Options{Euno: Tuning{
		DisablePartLeaf:    true,
		DisableCCMLockBits: true,
		DisableCCMMarkBits: true,
		DisableAdaptive:    true,
	}, ArenaWords: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th := db.NewThread()
	for i := uint64(1); i <= 500; i++ {
		th.Put(i, i)
	}
	for i := uint64(1); i <= 500; i++ {
		if _, ok, _ := th.Get(i); !ok {
			t.Fatalf("lost key %d in +SplitHTM configuration", i)
		}
	}
}

func TestConcurrentWallThreads(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22, YieldEvery: 64})
	var wg sync.WaitGroup
	const workers, per = 6, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := db.NewThread()
			base := uint64(w*per) + 1
			for i := uint64(0); i < per; i++ {
				th.Put(base+i, base+i)
			}
		}(w)
	}
	wg.Wait()
	th := db.NewThread()
	for k := uint64(1); k <= workers*per; k++ {
		if v, ok, _ := th.Get(k); !ok || v != k {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestRunVirtualDeterministic(t *testing.T) {
	run := func() VirtualResult {
		db, _ := Open(Options{ArenaWords: 1 << 22})
		return db.RunVirtual(4, func(t *Thread) {
			for i := uint64(1); i <= 300; i++ {
				t.Put(i, i)
			}
		})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Stats.Commits != b.Stats.Commits {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Cycles == 0 || a.Seconds <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if a.Stats.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

func TestStatsAndMemory(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 20})
	th := db.NewThread()
	for i := uint64(1); i <= 300; i++ {
		th.Put(i, i)
	}
	s := th.Stats()
	if s.Commits == 0 {
		t.Fatal("no commits")
	}
	m := db.Metrics().Memory
	if m.LiveBytes <= 0 || m.PeakBytes < m.LiveBytes {
		t.Fatalf("memory stats: %+v", m)
	}
	if m.CCMBytes <= 0 {
		t.Fatal("no CCM accounting")
	}
	if m.ReservedBytes != 0 {
		t.Fatalf("reserved bytes leaked: %d", m.ReservedBytes)
	}
}

// TestPublicAPIContentionShape reproduces the headline result end-to-end
// through the public API alone: under a contended Zipfian mix in virtual
// time, the Eunomia tree must beat the monolithic baseline.
func TestPublicAPIContentionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("contention shape needs paper-scale parameters")
	}
	run := func(kind Kind) (opsPerSec float64, aborts uint64) {
		db, err := Open(Options{Kind: kind, ArenaWords: 1 << 23})
		if err != nil {
			t.Fatal(err)
		}
		loader := db.NewThread()
		for k := uint64(1); k <= 40_000; k += 2 {
			loader.Put(k, k)
		}
		const threads, each = 20, 800
		res := db.RunVirtual(threads, func(th *Thread) {
			// Small deterministic Zipfian-ish hot set: 30% of ops hit 16
			// hot keys, the rest spread out.
			state := uint64(12345)
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			for i := 0; i < each; i++ {
				var k uint64
				if next()%10 < 3 {
					k = next()%16 + 1
				} else {
					k = next()%40_000 + 1
				}
				if i%2 == 0 {
					th.Put(k, k)
				} else {
					th.Get(k)
				}
			}
		})
		return float64(threads*each) / res.Seconds, res.Stats.Aborts
	}
	eunoTput, eunoAborts := run(EunoBTree)
	baseTput, baseAborts := run(HTMBTree)
	if eunoTput <= baseTput {
		t.Fatalf("euno %.1fM <= baseline %.1fM ops/s under contention",
			eunoTput/1e6, baseTput/1e6)
	}
	if eunoAborts >= baseAborts {
		t.Fatalf("euno aborts %d >= baseline %d", eunoAborts, baseAborts)
	}
	t.Logf("public-API shape: euno %.1fM (%d aborts) vs base %.1fM (%d aborts)",
		eunoTput/1e6, eunoAborts, baseTput/1e6, baseAborts)
}
