// Package eunomia is a Go reproduction of "Eunomia: Scaling Concurrent
// Search Trees under Contention Using HTM" (PPoPP 2017): a concurrent
// B+Tree library built on an emulated hardware-transactional-memory
// substrate, together with the paper's three comparison trees and the
// benchmark harness that regenerates its evaluation.
//
// Because Go cannot execute real RTM transactions (and the runtime/GC
// would abort them anyway), the library runs against a software-emulated
// HTM over a flat memory arena with cache-line-granularity conflict
// detection and a virtual-time multicore simulator — see DESIGN.md for the
// substitution argument. The API below is therefore shaped a little
// differently from an ordinary map: a DB owns the arena and the emulated
// device; each worker goroutine obtains a Thread handle carrying its
// virtual core, statistics and RNG.
//
// Quickstart:
//
//	db, err := eunomia.Open(eunomia.Options{})
//	defer db.Close()
//	th := db.NewThread()
//	th.Put(1, 100)
//	v, ok, _ := th.Get(1)
//	for k, v := range th.Range(0, 10) { // range query, Go iterator form
//		_ = k + v
//	}
//
// Operations on a closed DB return ErrClosed. With Options.Durability
// set, writes are group-committed to a write-ahead log and acknowledged
// only after they are on disk; DB.Sync forces buffered bytes down,
// DB.Snapshot captures the tree and truncates the log, and Open replays
// both on restart. Options.Resilience opts into the abort-storm
// hardening layer, and Options.Observability enables abort attribution,
// contention heatmaps and structured tracing; DB.Metrics returns the
// unified snapshot of every counter the DB keeps.
//
// For deterministic virtual-time parallel execution (the mode all paper
// figures use), see DB.RunVirtual.
package eunomia

import (
	"errors"
	"fmt"
	"iter"
	"sync/atomic"

	"eunomia/internal/core"
	"eunomia/internal/durable"
	"eunomia/internal/htm"
	"eunomia/internal/obs"
	"eunomia/internal/simmem"
	"eunomia/internal/tree"
	"eunomia/internal/tree/htmtree"
	"eunomia/internal/tree/masstree"
	"eunomia/internal/vclock"
)

// Kind selects a tree implementation.
type Kind int

// The four tree designs the paper evaluates.
const (
	// EunoBTree is the paper's contribution: two-region HTM transactions,
	// partitioned leaves, a conflict control module and adaptive
	// concurrency control.
	EunoBTree Kind = iota
	// HTMBTree is the conventional baseline: one monolithic HTM region
	// per operation.
	HTMBTree
	// Masstree is the fine-grained comparator with optimistic versioned
	// locks (no HTM).
	Masstree
	// HTMMasstree wraps the Masstree code in one HTM region per operation
	// with its locks elided.
	HTMMasstree
)

// String returns the figure label for the kind.
func (k Kind) String() string {
	switch k {
	case EunoBTree:
		return "Euno-B+Tree"
	case HTMBTree:
		return "HTM-B+Tree"
	case Masstree:
		return "Masstree"
	case HTMMasstree:
		return "HTM-Masstree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Backend selects the execution engine behind a DB. Both run the same
// transactional protocol over the same arena metadata; they differ in what
// the clock means (see internal/htm.Backend and DESIGN.md §10).
type Backend int

// The two execution engines.
const (
	// Emulated (the default) charges every access through the virtual-time
	// cost model, so contention behaves like the paper's hardware and
	// RunVirtual is deterministic. Wall-clock Threads work too, but their
	// speed measures the emulator, not the protocol.
	Emulated Backend = iota
	// Host disables the cost model and runs the protocol at native speed:
	// Threads are meant to be one-per-goroutine, throughput scales with
	// real cores, and time is wall-clock. RunVirtual is unavailable.
	Host
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case Emulated:
		return "emulated"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Tuning mirrors the Euno-B+Tree design knobs (the Figure 13 ablation
// flags). The zero value of each field keeps the default.
type Tuning struct {
	// StableCap is the sorted-region capacity (the B+Tree fanout).
	StableCap int
	// Segments × SegCap shape the partitioned insert area.
	Segments int
	SegCap   int
	// Disable* switch off individual Eunomia guidelines (all enabled by
	// default).
	DisablePartLeaf    bool
	DisableCCMLockBits bool
	DisableCCMMarkBits bool
	DisableAdaptive    bool
}

// Combine configures the CCM v2 hot-key layer: elimination of same-key
// insert+delete pairs plus flat combining of same-leaf bursts, applied
// only to leaves the adaptive hotness signal flags (cold leaves never pay
// anything). With durability enabled a combined batch is logged as one
// WAL group record and every operation in it is acknowledged after that
// single flush. The zero value disables the layer entirely, leaving the
// tree bit-identical to the paper-faithful default.
type Combine struct {
	// Enabled turns the layer on.
	Enabled bool
	// Stripes is the number of publication arrays (default 4). Bursts on
	// one leaf always meet in one stripe.
	Stripes int
	// Slots is the number of publication slots per stripe (default 8,
	// max 64). A saturated stripe falls back to the normal path.
	Slots int
}

// Options configures Open.
type Options struct {
	// Kind selects the tree implementation (default EunoBTree).
	Kind Kind
	// ArenaWords is the memory capacity in 8-byte words (default 1<<24,
	// i.e. 128 MiB).
	ArenaWords uint64
	// Fanout is the node fanout for the non-Euno trees (default 16).
	Fanout int
	// Euno tunes the Euno-B+Tree (ignored for other kinds).
	Euno Tuning
	// Combine enables the CCM v2 hot-key layer on the Euno-B+Tree
	// (ignored for other kinds). Default off — the paper-faithful tree.
	Combine Combine
	// Backend selects the execution engine (default Emulated). Host runs
	// the same protocol on real goroutines at native speed — use it for
	// actual-throughput work; use the default for paper-comparable,
	// deterministic virtual-time numbers.
	Backend Backend
	// YieldEvery inserts a cooperative scheduling point into wall-clock
	// threads every N charged cycles; 0 disables. It matters only when
	// running more worker goroutines than host cores.
	YieldEvery uint64
	// Resilience enables the abort-storm hardening layer: randomized
	// exponential backoff, lemming-wait on the held fallback lock, a
	// per-operation starvation watchdog, a fair queued fallback lock, and
	// an abort-storm detector with graceful degradation (htm.
	// DefaultResilience). The default false keeps the paper-faithful
	// fragile retry behavior the reproduction studies.
	Resilience bool
	// Durability enables crash durability (write-ahead log + snapshots,
	// recovered on Open) when Durability.Dir is non-empty. Durable DBs are
	// wall-clock only: RunVirtual panics, because blocking on real fsyncs
	// inside the lockstep virtual-time scheduler would deadlock it.
	Durability Durability
	// Observability enables the observability layer: a pluggable event
	// Observer plus the built-in per-leaf contention heatmap. The zero
	// value keeps it fully disabled (zero-cost); see DB.Metrics for the
	// unified counters, which work regardless.
	Observability Observability
}

// ErrReservedValue is returned by Put for the one value the trees reserve
// internally (the deletion tombstone).
var ErrReservedValue = errors.New("eunomia: value ^uint64(0) is reserved")

// DB is a key-value store backed by one of the four trees over a private
// arena and emulated HTM device. All methods on DB are safe for concurrent
// use; per-worker operations go through Thread handles.
type DB struct {
	opts     Options
	arena    *simmem.Arena
	device   *htm.HTM
	kv       tree.KV
	euno     *core.Tree     // non-nil when Kind == EunoBTree
	dur      *durable.Store // non-nil when durability is enabled
	observer obs.Observer   // combined observer chain (nil when disabled)
	heat     *obs.Heatmap   // non-nil when Observability.Heatmap
	closed   atomic.Bool
	nextID   atomic.Int64
	threads  atomic.Int64
}

// Open creates a DB.
func Open(opts Options) (*DB, error) {
	if opts.ArenaWords == 0 {
		opts.ArenaWords = 1 << 24
	}
	if opts.Fanout == 0 {
		opts.Fanout = 16
	}
	arena := simmem.NewArena(opts.ArenaWords)
	hcfg := htm.DefaultConfig
	if opts.Resilience {
		hcfg = htm.DefaultResilience().DeviceConfig(hcfg)
	}
	switch opts.Backend {
	case Emulated:
	case Host:
		hcfg.Backend = htm.BackendHost
	default:
		return nil, fmt.Errorf("eunomia: unknown backend %v", opts.Backend)
	}
	var heat *obs.Heatmap
	oo := opts.Observability
	if oo.Heatmap {
		heat = obs.NewHeatmap(obs.HeatmapConfig{
			SampleEvery: oo.HeatmapSampleEvery,
			RingSize:    oo.HeatmapRingSize,
			TableSize:   oo.HeatmapTableSize,
		})
	}
	var chain []obs.Observer
	if oo.Observer != nil {
		chain = append(chain, oo.Observer)
	}
	if heat != nil {
		chain = append(chain, heat)
	}
	hcfg.Observer = obs.Multi(chain...)
	device := htm.New(arena, hcfg)
	var boot *htm.Thread
	if opts.Backend == Host {
		boot = device.NewHostThread(0, 1)
	} else {
		boot = device.NewThread(vclock.NewWallProc(0, 0), 1)
	}

	db := &DB{opts: opts, arena: arena, device: device,
		observer: hcfg.Observer, heat: heat}
	switch opts.Kind {
	case EunoBTree:
		cfg := core.DefaultConfig
		t := opts.Euno
		if t.StableCap != 0 {
			cfg.StableCap = t.StableCap
		}
		if t.Segments != 0 {
			cfg.Segments = t.Segments
		}
		if t.SegCap != 0 {
			cfg.SegCap = t.SegCap
		}
		cfg.PartLeaf = !t.DisablePartLeaf
		cfg.CCMLockBits = !t.DisableCCMLockBits
		cfg.CCMMarkBits = !t.DisableCCMMarkBits
		cfg.Adaptive = !t.DisableAdaptive
		cfg.Combine = core.CombineConfig{
			Enabled: opts.Combine.Enabled,
			Stripes: opts.Combine.Stripes,
			Slots:   opts.Combine.Slots,
		}
		if opts.Resilience {
			cfg.Resilience = htm.DefaultResilience()
		}
		var err error
		db.euno, err = newEuno(device, boot, cfg)
		if err != nil {
			return nil, err
		}
		db.kv = db.euno
	case HTMBTree:
		t := htmtree.New(device, boot, opts.Fanout)
		if opts.Resilience {
			t.SetPolicy(htm.ResilientPolicy())
		}
		db.kv = t
	case Masstree, HTMMasstree:
		t := masstree.New(device, boot, opts.Fanout, opts.Kind == HTMMasstree)
		if opts.Resilience {
			t.SetPolicy(htm.ResilientPolicy())
		}
		db.kv = t
	default:
		return nil, fmt.Errorf("eunomia: unknown kind %v", opts.Kind)
	}
	if opts.Durability.Dir != "" {
		if err := db.openDurable(boot, opts.Durability); err != nil {
			return nil, err
		}
	}
	db.nextID.Store(1) // proc 0 was the boot thread
	return db, nil
}

// Kind returns the tree implementation in use.
func (db *DB) Kind() Kind { return db.opts.Kind }

// Thread is a per-worker handle. A Thread must be used by one goroutine at
// a time; create one per worker with NewThread (or receive one inside
// RunVirtual). Creating a Thread is cheap.
type Thread struct {
	db *DB
	th *htm.Thread
}

// NewThread creates a wall-clock worker handle. On the Host backend the
// handle runs at native speed; create one per worker goroutine.
func (db *DB) NewThread() *Thread {
	id := int(db.nextID.Add(1))
	seed := uint64(id)*0x9e3779b9 + 1
	if db.opts.Backend == Host {
		return &Thread{db: db, th: db.device.NewHostThread(id, seed)}
	}
	p := vclock.NewWallProc(id, db.opts.YieldEvery)
	return &Thread{db: db, th: db.device.NewThread(p, seed)}
}

// Get returns the value stored under key.
func (t *Thread) Get(key uint64) (uint64, bool, error) {
	if t.db.closed.Load() {
		return 0, false, ErrClosed
	}
	v, ok := t.db.kv.Get(t.th, key)
	return v, ok, nil
}

// Put inserts or updates key. With durability enabled, Put returns only
// after the operation is on disk (acknowledged-only-after-flush); a
// returned error means the write is in memory but NOT durable.
func (t *Thread) Put(key, val uint64) error {
	if val == tree.Tombstone {
		return ErrReservedValue
	}
	if t.db.closed.Load() {
		return ErrClosed
	}
	if t.db.dur == nil {
		t.db.kv.Put(t.th, key, val)
		return nil
	}
	// With combining on, the batch path owns both the tree mutation and the
	// WAL group record — it must run before LogPut or the op would log twice.
	if t.db.euno != nil && t.db.euno.CombineEnabled() {
		if handled, err := t.db.euno.TryCombinePut(t.th, key, val); handled {
			if err != nil {
				return durErr(err)
			}
			t.maybeSnapshot()
			return nil
		}
	}
	if err := t.db.dur.LogPut(key, val, func() { t.db.kv.Put(t.th, key, val) }); err != nil {
		return durErr(err)
	}
	t.maybeSnapshot()
	return nil
}

// Delete removes key, reporting whether it was present. Durability
// semantics match Put.
func (t *Thread) Delete(key uint64) (bool, error) {
	if t.db.closed.Load() {
		return false, ErrClosed
	}
	if t.db.dur == nil {
		return t.db.kv.Delete(t.th, key), nil
	}
	if t.db.euno != nil && t.db.euno.CombineEnabled() {
		if handled, found, err := t.db.euno.TryCombineDelete(t.th, key); handled {
			if err != nil {
				return found, durErr(err)
			}
			t.maybeSnapshot()
			return found, nil
		}
	}
	ok, err := t.db.dur.LogDelete(key, func() bool { return t.db.kv.Delete(t.th, key) })
	if err != nil {
		return ok, durErr(err)
	}
	t.maybeSnapshot()
	return ok, nil
}

// Scan visits up to max keys >= from in ascending order, stopping early if
// fn returns false, and returns the number visited.
func (t *Thread) Scan(from uint64, max int, fn func(key, val uint64) bool) (int, error) {
	if t.db.closed.Load() {
		return 0, ErrClosed
	}
	return t.db.kv.Scan(t.th, from, max, fn), nil
}

// Range returns an iterator over the key/value pairs in [from, to],
// ascending — the range-over-func form of Scan:
//
//	for k, v := range th.Range(10, 19) { ... }
//
// Pairs are delivered with the same snapshot granularity as Scan (per
// leaf, never mid-transaction); keys inserted or deleted while ranging
// may or may not be observed. Iteration stops silently if the DB closes
// mid-range; use Scan to distinguish that case.
func (t *Thread) Range(from, to uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		const batch = 256
		cur := from
		for cur <= to {
			if t.db.closed.Load() {
				return
			}
			n, last, stopped := 0, uint64(0), false
			t.db.kv.Scan(t.th, cur, batch, func(k, v uint64) bool {
				if k > to {
					stopped = true
					return false
				}
				n, last = n+1, k
				if !yield(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped || n < batch || last == ^uint64(0) {
				return
			}
			cur = last + 1
		}
	}
}

// Stats is a snapshot of a thread's transactional behavior.
type Stats struct {
	Commits      uint64
	Aborts       uint64
	Fallbacks    uint64
	WastedCycles uint64
	// BackoffCycles, DegradationEvents and WatchdogTrips report the
	// resilience layer's activity (all zero unless Options.Resilience or
	// a custom hardened policy is in use).
	BackoffCycles     uint64
	DegradationEvents uint64
	WatchdogTrips     uint64
	// AbortsByReason maps reason names ("conflict-true", "conflict-false",
	// "conflict-meta", "capacity", "explicit", "fallback-lock") to counts.
	AbortsByReason map[string]uint64
}

// Stats returns this thread's accumulated statistics (the per-worker
// view; the DB-wide aggregate across all threads is DB.Metrics().Tx).
func (t *Thread) Stats() Stats {
	s := Stats{
		Commits:           t.th.Stats.Commits,
		Aborts:            t.th.Stats.TotalAborts(),
		Fallbacks:         t.th.Stats.Fallbacks,
		WastedCycles:      t.th.Stats.WastedCycles,
		BackoffCycles:     t.th.Stats.BackoffCycles,
		DegradationEvents: t.th.Stats.DegradationEvents,
		WatchdogTrips:     t.th.Stats.WatchdogTrips,
		AbortsByReason:    map[string]uint64{},
	}
	for r := htm.AbortReason(1); r < htm.NumAbortReasons; r++ {
		if n := t.th.Stats.Aborts[r]; n > 0 {
			s.AbortsByReason[r.String()] = n
		}
	}
	return s
}

// ResilienceStats reports device-level resilience state (meaningful only
// with Options.Resilience).
type ResilienceStats struct {
	// Degraded is true while the abort-storm detector is serializing all
	// executions through the fallback path.
	Degraded bool
	// StormEvents counts how many times degradation has engaged.
	StormEvents uint64
}

// MemoryStats reports the DB's arena footprint.
type MemoryStats struct {
	LiveBytes     int64
	PeakBytes     int64
	ReservedBytes int64 // transient reserved-keys buffers currently live
	CCMBytes      int64 // conflict control module lines
}

// VirtualResult reports a RunVirtual execution.
type VirtualResult struct {
	// Cycles is the virtual makespan (max per-core clock).
	Cycles uint64
	// Seconds converts Cycles at the modeled 2.3 GHz clock.
	Seconds float64
	// Stats aggregates all worker threads.
	Stats Stats
}

// RunVirtual executes body once per virtual core under the deterministic
// discrete-event scheduler: concurrency and contention play out in
// simulated time even on a single host core, and repeated runs are
// bit-for-bit identical. This is the execution mode of every figure in the
// paper reproduction.
func (db *DB) RunVirtual(threads int, body func(t *Thread)) VirtualResult {
	if db.dur != nil {
		// Durable operations block on real fsyncs while the lockstep
		// simulator waits for every proc to reach its next virtual event —
		// a guaranteed deadlock. Durability is wall-clock only.
		panic("eunomia: RunVirtual is incompatible with Options.Durability")
	}
	if db.opts.Backend == Host {
		// The host backend has no cost model, so "virtual cycles" would be
		// meaningless; determinism is the emulated backend's whole point.
		panic("eunomia: RunVirtual requires Options.Backend == Emulated")
	}
	sim := vclock.NewSim(threads, 0)
	workers := make([]*Thread, threads)
	sim.Run(func(p *vclock.SimProc) {
		t := &Thread{db: db, th: db.device.NewThread(p, uint64(p.ID())*7919+13)}
		workers[p.ID()] = t
		body(t)
	})
	res := VirtualResult{Cycles: sim.MaxClock()}
	res.Seconds = float64(res.Cycles) / vclock.CyclesPerSecond
	res.Stats.AbortsByReason = map[string]uint64{}
	var merged htm.Stats
	for _, w := range workers {
		merged.Merge(&w.th.Stats)
	}
	res.Stats.Commits = merged.Commits
	res.Stats.Aborts = merged.TotalAborts()
	res.Stats.Fallbacks = merged.Fallbacks
	res.Stats.WastedCycles = merged.WastedCycles
	res.Stats.BackoffCycles = merged.BackoffCycles
	res.Stats.DegradationEvents = merged.DegradationEvents
	res.Stats.WatchdogTrips = merged.WatchdogTrips
	for r := htm.AbortReason(1); r < htm.NumAbortReasons; r++ {
		if n := merged.Aborts[r]; n > 0 {
			res.Stats.AbortsByReason[r.String()] = n
		}
	}
	return res
}

// newEuno adapts core.New's panic-on-bad-config to an error.
func newEuno(h *htm.HTM, boot *htm.Thread, cfg core.Config) (t *core.Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("eunomia: %v", r)
		}
	}()
	return core.New(h, boot, cfg), nil
}
