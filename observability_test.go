package eunomia

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// countingObserver tallies events by kind, safe for concurrent delivery.
type countingObserver struct {
	counts [NumEventKinds]atomic.Uint64
}

func (c *countingObserver) Event(e Event) { c.counts[e.Kind].Add(1) }

func (c *countingObserver) get(k EventKind) uint64 { return c.counts[k].Load() }

// contendedVirtual runs a deterministic contended workload and returns
// its result: every core hammers the same small key range, so aborts,
// fallbacks and stitches all fire.
func contendedVirtual(t *testing.T, opts Options) VirtualResult {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	return db.RunVirtual(8, func(th *Thread) {
		for i := uint64(0); i < 300; i++ {
			k := i % 16
			switch i % 4 {
			case 0, 1:
				th.Put(k, i)
			case 2:
				th.Get(k)
			case 3:
				th.Delete(k)
			}
		}
	})
}

// TestObservabilityZeroVirtualImpact is the zero-cost guarantee at test
// level: the identical contended virtual-time workload must produce
// bit-identical metrics with observability disabled, with a user Observer
// attached, and with the built-in heatmap on. Observer callbacks never
// advance the virtual clock, so even *enabled* observability cannot move
// a figure — and the disabled case is what the golden fig1/fig8 CSVs pin
// against the seed (scripts/golden.sh).
func TestObservabilityZeroVirtualImpact(t *testing.T) {
	base := Options{ArenaWords: 1 << 21}
	plain := contendedVirtual(t, base)

	obs := base
	co := &countingObserver{}
	obs.Observability = Observability{Observer: co, Heatmap: true}
	observed := contendedVirtual(t, obs)

	if plain.Cycles != observed.Cycles {
		t.Fatalf("observer moved virtual time: %d != %d cycles", plain.Cycles, observed.Cycles)
	}
	if !reflect.DeepEqual(plain.Stats, observed.Stats) {
		t.Fatalf("observer changed stats:\nplain:    %+v\nobserved: %+v", plain.Stats, observed.Stats)
	}
	if co.get(EvTxBegin) == 0 || co.get(EvTxAbort) == 0 {
		t.Fatalf("observer saw no traffic: begins=%d aborts=%d",
			co.get(EvTxBegin), co.get(EvTxAbort))
	}
}

// TestObserverEventAccounting: the event stream and the aggregated
// counters must tell the same story — one EvTxBegin per attempt, one
// EvTxCommit per commit, one EvTxAbort per abort, one EvFallback per
// fallback execution, across boot, preload and the contended phase.
func TestObserverEventAccounting(t *testing.T) {
	co := &countingObserver{}
	db, err := Open(Options{ArenaWords: 1 << 21,
		Observability: Observability{Observer: co, Heatmap: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.RunVirtual(6, func(th *Thread) {
		for i := uint64(0); i < 400; i++ {
			th.Put(i%8, i)
		}
	})
	m := db.Metrics()
	if co.get(EvTxBegin) != m.Tx.Attempts {
		t.Fatalf("begin events %d != attempts %d", co.get(EvTxBegin), m.Tx.Attempts)
	}
	if co.get(EvTxCommit) != m.Tx.Commits {
		t.Fatalf("commit events %d != commits %d", co.get(EvTxCommit), m.Tx.Commits)
	}
	if co.get(EvTxAbort) != m.Tx.Aborts {
		t.Fatalf("abort events %d != aborts %d", co.get(EvTxAbort), m.Tx.Aborts)
	}
	if co.get(EvFallback) != m.Tx.Fallbacks {
		t.Fatalf("fallback events %d != fallbacks %d", co.get(EvFallback), m.Tx.Fallbacks)
	}
	var byReason uint64
	for _, n := range m.Tx.AbortsByReason {
		byReason += n
	}
	if byReason != m.Tx.Aborts {
		t.Fatalf("AbortsByReason sums to %d, want %d", byReason, m.Tx.Aborts)
	}
	// The heatmap rode the same chain: every abort was offered to it.
	if m.Contention.AbortsSeen != m.Tx.Aborts {
		t.Fatalf("heatmap saw %d aborts, device counted %d",
			m.Contention.AbortsSeen, m.Tx.Aborts)
	}
	if m.Tx.Aborts > 0 && len(m.Contention.HotLeaves) == 0 {
		t.Fatal("aborts occurred but the hot-leaf table is empty")
	}
}

// TestObserverConcurrentWall delivers observer callbacks from racing
// wall-clock goroutines — the shape the race detector must bless (run
// under -race via scripts/verify.sh).
func TestObserverConcurrentWall(t *testing.T) {
	co := &countingObserver{}
	db, err := Open(Options{ArenaWords: 1 << 21, YieldEvery: 16,
		Observability: Observability{Observer: co, Heatmap: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const workers, ops = 6, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := db.NewThread()
			for i := uint64(0); i < ops; i++ {
				switch i % 3 {
				case 0:
					th.Put(i%32, i)
				case 1:
					th.Get(i % 32)
				case 2:
					th.Delete(i % 32)
				}
			}
		}(w)
	}
	wg.Wait()
	m := db.Metrics()
	if co.get(EvTxBegin) != m.Tx.Attempts || co.get(EvTxCommit) != m.Tx.Commits {
		t.Fatalf("event/counter mismatch: begins=%d attempts=%d commits(ev)=%d commits=%d",
			co.get(EvTxBegin), m.Tx.Attempts, co.get(EvTxCommit), m.Tx.Commits)
	}
	if m.Tx.Commits < workers*ops {
		t.Fatalf("commits = %d, want >= %d", m.Tx.Commits, workers*ops)
	}
}

// TestMetricsUnifiedSnapshot: DB.Metrics covers every subsystem in one
// call, and the deprecated per-subsystem accessors delegate to it.
func TestMetricsUnifiedSnapshot(t *testing.T) {
	db, err := Open(Options{ArenaWords: 1 << 21, Resilience: true,
		Durability:    Durability{Dir: t.TempDir()},
		Observability: Observability{Heatmap: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	th := db.NewThread()
	for i := uint64(0); i < 200; i++ {
		if err := th.Put(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Tx.Commits == 0 || m.Tx.Attempts < m.Tx.Commits {
		t.Fatalf("Tx section implausible: %+v", m.Tx)
	}
	if m.Memory.LiveBytes <= 0 || m.Memory.PeakBytes < m.Memory.LiveBytes {
		t.Fatalf("Memory section implausible: %+v", m.Memory)
	}
	if !m.Durability.Enabled || m.Durability.Flushes == 0 {
		t.Fatalf("Durability section missing activity: %+v", m.Durability)
	}
	if m.Tree.Splits == 0 {
		t.Fatalf("Tree section missing splits after 200 sequential puts: %+v", m.Tree)
	}
	if !m.Contention.Enabled {
		t.Fatal("Contention section disabled despite Heatmap: true")
	}

	// Two snapshots must agree on the static parts (flush counters can
	// advance between them).
	m2 := db.Metrics()
	if m2.Resilience != m.Resilience {
		t.Fatalf("Resilience drifted: %+v != %+v", m2.Resilience, m.Resilience)
	}
	if m2.Durability.Enabled != m.Durability.Enabled ||
		m2.Durability.ReplayedFrames != m.Durability.ReplayedFrames {
		t.Fatalf("Durability drifted: %+v != %+v", m2.Durability, m.Durability)
	}
}

// TestMetricsDisabledSections: with nothing opted in, Metrics still
// returns a coherent snapshot with the optional sections zeroed.
func TestMetricsDisabledSections(t *testing.T) {
	db, err := Open(Options{ArenaWords: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	th := db.NewThread()
	th.Put(1, 2)
	m := db.Metrics()
	if m.Contention.Enabled || m.Durability.Enabled {
		t.Fatalf("optional sections enabled without opt-in: %+v", m)
	}
	if m.Tx.Commits == 0 {
		t.Fatal("Tx counters missing")
	}
	if db.observer != nil {
		t.Fatal("observer chain installed despite zero-value Observability")
	}
}
