package eunomia

import (
	"eunomia/internal/htm"
	"eunomia/internal/obs"
	"eunomia/internal/simmem"
)

// This file is the public face of the observability layer (internal/obs)
// and the unified metrics API. The event vocabulary is aliased rather
// than wrapped so a user Observer and the internal emission sites share
// one Event type with no translation cost on the hot path.

// Observer consumes observability events; see Observability.Observer.
// Implementations must be safe for concurrent use (every worker goroutine
// delivers events directly) and must not call back into the DB.
type Observer = obs.Observer

// Event is one observability record; see the Ev* kinds.
type Event = obs.Event

// EventKind discriminates Event records.
type EventKind = obs.EventKind

// Event kinds (see the internal/obs documentation for per-kind field
// semantics).
const (
	EvTxBegin  = obs.EvTxBegin
	EvTxCommit = obs.EvTxCommit
	EvTxAbort  = obs.EvTxAbort
	EvFallback = obs.EvFallback
	EvStitch   = obs.EvStitch
	EvWALFlush = obs.EvWALFlush
	// NumEventKinds bounds the kind ordinals (for indexing by kind).
	NumEventKinds = obs.NumEventKinds
)

// TraceWriter renders recorded events as Chrome trace-event JSON; create
// one with NewTraceWriter, attach tw.Process(name) as the Observer, and
// render with tw.Encode.
type TraceWriter = obs.TraceWriter

// TraceOptions configures NewTraceWriter.
type TraceOptions = obs.TraceOptions

// NewTraceWriter creates a Chrome-trace recorder.
func NewTraceWriter(opt TraceOptions) *TraceWriter { return obs.NewTraceWriter(opt) }

// MultiObserver combines observers into one (nil entries are skipped; nil
// is returned when none remain).
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// HotLeaf is one hot-leaf heatmap entry; see ContentionMetrics.HotLeaves.
type HotLeaf = obs.LeafHeat

// Observability configures the observability layer. The zero value
// disables it entirely: every emission site then costs one nil check, and
// virtual-time figure metrics are bit-identical to an un-instrumented
// build (observer callbacks never advance the virtual clock, so this
// holds even when observability is on).
type Observability struct {
	// Observer receives every event the DB's device and durability layer
	// emit. Optional; may be combined with the built-in heatmap.
	Observer Observer
	// Heatmap enables the built-in per-leaf contention heatmap, surfaced
	// through Metrics.Contention.
	Heatmap bool
	// HeatmapSampleEvery keeps every Nth abort (default 1 = all).
	HeatmapSampleEvery int
	// HeatmapRingSize bounds the recent-aborts ring (default 4096).
	HeatmapRingSize int
	// HeatmapTableSize bounds the hot-leaf table (default 64).
	HeatmapTableSize int
}

// TxMetrics aggregates transactional behavior across every thread of the
// DB, as of each thread's last completed operation.
type TxMetrics struct {
	Attempts  uint64
	Commits   uint64
	Aborts    uint64
	Fallbacks uint64
	// WastedCycles is virtual time burned inside aborted attempts.
	WastedCycles uint64
	TxLoads      uint64
	TxStores     uint64
	// Resilience-layer activity (zero unless Options.Resilience).
	BackoffCycles     uint64
	DegradationEvents uint64
	WatchdogTrips     uint64
	// AbortsByReason maps the paper's abort taxonomy ("conflict-false",
	// "conflict-meta", "conflict-true", "capacity", "explicit",
	// "fallback-lock") to counts. Reasons with zero counts are omitted.
	AbortsByReason map[string]uint64
}

// TreeMetrics reports Euno-B+Tree structural maintenance (all zero for
// the other tree kinds).
type TreeMetrics struct {
	Splits      uint64
	Compactions uint64
	MarkRejects uint64
	RootRetries uint64
	MaintRounds uint64
	// CCM v2 hot-key layer activity (zero unless Options.Combine.Enabled).
	EliminatedPairs  uint64 // same-key insert+delete pairs annihilated
	CombinedBatches  uint64 // flat-combined leaf batches executed
	CombinedOps      uint64 // operations served inside those batches
	CombinerHandoffs uint64 // operations served by a different thread
}

// ContentionMetrics reports the built-in heatmap (Enabled false — and all
// else zero — unless Observability.Heatmap is set).
type ContentionMetrics struct {
	Enabled       bool
	AbortsSeen    uint64
	AbortsSampled uint64
	// HotLeaves is the hot-leaf table, hottest first. Entries with
	// Annotated report a tree-node (leaf) id; the rest attribute to a raw
	// conflicting cache line (the non-Euno trees do not annotate nodes).
	HotLeaves []HotLeaf
}

// Metrics is one coherent snapshot of everything the DB can report about
// itself: transactional behavior with the abort-reason decomposition,
// resilience state, memory accounting, tree maintenance, durability
// counters, and — when enabled — the contention heatmap. It replaced the
// former per-subsystem accessors (ResilienceStats, MemoryStats,
// DurabilityStats), now removed; their types remain as sections of this
// snapshot.
type Metrics struct {
	Tx         TxMetrics
	Resilience ResilienceStats
	Memory     MemoryStats
	Tree       TreeMetrics
	Durability DurabilityStats
	Contention ContentionMetrics
}

// Metrics returns the unified snapshot. It is safe to call concurrently
// with operations; transactional counters reflect each worker's last
// completed operation.
func (db *DB) Metrics() Metrics {
	s := db.device.DeviceStats()
	m := Metrics{
		Tx: TxMetrics{
			Attempts:          s.Attempts,
			Commits:           s.Commits,
			Aborts:            s.TotalAborts(),
			Fallbacks:         s.Fallbacks,
			WastedCycles:      s.WastedCycles,
			TxLoads:           s.TxLoads,
			TxStores:          s.TxStores,
			BackoffCycles:     s.BackoffCycles,
			DegradationEvents: s.DegradationEvents,
			WatchdogTrips:     s.WatchdogTrips,
			AbortsByReason:    map[string]uint64{},
		},
		Resilience: ResilienceStats{
			Degraded:    db.device.Degraded(),
			StormEvents: db.device.StormEvents(),
		},
		Memory: MemoryStats{
			LiveBytes:     db.arena.LiveBytes(),
			PeakBytes:     db.arena.PeakBytes(),
			ReservedBytes: db.arena.BytesByTag(simmem.TagReserved),
			CCMBytes:      db.arena.BytesByTag(simmem.TagCCM),
		},
		Durability: db.durabilityMetrics(),
	}
	for r := htm.AbortReason(1); r < htm.NumAbortReasons; r++ {
		if n := s.Aborts[r]; n > 0 {
			m.Tx.AbortsByReason[r.String()] = n
		}
	}
	if db.euno != nil {
		m.Tree = TreeMetrics{
			Splits:      db.euno.Splits(),
			Compactions: db.euno.Compactions(),
			MarkRejects: db.euno.MarkRejects(),
			RootRetries: db.euno.RootRetries(),
			MaintRounds: db.euno.MaintRounds(),

			EliminatedPairs:  db.euno.EliminatedPairs(),
			CombinedBatches:  db.euno.CombinedBatches(),
			CombinedOps:      db.euno.CombinedOps(),
			CombinerHandoffs: db.euno.CombinerHandoffs(),
		}
	}
	if db.heat != nil {
		seen, sampled := db.heat.Seen()
		m.Contention = ContentionMetrics{
			Enabled:       true,
			AbortsSeen:    seen,
			AbortsSampled: sampled,
			HotLeaves:     db.heat.Hot(),
		}
	}
	return m
}
