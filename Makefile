# Convenience targets; `go build ./... && go test ./...` is the tier-1 gate.

.PHONY: test verify bench-emulator bench-emulator-json bench figures

test:
	go build ./... && go test ./...

# verify: the cheap pre-merge guard — vet, build, and the race detector
# over the emulator and memory substrate (the packages where the O(1)
# index state would show unsynchronized access first).
verify:
	./scripts/verify.sh

# bench-emulator: host-speed micro-benchmarks of the HTM emulator's
# Load/Store/commit paths, 5 repetitions for benchstat-able output.
bench-emulator:
	go test -run=NONE -bench=HostEmulator -benchmem -count=5 ./internal/htm/

# bench-emulator-json: same suite via eunobench, recorded into the
# checked-in perf-trajectory artifact. Override LABEL to tag the run.
LABEL ?= current
bench-emulator-json:
	go run ./cmd/eunobench -benchjson BENCH_emulator.json -benchlabel $(LABEL) hostbench

# bench: the scaled-down figure benchmarks (virtual-time metrics).
bench:
	go test -run=NONE -bench=Fig -benchtime=1x .

# figures: regenerate every paper figure at quick scale.
figures:
	go run ./cmd/eunobench -quick all
