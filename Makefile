# Convenience targets; `go build ./... && go test ./...` is the tier-1 gate.

.PHONY: test verify check golden ci bench-emulator bench-emulator-json bench bench-host bench-hotkey bench-cluster bench-swarm bench-reshard figures trace-demo

test:
	go build ./... && go test ./...

# verify: the cheap pre-merge guard — vet, build, the race detector over
# the emulator and memory substrate, and a -short race pass over the trees
# and harness (including the wall-clock linearizability recordings).
verify:
	./scripts/verify.sh

# check: the short-mode correctness suite on its own — the complete
# linearizability checker's unit tests plus the tree registry's repro,
# mutant-catch, and fault-coverage tests, and the crash-recovery fuzzer
# over the durability engine (failures print an EUNO_CRASH_REPRO line).
check:
	go test -short ./internal/check/... ./internal/durable/...

# golden: the bit-identical-figures guard — the opt-in resilience layer
# must not move the paper-faithful default figures by a single cycle.
golden:
	./scripts/golden.sh

# ci: what .github/workflows/ci.yml runs — tier-1, verify, the short
# correctness + crash-recovery suites, and the golden-figures guard.
ci: test verify check golden

# bench-emulator: host-speed micro-benchmarks of the HTM emulator's
# Load/Store/commit paths, 5 repetitions for benchstat-able output.
bench-emulator:
	go test -run=NONE -bench=HostEmulator -benchmem -count=5 ./internal/htm/

# bench-emulator-json: same suite via eunobench, recorded into the
# checked-in perf-trajectory artifact. Override LABEL to tag the run.
LABEL ?= current
bench-emulator-json:
	go run ./cmd/eunobench -benchjson BENCH_emulator.json -benchlabel $(LABEL) hostbench

# bench: the scaled-down figure benchmarks (virtual-time metrics).
bench:
	go test -run=NONE -bench=Fig -benchtime=1x .

# bench-host: the host-backend wall-clock sweep (real goroutines, cost
# model off) across thread counts and YCSB mixes, recorded into the
# checked-in artifact. Numbers are machine-dependent; the artifact records
# GOMAXPROCS/NumCPU so runs stay comparable.
bench-host:
	go run ./cmd/eunobench -benchjson BENCH_hostperf.json -benchlabel $(LABEL) hostperf

# bench-hotkey: the CCM v2 hot-key comparison (Options.Combine on vs off)
# under a single-key hammer and a theta=0.99 celebrity-key Zipfian, on the
# emulated backend — deterministic virtual-time numbers, so the on/off
# ratios are comparable across machines and meaningful on single-core CI.
bench-hotkey:
	go run ./cmd/eunobench -benchjson BENCH_hotkey.json -benchlabel $(LABEL) hotkey

# bench-cluster: the sharded-Cluster sweep (host backend) across shard
# counts and Zipfian skew, recorded into the checked-in artifact. On a
# single-core runner sharding only trims abort/retry work — the artifact
# records GOMAXPROCS/NumCPU so curves stay comparable.
bench-cluster:
	go run ./cmd/eunobench -benchjson BENCH_cluster.json -benchlabel $(LABEL) cluster

# bench-durability: wall-clock group-commit and recovery benchmarks,
# recorded into the durability perf-trajectory artifact.
bench-durability:
	go run ./cmd/eunobench -benchjson BENCH_durability.json -benchlabel $(LABEL) recover

# bench-swarm: the open-loop serving benchmark (Poisson arrivals at a
# calibrated offered rate against the durable 4-shard cluster) plus its
# chaos variant (one shard disk killed and revived mid-run; the artifact
# records the goodput timeline through failure, degraded serving, and
# repair). Sojourn percentiles include queue wait — that is the point.
bench-swarm:
	go run ./cmd/eunobench -benchjson BENCH_swarm.json -benchlabel $(LABEL) swarm
	go run ./cmd/eunobench -benchjson BENCH_swarm.json -benchlabel $(LABEL) swarmchaos

# bench-reshard: open-loop load with a deliberately hot range shard
# through a live 4->8 reshard. The artifact records the goodput/p99
# timeline through bulk copy, fenced cutovers, and purge; the two ratios
# under study are migration goodput vs the pre-trigger baseline (target
# >= 0.9) and post-split p99 vs baseline (target < 1).
bench-reshard:
	go run ./cmd/eunobench -benchjson BENCH_reshard.json -benchlabel $(LABEL) reshardchaos

# figures: regenerate every paper figure at quick scale.
figures:
	go run ./cmd/eunobench -quick all

# trace-demo: record the abort-storm scenario as Chrome trace-event JSON
# (fragile and resilient lanes side by side); open trace_storm.json in
# chrome://tracing or ui.perfetto.dev.
trace-demo:
	go run ./cmd/eunobench -trace trace_storm.json storm
