package eunomia

import "iter"

// Store is the single database abstraction of the package: one interface
// satisfied by both a single-tree *DB and a sharded *Cluster, so servers,
// harnesses and examples can program against one type and switch between
// a single tree and a partitioned cluster with a constructor swap.
//
// Store methods are safe for concurrent use. Per-worker operations go
// through Handles (one per worker goroutine), exactly like DB.NewThread
// and Cluster.NewSession — which remain available when code needs the
// concrete types' extras (RunVirtual, Reshard, per-shard metrics).
type Store interface {
	// NewHandle creates a per-worker operation handle. Handles are cheap;
	// create one per worker goroutine and Close it when the worker ends.
	NewHandle() Handle
	// Sync forces every acknowledged-but-buffered WAL byte to disk (no-op
	// without durability).
	Sync() error
	// Snapshot captures the full keyspace and truncates covered WAL
	// segments (no-op without durability). On a Cluster the snapshot is
	// cluster-wide consistent (barrier manifest + per-shard snapshots).
	Snapshot() error
	// Metrics returns the unified counter snapshot. On a Cluster it is
	// the cross-shard aggregate; use Cluster.ClusterMetrics for the
	// per-shard breakdown.
	Metrics() Metrics
	// Close flushes and releases the store. Idempotent; operations on a
	// closed store return ErrClosed.
	Close() error
}

// Handle is a per-worker operation handle minted by Store.NewHandle:
// a *Thread for a DB, a *Session for a Cluster. A Handle must be used by
// one goroutine at a time.
type Handle interface {
	// Get returns the value stored under key.
	Get(key uint64) (uint64, bool, error)
	// Put inserts or updates key. With durability enabled it returns only
	// after the operation is on disk.
	Put(key, val uint64) error
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) (bool, error)
	// Scan visits up to max keys >= from in ascending order, stopping
	// early if fn returns false, and returns the number visited.
	Scan(from uint64, max int, fn func(key, val uint64) bool) (int, error)
	// Range iterates the pairs in [from, to] ascending (range-over-func).
	Range(from, to uint64) iter.Seq2[uint64, uint64]
	// Close releases the handle. A DB Thread's Close is a no-op; a
	// Cluster Session's Close unregisters it from the resharding engine's
	// quiesce barrier (mandatory for session-churning workloads).
	Close() error
}

// Both concrete stores satisfy the unified API.
var (
	_ Store  = (*DB)(nil)
	_ Store  = (*Cluster)(nil)
	_ Handle = (*Thread)(nil)
	_ Handle = (*Session)(nil)
)

// NewHandle returns a new worker Thread as a Handle.
func (db *DB) NewHandle() Handle { return db.NewThread() }

// Close releases the Thread. It is a no-op (Threads hold no resources
// beyond their DB) and exists to satisfy Handle.
func (t *Thread) Close() error { return nil }

// NewHandle returns a new worker Session as a Handle.
func (c *Cluster) NewHandle() Handle { return c.NewSession() }
