package eunomia

import (
	"errors"
	"fmt"
	"time"

	"eunomia/internal/shard"
)

// Cluster fault domains: each shard carries a circuit breaker
// (internal/shard.Health) so one dead disk degrades one slice of the key
// space instead of the whole cluster, and a background repair loop
// reopens Failed durable shards — WAL replay through the ordinary Open
// recovery path, then a probation window — before re-admitting them.
//
// Error taxonomy, as seen by Session callers:
//
//	ErrClosed            — the *cluster* was shut down (Close was called).
//	ErrShardUnavailable  — the owning *shard* failed; the cluster is up
//	                       and other shards keep serving. Always carried
//	                       by a *ShardError with the shard index, its
//	                       health state, and the root cause.
//	ErrReservedValue     — the caller's error; never a health signal.
//
// Transient vs permanent: at operation time every shard failure is
// treated as transient (an IO error, a crashed fault-injected FS, a
// store closed mid-repair — all potentially fixable by reopening from
// disk), so the breaker trips and repair retries. The permanent verdict
// is reached by the repair loop itself: a reopened shard whose recovery
// ends below the durable watermark captured at trip time has lost
// acknowledged writes (swapped disk, truncated directory) — repair
// refuses re-admission and parks the shard in Failed permanently rather
// than serving the hole.

// ErrShardUnavailable is the errors.Is sentinel for "the owning shard
// could not serve this operation": its breaker is open, or the operation
// failed at the shard and was not retried. Distinct from ErrClosed,
// which means the cluster itself was shut down.
var ErrShardUnavailable = errors.New("eunomia: shard unavailable")

// errShardStopped stands in for a shard DB's ErrClosed when the cluster
// itself is still open (the repair loop closes a dead shard's store
// before reopening it): surfacing the raw ErrClosed would make "shard 3
// died" indistinguishable from "cluster shut down" under errors.Is.
var errShardStopped = errors.New("eunomia: shard store closed for repair")

// ShardState is a shard's serving state as reported by the health
// breaker (see internal/shard.Health for the full machine).
type ShardState int

const (
	// ShardHealthy shards serve normally.
	ShardHealthy ShardState = ShardState(shard.Healthy)
	// ShardDegraded shards have seen recent failures but still serve.
	ShardDegraded ShardState = ShardState(shard.Degraded)
	// ShardFailed shards have an open breaker: routed ops fail fast.
	ShardFailed ShardState = ShardState(shard.Failed)
	// ShardRecovering shards are reopened but on probation, not serving.
	ShardRecovering ShardState = ShardState(shard.Recovering)
)

// String names the state.
func (s ShardState) String() string { return shard.State(s).String() }

// ShardError reports an operation the owning shard could not serve. It
// matches ErrShardUnavailable under errors.Is, and Unwraps to the root
// cause (the IO error, the injected fault, ...).
type ShardError struct {
	// Shard is the failing shard's index.
	Shard int
	// State is the shard's health state when the error was built.
	State ShardState
	// Cause is the root cause; nil only when the breaker was already open
	// and no cause was recorded.
	Cause error
}

// Error formats "shard N <state>: cause".
func (e *ShardError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("eunomia: shard %d %s", e.Shard, e.State)
	}
	return fmt.Sprintf("eunomia: shard %d %s: %v", e.Shard, e.State, e.Cause)
}

// Unwrap exposes the root cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Cause }

// Is matches the ErrShardUnavailable sentinel.
func (e *ShardError) Is(target error) bool { return target == ErrShardUnavailable }

// HealthOptions configures the per-shard circuit breaker. The breaker is
// on by default; the zero value picks the defaults.
type HealthOptions struct {
	// Disable turns the fault-domain layer off entirely, restoring the
	// all-or-nothing error surface: shard errors return raw, nothing
	// trips, nothing repairs.
	Disable bool
	// Window is the sliding window of recent outcomes scored per shard
	// (max 64; default 32).
	Window int
	// TripFailures is the failure count within Window that trips a shard
	// Degraded → Failed (default 5).
	TripFailures int
	// RecoverSuccesses is the consecutive-success count that clears
	// Degraded → Healthy (default 8).
	RecoverSuccesses int
	// RetryBudget caps the retry tokens a Session banks per shard: a
	// transient op failure is retried at most once and only while a token
	// is banked (tokens accrue with successes), so retries cannot amplify
	// a failure storm. 0 means the default (3); negative disables
	// retries.
	RetryBudget int
}

// defaultRetryBudget is the per-shard token cap when RetryBudget is 0.
const defaultRetryBudget = 3

// retryEarnEvery is how many successes earn back one retry token.
const retryEarnEvery = 8

// RepairOptions configures the self-healing repair loop. Repair is on by
// default for durable shards (a non-durable shard has no disk to reopen
// from — reopening would resurrect an empty tree, so Failed non-durable
// shards stay failed); the zero value picks the defaults.
type RepairOptions struct {
	// Disable turns self-healing off: Failed shards stay failed until the
	// cluster is reopened.
	Disable bool
	// Backoff is the initial reopen backoff (default 100ms); each failed
	// attempt doubles it up to MaxBackoff (default 5s), with jitter.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Probes is the probation window: consecutive successful sync+read
	// probe rounds required before re-admission (default 3), spaced
	// ProbeInterval apart (default 10ms).
	Probes        int
	ProbeInterval time.Duration
	// AdmitBeforeReplay deliberately breaks the repair loop — the shard is
	// reopened with recovery disabled and re-admitted with no probation
	// and no watermark check — so the crash fuzzer can prove the probation
	// gate catches the resulting loss of acknowledged writes. Never
	// enable it for real data.
	AdmitBeforeReplay bool
}

func (r RepairOptions) withDefaults() RepairOptions {
	if r.Backoff <= 0 {
		r.Backoff = 100 * time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 5 * time.Second
	}
	if r.MaxBackoff < r.Backoff {
		r.MaxBackoff = r.Backoff
	}
	if r.Probes <= 0 {
		r.Probes = 3
	}
	if r.ProbeInterval <= 0 {
		r.ProbeInterval = 10 * time.Millisecond
	}
	return r
}

// ShardHealthMetrics is one shard's breaker snapshot in ClusterMetrics.
type ShardHealthMetrics struct {
	State     ShardState
	Permanent bool   // Failed with no legal path back (data loss)
	Failures  uint64 // outcomes scored as failures, lifetime
	Trips     uint64 // times the breaker opened
	Repairs   uint64 // times the repair loop re-admitted the shard
	Cause     string // last failure cause, "" when none
}

// FaultMetrics aggregates the fault-domain layer in ClusterMetrics.
type FaultMetrics struct {
	// Trips and Repairs sum the per-shard breaker counters.
	Trips   uint64
	Repairs uint64
	// ShedOps counts operations failed fast at an open breaker without
	// touching the shard.
	ShedOps uint64
	// Retries and RetriesDenied count budgeted retries spent and retries
	// refused for lack of a banked token.
	Retries       uint64
	RetriesDenied uint64
}

// ShardState returns shard i's current health state — Healthy shards
// serve; Failed shards fail fast until the repair loop re-admits them.
func (c *Cluster) ShardState(i int) ShardState {
	return ShardState(c.shard(i).health.State())
}

// unavailable builds the fail-fast error for a breaker-open shard.
func (c *Cluster) unavailable(i int) *ShardError {
	h := c.shard(i).health
	return &ShardError{Shard: i, State: ShardState(h.State()), Cause: h.Cause()}
}

// causeOf normalizes an op error into a health cause: a shard DB's
// ErrClosed while the cluster is open means the store was stopped (by
// the repair loop or a direct close), not that the cluster shut down.
func (c *Cluster) causeOf(err error) error {
	if errors.Is(err, ErrClosed) {
		return errShardStopped
	}
	return err
}

// earnRetry banks success toward a retry token, up to the cap.
func (s *Session) earnRetry(i int) {
	cap := s.c.retryCap
	if cap == 0 || s.tokens[i] >= cap {
		s.earned[i] = 0
		return
	}
	if s.earned[i]++; s.earned[i] >= retryEarnEvery {
		s.earned[i] = 0
		s.tokens[i]++
	}
}

// spendRetry consumes a banked token, reporting whether one was held.
func (s *Session) spendRetry(i int) bool {
	if s.tokens[i] > 0 {
		s.tokens[i]--
		return true
	}
	return false
}

// tripped handles a breaker trip: capture the shard's durable watermark
// (the floor its repaired incarnation must recover past) and start the
// repair loop.
func (c *Cluster) tripped(sh *clusterShard) {
	if db := sh.db.Load(); db != nil {
		wm := db.durableLSN()
		for {
			cur := sh.watermark.Load()
			if wm <= cur || sh.watermark.CompareAndSwap(cur, wm) {
				break
			}
		}
	}
	c.startRepair(sh)
}

// startRepair spawns the repair goroutine for a tripped shard, at most
// one per shard, never after Close, and never for shards that cannot be
// repaired (non-durable, or permanently failed).
func (c *Cluster) startRepair(sh *clusterShard) {
	if c.repair.Disable || sh.opts.Durability.Dir == "" || sh.health.Permanent() {
		return
	}
	if !sh.repairing.CompareAndSwap(false, true) {
		return
	}
	c.repairMu.Lock()
	if c.closed.Load() {
		c.repairMu.Unlock()
		sh.repairing.Store(false)
		return
	}
	c.repairWG.Add(1)
	c.repairMu.Unlock()
	go c.repairLoop(sh)
}

// repairLoop brings a Failed shard back: close the dead store, retry
// Open (which replays the WAL through the ordinary recovery path) under
// capped exponential backoff with jitter, then gate re-admission behind
// the durable-watermark check and a probation window of successful
// probes. Runs until re-admission, a permanent verdict, or Close.
func (c *Cluster) repairLoop(sh *clusterShard) {
	defer c.repairWG.Done()
	defer sh.repairing.Store(false)
	// Release the dead store first: Close is idempotent, and a poisoned
	// WAL never re-acknowledges, so nothing durable is lost here.
	if old := sh.db.Load(); old != nil {
		old.Close()
	}
	r := c.repair
	backoff := r.Backoff
	// Deterministic per-shard jitter stream (no global RNG: repair must
	// not perturb seeded tests' randomness).
	rng := shard.Mix(uint64(sh.idx)*0x9e3779b97f4a7c15 + 1)
	for {
		wait := backoff/2 + time.Duration(rng%uint64(backoff/2+1))
		rng = shard.Mix(rng)
		if !c.sleepUnlessClosed(wait) {
			return
		}
		if backoff < r.MaxBackoff {
			if backoff *= 2; backoff > r.MaxBackoff {
				backoff = r.MaxBackoff
			}
		}
		opts := sh.opts
		if r.AdmitBeforeReplay {
			// DELIBERATELY BROKEN (see RepairOptions): reopen with recovery
			// disabled so the crash fuzzer can prove the probation gate
			// catches premature re-admission.
			opts.Durability = Durability{}
		}
		db, err := Open(opts)
		if err != nil {
			continue // disk still gone; back off and retry
		}
		if r.AdmitBeforeReplay {
			sh.health.BeginRecovery()
			sh.db.Store(db)
			sh.gen.Add(1)
			sh.health.Admit()
			return
		}
		if !sh.health.BeginRecovery() {
			// A permanent verdict raced in; stand down.
			db.Close()
			return
		}
		if got, want := db.recoveredSeq(), sh.watermark.Load(); got < want {
			db.Close()
			sh.health.RefuseRecovery(fmt.Errorf(
				"eunomia: shard %d recovered to LSN %d but its durable watermark was %d: acknowledged writes are missing",
				sh.idx, got, want), true)
			return
		}
		if c.probe(sh, db) {
			sh.db.Store(db)
			sh.gen.Add(1)
			sh.health.Admit()
			return
		}
		db.Close()
		if c.closed.Load() || sh.health.Permanent() {
			return
		}
		// Transient probation failure: back off and reopen fresh.
	}
}

// probe runs the probation window against a candidate DB: Probes
// consecutive successful sync+read rounds spaced ProbeInterval apart.
// Any failure refuses recovery (transiently) and reports false.
func (c *Cluster) probe(sh *clusterShard, db *DB) bool {
	th := db.NewThread()
	for p := 0; p < c.repair.Probes; p++ {
		if p > 0 && !c.sleepUnlessClosed(c.repair.ProbeInterval) {
			sh.health.RefuseRecovery(ErrClosed, false)
			return false
		}
		if err := db.Sync(); err != nil {
			sh.health.RefuseRecovery(err, false)
			return false
		}
		if _, _, err := th.Get(0); err != nil {
			sh.health.RefuseRecovery(err, false)
			return false
		}
	}
	return true
}

// sleepUnlessClosed waits d, returning false early if the cluster is
// closing.
func (c *Cluster) sleepUnlessClosed(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-c.stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.stop:
		return false
	case <-t.C:
		return true
	}
}
