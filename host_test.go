package eunomia

import (
	"sync"
	"testing"
)

func TestHostBackendBasicOps(t *testing.T) {
	db, err := Open(Options{Backend: Host})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	th := db.NewThread()
	if err := th.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := th.Get(1); err != nil || !ok || v != 100 {
		t.Fatalf("get = %d,%v,%v", v, ok, err)
	}
	if ok, err := th.Delete(1); err != nil || !ok {
		t.Fatalf("delete = %v,%v", ok, err)
	}
	if _, ok, _ := th.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestHostBackendAllKinds(t *testing.T) {
	for _, kind := range []Kind{EunoBTree, HTMBTree, Masstree, HTMMasstree} {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := Open(Options{Kind: kind, Backend: Host})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			workers, per := 4, 500
			if testing.Short() {
				per = 150
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := db.NewThread()
					base := uint64(w*per) + 1
					for i := uint64(0); i < uint64(per); i++ {
						if err := th.Put(base+i, (base+i)*2); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			th := db.NewThread()
			for k := uint64(1); k <= uint64(workers*per); k++ {
				if v, ok, err := th.Get(k); err != nil || !ok || v != k*2 {
					t.Fatalf("get(%d) = %d,%v,%v after concurrent fill", k, v, ok, err)
				}
			}
		})
	}
}

func TestHostBackendSharedContention(t *testing.T) {
	db, err := Open(Options{Backend: Host, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const hot = 8
	th0 := db.NewThread()
	for k := uint64(1); k <= hot; k++ {
		if err := th0.Put(k, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	workers, ops := 6, 400
	if testing.Short() {
		ops = 120
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := db.NewThread()
			for i := 0; i < ops; i++ {
				k := uint64(i%hot) + 1
				if i%2 == 0 {
					if err := th.Put(k, 1<<40|uint64(w)<<20|uint64(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else {
					v, ok, err := th.Get(k)
					if err != nil || !ok || v&(1<<40) == 0 {
						t.Errorf("get(%d) = %d,%v,%v", k, v, ok, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Per-thread stats still work on the host backend.
	s := th0.Stats()
	if s.Commits == 0 {
		t.Fatal("boot-era thread recorded no commits")
	}
}

func TestHostBackendRunVirtualPanics(t *testing.T) {
	db, err := Open(Options{Backend: Host})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunVirtual on the host backend did not panic")
		}
	}()
	db.RunVirtual(2, func(t *Thread) {})
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := Open(Options{Backend: Backend(99)}); err == nil {
		t.Fatal("Open accepted an unknown backend")
	}
}

func TestBackendStrings(t *testing.T) {
	if Emulated.String() != "emulated" || Host.String() != "host" {
		t.Fatalf("backend strings: %q %q", Emulated, Host)
	}
}
