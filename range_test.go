package eunomia

import "testing"

func rangeDB(t *testing.T) (*DB, *Thread) {
	t.Helper()
	db, err := Open(Options{ArenaWords: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, db.NewThread()
}

// TestRangeMatchesScan: Range must deliver exactly what Scan delivers
// over the same window, including across leaf boundaries (600 consecutive
// keys force many leaves and more than one internal batch).
func TestRangeMatchesScan(t *testing.T) {
	_, th := rangeDB(t)
	for k := uint64(100); k < 700; k++ {
		th.Put(k, k*7)
	}
	var scanned [][2]uint64
	th.Scan(100, 600, func(k, v uint64) bool {
		scanned = append(scanned, [2]uint64{k, v})
		return true
	})
	var ranged [][2]uint64
	for k, v := range th.Range(100, 699) {
		ranged = append(ranged, [2]uint64{k, v})
	}
	if len(ranged) != 600 || len(scanned) != len(ranged) {
		t.Fatalf("got %d ranged / %d scanned pairs, want 600", len(ranged), len(scanned))
	}
	for i := range ranged {
		if ranged[i] != scanned[i] {
			t.Fatalf("pair %d: Range %v != Scan %v", i, ranged[i], scanned[i])
		}
	}
}

// TestRangeBoundsInclusive: both endpoints are included; keys outside
// [from, to] are not.
func TestRangeBoundsInclusive(t *testing.T) {
	_, th := rangeDB(t)
	for _, k := range []uint64{5, 10, 15, 20, 25} {
		th.Put(k, k)
	}
	var got []uint64
	for k := range th.Range(10, 20) {
		got = append(got, k)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 20 {
		t.Fatalf("Range(10,20) = %v, want [10 15 20]", got)
	}
}

func TestRangeEarlyBreak(t *testing.T) {
	_, th := rangeDB(t)
	for k := uint64(0); k < 50; k++ {
		th.Put(k, k)
	}
	var n int
	for range th.Range(0, 49) {
		n++
		if n == 7 {
			break
		}
	}
	if n != 7 {
		t.Fatalf("broke after %d pairs, want 7", n)
	}
}

func TestRangeEmptyAndExtremes(t *testing.T) {
	_, th := rangeDB(t)
	th.Put(42, 1)
	for k := range th.Range(100, 200) {
		t.Fatalf("empty window yielded %d", k)
	}
	for k := range th.Range(43, 10) { // inverted window
		t.Fatalf("inverted window yielded %d", k)
	}
	// A window covering the whole key space terminates (the ^uint64(0)
	// guard) and finds the key.
	var got []uint64
	for k := range th.Range(0, ^uint64(0)) {
		got = append(got, k)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("full-space range = %v, want [42]", got)
	}
}

// TestRangeClosedDB: ranging on a closed DB stops silently rather than
// panicking (Scan is the error-reporting form).
func TestRangeClosedDB(t *testing.T) {
	db, th := rangeDB(t)
	th.Put(1, 1)
	db.Close()
	for k := range th.Range(0, 10) {
		t.Fatalf("closed DB yielded %d", k)
	}
}
