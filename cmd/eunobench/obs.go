package main

import (
	"flag"
	"fmt"
	"os"

	"eunomia/internal/harness"
	"eunomia/internal/htm"
	"eunomia/internal/obs"
	"eunomia/internal/vclock"
)

// This file holds the observability scenarios: the abort-attribution
// decomposition (`abortmix`), the per-leaf contention heatmap
// (`heatmap`), and the -trace flag that records any supporting scenario
// as Chrome trace-event JSON.

var (
	traceFile = flag.String("trace", "",
		"write a Chrome trace-event JSON of the scenario to FILE (abortmix, heatmap, storm)")
	heatSample = flag.Int("heatmap-sample", 1,
		"heatmap: keep every Nth abort event (1 = all)")
	heatTop = flag.Int("heatmap-top", 12, "heatmap: hot leaves to print")
)

// tracer is the process-wide trace recorder, non-nil once -trace is set
// and a scenario asked for a lane.
var tracer *obs.TraceWriter

// traceLane returns an Observer recording into a named process lane of
// the -trace file, or nil when tracing is disabled — callers can install
// it unconditionally and keep the zero-cost nil path.
func traceLane(name string) obs.Observer {
	if *traceFile == "" {
		return nil
	}
	if tracer == nil {
		tracer = obs.NewTraceWriter(obs.TraceOptions{
			CyclesPerUsec: vclock.CyclesPerSecond / 1e6,
		})
	}
	return tracer.Process(name)
}

// flushTrace writes the accumulated trace, if any. Called once from main
// after the scenario finishes.
func flushTrace() {
	if tracer == nil {
		return
	}
	f, err := os.Create(*traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	if err := tracer.Encode(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d trace events to %s (open in chrome://tracing or ui.perfetto.dev)\n",
		tracer.Len(), *traceFile)
}

// abortmix — the paper's §3 abort decomposition, reproduced live. One
// Figure-8-style contended run per tree, with every abort attributed at
// the conflict site: layout false conflicts (the conflicting line holds
// other records' keys), shared-metadata conflicts (seqno/CCM/header
// lines), and true conflicts (the same record), plus the non-conflict
// classes. The paper reports 87–90% / 6–10% / 9–12% across workloads for
// the baseline; Eunomia's design removes most of the false-conflict mass,
// which the second row shows.
func abortmixCmd() {
	tbl := harness.Table{
		Title: fmt.Sprintf("Abort attribution (theta=0.9, %d threads; conflict shares vs paper §3: false 87-90%%, meta 6-10%%, true 9-12%%)",
			*threads),
		Header: []string{"tree", "aborts/op", "layout-false", "metadata", "true",
			"capacity", "fallback-lock", "explicit"},
	}
	for _, k := range []harness.TreeKind{harness.HTMBTree, harness.EunoBTree} {
		cfg := baseCfg(k)
		cfg.Dist.Theta = 0.9
		cfg.Observer = traceLane("abortmix " + k.String())
		r := harness.Run(cfg)
		a := r.Stats.Aborts
		conflicts := a[htm.AbortConflictFalse] + a[htm.AbortConflictMeta] + a[htm.AbortConflictTrue]
		share := func(n uint64) string {
			if conflicts == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(conflicts))
		}
		tbl.AddRow(k.String(),
			harness.F2(r.AbortsPerOp),
			share(a[htm.AbortConflictFalse]),
			share(a[htm.AbortConflictMeta]),
			share(a[htm.AbortConflictTrue]),
			fmt.Sprint(a[htm.AbortCapacity]),
			fmt.Sprint(a[htm.AbortFallbackLock]),
			fmt.Sprint(a[htm.AbortExplicit]))
	}
	emit(&tbl)
}

// heatmapCmd — per-leaf contention heatmap: a contended Euno-B+Tree run
// with the built-in sampled heatmap attached, printing where the abort
// pressure concentrates. Euno annotates abort events with the connection
// leaf, so hot entries name tree leaves; the trailing rows falling back to
// raw cache lines are upper-region (index/metadata) conflicts.
func heatmapCmd() {
	heat := obs.NewHeatmap(obs.HeatmapConfig{SampleEvery: *heatSample})
	cfg := baseCfg(harness.EunoBTree)
	cfg.Dist.Theta = 0.99
	cfg.Observer = obs.Multi(heat, traceLane("heatmap euno-btree"))
	r := harness.Run(cfg)

	seen, sampled := heat.Seen()
	tbl := harness.Table{
		Title: fmt.Sprintf("Per-leaf contention heatmap (Euno-B+Tree, theta=0.99, %d threads; %d aborts seen, %d sampled)",
			*threads, seen, sampled),
		Header: []string{"#", "site", "tag", "aborts", "layout-false", "metadata", "true", "other", "active-cycles"},
	}
	hot := heat.Hot()
	if len(hot) > *heatTop {
		hot = hot[:*heatTop]
	}
	for i, l := range hot {
		site := fmt.Sprintf("line %#x", l.ID)
		if l.Annotated {
			site = fmt.Sprintf("leaf %#x", l.ID)
		}
		false_ := l.ByReason[htm.AbortConflictFalse]
		meta := l.ByReason[htm.AbortConflictMeta]
		true_ := l.ByReason[htm.AbortConflictTrue]
		tbl.AddRow(fmt.Sprint(i+1), site, obs.Event{Tag: l.Tag}.TagName(),
			fmt.Sprint(l.Total),
			fmt.Sprint(false_), fmt.Sprint(meta), fmt.Sprint(true_),
			fmt.Sprint(l.Total-false_-meta-true_),
			fmt.Sprint(l.LastTS-l.FirstTS))
	}
	emit(&tbl)
	fmt.Printf("run: %d ops, %.2f aborts/op, %.1f%% wasted cycles\n",
		r.Ops, r.AbortsPerOp, r.WastedPct)
}
