package main

// The `cluster` subcommand measures the sharded multi-tree Cluster on the
// host backend: shard count × Zipfian skew, real goroutines at wall-clock
// speed. The question is contention decomposition — hash routing scatters
// a hot set across shards, each with its own fallback lock and storm
// detector, so throughput should hold or rise and aborts/op fall as the
// shard count grows under skew.
//
// Results go to a separate JSON artifact (-benchjson, conventionally
// BENCH_cluster.json) with the same label-dedup behavior as hostperf.
// Numbers are machine-dependent by design: the artifact records GOMAXPROCS
// and NumCPU, so a single-core runner's modest curves (sharding there only
// shortens abort/retry work, it cannot add parallelism) are not mistaken
// for a protocol regression.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

// clusterResult is one (theta, shards) cell of the artifact.
type clusterResult struct {
	Theta       float64 `json:"theta"`
	Shards      int     `json:"shards"`
	Threads     int     `json:"threads"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Speedup     float64 `json:"speedup_vs_1shard"`
	P50Ns       uint64  `json:"p50_ns"`
	P99Ns       uint64  `json:"p99_ns"`
	AbortsPerOp float64 `json:"aborts_per_op"`
	Fallbacks   uint64  `json:"fallbacks"`
}

// clusterRun is one labeled invocation of the sweep.
type clusterRun struct {
	Label      string          `json:"label"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Tree       string          `json:"tree"`
	Keys       uint64          `json:"keys"`
	Mix        string          `json:"mix"`
	DurationMS int64           `json:"duration_ms"`
	Results    []clusterResult `json:"results"`
}

// clusterFile is the artifact schema.
type clusterFile struct {
	Suite string       `json:"suite"`
	Note  string       `json:"note"`
	Runs  []clusterRun `json:"runs"`
}

// clusterCmd runs the shard-count × skew sweep and prints/records it.
func clusterCmd() {
	var cf *clusterFile
	if *benchjson != "" {
		var err error
		if cf, err = loadClusterFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	dur := 500 * time.Millisecond
	if *quick {
		dur = 100 * time.Millisecond
	}
	mix := workload.Mix{GetPct: 50, PutPct: 50} // write-heavy: contention is the point
	// At least 4 workers even on small machines: contention decomposition
	// is the quantity under study, and one worker has nothing to conflict
	// with (preempted goroutines conflict even on one core).
	nthreads := runtime.GOMAXPROCS(0)
	if nthreads < 4 {
		nthreads = 4
	}
	if nthreads > *threads {
		nthreads = *threads
	}
	run := clusterRun{
		Label:      *benchlabel,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Tree:       harness.EunoBTree.String(),
		Keys:       *keys,
		Mix:        "YCSB-A 50r/50w",
		DurationMS: dur.Milliseconds(),
	}
	tbl := harness.Table{
		Title: fmt.Sprintf("Cluster: sharded Euno-B+Tree wall-clock throughput "+
			"(GOMAXPROCS=%d, NumCPU=%d, %d workers, 50r/50w, %v per point)",
			run.GoMaxProcs, run.NumCPU, nthreads, dur),
		Header: []string{"theta", "shards", "ops/s", "speedup-vs-1shard",
			"p50(us)", "p99(us)", "aborts/op", "fallbacks"},
	}
	for _, theta := range clusterThetas() {
		var base float64
		for _, n := range clusterShardSweep() {
			res := harness.RunCluster(harness.ClusterConfig{
				Shards:     n,
				Tree:       harness.EunoBTree,
				Threads:    nthreads,
				Keys:       *keys,
				PreloadPct: 100, // reads must hit: YCSB runs over a loaded table
				Dist:       workload.Spec{Kind: workload.Zipfian, Theta: theta},
				Mix:        mix,
				Duration:   dur,
				Seed:       *seed,
				Host:       true,
				Resilience: *resilience,
			})
			if n == 1 {
				base = res.Throughput
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.Throughput / base
			}
			ls := res.Latency.Snapshot()
			run.Results = append(run.Results, clusterResult{
				Theta:       theta,
				Shards:      n,
				Threads:     nthreads,
				OpsPerSec:   res.Throughput,
				Speedup:     speedup,
				P50Ns:       ls.P50,
				P99Ns:       ls.P99,
				AbortsPerOp: res.AbortsPerOp,
				Fallbacks:   res.Stats.Fallbacks,
			})
			tbl.AddRow(fmt.Sprintf("%.2f", theta), fmt.Sprint(n),
				metrics.FormatOps(res.Throughput), fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", float64(ls.P50)/1e3),
				fmt.Sprintf("%.1f", float64(ls.P99)/1e3),
				harness.F2(res.AbortsPerOp), fmt.Sprint(res.Stats.Fallbacks))
		}
	}
	emit(&tbl)
	if cf == nil {
		return
	}
	if err := appendClusterRun(*benchjson, cf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// clusterThetas returns the skew points: near-uniform and the paper's
// high-contention 0.99.
func clusterThetas() []float64 {
	if *quick {
		return []float64{0.99}
	}
	return []float64{0.2, 0.99}
}

// clusterShardSweep returns the shard counts measured.
func clusterShardSweep() []int {
	if *quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8}
}

// loadClusterFile parses the artifact at path, or returns a fresh one if
// the file does not exist yet.
func loadClusterFile(path string) (*clusterFile, error) {
	cf := &clusterFile{
		Suite: "Cluster",
		Note: "Wall-clock throughput of the sharded Cluster (host backend) " +
			"across shard counts and Zipfian skew; regenerate with `make " +
			"bench-cluster` or `eunobench -benchjson BENCH_cluster.json " +
			"-benchlabel <label> cluster`. Numbers are machine-dependent: " +
			"check gomaxprocs/num_cpu before comparing runs — on a " +
			"single-core runner sharding only trims abort/retry work, so " +
			"expect modest curves there.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, cf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return cf, nil
}

// appendClusterRun merges run into the artifact, replacing any existing
// run with the same label.
func appendClusterRun(path string, cf *clusterFile, run clusterRun) error {
	kept := cf.Runs[:0]
	for _, r := range cf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	cf.Runs = append(kept, run)
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
