package main

// The `recover` subcommand measures the durability engine: group-commit
// throughput and acknowledgement latency across flush intervals, and
// recovery time as a function of log length. Like hostbench these are
// wall-clock numbers (real goroutines, MemFS-emulated fsyncs), so they feed
// the BENCH_durability.json trajectory artifact via -benchjson rather than
// the paper figures.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"eunomia/internal/harness"
)

// durSuiteNote is the artifact Note for BENCH_durability.json.
const durSuiteNote = "Wall-clock durability benchmarks: group-commit throughput/latency " +
	"across flush intervals and recovery time vs log length, on the MemFS " +
	"fsync-accurate in-memory filesystem; regenerate with `eunobench " +
	"-benchjson BENCH_durability.json -benchlabel <label> recover`."

// recoverCmd runs the durability benchmark suite.
func recoverCmd() {
	var bf *benchFile
	if *benchjson != "" {
		var err error
		if bf, err = loadBenchFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
		bf.Suite = "Durability"
		bf.Note = durSuiteNote
	}
	run := benchRun{
		Label:     *benchlabel,
		Date:      benchDate(),
		GoVersion: runtime.Version(),
	}

	// Panel 1: group-commit throughput and ack latency per flush interval.
	// interval=0 is leader-based immediate commit (every ack waits for an
	// fsync it may lead or join); longer intervals batch harder and trade
	// ack latency for fsync count.
	intervals := []time.Duration{0, time.Millisecond, 10 * time.Millisecond}
	threads := 8
	opsPer := 4_000
	if *quick {
		threads, opsPer = 4, 800
	}
	t1 := harness.Table{
		Title: fmt.Sprintf("Durability: group commit vs flush interval (%d threads, %d puts each, MemFS)",
			threads, opsPer),
		Header: []string{"interval", "throughput(ops/s)", "fsyncs", "avg-batch", "max-batch",
			"ack-p50(us)", "ack-p99(us)"},
	}
	for _, iv := range intervals {
		res, err := harness.RunDurable(harness.DurableConfig{
			Tree: harness.EunoBTree, Threads: threads, OpsPerThread: opsPer,
			Keys: 50_000, Seed: *seed, FlushInterval: iv,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: recover: %v\n", err)
			os.Exit(1)
		}
		label := "immediate"
		if iv > 0 {
			label = iv.String()
		}
		t1.AddRow(label,
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprint(res.Stats.Flushes),
			harness.F1(res.Stats.AvgBatch),
			fmt.Sprint(res.Stats.MaxBatch),
			fmt.Sprint(res.OpLatency.Quantile(0.50)/1_000),
			fmt.Sprint(res.OpLatency.Quantile(0.99)/1_000))
		run.Results = append(run.Results,
			benchResult{Name: "group-commit/" + label + "/throughput_ops_s", Iters: int(res.Ops),
				NsPerOp: 1e9 / res.Throughput},
			benchResult{Name: "group-commit/" + label + "/ack_p99", Iters: int(res.Ops),
				NsPerOp: float64(res.OpLatency.Quantile(0.99))})
	}
	emit(&t1)

	// Panel 2: recovery time vs log length (log-only replay, then with a
	// snapshot covering most of the log).
	lengths := []int{1_000, 10_000, 50_000}
	if *quick {
		lengths = []int{500, 2_000}
	}
	t2 := harness.Table{
		Title:  "Durability: recovery time vs log length (MemFS, single snapshotless log vs auto-snapshot)",
		Header: []string{"logged-ops", "snapshot", "snap-pairs", "replayed", "recovery(ms)", "replay(ops/s)"},
	}
	for _, n := range lengths {
		for _, snap := range []bool{false, true} {
			cfg := harness.DurableConfig{
				Tree: harness.EunoBTree, Threads: 4, OpsPerThread: n / 4,
				Keys: uint64(n), Seed: *seed,
			}
			if snap {
				// Threshold ~¼ of the log so recovery replays a short tail.
				cfg.SnapshotBytes = int64(n) * 33 / 4
			}
			res, err := harness.RunDurable(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "eunobench: recover: %v\n", err)
				os.Exit(1)
			}
			mode := "none"
			if snap {
				mode = "auto"
			}
			t2.AddRow(fmt.Sprint(res.Ops), mode,
				fmt.Sprint(res.Recovery.SnapshotPairs),
				fmt.Sprint(res.Recovery.ReplayedFrames),
				fmt.Sprintf("%.2f", float64(res.RecoveryNs)/1e6),
				fmt.Sprintf("%.0f", res.ReplayRate))
			run.Results = append(run.Results, benchResult{
				Name:    fmt.Sprintf("recovery/%dops/snap=%s/ns", res.Ops, mode),
				Iters:   int(res.Recovery.SnapshotPairs + res.Recovery.ReplayedFrames),
				NsPerOp: float64(res.RecoveryNs),
			})
		}
	}
	emit(&t2)

	if bf == nil {
		return
	}
	if err := appendBenchRun(*benchjson, bf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// benchDate is the artifact date stamp (UTC day).
func benchDate() string { return time.Now().UTC().Format("2006-01-02") }
